package timeline

import (
	"sync"
	"testing"
	"time"

	"batchals/internal/obs"
)

func TestEmitSnapshotOrdering(t *testing.T) {
	r := NewRecorder(3, 16)
	// Emit out of start-time order across lanes; Snapshot must sort by T0.
	id1 := r.Emit(0, Span{Name: "b", Worker: -1, T0: 100, T1: 200})
	id2 := r.Emit(1, Span{Name: "a", Worker: 0, T0: 50, T1: 150})
	id3 := r.Emit(2, Span{Name: "c", Worker: 1, T0: 100, T1: 300})
	if id1 == 0 || id2 == 0 || id3 == 0 {
		t.Fatalf("Emit returned zero ID: %d %d %d", id1, id2, id3)
	}
	if id1 == id2 || id2 == id3 || id1 == id3 {
		t.Fatalf("span IDs not unique: %d %d %d", id1, id2, id3)
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(got))
	}
	if got[0].Name != "a" {
		t.Errorf("first span by T0 = %q, want a", got[0].Name)
	}
	// T0 tie between "b" (id1) and "c" (id3) breaks by ID.
	if got[1].ID != id1 || got[2].ID != id3 {
		t.Errorf("tie-break by ID: got %d,%d want %d,%d", got[1].ID, got[2].ID, id1, id3)
	}
	if n := r.SpanCount(); n != 3 {
		t.Errorf("SpanCount = %d, want 3", n)
	}
}

func TestLaneDropOnFull(t *testing.T) {
	r := NewRecorder(1, 2)
	for i := 0; i < 5; i++ {
		r.Emit(0, Span{Name: "x", T0: int64(i), T1: int64(i) + 1})
	}
	if n := r.SpanCount(); n != 2 {
		t.Errorf("SpanCount = %d, want lane cap 2", n)
	}
	if d := r.Dropped(); d != 3 {
		t.Errorf("Dropped = %d, want 3", d)
	}
	// The retained spans are the first two, never overwritten.
	got := r.Snapshot()
	if got[0].T0 != 0 || got[1].T0 != 1 {
		t.Errorf("drop-on-full overwrote early spans: T0s %d,%d", got[0].T0, got[1].T0)
	}
}

func TestEmitClampsLane(t *testing.T) {
	r := NewRecorder(2, 4)
	if id := r.Emit(-5, Span{Name: "lo"}); id == 0 {
		t.Error("negative lane should clamp to 0, not drop")
	}
	if id := r.Emit(99, Span{Name: "hi"}); id == 0 {
		t.Error("overflow lane should clamp to last, not drop")
	}
	if n := r.SpanCount(); n != 2 {
		t.Errorf("SpanCount = %d, want 2", n)
	}
}

func TestStartEndDriverSpan(t *testing.T) {
	r := NewRecorder(2, 8)
	r.SetIter(7)
	a := r.Start("verify", obs.PhaseVerifyApply)
	id := r.End(a)
	if id == 0 {
		t.Fatal("End returned 0 for a live recorder")
	}
	got := r.Snapshot()
	if len(got) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(got))
	}
	s := got[0]
	if s.Name != "verify" || s.Phase != obs.PhaseVerifyApply {
		t.Errorf("span = %q/%v", s.Name, s.Phase)
	}
	if s.Worker != -1 || s.Shard != -1 {
		t.Errorf("driver span worker/shard = %d/%d, want -1/-1", s.Worker, s.Shard)
	}
	if s.Iter != 7 {
		t.Errorf("Iter = %d, want 7 (from SetIter)", s.Iter)
	}
	if s.T1 < s.T0 {
		t.Errorf("T1 %d < T0 %d", s.T1, s.T0)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(1, 1)
	r.Emit(0, Span{Name: "a"})
	r.Emit(0, Span{Name: "b"}) // dropped
	r.SetIter(3)
	r.Reset()
	if r.SpanCount() != 0 || r.Dropped() != 0 || r.Iter() != 0 {
		t.Errorf("Reset left state: spans=%d dropped=%d iter=%d",
			r.SpanCount(), r.Dropped(), r.Iter())
	}
	if id := r.Emit(0, Span{Name: "c"}); id != 1 {
		t.Errorf("post-Reset ID = %d, want 1", id)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 || r.Rel(time.Now()) != 0 {
		t.Error("nil Now/Rel not zero")
	}
	r.SetIter(3)
	if r.Iter() != 0 || r.Lanes() != 0 || r.Dropped() != 0 || r.SpanCount() != 0 {
		t.Error("nil getters not zero")
	}
	if r.Emit(0, Span{Name: "x"}) != 0 {
		t.Error("nil Emit should return 0")
	}
	a := r.Start("x", obs.PhaseSimulate)
	if r.End(a) != 0 {
		t.Error("nil End should return 0")
	}
	if r.Snapshot() != nil {
		t.Error("nil Snapshot should be nil")
	}
	r.Reset()
}

// TestConcurrentSnapshotRace exercises the single-writer / concurrent-
// reader contract under the race detector: one goroutine per lane writing
// spans while another continuously snapshots and exports.
func TestConcurrentSnapshotRace(t *testing.T) {
	const lanes, perLane = 4, 512
	r := NewRecorder(lanes, perLane)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			spans := r.Snapshot()
			for i := range spans {
				if spans[i].ID == 0 {
					t.Error("observed unpublished span (torn read)")
					return
				}
			}
			_ = BuildTrace(spans, r.Dropped())
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var writers sync.WaitGroup
	for l := 0; l < lanes; l++ {
		writers.Add(1)
		go func(l int) {
			defer writers.Done()
			for i := 0; i < perLane; i++ {
				r.Emit(l, Span{
					Name: "w", Worker: int32(l - 1), Shard: -1,
					T0: int64(i), T1: int64(i) + 1,
				})
			}
		}(l)
	}
	writers.Wait()
	close(stop)
	<-readerDone
	if n := r.SpanCount(); n != lanes*perLane {
		t.Errorf("SpanCount = %d, want %d", n, lanes*perLane)
	}
}
