package par

import "sort"

// Overcommit is the default bins-per-worker factor of PlanBins. More bins
// than workers keeps the pool's FIFO queue non-empty while the heaviest
// bins run, so a worker that finishes early steals a remaining bin instead
// of idling at the barrier — the work-stealing fallback for stragglers the
// static plan cannot predict.
const Overcommit = 4

// PlanBins returns the bin count for packing n weighted items onto a pool
// of the given worker count: Overcommit bins per worker, capped at n so no
// bin is empty by construction.
func PlanBins(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	bins := workers * Overcommit
	if bins > n {
		bins = n
	}
	if bins < 1 {
		bins = 1
	}
	return bins
}

// Planner bin-packs weighted work items into balanced bins using the
// deterministic LPT (longest processing time first) greedy: items sorted
// by descending cost (ties by ascending index) are assigned one by one to
// the currently least-loaded bin (ties by lowest bin index). The result is
// a pure function of (costs, bins) — no randomness, no map iteration — so
// a plan is reproducible run to run, which the determinism contract of the
// gather fan-outs depends on: tasks may land on any worker in any order,
// but the partition itself never varies.
//
// Balance bound: when an item of cost c is placed, its bin is the current
// minimum, and bin loads only grow, so every final load satisfies
// maxLoad − minLoad ≤ max item cost. With per-item costs small relative to
// the total this pins worker idle at the batch barrier to one item's
// worth — the straggler gap the incremental gather's timeline measured.
//
// The zero Planner is ready to use. Plan reuses the planner's internal
// storage: the returned bins (and their backing arrays) are valid only
// until the next Plan call, and a Planner must not be shared by concurrent
// callers.
type Planner struct {
	costs []float64
	order []int
	loads []float64
	sizes []int
	heads []int
	next  []int
	bins  [][]int
	store []int
}

// planSorter sorts a Planner's order slice by descending cost, ties by
// ascending item index. It is a pointer-shaped adapter so sort.Sort gets
// an interface without heap allocation.
type planSorter struct{ p *Planner }

func (s planSorter) Len() int { return len(s.p.order) }
func (s planSorter) Less(i, j int) bool {
	a, b := s.p.order[i], s.p.order[j]
	if s.p.costs[a] != s.p.costs[b] {
		return s.p.costs[a] > s.p.costs[b]
	}
	return a < b
}
func (s planSorter) Swap(i, j int) { s.p.order[i], s.p.order[j] = s.p.order[j], s.p.order[i] }

// binSorter orders bin indices by descending load, ties by ascending index
// of the bin's first (heaviest) item, so the heaviest bins are dispatched
// first — classic LPT scheduling at the dispatch level.
type binSorter struct{ p *Planner }

func (s binSorter) Len() int { return len(s.p.bins) }
func (s binSorter) Less(i, j int) bool {
	a, b := s.p.bins[i], s.p.bins[j]
	la, lb := s.p.loads[i], s.p.loads[j]
	// Note: loads are tracked positionally before the bins slice is
	// reordered, so the sort key must travel with the bins; Swap keeps
	// them paired.
	if la != lb {
		return la > lb
	}
	switch {
	case len(a) == 0:
		return false
	case len(b) == 0:
		return true
	}
	return a[0] < b[0]
}
func (s binSorter) Swap(i, j int) {
	s.p.bins[i], s.p.bins[j] = s.p.bins[j], s.p.bins[i]
	s.p.loads[i], s.p.loads[j] = s.p.loads[j], s.p.loads[i]
}

// Plan partitions the item indices 0..len(costs)-1 into at most bins
// non-overlapping groups whose cost totals are balanced (see the type
// comment for the LPT bound), ordered by descending total cost. Every item
// appears in exactly one group. Negative costs are treated as zero. The
// returned slices are reused by the next Plan call.
//
// Steady state (same item count run to run) performs no heap allocation,
// so per-iteration callers can plan every dispatch without GC pressure.
//
//als:allocfree
func (p *Planner) Plan(costs []float64, bins int) [][]int {
	n := len(costs)
	if n == 0 {
		return p.bins[:0]
	}
	if bins > n {
		bins = n
	}
	if bins < 1 {
		bins = 1
	}

	p.costs = append(p.costs[:0], costs...) //als:alloc-ok amortised scratch grow
	p.order = p.order[:0]
	for i := 0; i < n; i++ {
		p.order = append(p.order, i) //als:alloc-ok amortised scratch grow
	}
	sort.Sort(planSorter{p})

	p.loads = p.loads[:0]
	p.sizes = p.sizes[:0]
	p.heads = p.heads[:0]
	for b := 0; b < bins; b++ {
		p.loads = append(p.loads, 0)  //als:alloc-ok amortised scratch grow
		p.sizes = append(p.sizes, 0)  //als:alloc-ok amortised scratch grow
		p.heads = append(p.heads, -1) //als:alloc-ok amortised scratch grow
	}
	// next forms per-bin linked lists through the items in assignment
	// order; heads/next avoid per-bin slices during the greedy pass.
	p.next = p.next[:0]
	for i := 0; i < n; i++ {
		p.next = append(p.next, -1) //als:alloc-ok amortised scratch grow
	}
	// Greedy LPT assignment. Items are prepended to their bin's list and
	// each list is reversed when materialised, which restores assignment
	// (descending-cost) order without per-bin tail pointers.
	for _, it := range p.order {
		c := p.costs[it]
		if c < 0 {
			c = 0
		}
		min := 0
		for b := 1; b < bins; b++ {
			if p.loads[b] < p.loads[min] {
				min = b
			}
		}
		p.next[it] = p.heads[min]
		p.heads[min] = it
		p.loads[min] += c
		p.sizes[min]++
	}

	// Materialise bins into one backing store, reversing each bin's
	// prepend-list back into assignment (descending-cost) order.
	p.store = p.store[:0]
	for cap(p.store) < n {
		p.store = append(p.store[:cap(p.store)], 0) //als:alloc-ok amortised scratch grow
	}
	p.store = p.store[:n]
	p.bins = p.bins[:0]
	off := 0
	for b := 0; b < bins; b++ {
		sz := p.sizes[b]
		seg := p.store[off : off+sz : off+sz]
		for i, it := sz-1, p.heads[b]; it >= 0; i, it = i-1, p.next[it] {
			seg[i] = it
		}
		off += sz
		p.bins = append(p.bins, seg) //als:alloc-ok amortised scratch grow
	}
	sort.Sort(binSorter{p})
	return p.bins
}
