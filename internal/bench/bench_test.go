package bench

import (
	"math/rand"
	"testing"

	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// evalUint runs the network on integer operands a and b (each width bits)
// and decodes the outputs as an unsigned integer (output 0 = LSB).
func evalUint(t *testing.T, n *circuit.Network, width int, a, b uint64, extra []bool) uint64 {
	t.Helper()
	in := make([]bool, n.NumInputs())
	for i := 0; i < width; i++ {
		in[i] = a>>uint(i)&1 == 1
		in[width+i] = b>>uint(i)&1 == 1
	}
	copy(in[2*width:], extra)
	out := sim.EvalOne(n, in)
	var v uint64
	for i, bit := range out {
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestAddersExhaustiveSmall(t *testing.T) {
	for _, gen := range []struct {
		name  string
		build func(int) *circuit.Network
	}{
		{"RCA", RCA}, {"CLA", CLA}, {"KSA", KSA},
	} {
		for _, width := range []int{1, 2, 3, 4, 5} {
			n := gen.build(width)
			if err := n.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", gen.name, width, err)
			}
			max := uint64(1) << uint(width)
			for a := uint64(0); a < max; a++ {
				for b := uint64(0); b < max; b++ {
					got := evalUint(t, n, width, a, b, nil)
					if got != a+b {
						t.Fatalf("%s(%d): %d+%d=%d got %d", gen.name, width, a, b, a+b, got)
					}
				}
			}
		}
	}
}

func TestAdders32Random(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, gen := range []struct {
		name  string
		build func(int) *circuit.Network
	}{
		{"RCA", RCA}, {"CLA", CLA}, {"KSA", KSA},
	} {
		n := gen.build(32)
		if n.NumInputs() != 64 || n.NumOutputs() != 33 {
			t.Fatalf("%s32 I/O = %d/%d want 64/33", gen.name, n.NumInputs(), n.NumOutputs())
		}
		for trial := 0; trial < 200; trial++ {
			a := r.Uint64() & 0xFFFFFFFF
			b := r.Uint64() & 0xFFFFFFFF
			got := evalUint(t, n, 32, a, b, nil)
			if got != a+b {
				t.Fatalf("%s32: %d+%d=%d got %d", gen.name, a, b, a+b, got)
			}
		}
	}
}

func TestMultipliersExhaustiveSmall(t *testing.T) {
	for _, gen := range []struct {
		name  string
		build func(int) *circuit.Network
	}{
		{"MUL", MUL}, {"WTM", WTM},
	} {
		for _, width := range []int{1, 2, 3, 4} {
			n := gen.build(width)
			if err := n.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", gen.name, width, err)
			}
			if n.NumOutputs() != 2*width {
				t.Fatalf("%s(%d) has %d outputs", gen.name, width, n.NumOutputs())
			}
			max := uint64(1) << uint(width)
			for a := uint64(0); a < max; a++ {
				for b := uint64(0); b < max; b++ {
					got := evalUint(t, n, width, a, b, nil)
					if got != a*b {
						t.Fatalf("%s(%d): %d*%d=%d got %d", gen.name, width, a, b, a*b, got)
					}
				}
			}
		}
	}
}

func TestMultipliers8Random(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, gen := range []struct {
		name  string
		build func(int) *circuit.Network
	}{
		{"MUL", MUL}, {"WTM", WTM},
	} {
		n := gen.build(8)
		if n.NumInputs() != 16 || n.NumOutputs() != 16 {
			t.Fatalf("%s8 I/O wrong: %d/%d", gen.name, n.NumInputs(), n.NumOutputs())
		}
		for trial := 0; trial < 300; trial++ {
			a := uint64(r.Intn(256))
			b := uint64(r.Intn(256))
			got := evalUint(t, n, 8, a, b, nil)
			if got != a*b {
				t.Fatalf("%s8: %d*%d=%d got %d", gen.name, a, b, a*b, got)
			}
		}
	}
}

func TestWallaceShallowerThanArray(t *testing.T) {
	arr := MUL(8)
	wal := WTM(8)
	if wal.Depth() >= arr.Depth() {
		t.Fatalf("Wallace depth %d should beat array depth %d", wal.Depth(), arr.Depth())
	}
}

func TestALU4Signature(t *testing.T) {
	n := ALU4()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 14 || n.NumOutputs() != 8 {
		t.Fatalf("alu4 I/O = %d/%d want 14/8", n.NumInputs(), n.NumOutputs())
	}
}

func TestALU4Arithmetic(t *testing.T) {
	n := ALU4()
	// input order: a0..a3 b0..b3 op0 op1 cin mode x0 x1
	eval := func(a, b uint64, op0, op1, cin, mode bool) (f uint64, flags []bool) {
		in := make([]bool, 14)
		for i := 0; i < 4; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[4+i] = b>>uint(i)&1 == 1
		}
		in[8], in[9], in[10], in[11] = op0, op1, cin, mode
		out := sim.EvalOne(n, in)
		for i := 0; i < 4; i++ {
			if out[i] {
				f |= 1 << uint(i)
			}
		}
		return f, out[4:]
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			// add: mode=1, op1=0, cin=0
			if f, _ := eval(a, b, false, false, false, true); f != (a+b)&0xF {
				t.Fatalf("add %d+%d got %d", a, b, f)
			}
			// sub: mode=1, op1=1, cin=1 -> a + ^b + 1 = a-b
			if f, _ := eval(a, b, false, true, true, true); f != (a-b)&0xF {
				t.Fatalf("sub %d-%d got %d", a, b, f)
			}
			// and: mode=0, op=00
			if f, _ := eval(a, b, false, false, false, false); f != a&b {
				t.Fatalf("and got %d", f)
			}
			// or: mode=0, op=01 (op0=1)
			if f, _ := eval(a, b, true, false, false, false); f != a|b {
				t.Fatalf("or got %d", f)
			}
			// xor: mode=0, op=10 (op1=1)
			if f, _ := eval(a, b, false, true, false, false); f != a^b {
				t.Fatalf("xor got %d", f)
			}
			// not a: mode=0, op=11
			if f, _ := eval(a, b, true, true, false, false); f != ^a&0xF {
				t.Fatalf("not got %d", f)
			}
			// zero flag
			if f, flags := eval(a, b, false, false, false, true); (f == 0) != flags[1] {
				t.Fatalf("zero flag wrong for f=%d", f)
			}
		}
	}
}

func TestComparatorExhaustive(t *testing.T) {
	n := Comparator(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[4+i] = b>>uint(i)&1 == 1
			}
			out := sim.EvalOne(n, in)
			if out[0] != (a < b) || out[1] != (a == b) || out[2] != (a > b) {
				t.Fatalf("cmp(%d,%d) = %v", a, b, out)
			}
		}
	}
}

func TestParity(t *testing.T) {
	n := Parity(9)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		in := make([]bool, 9)
		want := false
		for i := range in {
			in[i] = r.Intn(2) == 1
			want = want != in[i]
		}
		if got := sim.EvalOne(n, in)[0]; got != want {
			t.Fatalf("parity wrong")
		}
	}
}

func TestISCASLikeSpecs(t *testing.T) {
	lib := cell.Default()
	for _, spec := range iscasSpecs {
		n, err := ISCASLike(spec.name)
		if err != nil {
			t.Fatal(err)
		}
		if n.NumInputs() != spec.in || n.NumOutputs() != spec.out {
			t.Fatalf("%s: I/O %d/%d want %d/%d", spec.name,
				n.NumInputs(), n.NumOutputs(), spec.in, spec.out)
		}
		area := lib.NetworkArea(n)
		if area < spec.targetArea*0.5 || area > spec.targetArea*1.5 {
			t.Fatalf("%s: area %.0f too far from target %.0f", spec.name, area, spec.targetArea)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		if n.Depth() < 4 {
			t.Fatalf("%s: implausibly shallow (depth %d)", spec.name, n.Depth())
		}
	}
}

func TestISCASLikeDeterministic(t *testing.T) {
	a, _ := ISCASLike("c880")
	b, _ := ISCASLike("c880")
	if a.Dump() != b.Dump() {
		t.Fatal("same-name synthetic differs between calls")
	}
}

func TestISCASLikeUnknown(t *testing.T) {
	if _, err := ISCASLike("c9999"); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 15 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestMACExhaustiveSmall(t *testing.T) {
	for _, width := range []int{1, 2, 3} {
		n := MAC(width)
		if err := n.Validate(); err != nil {
			t.Fatalf("MAC(%d): %v", width, err)
		}
		if n.NumInputs() != 4*width || n.NumOutputs() != 2*width+1 {
			t.Fatalf("MAC(%d) I/O %d/%d", width, n.NumInputs(), n.NumOutputs())
		}
		maxOp := uint64(1) << uint(width)
		maxC := uint64(1) << uint(2*width)
		for a := uint64(0); a < maxOp; a++ {
			for b := uint64(0); b < maxOp; b++ {
				for c := uint64(0); c < maxC; c++ {
					in := make([]bool, 4*width)
					for i := 0; i < width; i++ {
						in[i] = a>>uint(i)&1 == 1
						in[width+i] = b>>uint(i)&1 == 1
					}
					for i := 0; i < 2*width; i++ {
						in[2*width+i] = c>>uint(i)&1 == 1
					}
					out := sim.EvalOne(n, in)
					var got uint64
					for i, bit := range out {
						if bit {
							got |= 1 << uint(i)
						}
					}
					if want := a*b + c; got != want {
						t.Fatalf("MAC(%d): %d*%d+%d=%d got %d", width, a, b, c, want, got)
					}
				}
			}
		}
	}
}

func TestDecoderExhaustive(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4} {
		n := Decoder(bits)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		for m := 0; m < 1<<uint(bits+1); m++ {
			in := make([]bool, bits+1)
			for i := range in {
				in[i] = m>>uint(i)&1 == 1
			}
			en := in[bits]
			selVal := m & (1<<uint(bits) - 1)
			out := sim.EvalOne(n, in)
			for line, bit := range out {
				want := en && line == selVal
				if bit != want {
					t.Fatalf("DEC%d sel=%d en=%v line %d = %v", bits, selVal, en, line, bit)
				}
			}
		}
	}
}

func TestAbsDiffExhaustive(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4} {
		n := AbsDiff(width)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		max := uint64(1) << uint(width)
		for a := uint64(0); a < max; a++ {
			for b := uint64(0); b < max; b++ {
				got := evalUint(t, n, width, a, b, nil)
				want := a - b
				if b > a {
					want = b - a
				}
				if got != want {
					t.Fatalf("AbsDiff(%d): |%d-%d|=%d got %d", width, a, b, want, got)
				}
			}
		}
	}
}
