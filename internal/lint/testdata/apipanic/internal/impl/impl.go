// Package impl sits under internal/, where panics are the sanctioned
// invariant mechanism.
package impl

// Guard panics freely; the analyzer does not apply here.
func Guard(ok bool) {
	if !ok {
		panic("impl: invariant violated")
	}
}
