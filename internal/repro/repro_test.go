package repro

import (
	"math"
	"strings"
	"testing"
)

var fast = Options{M: 600, Seed: 1, Fast: true}

func TestTable1Fast(t *testing.T) {
	rows, err := Table1(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3 {
		t.Fatalf("expected 12 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Simulated < 0 || r.Exact < 0 {
			t.Fatalf("negative error in row %+v", r)
		}
		// MC estimate must be in the neighbourhood of the exact value;
		// both absolute and relative slack since small ERs are noisy at
		// low M.
		if math.Abs(r.Simulated-r.Exact) > 0.05*math.Max(1, r.Exact)+0.02*math.Max(r.Exact, 0.01)*50 {
			t.Fatalf("MC far from exact: %+v", r)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "alu4") || !strings.Contains(out, "wtm8") {
		t.Fatal("render missing circuits")
	}
}

func TestFig1Fast(t *testing.T) {
	d, err := Fig1(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Accurate) == 0 {
		t.Fatal("accurate flow made no iterations")
	}
	// The headline of the motivating example: the accurate flow achieves
	// at least as much reduction as the baseline.
	accRed := d.Accurate[len(d.Accurate)-1].AreaReduction
	basRed := 0.0
	if len(d.Baseline) > 0 {
		basRed = d.Baseline[len(d.Baseline)-1].AreaReduction
	}
	if accRed < basRed-1e-9 {
		t.Fatalf("accurate reduction %.4f < baseline %.4f", accRed, basRed)
	}
	for _, p := range append(append([]Fig1Point{}, d.Accurate...), d.Baseline...) {
		if p.ErrorRate > 0.01+1e-9 {
			t.Fatalf("point above threshold: %+v", p)
		}
	}
	if !strings.Contains(RenderFig1(d), "Fig 1") {
		t.Fatal("render broken")
	}
}

func TestFig3Fast(t *testing.T) {
	series, err := Fig3(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("expected 1 series in fast mode, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no iterations", s.Circuit)
		}
		for _, p := range s.Points {
			if math.Abs(p.EER-p.SER) > 0.05 {
				t.Fatalf("%s iter %d: EER %v far from SER %v", s.Circuit, p.Iter, p.EER, p.SER)
			}
		}
	}
	if !strings.Contains(RenderFig3(series), "EER") {
		t.Fatal("render broken")
	}
}

func TestTable2Fast(t *testing.T) {
	rows, err := Table2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fast mode should test rca32 only, got %d rows", len(rows))
	}
	r := rows[0]
	// Same quality within a small slack, and batch must not be slower.
	if math.Abs(r.FullArea-r.BatchArea)/r.OriginalArea > 0.05 {
		t.Fatalf("quality mismatch: full %v vs batch %v", r.FullArea, r.BatchArea)
	}
	// In fast mode rca32 accepts almost no substitutions, so both flows are
	// milliseconds and the ratio is noisy; only guard against a gross
	// inversion. The real separation is asserted by TestComplexityFast and
	// the full-scale run.
	if r.SpeedUp < 0.5 {
		t.Fatalf("batch grossly slower than full simulation: speedup %.2f", r.SpeedUp)
	}
	if !strings.Contains(RenderTable2(rows), "speedup") {
		t.Fatal("render broken")
	}
}

func TestFig4Table3Fast(t *testing.T) {
	series, err := Fig4(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != len(erThresholds) {
			t.Fatalf("%s: %d points", s.Circuit, len(s.Points))
		}
		// Area ratio must be monotone non-increasing in the threshold
		// (a looser budget can never force a bigger circuit) — up to MC
		// noise; allow a tiny slack.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].AreaRatio > s.Points[i-1].AreaRatio+0.02 {
				t.Fatalf("%s: ratio increased with budget: %+v", s.Circuit, s.Points)
			}
		}
		for _, p := range s.Points {
			if p.AreaRatio <= 0 || p.AreaRatio > 1 {
				t.Fatalf("%s: ratio %v out of range", s.Circuit, p.AreaRatio)
			}
		}
	}

	rows, err := Table3(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BatchRatio > r.LocalRatio+1e-9 {
			t.Fatalf("%s: batch ratio %.3f worse than local %.3f", r.Circuit, r.BatchRatio, r.LocalRatio)
		}
		if r.CPMShare < 0 || r.CPMShare > 0.8 {
			t.Fatalf("%s: implausible CPM share %v", r.Circuit, r.CPMShare)
		}
	}
	if !strings.Contains(RenderTable3(rows), "mean") {
		t.Fatal("render broken")
	}
}

func TestFig5Table4Fast(t *testing.T) {
	series, err := Fig5(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != len(aemRateThresholds) {
			t.Fatalf("%s: %d points", s.Circuit, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].AreaRatio > s.Points[i-1].AreaRatio+0.02 {
				t.Fatalf("%s: ratio increased with budget", s.Circuit)
			}
		}
	}
	rows, err := Table4(fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BatchRatio > r.LocalRatio+1e-9 {
			t.Fatalf("%s: batch %.3f worse than local %.3f under AEM", r.Circuit, r.BatchRatio, r.LocalRatio)
		}
	}
	if !strings.Contains(RenderTable4(rows), "p.modif") {
		t.Fatal("render broken")
	}
}

func TestComplexityFast(t *testing.T) {
	rows, err := Complexity(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("fast mode rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Candidates == 0 {
			t.Fatal("no candidates")
		}
	}
	// Tiny circuits finish in single-digit milliseconds where scheduler
	// noise can invert the ratio; the complexity separation is asserted at
	// the largest size, where it is decisive.
	if last := rows[len(rows)-1]; last.SpeedUp < 1 {
		t.Fatalf("batch estimation slower than full at N=%d: %.2fx", last.Nodes, last.SpeedUp)
	}
	if !strings.Contains(RenderComplexity(rows), "speedup") {
		t.Fatal("render broken")
	}
}

func TestFlowsFast(t *testing.T) {
	rows, err := Flows(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fast mode rows: %d", len(rows))
	}
	for _, r := range rows {
		for _, ratio := range []float64{r.SASIMIRatio, r.SnapRatio, r.StochRatio} {
			if ratio <= 0 || ratio > 1 {
				t.Fatalf("%s: ratio %v out of range", r.Circuit, ratio)
			}
		}
		// SASIMI's move set subsumes constant substitutions, so it should
		// not lose badly to the other flows at the same budget.
		if r.SASIMIRatio > r.SnapRatio+0.05 {
			t.Fatalf("%s: sasimi %.3f much worse than snap %.3f", r.Circuit, r.SASIMIRatio, r.SnapRatio)
		}
	}
	if !strings.Contains(RenderFlows(rows), "sasimi") {
		t.Fatal("render broken")
	}
}
