package repro

import (
	"fmt"
	"strings"
	"time"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/snap"
	"batchals/internal/stoch"
	"batchals/internal/wu"
)

// FlowsRow compares the three ALS flows that share the batch estimator on
// one benchmark under the same ER budget: SASIMI (signal substitution),
// SNAP (constant setting, Shin–Gupta style) and the stochastic certified
// flow with late-phase batch assistance. This goes beyond the paper's
// tables: it demonstrates the §2/§6 claim that the estimation technique is
// flow-agnostic.
type FlowsRow struct {
	Circuit     string
	SASIMIRatio float64
	SASIMITime  time.Duration
	SnapRatio   float64
	SnapTime    time.Duration
	WuRatio     float64
	WuTime      time.Duration
	StochRatio  float64
	StochTime   time.Duration
}

// Flows runs the three flows on a small benchmark set at a 1% ER budget.
func Flows(opt Options) ([]FlowsRow, error) {
	opt = opt.fill()
	names := []string{"c880", "mul8", "cla32"}
	if opt.Fast {
		names = []string{"mul4"}
	}
	const threshold = 0.01
	var rows []FlowsRow
	for _, name := range names {
		golden := benchOrDie(name, bench.ByName)
		row := FlowsRow{Circuit: name}

		s1, err := sasimi.Run(golden, sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   threshold,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			Estimator: sasimi.EstimatorBatch,
		})
		if err != nil {
			return nil, fmt.Errorf("flows %s sasimi: %w", name, err)
		}
		row.SASIMIRatio, row.SASIMITime = s1.AreaRatio(), s1.TotalTime

		s2, err := snap.Run(golden, snap.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   threshold,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			UseBatch: true,
		})
		if err != nil {
			return nil, fmt.Errorf("flows %s snap: %w", name, err)
		}
		row.SnapRatio, row.SnapTime = s2.AreaRatio(), s2.TotalTime

		s3, err := wu.Run(golden, wu.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   threshold,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			UseBatch: true,
		})
		if err != nil {
			return nil, fmt.Errorf("flows %s wu: %w", name, err)
		}
		row.WuRatio, row.WuTime = s3.AreaRatio(), s3.TotalTime

		s4, err := stoch.Run(golden, stoch.Config{
			Metric:      core.MetricER,
			Threshold:   threshold,
			NumPatterns: opt.M,
			Seed:        opt.Seed,
			Moves:       150,
		})
		if err != nil {
			return nil, fmt.Errorf("flows %s stoch: %w", name, err)
		}
		row.StochRatio, row.StochTime = s4.AreaRatio(), s4.TotalTime
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFlows formats the flow comparison.
func RenderFlows(rows []FlowsRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: four flows sharing the batch estimator (ER <= 1%)\n")
	fmt.Fprintf(&sb, "%-8s | %8s %10s | %8s %10s | %8s %10s | %8s %10s\n",
		"circuit", "sasimi", "time", "snap", "time", "wu-lite", "time", "stoch", "time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s | %8.3f %10s | %8.3f %10s | %8.3f %10s | %8.3f %10s\n",
			r.Circuit,
			r.SASIMIRatio, r.SASIMITime.Round(time.Millisecond),
			r.SnapRatio, r.SnapTime.Round(time.Millisecond),
			r.WuRatio, r.WuTime.Round(time.Millisecond),
			r.StochRatio, r.StochTime.Round(time.Millisecond))
	}
	sb.WriteString("(area ratio, lower is better; SASIMI's richer move set should win)\n")
	return sb.String()
}
