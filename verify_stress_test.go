package batchals

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelVerifyCancellationStress cancels ApproximateContext at 100
// seeded random points — many landing mid-VerifyTopK, where the verifier
// is fanned out across the pool — and pins two properties: no goroutine
// leaks (the count settles back to the pre-stress level) and the flow
// stays reusable (a full run afterwards succeeds). The "Parallel" name
// puts it in CI's race-detector sweep, where a cancellation path that
// abandons in-flight workers without the barrier shows up as a race on
// the shared scratch.
func TestParallelVerifyCancellationStress(t *testing.T) {
	golden, err := Benchmark("cmp8")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Metric:      ErrorRate,
		Threshold:   0.04,
		NumPatterns: 1000,
		Seed:        11,
		Workers:     4,
		VerifyTopK:  4,
		Incremental: IncrementalOn,
	}

	// Calibrate: one uncancelled run measures the flow's duration so the
	// random cancel points spread across the whole iteration loop rather
	// than clustering at startup.
	start := time.Now()
	if _, err := ApproximateContext(context.Background(), golden, opts); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full <= 0 {
		full = time.Millisecond
	}

	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(17))
	var cancelled, completed atomic.Int64
	for i := 0; i < 100; i++ {
		delay := time.Duration(rng.Int63n(int64(full) + 1))
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		_, err := ApproximateContext(ctx, golden, opts)
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			completed.Add(1)
		case errors.Is(err, context.Canceled):
			cancelled.Add(1)
		default:
			t.Fatalf("run %d: unexpected error %v", i, err)
		}
	}
	if cancelled.Load() == 0 {
		t.Error("no run was cancelled; the stress points never landed inside the flow")
	}
	t.Logf("cancelled %d, completed %d", cancelled.Load(), completed.Load())

	// Goroutine settle: pool workers exit on Close; allow the runtime a
	// moment to reap them before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before stress, %d after settle", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reusable after the storm: a fresh uncancelled run still converges.
	res, err := ApproximateContext(context.Background(), golden, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumIterations == 0 {
		t.Error("post-stress run accepted nothing; flow state did not recover")
	}
}
