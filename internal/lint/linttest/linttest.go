// Package linttest is the golden-file test harness for the repo's
// analyzers — analysistest-style, stdlib-only. A fixture is a miniature
// module tree under the caller's testdata directory, declaring `module
// batchals` so stub packages occupy the real import paths the type-aware
// analyzers match on (batchals/internal/par, batchals/internal/core, ...).
//
// Expected findings are written as trailing comments on the offending
// line:
//
//	pool.Do(n, fn) // want `receives a context.Context but calls Pool\.Do`
//	x := make([]int, 4) // want "make" "second finding on the same line"
//
// Each quoted string (Go-quoted or backquoted) is a regular expression
// that must match the message of a diagnostic reported on that line; every
// diagnostic must be matched by exactly one expectation and vice versa.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"batchals/internal/lint"
)

// Run loads the fixture module rooted at dir with full type information,
// applies the analyzers, and reports any mismatch between the diagnostics
// and the fixture's // want comments as test errors.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader := &lint.Loader{Root: dir, GoListDir: dir}
	units, err := loader.Load()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s contains no Go packages", dir)
	}

	var diags []lint.Diagnostic
	expects := map[string][]*expectation{} // filename -> line-ordered expectations
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			t.Errorf("fixture %s: type error: %v", dir, terr)
		}
		diags = append(diags, lint.RunUnit(u, analyzers)...)
		for _, f := range u.Files {
			name := u.Fset.Position(f.Pos()).Filename
			exps, err := fileExpectations(u.Fset, f)
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
			expects[name] = append(expects[name], exps...)
		}
	}

	for _, d := range diags {
		if !claim(expects[d.Pos.Filename], d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for name, exps := range expects {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", name, e.line, e.pattern)
			}
		}
	}
}

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches its message, reporting whether one was found.
func claim(exps []*expectation, d lint.Diagnostic) bool {
	for _, e := range exps {
		if e.matched || e.line != d.Pos.Line || e.re == nil {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// fileExpectations extracts the // want expectations of one file.
func fileExpectations(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var exps []*expectation
	var firstErr error
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") && text != "want" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			patterns, err := ParseWantSpec(strings.TrimPrefix(text, "want"))
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("line %d: %w", line, err)
			}
			for _, pat := range patterns {
				e := &expectation{line: line, pattern: pat}
				re, err := regexp.Compile(pat)
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("line %d: bad pattern %q: %w", line, pat, err)
					}
					continue
				}
				e.re = re
				exps = append(exps, e)
			}
		}
	}
	return exps, firstErr
}

// ParseWantSpec parses the payload of a // want comment — a sequence of
// Go-quoted or backquoted regular-expression strings — into the pattern
// list. Trailing prose after the last quoted string is an error, as are
// unterminated quotes; a spec with no quoted strings yields nil. Exposed
// for the fuzz target.
func ParseWantSpec(spec string) ([]string, error) {
	var patterns []string
	rest := strings.TrimSpace(spec)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return patterns, fmt.Errorf("want spec: expected quoted pattern at %q", rest)
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return patterns, fmt.Errorf("want spec: unterminated or malformed pattern at %q", rest)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return patterns, fmt.Errorf("want spec: cannot unquote %s: %w", q, err)
		}
		patterns = append(patterns, unq)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return patterns, nil
}
