package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound contract:
// an observation exactly on a bound lands in that bound's bucket, one ULP
// above it spills into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", []float64{-1, 0, 1})

	h.Observe(-1)                     // exactly on bounds[0] -> bucket 0
	h.Observe(0)                      // exactly on bounds[1] -> bucket 1
	h.Observe(1)                      // exactly on bounds[2] -> bucket 2
	h.Observe(math.Nextafter(1, 2))   // just above the last bound -> +Inf bucket
	h.Observe(math.Nextafter(-1, -2)) // just below the first bound -> bucket 0
	h.Observe(math.Nextafter(-1, 0))  // just above bounds[0] -> bucket 1

	s := reg.Snapshot().Histograms["edges"]
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count %d, want 6", s.Count)
	}
	if s.Min != math.Nextafter(-1, -2) || s.Max != math.Nextafter(1, 2) {
		t.Fatalf("min/max %v/%v wrong", s.Min, s.Max)
	}
}

// TestHistogramRejectsNaNAndInf pins that non-finite observations are
// dropped and counted instead of poisoning sum/min/max.
func TestHistogramRejectsNaNAndInf(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("guarded", DriftBounds)
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(-0.5)

	s := reg.Snapshot().Histograms["guarded"]
	if s.Count != 2 {
		t.Fatalf("count %d, want 2 (non-finite values must not be recorded)", s.Count)
	}
	if s.Rejected != 3 {
		t.Fatalf("rejected %d, want 3", s.Rejected)
	}
	if math.IsNaN(s.Sum) || math.IsInf(s.Sum, 0) {
		t.Fatalf("sum poisoned: %v", s.Sum)
	}
	if s.Sum != 0 || s.Min != -0.5 || s.Max != 0.5 {
		t.Fatalf("aggregates wrong: sum=%v min=%v max=%v", s.Sum, s.Min, s.Max)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

// TestHistogramSnapshotWhileObservingParallel runs Observe (including
// boundary and non-finite values) against concurrent snapshots; -race
// must stay silent and every snapshot must be internally consistent.
func TestHistogramSnapshotWhileObservingParallel(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("live", []float64{0, 0.5, 1})
	values := []float64{-0.25, 0, 0.25, 0.5, 1, 2, math.NaN(), math.Inf(1)}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 512; i++ {
				h.Observe(values[(g+i)%len(values)])
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := reg.Snapshot().Histograms["live"]
			var total int64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("torn snapshot: bucket sum %d != count %d", total, s.Count)
				return
			}
			if s.Count > 0 && (math.IsNaN(s.Sum) || s.Min > s.Max) {
				t.Errorf("inconsistent aggregates: %+v", s)
				return
			}
		}
	}()
	wg.Wait()

	s := reg.Snapshot().Histograms["live"]
	if s.Count+s.Rejected != 4*512 {
		t.Fatalf("count %d + rejected %d != %d observations", s.Count, s.Rejected, 4*512)
	}
	if s.Rejected != 4*512/4 {
		t.Fatalf("rejected %d, want %d (2 of 8 values per cycle are non-finite)", s.Rejected, 4*512/4)
	}
}
