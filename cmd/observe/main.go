// Command observe prints a statistical testability report for a circuit:
// per-gate signal probability, observability (from the change propagation
// matrix) and stuck-at impact, under a uniform Monte Carlo input
// distribution. Low-impact nodes are where an ALS flow finds its savings;
// high-impact, low-observability nodes are where a test engineer inserts
// observation points.
//
// Usage:
//
//	observe -circuit c880 -m 10000 -top 20
//	observe -circuit my.bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"batchals"
	"batchals/internal/core"
	"batchals/internal/sim"
)

func main() {
	var (
		circuitFlag = flag.String("circuit", "", "benchmark name or .bench/.blif file")
		m           = flag.Int("m", 10000, "Monte Carlo pattern count")
		seed        = flag.Int64("seed", 0, "random seed")
		top         = flag.Int("top", 25, "rows to print (0 = all), least testable first")
	)
	flag.Parse()
	if *circuitFlag == "" {
		fmt.Fprintln(os.Stderr, "observe: -circuit is required")
		flag.Usage()
		os.Exit(2)
	}
	var (
		n   *batchals.Network
		err error
	)
	if strings.ContainsAny(*circuitFlag, "/.") {
		n, err = batchals.Load(*circuitFlag)
	} else {
		n, err = batchals.Benchmark(*circuitFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "observe:", err)
		os.Exit(1)
	}
	p := sim.RandomPatterns(n.NumInputs(), *m, *seed)
	vals := sim.Simulate(n, p)
	cpm := core.Build(n, vals)
	rows := core.TestabilityReport(n, vals, cpm)
	bt := cpm.BuildTime()
	unit := time.Millisecond
	if bt < 10*time.Millisecond {
		unit = time.Microsecond
	}
	fmt.Printf("%s: %d gates, M=%d patterns, CPM built in %v\n",
		n.Name, n.NumGates(), *m, bt.Round(unit))
	fmt.Print(core.RenderTestability(rows, *top))
}
