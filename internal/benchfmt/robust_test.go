package benchfmt

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics: arbitrary garbage must produce an error or a valid
// network, never a panic.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	pieces := []string{
		"INPUT(", ")", "OUTPUT(", "=", "AND", "OR(", "a", "b", ",", "\n",
		"#", "x1", "NOT", "MUX", "CONST1", " ", "\t", "(", "G17", "BUFF",
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		for i := 0; i < r.Intn(60); i++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v\ninput: %q", trial, p, sb.String())
				}
			}()
			n, err := Parse(strings.NewReader(sb.String()), "fuzz")
			if err == nil && n.Validate() != nil {
				t.Fatalf("trial %d: accepted invalid network", trial)
			}
		}()
	}
}

// TestParseRandomBytes: pure random bytes never panic either.
func TestParseRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		buf := make([]byte, r.Intn(400))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			_, _ = Parse(strings.NewReader(string(buf)), "fuzz")
		}()
	}
}
