package bitvec

// Arena hands out zeroed n-bit vectors backed by shared slabs, replacing
// per-vector make calls in construction-heavy paths (one CPM build
// allocates a Vec per (node, output) pair — tens of thousands of small
// objects that the timeline profiler attributes to the serial tail).
// Each chunk is two allocations — a []Vec header slab and one contiguous
// []uint64 word slab — so a build costs O(1) allocations instead of
// O(nodes×outputs).
//
// Vectors from an arena remain valid for as long as they are referenced:
// exhausted slabs are abandoned to the garbage collector, never recycled,
// so New never invalidates earlier handles. An Arena is single-goroutine;
// parallel builders allocate driver-side before the fan-out.
type Arena struct {
	n     int // bits per vector
	w     int // words per vector
	chunk int // vectors per slab
	vecs  []Vec
	words []uint64
	used  int // vectors handed out from the current slab
}

// NewArena returns an arena producing n-bit vectors. chunk sets the slab
// granularity in vectors; chunk <= 0 selects a default sized so a slab is
// a few hundred KiB for typical pattern counts. Callers that know the
// total vector count up front pass it as chunk so the build is exactly
// one slab.
func NewArena(n, chunk int) *Arena {
	if n < 0 {
		panic("bitvec: negative length")
	}
	if chunk <= 0 {
		chunk = 1024
	}
	return &Arena{n: n, w: Words(n), chunk: chunk}
}

// New returns a zeroed n-bit vector carved from the arena's current slab,
// growing a fresh slab when exhausted.
func (a *Arena) New() *Vec {
	if a.used >= len(a.vecs) {
		a.vecs = make([]Vec, a.chunk)
		a.words = make([]uint64, a.chunk*a.w)
		a.used = 0
	}
	v := &a.vecs[a.used]
	off := a.used * a.w
	// Full slice expression pins capacity so an append through the handle
	// can never bleed into the neighbouring vector's words.
	v.n = a.n
	v.words = a.words[off : off+a.w : off+a.w]
	a.used++
	return v
}
