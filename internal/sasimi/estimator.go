// Package sasimi implements the SASIMI approximate logic synthesis flow
// (Venkataramani et al., DATE 2013) as re-done by the paper: a greedy
// iterative loop whose approximate transformation substitutes a signal by
// an almost-identical signal (or its complement, or a constant), removing
// the substituted signal's maximum fanout-free cone.
//
// Three interchangeable error estimators drive the greedy choice:
//
//   - EstimatorBatch — the paper's contribution: one Monte Carlo run per
//     iteration plus the change propagation matrix (internal/core).
//   - EstimatorFull — the accurate baseline of Table 2: per-candidate
//     fanout-cone resimulation.
//   - EstimatorLocal — the original SASIMI behaviour the paper improves
//     on: the local difference probability of the pair, with no output
//     propagation ("without accurate error estimation").
//
// The flow follows Section 3.2: evaluate all candidates, apply the one with
// the best ΔArea/ΔError score whose estimated resulting error stays within
// the threshold, then measure the actual error on the same fixed pattern
// set; if the measured error exceeds the threshold the transformation is
// rolled back and the flow stops.
package sasimi

import (
	"context"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// EstimatorKind selects how candidate errors are estimated.
type EstimatorKind int

// Supported estimator kinds.
const (
	EstimatorBatch EstimatorKind = iota
	EstimatorFull
	EstimatorLocal
)

// String names the estimator kind.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorBatch:
		return "batch"
	case EstimatorFull:
		return "full"
	case EstimatorLocal:
		return "local"
	}
	return "unknown"
}

// iterContext is the per-iteration evaluation context shared by estimators.
type iterContext struct {
	net    *circuit.Network
	vals   *sim.Values
	st     *emetric.State
	metric core.Metric
	cpm    *core.CPM // non-nil for EstimatorBatch
	pool   *par.Pool // nil or single-worker selects the sequential paths
	// engine, when non-nil, owns the CPM across iterations: prepare asks it
	// for the matrix (an incremental refresh after an accepted edit) instead
	// of rebuilding from scratch.
	engine *core.Engine
	// goCtx carries the flow's cancellation into the pattern-sharded
	// scoring dispatch; nil means not cancellable.
	goCtx context.Context
}

// estimator evaluates the increased error of one candidate substitution.
type estimator interface {
	// prepare is called once per flow iteration, after simulation.
	prepare(ctx *iterContext)
	// delta estimates the increased error of forcing target to newVal;
	// change is precomputed as current(target) XOR newVal.
	delta(target circuit.NodeID, newVal, change *bitvec.Vec) float64
	// exactFor reports whether delta for a change injected at target is
	// provably exact on the pattern set (see analyze.Certificate).
	exactFor(target circuit.NodeID) bool
}

type batchEstimator struct{ ctx *iterContext }

func (e *batchEstimator) prepare(ctx *iterContext) {
	if ctx.engine != nil {
		ctx.cpm = ctx.engine.CPM()
	} else {
		ctx.cpm = core.BuildParallel(ctx.net, ctx.vals, ctx.pool)
	}
	e.ctx = ctx
}

func (e *batchEstimator) delta(target circuit.NodeID, newVal, change *bitvec.Vec) float64 {
	if e.ctx.metric == core.MetricAEM {
		return e.ctx.cpm.DeltaAEM(target, change, e.ctx.st)
	}
	return e.ctx.cpm.DeltaER(target, change, e.ctx.st)
}

// exactFor consults the CPM's reconvergence-freedom certificate: the batch
// estimate is provably exact exactly for targets whose output cone is
// tree-shaped.
func (e *batchEstimator) exactFor(target circuit.NodeID) bool {
	return e.ctx.cpm.ExactFor(target)
}

type fullEstimator struct{ ctx *iterContext }

func (e *fullEstimator) prepare(ctx *iterContext) { e.ctx = ctx }

func (e *fullEstimator) delta(target circuit.NodeID, newVal, change *bitvec.Vec) float64 {
	return core.ExactDelta(e.ctx.net, e.ctx.vals, target, newVal, e.ctx.st, e.ctx.metric)
}

// exactFor is always true: cone resimulation measures the error directly.
func (e *fullEstimator) exactFor(circuit.NodeID) bool { return true }

type localEstimator struct{ ctx *iterContext }

func (e *localEstimator) prepare(ctx *iterContext) { e.ctx = ctx }

// delta for the local estimator is the difference probability observed at
// the substituted signal itself: logic masking between the local change and
// the primary outputs is ignored, exactly the simplification the paper
// identifies in prior flows. The value doubles as both metrics' estimate:
// for ER it is the toggle probability, and for AEM the method has no output
// knowledge to weight toggles with, so each toggle is charged a nominal
// magnitude of one LSB — numerically the same p, which is why there is a
// single return rather than a per-metric branch.
func (e *localEstimator) delta(target circuit.NodeID, newVal, change *bitvec.Vec) float64 {
	return float64(change.Count()) / float64(e.ctx.vals.M)
}

// exactFor is always false: the local method ignores logic masking, so no
// structural certificate applies.
func (e *localEstimator) exactFor(circuit.NodeID) bool { return false }

func newEstimator(k EstimatorKind) estimator {
	switch k {
	case EstimatorBatch:
		return &batchEstimator{}
	case EstimatorFull:
		return &fullEstimator{}
	case EstimatorLocal:
		return &localEstimator{}
	}
	panic("sasimi: unknown estimator kind")
}
