package benchfmt

import (
	"io"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the ISCAS-bench parser. The
// parser must never panic: it either returns a structured error or a
// network that passes Validate and can be written back out.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Minimal valid netlist.
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
		// All gate kinds, comments, blank lines.
		"# full adder slice\nINPUT(a)\nINPUT(b)\nINPUT(cin)\n\nOUTPUT(s)\nOUTPUT(cout)\n" +
			"x1 = XOR(a, b)\ns = XOR(x1, cin)\nn1 = NAND(a, b)\nn2 = NOR(a, b)\n" +
			"i1 = NOT(n2)\nb1 = BUF(i1)\ncout = OR(n1, i1)\n",
		// Output listed before its driver (forward reference).
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
		// Malformed: unknown gate operator.
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
		// Malformed: arity violation for NOT.
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n",
		// Malformed: duplicate signal name.
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n",
		// Malformed: unresolved signal.
		"OUTPUT(y)\ny = AND(p, q)\n",
		// Malformed: missing parentheses.
		"INPUT a\nOUTPUT(y)\ny = NOT(a)\n",
		// Truncated gate line.
		"INPUT(a)\nOUTPUT(y)\ny = AND(a,",
		// Pathological tokens.
		"INPUT(\x00)\nOUTPUT(\xff)\n",
		"",
		"=\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejection with a structured error is fine
		}
		if verr := n.Validate(); verr != nil {
			t.Fatalf("Parse accepted a network that fails Validate: %v\ninput: %q", verr, src)
		}
		if werr := Write(io.Discard, n); werr != nil {
			t.Fatalf("accepted network cannot be written back: %v\ninput: %q", werr, src)
		}
	})
}
