package partition

import (
	"context"
	"fmt"
	"time"

	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
)

// PartReport summarises one part's flow run inside a Report.
type PartReport struct {
	Index   int     `json:"index"`
	Cells   int     `json:"cells"`
	CutIns  int     `json:"cut_ins"`
	Outputs int     `json:"outputs"`
	Budget  float64 `json:"budget"`
	// LocalError is the part-local error the flow measured on its
	// recorded pattern set; it is not additive into the global error,
	// which is why the merge re-measures globally.
	LocalError float64 `json:"local_error"`
	AreaBefore float64 `json:"area_before"`
	AreaAfter  float64 `json:"area_after"`
	Iterations int     `json:"iterations"`
	// Reverted marks a part restored to its golden logic by the repair
	// loop because the merged network measured over the global budget.
	Reverted bool `json:"reverted,omitempty"`
}

// Report describes one partitioned run end to end.
type Report struct {
	NumParts    int           `json:"num_parts"`
	TargetCells int           `json:"target_cells"`
	MaxCut      int           `json:"max_cut"`
	Policy      string        `json:"policy"`
	Rounds      int           `json:"rounds"`
	Reclaimed   float64       `json:"reclaimed"` // budget moved between parts by reclamation
	MergedError float64       `json:"merged_error"`
	Reverted    int           `json:"reverted"`
	Parts       []PartReport  `json:"parts,omitempty"`
	PlanTime    time.Duration `json:"plan_ns"`
	FlowTime    time.Duration `json:"flow_ns"`
	MergeTime   time.Duration `json:"merge_ns"`
}

// Run executes the partition-and-conquer flow: plan, extract, allocate,
// per-part SASIMI flows (parallel across parts on cfg.Workers pool
// workers, each part itself running the sequential pattern path), budget
// reclamation rounds, merge, and the global re-measurement acceptance
// gate with its revert-worst repair loop. Results are deterministic at
// any worker count: parts are independent and merged in a fixed order.
//
// Only the ER metric is supported — AEM is defined over the parent's
// output word and does not decompose across part boundaries.
//
// When the plan degenerates to a single part the monolithic flow runs
// unchanged, so small circuits pay nothing for the partition vocabulary.
func Run(ctx context.Context, golden *circuit.Network, cfg sasimi.Config, opt Options) (*sasimi.Result, *Report, error) {
	start := time.Now()
	opt.FillDefaults()
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	cfg.Budget.FillDefaults()
	if err := cfg.Budget.Validate("partition"); err != nil {
		return nil, nil, err
	}
	if cfg.Metric == core.MetricAEM {
		return nil, nil, fmt.Errorf("partition: the partitioned flow supports only the ER metric (AEM does not decompose across part boundaries)")
	}
	if cfg.Patterns != nil && cfg.Patterns.NumPatterns() == 0 {
		return nil, nil, fmt.Errorf("partition: %w: empty Patterns override", flow.ErrNoPatterns)
	}
	if err := golden.Validate(); err != nil {
		return nil, nil, fmt.Errorf("partition: invalid input network: %w", err)
	}

	tl := cfg.Timeline
	sp := tl.Start("partition.plan", obs.PhaseCPMBuild)
	plan, err := BuildPlan(golden, opt)
	tl.End(sp)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		NumParts:    plan.NumParts(),
		TargetCells: opt.TargetCells,
		MaxCut:      opt.MaxCut,
		Policy:      opt.BudgetPolicy,
	}
	rep.PlanTime = time.Since(start)
	if plan.NumParts() <= 1 {
		// Degenerate plan: the monolithic flow is strictly better.
		res, err := sasimi.RunContext(ctx, golden, cfg)
		if res != nil {
			rep.MergedError = res.FinalError
		}
		return res, rep, err
	}

	pool := par.NewPool(cfg.Workers)
	defer pool.Close()
	if tl != nil {
		pool.AttachTimeline(tl, true)
	}

	patterns := cfg.Patterns
	if patterns == nil {
		patterns = sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	}
	pool.Label("partition.sim", obs.PhaseSimulate)
	vals := sim.SimulateParallel(golden, patterns, pool)

	sp = tl.Start("partition.extract", obs.PhaseCPMBuild)
	parts, err := plan.Extract(vals)
	tl.End(sp)
	if err != nil {
		return nil, nil, err
	}

	alloc := NewAllocator(cfg.Threshold, WeightsFor(opt.BudgetPolicy, golden, plan))

	// Per-part flows: each part runs the sequential pattern path
	// (Workers: 1) while the outer pool parallelises across parts — the
	// partition lanes the timeline shows. Per-part observability sinks
	// stay nil: the timeline recorder and metrics registry are
	// single-driver surfaces owned by this partitioned run.
	results := make([]*sasimi.Result, plan.NumParts())
	runPart := func(k int) error {
		ex := &parts[k]
		if len(ex.Part.Outputs) == 0 {
			// Dead region: nothing downstream observes it; keep golden.
			return nil
		}
		pcfg := sasimi.Config{
			Budget: flow.Budget{
				Metric:        cfg.Metric,
				Threshold:     alloc.Alloc(k),
				NumPatterns:   patterns.NumPatterns(),
				Seed:          cfg.Seed,
				Library:       cfg.Library,
				MaxIterations: cfg.MaxIterations,
			},
			Estimator:       cfg.Estimator,
			Workers:         1,
			Incremental:     cfg.Incremental,
			Patterns:        ex.Patterns,
			SimilarityCap:   cfg.SimilarityCap,
			MaxCandidates:   cfg.MaxCandidates,
			VerifyTopK:      cfg.VerifyTopK,
			KeepTrace:       cfg.KeepTrace,
			CheckInvariants: cfg.CheckInvariants,
		}
		r, err := sasimi.RunContext(ctx, ex.Net, pcfg)
		if err != nil {
			return fmt.Errorf("partition: part %d flow: %w", k, err)
		}
		results[k] = r
		return nil
	}
	runBatch := func(idx []int) error {
		errs := make([]error, len(idx))
		pool.Label("partition.flow", obs.PhaseEstimate)
		_ = pool.DoCtx(ctx, len(idx), func(_, i int) {
			errs[i] = runPart(idx[i])
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}

	flowStart := time.Now()
	all := make([]int, plan.NumParts())
	for i := range all {
		all[i] = i
	}
	if err := runBatch(all); err != nil {
		return nil, nil, err
	}
	rep.Rounds = 1

	// Reclamation rounds: converged parts return their slack, hungry
	// parts get it and re-run from their golden with the larger budget.
	for rep.Rounds < opt.MaxRounds {
		measured := make([]float64, plan.NumParts())
		for k, r := range results {
			if r != nil {
				measured[k] = r.FinalError
			}
		}
		before := alloc.Allocations()
		grown := alloc.Reclaim(measured)
		if len(grown) == 0 {
			break
		}
		for _, k := range grown {
			rep.Reclaimed += alloc.Alloc(k) - before[k]
		}
		if err := runBatch(grown); err != nil {
			return nil, nil, err
		}
		rep.Rounds++
	}
	rep.FlowTime = time.Since(flowStart)

	// Merge and the global acceptance gate. Per-part local errors are
	// measured against recorded (pre-approximation) boundary inputs, so
	// the composition can drift past the naive sum; the gate re-measures
	// the real thing and the repair loop reverts the worst offender until
	// the merged network fits the budget (terminating at the golden
	// network, whose error is zero).
	mergeStart := time.Now()
	reverted := make([]bool, plan.NumParts())
	partNets := func() []*circuit.Network {
		nets := make([]*circuit.Network, plan.NumParts())
		for k := range nets {
			if results[k] != nil && !reverted[k] {
				nets[k] = results[k].Approx
			} else {
				nets[k] = parts[k].Net
			}
		}
		return nets
	}
	var merged *circuit.Network
	var measuredErr float64
	for {
		sp = tl.Start("partition.merge", obs.PhaseVerifyApply)
		merged, err = plan.Merge(partNets())
		tl.End(sp)
		if err != nil {
			return nil, nil, err
		}
		sp = tl.Start("partition.measure", obs.PhaseVerifyApply)
		measuredErr = emetric.Measure(golden, merged, patterns).ErrorRate
		tl.End(sp)
		if measuredErr <= cfg.Threshold+1e-12 {
			break
		}
		worst, worstErr := -1, 0.0
		for k, r := range results {
			if r == nil || reverted[k] || r.NumIterations == 0 {
				continue
			}
			if worst == -1 || r.FinalError > worstErr {
				worst, worstErr = k, r.FinalError
			}
		}
		if worst == -1 {
			// Every part is already golden: the merged network is the
			// parent's logic and cannot measure over an ER budget >= 0.
			return nil, nil, fmt.Errorf("partition: merged error %g over budget %g with all parts golden", measuredErr, cfg.Threshold)
		}
		reverted[worst] = true
		rep.Reverted++
	}
	rep.MergeTime = time.Since(mergeStart)
	rep.MergedError = measuredErr

	res := &sasimi.Result{
		Approx:       merged,
		OriginalArea: cfg.Library.NetworkArea(golden),
		FinalArea:    cfg.Library.NetworkArea(merged),
		FinalError:   measuredErr,
		TotalTime:    time.Since(start),
	}
	rep.Parts = make([]PartReport, plan.NumParts())
	for k := range plan.Parts {
		part := &plan.Parts[k]
		pr := PartReport{
			Index:      k,
			Cells:      part.Cells(),
			CutIns:     part.CutIns,
			Outputs:    len(part.Outputs),
			Budget:     alloc.Alloc(k),
			AreaBefore: cfg.Library.NetworkArea(parts[k].Net),
			Reverted:   reverted[k],
		}
		pr.AreaAfter = pr.AreaBefore
		if r := results[k]; r != nil {
			pr.LocalError = r.FinalError
			pr.Iterations = r.NumIterations
			if !reverted[k] {
				pr.AreaAfter = r.FinalArea
				res.NumIterations += r.NumIterations
				res.CPMTime += r.CPMTime
				res.EstimateTime += r.EstimateTime
				for ph := range r.Phases.Stats {
					res.Phases.Stats[ph].Time += r.Phases.Stats[ph].Time
					res.Phases.Stats[ph].Count += r.Phases.Stats[ph].Count
					res.Phases.Stats[ph].Mem.Bytes += r.Phases.Stats[ph].Mem.Bytes
					res.Phases.Stats[ph].Mem.Mallocs += r.Phases.Stats[ph].Mem.Mallocs
				}
				if cfg.KeepTrace {
					res.Iterations = append(res.Iterations, r.Iterations...)
				}
			}
		}
		rep.Parts[k] = pr
	}
	return res, rep, nil
}
