package work

import (
	"math/rand"
	mrv2 "math/rand/v2"
)

// BadGlobal draws from the process-global source; reproducibility from a
// Seed option is lost.
func BadGlobal() int {
	return rand.Intn(10) // want "global math/rand source"
}

// BadGlobalV2 does the same through math/rand/v2.
func BadGlobalV2() int {
	return mrv2.IntN(10) // want "global math/rand source"
}

// GoodSeeded threads an explicit seeded source.
func GoodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
