// Command alsrun runs an approximate logic synthesis flow on a benchmark or
// circuit file under an error constraint and reports the result.
//
// Usage:
//
//	alsrun -circuit mul8 -metric er -threshold 0.01
//	alsrun -circuit path/to/c880.bench -metric aem -threshold 12.5 -out approx.bench
//	alsrun -list
//
// The -estimator flag selects batch (the paper's method, default), full
// (per-candidate resimulation) or local (no propagation, the prior-work
// baseline). With -trace, every accepted substitution is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"batchals"
	"batchals/internal/snap"
	"batchals/internal/stoch"
	"batchals/internal/wu"
)

func main() {
	var (
		circuitFlag = flag.String("circuit", "", "benchmark name or .bench/.blif file path")
		flowFlag    = flag.String("flow", "sasimi", "ALS flow: sasimi, snap (constant-setting), wu (literal-removal) or stoch (stochastic)")
		metricFlag  = flag.String("metric", "er", "error metric: er or aem")
		threshold   = flag.Float64("threshold", 0.01, "error budget (ER fraction or absolute AEM)")
		estimator   = flag.String("estimator", "batch", "estimator: batch, full or local")
		verifyTopK  = flag.Int("verify", 0, "re-check the K best candidates per iteration exactly (0 = off)")
		patterns    = flag.Int("m", 10000, "Monte Carlo pattern count")
		seed        = flag.Int64("seed", 0, "random seed")
		outFile     = flag.String("out", "", "write the approximate circuit to this .bench/.blif file")
		trace       = flag.Bool("trace", false, "print every accepted substitution")
		list        = flag.Bool("list", false, "list built-in benchmark names and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(batchals.BenchmarkNames(), "\n"))
		return
	}
	if *circuitFlag == "" {
		fmt.Fprintln(os.Stderr, "alsrun: -circuit is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	golden, err := loadCircuit(*circuitFlag)
	if err != nil {
		fatal(err)
	}

	opts := batchals.Options{
		Threshold:   *threshold,
		NumPatterns: *patterns,
		Seed:        *seed,
		KeepTrace:   *trace,
		VerifyTopK:  *verifyTopK,
	}
	switch strings.ToLower(*metricFlag) {
	case "er":
		opts.Metric = batchals.ErrorRate
	case "aem":
		opts.Metric = batchals.AvgErrorMagnitude
	default:
		fatal(fmt.Errorf("unknown metric %q (want er or aem)", *metricFlag))
	}
	switch strings.ToLower(*estimator) {
	case "batch":
		opts.Estimator = batchals.Batch
	case "full":
		opts.Estimator = batchals.Full
	case "local":
		opts.Estimator = batchals.Local
	default:
		fatal(fmt.Errorf("unknown estimator %q (want batch, full or local)", *estimator))
	}

	fmt.Printf("circuit: %s (%d inputs, %d outputs, area %.0f, delay %.0f)\n",
		golden.Name, golden.NumInputs(), golden.NumOutputs(),
		batchals.Area(golden), batchals.Delay(golden))
	fmt.Printf("flow: %s/%s, %s <= %g, M=%d, seed=%d\n",
		*flowFlag, *estimator, strings.ToUpper(*metricFlag), *threshold, *patterns, *seed)

	switch strings.ToLower(*flowFlag) {
	case "sasimi":
		runSASIMI(golden, opts, *trace, *outFile)
	case "snap":
		res, err := snap.Run(golden, snap.Config{
			Metric:      opts.Metric,
			Threshold:   opts.Threshold,
			NumPatterns: opts.NumPatterns,
			Seed:        opts.Seed,
			UseBatch:    opts.Estimator == batchals.Batch,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d constants set, measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
	case "wu":
		res, err := wu.Run(golden, wu.Config{
			Metric:      opts.Metric,
			Threshold:   opts.Threshold,
			NumPatterns: opts.NumPatterns,
			Seed:        opts.Seed,
			UseBatch:    opts.Estimator == batchals.Batch,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d literals removed, measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
	case "stoch":
		res, err := stoch.Run(golden, stoch.Config{
			Metric:      opts.Metric,
			Threshold:   opts.Threshold,
			NumPatterns: opts.NumPatterns,
			Seed:        opts.Seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d/%d moves accepted (%d batch-assisted), measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.Accepted, res.Proposed,
			res.BatchMoves, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
	default:
		fatal(fmt.Errorf("unknown flow %q (want sasimi, snap, wu or stoch)", *flowFlag))
	}
}

func runSASIMI(golden *batchals.Network, opts batchals.Options, trace bool, outFile string) {
	res, err := batchals.Approximate(golden, opts)
	if err != nil {
		fatal(err)
	}
	if trace {
		for _, it := range res.Iterations {
			inv := ""
			if it.Inverted {
				inv = " (inverted)"
			}
			fmt.Printf("  iter %3d: %s <- %s%s  est ΔE=%+.5f  measured=%.5f  area=%.0f\n",
				it.Iter, it.Target, it.Sub, inv, it.EstDelta, it.ActualErr, it.Area)
		}
	}
	fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d substitutions, measured error %.5f\n",
		res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
	fmt.Printf("runtime: %s total (CPM %s, estimation %s)\n",
		res.TotalTime.Round(time.Millisecond),
		res.CPMTime.Round(time.Millisecond),
		res.EstimateTime.Round(time.Millisecond))
	saveOut(outFile, res.Approx)
}

func saveOut(path string, n *batchals.Network) {
	if path == "" {
		return
	}
	if err := batchals.Save(path, n); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// loadCircuit resolves a benchmark name or a file path.
func loadCircuit(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsrun:", err)
	os.Exit(1)
}
