package batchals

import (
	"context"

	"batchals/internal/flow"
	"batchals/internal/partition"
	"batchals/internal/sasimi"
)

// PartitionOptions opts a flow into the partition-and-conquer path: the
// netlist is cut into ~TargetCells-gate parts along fanout-free-region
// boundaries, each part runs an independent SASIMI flow under a slice of
// the global error budget (parts run in parallel across Options.Workers),
// and the merged result is re-measured globally before being accepted.
// Partitioned runs support the ErrorRate metric only.
type PartitionOptions struct {
	// TargetCells is the soft lower bound on gates per part (default 2000).
	TargetCells int
	// MaxCut is the cut width below which a part boundary is accepted
	// immediately (default 64); wider boundaries fall back to the
	// narrowest cut in the size window.
	MaxCut int
	// BudgetPolicy splits the global error budget across parts:
	// PolicyObservability (default) or PolicyUniform.
	BudgetPolicy string
	// MaxRounds bounds the allocate/run/reclaim budget loop (default 2).
	MaxRounds int
}

// Budget-split policies for PartitionOptions.BudgetPolicy.
const (
	PolicyObservability = partition.PolicyObservability
	PolicyUniform       = partition.PolicyUniform
)

// PartitionReport describes a partitioned run: part sizes and cut widths,
// per-part budgets and realised local errors, reclamation rounds, and the
// final globally measured error (re-exported from internal/partition).
type PartitionReport = partition.Report

// Flow is the builder-style entry point to the approximation flows. It
// subsumes Approximate/ApproximateContext: construct one with NewFlow,
// optionally attach observability sinks, then Run it. A Flow owns the
// wiring from Options to the engine configuration — including the
// partitioned path when Options.Partition is set — and retains the
// partition report for inspection after the run.
//
//	res, err := batchals.NewFlow(golden, batchals.Options{
//		Metric:    batchals.ErrorRate,
//		Threshold: 0.01,
//		Partition: &batchals.PartitionOptions{TargetCells: 2000},
//	}).Run(ctx)
//
// A Flow is single-use: Run consumes it, and the observability setters
// must be called before Run. It is not safe for concurrent use.
type Flow struct {
	golden *Network
	opts   Options
	report *PartitionReport
}

// NewFlow prepares a flow over golden with the given options. Nothing is
// validated until Run, so construction never fails.
func NewFlow(golden *Network, opts Options) *Flow {
	return &Flow{golden: golden, opts: opts}
}

// WithTracer attaches a flow-event tracer (see NewJSONLTracer). It
// overrides Options.Tracer and returns the Flow for chaining.
func (f *Flow) WithTracer(t Tracer) *Flow {
	f.opts.Tracer = t
	return f
}

// WithMetrics attaches a metrics registry, overriding Options.Metrics.
func (f *Flow) WithMetrics(m *Metrics) *Flow {
	f.opts.Metrics = m
	return f
}

// WithTimeline attaches a causal span recorder, overriding
// Options.Timeline. In a partitioned run the recorder's worker lanes show
// the per-partition flows as distinct concurrent spans.
func (f *Flow) WithTimeline(tl *TimelineRecorder) *Flow {
	f.opts.Timeline = tl
	return f
}

// Run executes the flow: the monolithic SASIMI engine by default, or the
// partitioned path when Options.Partition is set. The context is checked
// at iteration boundaries and inside the parallel fan-outs; on
// cancellation the consistent partial result is returned with ctx.Err().
func (f *Flow) Run(ctx context.Context) (*Result, error) {
	cfg := f.config()
	if f.opts.Partition == nil {
		return sasimi.RunContext(ctx, f.golden, cfg)
	}
	p := f.opts.Partition
	res, rep, err := partition.Run(ctx, f.golden, cfg, partition.Options{
		TargetCells:  p.TargetCells,
		MaxCut:       p.MaxCut,
		BudgetPolicy: p.BudgetPolicy,
		MaxRounds:    p.MaxRounds,
	})
	f.report = rep
	return res, err
}

// PartitionReport returns the report of the last partitioned Run, or nil
// when the flow has not run or ran monolithically. A report is available
// even for degenerate single-part plans (NumParts == 1).
func (f *Flow) PartitionReport() *PartitionReport { return f.report }

func (f *Flow) config() sasimi.Config {
	o := &f.opts
	return sasimi.Config{
		Budget: flow.Budget{
			Metric:        o.Metric,
			Threshold:     o.Threshold,
			NumPatterns:   o.NumPatterns,
			Seed:          o.Seed,
			MaxIterations: o.MaxIterations,
		},
		Estimator:       o.Estimator,
		Workers:         o.Workers,
		KeepTrace:       o.KeepTrace,
		VerifyTopK:      o.VerifyTopK,
		Tracer:          o.Tracer,
		Metrics:         o.Metrics,
		Timeline:        o.Timeline,
		CheckInvariants: o.CheckInvariants,
		Incremental:     o.Incremental,
	}
}
