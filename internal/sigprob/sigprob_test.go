package sigprob

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/bdd"
	"batchals/internal/circuit"
)

func TestExactOnTree(t *testing.T) {
	// On a fanout-free circuit the independence assumption holds, so the
	// analytical result must equal the exact BDD result.
	n := circuit.New("tree")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	g1 := n.AddGate(circuit.KindAnd, a, b)
	g2 := n.AddGate(circuit.KindOr, c, d)
	g3 := n.AddGate(circuit.KindXor, g1, g2)
	n.AddOutput("o", g3)

	inputProb := []float64{0.3, 0.8, 0.1, 0.6}
	got, err := Propagate(n, inputProb)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := bdd.ExactSignalProbabilities(n, inputProb)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range n.LiveNodes() {
		if math.Abs(got[id]-exact[id]) > 1e-12 {
			t.Fatalf("node %d: analytical %v exact %v", id, got[id], exact[id])
		}
	}
}

func TestApproximateOnReconvergence(t *testing.T) {
	// f = AND(a, NOT(a)) is constant 0, but independence predicts 0.25.
	n := circuit.New("rc")
	a := n.AddInput("a")
	na := n.AddGate(circuit.KindNot, a)
	f := n.AddGate(circuit.KindAnd, a, na)
	n.AddOutput("f", f)
	got, err := Propagate(n, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[f]-0.25) > 1e-12 {
		t.Fatalf("expected the documented 0.25 overestimate, got %v", got[f])
	}
	exact, _ := bdd.ExactSignalProbabilities(n, []float64{0.5})
	if exact[f] != 0 {
		t.Fatal("sanity: exact must be 0")
	}
}

func TestAllGateKinds(t *testing.T) {
	n := circuit.New("kinds")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	gates := []circuit.NodeID{
		n.AddGate(circuit.KindAnd, a, b),
		n.AddGate(circuit.KindOr, a, b),
		n.AddGate(circuit.KindNand, a, b),
		n.AddGate(circuit.KindNor, a, b),
		n.AddGate(circuit.KindXor, a, b),
		n.AddGate(circuit.KindXnor, a, b),
		n.AddGate(circuit.KindNot, a),
		n.AddGate(circuit.KindBuf, b),
		n.AddGate(circuit.KindMux, s, a, b),
		n.AddConst(false),
		n.AddConst(true),
	}
	for _, g := range gates {
		n.AddOutput("", g)
	}
	pa, pb, ps := 0.3, 0.7, 0.4
	got, err := Propagate(n, []float64{pa, pb, ps})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		pa * pb,
		1 - (1-pa)*(1-pb),
		1 - pa*pb,
		(1 - pa) * (1 - pb),
		pa*(1-pb) + pb*(1-pa),
		1 - (pa*(1-pb) + pb*(1-pa)),
		1 - pa,
		pb,
		(1-ps)*pa + ps*pb,
		0,
		1,
	}
	for i, g := range gates {
		if math.Abs(got[g]-want[i]) > 1e-12 {
			t.Fatalf("gate %d (%v): got %v want %v", i, n.Kind(g), got[g], want[i])
		}
	}
}

func TestUniform(t *testing.T) {
	n := circuit.New("u")
	n.AddInput("a")
	n.AddInput("b")
	u := Uniform(n)
	if len(u) != 2 || u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("Uniform wrong: %v", u)
	}
}

func TestPairDifference(t *testing.T) {
	if PairDifference(0, 1) != 1 || PairDifference(1, 1) != 0 || PairDifference(0, 0) != 0 {
		t.Fatal("PairDifference corner cases wrong")
	}
	if math.Abs(PairDifference(0.5, 0.5)-0.5) > 1e-12 {
		t.Fatal("PairDifference(0.5,0.5) should be 0.5")
	}
}

func TestErrors(t *testing.T) {
	n := circuit.New("e")
	n.AddInput("a")
	if _, err := Propagate(n, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Propagate(n, []float64{1.5}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}

func TestProbabilitiesStayInRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := circuit.New("rand")
	pool := []circuit.NodeID{n.AddInput(""), n.AddInput(""), n.AddInput("")}
	kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
		circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot}
	for i := 0; i < 60; i++ {
		k := kinds[r.Intn(len(kinds))]
		if k == circuit.KindNot {
			pool = append(pool, n.AddGate(k, pool[r.Intn(len(pool))]))
		} else {
			pool = append(pool, n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))]))
		}
	}
	n.AddOutput("", pool[len(pool)-1])
	probs, err := Propagate(n, []float64{0.2, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range n.LiveNodes() {
		if probs[id] < -1e-12 || probs[id] > 1+1e-12 {
			t.Fatalf("node %d probability %v out of range", id, probs[id])
		}
	}
}
