package sasimi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/sim"
)

// TestFlowEmitsObservability runs an observed flow and checks the whole
// surface at once: JSONL events, the five phase timers, iteration /
// candidate / accept counters, and the certificate-split drift histograms.
func TestFlowEmitsObservability(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	reg := obs.NewRegistry()
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator:  EstimatorBatch,
		VerifyTopK: 4,
		KeepTrace:  true,
		Tracer:     tr,
		Metrics:    reg,
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.NumIterations == 0 {
		t.Fatal("flow made no progress; nothing to observe")
	}

	// Every line must be valid JSON with a known event kind.
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		kind, _ := ev["ev"].(string)
		counts[kind]++
	}
	if counts["accept"] != res.NumIterations {
		t.Fatalf("accept events %d != iterations %d", counts["accept"], res.NumIterations)
	}
	if counts["iter"] == 0 || counts["phase"] == 0 {
		t.Fatalf("missing event kinds: %v", counts)
	}
	if counts["cand"] != 0 {
		t.Fatal("candidate events emitted without opting in")
	}

	// All five phase timers must be present in the metrics snapshot.
	snap := reg.Snapshot()
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		name := `sasimi_phase_ns{phase="` + p.String() + `"}`
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("snapshot missing phase timer %s", name)
		}
		// Every phase except pattern_gen (skipped with caller-provided
		// patterns only) must have actually run here.
		if snap.Counters[name] <= 0 {
			t.Fatalf("phase timer %s is zero", name)
		}
	}
	if snap.Counters["sasimi_iterations_total"] < int64(res.NumIterations) {
		t.Fatalf("iteration counter %d < %d accepted iterations",
			snap.Counters["sasimi_iterations_total"], res.NumIterations)
	}
	if snap.Counters["sasimi_candidates_scored_total"] == 0 {
		t.Fatal("no candidates counted")
	}
	if snap.Counters["sasimi_accepts_total"] != int64(res.NumIterations) {
		t.Fatalf("accept counter %d != %d", snap.Counters["sasimi_accepts_total"], res.NumIterations)
	}

	// Drift histograms: both accept series exist; with VerifyTopK the
	// verify drift series must carry the batch-vs-exact rechecks.
	for _, name := range []string{
		`sasimi_accept_drift{cert="exact"}`,
		`sasimi_accept_drift{cert="inexact"}`,
		`sasimi_verify_drift{cert="exact"}`,
		`sasimi_verify_drift{cert="inexact"}`,
	} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Fatalf("snapshot missing drift series %s", name)
		}
	}
	ad := snap.Histograms[`sasimi_accept_drift{cert="exact"}`]
	ai := snap.Histograms[`sasimi_accept_drift{cert="inexact"}`]
	if ad.Count+ai.Count != int64(res.NumIterations) {
		t.Fatalf("accept drift samples %d != iterations %d", ad.Count+ai.Count, res.NumIterations)
	}
	vd := snap.Histograms[`sasimi_verify_drift{cert="exact"}`]
	vi := snap.Histograms[`sasimi_verify_drift{cert="inexact"}`]
	if vd.Count+vi.Count == 0 {
		t.Fatal("VerifyTopK ran but recorded no verification drift")
	}
	// The certified series must concentrate at zero drift: a certified
	// batch ΔER equals the exact recheck within float tolerance.
	if vd.Count > 0 && (vd.Max > 1e-9 || vd.Min < -1e-9) {
		t.Fatalf("certified verify drift not ~0: min=%v max=%v", vd.Min, vd.Max)
	}

	// Result-side accounting mirrors the registry.
	if res.Phases.Total() <= 0 {
		t.Fatal("Result.Phases empty")
	}
	if res.Phases.Stats[obs.PhaseCPMBuild].Count == 0 {
		t.Fatal("no CPM build spans recorded")
	}
	for _, it := range res.Iterations {
		if it.Feasible <= 0 || it.Candidates < it.Feasible {
			t.Fatalf("iteration %d: bad feasible/candidate counts %d/%d",
				it.Iter, it.Feasible, it.Candidates)
		}
		// With VerifyTopK the chosen candidate was re-scored exactly, so
		// its recorded drift must vanish on the flow's own pattern set.
		if !it.Exact {
			t.Fatalf("iteration %d: VerifyTopK winner not marked exact", it.Iter)
		}
		if it.Drift > 1e-9 || it.Drift < -1e-9 {
			t.Fatalf("iteration %d: exact-verified drift %v != 0", it.Iter, it.Drift)
		}
	}
}

// TestReplayTraceMatchesLiveTrace re-emits a KeepTrace result through a
// fresh JSONL tracer and checks the accept events agree with the live run.
func TestReplayTraceMatchesLiveTrace(t *testing.T) {
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator: EstimatorBatch,
		KeepTrace: true,
	})
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	res.ReplayTrace(tr)
	res.ReplayTrace(nil) // must be a no-op, not a panic
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var accepts, iters, phases int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev struct {
			Ev        string  `json:"ev"`
			Predicted float64 `json:"pred_err"`
			Actual    float64 `json:"actual_err"`
			Drift     float64 `json:"drift"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Ev {
		case "accept":
			if got := ev.Actual - ev.Predicted; got-ev.Drift > 1e-12 || ev.Drift-got > 1e-12 {
				t.Fatalf("replayed drift %v inconsistent with pred/actual %v/%v",
					ev.Drift, ev.Predicted, ev.Actual)
			}
			accepts++
		case "iter":
			iters++
		case "phase":
			phases++
		}
	}
	if accepts != res.NumIterations || iters != res.NumIterations {
		t.Fatalf("replay emitted %d accepts / %d iters, want %d",
			accepts, iters, res.NumIterations)
	}
	if phases == 0 {
		t.Fatal("replay emitted no phase aggregates")
	}
}

// TestNilTracerScoringAllocs pins the nil-tracer fast path: the candidate
// scoring inner loop routed through scoreCandidates with no observability
// configured must allocate exactly as much as the pre-obs loop body (the
// estimator's own scratch work), and not one object more.
func TestNilTracerScoringAllocs(t *testing.T) {
	net := bench.RCA(8)
	patterns := sim.RandomPatterns(net.NumInputs(), 1024, 3)
	vals := sim.Simulate(net, patterns)
	out := sim.OutputMatrix(net, vals)
	st := emetric.NewState(out, out)
	est := newEstimator(EstimatorBatch)
	ctx := &iterContext{net: net, vals: vals, st: st, metric: core.MetricER}
	est.prepare(ctx)

	lib := cell.Default()
	cfg := Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 1}}
	cfg.fillDefaults()
	arrival := lib.NodeArrival(net)
	cands := gatherCandidates(net, vals, &cfg, arrival, lib.GateDelay(circuit.KindNot))
	if len(cands) == 0 {
		t.Fatal("no candidates on RCA8")
	}
	scratch := bitvec.New(vals.M)
	change := bitvec.New(vals.M)

	// Baseline: the scoring loop exactly as it was before the obs layer.
	baseline := testing.AllocsPerRun(20, func() {
		best := -1
		var feasible []int
		for i := range cands {
			c := &cands[i]
			sub := c.substituteValue(vals, scratch)
			change.Xor(vals.Node(c.Target), sub)
			c.Delta = est.delta(c.Target, sub, change)
			c.Exact = est.exactFor(c.Target)
			c.Score = score(c.AreaGain, c.Delta, vals.M)
			if c.Delta > cfg.Threshold+1e-12 {
				continue
			}
			feasible = append(feasible, i)
			if best == -1 || c.Score > cands[best].Score {
				best = i
			}
		}
		_ = feasible
	})

	withObs := testing.AllocsPerRun(20, func() {
		scoreCandidates(est, cands, vals, 0, cfg.Threshold, scratch, change, nil, 1)
	})

	if withObs > baseline {
		t.Fatalf("nil-tracer scoring allocates %v/run, pre-obs baseline %v/run", withObs, baseline)
	}
}

// TestCheckInvariantsNamesCycle forces the netlist into a cycle through
// ReplaceFanin — the one edit primitive with no cycle guard — and checks
// the invariant checker reports a named cycle instead of letting
// TopoOrder panic downstream.
func TestCheckInvariantsNamesCycle(t *testing.T) {
	n := circuit.New("cyclic")
	a := n.AddInput("a")
	g1 := n.AddGate(circuit.KindAnd, a, a)
	n.SetName(g1, "g1")
	g2 := n.AddGate(circuit.KindOr, g1, a)
	n.SetName(g2, "g2")
	g3 := n.AddGate(circuit.KindAnd, g2, a)
	n.SetName(g3, "g3")
	n.AddOutput("y", g3)

	backup := n.Clone()
	c := &Candidate{Target: g2, Sub: g3}
	if err := checkAcyclic(n, backup, c); err != nil {
		t.Fatalf("acyclic network flagged: %v", err)
	}
	// Rewire g2's fanin g1 -> g3: g2 now reads g3 while g3 reads g2,
	// closing the loop g2 -> g3 -> g2.
	n.ReplaceFanin(g2, g1, g3)
	err := checkAcyclic(n, backup, c)
	if err == nil {
		t.Fatal("cycle not detected")
	}
	msg := err.Error()
	for _, want := range []string{"combinational cycle", "g2", "g3", "->"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

// TestObservedFlowMatchesUnobserved pins that observability is read-only:
// the same seed with and without tracer/metrics yields bit-identical
// results.
func TestObservedFlowMatchesUnobserved(t *testing.T) {
	cfg := Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.03,
			NumPatterns: 1500,
			Seed:        11,
		},
		Estimator: EstimatorBatch,
	}
	plain := runOn(t, "cmp8", cfg)
	cfg.Tracer = obs.NewJSONLTracer(&bytes.Buffer{})
	cfg.Metrics = obs.NewRegistry()
	observed := runOn(t, "cmp8", cfg)
	if plain.FinalArea != observed.FinalArea || plain.NumIterations != observed.NumIterations {
		t.Fatalf("observation changed the flow: %v/%d vs %v/%d",
			plain.FinalArea, plain.NumIterations, observed.FinalArea, observed.NumIterations)
	}
	if plain.Approx.Dump() != observed.Approx.Dump() {
		t.Fatal("observation changed the synthesised circuit")
	}
}

// TestIncrementalEngineMetrics pins the incremental engine's observability:
// a metered multi-iteration run must record resimulated nodes, refreshed
// CPM rows, and a dirty-fraction histogram whose observations stay in
// (0, 1].
func TestIncrementalEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator:   EstimatorBatch,
		Incremental: IncrementalOn,
		Metrics:     reg,
	})
	if res.NumIterations < 2 {
		t.Fatalf("need >= 2 iterations to exercise the engine, got %d", res.NumIterations)
	}
	snap := reg.Snapshot()
	if snap.Counters["sasimi_resim_nodes_total"] <= 0 {
		t.Fatalf("sasimi_resim_nodes_total not recorded: %v", snap.Counters)
	}
	if snap.Counters["sasimi_cpm_refresh_rows_total"] <= 0 {
		t.Fatalf("sasimi_cpm_refresh_rows_total not recorded: %v", snap.Counters)
	}
	h, ok := snap.Histograms["sasimi_cpm_dirty_fraction"]
	if !ok || h.Count == 0 {
		t.Fatal("sasimi_cpm_dirty_fraction histogram not recorded")
	}
	// One refresh per iteration after the first accept.
	if h.Count != int64(res.NumIterations) {
		t.Fatalf("dirty-fraction observations %d, want %d (one per post-accept refresh)", h.Count, res.NumIterations)
	}
	if h.Min <= 0 || h.Max > 1 {
		t.Fatalf("dirty fractions outside (0,1]: min %v max %v", h.Min, h.Max)
	}

	// The full-rebuild path must not record any of them.
	regOff := obs.NewRegistry()
	runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator:   EstimatorBatch,
		Incremental: IncrementalOff,
		Metrics:     regOff,
	})
	snapOff := regOff.Snapshot()
	if snapOff.Counters["sasimi_resim_nodes_total"] != 0 || snapOff.Counters["sasimi_cpm_refresh_rows_total"] != 0 {
		t.Fatalf("full-rebuild run recorded incremental metrics: %v", snapOff.Counters)
	}
}
