package blif

import (
	"bytes"
	"strings"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

const sampleBlif = `
# sample
.model toy
.inputs a b c
.outputs f g
.names a b t1
11 1
.names c t2
0 1
.names t1 t2 f
1- 1
-1 1
.names a c g
10 1
01 1
.end
`

func TestParseSample(t *testing.T) {
	n, err := Parse(strings.NewReader(sampleBlif))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "toy" || n.NumInputs() != 3 || n.NumOutputs() != 2 {
		t.Fatalf("shape wrong: %s", n.Stats())
	}
	// f = ab + !c; g = a xor c.
	cases := []struct {
		in   []bool
		f, g bool
	}{
		{[]bool{false, false, false}, true, false},
		{[]bool{true, true, true}, true, false},
		{[]bool{true, false, true}, false, false},
		{[]bool{true, false, false}, true, true},
		{[]bool{false, false, true}, false, true},
	}
	for _, c := range cases {
		out := sim.EvalOne(n, c.in)
		if out[0] != c.f || out[1] != c.g {
			t.Fatalf("in=%v out=%v want f=%v g=%v", c.in, out, c.f, c.g)
		}
	}
}

func TestParseOffsetCover(t *testing.T) {
	// Cover given as off-set rows (output column 0): f is NOT(a AND b).
	src := `
.model offset
.inputs a b
.outputs f
.names a b f
11 0
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			want := !(a == 1 && b == 1)
			if got := sim.EvalOne(n, []bool{a == 1, b == 1})[0]; got != want {
				t.Fatalf("offset cover wrong at %d%d", a, b)
			}
		}
	}
}

func TestParseConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero gated
.names one
1
.names zero
.names a one gated
11 1
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := sim.EvalOne(n, []bool{true})
	if out[0] != true || out[1] != false || out[2] != true {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no model", ".inputs a\n.outputs f\n.names a f\n1 1\n.end\n"},
		{"latch", ".model m\n.inputs a\n.outputs f\n.latch a f 0\n.end\n"},
		{"bad cube width", ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n"},
		{"undefined output", ".model m\n.inputs a\n.outputs zz\n.names a f\n1 1\n.end\n"},
		{"row outside names", ".model m\n.inputs a\n.outputs f\n11 1\n.end\n"},
		{"cycle", ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTripBehaviour(t *testing.T) {
	for _, name := range []string{"rca8", "mul4", "alu4", "cmp8", "par16"} {
		orig, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		rep := emetric.Measure(orig, back, sim.RandomPatterns(orig.NumInputs(), 2000, 11))
		if rep.ErrorRate != 0 {
			t.Fatalf("%s: behaviour changed, ER=%v", name, rep.ErrorRate)
		}
	}
}

func TestRoundTripISCASLike(t *testing.T) {
	orig, err := bench.ISCASLike("c1908")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := emetric.Measure(orig, back, sim.RandomPatterns(orig.NumInputs(), 1000, 13))
	if rep.ErrorRate != 0 {
		t.Fatalf("behaviour changed, ER=%v", rep.ErrorRate)
	}
}

func TestContinuationLines(t *testing.T) {
	src := ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 2 {
		t.Fatalf("continuation line not joined: %d inputs", n.NumInputs())
	}
}
