package circuit

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Network. IDs are stable across edits;
// deleted slots are reused only after Compact.
type NodeID int32

// InvalidNode is the zero-value "no node" sentinel.
const InvalidNode NodeID = -1

// Node is a single vertex of the network DAG.
type Node struct {
	Kind   Kind
	Name   string
	Fanins []NodeID

	fanouts []NodeID // maintained by the Network
}

// Output binds a driver node to a named primary output port. The numeric
// interpretation used by AEM treats Index 0 as the least significant bit.
type Output struct {
	Name string
	Node NodeID
}

// Network is a combinational logic network. The zero value is empty and
// ready to use; New is provided for symmetry and to set a name.
type Network struct {
	Name    string
	nodes   []Node
	inputs  []NodeID // in declaration order
	outputs []Output

	topoDirty bool
	topo      []NodeID
	levels    []int32
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name, topoDirty: true}
}

// NumNodes returns the number of live (non-deleted) nodes, including inputs
// and constants.
func (n *Network) NumNodes() int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].Kind != KindFree {
			c++
		}
	}
	return c
}

// NumSlots returns the size of the node table including deleted slots.
// Valid NodeIDs are in [0, NumSlots).
func (n *Network) NumSlots() int { return len(n.nodes) }

// NumGates returns the number of live logic gates (excluding inputs and
// constants).
func (n *Network) NumGates() int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].Kind.IsGate() {
			c++
		}
	}
	return c
}

// NumEdges returns the number of live fanin edges.
func (n *Network) NumEdges() int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].Kind != KindFree {
			c += len(n.nodes[i].Fanins)
		}
	}
	return c
}

// Inputs returns the primary inputs in declaration order. The caller must
// not mutate the returned slice.
func (n *Network) Inputs() []NodeID { return n.inputs }

// Outputs returns the primary output bindings in declaration order. The
// caller must not mutate the returned slice.
func (n *Network) Outputs() []Output { return n.outputs }

// NumInputs returns the number of primary inputs.
func (n *Network) NumInputs() int { return len(n.inputs) }

// NumOutputs returns the number of primary outputs.
func (n *Network) NumOutputs() int { return len(n.outputs) }

// Node returns a pointer to the node record for id. The pointer is
// invalidated by operations that grow the node table.
func (n *Network) Node(id NodeID) *Node {
	return &n.nodes[id]
}

// Kind returns the kind of node id.
func (n *Network) Kind(id NodeID) Kind { return n.nodes[id].Kind }

// Fanins returns the fanin list of node id; the caller must not mutate it.
func (n *Network) Fanins(id NodeID) []NodeID { return n.nodes[id].Fanins }

// Fanouts returns the fanout list of node id; the caller must not mutate
// it. The order is unspecified.
func (n *Network) Fanouts(id NodeID) []NodeID { return n.nodes[id].fanouts }

// NameOf returns the name of node id, synthesising "n<id>" if unnamed.
func (n *Network) NameOf(id NodeID) string {
	if s := n.nodes[id].Name; s != "" {
		return s
	}
	return fmt.Sprintf("n%d", id)
}

// SetName assigns a name to node id.
func (n *Network) SetName(id NodeID, name string) { n.nodes[id].Name = name }

// IsLive reports whether id refers to a non-deleted node.
func (n *Network) IsLive(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes) && n.nodes[id].Kind != KindFree
}

func (n *Network) addNode(nd Node) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, nd)
	n.topoDirty = true
	return id
}

// AddInput appends a new primary input with the given name.
func (n *Network) AddInput(name string) NodeID {
	id := n.addNode(Node{Kind: KindInput, Name: name})
	n.inputs = append(n.inputs, id)
	return id
}

// AddConst adds a constant node of the given value.
func (n *Network) AddConst(v bool) NodeID {
	k := KindConst0
	if v {
		k = KindConst1
	}
	return n.addNode(Node{Kind: k})
}

// AddGate adds a gate of the given kind over the fanins and returns its id.
// It panics if the arity is invalid for the kind or a fanin is not live.
func (n *Network) AddGate(kind Kind, fanins ...NodeID) NodeID {
	if !kind.ArityOK(len(fanins)) {
		panic(fmt.Sprintf("circuit: %v cannot take %d fanins", kind, len(fanins)))
	}
	for _, f := range fanins {
		if !n.IsLive(f) {
			panic(fmt.Sprintf("circuit: AddGate fanin %d is not a live node", f))
		}
	}
	id := n.addNode(Node{Kind: kind, Fanins: append([]NodeID(nil), fanins...)})
	for _, f := range fanins {
		n.nodes[f].fanouts = append(n.nodes[f].fanouts, id)
	}
	return id
}

// AddOutput binds node id as a primary output with the given name and
// returns the output index.
func (n *Network) AddOutput(name string, id NodeID) int {
	if !n.IsLive(id) {
		panic(fmt.Sprintf("circuit: AddOutput driver %d is not live", id))
	}
	n.outputs = append(n.outputs, Output{Name: name, Node: id})
	return len(n.outputs) - 1
}

// OutputDriver returns the node driving output index o.
func (n *Network) OutputDriver(o int) NodeID { return n.outputs[o].Node }

// isOutputDriver reports whether id drives at least one primary output.
func (n *Network) isOutputDriver(id NodeID) bool {
	for _, o := range n.outputs {
		if o.Node == id {
			return true
		}
	}
	return false
}

// FindByName returns the first live node with the given name, or
// InvalidNode. Linear scan; intended for tests and file I/O, not hot paths.
func (n *Network) FindByName(name string) NodeID {
	for i := range n.nodes {
		if n.nodes[i].Kind != KindFree && n.nodes[i].Name == name {
			return NodeID(i)
		}
	}
	return InvalidNode
}

// Clone returns a deep copy of the network. Node IDs are preserved.
func (n *Network) Clone() *Network {
	c := &Network{
		Name:      n.Name,
		nodes:     make([]Node, len(n.nodes)),
		inputs:    append([]NodeID(nil), n.inputs...),
		outputs:   append([]Output(nil), n.outputs...),
		topoDirty: true,
	}
	for i := range n.nodes {
		src := &n.nodes[i]
		c.nodes[i] = Node{
			Kind:    src.Kind,
			Name:    src.Name,
			Fanins:  append([]NodeID(nil), src.Fanins...),
			fanouts: append([]NodeID(nil), src.fanouts...),
		}
	}
	return c
}

// LiveNodes returns the ids of all live nodes in increasing id order.
func (n *Network) LiveNodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for i := range n.nodes {
		if n.nodes[i].Kind != KindFree {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// Validate checks structural sanity: arity per kind, liveness and mutual
// consistency of fanin/fanout lists, liveness of input/output bindings, and
// acyclicity. It returns the first problem found.
func (n *Network) Validate() error {
	for i := range n.nodes {
		id := NodeID(i)
		nd := &n.nodes[i]
		if nd.Kind == KindFree {
			continue
		}
		if !nd.Kind.ArityOK(len(nd.Fanins)) {
			return fmt.Errorf("node %d (%v): bad arity %d", id, nd.Kind, len(nd.Fanins))
		}
		for _, f := range nd.Fanins {
			if !n.IsLive(f) {
				return fmt.Errorf("node %d: dead fanin %d", id, f)
			}
			if !containsID(n.nodes[f].fanouts, id) {
				return fmt.Errorf("node %d: fanin %d lacks back-edge", id, f)
			}
		}
		for _, fo := range nd.fanouts {
			if !n.IsLive(fo) {
				return fmt.Errorf("node %d: dead fanout %d", id, fo)
			}
			if !containsID(n.nodes[fo].Fanins, id) {
				return fmt.Errorf("node %d: fanout %d lacks fanin edge", id, fo)
			}
		}
	}
	for _, in := range n.inputs {
		if !n.IsLive(in) || n.nodes[in].Kind != KindInput {
			return fmt.Errorf("input binding %d is not a live input", in)
		}
	}
	for i, o := range n.outputs {
		if !n.IsLive(o.Node) {
			return fmt.Errorf("output %d (%s) bound to dead node %d", i, o.Name, o.Node)
		}
	}
	if _, err := n.topoOrder(); err != nil {
		return err
	}
	return nil
}

func containsID(s []NodeID, id NodeID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// Stats returns a compact human-readable summary of the network.
func (n *Network) Stats() string {
	return fmt.Sprintf("%s: %d inputs, %d outputs, %d gates, %d edges, depth %d",
		n.Name, n.NumInputs(), n.NumOutputs(), n.NumGates(), n.NumEdges(), n.Depth())
}

// Dump renders every live node, for debugging and golden tests.
func (n *Network) Dump() string {
	var sb []byte
	for _, id := range n.LiveNodes() {
		nd := &n.nodes[id]
		sb = append(sb, fmt.Sprintf("%4d %-6s %-12s <-", id, nd.Kind, n.NameOf(id))...)
		for _, f := range nd.Fanins {
			sb = append(sb, fmt.Sprintf(" %d", f)...)
		}
		sb = append(sb, '\n')
	}
	outs := make([]string, len(n.outputs))
	for i, o := range n.outputs {
		outs[i] = fmt.Sprintf("%s=%d", o.Name, o.Node)
	}
	sort.Strings(outs)
	for _, s := range outs {
		sb = append(sb, ("out " + s + "\n")...)
	}
	return string(sb)
}
