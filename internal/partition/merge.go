package partition

import (
	"fmt"

	"batchals/internal/circuit"
)

// Merge stitches per-part networks back into one network over the parent
// inputs. nets[k] must be part k's extracted network or a flow result
// derived from it (same input order and output bindings); passing the
// extracted golden for some parts and approximated nets for others is how
// the repair loop selectively reverts over-budget parts. The merged
// network is swept, so logic a part's approximation made dead — including
// cut signals no later part still consumes — is removed before area is
// re-measured.
func (p *Plan) Merge(nets []*circuit.Network) (*circuit.Network, error) {
	if len(nets) != len(p.Parts) {
		return nil, fmt.Errorf("partition: Merge got %d nets for %d parts", len(nets), len(p.Parts))
	}
	parent := p.Net
	merged := circuit.New(parent.Name)

	// signalOf maps parent signal ids (inputs and part-exported gates) to
	// merged ids as parts are instantiated in topological part order.
	signalOf := make([]circuit.NodeID, parent.NumSlots())
	for i := range signalOf {
		signalOf[i] = circuit.InvalidNode
	}
	for _, in := range parent.Inputs() {
		signalOf[in] = merged.AddInput(parent.NameOf(in))
	}
	consts := [2]circuit.NodeID{circuit.InvalidNode, circuit.InvalidNode}
	constSignal := func(v bool) circuit.NodeID {
		i := 0
		if v {
			i = 1
		}
		if consts[i] == circuit.InvalidNode {
			consts[i] = merged.AddConst(v)
		}
		return consts[i]
	}

	for k := range p.Parts {
		part := &p.Parts[k]
		an := nets[k]
		if got, want := an.NumInputs(), len(part.Inputs); got != want {
			return nil, fmt.Errorf("partition: part %d net has %d inputs, plan has %d", k, got, want)
		}
		if got, want := an.NumOutputs(), len(part.Outputs); got != want {
			return nil, fmt.Errorf("partition: part %d net has %d outputs, plan has %d", k, got, want)
		}
		inputIdx := make(map[circuit.NodeID]int, an.NumInputs())
		for i, id := range an.Inputs() {
			inputIdx[id] = i
		}
		local := make([]circuit.NodeID, an.NumSlots())
		for i := range local {
			local[i] = circuit.InvalidNode
		}
		for _, id := range an.TopoOrder() {
			switch kind := an.Kind(id); kind {
			case circuit.KindInput:
				src := part.Inputs[inputIdx[id]]
				if signalOf[src] == circuit.InvalidNode {
					return nil, fmt.Errorf("partition: part %d input %s unresolved at merge", k, parent.NameOf(src))
				}
				local[id] = signalOf[src]
			case circuit.KindConst0:
				local[id] = constSignal(false)
			case circuit.KindConst1:
				local[id] = constSignal(true)
			default:
				fanins := an.Fanins(id)
				mapped := make([]circuit.NodeID, len(fanins))
				for i, f := range fanins {
					if local[f] == circuit.InvalidNode {
						return nil, fmt.Errorf("partition: part %d gate %s has unmapped fanin", k, an.NameOf(id))
					}
					mapped[i] = local[f]
				}
				g := merged.AddGate(kind, mapped...)
				if name := an.Node(id).Name; name != "" {
					merged.SetName(g, name)
				}
				local[id] = g
			}
		}
		for j, o := range an.Outputs() {
			if local[o.Node] == circuit.InvalidNode {
				return nil, fmt.Errorf("partition: part %d output %s unresolved", k, o.Name)
			}
			signalOf[part.Outputs[j]] = local[o.Node]
		}
	}

	for _, o := range parent.Outputs() {
		var sig circuit.NodeID
		switch parent.Kind(o.Node) {
		case circuit.KindConst0:
			sig = constSignal(false)
		case circuit.KindConst1:
			sig = constSignal(true)
		default:
			sig = signalOf[o.Node]
		}
		if sig == circuit.InvalidNode {
			return nil, fmt.Errorf("partition: primary output %s unresolved at merge", o.Name)
		}
		merged.AddOutput(o.Name, sig)
	}
	merged.Sweep()
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("partition: merged network invalid: %w", err)
	}
	return merged, nil
}
