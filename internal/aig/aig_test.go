package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
)

func TestTrivialRules(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	b := g.AddInput("b")
	if g.And(Const0, a) != Const0 {
		t.Fatal("0 AND a != 0")
	}
	if g.And(Const1, a) != a {
		t.Fatal("1 AND a != a")
	}
	if g.And(a, a) != a {
		t.Fatal("a AND a != a")
	}
	if g.And(a, a.Not()) != Const0 {
		t.Fatal("a AND !a != 0")
	}
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Fatal("structural hashing missed commuted operands")
	}
	if g.NumAnds() != 1 {
		t.Fatalf("NumAnds=%d want 1", g.NumAnds())
	}
}

func TestLitHelpers(t *testing.T) {
	if Const1 != Const0.Not() {
		t.Fatal("constants not complementary")
	}
	l := Lit(7)
	if l.Var() != 3 || !l.IsCompl() || l.Not() != Lit(6) {
		t.Fatal("literal arithmetic wrong")
	}
}

func TestEvalBasicGates(t *testing.T) {
	g := New("t")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput("and", g.And(a, b))
	g.AddOutput("or", g.Or(a, b))
	g.AddOutput("xor", g.Xor(a, b))
	g.AddOutput("nota", a.Not())
	for m := 0; m < 4; m++ {
		av, bv := m&1 == 1, m&2 == 2
		out := g.Eval([]bool{av, bv})
		if out[0] != (av && bv) || out[1] != (av || bv) || out[2] != (av != bv) || out[3] != !av {
			t.Fatalf("m=%d: %v", m, out)
		}
	}
}

func TestMux(t *testing.T) {
	g := New("t")
	s := g.AddInput("s")
	d0 := g.AddInput("d0")
	d1 := g.AddInput("d1")
	g.AddOutput("y", g.Mux(s, d0, d1))
	for m := 0; m < 8; m++ {
		sv, d0v, d1v := m&1 == 1, m&2 == 2, m&4 == 4
		want := d0v
		if sv {
			want = d1v
		}
		if got := g.Eval([]bool{sv, d0v, d1v})[0]; got != want {
			t.Fatalf("m=%d got %v want %v", m, got, want)
		}
	}
}

func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		orig, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := FromNetwork(orig)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back := g.ToNetwork()
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := sim.RandomPatterns(orig.NumInputs(), 1500, 9)
		rep := emetric.Measure(orig, back, p)
		if rep.ErrorRate != 0 {
			t.Fatalf("%s: AIG round trip changed behaviour, ER=%v", name, rep.ErrorRate)
		}
	}
}

func TestFromNetworkAgainstEval(t *testing.T) {
	orig, _ := bench.ByName("alu4")
	g, err := FromNetwork(orig)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	in := make([]bool, orig.NumInputs())
	for trial := 0; trial < 200; trial++ {
		for k := range in {
			in[k] = r.Intn(2) == 1
		}
		want := sim.EvalOne(orig, in)
		got := g.Eval(in)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("trial %d output %d mismatch", trial, o)
			}
		}
	}
}

func TestStrashSharesAcrossGates(t *testing.T) {
	// Two structurally identical XORs built from shared inputs must not
	// duplicate AND nodes.
	n := circuit.New("dup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x1 := n.AddGate(circuit.KindXor, a, b)
	x2 := n.AddGate(circuit.KindXor, a, b)
	o := n.AddGate(circuit.KindAnd, x1, x2)
	n.AddOutput("o", o)
	g, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	// One XOR costs 3 ANDs; the second is hashed away; the final AND(x,x)
	// collapses by the idempotence rule.
	if g.NumAnds() != 3 {
		t.Fatalf("NumAnds=%d want 3 (strash failed)", g.NumAnds())
	}
}

func TestDepthLogarithmicForWideGates(t *testing.T) {
	n := circuit.New("wide")
	fanins := make([]circuit.NodeID, 16)
	for i := range fanins {
		fanins[i] = n.AddInput("")
	}
	n.AddOutput("o", n.AddGate(circuit.KindAnd, fanins...))
	g, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.Depth() != 4 {
		t.Fatalf("depth %d want 4 for balanced 16-input AND", g.Depth())
	}
}

func TestConstantsSurviveRoundTrip(t *testing.T) {
	n := circuit.New("c")
	a := n.AddInput("a")
	c1 := n.AddConst(true)
	n.AddOutput("o", n.AddGate(circuit.KindXor, a, c1)) // == NOT a
	g, err := FromNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAnds() != 0 {
		t.Fatalf("XOR with constant should fold, NumAnds=%d", g.NumAnds())
	}
	back := g.ToNetwork()
	if rep := emetric.MeasureExact(n, back); rep.ErrorRate != 0 {
		t.Fatal("behaviour changed")
	}
}

func TestFlowRunsOnAIGMappedNetwork(t *testing.T) {
	// The paper's generality claim, end to end: map a circuit to an AIG,
	// express it back as 2-input ANDs + inverters, and run the batch
	// estimation flow on that representation.
	golden, _ := bench.ByName("mul4")
	g, err := FromNetwork(golden)
	if err != nil {
		t.Fatal(err)
	}
	mapped := g.ToNetwork()
	res, err := sasimi.Run(mapped, sasimi.Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.03,
			NumPatterns: 2000,
			Seed:        3,
		},
		Estimator: sasimi.EstimatorBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumIterations == 0 {
		t.Fatal("flow made no progress on the AIG-mapped network")
	}
	// The result must respect the budget against the *original* golden
	// circuit too, since mapped is equivalent to it.
	rep := emetric.MeasureExact(golden, res.Approx)
	if rep.ErrorRate > 0.06 {
		t.Fatalf("exact ER %v far above budget", rep.ErrorRate)
	}
}

func TestAIGSmallerThanNaive(t *testing.T) {
	// Structural hashing should find sharing in arithmetic circuits: the
	// AIG's AND count must not exceed a naive per-gate expansion bound.
	orig, _ := bench.ByName("rca16")
	g, err := FromNetwork(orig)
	if err != nil {
		t.Fatal(err)
	}
	naive := 0
	for _, id := range orig.LiveNodes() {
		switch orig.Kind(id) {
		case circuit.KindXor, circuit.KindXnor:
			naive += 3
		case circuit.KindAnd, circuit.KindOr, circuit.KindNand, circuit.KindNor:
			naive += len(orig.Fanins(id)) - 1
		}
	}
	if g.NumAnds() > naive {
		t.Fatalf("AIG has %d ANDs, naive bound %d", g.NumAnds(), naive)
	}
	if g.NumAnds() == 0 {
		t.Fatal("empty AIG")
	}
}

func TestEvalPanicsOnWrongWidth(t *testing.T) {
	g := New("t")
	g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Eval([]bool{true, false})
}

func TestQuickAndProperties(t *testing.T) {
	// Commutativity and idempotence hold by construction (hashing +
	// trivial rules); associativity holds semantically (checked by Eval).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New("q")
		lits := []Lit{Const0, Const1}
		for i := 0; i < 4; i++ {
			lits = append(lits, g.AddInput(""))
		}
		pick := func() Lit {
			l := lits[r.Intn(len(lits))]
			if r.Intn(2) == 1 {
				l = l.Not()
			}
			return l
		}
		for i := 0; i < 20; i++ {
			a, b, c := pick(), pick(), pick()
			if g.And(a, b) != g.And(b, a) {
				return false
			}
			if g.And(a, a) != a {
				return false
			}
			left := g.And(g.And(a, b), c)
			right := g.And(a, g.And(b, c))
			// Structural identity is not guaranteed for associativity;
			// semantic equality is. Compare by exhaustive evaluation.
			g.AddOutput("", left)
			g.AddOutput("", right)
			lits = append(lits, g.And(a, b))
		}
		nOut := g.NumOutputs()
		for m := 0; m < 16; m++ {
			asg := []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8}
			out := g.Eval(asg)
			for o := 0; o+1 < nOut; o += 2 {
				if out[o] != out[o+1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripRandomNetworks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := circuit.New("rt")
		pool := []circuit.NodeID{}
		nin := 3 + r.Intn(4)
		for i := 0; i < nin; i++ {
			pool = append(pool, n.AddInput(""))
		}
		kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
			circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot, circuit.KindMux}
		for i := 0; i < 25; i++ {
			k := kinds[r.Intn(len(kinds))]
			switch k {
			case circuit.KindNot:
				pool = append(pool, n.AddGate(k, pool[r.Intn(len(pool))]))
			case circuit.KindMux:
				pool = append(pool, n.AddGate(k, pool[r.Intn(len(pool))],
					pool[r.Intn(len(pool))], pool[r.Intn(len(pool))]))
			default:
				pool = append(pool, n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))]))
			}
		}
		for _, id := range pool {
			if len(n.Fanouts(id)) == 0 {
				n.AddOutput("", id)
			}
		}
		g, err := FromNetwork(n)
		if err != nil {
			return false
		}
		back := g.ToNetwork()
		if back.Validate() != nil {
			return false
		}
		in := make([]bool, nin)
		for trial := 0; trial < 30; trial++ {
			for k := range in {
				in[k] = r.Intn(2) == 1
			}
			want := sim.EvalOne(n, in)
			got := sim.EvalOne(back, in)
			for o := range want {
				if want[o] != got[o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
