package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrWrap enforces the sentinel-error discipline from the flow package
// (ErrBadThreshold, ErrNoPatterns, ErrUnknownBenchmark) and the standard
// library's own sentinels (context.Canceled, io.EOF): values that travel
// through wrapping layers must be wrapped with %w and matched with
// errors.Is. Two patterns are flagged:
//
//   - comparing any package-level error variable with == or != (a wrapped
//     value never compares equal, so the check silently stops matching
//     the moment a layer adds context);
//   - passing an error argument to fmt.Errorf whose format verb set lacks
//     %w (the sentinel identity is stringified away and errors.Is on the
//     result stops working).
//
// Unlike most repo analyzers this one runs on test files too — the known
// tree findings were exactly `err == context.Canceled` assertions in
// tests. //als:errcmp-ok on the line acknowledges an intentional
// identity comparison.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors are wrapped with %w and compared with errors.Is, never ==",
	Run:  runErrWrap,
}

func runErrWrap(p *Pass) {
	if p.TypesInfo == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				p.checkErrCompare(x)
			case *ast.CallExpr:
				p.checkErrorfWrap(x)
			}
			return true
		})
	}
}

func (p *Pass) checkErrCompare(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	v := p.sentinelErrorVar(be.X)
	if v == nil {
		v = p.sentinelErrorVar(be.Y)
	}
	if v == nil || p.suppressed(be.Pos(), "als:errcmp-ok") {
		return
	}
	p.Reportf(be.Pos(), "comparing sentinel %s with %s breaks once the error is wrapped; use errors.Is", v.Name(), be.Op)
}

func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if !isErrorType(p.typeOf(arg)) {
			continue
		}
		if p.suppressed(call.Pos(), "als:errcmp-ok") {
			return
		}
		p.Reportf(arg.Pos(), "error passed to fmt.Errorf without %%w; the sentinel identity is lost and errors.Is stops matching")
		return
	}
}
