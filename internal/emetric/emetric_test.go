package emetric

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// rca builds a width-bit ripple-carry adder (2*width inputs, width+1 outputs).
func rca(t testing.TB, width int) *circuit.Network {
	t.Helper()
	n := circuit.New("rca")
	a := make([]circuit.NodeID, width)
	b := make([]circuit.NodeID, width)
	for i := 0; i < width; i++ {
		a[i] = n.AddInput("")
	}
	for i := 0; i < width; i++ {
		b[i] = n.AddInput("")
	}
	var carry circuit.NodeID = circuit.InvalidNode
	for i := 0; i < width; i++ {
		x := n.AddGate(circuit.KindXor, a[i], b[i])
		g := n.AddGate(circuit.KindAnd, a[i], b[i])
		if carry == circuit.InvalidNode {
			n.AddOutput("", x)
			carry = g
		} else {
			s := n.AddGate(circuit.KindXor, x, carry)
			p := n.AddGate(circuit.KindAnd, x, carry)
			carry = n.AddGate(circuit.KindOr, g, p)
			n.AddOutput("", s)
		}
	}
	n.AddOutput("", carry)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// truncAdder drops the carry chain: each sum bit is just a XOR b.
func truncAdder(t testing.TB, width int) *circuit.Network {
	t.Helper()
	n := circuit.New("trunc")
	a := make([]circuit.NodeID, width)
	b := make([]circuit.NodeID, width)
	for i := 0; i < width; i++ {
		a[i] = n.AddInput("")
	}
	for i := 0; i < width; i++ {
		b[i] = n.AddInput("")
	}
	for i := 0; i < width; i++ {
		n.AddOutput("", n.AddGate(circuit.KindXor, a[i], b[i]))
	}
	c := n.AddConst(false)
	n.AddOutput("", c)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestIdenticalCircuitsZeroError(t *testing.T) {
	g := rca(t, 3)
	rep := MeasureExact(g, g.Clone())
	if rep.ErrorRate != 0 || rep.AvgErrMag != 0 || rep.MeanHamming != 0 || rep.WorstErrMag != 0 {
		t.Fatalf("nonzero error for identical circuits: %+v", rep)
	}
}

func TestExactAgainstBruteForce(t *testing.T) {
	width := 3
	g := rca(t, width)
	a := truncAdder(t, width)
	rep := MeasureExact(g, a)

	// Brute force with scalar evaluation.
	nin := 2 * width
	total := 1 << uint(nin)
	wrong, magSum, ham := 0, 0.0, 0
	worst := 0.0
	in := make([]bool, nin)
	for pat := 0; pat < total; pat++ {
		for k := 0; k < nin; k++ {
			in[k] = pat>>uint(k)&1 == 1
		}
		og := sim.EvalOne(g, in)
		oa := sim.EvalOne(a, in)
		diff := false
		gv, av := 0, 0
		for o := range og {
			if og[o] != oa[o] {
				diff = true
				ham++
			}
			if og[o] {
				gv |= 1 << uint(o)
			}
			if oa[o] {
				av |= 1 << uint(o)
			}
		}
		if diff {
			wrong++
		}
		d := math.Abs(float64(gv - av))
		magSum += d
		if d > worst {
			worst = d
		}
	}
	wantER := float64(wrong) / float64(total)
	wantAEM := magSum / float64(total)
	wantHam := float64(ham) / float64(total)
	if math.Abs(rep.ErrorRate-wantER) > 1e-12 {
		t.Errorf("ER=%v want %v", rep.ErrorRate, wantER)
	}
	if math.Abs(rep.AvgErrMag-wantAEM) > 1e-9 {
		t.Errorf("AEM=%v want %v", rep.AvgErrMag, wantAEM)
	}
	if math.Abs(rep.MeanHamming-wantHam) > 1e-12 {
		t.Errorf("Hamming=%v want %v", rep.MeanHamming, wantHam)
	}
	if math.Abs(rep.WorstErrMag-worst) > 1e-12 {
		t.Errorf("Worst=%v want %v", rep.WorstErrMag, worst)
	}
}

func TestMCConvergesToExact(t *testing.T) {
	g := rca(t, 4)
	a := truncAdder(t, 4)
	exact := MeasureExact(g, a)
	p := sim.RandomPatterns(g.NumInputs(), 60000, 13)
	mc := Measure(g, a, p)
	if math.Abs(mc.ErrorRate-exact.ErrorRate) > 0.01 {
		t.Errorf("MC ER %v far from exact %v", mc.ErrorRate, exact.ErrorRate)
	}
	if math.Abs(mc.AvgErrMag-exact.AvgErrMag) > 0.15 {
		t.Errorf("MC AEM %v far from exact %v", mc.AvgErrMag, exact.AvgErrMag)
	}
}

func TestStateRefreshRow(t *testing.T) {
	g := rca(t, 2)
	a := truncAdder(t, 2)
	p := sim.ExhaustivePatterns(4)
	s := StateFor(g, a, p)
	er1 := s.ErrorRate()
	// Fix output row 2 (carry bit region) to golden and refresh.
	s.V.Row(2).CopyFrom(s.U.Row(2))
	s.RefreshRow(2)
	er2 := s.ErrorRate()
	if er2 > er1 {
		t.Fatalf("fixing an output increased ER: %v -> %v", er1, er2)
	}
	// Full refresh must agree.
	s.Refresh()
	if s.ErrorRate() != er2 {
		t.Fatal("Refresh disagrees with RefreshRow")
	}
}

func TestMaxOutputValue(t *testing.T) {
	if MaxOutputValue(4) != 15 {
		t.Fatal("MaxOutputValue(4) != 15")
	}
	if MaxOutputValue(1) != 1 {
		t.Fatal("MaxOutputValue(1) != 1")
	}
}

func TestAEMRateInReport(t *testing.T) {
	g := rca(t, 3)
	a := truncAdder(t, 3)
	rep := MeasureExact(g, a)
	want := rep.AvgErrMag / MaxOutputValue(rep.NumOutputs)
	if math.Abs(rep.AEMRate-want) > 1e-12 {
		t.Fatalf("AEMRate=%v want %v", rep.AEMRate, want)
	}
}

func TestErrorRateSymmetry(t *testing.T) {
	// ER(g,a) == ER(a,g): wrongness is symmetric.
	g := rca(t, 3)
	a := truncAdder(t, 3)
	p := sim.RandomPatterns(6, 5000, 3)
	if Measure(g, a, p).ErrorRate != Measure(a, g, p).ErrorRate {
		t.Fatal("ER not symmetric")
	}
}

func TestManyOutputsAEMIsNaN(t *testing.T) {
	n := circuit.New("wide")
	in := n.AddInput("a")
	inv := n.AddGate(circuit.KindNot, in)
	for i := 0; i < 70; i++ {
		n.AddOutput("", inv)
	}
	m := n.Clone()
	p := sim.RandomPatterns(1, 64, 1)
	rep := Measure(n, m, p)
	if !math.IsNaN(rep.AvgErrMag) {
		t.Fatal("AEM should be NaN for >63 outputs")
	}
	if rep.ErrorRate != 0 {
		t.Fatal("ER should still work")
	}
}

func TestRandomizedConsistencyERvsHamming(t *testing.T) {
	// Property: ER <= MeanHamming <= ER * numOutputs.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		width := 2 + r.Intn(3)
		g := rca(t, width)
		a := truncAdder(t, width)
		p := sim.RandomPatterns(2*width, 2000, int64(trial))
		rep := Measure(g, a, p)
		if rep.MeanHamming < rep.ErrorRate-1e-12 {
			t.Fatalf("Hamming %v < ER %v", rep.MeanHamming, rep.ErrorRate)
		}
		if rep.MeanHamming > rep.ErrorRate*float64(rep.NumOutputs)+1e-12 {
			t.Fatalf("Hamming %v > ER*O", rep.MeanHamming)
		}
	}
}
