package timeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"batchals/internal/obs"
)

// TestWriteTraceValidTraceEventJSON round-trips an exported trace through
// a plain JSON decode and checks the invariants the Trace Event Format
// (Perfetto, chrome://tracing) requires: a traceEvents array of "X"
// complete events with microsecond ts/dur, one "M" thread_name metadata
// event per lane, and a single pid.
func TestWriteTraceValidTraceEventJSON(t *testing.T) {
	r := NewRecorder(3, 32)
	r.SetIter(2)
	// A dispatch span on the driver lane with two worker children.
	dispatch := r.Emit(0, Span{
		Name: "par:sim.simulate", Phase: obs.PhaseSimulate,
		Worker: -1, Shard: -1, Iter: 2,
		T0: 1_000, T1: 9_000, Busy: 6_000, Tasks: 8,
	})
	r.Emit(1, Span{
		Name: "par:sim.simulate", Phase: obs.PhaseSimulate,
		Parent: dispatch, Worker: 0, Shard: 0, Iter: 2,
		T0: 1_200, T1: 8_000, Busy: 4_000, Tasks: 5,
	})
	r.Emit(2, Span{
		Name: "par:sim.simulate", Phase: obs.PhaseSimulate,
		Parent: dispatch, Worker: 1, Shard: -1, Iter: 2,
		T0: 1_300, T1: 7_000, Busy: 2_000, Tasks: 3,
	})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}

	threadNames := map[int]string{}
	var xEvents, mEvents int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			mEvents++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name = %q", ev.Name)
			}
			name, _ := ev.Args["name"].(string)
			threadNames[ev.TID] = name
		case "X":
			xEvents++
			if ev.PID != 1 {
				t.Errorf("pid = %d, want 1", ev.PID)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("negative ts/dur: %f/%f", ev.TS, ev.Dur)
			}
			if _, ok := ev.Args["span_id"]; !ok {
				t.Error("X event missing span_id arg")
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if xEvents != 3 {
		t.Errorf("X events = %d, want 3", xEvents)
	}
	if mEvents != 3 {
		t.Errorf("thread_name events = %d, want 3 (driver + 2 workers)", mEvents)
	}
	if threadNames[1] != "driver" || threadNames[2] != "worker 0" || threadNames[3] != "worker 1" {
		t.Errorf("thread names = %v", threadNames)
	}

	// Microsecond conversion: the dispatch span starts at 1000ns = 1us and
	// lasts 8000ns = 8us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.TID == 1 {
			found = true
			if ev.TS != 1.0 || ev.Dur != 8.0 {
				t.Errorf("driver span ts/dur = %f/%f us, want 1/8", ev.TS, ev.Dur)
			}
			if busy, ok := ev.Args["busy_ns"].(float64); !ok || busy != 6000 {
				t.Errorf("busy_ns = %v, want 6000", ev.Args["busy_ns"])
			}
			if idle, ok := ev.Args["idle_ns"].(float64); !ok || idle != 2000 {
				t.Errorf("idle_ns = %v, want 2000", ev.Args["idle_ns"])
			}
		}
	}
	if !found {
		t.Error("driver-lane X event not found")
	}
}

func TestBuildTraceDroppedSpans(t *testing.T) {
	tf := BuildTrace(nil, 17)
	if tf.OtherData["dropped_spans"] != int64(17) {
		t.Errorf("otherData dropped_spans = %v, want 17", tf.OtherData["dropped_spans"])
	}
	if len(tf.TraceEvents) != 0 {
		t.Errorf("empty snapshot produced %d events", len(tf.TraceEvents))
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Name: "par:a", Worker: -1, Shard: -1, T0: 0, T1: 100, Busy: 60, Tasks: 4},
		{Name: "par:a", Worker: 0, Shard: -1, Parent: 1, T0: 10, T1: 90, Busy: 60, Tasks: 4},
		{Name: "serial", Worker: -1, Shard: -1, T0: 100, T1: 400},
	}
	sum := Summarize(spans, 2)
	if sum.Wall() != 400 {
		t.Errorf("Wall = %v, want 400", sum.Wall())
	}
	if sum.DispatchWall != 100 {
		t.Errorf("DispatchWall = %v, want 100 (only driver-lane spans with tasks)", sum.DispatchWall)
	}
	if pf := sum.ParallelFraction(); pf != 0.25 {
		t.Errorf("ParallelFraction = %f, want 0.25", pf)
	}
	if sum.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", sum.Dropped)
	}
	if len(sum.Stats) != 2 {
		t.Fatalf("Stats len = %d, want 2", len(sum.Stats))
	}
	// Sorted by Wall descending: "serial" (300) before "par:a" (180).
	if sum.Stats[0].Name != "serial" || sum.Stats[1].Name != "par:a" {
		t.Errorf("Stats order = %q, %q", sum.Stats[0].Name, sum.Stats[1].Name)
	}
	pa := sum.Stats[1]
	if pa.Count != 2 || pa.Wall != 180 || pa.Busy != 120 || pa.Idle != 60 || pa.Max != 100 {
		t.Errorf("par:a stat = %+v", pa)
	}

	var buf bytes.Buffer
	if err := sum.WriteSummary(&buf); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"serial", "par:a", "parallel fraction 25.0%", "dropped spans"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}
