package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"batchals/internal/obs"
)

// metricsDoc mirrors the /metrics.json document of a serving process; a
// bare registry snapshot (alsrun -metrics output) is also accepted.
type metricsDoc struct {
	Process *obs.Snapshot           `json:"process"`
	Runs    map[string]obs.Snapshot `json:"runs"`
}

// metricsMode reads a metrics source (file or live URL), renders it, and
// returns an error — never exits itself — so malformed input maps to a
// single exit(1) in main.
func metricsMode(file, url string) error {
	var (
		data []byte
		err  error
		src  string
	)
	switch {
	case file != "" && url != "":
		return fmt.Errorf("-metrics and -url are mutually exclusive")
	case file != "":
		src = file
		data, err = os.ReadFile(file)
		if err != nil {
			return err
		}
	default:
		src = url
		resp, ferr := http.Get(url)
		if ferr != nil {
			return ferr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
	}

	var doc metricsDoc
	if uerr := json.Unmarshal(data, &doc); uerr == nil && (doc.Process != nil || len(doc.Runs) > 0) {
		if doc.Process != nil {
			fmt.Printf("process metrics (%s):\n", src)
			printSnapshot(*doc.Process)
		}
		names := make([]string, 0, len(doc.Runs))
		for name := range doc.Runs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("\nrun %q:\n", name)
			printSnapshot(doc.Runs[name])
		}
		return nil
	}

	// Fall back to a bare snapshot; reject anything that carries no
	// metrics at all as malformed rather than printing an empty report.
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: not a metrics snapshot: %w", src, err)
	}
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
		return fmt.Errorf("%s: no metrics found (not a snapshot or /metrics.json document?)", src)
	}
	fmt.Printf("metrics (%s):\n", src)
	printSnapshot(snap)
	return nil
}

// printSnapshot renders one registry snapshot as aligned text, keys
// sorted for diffable output.
func printSnapshot(s obs.Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-52s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-52s %g\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		line := fmt.Sprintf("  %-52s n=%d", name, h.Count)
		if h.Count > 0 {
			line += fmt.Sprintf(" sum=%g min=%g max=%g", h.Sum, h.Min, h.Max)
		}
		if h.Rejected > 0 {
			line += fmt.Sprintf(" rejected=%d", h.Rejected)
		}
		fmt.Println(strings.TrimRight(line, " "))
	}
}
