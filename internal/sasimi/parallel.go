package sasimi

import (
	"math/bits"
	"sort"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// gatherCandidatesParallel is gatherCandidates with the per-target
// enumeration fanned out across the pool's workers. Each target's
// candidates are collected into a per-target bucket (the task index owns
// the bucket slot); concatenating the buckets in target order reproduces
// the sequential enumeration order exactly, so the final deterministic
// sort — a total order on (DiffProb, AreaGain, Target, Sub) applied to an
// identical input permutation — yields the identical candidate list at any
// worker count. The network traversals used per target (MFFC,
// MFFCExcluding, TransitiveFanoutCone) are read-only and allocate locally,
// so workers share the network safely.
func gatherCandidatesParallel(net *circuit.Network, vals *sim.Values, cfg *Config,
	arrival []float64, invDelay float64, pool *par.Pool) []Candidate {

	if pool.Workers() <= 1 {
		return gatherCandidates(net, vals, cfg, arrival, invDelay)
	}
	m := vals.M
	targets := make([]circuit.NodeID, 0, net.NumNodes())
	subs := make([]circuit.NodeID, 0, net.NumNodes())
	for _, id := range net.LiveNodes() {
		k := net.Kind(id)
		if k.IsGate() {
			targets = append(targets, id)
			subs = append(subs, id)
		} else if k == circuit.KindInput {
			subs = append(subs, id)
		}
	}
	invArea := cfg.Library.GateArea(circuit.KindNot, 1)

	prefixWords := bitvec.Words(m)
	if prefixWords > 4 {
		prefixWords = 4
	}
	prefixBits := prefixWords * bitvec.WordBits
	if prefixBits > m {
		prefixBits = m
	}
	prefixCap := cfg.SimilarityCap*2 + 0.1

	buckets := make([][]Candidate, len(targets))
	pool.Do(len(targets), func(_, ti int) {
		t := targets[ti]
		baseGain := 0.0
		mffc := make(map[circuit.NodeID]bool)
		for _, id := range net.MFFC(t) {
			baseGain += cfg.Library.GateArea(net.Kind(id), len(net.Fanins(id)))
			mffc[id] = true
		}
		if baseGain <= 0 {
			return
		}
		pairGain := func(s circuit.NodeID) float64 {
			if !mffc[s] {
				return baseGain
			}
			g := 0.0
			for _, id := range net.MFFCExcluding(t, s) {
				g += cfg.Library.GateArea(net.Kind(id), len(net.Fanins(id)))
			}
			return g
		}

		tv := vals.Node(t)
		tfo := net.TransitiveFanoutCone(t)
		tArr := arrival[t]
		var out []Candidate

		ones := tv.Count()
		p1 := float64(ones) / float64(m)
		if p0 := 1 - p1; p0 <= cfg.SimilarityCap {
			out = append(out, Candidate{Target: t, Sub: circuit.InvalidNode,
				Const: true, ConstVal: true, DiffProb: p0, AreaGain: baseGain})
		}
		if p1 <= cfg.SimilarityCap {
			out = append(out, Candidate{Target: t, Sub: circuit.InvalidNode,
				Const: true, ConstVal: false, DiffProb: p1, AreaGain: baseGain})
		}

		diff := bitvec.New(m)
		for _, s := range subs {
			if s == t || tfo[s] {
				continue
			}
			sv := vals.Node(s)
			if prefixWords > 0 {
				d := 0
				tw, sw := tv.WordsSlice(), sv.WordsSlice()
				for w := 0; w < prefixWords; w++ {
					d += bits.OnesCount64(tw[w] ^ sw[w])
				}
				frac := float64(d) / float64(prefixBits)
				if frac > prefixCap && (1-frac) > prefixCap {
					continue
				}
			}
			diff.Xor(tv, sv)
			dp := float64(diff.Count()) / float64(m)

			if dp <= cfg.SimilarityCap && arrival[s] <= tArr {
				if g := pairGain(s); g > 0 {
					out = append(out, Candidate{Target: t, Sub: s,
						DiffProb: dp, AreaGain: g})
				}
			}
			if idp := 1 - dp; idp <= cfg.SimilarityCap && arrival[s]+invDelay <= tArr {
				if g := pairGain(s) - invArea; g > 0 {
					out = append(out, Candidate{Target: t, Sub: s,
						Inverted: true, DiffProb: idp, AreaGain: g})
				}
			}
		}
		buckets[ti] = out
	})

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	cands := make([]Candidate, 0, total)
	for _, b := range buckets {
		cands = append(cands, b...)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := &cands[i], &cands[j]
		if a.DiffProb != b.DiffProb {
			return a.DiffProb < b.DiffProb
		}
		if a.AreaGain != b.AreaGain {
			return a.AreaGain > b.AreaGain
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Sub < b.Sub
	})
	if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
		cands = cands[:cfg.MaxCandidates]
	}
	return cands
}

// scoreCandidatesMaybeSharded dispatches candidate scoring: the batch
// estimator on a multi-worker pool takes the pattern-sharded path, every
// other combination (full estimator mutates the value table during cone
// resimulation; local estimator is a trivial popcount; single worker is
// the legacy path whose allocation profile is pinned by
// TestNilTracerScoringAllocs) runs the sequential loop.
func scoreCandidatesMaybeSharded(ctx *iterContext, est estimator, cands []Candidate,
	curErr, threshold float64, scratch, change *bitvec.Vec, pool *par.Pool,
	o *runObs, iter int) (int, []int) {

	if _, ok := est.(*batchEstimator); ok && pool.Workers() > 1 && len(cands) > 0 {
		return scoreCandidatesSharded(ctx, cands, curErr, threshold, pool, o, iter)
	}
	return scoreCandidates(est, cands, ctx.vals, curErr, threshold, scratch, change, o, iter)
}

// scoreCandidatesSharded evaluates every candidate's batch estimate with
// the pattern space sharded across the pool's workers, then runs the
// selection loop sequentially in candidate order so feasibility and
// tie-breaking match scoreCandidates decision for decision.
//
// Each worker owns one shard: for every candidate it materialises the
// change mask for its word range only (target XOR substitute, with the
// constant and inverted cases tail-masked exactly as substituteValue's
// Fill/Not produce them) and computes the shard's partial — exact integer
// inc/dec counts for ER, the unnormalised magnitude sum for AEM. Partials
// land in per-shard slots owned by the task index and are combined in
// fixed shard order, which reproduces the sequential DeltaER/DeltaAEM
// values bit for bit (see core.DeltaERPartial / core.DeltaAEMPartial for
// the word-locality argument).
func scoreCandidatesSharded(ctx *iterContext, cands []Candidate,
	curErr, threshold float64, pool *par.Pool, o *runObs, iter int) (int, []int) {

	cpm, st, vals := ctx.cpm, ctx.st, ctx.vals
	m := vals.M
	words := bitvec.Words(m)
	shards := par.Shards(m, pool.Workers())
	aem := ctx.metric == core.MetricAEM

	// Warm the CPM's shared lazy caches from this goroutine before the
	// fan-out: AnyProp fills are atomic (racing fills would merely waste
	// work), the AEM column memo is plain and must be sequenced here.
	targets := make([]circuit.NodeID, 0, len(cands))
	seen := make(map[circuit.NodeID]bool, len(cands))
	for i := range cands {
		if !seen[cands[i].Target] {
			seen[cands[i].Target] = true
			targets = append(targets, cands[i].Target)
		}
	}
	if aem {
		cpm.EnsureAEMColumns(st)
	} else {
		cpm.EnsureAnyProp(targets)
	}

	erInc := make([][]int64, len(shards))
	erDec := make([][]int64, len(shards))
	aemMag := make([][]float64, len(shards))
	for si := range shards {
		if aem {
			aemMag[si] = make([]float64, len(cands))
		} else {
			erInc[si] = make([]int64, len(cands))
			erDec[si] = make([]int64, len(cands))
		}
	}

	last := words - 1
	tail := bitvec.TailMask(m)
	pool.Do(len(shards), func(_, si int) {
		sh := shards[si]
		chg := make([]uint64, words)
		for ci := range cands {
			c := &cands[ci]
			tw := vals.Node(c.Target).WordsSlice()
			var sw []uint64
			if !c.Const {
				sw = vals.Node(c.Sub).WordsSlice()
			}
			for w := sh.W0; w < sh.W1; w++ {
				var sub uint64
				switch {
				case c.Const:
					if c.ConstVal {
						sub = ^uint64(0)
						if w == last {
							sub = tail
						}
					}
				case c.Inverted:
					sub = ^sw[w]
					if w == last {
						sub &= tail
					}
				default:
					sub = sw[w]
				}
				chg[w] = tw[w] ^ sub
			}
			if aem {
				aemMag[si][ci] = cpm.DeltaAEMPartial(c.Target, chg, st, sh.W0, sh.W1)
			} else {
				inc, dec := cpm.DeltaERPartial(c.Target, chg, st, sh.W0, sh.W1)
				erInc[si][ci] = inc
				erDec[si][ci] = dec
			}
		}
	})

	best := -1
	var feasible []int
	for i := range cands {
		c := &cands[i]
		if aem {
			var total float64
			for si := range shards {
				total += aemMag[si][i]
			}
			c.Delta = total / float64(m)
		} else {
			var inc, dec int64
			for si := range shards {
				inc += erInc[si][i]
				dec += erDec[si][i]
			}
			c.Delta = (float64(inc) - float64(dec)) / float64(m)
		}
		c.Exact = cpm.ExactFor(c.Target)
		c.Score = score(c.AreaGain, c.Delta, m)
		o.candidateScored(iter, c)
		if curErr+c.Delta > threshold+1e-12 {
			continue
		}
		feasible = append(feasible, i)
		if best == -1 || c.Score > cands[best].Score {
			best = i
		}
	}
	return best, feasible
}
