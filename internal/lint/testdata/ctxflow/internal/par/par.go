// Package par stubs the real worker pool at its true import path so the
// type-aware analyzers resolve the same method objects as on the tree.
package par

import "context"

type Pool struct{ n int }

func (p *Pool) Do(n int, fn func(worker, task int)) {
	for i := 0; i < n; i++ {
		fn(0, i)
	}
}

func (p *Pool) DoCtx(ctx context.Context, n int, fn func(worker, task int)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, i)
	}
	return nil
}
