package repro

import (
	"fmt"
	"strings"
	"time"

	"batchals/internal/bench"
	"batchals/internal/cell"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

func defaultLib() *cell.Library { return cell.Default() }

// ComplexityRow records one point of the §4.4 scaling experiment: for a
// synthetic circuit of N nodes, the time for one complete batch estimation
// of all candidates versus one complete full-simulation estimation.
type ComplexityRow struct {
	Nodes      int
	Outputs    int
	Candidates int
	BatchTime  time.Duration
	FullTime   time.Duration
	SpeedUp    float64
}

// Complexity measures batch vs full estimation cost on synthetic circuits
// of increasing size, demonstrating the Θ(M·O·T) vs Θ(M·N·T) separation:
// the speed-up should grow roughly with N/O as circuits grow.
func Complexity(opt Options) ([]ComplexityRow, error) {
	opt = opt.fill()
	sizes := []float64{150, 300, 600, 1200}
	if opt.Fast {
		sizes = sizes[:2]
	}
	var rows []ComplexityRow
	for i, area := range sizes {
		golden := bench.Synthetic(fmt.Sprintf("scale%d", i), 24, 8, area, int64(1000+i))
		base := sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   1, // estimation only; no feasibility pruning
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
		}

		cfgB := base
		cfgB.Estimator = sasimi.EstimatorBatch
		start := time.Now()
		cands, err := sasimi.EstimateAll(golden, golden.Clone(), cfgB)
		if err != nil {
			return nil, err
		}
		batchTime := time.Since(start)

		cfgF := base
		cfgF.Estimator = sasimi.EstimatorFull
		start = time.Now()
		if _, err := sasimi.EstimateAll(golden, golden.Clone(), cfgF); err != nil {
			return nil, err
		}
		fullTime := time.Since(start)

		row := ComplexityRow{
			Nodes:      golden.NumNodes(),
			Outputs:    golden.NumOutputs(),
			Candidates: len(cands),
			BatchTime:  batchTime,
			FullTime:   fullTime,
		}
		if batchTime > 0 {
			row.SpeedUp = float64(fullTime) / float64(batchTime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComplexity formats the scaling measurement.
func RenderComplexity(rows []ComplexityRow) string {
	var sb strings.Builder
	sb.WriteString("Section 4.4: batch vs full estimation scaling (one iteration, all candidates)\n")
	fmt.Fprintf(&sb, "%8s %8s %11s %12s %12s %9s\n",
		"nodes", "outputs", "candidates", "batch.time", "full.time", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %8d %11d %12s %12s %8.1fx\n",
			r.Nodes, r.Outputs, r.Candidates,
			r.BatchTime.Round(time.Millisecond), r.FullTime.Round(time.Millisecond), r.SpeedUp)
	}
	return sb.String()
}
