package emetric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"batchals/internal/bitvec"
)

// randomState builds a State from random golden/approx output matrices.
func randomState(r *rand.Rand, outs, m int) *State {
	g := bitvec.NewMatrix(outs, m)
	a := bitvec.NewMatrix(outs, m)
	for o := 0; o < outs; o++ {
		for i := 0; i < m; i++ {
			g.Set(o, i, r.Intn(2) == 1)
			a.Set(o, i, r.Intn(2) == 1)
		}
	}
	return NewState(g, a)
}

// TestQuickERBounds: ER is always in [0,1], Hamming in [0,O], AEM in
// [0, 2^O - 1], and ER == 0 iff Hamming == 0.
func TestQuickERBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outs := 1 + r.Intn(10)
		m := 1 + r.Intn(300)
		s := randomState(r, outs, m)
		er := s.ErrorRate()
		ham := s.MeanHammingDistance()
		aem := s.AvgErrorMagnitude()
		if er < 0 || er > 1 {
			return false
		}
		if ham < 0 || ham > float64(outs) {
			return false
		}
		if aem < 0 || aem > MaxOutputValue(outs) {
			return false
		}
		if (er == 0) != (ham == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefreshIdempotent: Refresh never changes anything unless U or V
// changed; refreshing twice equals refreshing once.
func TestQuickRefreshIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r, 1+r.Intn(6), 1+r.Intn(200))
		before := s.ErrorRate()
		s.Refresh()
		mid := s.ErrorRate()
		s.Refresh()
		return before == mid && mid == s.ErrorRate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFixingOneOutputNeverIncreasesER: copying one golden row into V
// can only reduce (or keep) the error rate.
func TestQuickFixingOneOutputNeverIncreasesER(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outs := 1 + r.Intn(8)
		s := randomState(r, outs, 1+r.Intn(200))
		before := s.ErrorRate()
		o := r.Intn(outs)
		s.V.Row(o).CopyFrom(s.U.Row(o))
		s.RefreshRow(o)
		return s.ErrorRate() <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAEMTriangle: AEM between golden and approx is bounded by the sum
// of per-output contributions (each wrong bit o contributes at most 2^o per
// pattern).
func TestQuickAEMTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		outs := 1 + r.Intn(8)
		m := 1 + r.Intn(150)
		s := randomState(r, outs, m)
		bound := 0.0
		for o := 0; o < outs; o++ {
			bound += float64(s.W.Row(o).Count()) * math.Pow(2, float64(o))
		}
		bound /= float64(m)
		return s.AvgErrorMagnitude() <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
