package analyze

import "batchals/internal/circuit"

// FindCycle searches the network for a combinational cycle and returns one
// offending cycle as a node sequence (each node feeds the next, the last
// feeds the first), or nil if the network is acyclic. Unlike
// Network.Validate it names the cycle rather than just detecting it, and
// unlike Network.TopoOrder it never panics.
func FindCycle(n *circuit.Network) []circuit.NodeID {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]byte, n.NumSlots())

	// Iterative DFS over fanin edges keeping the explicit path so the
	// cycle can be reconstructed when a grey node is re-entered.
	type frame struct {
		id   circuit.NodeID
		next int // index into Fanins(id) to try next
	}
	var stack []frame
	var path []circuit.NodeID

	for _, start := range n.LiveNodes() {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{id: start})
		path = path[:0]
		color[start] = grey
		path = append(path, start)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			fanins := n.Fanins(f.id)
			if f.next < len(fanins) {
				child := fanins[f.next]
				f.next++
				if !n.IsLive(child) {
					continue // Validate reports dead fanins; not our job
				}
				switch color[child] {
				case white:
					color[child] = grey
					stack = append(stack, frame{id: child})
					path = append(path, child)
				case grey:
					// Found a back edge: the cycle is the path suffix
					// starting at child. Report it in fanin->fanout
					// direction (signal flow), i.e. reversed DFS order.
					for i, id := range path {
						if id == child {
							cyc := append([]circuit.NodeID(nil), path[i:]...)
							reverse(cyc)
							return cyc
						}
					}
				}
			} else {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				path = path[:len(path)-1]
			}
		}
	}
	return nil
}

func reverse(s []circuit.NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
