// Package timeline is the causal span recorder of the observability
// layer: a low-overhead, lock-free collection of per-lane span rings that
// the parallel engine (par.Pool), the simulation/CPM kernels and the
// SASIMI flow loop write into, and that exports as Chrome trace-event
// JSON loadable in Perfetto (chrome://tracing).
//
// Where the obs package's Profile answers "how much wall time did each of
// the five flow phases take in aggregate", the timeline answers the
// question ROADMAP item 2 actually asks: *where on which worker did the
// wall-clock go, and what was everyone else doing meanwhile*. A span is
// one contiguous activity — a pool dispatch, one worker's share of it, a
// flow phase, a candidate verification — tagged with the worker, shard,
// iteration and parent dispatch that caused it, so the serial fraction
// (time with every worker idle) and the barrier-wait tail (workers done,
// dispatch not) fall straight out of the recorded data.
//
// Design constraints, in order:
//
//  1. Overhead. Recording must stay well under 2% of
//     BenchmarkParallelEstimate (pinned by TestTimelineOverhead* in the
//     root package). Emitting a span is one atomic add for the ID, a
//     bounds check, a struct store into a pre-allocated ring slot and an
//     atomic cursor publish — no locks, no allocation, no map lookups.
//  2. Concurrent export. A live /timeline HTTP scrape may read while the
//     flow writes. Each lane is single-writer; the writer publishes the
//     cursor with an atomic store *after* the slot write, the reader
//     loads it first, so every span at an index below the observed
//     cursor is fully written (release/acquire via sync/atomic). Slots
//     are never overwritten — a full lane drops new spans and counts
//     them — so the reader can never observe a torn or recycled slot.
//  3. Determinism of the observed computation. The recorder is written
//     to from the driver goroutine only (pool workers' timings are
//     aggregated by the dispatching goroutine after the barrier), so
//     attaching it cannot perturb task scheduling; the bit-identity
//     differential suite runs green with a recorder attached.
package timeline

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"batchals/internal/obs"
)

// Span is one recorded activity on the causal timeline.
type Span struct {
	// ID is the recorder-unique span identity (1-based; 0 = none).
	ID int64
	// Parent is the ID of the causing span (a worker span's dispatch,
	// a verification span's iteration), or 0 for roots.
	Parent int64
	// Name identifies the activity, dotted by subsystem: "sim.simulate",
	// "cpm.build", "sasimi.score", "phase:estimate", "iteration", ...
	Name string
	// Phase is the flow phase the activity belongs to.
	Phase obs.Phase
	// Worker is the pool worker that executed the activity, or -1 for the
	// flow/driver goroutine (dispatch wrappers, flow phases).
	Worker int32
	// Shard is the pattern shard (or task index) when the span covers
	// exactly one, -1 when it aggregates several.
	Shard int32
	// Iter is the flow iteration the span belongs to (0 outside the loop).
	Iter int32
	// T0 and T1 are start/end nanoseconds on the recorder's monotonic
	// clock (Recorder.Now).
	T0, T1 int64
	// Busy is the time actually spent executing within [T0,T1] — for a
	// worker span, the summed task bodies (the remainder is idle/steal
	// wait); for a dispatch span, the summed busy of all workers. Zero
	// means "fully busy" for spans that have no idle notion.
	Busy int64
	// Tasks counts the pool tasks folded into the span (0 for non-pool
	// spans).
	Tasks int32
}

// Dur returns the span's wall duration in nanoseconds.
func (s *Span) Dur() int64 { return s.T1 - s.T0 }

// Idle returns the in-span idle time (Dur - Busy) for pool spans, 0 for
// spans that carry no busy accounting.
func (s *Span) Idle() int64 {
	if s.Busy <= 0 {
		return 0
	}
	d := s.Dur() - s.Busy
	if d < 0 {
		return 0
	}
	return d
}

// lane is a single-writer bounded span ring. n is published with
// release/acquire atomics so a concurrent reader sees fully-written
// slots only; slots are never recycled (drop-on-full), which is what
// makes the concurrent read race-free.
type lane struct {
	n     atomic.Int64
	spans []Span
	// pad keeps neighbouring lanes' cursors off one cache line; the spans
	// header provides most of the separation already.
	_ [40]byte
}

// DefaultLaneCap is the per-lane span capacity when NewRecorder is given
// a non-positive one: 8192 spans ≈ 0.75 MiB per lane, enough for several
// hundred flow iterations at typical dispatch rates.
const DefaultLaneCap = 8192

// maxLanes bounds the lane count against pathological worker counts,
// mirroring par's maxWorkerCounters cap (64 workers + the driver lane).
const maxLanes = 65

// Recorder collects spans into per-lane rings. Lane 0 belongs to the
// flow/driver goroutine; lane w+1 to pool worker w. All methods are safe
// on a nil *Recorder (they no-op), so instrumentation sites thread one
// pointer through without nil checks.
//
// Writer contract: each lane has at most one writer at a time. The
// par.Pool wiring satisfies this trivially — every span, including the
// per-worker ones, is emitted by the dispatching goroutine after the
// batch barrier. Readers (Snapshot, WriteTrace) may run concurrently
// with writers.
type Recorder struct {
	epoch   time.Time
	lanes   []lane
	nextID  atomic.Int64
	iter    atomic.Int32
	dropped atomic.Int64
}

// NewRecorder returns a recorder with the given lane count and per-lane
// capacity. lanes <= 0 selects runtime.NumCPU()+1 (one driver lane plus
// one per worker of a default-sized pool); laneCap <= 0 selects
// DefaultLaneCap. Lane count is capped at 65.
func NewRecorder(lanes, laneCap int) *Recorder {
	if lanes <= 0 {
		lanes = runtime.NumCPU() + 1
	}
	if lanes > maxLanes {
		lanes = maxLanes
	}
	if laneCap <= 0 {
		laneCap = DefaultLaneCap
	}
	r := &Recorder{epoch: time.Now(), lanes: make([]lane, lanes)}
	for i := range r.lanes {
		r.lanes[i].spans = make([]Span, laneCap)
	}
	return r
}

// Now returns nanoseconds since the recorder's epoch.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Rel converts an absolute time.Time to the recorder's clock, so callers
// that already hold a time.Now() need not read the clock again.
func (r *Recorder) Rel(t time.Time) int64 {
	if r == nil {
		return 0
	}
	return int64(t.Sub(r.epoch))
}

// SetIter labels subsequently emitted spans with the current flow
// iteration. Pool dispatches read it at emission time.
func (r *Recorder) SetIter(iter int) {
	if r != nil {
		r.iter.Store(int32(iter))
	}
}

// Iter returns the current iteration label.
func (r *Recorder) Iter() int32 {
	if r == nil {
		return 0
	}
	return r.iter.Load()
}

// Lanes returns the recorder's lane count (0 for nil).
func (r *Recorder) Lanes() int {
	if r == nil {
		return 0
	}
	return len(r.lanes)
}

// Dropped reports how many spans were discarded because their lane was
// full.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Emit records s on the given lane (clamped into range) and returns the
// assigned span ID, or 0 when the recorder is nil or the lane is full.
// The span's ID field is assigned here; all other fields are the
// caller's. Each lane must have a single writer at a time.
func (r *Recorder) Emit(laneIdx int, s Span) int64 {
	if r == nil {
		return 0
	}
	if laneIdx < 0 {
		laneIdx = 0
	}
	if laneIdx >= len(r.lanes) {
		laneIdx = len(r.lanes) - 1
	}
	ln := &r.lanes[laneIdx]
	n := ln.n.Load()
	if int(n) >= len(ln.spans) {
		r.dropped.Add(1)
		return 0
	}
	s.ID = r.nextID.Add(1)
	ln.spans[n] = s
	ln.n.Store(n + 1) // publish: release-store pairs with Snapshot's acquire-load
	return s.ID
}

// Active is an open span started by Start; close it with End. The zero
// Active (from a nil recorder) is inert.
type Active struct {
	name  string
	phase obs.Phase
	t0    int64
}

// Start opens a driver-lane span at the current time. It performs no
// allocation and no ring write; the span materialises at End.
func (r *Recorder) Start(name string, phase obs.Phase) Active {
	if r == nil {
		return Active{}
	}
	return Active{name: name, phase: phase, t0: r.Now()}
}

// End closes an Active span, emitting it on the driver lane with the
// current iteration label, and returns its span ID.
func (r *Recorder) End(a Active) int64 {
	return r.EndWithParent(a, 0)
}

// EndWithParent is End with an explicit causal parent span ID.
func (r *Recorder) EndWithParent(a Active, parent int64) int64 {
	if r == nil || a.name == "" {
		return 0
	}
	return r.Emit(0, Span{
		Parent: parent,
		Name:   a.name,
		Phase:  a.phase,
		Worker: -1,
		Shard:  -1,
		Iter:   r.iter.Load(),
		T0:     a.t0,
		T1:     r.Now(),
	})
}

// Snapshot returns every published span across all lanes, ordered by
// start time (ties by ID). Safe to call while writers are active: it
// observes each lane's published prefix.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	total := 0
	counts := make([]int, len(r.lanes))
	for i := range r.lanes {
		counts[i] = int(r.lanes[i].n.Load()) // acquire: slots below are fully written
		total += counts[i]
	}
	out := make([]Span, 0, total)
	for i := range r.lanes {
		out = append(out, r.lanes[i].spans[:counts[i]]...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].T0 != out[b].T0 {
			return out[a].T0 < out[b].T0
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// SpanCount returns the number of published spans across all lanes.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.lanes {
		n += int(r.lanes[i].n.Load())
	}
	return n
}

// Reset discards all recorded spans and the drop count. NOT safe
// concurrently with writers or readers — call it only between runs (the
// overhead benchmark resets between iterations so ring exhaustion cannot
// flatter the measured cost).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.lanes {
		r.lanes[i].n.Store(0)
	}
	r.dropped.Store(0)
	r.nextID.Store(0)
	r.iter.Store(0)
}
