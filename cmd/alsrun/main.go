// Command alsrun runs an approximate logic synthesis flow on a benchmark or
// circuit file under an error constraint and reports the result.
//
// Usage:
//
//	alsrun -circuit mul8 -metric er -threshold 0.01
//	alsrun -circuit path/to/c880.bench -metric aem -threshold 12.5 -out approx.bench
//	alsrun -circuit c880 -trace t.jsonl -metrics m.json
//	alsrun -list
//
// The -estimator flag selects batch (the paper's method, default), full
// (per-candidate resimulation) or local (no propagation, the prior-work
// baseline). With -iters, every accepted substitution is printed.
//
// Observability (sasimi flow): -trace streams phase / iteration / accept
// events as JSON Lines, -metrics snapshots the metrics registry (counters,
// the five per-phase timers, estimator-drift histograms split by the
// exactness certificate) as JSON, -pprof serves net/http/pprof plus a
// Prometheus /metrics endpoint while the flow runs, and -summary prints a
// phase/drift table at the end. Any of these also implies the summary.
//
// -timeline FILE attaches the causal span recorder and writes the run's
// per-worker timeline as Chrome trace-event JSON (open it in Perfetto or
// chrome://tracing), followed by a per-span-name wall/busy/idle summary
// table. With -serve, the live timeline is also exported at /timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"batchals"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
	"batchals/internal/serve"
	"batchals/internal/snap"
	"batchals/internal/stoch"
	"batchals/internal/wu"
)

func main() {
	var (
		circuitFlag  = flag.String("circuit", "", "benchmark name or .bench/.blif file path")
		flowFlag     = flag.String("flow", "sasimi", "ALS flow: sasimi, snap (constant-setting), wu (literal-removal) or stoch (stochastic)")
		metricFlag   = flag.String("metric", "er", "error metric: er or aem")
		threshold    = flag.Float64("threshold", 0.01, "error budget (ER fraction or absolute AEM)")
		estimator    = flag.String("estimator", "batch", "estimator: batch, full or local")
		verifyTopK   = flag.Int("verify", 0, "re-check the K best candidates per iteration exactly (0 = off)")
		patterns     = flag.Int("m", 10000, "Monte Carlo pattern count")
		seed         = flag.Int64("seed", 0, "random seed")
		workers      = flag.Int("workers", 0, "worker pool size for the sasimi flow (0 = all CPUs, 1 = sequential; results are bit-identical at any count)")
		incremental  = flag.Bool("incremental", true, "carry simulation/CPM state across sasimi iterations (cone resimulation + dirty-region CPM refresh); false rebuilds from scratch each iteration — results are bit-identical either way")
		partCells    = flag.Int("partition-cells", 0, "run the partitioned sasimi flow with this target part size in gates (0 = monolithic; ER metric only)")
		partMaxCut   = flag.Int("partition-maxcut", 0, "cut width below which a part boundary is accepted immediately (0 = default 64)")
		partPolicy   = flag.String("partition-policy", "", "error-budget split across parts: observability (default) or uniform")
		partRounds   = flag.Int("partition-rounds", 0, "budget allocate/run/reclaim rounds (0 = default 2)")
		outFile      = flag.String("out", "", "write the approximate circuit to this .bench/.blif file")
		iters        = flag.Bool("iters", false, "print every accepted substitution")
		checkInv     = flag.Bool("check-invariants", false, "validate structural invariants after every accepted substitution")
		traceFile    = flag.String("trace", "", "write a JSONL event trace (phases, iterations, accepts) to this file")
		traceCands   = flag.Bool("trace-cands", false, "include per-candidate scoring events in the -trace stream (large)")
		metricsFile  = flag.String("metrics", "", "write a JSON metrics snapshot (counters, phase timers, drift histograms) to this file")
		timelineFile = flag.String("timeline", "", "write the run's causal span timeline (per-worker busy/idle, dispatches, verify/apply) as Chrome trace-event JSON to this file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and Prometheus /metrics on this address during the run")
		serveAddr    = flag.String("serve", "", "serve the full observability surface (labelled /metrics, /metrics.json, /events SSE, /flight, /healthz, pprof) on this address during the run")
		summary      = flag.Bool("summary", false, "print an end-of-run phase/drift summary table")
		list         = flag.Bool("list", false, "list built-in benchmark names and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(batchals.BenchmarkNames(), "\n"))
		return
	}
	if *circuitFlag == "" {
		fmt.Fprintln(os.Stderr, "alsrun: -circuit is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	golden, err := loadCircuit(*circuitFlag)
	if err != nil {
		fatal(err)
	}

	opts := batchals.Options{
		Threshold:       *threshold,
		NumPatterns:     *patterns,
		Seed:            *seed,
		Workers:         *workers,
		KeepTrace:       *iters,
		VerifyTopK:      *verifyTopK,
		CheckInvariants: *checkInv,
	}
	if *incremental {
		opts.Incremental = batchals.IncrementalOn
	} else {
		opts.Incremental = batchals.IncrementalOff
	}
	if *partCells > 0 {
		opts.Partition = &batchals.PartitionOptions{
			TargetCells:  *partCells,
			MaxCut:       *partMaxCut,
			BudgetPolicy: *partPolicy,
			MaxRounds:    *partRounds,
		}
	}
	switch strings.ToLower(*metricFlag) {
	case "er":
		opts.Metric = batchals.ErrorRate
	case "aem":
		opts.Metric = batchals.AvgErrorMagnitude
	default:
		fatal(fmt.Errorf("unknown metric %q (want er or aem)", *metricFlag))
	}
	switch strings.ToLower(*estimator) {
	case "batch":
		opts.Estimator = batchals.Batch
	case "full":
		opts.Estimator = batchals.Full
	case "local":
		opts.Estimator = batchals.Local
	default:
		fatal(fmt.Errorf("unknown estimator %q (want batch, full or local)", *estimator))
	}

	// Observability: every sink shares the process-global registry so one
	// snapshot covers the flow metrics and the always-on sim/CPM substrate
	// counters.
	observe := *traceFile != "" || *metricsFile != "" || *pprofAddr != "" || *serveAddr != "" || *summary
	var (
		tracer    *obs.JSONLTracer
		traceW    *os.File
		flushed   bool
		servedRun *serve.Run
	)
	if *traceFile != "" {
		traceW, err = os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewJSONLTracer(traceW)
		tracer.EmitCandidates = *traceCands
		opts.Tracer = tracer
	}
	if observe {
		opts.Metrics = obs.Default()
	}
	// The timeline recorder rides independently of the metrics/trace sinks:
	// it is also attached under -serve alone so /timeline works live.
	var tlRec *batchals.TimelineRecorder
	if *timelineFile != "" || *serveAddr != "" {
		tlRec = batchals.NewTimeline(*workers)
		opts.Timeline = tlRec
	}
	if *serveAddr != "" {
		// Full observability service for the duration of the run: the run
		// registers under the circuit name, its metrics land in a dedicated
		// registry (scraped with run="name" labels), and live events stream
		// to any attached SSE client. The flow's sinks fan out to both the
		// service and any file-based tracer configured above.
		rr := serve.NewRunRegistry()
		srv := serve.New(rr)
		run := rr.Get(*circuitFlag)
		opts.Metrics = run.Registry
		opts.Tracer = obs.Multi(opts.Tracer, run.Tracer())
		boundAddr, shutdown, err := srv.Start(*serveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving: http://%s/metrics (/metrics.json, /events, /flight, /debug/pprof/)\n", boundAddr)
		run.SetTimeline(tlRec)
		run.SetState(serve.RunActive, "")
		srv.SetReady(true)
		defer func() {
			run.SetState(serve.RunDone, "")
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = shutdown(ctx)
		}()
		servedRun = run
	}
	if *pprofAddr != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			obs.Default().Snapshot().WritePrometheus(w)
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "alsrun: pprof server:", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/ (Prometheus text at /metrics)\n", *pprofAddr)
	}
	finishObs := func(phases obs.PhaseReport) {
		if tlRec != nil && *timelineFile != "" {
			f, err := os.Create(*timelineFile)
			if err != nil {
				fatal(err)
			}
			if err := tlRec.WriteTrace(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d spans)\n", *timelineFile, tlRec.SpanCount())
			if err := timeline.Summarize(tlRec.Snapshot(), tlRec.Dropped()).WriteSummary(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if tracer != nil && !flushed {
			flushed = true
			if err := tracer.Flush(); err != nil {
				fatal(err)
			}
			if err := traceW.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *traceFile)
		}
		if !observe {
			return
		}
		snapshot := obs.Default().Snapshot()
		if servedRun != nil {
			// With -serve the flow metrics land in the run's registry.
			snapshot = servedRun.Registry.Snapshot()
		}
		if *metricsFile != "" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fatal(err)
			}
			if err := snapshot.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsFile)
		}
		if err := obs.WriteSummary(os.Stdout, phases, snapshot); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("circuit: %s (%d inputs, %d outputs, area %.0f, delay %.0f)\n",
		golden.Name, golden.NumInputs(), golden.NumOutputs(),
		batchals.Area(golden), batchals.Delay(golden))
	fmt.Printf("flow: %s/%s, %s <= %g, M=%d, seed=%d\n",
		*flowFlag, *estimator, strings.ToUpper(*metricFlag), *threshold, *patterns, *seed)

	switch strings.ToLower(*flowFlag) {
	case "sasimi":
		res := runSASIMI(golden, opts, *iters, *outFile)
		finishObs(res.Phases)
	case "snap":
		res, err := snap.Run(golden, snap.Config{
			Budget: flow.Budget{
				Metric:      opts.Metric,
				Threshold:   opts.Threshold,
				NumPatterns: opts.NumPatterns,
				Seed:        opts.Seed,
			},
			UseBatch: opts.Estimator == batchals.Batch,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d constants set, measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
		finishObs(obs.PhaseReport{})
	case "wu":
		res, err := wu.Run(golden, wu.Config{
			Budget: flow.Budget{
				Metric:      opts.Metric,
				Threshold:   opts.Threshold,
				NumPatterns: opts.NumPatterns,
				Seed:        opts.Seed,
			},
			UseBatch: opts.Estimator == batchals.Batch,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d literals removed, measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
		finishObs(obs.PhaseReport{})
	case "stoch":
		res, err := stoch.Run(golden, stoch.Config{
			Metric:      opts.Metric,
			Threshold:   opts.Threshold,
			NumPatterns: opts.NumPatterns,
			Seed:        opts.Seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d/%d moves accepted (%d batch-assisted), measured error %.5f\n",
			res.OriginalArea, res.FinalArea, res.AreaRatio(), res.Accepted, res.Proposed,
			res.BatchMoves, res.FinalError)
		fmt.Printf("runtime: %s\n", res.TotalTime.Round(time.Millisecond))
		saveOut(*outFile, res.Approx)
		finishObs(obs.PhaseReport{})
	default:
		fatal(fmt.Errorf("unknown flow %q (want sasimi, snap, wu or stoch)", *flowFlag))
	}
}

func runSASIMI(golden *batchals.Network, opts batchals.Options, iters bool, outFile string) *batchals.Result {
	fl := batchals.NewFlow(golden, opts)
	res, err := fl.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	if rep := fl.PartitionReport(); rep != nil {
		fmt.Printf("partition: %d parts (target %d cells, max cut %d, policy %s), %d rounds, %d reverted, merged error %.5f\n",
			rep.NumParts, rep.TargetCells, rep.MaxCut, rep.Policy, rep.Rounds, rep.Reverted, rep.MergedError)
		for _, p := range rep.Parts {
			mark := ""
			if p.Reverted {
				mark = "  REVERTED"
			}
			fmt.Printf("  part %3d: %5d cells, cut %3d, %3d outs, budget %.5f, local err %.5f, area %.0f -> %.0f, %d subs%s\n",
				p.Index, p.Cells, p.CutIns, p.Outputs, p.Budget, p.LocalError, p.AreaBefore, p.AreaAfter, p.Iterations, mark)
		}
	}
	if iters {
		for _, it := range res.Iterations {
			inv := ""
			if it.Inverted {
				inv = " (inverted)"
			}
			fmt.Printf("  iter %3d: %s <- %s%s  est ΔE=%+.5f  measured=%.5f  area=%.0f\n",
				it.Iter, it.Target, it.Sub, inv, it.EstDelta, it.ActualErr, it.Area)
		}
	}
	fmt.Printf("result: area %.0f -> %.0f (ratio %.3f), %d substitutions, measured error %.5f\n",
		res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
	fmt.Printf("runtime: %s total (CPM %s, estimation %s)\n",
		res.TotalTime.Round(time.Millisecond),
		res.CPMTime.Round(time.Millisecond),
		res.EstimateTime.Round(time.Millisecond))
	saveOut(outFile, res.Approx)
	return res
}

func saveOut(path string, n *batchals.Network) {
	if path == "" {
		return
	}
	if err := batchals.Save(path, n); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// loadCircuit resolves a benchmark name or a file path.
func loadCircuit(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsrun:", err)
	os.Exit(1)
}
