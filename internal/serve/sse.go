package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// handleEvents streams one run's live flow events as Server-Sent Events.
// Each event is rendered as
//
//	event: <kind>
//	data: {"ev":...,"seq":...,"run":...,"data":{...}}
//
// Query parameters:
//
//	run=NAME   which run to stream (optional with exactly one run)
//	limit=N    close the stream after N events (0 = until disconnect);
//	           deterministic consumption for tests and smoke scripts
//	buf=N      subscriber buffer size (default obs.DefaultSubscribeBuffer);
//	           events beyond a full buffer are dropped, visible as seq gaps
//
// The stream never blocks the flow: a slow consumer loses events rather
// than stalling synthesis (obs.StreamTracer's drop-on-full contract).
// Heartbeat comments flow every Server.Heartbeat so intermediaries don't
// reap an idle connection.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRunParam(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := r.URL.Query()
	limit, _ := strconv.Atoi(q.Get("limit"))
	buf, _ := strconv.Atoi(q.Get("buf"))

	events, cancel := run.Stream.Subscribe(buf)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	hb := s.Heartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if _, err := w.Write([]byte(": heartbeat\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case ev := <-events:
			payload, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := w.Write([]byte("event: " + ev.Kind.String() + "\ndata: ")); err != nil {
				return
			}
			if _, err := w.Write(payload); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			flusher.Flush()
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		}
	}
}
