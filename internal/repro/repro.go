// Package repro regenerates every table and figure of the paper's
// evaluation section (Section 5) on this library's substrates. One exported
// function per experiment returns typed rows; Render* helpers format them
// as text tables in the layout of the paper.
//
// Absolute numbers differ from the paper — the circuits are this library's
// generators (and synthetic stand-ins for ISCAS85, see DESIGN.md) and the
// host is not the authors' machine — but each experiment preserves the
// comparison the paper makes: who wins, by roughly what factor, and how
// quality moves with the threshold. Paper-reported values are embedded as
// reference columns where the paper tabulates them.
package repro

import (
	"fmt"

	"batchals/internal/circuit"
)

// Options controls experiment scale. The zero value gives a configuration
// that finishes in minutes on a laptop; the paper-scale settings (M=100000)
// are a matter of raising M.
type Options struct {
	// M is the Monte Carlo sample count per flow run (default 2000;
	// paper: 10000 for Table 1, 100000 elsewhere).
	M int
	// Seed drives all pattern generation (default 1).
	Seed int64
	// Fast trims large circuits and sweep points to smoke-test scale.
	Fast bool
}

func (o Options) fill() Options {
	if o.M == 0 {
		o.M = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// benchOrDie builds a registered benchmark and panics on unknown names;
// experiment tables are static, so a failure is a programming error.
func benchOrDie(name string, build func(string) (*circuit.Network, error)) *circuit.Network {
	n, err := build(name)
	if err != nil {
		panic(fmt.Sprintf("repro: %v", err))
	}
	return n
}

// erThresholds are the seven ER thresholds of Fig. 4 / Table 3 (fractions).
var erThresholds = []float64{0.001, 0.003, 0.005, 0.008, 0.01, 0.03, 0.05}

// aemRateThresholds are the AEM-rate sweep points of Fig. 5 / Table 4, as
// fractions of the maximum output value.
var aemRateThresholds = []float64{0.0005, 0.001, 0.002, 0.005, 0.01}

// table3Benchmarks lists the twelve benchmarks of Fig. 4 / Table 3 in the
// paper's order, with the paper's reported columns for reference.
var table3Benchmarks = []struct {
	name       string
	paperArea  float64 // paper's "original area"
	paperIO    string
	paperCPM   float64 // paper's CPM-runtime percentage
	paperSAS   float64 // paper: original SASIMI average area ratio
	paperWu    float64 // paper: Wu's method average area ratio
	paperModif float64 // paper: modified SASIMI average area ratio
}{
	{"c880", 599, "60/26", 4.9, 0.896, 0.893, 0.873},
	{"c1908", 1013, "33/25", 4.1, 0.610, 0.595, 0.592},
	{"c2670", 1434, "233/140", 4.8, 0.724, 0.662, 0.647},
	{"c3540", 1615, "50/22", 2.3, 0.975, 0.966, 0.936},
	{"c5315", 2432, "178/123", 2.9, 0.981, 0.978, 0.946},
	{"c7552", 2759, "207/108", 1.3, 0.948, 0.940, 0.876},
	{"alu4", 2740, "14/8", 2.0, 0.892, 0.878, 0.751},
	{"rca32", 691, "64/33", 5.4, 0.972, 0.970, 0.961},
	{"cla32", 1063, "64/33", 4.7, 0.829, 0.822, 0.766},
	{"ksa32", 1128, "64/33", 4.9, 0.848, 0.849, 0.840},
	{"mul8", 1276, "16/16", 2.9, 0.829, 0.819, 0.797},
	{"wtm8", 1104, "16/16", 2.2, 0.959, 0.953, 0.945},
}

// table4Benchmarks lists the five arithmetic benchmarks of Fig. 5 /
// Table 4 with the paper's reported average area ratios.
var table4Benchmarks = []struct {
	name       string
	paperSAS   float64 // paper: original SASIMI
	paperModif float64 // paper: modified SASIMI
}{
	{"rca32", 0.555, 0.186},
	{"cla32", 0.423, 0.140},
	{"ksa32", 0.673, 0.133},
	{"mul8", 0.626, 0.480},
	{"wtm8", 0.863, 0.429},
}
