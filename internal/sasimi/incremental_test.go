package sasimi

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
)

// differentialCase is one cell of the incremental-vs-full grid.
type differentialCase struct {
	bench     string
	metric    core.Metric
	threshold float64
}

// differentialGrid pins the tentpole contract: the incremental engine
// (cone-scoped resimulation + dirty-region CPM refresh + gather cache) is
// bit-identical to the per-iteration full rebuild on every benchmark, both
// metrics and every worker count.
var differentialGrid = []differentialCase{
	{"rca8", core.MetricER, 0.08},
	{"rca8", core.MetricAEM, 4.0},
	{"dec4", core.MetricER, 0.05},
	{"dec4", core.MetricAEM, 40.0},
	{"par16", core.MetricER, 0.03},
	{"par16", core.MetricAEM, 0.03},
	{"cmp8", core.MetricER, 0.04},
	{"cmp8", core.MetricAEM, 0.3},
}

func diffWorkers() []int {
	ws := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		ws = append(ws, n)
	}
	return ws
}

func runIncCase(t *testing.T, tc differentialCase, workers int, mode IncrementalMode) *Result {
	t.Helper()
	golden, err := bench.ByName(tc.bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      tc.metric,
			Threshold:   tc.threshold,
			NumPatterns: 1000,
			Seed:        11,
		},
		Estimator:       EstimatorBatch,
		Workers:         workers,
		Incremental:     mode,
		KeepTrace:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compareResults(t *testing.T, label string, inc, full *Result) {
	t.Helper()
	if inc.NumIterations != full.NumIterations {
		t.Fatalf("%s: iterations %d (incremental) vs %d (full)", label, inc.NumIterations, full.NumIterations)
	}
	if inc.FinalError != full.FinalError {
		t.Fatalf("%s: final error %v vs %v", label, inc.FinalError, full.FinalError)
	}
	if inc.FinalArea != full.FinalArea {
		t.Fatalf("%s: final area %v vs %v", label, inc.FinalArea, full.FinalArea)
	}
	if len(inc.Iterations) != len(full.Iterations) {
		t.Fatalf("%s: trace length %d vs %d", label, len(inc.Iterations), len(full.Iterations))
	}
	for i := range inc.Iterations {
		a, b := &inc.Iterations[i], &full.Iterations[i]
		if a.Target != b.Target || a.Sub != b.Sub || a.Inverted != b.Inverted {
			t.Fatalf("%s iter %d: accept %s<-%s(inv=%v) vs %s<-%s(inv=%v)",
				label, a.Iter, a.Target, a.Sub, a.Inverted, b.Target, b.Sub, b.Inverted)
		}
		if a.EstDelta != b.EstDelta || a.ActualErr != b.ActualErr {
			t.Fatalf("%s iter %d: delta/actual %v/%v vs %v/%v",
				label, a.Iter, a.EstDelta, a.ActualErr, b.EstDelta, b.ActualErr)
		}
		if a.Candidates != b.Candidates || a.Feasible != b.Feasible {
			t.Fatalf("%s iter %d: candidates %d/%d vs %d/%d",
				label, a.Iter, a.Candidates, a.Feasible, b.Candidates, b.Feasible)
		}
	}
	if inc.Approx.Dump() != full.Approx.Dump() {
		t.Fatalf("%s: structurally different final circuits", label)
	}
}

// TestIncrementalMatchesFullRebuild is the differential suite: every
// benchmark × metric × worker-count cell must produce the identical accept
// sequence, final error and final circuit with the engine on and off.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	for _, tc := range differentialGrid {
		full := runIncCase(t, tc, 1, IncrementalOff)
		for _, w := range diffWorkers() {
			inc := runIncCase(t, tc, w, IncrementalOn)
			label := tc.bench + "/" + tc.metric.String() + "/w" + itoa(w)
			compareResults(t, label, inc, full)
			// The full-rebuild path must itself be worker-invariant.
			fullW := runIncCase(t, tc, w, IncrementalOff)
			compareResults(t, label+"/full", fullW, full)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestVerifyIncrementalCrossCheck runs a flow with the internal
// verifyIncremental hook enabled: every iteration the incremental candidate
// list and CPM are compared field-for-field against rebuilt-from-scratch
// versions, failing the run on any divergence.
func TestVerifyIncrementalCrossCheck(t *testing.T) {
	for _, metric := range []core.Metric{core.MetricER, core.MetricAEM} {
		threshold := 0.1
		if metric == core.MetricAEM {
			threshold = 4.0
		}
		golden := bench.RCA(8)
		_, err := Run(golden, Config{
			Budget: flow.Budget{
				Metric:      metric,
				Threshold:   threshold,
				NumPatterns: 800,
				Seed:        3,
			},
			Estimator:         EstimatorBatch,
			Incremental:       IncrementalOn,
			CheckInvariants:   true,
			verifyIncremental: true,
		})
		if err != nil {
			t.Fatalf("metric %v: cross-check failed: %v", metric, err)
		}
	}
}

// TestIncrementalDefaultOn pins the API contract: the zero value of
// IncrementalMode enables the engine, IncrementalOff disables it, and both
// still satisfy the error budget.
func TestIncrementalDefaultOn(t *testing.T) {
	if !IncrementalAuto.enabled() || !IncrementalOn.enabled() || IncrementalOff.enabled() {
		t.Fatal("IncrementalMode.enabled() wiring is wrong")
	}
	auto := runIncCase(t, differentialGrid[0], 1, IncrementalAuto)
	on := runIncCase(t, differentialGrid[0], 1, IncrementalOn)
	compareResults(t, "auto-vs-on", auto, on)
}

// TestRunContextCancelled pins the cancellation contract: an
// already-cancelled context aborts before any iteration and surfaces
// context.Canceled; the partial result is still returned.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	golden := bench.RCA(8)
	res, err := RunContext(ctx, golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.03,
			NumPatterns: 500,
			Seed:        1,
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run must still return the partial result")
	}
	if res.NumIterations != 0 {
		t.Fatalf("pre-cancelled run accepted %d iterations", res.NumIterations)
	}
}
