// Custom circuit: build a network through the circuit API (a 4-bit
// saturation clamp with a magnitude comparator), save and reload it as
// .bench, and approximate it under an error-rate budget — the workflow of
// a user bringing their own logic rather than a registered benchmark.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"batchals"
	"batchals/internal/circuit"
)

// buildClamp returns a circuit computing y = min(x, limit) for 4-bit x and
// limit: a comparator deciding x > limit, and a mux per bit.
func buildClamp() *circuit.Network {
	n := circuit.New("clamp4")
	x := make([]circuit.NodeID, 4)
	lim := make([]circuit.NodeID, 4)
	for i := range x {
		x[i] = n.AddInput(fmt.Sprintf("x%d", i))
	}
	for i := range lim {
		lim[i] = n.AddInput(fmt.Sprintf("lim%d", i))
	}

	// gt = (x > lim), MSB-first compare.
	var gt, eqAll circuit.NodeID
	for i := 3; i >= 0; i-- {
		eq := n.AddGate(circuit.KindXnor, x[i], lim[i])
		nl := n.AddGate(circuit.KindNot, lim[i])
		gti := n.AddGate(circuit.KindAnd, x[i], nl)
		if i == 3 {
			gt, eqAll = gti, eq
			continue
		}
		here := n.AddGate(circuit.KindAnd, eqAll, gti)
		gt = n.AddGate(circuit.KindOr, gt, here)
		eqAll = n.AddGate(circuit.KindAnd, eqAll, eq)
	}

	for i := 0; i < 4; i++ {
		y := n.AddGate(circuit.KindMux, gt, x[i], lim[i])
		n.AddOutput(fmt.Sprintf("y%d", i), y)
	}
	n.AddOutput("sat", gt)
	return n
}

func main() {
	golden := buildClamp()
	if err := golden.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %s\n", golden.Name, golden.Stats())

	// Persist and reload through the .bench format.
	dir, err := os.MkdirTemp("", "batchals-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "clamp4.bench")
	if err := batchals.Save(path, golden); err != nil {
		log.Fatal(err)
	}
	reloaded, err := batchals.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if rep := batchals.MeasureErrorExact(golden, reloaded); rep.ErrorRate != 0 {
		log.Fatalf("round trip changed behaviour: ER %v", rep.ErrorRate)
	}
	fmt.Printf("saved and reloaded via %s: behaviour identical\n", filepath.Base(path))

	// Approximate the reloaded circuit under a 2% ER budget.
	res, err := batchals.Approximate(reloaded, batchals.Options{
		Metric:      batchals.ErrorRate,
		Threshold:   0.02,
		NumPatterns: 8000,
		Seed:        3,
		KeepTrace:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximation: area %.0f -> %.0f in %d substitutions\n",
		res.OriginalArea, res.FinalArea, res.NumIterations)
	for _, it := range res.Iterations {
		fmt.Printf("  iter %d: %s <- %s (est ΔER %+.4f, measured ER %.4f)\n",
			it.Iter, it.Target, it.Sub, it.EstDelta, it.ActualErr)
	}
	exact := batchals.MeasureErrorExact(golden, res.Approx)
	fmt.Printf("exact error rate of the result: %.4f%% (budget 2%%)\n", 100*exact.ErrorRate)
}
