package batchals

// One testing.B benchmark per table and figure of the paper's evaluation
// (plus the §4.4 complexity claim). Each benchmark drives the same
// internal/repro harness that cmd/repro uses, at smoke scale so that
// `go test -bench=.` completes in minutes; raise -m via cmd/repro for
// paper-scale runs. The benchmarks report the headline quantity of their
// experiment as a custom metric, so the comparison the paper makes is
// visible straight from the bench output.

import (
	"testing"

	"batchals/internal/repro"
)

// benchOpt keeps every experiment at smoke scale inside the bench harness.
var benchOpt = repro.Options{M: 400, Seed: 1, Fast: true}

// BenchmarkFig1MotivatingC7552 regenerates the motivating example (Fig. 1):
// SASIMI with accurate (batch) vs without (local) error estimation under a
// 1% ER budget. Reported metric: extra area reduction of the accurate flow
// in percentage points.
func BenchmarkFig1MotivatingC7552(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := repro.Fig1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		acc, bas := 0.0, 0.0
		if len(d.Accurate) > 0 {
			acc = d.Accurate[len(d.Accurate)-1].AreaReduction
		}
		if len(d.Baseline) > 0 {
			bas = d.Baseline[len(d.Baseline)-1].AreaReduction
		}
		b.ReportMetric((acc-bas)*100, "extra_red_%")
	}
}

// BenchmarkTable1MCAccuracy regenerates the Monte Carlo accuracy check
// (Table 1): simulated vs exact ER/AEM on alu4, MUL8 and WTM8. Reported
// metric: mean relative deviation of MC from exact, in percent.
func BenchmarkTable1MCAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.Table1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var rel float64
		var cnt int
		for _, r := range rows {
			if r.Exact > 0 {
				d := (r.Simulated - r.Exact) / r.Exact
				if d < 0 {
					d = -d
				}
				rel += d
				cnt++
			}
		}
		if cnt > 0 {
			b.ReportMetric(rel/float64(cnt)*100, "mean_rel_dev_%")
		}
	}
}

// BenchmarkFig3EstimatorTracking regenerates the EER-vs-SER trajectories
// (Fig. 3). Reported metric: worst |EER-SER| gap across all iterations of
// all benchmarks, in ER percentage points.
func BenchmarkFig3EstimatorTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := repro.Fig3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, s := range series {
			for _, p := range s.Points {
				d := p.EER - p.SER
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		b.ReportMetric(worst*100, "worst_gap_%")
	}
}

// BenchmarkTable2FullSim runs the Table 2 flow with the accurate
// full-simulation estimator (the expensive baseline).
func BenchmarkTable2FullSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.Table2(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SpeedUp, "batch_speedup_x")
	}
}

// BenchmarkTable2Batch isolates the batch-estimation flow of Table 2 on
// the same circuit set, without the full-simulation baseline, so the two
// benchmarks' ns/op can be compared directly.
func BenchmarkTable2Batch(b *testing.B) {
	golden, err := Benchmark("rca32")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Approximate(golden, Options{
			Metric:      ErrorRate,
			Threshold:   0.01,
			Estimator:   Batch,
			NumPatterns: benchOpt.M,
			Seed:        benchOpt.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AreaRatio(), "area_ratio")
	}
}

// BenchmarkFig4ERSweep regenerates the ER-threshold sweep (Fig. 4).
// Reported metric: mean area ratio across all circuits and thresholds.
func BenchmarkFig4ERSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := repro.Fig4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		sum, cnt := 0.0, 0
		for _, s := range series {
			for _, p := range s.Points {
				sum += p.AreaRatio
				cnt++
			}
		}
		b.ReportMetric(sum/float64(cnt), "mean_area_ratio")
	}
}

// BenchmarkTable3ERQuality regenerates the ER-quality comparison
// (Table 3). Reported metric: mean area-ratio advantage of the batch
// estimator over the local estimator (positive = batch better).
func BenchmarkTable3ERQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.Table3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		adv := 0.0
		for _, r := range rows {
			adv += r.LocalRatio - r.BatchRatio
		}
		b.ReportMetric(adv/float64(len(rows)), "batch_advantage")
	}
}

// BenchmarkFig5AEMSweep regenerates the AEM-rate sweep (Fig. 5).
func BenchmarkFig5AEMSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := repro.Fig5(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		sum, cnt := 0.0, 0
		for _, s := range series {
			for _, p := range s.Points {
				sum += p.AreaRatio
				cnt++
			}
		}
		b.ReportMetric(sum/float64(cnt), "mean_area_ratio")
	}
}

// BenchmarkTable4AEMQuality regenerates the AEM-quality comparison
// (Table 4). Reported metric: mean batch-over-local advantage.
func BenchmarkTable4AEMQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.Table4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		adv := 0.0
		for _, r := range rows {
			adv += r.LocalRatio - r.BatchRatio
		}
		b.ReportMetric(adv/float64(len(rows)), "batch_advantage")
	}
}

// BenchmarkComplexityScaling regenerates the §4.4 batch-vs-full scaling
// measurement. Reported metric: speed-up at the largest circuit size.
func BenchmarkComplexityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := repro.Complexity(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].SpeedUp, "speedup_x")
	}
}
