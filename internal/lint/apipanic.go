package lint

import (
	"go/ast"
	"strings"
)

// APIPanic forbids panic calls in the public API surface: packages that
// are neither main nor under internal/. The facade (package batchals)
// returns errors; panics are an internal-invariant mechanism only
// (bitvec length guards, circuit editing preconditions), and those all
// live under internal/ where the analyzer does not apply. Test files are
// exempt.
var APIPanic = &Analyzer{
	Name: "apipanic",
	Doc:  "public (non-internal) packages must return errors, not panic",
	Run:  runAPIPanic,
}

func runAPIPanic(p *Pass) {
	if p.PkgName == "main" || strings.HasSuffix(p.PkgName, "_test") {
		return
	}
	if strings.HasPrefix(p.PkgPath, "internal/") || strings.Contains(p.PkgPath, "/internal/") ||
		strings.HasSuffix(p.PkgPath, "/internal") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				p.Reportf(call.Pos(),
					"panic in public package %s; public API paths must return errors", p.PkgPath)
			}
			return true
		})
	}
}
