package bench

import (
	"fmt"
	"math/rand"

	"batchals/internal/cell"
	"batchals/internal/circuit"
)

// iscasSpec describes a synthetic stand-in for an ISCAS85 circuit: the
// original's I/O counts and an area target (in default-library units)
// calibrated to the "original area" column of Table 3 of the paper.
type iscasSpec struct {
	name       string
	in, out    int
	targetArea float64
	seed       int64
}

var iscasSpecs = []iscasSpec{
	{"c880", 60, 26, 599, 880},
	{"c1908", 33, 25, 1013, 1908},
	{"c2670", 233, 140, 1434, 2670},
	{"c3540", 50, 22, 1615, 3540},
	{"c5315", 178, 123, 2432, 5315},
	{"c7552", 207, 108, 2759, 7552},
}

// Synthetic generates a seeded random multi-level network with the given
// I/O counts, growing gates until the default-library area reaches
// targetArea. The generator biases fanin selection towards recent nodes
// (depth) while keeping a share of long edges (reconvergent fanout), the
// structural property that stresses the change propagation matrix.
func Synthetic(name string, numIn, numOut int, targetArea float64, seed int64) *circuit.Network {
	if numIn < 2 || numOut < 1 {
		panic(fmt.Sprintf("bench: Synthetic needs >=2 inputs and >=1 output, got %d/%d", numIn, numOut))
	}
	r := rand.New(rand.NewSource(seed))
	lib := cell.Default()
	n := circuit.New(name)
	pool := make([]circuit.NodeID, 0, numIn+int(targetArea))
	for i := 0; i < numIn; i++ {
		pool = append(pool, n.AddInput(fmt.Sprintf("i%d", i)))
	}
	kinds := []circuit.Kind{
		circuit.KindNand, circuit.KindNand, circuit.KindNor, circuit.KindNor,
		circuit.KindAnd, circuit.KindOr, circuit.KindXor, circuit.KindNot,
	}
	area := 0.0
	pick := func() circuit.NodeID {
		// 70%: recent window (locality / depth); 30%: anywhere (long,
		// reconvergence-inducing edges).
		if len(pool) > 16 && r.Intn(10) < 7 {
			return pool[len(pool)-1-r.Intn(16)]
		}
		return pool[r.Intn(len(pool))]
	}
	for area < targetArea {
		k := kinds[r.Intn(len(kinds))]
		var id circuit.NodeID
		if k == circuit.KindNot {
			id = n.AddGate(k, pick())
		} else {
			f1 := pick()
			f2 := pick()
			for f2 == f1 {
				f2 = pool[r.Intn(len(pool))]
			}
			if r.Intn(8) == 0 { // occasional 3-input gate
				f3 := pool[r.Intn(len(pool))]
				if f3 != f1 && f3 != f2 && k != circuit.KindXor {
					id = n.AddGate(k, f1, f2, f3)
				} else {
					id = n.AddGate(k, f1, f2)
				}
			} else {
				id = n.AddGate(k, f1, f2)
			}
		}
		pool = append(pool, id)
		area += lib.GateArea(k, len(n.Fanins(id)))
	}
	// Guarantee every input feeds something: sweep-proof the unused ones.
	for _, in := range n.Inputs() {
		if len(n.Fanouts(in)) == 0 {
			other := pool[r.Intn(len(pool))]
			for other == in {
				other = pool[r.Intn(len(pool))]
			}
			pool = append(pool, n.AddGate(circuit.KindAnd, in, other))
		}
	}
	// Outputs: distribute every fanout-free gate across numOut collector
	// trees so no generated logic is dead. Each tree combines its roots
	// with random 2-input gates, adding realistic output-cone overlap.
	var roots []circuit.NodeID
	for _, id := range pool {
		if n.Kind(id).IsGate() && len(n.Fanouts(id)) == 0 {
			roots = append(roots, id)
		}
	}
	buckets := make([][]circuit.NodeID, numOut)
	for i, root := range roots {
		buckets[i%numOut] = append(buckets[i%numOut], root)
	}
	combine := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindXor, circuit.KindNand, circuit.KindNor}
	for o := 0; o < numOut; o++ {
		level := buckets[o]
		if len(level) == 0 {
			// Rare: fewer roots than outputs; tap an internal gate.
			level = []circuit.NodeID{pool[len(pool)-1-r.Intn(len(pool)/2)]}
		}
		for len(level) > 1 {
			var next []circuit.NodeID
			for i := 0; i+1 < len(level); i += 2 {
				k := combine[r.Intn(len(combine))]
				next = append(next, n.AddGate(k, level[i], level[i+1]))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		n.AddOutput(fmt.Sprintf("o%d", o), level[0])
	}
	n.Sweep()
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("bench: synthetic %s invalid: %v", name, err))
	}
	return n
}

// ISCASLike returns the synthetic stand-in for one of the six ISCAS85
// circuits used in the paper: c880, c1908, c2670, c3540, c5315, c7552.
func ISCASLike(name string) (*circuit.Network, error) {
	for _, s := range iscasSpecs {
		if s.name == name {
			// Grow past the target slightly: sweeping dead logic removes
			// some area, so overshoot then accept.
			return Synthetic(s.name, s.in, s.out, s.targetArea, s.seed), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown ISCAS-like circuit %q", name)
}
