package bdd

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

func TestBasicOperators(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		name string
		f    Ref
		tt   [4]bool // rows 00,10,01,11 in (a,b) order
	}{
		{"and", m.And(a, b), [4]bool{false, false, false, true}},
		{"or", m.Or(a, b), [4]bool{false, true, true, true}},
		{"xor", m.Xor(a, b), [4]bool{false, true, true, false}},
		{"nota", m.Not(a), [4]bool{true, false, true, false}},
		{"implies", m.Implies(a, b), [4]bool{true, false, true, true}},
	}
	for _, c := range cases {
		for i := 0; i < 4; i++ {
			asg := []bool{i&1 == 1, i&2 == 2}
			if got := m.Eval(c.f, asg); got != c.tt[i] {
				t.Errorf("%s(%v) = %v want %v", c.name, asg, got, c.tt[i])
			}
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a and b) or c built two different ways must be the same node.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(m.And(a, b)), m.Not(c)))
	if f1 != f2 {
		t.Fatal("equivalent functions got different refs (canonicity broken)")
	}
	// Tautology and contradiction collapse to terminals.
	if m.Or(a, m.Not(a)) != One {
		t.Fatal("a or !a != One")
	}
	if m.And(a, m.Not(a)) != Zero {
		t.Fatal("a and !a != Zero")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	if got := m.SatCount(m.And(a, b)); got != 2 { // c free
		t.Fatalf("satcount(ab)=%v want 2", got)
	}
	if got := m.SatCount(m.Or(m.Or(a, b), c)); got != 7 {
		t.Fatalf("satcount(a+b+c)=%v want 7", got)
	}
	if m.SatCount(Zero) != 0 || m.SatCount(One) != 8 {
		t.Fatal("terminal satcounts wrong")
	}
}

func TestProbability(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if got := m.Probability(f, []float64{0.5, 0.5}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P(ab)=%v want 0.25", got)
	}
	if got := m.Probability(f, []float64{0.3, 0.7}); math.Abs(got-0.21) > 1e-12 {
		t.Fatalf("P(ab)=%v want 0.21", got)
	}
	g := m.Xor(a, b)
	if got := m.Probability(g, []float64{0.3, 0.7}); math.Abs(got-(0.3*0.3+0.7*0.7)) > 1e-12 {
		t.Fatalf("P(a^b)=%v", got)
	}
}

func TestFromNetworkMatchesSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := randomDAG(t, r, 6, 40)
		m := New(6)
		outs, err := m.FromNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		p := sim.ExhaustivePatterns(6)
		v := sim.Simulate(n, p)
		asg := make([]bool, 6)
		for i := 0; i < p.NumPatterns(); i++ {
			for k := 0; k < 6; k++ {
				asg[k] = p.Bit(i, k)
			}
			for o, out := range n.Outputs() {
				if m.Eval(outs[o], asg) != v.Bit(out.Node, i) {
					t.Fatalf("trial %d output %d pattern %d mismatch", trial, o, i)
				}
			}
		}
	}
}

func randomDAG(t testing.TB, r *rand.Rand, nin, ngates int) *circuit.Network {
	t.Helper()
	n := circuit.New("dag")
	pool := make([]circuit.NodeID, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(""))
	}
	kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
		circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot, circuit.KindMux}
	for i := 0; i < ngates; i++ {
		k := kinds[r.Intn(len(kinds))]
		var id circuit.NodeID
		switch k {
		case circuit.KindNot:
			id = n.AddGate(k, pool[r.Intn(len(pool))])
		case circuit.KindMux:
			id = n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])
		default:
			id = n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])
		}
		pool = append(pool, id)
	}
	for _, id := range pool {
		if len(n.Fanouts(id)) == 0 {
			n.AddOutput("", id)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExactErrorRateAgainstEnumeration(t *testing.T) {
	// Golden: 4-bit RCA. Approx: 4-bit RCA with the carry chain cut at
	// bit 2 (replace one gate output by constant 0).
	golden := bench.RCA(4)
	approx := golden.Clone()
	// Break the first OR gate found (a carry gate).
	var target circuit.NodeID = circuit.InvalidNode
	for _, id := range approx.LiveNodes() {
		if approx.Kind(id) == circuit.KindOr {
			target = id
			break
		}
	}
	if target == circuit.InvalidNode {
		t.Fatal("no OR gate in RCA4")
	}
	c0 := approx.AddConst(false)
	approx.ReplaceNode(target, c0)
	approx.SweepFrom(target)

	got, err := ExactErrorRate(golden, approx)
	if err != nil {
		t.Fatal(err)
	}
	want := emetric.MeasureExact(golden, approx).ErrorRate
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BDD ER %v != enumeration ER %v", got, want)
	}
	if got == 0 {
		t.Fatal("cut carry chain should produce nonzero error")
	}
}

func TestExactErrorRateIdentical(t *testing.T) {
	g := bench.MUL(4)
	got, err := ExactErrorRate(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("identical circuits ER %v", got)
	}
}

func TestExactErrorRateRandomizedVsEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		golden := randomDAG(t, r, 7, 35)
		approx := golden.Clone()
		// Corrupt: replace a random gate with a constant.
		var gates []circuit.NodeID
		for _, id := range approx.LiveNodes() {
			if approx.Kind(id).IsGate() {
				gates = append(gates, id)
			}
		}
		tgt := gates[r.Intn(len(gates))]
		c := approx.AddConst(r.Intn(2) == 1)
		approx.ReplaceNode(tgt, c)
		approx.SweepFrom(tgt)

		got, err := ExactErrorRate(golden, approx)
		if err != nil {
			t.Fatal(err)
		}
		want := emetric.MeasureExact(golden, approx).ErrorRate
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: BDD %v vs enumeration %v", trial, got, want)
		}
	}
}

func TestExactSignalProbabilities(t *testing.T) {
	n := circuit.New("p")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(circuit.KindAnd, a, b)
	o := n.AddGate(circuit.KindOr, g, a) // == a (absorption)
	n.AddOutput("o", o)
	probs, err := ExactSignalProbabilities(n, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[g]-0.25) > 1e-12 || math.Abs(probs[o]-0.5) > 1e-12 {
		t.Fatalf("probs wrong: g=%v o=%v", probs[g], probs[o])
	}
}

func TestErrorsOnShapeMismatch(t *testing.T) {
	if _, err := ExactErrorRate(bench.RCA(4), bench.RCA(5)); err == nil {
		t.Fatal("expected input-count mismatch error")
	}
}

func TestMismatchedManagerVars(t *testing.T) {
	m := New(3)
	if _, err := m.FromNetwork(bench.RCA(4)); err == nil {
		t.Fatal("expected var-count mismatch error")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Var(5)
}
