// Package par provides the pattern-sharded parallel execution engine of
// the batch estimator: a reusable worker pool plus a word-aligned sharding
// of the M-pattern Monte Carlo axis.
//
// The design contract, relied on by internal/sim, internal/core and
// internal/sasimi, is *bit-identical determinism*: a computation sharded
// across any number of workers must produce exactly the result of the
// sequential code path. The pool guarantees the scheduling half of that
// contract — every task writes only to slots owned by its task index, and
// Do establishes a happens-before edge between all task bodies and its
// return — while Shards guarantees the data half: shards are contiguous,
// word-aligned, non-overlapping ranges of the pattern space, so concurrent
// writers touch disjoint uint64 words and per-shard partial results can be
// combined in fixed shard order. See DESIGN.md §10 for the full
// determinism argument.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

// Always-on substrate counters on the default metrics registry, matching
// the pre-resolved-atomics idiom of internal/sim and internal/core.
var (
	statPoolRuns  = obs.Default().Counter("par_pool_runs_total")
	statPoolTasks = obs.Default().Counter("par_pool_tasks_total")
)

// maxWorkerCounters bounds the per-worker labelled counter series so a
// pathological Workers value cannot flood the registry with label
// cardinality.
const maxWorkerCounters = 64

// Pool is a reusable fixed-size worker pool. Workers are started once at
// construction and fed task batches through Do; a pool with one worker
// (or a nil pool) degenerates to inline sequential execution, which is the
// legacy single-core path.
//
// A Pool is driven from one goroutine at a time: Do blocks until the
// whole batch completes, and concurrent Do calls are not supported.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup // worker goroutines, for Close

	// busyNS and wallNS feed the parallel_speedup gauge: busy is the sum
	// of task execution times across workers, wall the sum of Do call
	// durations. busy/wall is the realised speedup of the pooled sections.
	busyNS atomic.Int64
	wallNS atomic.Int64

	// Per-worker shard counters, pre-resolved on the default registry at
	// construction so each task completion costs two atomic adds.
	workerTasks []*obs.Counter
	workerBusy  []*obs.Counter

	// Live telemetry, per pool (the registry counters above are shared by
	// name across pools). inflight counts tasks currently executing;
	// perBusyNS / lastTaskNS feed the SampleInto utilization gauges and are
	// capped at maxWorkerCounters entries to bound label cardinality.
	inflight   atomic.Int64
	perBusyNS  []atomic.Int64
	lastTaskNS []atomic.Int64

	// Timeline recording (AttachTimeline). All fields below are touched
	// only when rec is non-nil, so the nil-recorder dispatch path keeps
	// its zero-allocation guarantee (one pointer test per dispatch/task).
	//
	// tlT0..tlShard are per-worker per-dispatch scratch: reset by the
	// dispatching goroutine before any task is enqueued, written by worker
	// w at index w while its tasks run, and read by the dispatcher after
	// the batch barrier. The channel send (reset→task) and WaitGroup.Wait
	// (task→read) edges make the plain slices race-free.
	rec         *timeline.Recorder
	pprofLabels bool
	labelName   string
	labelPhase  obs.Phase
	tlT0        []int64
	tlT1        []int64
	tlBusy      []int64
	tlTasks     []int32
	tlShard     []int32
}

type task struct {
	fn   func(worker, task int)
	idx  int
	done *sync.WaitGroup
	// labels, when non-nil, carries the dispatch's pprof label set
	// (als_dispatch / als_phase); workers apply it to their goroutine so
	// CPU profiles attribute samples to the dispatch site.
	labels context.Context
}

// NewPool returns a pool with the given number of workers. workers <= 0
// selects runtime.NumCPU(). A one-worker pool starts no goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	nc := workers
	if nc > maxWorkerCounters {
		nc = maxWorkerCounters
	}
	p.workerTasks = obs.PerWorkerCounters(obs.Default(), "par_worker_tasks_total", nc)
	p.workerBusy = obs.PerWorkerCounters(obs.Default(), "par_worker_busy_ns_total", nc)
	p.perBusyNS = make([]atomic.Int64, nc)
	p.lastTaskNS = make([]atomic.Int64, nc)
	if workers == 1 {
		return p
	}
	p.tasks = make(chan task, workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	var curLabels context.Context
	for t := range p.tasks {
		if t.labels != nil && t.labels != curLabels {
			pprof.SetGoroutineLabels(t.labels)
			curLabels = t.labels
		}
		p.inflight.Add(1)
		start := time.Now()
		t.fn(w, t.idx)
		p.finishTask(w, start, time.Since(start), t.idx)
		t.done.Done()
	}
}

func (p *Pool) finishTask(w int, start time.Time, d time.Duration, idx int) {
	p.busyNS.Add(int64(d))
	p.inflight.Add(-1)
	statPoolTasks.Inc()
	if w < len(p.workerTasks) {
		p.workerTasks[w].Inc()
		p.workerBusy[w].Add(int64(d))
	}
	if w < len(p.perBusyNS) {
		p.perBusyNS[w].Add(int64(d))
		p.lastTaskNS[w].Store(int64(d))
	}
	if p.rec != nil && w < len(p.tlTasks) {
		// Fold this task into worker w's per-dispatch window. Writing
		// before done.Done() keeps the dispatcher's post-Wait read ordered
		// after every task's update.
		t0 := p.rec.Rel(start)
		if p.tlTasks[w] == 0 {
			p.tlT0[w] = t0
			p.tlShard[w] = int32(idx)
		} else {
			p.tlShard[w] = -1
		}
		p.tlT1[w] = t0 + int64(d)
		p.tlBusy[w] += int64(d)
		p.tlTasks[w]++
	}
}

// AttachTimeline wires a span recorder into the pool: every subsequent
// Do/DoCtx dispatch emits one driver-lane dispatch span plus one span per
// participating worker (busy/idle/barrier-wait attributable per worker).
// When pprofLabels is set, worker goroutines additionally carry
// als_dispatch/als_phase pprof labels for the duration of each dispatch,
// so CPU profiles attribute samples to dispatch sites.
//
// A nil rec detaches. AttachTimeline must not be called concurrently
// with Do/DoCtx.
func (p *Pool) AttachTimeline(rec *timeline.Recorder, pprofLabels bool) {
	if p == nil {
		return
	}
	p.rec = rec
	p.pprofLabels = pprofLabels && rec != nil
	if rec != nil && p.tlT0 == nil {
		n := p.workers
		p.tlT0 = make([]int64, n)
		p.tlT1 = make([]int64, n)
		p.tlBusy = make([]int64, n)
		p.tlTasks = make([]int32, n)
		p.tlShard = make([]int32, n)
	}
	if p.labelName == "" {
		p.labelName = "par.do"
		p.labelPhase = obs.NumPhases // "unknown" until a call site labels
	}
}

// Timeline returns the attached recorder (nil when detached or p is nil).
func (p *Pool) Timeline() *timeline.Recorder {
	if p == nil {
		return nil
	}
	return p.rec
}

// Label names subsequent dispatches for the timeline (sticky until the
// next call). Call sites label just before their Do/DoCtx; the no-op on
// an unattached pool keeps the hot path free of recording cost.
func (p *Pool) Label(name string, phase obs.Phase) {
	if p == nil || p.rec == nil {
		return
	}
	p.labelName = name
	p.labelPhase = phase
}

// beginDispatch resets the per-worker scratch and opens the dispatch
// window. The bool reports whether recording is active for this dispatch.
func (p *Pool) beginDispatch() (int64, bool) {
	if p == nil || p.rec == nil {
		return 0, false
	}
	for w := range p.tlTasks {
		p.tlTasks[w] = 0
		p.tlBusy[w] = 0
	}
	return p.rec.Now(), true
}

// endDispatch emits the dispatch span and the per-worker spans gathered
// since beginDispatch. Runs on the dispatching goroutine after the batch
// barrier, so it is the single writer of every lane it touches.
func (p *Pool) endDispatch(t0 int64, n int) {
	rec := p.rec
	t1 := rec.Now()
	iter := rec.Iter()
	var busy int64
	for w := range p.tlBusy {
		busy += p.tlBusy[w]
	}
	id := rec.Emit(0, timeline.Span{
		Name:   p.labelName,
		Phase:  p.labelPhase,
		Worker: -1,
		Shard:  -1,
		Iter:   iter,
		T0:     t0,
		T1:     t1,
		Busy:   busy,
		Tasks:  int32(n),
	})
	for w := range p.tlTasks {
		if p.tlTasks[w] == 0 {
			continue
		}
		rec.Emit(w+1, timeline.Span{
			Parent: id,
			Name:   p.labelName,
			Phase:  p.labelPhase,
			Worker: int32(w),
			Shard:  p.tlShard[w],
			Iter:   iter,
			T0:     p.tlT0[w],
			T1:     p.tlT1[w],
			Busy:   p.tlBusy[w],
			Tasks:  p.tlTasks[w],
		})
	}
}

// dispatchLabels builds the pprof label context for one dispatch, derived
// from base (the caller's ctx in DoCtx, Background in Do).
func (p *Pool) dispatchLabels(base context.Context) context.Context {
	if !p.pprofLabels {
		return nil
	}
	return pprof.WithLabels(base, pprof.Labels(
		"als_dispatch", p.labelName,
		"als_phase", p.labelPhase.String(),
	))
}

// Workers returns the pool's worker count; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Do runs fn(worker, i) for every i in [0, n) and returns when all calls
// have completed. Task bodies run concurrently across the pool's workers;
// all their writes happen-before Do returns. Each task must confine its
// writes to state owned by its task index — the pool makes no ordering
// promises between tasks of one batch.
//
// On a nil or single-worker pool, Do runs the tasks inline in index
// order on the calling goroutine.
func (p *Pool) Do(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers == 1 || n == 1 {
		dispT0, tl := p.beginDispatch()
		start := time.Now()
		for i := 0; i < n; i++ {
			if p != nil {
				p.inflight.Add(1)
			}
			ts := time.Now()
			fn(0, i)
			if p != nil {
				p.finishTask(0, ts, time.Since(ts), i)
			}
		}
		if p != nil {
			p.wallNS.Add(int64(time.Since(start)))
			statPoolRuns.Inc()
			if tl {
				p.endDispatch(dispT0, n)
			}
		}
		return
	}
	dispT0, tl := p.beginDispatch()
	var labels context.Context
	if tl {
		labels = p.dispatchLabels(context.Background())
	}
	start := time.Now()
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- task{fn: fn, idx: i, done: &done, labels: labels}
	}
	done.Wait()
	p.wallNS.Add(int64(time.Since(start)))
	statPoolRuns.Inc()
	if tl {
		p.endDispatch(dispT0, n)
	}
}

// DoCtx is Do with cooperative cancellation: it stops dispatching new
// tasks once ctx is cancelled and returns ctx.Err() (nil if the whole
// batch ran). Tasks already handed to workers run to completion — DoCtx
// waits for them, so the happens-before guarantee of Do still holds for
// every task that executed. The result state may therefore be partially
// written on a non-nil return; callers are expected to abandon it.
//
// On a nil or single-worker pool, cancellation is checked before each
// inline task.
func (p *Pool) DoCtx(ctx context.Context, n int, fn func(worker, task int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil || p.workers == 1 || n == 1 {
		dispT0, tl := p.beginDispatch()
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if p != nil {
					p.wallNS.Add(int64(time.Since(start)))
					statPoolRuns.Inc()
					if tl {
						p.endDispatch(dispT0, i)
					}
				}
				return err
			}
			if p != nil {
				p.inflight.Add(1)
			}
			ts := time.Now()
			fn(0, i)
			if p != nil {
				p.finishTask(0, ts, time.Since(ts), i)
			}
		}
		if p != nil {
			p.wallNS.Add(int64(time.Since(start)))
			statPoolRuns.Inc()
			if tl {
				p.endDispatch(dispT0, n)
			}
		}
		return nil
	}
	dispT0, tl := p.beginDispatch()
	var labels context.Context
	if tl {
		labels = p.dispatchLabels(ctx)
	}
	start := time.Now()
	var done sync.WaitGroup
	var err error
	enqueued := 0
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		done.Add(1)
		select {
		case p.tasks <- task{fn: fn, idx: i, done: &done, labels: labels}:
			enqueued++
		case <-ctx.Done():
			done.Done() // the task was never enqueued
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	done.Wait()
	p.wallNS.Add(int64(time.Since(start)))
	statPoolRuns.Inc()
	if tl {
		p.endDispatch(dispT0, enqueued)
	}
	return err
}

// BusyNS returns the accumulated task execution time across all workers.
func (p *Pool) BusyNS() int64 {
	if p == nil {
		return 0
	}
	return p.busyNS.Load()
}

// Speedup returns the realised parallel speedup of the pooled sections:
// total task execution time divided by total Do wall time. It is 1.0 for
// a sequential pool and approaches Workers() under perfect scaling.
func (p *Pool) Speedup() float64 {
	if p == nil {
		return 1
	}
	wall := p.wallNS.Load()
	if wall <= 0 {
		return 1
	}
	return float64(p.busyNS.Load()) / float64(wall)
}

// Close shuts the worker goroutines down. The pool must be idle (no Do in
// flight). Close is idempotent on a single-worker pool (which has no
// goroutines); a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.wg.Wait()
	p.tasks = nil
}

// String describes the pool for diagnostics.
func (p *Pool) String() string {
	return fmt.Sprintf("par.Pool{workers=%d}", p.Workers())
}
