// Command alsd is the ALS service daemon: it executes a bounded queue of
// synthesis jobs while serving live telemetry over HTTP — Prometheus
// /metrics (every run labelled run="name", plus service-level latency
// histograms and queue gauges), /metrics.json, per-job lifecycle traces
// at /jobs/{name}, per-run SSE event streams at /events, flight-recorder
// dumps at /flight, live timelines at /timeline, health and readiness
// probes, and the net/http/pprof surface. Requests are access-logged as
// JSONL when -access-log is set.
//
// Usage:
//
//	alsd -addr :8415
//	alsd -addr 127.0.0.1:0 -repeat 3 -demo mul4 -queue-max 16 -access-log /tmp/alsd.log
//
// The daemon prints "alsd: listening on ADDR" once the listener is bound
// (ADDR carries the real port when :0 requested an ephemeral one — the CI
// smoke tests parse it). Jobs are submitted as JSON:
//
//	curl -X POST localhost:8415/jobs -d '{"circuit":"c880","threshold":0.01}'
//
// and run sequentially; each job gets its own metrics registry, stream
// tracer, flight recorder and lifecycle trace, registered under its run
// name before the 202 returns. Invalid specs are rejected at enqueue time
// with a typed 400 body; a full queue sheds with 429 + Retry-After. On
// SIGTERM the daemon drains: the running job finishes, queued jobs are
// marked canceled, and access logs are flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"batchals"
	"batchals/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8415", "listen address (host:port; :0 picks an ephemeral port)")
		repeat      = flag.Int("repeat", 0, "enqueue this many demo jobs at startup")
		demo        = flag.String("demo", "mul4", "demo job circuit for -repeat")
		demoThr     = flag.Float64("demo-threshold", 0.05, "demo job error threshold")
		demoM       = flag.Int("demo-m", 2000, "demo job Monte Carlo pattern count")
		queueMax    = flag.Int("queue-max", 64, "job queue bound; submissions beyond it are shed with 429")
		runsMax     = flag.Int("runs-max", 512, "retain at most this many finished runs (oldest evicted)")
		accessLog   = flag.String("access-log", "", "write JSONL access logs to this file (\"-\" for stdout)")
		drainWindow = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for the running job before canceling it")
	)
	flag.Parse()

	var logger *serve.AccessLogger
	switch *accessLog {
	case "":
	case "-":
		logger = serve.NewAccessLogger(os.Stdout)
	default:
		f, err := os.Create(*accessLog)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		logger = serve.NewAccessLogger(f)
	}

	d := serve.NewDaemon(serve.DaemonConfig{
		QueueMax:  *queueMax,
		RunsMax:   *runsMax,
		AccessLog: logger,
		Runner:    runJob,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("alsd: listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: d.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()

	d.Start()
	for i := 0; i < *repeat; i++ {
		spec := serve.JobSpec{
			Name:      fmt.Sprintf("demo-%d", i+1),
			Circuit:   *demo,
			Threshold: *demoThr,
			Patterns:  *demoM,
			Seed:      int64(i),
			Timeline:  true, // demo jobs carry the service-lane timeline
		}
		if _, err := d.Enqueue(spec); err != nil {
			fmt.Fprintf(os.Stderr, "alsd: demo job %d: %v\n", i+1, err)
		}
	}
	d.Server().SetReady(true)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("alsd: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	if err := d.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "alsd: drain: %v\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	_ = httpSrv.Shutdown(httpCtx)
}

// runJob executes one admitted job against its run sinks and prints the
// result line the smoke scripts wait for.
func runJob(ctx context.Context, spec serve.JobSpec, run *serve.Run) error {
	golden, err := loadCircuit(spec.Circuit)
	if err != nil {
		return err
	}
	opts := batchals.Options{
		Threshold:     spec.Threshold,
		NumPatterns:   spec.Patterns,
		Seed:          spec.Seed,
		Workers:       spec.Workers,
		VerifyTopK:    spec.VerifyTopK,
		MaxIterations: spec.MaxIterations,
		Metrics:       run.Registry,
		Tracer:        run.Tracer(),
		Timeline:      run.Timeline(),
	}
	if p := spec.Partition; p != nil {
		opts.Partition = &batchals.PartitionOptions{
			TargetCells:  p.Cells,
			MaxCut:       p.MaxCut,
			BudgetPolicy: strings.ToLower(p.Policy),
			MaxRounds:    p.Rounds,
		}
	}
	switch strings.ToLower(spec.Metric) {
	case "", "er":
		opts.Metric = batchals.ErrorRate
	case "aem":
		opts.Metric = batchals.AvgErrorMagnitude
	default:
		return fmt.Errorf("unknown metric %q", spec.Metric)
	}
	switch strings.ToLower(spec.Estimator) {
	case "", "batch":
		opts.Estimator = batchals.Batch
	case "full":
		opts.Estimator = batchals.Full
	case "local":
		opts.Estimator = batchals.Local
	default:
		return fmt.Errorf("unknown estimator %q", spec.Estimator)
	}
	start := time.Now()
	res, err := batchals.ApproximateContext(ctx, golden, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alsd: run %s failed: %v\n", spec.Name, err)
		return err
	}
	fmt.Printf("alsd: run %s done in %s: area %.0f -> %.0f (ratio %.3f), %d substitutions, error %.5f\n",
		spec.Name, time.Since(start).Round(time.Millisecond),
		res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
	return nil
}

func loadCircuit(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsd:", err)
	os.Exit(1)
}
