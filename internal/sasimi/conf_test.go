package sasimi

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/sim"
)

// captureTracer records every accept event for assertion.
type captureTracer struct {
	accepts []obs.AcceptInfo
}

func (c *captureTracer) OnPhase(obs.PhaseInfo)         {}
func (c *captureTracer) OnIteration(obs.IterationInfo) {}
func (c *captureTracer) OnCandidate(obs.CandidateInfo) {}
func (c *captureTracer) OnAccept(i obs.AcceptInfo)     { c.accepts = append(c.accepts, i) }

// TestAcceptEventsCarryConfidence runs a metered ER flow and checks every
// accept event carries a Wilson interval bracketing the measured error, a
// finite Hoeffding half-width, and an adequacy verdict consistent with the
// threshold; the RunStats gauge set must mirror the last accept.
func TestAcceptEventsCarryConfidence(t *testing.T) {
	const m = 2000
	tr := &captureTracer{}
	reg := obs.NewRegistry()
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: m,
			Seed:        7,
		},
		Estimator: EstimatorBatch,
		Tracer:    tr,
		Metrics:   reg,
	})
	if res.NumIterations == 0 || len(tr.accepts) != res.NumIterations {
		t.Fatalf("captured %d accepts, want %d", len(tr.accepts), res.NumIterations)
	}
	for _, a := range tr.accepts {
		if a.M != m {
			t.Fatalf("accept M = %d, want %d", a.M, m)
		}
		if !a.ErrCI.Valid() {
			t.Fatalf("accept iter %d: invalid ErrCI %+v", a.Iter, a.ErrCI)
		}
		if a.Actual < a.ErrCI.Lo-1e-12 || a.Actual > a.ErrCI.Hi+1e-12 {
			t.Fatalf("iter %d: Wilson %+v excludes measured error %v", a.Iter, a.ErrCI, a.Actual)
		}
		if a.DeltaHW <= 0 || a.DeltaHW > 1 {
			t.Fatalf("iter %d: implausible ΔER half-width %v for M=%d", a.Iter, a.DeltaHW, m)
		}
		if want := !a.ErrCI.Straddles(0.05); a.CIAdequate != want {
			t.Fatalf("iter %d: CIAdequate=%v but interval %+v vs threshold says %v",
				a.Iter, a.CIAdequate, a.ErrCI, want)
		}
	}

	last := tr.accepts[len(tr.accepts)-1]
	snap := reg.Snapshot()
	if got := snap.Gauges["sasimi_mc_samples"]; got != m {
		t.Fatalf("sasimi_mc_samples = %v, want %d", got, m)
	}
	if snap.Gauges["sasimi_er_ci_lo"] != last.ErrCI.Lo || snap.Gauges["sasimi_er_ci_hi"] != last.ErrCI.Hi {
		t.Fatalf("gauge interval [%v,%v] != last accept %+v",
			snap.Gauges["sasimi_er_ci_lo"], snap.Gauges["sasimi_er_ci_hi"], last.ErrCI)
	}
	if got, want := snap.Gauges["sasimi_er_ci_margin"], 0.05-last.ErrCI.Hi; got != want {
		t.Fatalf("sasimi_er_ci_margin = %v, want %v", got, want)
	}
	var inadequate int64
	for _, a := range tr.accepts {
		if !a.CIAdequate {
			inadequate++
		}
	}
	if got := snap.Counters["sasimi_ci_inadequate_total"]; got != inadequate {
		t.Fatalf("sasimi_ci_inadequate_total = %d, want %d", got, inadequate)
	}
}

// TestAEMAcceptsCarryNoCI pins the gate: AEM has no Binomial error count,
// so accept events must leave the confidence fields zero.
func TestAEMAcceptsCarryNoCI(t *testing.T) {
	tr := &captureTracer{}
	res := runOn(t, "rca8", Config{
		Budget: flow.Budget{
			Metric:      core.MetricAEM,
			Threshold:   4,
			NumPatterns: 1000,
			Seed:        3,
		},
		Estimator: EstimatorFull,
		Tracer:    tr,
	})
	if res.NumIterations == 0 {
		t.Skip("AEM flow accepted nothing on rca8 at this threshold")
	}
	for _, a := range tr.accepts {
		if a.M != 0 || a.ErrCI.Valid() || a.DeltaHW != 0 {
			t.Fatalf("AEM accept carries CI fields: %+v", a)
		}
	}
}

// TestTracerOnlyRunsComputeAdequacy pins the nil-RunStats path: with a
// tracer but no registry, accepts still carry intervals and the adequacy
// verdict is settled against the flow threshold.
func TestTracerOnlyRunsComputeAdequacy(t *testing.T) {
	tr := &captureTracer{}
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator: EstimatorBatch,
		Tracer:    tr,
	})
	if res.NumIterations == 0 {
		t.Fatal("no accepts")
	}
	for _, a := range tr.accepts {
		if !a.ErrCI.Valid() {
			t.Fatalf("tracer-only accept lost its interval: %+v", a)
		}
		if want := !a.ErrCI.Straddles(0.05); a.CIAdequate != want {
			t.Fatalf("tracer-only adequacy %v inconsistent with %+v", a.CIAdequate, a.ErrCI)
		}
	}
}

// TestIdleStreamSubscriberScoringAllocs pins the streaming satellite of the
// zero-alloc contract: the per-candidate scoring loop with a StreamTracer
// that has a connected-but-idle SSE-style subscriber allocates exactly as
// much as the nil-tracer path (candidate events are gated off by default,
// and the publish fast path is allocation-free).
func TestIdleStreamSubscriberScoringAllocs(t *testing.T) {
	net := bench.RCA(8)
	patterns := sim.RandomPatterns(net.NumInputs(), 1024, 3)
	vals := sim.Simulate(net, patterns)
	out := sim.OutputMatrix(net, vals)
	st := emetric.NewState(out, out)
	est := newEstimator(EstimatorBatch)
	ctx := &iterContext{net: net, vals: vals, st: st, metric: core.MetricER}
	est.prepare(ctx)

	lib := cell.Default()
	cfg := Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 1}}
	cfg.fillDefaults()
	arrival := lib.NodeArrival(net)
	cands := gatherCandidates(net, vals, &cfg, arrival, lib.GateDelay(circuit.KindNot))
	if len(cands) == 0 {
		t.Fatal("no candidates on RCA8")
	}
	scratch := bitvec.New(vals.M)
	change := bitvec.New(vals.M)

	baseline := testing.AllocsPerRun(20, func() {
		scoreCandidates(est, cands, vals, 0, cfg.Threshold, scratch, change, nil, 1)
	})

	stream := obs.NewStreamTracer("allocs")
	events, cancel := stream.Subscribe(16) // connected but never read: idle client
	defer cancel()
	streamCfg := cfg
	streamCfg.Tracer = stream
	o := newRunObs(&streamCfg, net)
	withIdleSub := testing.AllocsPerRun(20, func() {
		scoreCandidates(est, cands, vals, 0, cfg.Threshold, scratch, change, o, 1)
	})
	if withIdleSub > baseline {
		t.Fatalf("idle-subscriber scoring allocates %v/run, nil-tracer baseline %v/run",
			withIdleSub, baseline)
	}
	select {
	case ev := <-events:
		t.Fatalf("candidate event %+v leaked without EmitCandidates", ev)
	default:
	}
}
