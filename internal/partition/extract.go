package partition

import (
	"fmt"

	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// Extracted is one materialised part: a standalone network over the
// part's boundary inputs, plus the recorded pattern set that drives those
// inputs with the exact values they carried in the parent golden run.
// Running a flow on (Net, Patterns) therefore optimises the part under
// the input distribution it actually sees in context, not a uniform one.
type Extracted struct {
	Part *Part
	// Net is the part golden: boundary inputs in Part.Inputs order,
	// gates cloned in parent topo order (names preserved), outputs bound
	// in Part.Outputs order.
	Net *circuit.Network
	// Patterns carries the recorded parent value vector of every boundary
	// input, row i matching Net's input i.
	Patterns *sim.Patterns
}

// Extract materialises every part of the plan. vals must be the parent
// golden simulation of the pattern set the partitioned run uses; the
// boundary rows are copied out of it, so later parts see the original
// (pre-approximation) values of their cut inputs — the partitioned
// flow's one deliberate approximation, re-checked globally after merge.
func (p *Plan) Extract(vals *sim.Values) ([]Extracted, error) {
	out := make([]Extracted, len(p.Parts))
	for k := range p.Parts {
		ex, err := p.extractOne(&p.Parts[k], vals)
		if err != nil {
			return nil, err
		}
		out[k] = ex
	}
	return out, nil
}

func (p *Plan) extractOne(part *Part, vals *sim.Values) (Extracted, error) {
	parent := p.Net
	sub := circuit.New(fmt.Sprintf("%s.p%d", parent.Name, part.Index))
	local := make(map[circuit.NodeID]circuit.NodeID, len(part.Members)+len(part.Inputs))

	pats := sim.NewPatterns(len(part.Inputs), vals.M)
	for i, id := range part.Inputs {
		local[id] = sub.AddInput(parent.NameOf(id))
		pats.InputRow(i).CopyFrom(vals.Node(id))
	}
	// Constants are replicated on demand, at most one per polarity.
	consts := [2]circuit.NodeID{circuit.InvalidNode, circuit.InvalidNode}
	mapFanin := func(f circuit.NodeID) (circuit.NodeID, bool) {
		switch parent.Kind(f) {
		case circuit.KindConst0:
			if consts[0] == circuit.InvalidNode {
				consts[0] = sub.AddConst(false)
			}
			return consts[0], true
		case circuit.KindConst1:
			if consts[1] == circuit.InvalidNode {
				consts[1] = sub.AddConst(true)
			}
			return consts[1], true
		}
		m, ok := local[f]
		return m, ok
	}

	for _, g := range part.Members {
		fanins := parent.Fanins(g)
		mapped := make([]circuit.NodeID, len(fanins))
		for i, f := range fanins {
			m, ok := mapFanin(f)
			if !ok {
				return Extracted{}, fmt.Errorf("partition: part %d gate %s consumes unmapped signal %s",
					part.Index, parent.NameOf(g), parent.NameOf(f))
			}
			mapped[i] = m
		}
		id := sub.AddGate(parent.Kind(g), mapped...)
		if name := parent.Node(g).Name; name != "" {
			sub.SetName(id, name)
		}
		local[g] = id
	}
	for _, o := range part.Outputs {
		sub.AddOutput(parent.NameOf(o), local[o])
	}
	if err := sub.Validate(); err != nil {
		return Extracted{}, fmt.Errorf("partition: extracted part %d invalid: %w", part.Index, err)
	}
	return Extracted{Part: part, Net: sub, Patterns: pats}, nil
}
