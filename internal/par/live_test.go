package par

import (
	"sync/atomic"
	"testing"
	"time"

	"batchals/internal/obs"
)

// TestSampleIntoPublishesGauges runs real work through a pool under an
// active sampler and checks the gauge set lands on the registry with sane
// values once the sampler stops (stop writes a final sample).
func TestSampleIntoPublishesGauges(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	reg := obs.NewRegistry()
	stop := p.SampleInto(reg, time.Millisecond)

	var spins atomic.Int64
	for round := 0; round < 5; round++ {
		p.Do(64, func(worker, task int) {
			until := time.Now().Add(200 * time.Microsecond)
			for time.Now().Before(until) {
				spins.Add(1)
			}
		})
	}
	stop()
	stop() // idempotent

	s := reg.Snapshot()
	if got := s.Gauges["par_pool_workers"]; got != 4 {
		t.Fatalf("par_pool_workers = %v, want 4", got)
	}
	if got := s.Gauges["par_pool_inflight"]; got != 0 {
		t.Fatalf("par_pool_inflight = %v after Do returned, want 0", got)
	}
	if got := s.Gauges["par_pool_live_speedup"]; got <= 0 {
		t.Fatalf("par_pool_live_speedup = %v, want > 0", got)
	}
	for _, name := range []string{
		`par_worker_utilization{worker="0"}`,
		`par_worker_last_task_ns{worker="0"}`,
	} {
		if _, ok := s.Gauges[name]; !ok {
			t.Fatalf("gauge %q missing from snapshot (have %d gauges)", name, len(s.Gauges))
		}
	}
	// Every worker of a 4-worker pool that chewed through 5×64 spin tasks
	// must have recorded at least one task duration.
	var touched int
	for w := 0; w < 4; w++ {
		if reg.Gauge(`par_worker_last_task_ns{worker="`+string(rune('0'+w))+`"}`).Value() > 0 {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("no worker recorded a last-task duration")
	}
	if spins.Load() == 0 {
		t.Fatal("workload did not run")
	}
}

// TestSampleIntoNilSafety pins that nil pools and registries yield no-op
// stops instead of panics.
func TestSampleIntoNilSafety(t *testing.T) {
	var p *Pool
	stop := p.SampleInto(obs.NewRegistry(), time.Millisecond)
	stop()
	p2 := NewPool(1)
	stop = p2.SampleInto(nil, time.Millisecond)
	stop()
	if p.Inflight() != 0 || p2.Inflight() != 0 {
		t.Fatal("inflight nonzero on idle pools")
	}
}

// TestInflightReturnsToZeroParallel hammers Do from sequential rounds while
// a sampler reads the live atomics; -race must stay silent and inflight
// must be zero between batches.
func TestInflightReturnsToZeroParallel(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	reg := obs.NewRegistry()
	stop := p.SampleInto(reg, 500*time.Microsecond)
	defer stop()
	for round := 0; round < 20; round++ {
		p.Do(9, func(worker, task int) { time.Sleep(50 * time.Microsecond) })
		if got := p.Inflight(); got != 0 {
			t.Fatalf("round %d: inflight %d after Do returned", round, got)
		}
	}
}
