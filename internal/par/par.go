// Package par provides the pattern-sharded parallel execution engine of
// the batch estimator: a reusable worker pool plus a word-aligned sharding
// of the M-pattern Monte Carlo axis.
//
// The design contract, relied on by internal/sim, internal/core and
// internal/sasimi, is *bit-identical determinism*: a computation sharded
// across any number of workers must produce exactly the result of the
// sequential code path. The pool guarantees the scheduling half of that
// contract — every task writes only to slots owned by its task index, and
// Do establishes a happens-before edge between all task bodies and its
// return — while Shards guarantees the data half: shards are contiguous,
// word-aligned, non-overlapping ranges of the pattern space, so concurrent
// writers touch disjoint uint64 words and per-shard partial results can be
// combined in fixed shard order. See DESIGN.md §10 for the full
// determinism argument.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batchals/internal/obs"
)

// Always-on substrate counters on the default metrics registry, matching
// the pre-resolved-atomics idiom of internal/sim and internal/core.
var (
	statPoolRuns  = obs.Default().Counter("par_pool_runs_total")
	statPoolTasks = obs.Default().Counter("par_pool_tasks_total")
)

// maxWorkerCounters bounds the per-worker labelled counter series so a
// pathological Workers value cannot flood the registry with label
// cardinality.
const maxWorkerCounters = 64

// Pool is a reusable fixed-size worker pool. Workers are started once at
// construction and fed task batches through Do; a pool with one worker
// (or a nil pool) degenerates to inline sequential execution, which is the
// legacy single-core path.
//
// A Pool is driven from one goroutine at a time: Do blocks until the
// whole batch completes, and concurrent Do calls are not supported.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup // worker goroutines, for Close

	// busyNS and wallNS feed the parallel_speedup gauge: busy is the sum
	// of task execution times across workers, wall the sum of Do call
	// durations. busy/wall is the realised speedup of the pooled sections.
	busyNS atomic.Int64
	wallNS atomic.Int64

	// Per-worker shard counters, pre-resolved on the default registry at
	// construction so each task completion costs two atomic adds.
	workerTasks []*obs.Counter
	workerBusy  []*obs.Counter

	// Live telemetry, per pool (the registry counters above are shared by
	// name across pools). inflight counts tasks currently executing;
	// perBusyNS / lastTaskNS feed the SampleInto utilization gauges and are
	// capped at maxWorkerCounters entries to bound label cardinality.
	inflight   atomic.Int64
	perBusyNS  []atomic.Int64
	lastTaskNS []atomic.Int64
}

type task struct {
	fn   func(worker, task int)
	idx  int
	done *sync.WaitGroup
}

// NewPool returns a pool with the given number of workers. workers <= 0
// selects runtime.NumCPU(). A one-worker pool starts no goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{workers: workers}
	nc := workers
	if nc > maxWorkerCounters {
		nc = maxWorkerCounters
	}
	p.workerTasks = obs.PerWorkerCounters(obs.Default(), "par_worker_tasks_total", nc)
	p.workerBusy = obs.PerWorkerCounters(obs.Default(), "par_worker_busy_ns_total", nc)
	p.perBusyNS = make([]atomic.Int64, nc)
	p.lastTaskNS = make([]atomic.Int64, nc)
	if workers == 1 {
		return p
	}
	p.tasks = make(chan task, workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	for t := range p.tasks {
		p.inflight.Add(1)
		start := time.Now()
		t.fn(w, t.idx)
		p.finishTask(w, time.Since(start))
		t.done.Done()
	}
}

func (p *Pool) finishTask(w int, d time.Duration) {
	p.busyNS.Add(int64(d))
	p.inflight.Add(-1)
	statPoolTasks.Inc()
	if w < len(p.workerTasks) {
		p.workerTasks[w].Inc()
		p.workerBusy[w].Add(int64(d))
	}
	if w < len(p.perBusyNS) {
		p.perBusyNS[w].Add(int64(d))
		p.lastTaskNS[w].Store(int64(d))
	}
}

// Workers returns the pool's worker count; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Do runs fn(worker, i) for every i in [0, n) and returns when all calls
// have completed. Task bodies run concurrently across the pool's workers;
// all their writes happen-before Do returns. Each task must confine its
// writes to state owned by its task index — the pool makes no ordering
// promises between tasks of one batch.
//
// On a nil or single-worker pool, Do runs the tasks inline in index
// order on the calling goroutine.
func (p *Pool) Do(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers == 1 || n == 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if p != nil {
				p.inflight.Add(1)
			}
			ts := time.Now()
			fn(0, i)
			if p != nil {
				p.finishTask(0, time.Since(ts))
			}
		}
		if p != nil {
			p.wallNS.Add(int64(time.Since(start)))
			statPoolRuns.Inc()
		}
		return
	}
	start := time.Now()
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- task{fn: fn, idx: i, done: &done}
	}
	done.Wait()
	p.wallNS.Add(int64(time.Since(start)))
	statPoolRuns.Inc()
}

// DoCtx is Do with cooperative cancellation: it stops dispatching new
// tasks once ctx is cancelled and returns ctx.Err() (nil if the whole
// batch ran). Tasks already handed to workers run to completion — DoCtx
// waits for them, so the happens-before guarantee of Do still holds for
// every task that executed. The result state may therefore be partially
// written on a non-nil return; callers are expected to abandon it.
//
// On a nil or single-worker pool, cancellation is checked before each
// inline task.
func (p *Pool) DoCtx(ctx context.Context, n int, fn func(worker, task int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil || p.workers == 1 || n == 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if p != nil {
					p.wallNS.Add(int64(time.Since(start)))
					statPoolRuns.Inc()
				}
				return err
			}
			if p != nil {
				p.inflight.Add(1)
			}
			ts := time.Now()
			fn(0, i)
			if p != nil {
				p.finishTask(0, time.Since(ts))
			}
		}
		if p != nil {
			p.wallNS.Add(int64(time.Since(start)))
			statPoolRuns.Inc()
		}
		return nil
	}
	start := time.Now()
	var done sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		done.Add(1)
		select {
		case p.tasks <- task{fn: fn, idx: i, done: &done}:
		case <-ctx.Done():
			done.Done() // the task was never enqueued
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	done.Wait()
	p.wallNS.Add(int64(time.Since(start)))
	statPoolRuns.Inc()
	return err
}

// BusyNS returns the accumulated task execution time across all workers.
func (p *Pool) BusyNS() int64 {
	if p == nil {
		return 0
	}
	return p.busyNS.Load()
}

// Speedup returns the realised parallel speedup of the pooled sections:
// total task execution time divided by total Do wall time. It is 1.0 for
// a sequential pool and approaches Workers() under perfect scaling.
func (p *Pool) Speedup() float64 {
	if p == nil {
		return 1
	}
	wall := p.wallNS.Load()
	if wall <= 0 {
		return 1
	}
	return float64(p.busyNS.Load()) / float64(wall)
}

// Close shuts the worker goroutines down. The pool must be idle (no Do in
// flight). Close is idempotent on a single-worker pool (which has no
// goroutines); a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.wg.Wait()
	p.tasks = nil
}

// String describes the pool for diagnostics.
func (p *Pool) String() string {
	return fmt.Sprintf("par.Pool{workers=%d}", p.Workers())
}
