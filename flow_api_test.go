package batchals

import (
	"context"
	"errors"
	"testing"

	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/snap"
)

// TestFlowMatchesApproximate: the builder API and the legacy wrapper are
// the same flow — bit-identical results from identical options.
func TestFlowMatchesApproximate(t *testing.T) {
	golden, err := Benchmark("mul4")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Threshold: 0.03, NumPatterns: 1500, Seed: 1}
	a, err := Approximate(golden, opts)
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlow(golden, opts)
	b, err := fl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Approx.Dump() != b.Approx.Dump() {
		t.Fatal("Flow.Run and Approximate produced different circuits")
	}
	if a.FinalError != b.FinalError || a.FinalArea != b.FinalArea {
		t.Fatalf("results differ: (%g, %g) vs (%g, %g)", a.FinalError, a.FinalArea, b.FinalError, b.FinalArea)
	}
	if fl.PartitionReport() != nil {
		t.Fatal("monolithic run should have no partition report")
	}
}

// TestPartitionedFlowDifferential is the issue's differential suite: on
// four benchmarks, the partitioned flow must stay within the global
// threshold (measured independently), produce multiple parts, and be
// bit-identical across worker counts.
func TestPartitionedFlowDifferential(t *testing.T) {
	cases := []struct {
		name      string
		cells     int
		threshold float64
	}{
		{"rca8", 15, 0.05},
		{"dec4", 12, 0.05},
		{"cmp8", 15, 0.05},
		{"c880", 100, 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			golden, err := Benchmark(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			var dumps [2]string
			for i, workers := range []int{1, 4} {
				opts := Options{
					Metric:      ErrorRate,
					Threshold:   tc.threshold,
					NumPatterns: 2000,
					Seed:        3,
					Workers:     workers,
					Partition:   &PartitionOptions{TargetCells: tc.cells, MaxCut: 16},
				}
				fl := NewFlow(golden, opts)
				res, err := fl.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				rep := fl.PartitionReport()
				if rep == nil {
					t.Fatal("partitioned run has no report")
				}
				if rep.NumParts < 2 {
					t.Fatalf("want >=2 parts, got %d", rep.NumParts)
				}
				if res.FinalError > tc.threshold+1e-9 {
					t.Fatalf("reported error %g over threshold %g", res.FinalError, tc.threshold)
				}
				// Independent re-measurement with a different seed: the
				// acceptance gate's number must hold up out of sample.
				meas := MeasureError(golden, res.Approx, 4000, 99).ErrorRate
				if meas > tc.threshold+0.01 {
					t.Fatalf("independently measured error %g far over threshold %g", meas, tc.threshold)
				}
				dumps[i] = res.Approx.Dump()
			}
			if dumps[0] != dumps[1] {
				t.Fatal("partitioned flow not deterministic across worker counts")
			}
		})
	}
}

// TestPartitionedFlowDegenerate: a part target larger than the circuit
// falls back to the monolithic flow but still reports a one-part plan.
func TestPartitionedFlowDegenerate(t *testing.T) {
	golden, err := Benchmark("mul4")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Threshold: 0.03, NumPatterns: 1000, Seed: 1,
		Partition: &PartitionOptions{TargetCells: 100000}}
	fl := NewFlow(golden, opts)
	res, err := fl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := fl.PartitionReport()
	if rep == nil || rep.NumParts != 1 {
		t.Fatalf("want degenerate 1-part report, got %+v", rep)
	}
	mono, err := Approximate(golden, Options{Threshold: 0.03, NumPatterns: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx.Dump() != mono.Approx.Dump() {
		t.Fatal("degenerate partitioned run differs from monolithic flow")
	}
}

// TestPartitionedFlowRejectsAEM: the partitioned path is ER-only.
func TestPartitionedFlowRejectsAEM(t *testing.T) {
	golden, err := Benchmark("rca8")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewFlow(golden, Options{
		Metric:    AvgErrorMagnitude,
		Threshold: 2,
		Partition: &PartitionOptions{TargetCells: 15},
	}).Run(context.Background())
	if err == nil {
		t.Fatal("want error for AEM + partition")
	}
}

// TestPartitionTimelineLanes: in a partitioned run the per-part flows
// show up as partition.flow spans on distinct worker lanes — the
// partition-level parallelism is visible, not inferred.
func TestPartitionTimelineLanes(t *testing.T) {
	golden, err := Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(4)
	fl := NewFlow(golden, Options{
		Metric:      ErrorRate,
		Threshold:   0.02,
		NumPatterns: 2000,
		Seed:        3,
		Workers:     4,
		Partition:   &PartitionOptions{TargetCells: 100, MaxCut: 16},
	}).WithTimeline(tl)
	if _, err := fl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fl.PartitionReport().NumParts < 2 {
		t.Fatalf("want >=2 parts, got %d", fl.PartitionReport().NumParts)
	}
	lanes := map[int32]bool{}
	driver := map[string]bool{}
	for _, sp := range tl.Snapshot() {
		switch sp.Name {
		case "partition.flow":
			lanes[sp.Worker] = true
		case "partition.plan", "partition.extract", "partition.merge", "partition.measure":
			driver[sp.Name] = true
		}
	}
	if len(lanes) < 2 {
		t.Fatalf("partition.flow spans on %d lanes, want >=2 (parts did not run in parallel)", len(lanes))
	}
	for _, name := range []string{"partition.plan", "partition.extract", "partition.merge", "partition.measure"} {
		if !driver[name] {
			t.Errorf("missing driver span %s", name)
		}
	}
}

// TestBudgetSentinelParity: the three config surfaces — the root Flow
// (monolithic and partitioned), sasimi.Config and snap.Config — agree on
// the typed validation sentinels, so errors.Is works identically no
// matter which entry point rejected the budget.
func TestBudgetSentinelParity(t *testing.T) {
	golden, err := Benchmark("rca8")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	badThreshold := []struct {
		name string
		run  func() error
	}{
		{"flow-monolithic", func() error {
			_, err := NewFlow(golden, Options{Threshold: -1}).Run(ctx)
			return err
		}},
		{"flow-partitioned", func() error {
			_, err := NewFlow(golden, Options{Threshold: -1,
				Partition: &PartitionOptions{TargetCells: 15}}).Run(ctx)
			return err
		}},
		{"sasimi", func() error {
			_, err := sasimi.Run(golden, sasimi.Config{Budget: flow.Budget{Threshold: -1}})
			return err
		}},
		{"snap", func() error {
			_, err := snap.Run(golden, snap.Config{Budget: flow.Budget{Threshold: -1}})
			return err
		}},
	}
	for _, c := range badThreshold {
		err := c.run()
		if !errors.Is(err, ErrBadThreshold) {
			t.Errorf("%s: error %v is not ErrBadThreshold", c.name, err)
		}
		if errors.Is(err, ErrNoPatterns) {
			t.Errorf("%s: bad threshold also matches ErrNoPatterns", c.name)
		}
	}
	noPatterns := []struct {
		name string
		run  func() error
	}{
		{"flow-monolithic", func() error {
			_, err := NewFlow(golden, Options{Threshold: 0.01, NumPatterns: -1}).Run(ctx)
			return err
		}},
		{"flow-partitioned", func() error {
			_, err := NewFlow(golden, Options{Threshold: 0.01, NumPatterns: -1,
				Partition: &PartitionOptions{TargetCells: 15}}).Run(ctx)
			return err
		}},
		{"sasimi", func() error {
			_, err := sasimi.Run(golden, sasimi.Config{Budget: flow.Budget{Threshold: 0.01, NumPatterns: -1}})
			return err
		}},
		{"snap", func() error {
			_, err := snap.Run(golden, snap.Config{Budget: flow.Budget{Threshold: 0.01, NumPatterns: -1}})
			return err
		}},
	}
	for _, c := range noPatterns {
		err := c.run()
		if !errors.Is(err, ErrNoPatterns) {
			t.Errorf("%s: error %v is not ErrNoPatterns", c.name, err)
		}
	}
}
