// Package emetric computes statistical error measures between an original
// circuit and an approximate version of it: error rate (ER), average error
// magnitude (AEM), worst-case error magnitude and mean Hamming distance —
// on a Monte Carlo pattern set or exhaustively.
//
// It also maintains the bookkeeping matrices of Section 4.3 of the paper:
// W (which outputs are wrong per pattern), V (approximate output values)
// and U (golden output values), which the batch estimator consumes and
// which the ALS flow updates after each accepted transformation.
package emetric

import (
	"fmt"
	"math"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// State carries the golden (U), approximate (V) and wrong-output (W)
// matrices for a fixed pattern set, plus the derived any-wrong mask. Rows
// are outputs; columns are patterns.
type State struct {
	M        int
	U        *bitvec.Matrix // golden output values
	V        *bitvec.Matrix // approximate output values
	W        *bitvec.Matrix // W = U xor V
	WrongAny *bitvec.Vec    // OR over outputs of W
}

// NewState builds the state for golden and approximate output matrices.
// Both must have identical shape.
func NewState(golden, approx *bitvec.Matrix) *State {
	if golden.Rows() != approx.Rows() || golden.Bits() != approx.Bits() {
		panic(fmt.Sprintf("emetric: shape mismatch %dx%d vs %dx%d",
			golden.Rows(), golden.Bits(), approx.Rows(), approx.Bits()))
	}
	s := &State{
		M: golden.Bits(),
		U: golden,
		V: approx,
		W: bitvec.NewMatrix(golden.Rows(), golden.Bits()),
	}
	for o := 0; o < golden.Rows(); o++ {
		s.W.Row(o).Xor(golden.Row(o), approx.Row(o))
	}
	s.WrongAny = s.W.OrAll()
	return s
}

// StateFor simulates both networks on the pattern set and builds the state.
func StateFor(golden, approx *circuit.Network, p *sim.Patterns) *State {
	gv := sim.Simulate(golden, p)
	av := sim.Simulate(approx, p)
	return NewState(sim.OutputMatrix(golden, gv), sim.OutputMatrix(approx, av))
}

// RefreshRow recomputes W row o and the WrongAny mask after V row o has
// been updated in place.
func (s *State) RefreshRow(o int) {
	s.W.Row(o).Xor(s.U.Row(o), s.V.Row(o))
	s.WrongAny = s.W.OrAll()
}

// Refresh recomputes all W rows and the WrongAny mask from U and V.
func (s *State) Refresh() {
	for o := 0; o < s.W.Rows(); o++ {
		s.W.Row(o).Xor(s.U.Row(o), s.V.Row(o))
	}
	s.WrongAny = s.W.OrAll()
}

// ErrorRate returns the fraction of patterns with at least one wrong
// output.
func (s *State) ErrorRate() float64 {
	return float64(s.WrongAny.Count()) / float64(s.M)
}

// AvgErrorMagnitude returns the mean |approx - golden| over all patterns,
// interpreting the output vector as an unsigned binary number with output
// row 0 as the least significant bit. It requires at most 63 outputs.
func (s *State) AvgErrorMagnitude() float64 {
	if s.U.Rows() > 63 {
		panic("emetric: AEM requires <= 63 outputs")
	}
	var total float64
	// Only patterns with some wrong output contribute.
	s.WrongAny.ForEachSet(func(i int) bool {
		g := s.U.Column(i)
		a := s.V.Column(i)
		total += absDiffU64(a, g)
		return true
	})
	return total / float64(s.M)
}

// WorstErrorMagnitude returns the maximum |approx - golden| over the
// pattern set.
func (s *State) WorstErrorMagnitude() float64 {
	if s.U.Rows() > 63 {
		panic("emetric: error magnitude requires <= 63 outputs")
	}
	worst := 0.0
	s.WrongAny.ForEachSet(func(i int) bool {
		g := s.U.Column(i)
		a := s.V.Column(i)
		if d := absDiffU64(a, g); d > worst {
			worst = d
		}
		return true
	})
	return worst
}

// MeanHammingDistance returns the mean number of differing output bits per
// pattern.
func (s *State) MeanHammingDistance() float64 {
	total := 0
	for o := 0; o < s.W.Rows(); o++ {
		total += s.W.Row(o).Count()
	}
	return float64(total) / float64(s.M)
}

func absDiffU64(a, b uint64) float64 {
	if a >= b {
		return float64(a - b)
	}
	return float64(b - a)
}

// MaxOutputValue returns 2^O - 1, the maximum number encodable by O
// outputs; AEM thresholds are often specified as a fraction of this
// ("AEM rate" in the paper's Fig. 5).
func MaxOutputValue(numOutputs int) float64 {
	return math.Pow(2, float64(numOutputs)) - 1
}

// Report bundles all supported measures for convenience.
type Report struct {
	ErrorRate     float64
	AvgErrMag     float64
	WorstErrMag   float64
	MeanHamming   float64
	NumPatterns   int
	NumOutputs    int
	AEMRate       float64 // AvgErrMag / MaxOutputValue
	ExactMeasured bool    // true if produced by exhaustive enumeration
}

// Measure computes all metrics between golden and approx on the pattern
// set. AEM fields are NaN when the output count exceeds 63.
func Measure(golden, approx *circuit.Network, p *sim.Patterns) Report {
	s := StateFor(golden, approx, p)
	return reportFrom(s, false)
}

// MeasureExact computes all metrics by exhaustive enumeration of the input
// space. It panics if the circuit has more than 26 inputs.
func MeasureExact(golden, approx *circuit.Network) Report {
	p := sim.ExhaustivePatterns(golden.NumInputs())
	s := StateFor(golden, approx, p)
	return reportFrom(s, true)
}

func reportFrom(s *State, exact bool) Report {
	r := Report{
		ErrorRate:     s.ErrorRate(),
		MeanHamming:   s.MeanHammingDistance(),
		NumPatterns:   s.M,
		NumOutputs:    s.U.Rows(),
		ExactMeasured: exact,
	}
	if s.U.Rows() <= 63 {
		r.AvgErrMag = s.AvgErrorMagnitude()
		r.WorstErrMag = s.WorstErrorMagnitude()
		r.AEMRate = r.AvgErrMag / MaxOutputValue(s.U.Rows())
	} else {
		r.AvgErrMag = math.NaN()
		r.WorstErrMag = math.NaN()
		r.AEMRate = math.NaN()
	}
	return r
}
