// Package par stubs the shard splitter at its true import path.
package par

type Shard struct{ Index, Lo, Hi, W0, W1 int }

// Shards returns a single shard covering everything; enough for fixtures.
func Shards(m, n int) []Shard {
	w := (m + 63) / 64
	return []Shard{{Index: 0, Lo: 0, Hi: m, W0: 0, W1: w}}
}
