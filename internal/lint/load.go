package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader loads every package of a module tree with full go/types
// information, using only the standard library. Module-internal packages
// are type-checked from source in dependency order; everything else
// (standard library, and nothing else in this repo) is imported from
// compiler export data located via `go list -export` — the same data the
// go command hands a vet tool — with a source-level importer as fallback
// when the go command is unavailable.
//
// Each directory yields up to three units: the base package, the
// in-package _test.go files (type-checked against the augmented package,
// reported separately so base diagnostics are not duplicated), and the
// external _test package.
type Loader struct {
	// Root is the directory tree to load (a module root, or a fixture
	// tree laid out like one).
	Root string
	// ModulePath is the import path of Root. Empty reads Root/go.mod.
	ModulePath string
	// GoListDir is the directory `go list` runs from when resolving
	// external (standard-library) imports; it must sit inside a real Go
	// module. Empty uses the current working directory.
	GoListDir string
}

// parsedDir is the grouped syntax of one directory.
type parsedDir struct {
	path     string // import path of the base package
	name     string // base package name
	base     []*ast.File
	inTest   []*ast.File // package <name>, _test.go
	extTest  []*ast.File // package <name>_test
	extName  string
	imports  []string // module-internal imports of the base files
	allFiles []*ast.File
}

// Load parses and type-checks the tree and returns its units in a
// deterministic order (dependency order for base packages, then test
// units). A returned error means the tree could not be loaded at all;
// per-unit type errors are reported in Unit.TypeErrors.
func (l *Loader) Load() ([]*Unit, error) {
	root, err := filepath.Abs(l.Root)
	if err != nil {
		return nil, err
	}
	module := l.ModulePath
	if module == "" {
		module, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	dirs, err := parseTree(fset, root, module)
	if err != nil {
		return nil, err
	}

	ext, err := l.externalImporter(fset, dirs, module)
	if err != nil {
		return nil, err
	}
	chain := &chainImporter{cache: map[string]*types.Package{}, ext: ext}

	order, err := topoOrder(dirs, module)
	if err != nil {
		return nil, err
	}

	var units []*Unit
	check := func(path, name string, files, report []*ast.File, cacheAs string) *Unit {
		u := &Unit{Fset: fset, PkgPath: path, PkgName: name, Files: report}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: chain,
			Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
		}
		pkg, _ := conf.Check(path, fset, files, info)
		u.Pkg, u.Info = pkg, info
		if cacheAs != "" {
			chain.cache[cacheAs] = pkg
		}
		return u
	}

	// Base packages in dependency order, cached for importers.
	for _, d := range order {
		units = append(units, check(d.path, d.name, d.base, d.base, d.path))
	}
	// Test units, after every base package is importable.
	for _, d := range order {
		if len(d.inTest) > 0 {
			aug := append(append([]*ast.File{}, d.base...), d.inTest...)
			units = append(units, check(d.path, d.name, aug, d.inTest, ""))
		}
		if len(d.extTest) > 0 {
			units = append(units, check(d.path+"_test", d.extName, d.extTest, d.extTest, ""))
		}
	}
	return units, nil
}

// parseTree walks root and parses every package directory, skipping VCS,
// vendor and testdata trees.
func parseTree(fset *token.FileSet, root, module string) ([]*parsedDir, error) {
	var dirs []*parsedDir
	err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() {
			return nil
		}
		name := de.Name()
		if path != root && (name == ".git" || name == ".github" || name == "testdata" ||
			name == "vendor" || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".")) {
			return filepath.SkipDir
		}
		d, derr := parseDir(fset, root, module, path)
		if derr != nil {
			return derr
		}
		if d != nil {
			dirs = append(dirs, d)
		}
		return nil
	})
	return dirs, err
}

// parseDir parses one directory into its base / in-package-test /
// external-test file groups. Returns nil when the directory has no Go
// files.
func parseDir(fset *token.FileSet, root, module, dir string) (*parsedDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := module
	if rel != "." {
		pkgPath = module + "/" + filepath.ToSlash(rel)
	}
	d := &parsedDir{path: pkgPath}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(f) {
			continue
		}
		d.allFiles = append(d.allFiles, f)
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			d.extName = f.Name.Name
			d.extTest = append(d.extTest, f)
		case strings.HasSuffix(e.Name(), "_test.go"):
			d.name = f.Name.Name
			d.inTest = append(d.inTest, f)
		default:
			d.name = f.Name.Name
			d.base = append(d.base, f)
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == module || strings.HasPrefix(p, module+"/") {
					d.imports = append(d.imports, p)
				}
			}
		}
	}
	if len(d.allFiles) == 0 {
		return nil, nil
	}
	if d.name == "" {
		// Directory holds only an external test package; type it standalone.
		d.name = strings.TrimSuffix(d.extName, "_test")
	}
	return d, nil
}

// topoOrder sorts the directories so every module-internal import of a
// base package precedes the importer.
func topoOrder(dirs []*parsedDir, module string) ([]*parsedDir, error) {
	byPath := map[string]*parsedDir{}
	for _, d := range dirs {
		byPath[d.path] = d
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].path < dirs[j].path })
	var order []*parsedDir
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(d *parsedDir) error
	visit = func(d *parsedDir) error {
		switch state[d.path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", d.path)
		case 2:
			return nil
		}
		state[d.path] = 1
		for _, imp := range d.imports {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[d.path] = 2
		order = append(order, d)
		return nil
	}
	for _, d := range dirs {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// externalImporter builds the importer used for non-module import paths:
// compiler export data located with one `go list -export -deps` call over
// the set of external imports the tree mentions, falling back to the
// source importer when the go command cannot be run.
func (l *Loader) externalImporter(fset *token.FileSet, dirs []*parsedDir, module string) (types.Importer, error) {
	extSet := map[string]bool{}
	for _, d := range dirs {
		for _, f := range d.allFiles {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "C" || p == module || strings.HasPrefix(p, module+"/") {
					continue
				}
				extSet[p] = true
			}
		}
	}
	if len(extSet) == 0 {
		return importer.ForCompiler(fset, "source", nil), nil
	}
	paths := make([]string, 0, len(extSet))
	for p := range extSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	exports, err := goListExports(l.GoListDir, paths)
	if err != nil {
		// No go command (or no module context): type-check the standard
		// library from source instead. Slower, but dependency-free.
		return importer.ForCompiler(fset, "source", nil), nil
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

// goListExports resolves import paths to compiler export-data files with
// `go list -export -deps`.
func goListExports(dir string, paths []string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	if dir != "" {
		cmd.Dir = dir
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %w: %s", err, stderr.String())
	}
	type listPkg struct {
		ImportPath string
		Export     string
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// chainImporter serves module-internal packages from the loader's cache
// and everything else from the external importer.
type chainImporter struct {
	cache map[string]*types.Package
	ext   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: package %q failed to type-check", path)
		}
		return pkg, nil
	}
	if from, ok := c.ext.(types.ImporterFrom); ok {
		return from.ImportFrom(path, "", 0)
	}
	return c.ext.Import(path)
}

// readModulePath extracts the module directive from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// SortDiagnostics orders diagnostics by file, offset and analyzer name,
// the canonical output order of vetals.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// fileIncluded evaluates f's //go:build constraint (if any) for the
// default build configuration, so the loader sees the same file set as
// a plain `go build` / `go test`. Without this, tag-gated file pairs
// (e.g. `//go:build race` / `//go:build !race` both declaring the same
// constant) type-check together and produce spurious redeclaration
// errors.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return true // malformed: let the compiler report it
				}
				return expr.Eval(defaultBuildTag)
			}
		}
	}
	return true
}

// defaultBuildTag is the tag predicate of an un-tagged build: the host
// OS/arch, the gc toolchain and its release tags are true; everything
// else ("race", "ignore", custom tags) is false.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly":
			return true
		}
	}
	// Release tags go1.1 ... go1.N all hold for the running toolchain.
	return strings.HasPrefix(tag, "go1.")
}
