package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len=%d want %d", v.Len(), n)
		}
		if v.Count() != 0 {
			t.Fatalf("n=%d: fresh vector has %d set bits", n, v.Count())
		}
		if v.Any() {
			t.Fatalf("n=%d: fresh vector reports Any", n)
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count=%d want %d", v.Count(), len(idx))
	}
	for _, i := range idx {
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after flip", i)
		}
	}
	if v.Any() {
		t.Fatal("Any after clearing all")
	}
}

func TestFillRespectsLength(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 129} {
		v := New(n)
		v.Fill()
		if v.Count() != n {
			t.Fatalf("n=%d: Fill produced %d set bits", n, v.Count())
		}
	}
}

func TestNotRespectsTail(t *testing.T) {
	v := New(70)
	v.Set(3, true)
	w := New(70)
	w.Not(v)
	if w.Count() != 69 {
		t.Fatalf("Not count=%d want 69", w.Count())
	}
	if w.Get(3) {
		t.Fatal("bit 3 should be clear after Not")
	}
}

func randVec(r *rand.Rand, n int) *Vec {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestDeMorganProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		a, b := randVec(r, n), randVec(r, n)
		// not(a and b) == not(a) or not(b)
		lhs := New(n).Not(New(n).And(a, b))
		rhs := New(n).Or(New(n).Not(a), New(n).Not(b))
		if !lhs.Equal(rhs) {
			t.Fatalf("De Morgan violated at n=%d", n)
		}
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(words []uint64, seed int64) bool {
		n := len(words) * 64
		if n == 0 {
			return true
		}
		a := FromWords(n, words)
		r := rand.New(rand.NewSource(seed))
		b := randVec(r, n)
		c := New(n).Xor(a, b)
		c.Xor(c, b)
		return c.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountAdditiveUnderDisjointOr(t *testing.T) {
	f := func(words []uint64) bool {
		n := len(words) * 64
		if n == 0 {
			return true
		}
		a := FromWords(n, words)
		na := New(n).Not(a)
		or := New(n).Or(a, na)
		return a.Count()+na.Count() == n && or.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndNot(t *testing.T) {
	a := New(10)
	b := New(10)
	a.Fill()
	b.Set(2, true)
	b.Set(7, true)
	c := New(10).AndNot(a, b)
	if c.Count() != 8 || c.Get(2) || c.Get(7) {
		t.Fatalf("AndNot wrong: %v", c)
	}
}

func TestForEachSetOrderAndEarlyStop(t *testing.T) {
	v := New(200)
	want := []int{0, 5, 63, 64, 100, 199}
	for _, i := range want {
		v.Set(i, true)
	}
	var got []int
	v.ForEachSet(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	var count int
	v.ForEachSet(func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed, count=%d", count)
	}
}

func TestNextSet(t *testing.T) {
	v := New(150)
	v.Set(10, true)
	v.Set(64, true)
	v.Set(149, true)
	cases := []struct{ from, want int }{
		{0, 10}, {10, 10}, {11, 64}, {64, 64}, {65, 149}, {149, 149}, {150, -1}, {-5, 10},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d)=%d want %d", c.from, got, c.want)
		}
	}
	if New(80).NextSet(0) != -1 {
		t.Fatal("NextSet on empty vector should be -1")
	}
}

func TestNextSetMatchesForEachSet(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(400)
		v := randVec(r, n)
		var viaIter []int
		v.ForEachSet(func(i int) bool { viaIter = append(viaIter, i); return true })
		var viaNext []int
		for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		if len(viaIter) != len(viaNext) {
			t.Fatalf("iteration mismatch: %d vs %d", len(viaIter), len(viaNext))
		}
		for i := range viaIter {
			if viaIter[i] != viaNext[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
}

func TestFromWordsClearsTail(t *testing.T) {
	v := FromWords(3, []uint64{^uint64(0)})
	if v.Count() != 3 {
		t.Fatalf("Count=%d want 3", v.Count())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(66)
	a.Set(65, true)
	b := a.Clone()
	b.Set(0, true)
	if a.Get(0) {
		t.Fatal("clone aliases original")
	}
	if !b.Get(65) {
		t.Fatal("clone lost bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(66)
	a.Set(65, true)
	b := New(66)
	b.CopyFrom(a)
	if !b.Get(65) || b.Count() != 1 {
		t.Fatal("CopyFrom wrong")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(3).And(New(3), New(4))
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	New(3).Get(3)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4, 100)
	m.Set(2, 50, true)
	if !m.Get(2, 50) || m.Get(1, 50) {
		t.Fatal("matrix set/get wrong")
	}
	if m.Rows() != 4 || m.Bits() != 100 {
		t.Fatal("dims wrong")
	}
	c := m.Clone()
	c.Set(0, 0, true)
	if m.Get(0, 0) {
		t.Fatal("matrix clone aliases")
	}
}

func TestMatrixColumn(t *testing.T) {
	m := NewMatrix(8, 3)
	// pattern 1 output word should read 0b10100101 = 0xA5
	for _, r := range []int{0, 2, 5, 7} {
		m.Set(r, 1, true)
	}
	if got := m.Column(1); got != 0xA5 {
		t.Fatalf("Column=%#x want 0xa5", got)
	}
	if got := m.Column(0); got != 0 {
		t.Fatalf("Column(0)=%#x want 0", got)
	}
}

func TestMatrixOrAll(t *testing.T) {
	m := NewMatrix(3, 10)
	m.Set(0, 1, true)
	m.Set(1, 5, true)
	m.Set(2, 5, true)
	or := m.OrAll()
	if or.Count() != 2 || !or.Get(1) || !or.Get(5) {
		t.Fatalf("OrAll wrong: %v", or)
	}
}

func BenchmarkAnd4096(b *testing.B) {
	a := New(4096)
	a.Fill()
	c := New(4096)
	c.Fill()
	out := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.And(a, c)
	}
}

func BenchmarkCount65536(b *testing.B) {
	v := New(65536)
	v.Fill()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Count()
	}
}
