package circuit

import (
	"math/rand"
	"testing"
)

func TestDedupMergesIdenticalGates(t *testing.T) {
	n := New("dup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(KindAnd, a, b)
	g2 := n.AddGate(KindAnd, b, a) // commuted duplicate
	g3 := n.AddGate(KindOr, g1, g2)
	n.AddOutput("o", g3)
	removed := n.Dedup()
	if removed != 1 {
		t.Fatalf("removed %d want 1", removed)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// OR now has the same node twice as fanin.
	f := n.Fanins(g3)
	if f[0] != f[1] {
		t.Fatalf("OR fanins not merged: %v", f)
	}
}

func TestDedupTransitiveChains(t *testing.T) {
	n := New("chain")
	a := n.AddInput("a")
	b := n.AddInput("b")
	// Two identical two-level structures.
	x1 := n.AddGate(KindAnd, a, b)
	y1 := n.AddGate(KindNot, x1)
	x2 := n.AddGate(KindAnd, a, b)
	y2 := n.AddGate(KindNot, x2)
	o := n.AddGate(KindXor, y1, y2)
	n.AddOutput("o", o)
	removed := n.Dedup()
	if removed != 2 {
		t.Fatalf("removed %d want 2 (one AND, one NOT)", removed)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDedupIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := randomNetwork(t, r, 6, 50)
	n.Dedup()
	if again := n.Dedup(); again != 0 {
		t.Fatalf("second Dedup removed %d more", again)
	}
}

func TestDedupPreservesBehaviour(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := randomNetwork(t, r, 6, 60)
		ref := n.Clone()
		n.Dedup()
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Compare behaviour on random assignments via scalar evaluation.
		in := make([]bool, 6)
		for k := 0; k < 40; k++ {
			for i := range in {
				in[i] = r.Intn(2) == 1
			}
			if !equalOutputs(ref, n, in) {
				t.Fatalf("trial %d: behaviour changed", trial)
			}
		}
	}
}

// equalOutputs evaluates both networks on the assignment and compares.
func equalOutputs(a, b *Network, in []bool) bool {
	ea := evalScalar(a, in)
	eb := evalScalar(b, in)
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func evalScalar(n *Network, inputs []bool) []bool {
	val := make([]bool, n.NumSlots())
	for k, in := range n.Inputs() {
		val[in] = inputs[k]
	}
	var buf []bool
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == KindInput {
			continue
		}
		buf = buf[:0]
		for _, f := range n.Fanins(id) {
			buf = append(buf, val[f])
		}
		val[id] = kind.Eval(buf)
	}
	outs := make([]bool, n.NumOutputs())
	for o, out := range n.Outputs() {
		outs[o] = val[out.Node]
	}
	return outs
}

func TestDedupMuxOrderSensitive(t *testing.T) {
	n := New("mux")
	s := n.AddInput("s")
	d0 := n.AddInput("d0")
	d1 := n.AddInput("d1")
	m1 := n.AddGate(KindMux, s, d0, d1)
	m2 := n.AddGate(KindMux, s, d1, d0) // different function!
	n.AddOutput("o1", m1)
	n.AddOutput("o2", m2)
	if removed := n.Dedup(); removed != 0 {
		t.Fatalf("merged order-sensitive MUXes (removed %d)", removed)
	}
}
