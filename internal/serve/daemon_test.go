package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"batchals/internal/obs"
)

// testDaemon builds a daemon with an isolated metrics registry, a
// permissive circuit check (every name but "nope" exists) and the given
// runner. Callers own Start/Shutdown.
func testDaemon(t *testing.T, runner Runner, tweak func(*DaemonConfig)) *Daemon {
	t.Helper()
	cfg := DaemonConfig{
		QueueMax: 4,
		Registry: obs.NewRegistry(),
		Runner:   runner,
		CheckCircuit: func(name string) error {
			if name == "nope" {
				return errors.New("no such circuit")
			}
			return nil
		},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return NewDaemon(cfg)
}

// postJob submits a spec through the daemon's full HTTP surface.
func postJob(t *testing.T, h http.Handler, spec map[string]any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader(body))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func getJSON(t *testing.T, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if out != nil && rw.Code == http.StatusOK {
		if err := json.Unmarshal(rw.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rw.Code
}

// waitState polls the job trace until it reaches want or the deadline.
func waitState(t *testing.T, d *Daemon, name string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if run, ok := d.runs.Lookup(name); ok {
			if tr := run.JobTrace(); tr != nil && tr.State() == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	state := "?"
	if run, ok := d.runs.Lookup(name); ok && run.JobTrace() != nil {
		state = run.JobTrace().State().String()
	}
	t.Fatalf("job %s never reached %s (stuck at %s)", name, want, state)
}

func TestDaemonJobLifecycle(t *testing.T) {
	d := testDaemon(t, func(ctx context.Context, spec JobSpec, run *Run) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}, nil)
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	h := d.Handler()

	rw := postJob(t, h, map[string]any{"name": "a", "circuit": "c", "threshold": 0.05})
	if rw.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, body %s", rw.Code, rw.Body.String())
	}
	var accepted map[string]string
	if err := json.Unmarshal(rw.Body.Bytes(), &accepted); err != nil || accepted["run"] != "a" {
		t.Fatalf("202 body = %s", rw.Body.String())
	}

	waitState(t, d, "a", JobDone)

	var doc JobTraceSnapshot
	if code := getJSON(t, h, "/jobs/a", &doc); code != http.StatusOK {
		t.Fatalf("GET /jobs/a = %d", code)
	}
	wantWalk := []string{"received", "queued", "admitted", "running", "done"}
	if len(doc.Transitions) != len(wantWalk) {
		t.Fatalf("transitions = %+v, want %v", doc.Transitions, wantWalk)
	}
	for i, tr := range doc.Transitions {
		if tr.State != wantWalk[i] {
			t.Fatalf("transition %d = %s, want %s", i, tr.State, wantWalk[i])
		}
	}
	if doc.QueueWaitNS <= 0 || doc.RunNS <= 0 || doc.E2ENS < doc.RunNS {
		t.Fatalf("durations not populated: %+v", doc)
	}

	// The job list includes the trace; an unknown job 404s.
	var list []JobTraceSnapshot
	if code := getJSON(t, h, "/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /jobs = %d, %d entries", code, len(list))
	}
	if code := getJSON(t, h, "/jobs/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("GET /jobs/ghost = %d, want 404", code)
	}

	// Latency histograms and counters made it to /metrics with quantiles.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrw := httptest.NewRecorder()
	h.ServeHTTP(mrw, req)
	metrics := mrw.Body.String()
	for _, want := range []string{
		"serve_jobs_received_total 1",
		"serve_jobs_done_total 1",
		"serve_job_e2e_ns_count 1",
		`serve_job_e2e_ns{quantile="0.99"}`,
		`serve_job_queue_wait_ns{quantile="0.5"}`,
		"serve_job_run_ns_bucket",
		"serve_queue_depth",
		"serve_jobs_inflight",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDaemonSpecValidation(t *testing.T) {
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error { return nil }, nil)
	// No Start: validation rejects before the queue is involved.
	h := d.Handler()
	cases := []struct {
		spec  map[string]any
		field string
	}{
		{map[string]any{"threshold": 0.05}, "circuit"},
		{map[string]any{"circuit": "nope", "threshold": 0.05}, "circuit"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "metric": "wat"}, "metric"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "estimator": "wat"}, "estimator"},
		{map[string]any{"circuit": "c"}, "threshold"},
		{map[string]any{"circuit": "c", "threshold": -1}, "threshold"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "m": -5}, "m"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "workers": -1}, "workers"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "partition": map[string]any{}}, "partition.cells"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "partition": map[string]any{"cells": -3}}, "partition.cells"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "partition": map[string]any{"cells": 100, "max_cut": -1}}, "partition.max_cut"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "partition": map[string]any{"cells": 100, "rounds": -2}}, "partition.rounds"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "partition": map[string]any{"cells": 100, "policy": "greedy"}}, "partition.policy"},
		{map[string]any{"circuit": "c", "threshold": 0.05, "metric": "aem", "partition": map[string]any{"cells": 100}}, "partition"},
	}
	for _, c := range cases {
		rw := postJob(t, h, c.spec)
		if rw.Code != http.StatusBadRequest {
			t.Errorf("spec %v: status %d, want 400", c.spec, rw.Code)
			continue
		}
		var e SpecError
		if err := json.Unmarshal(rw.Body.Bytes(), &e); err != nil {
			t.Errorf("spec %v: body not a SpecError: %s", c.spec, rw.Body.String())
			continue
		}
		if e.Field != c.field || e.Msg == "" {
			t.Errorf("spec %v: field %q msg %q, want field %q", c.spec, e.Field, e.Msg, c.field)
		}
	}
	// Malformed JSON is a 400 too, not a 500.
	req := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader("{nope"))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rw.Code)
	}
	if got := d.cfg.Registry.Counter("serve_jobs_received_total").Value(); got != 0 {
		t.Errorf("rejected specs counted as received: %d", got)
	}
}

func TestDaemonDuplicateName(t *testing.T) {
	block := make(chan struct{})
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error {
		<-block
		return nil
	}, nil)
	d.Start()
	defer func() { close(block); _ = d.Shutdown(context.Background()) }()
	h := d.Handler()

	if rw := postJob(t, h, map[string]any{"name": "dup", "circuit": "c", "threshold": 0.1}); rw.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rw.Code)
	}
	rw := postJob(t, h, map[string]any{"name": "dup", "circuit": "c", "threshold": 0.1})
	if rw.Code != http.StatusConflict {
		t.Fatalf("duplicate submit = %d, want 409", rw.Code)
	}
	var e SpecError
	if err := json.Unmarshal(rw.Body.Bytes(), &e); err != nil || e.Field != "name" {
		t.Fatalf("409 body = %s", rw.Body.String())
	}
}

func TestDaemonShedsWith429(t *testing.T) {
	release := make(chan struct{})
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error {
		<-release
		return nil
	}, func(cfg *DaemonConfig) { cfg.QueueMax = 1 })
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	h := d.Handler()

	// First job occupies the worker, second fills the queue of one.
	if rw := postJob(t, h, map[string]any{"name": "running", "circuit": "c", "threshold": 0.1}); rw.Code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", rw.Code)
	}
	waitState(t, d, "running", JobRunning)
	if rw := postJob(t, h, map[string]any{"name": "waiting", "circuit": "c", "threshold": 0.1}); rw.Code != http.StatusAccepted {
		t.Fatalf("submit 2 = %d", rw.Code)
	}

	// The third submission must shed.
	rw := postJob(t, h, map[string]any{"name": "extra", "circuit": "c", "threshold": 0.1})
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 = %d, want 429 (body %s)", rw.Code, rw.Body.String())
	}
	if ra := rw.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive second count", ra)
	}
	var body struct {
		Error      string `json:"error"`
		Run        string `json:"run"`
		RetryAfter int    `json:"retry_after_s"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil || body.Run != "extra" || body.RetryAfter < 1 {
		t.Fatalf("429 body = %s", rw.Body.String())
	}
	if got := d.cfg.Registry.Counter("serve_jobs_shed_total").Value(); got != 1 {
		t.Fatalf("serve_jobs_shed_total = %d, want 1", got)
	}

	// The shed job's trace records the shed state…
	var doc JobTraceSnapshot
	if code := getJSON(t, h, "/jobs/extra", &doc); code != http.StatusOK || doc.State != "shed" {
		t.Fatalf("GET /jobs/extra = %d, state %q", code, doc.State)
	}
	// …and a retry under the same name is NOT a 409: the shed record is
	// replaced, and once capacity frees up the retry is accepted.
	close(release)
	waitState(t, d, "running", JobDone)
	waitState(t, d, "waiting", JobDone)
	rw = postJob(t, h, map[string]any{"name": "extra", "circuit": "c", "threshold": 0.1})
	if rw.Code != http.StatusAccepted {
		t.Fatalf("retry of shed name = %d, want 202 (body %s)", rw.Code, rw.Body.String())
	}
	waitState(t, d, "extra", JobDone)
}

func TestDaemonAutoNamesJobs(t *testing.T) {
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error { return nil }, nil)
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	name, err := d.Enqueue(JobSpec{Circuit: "c", Threshold: 0.1})
	if err != nil || !strings.HasPrefix(name, "job-") {
		t.Fatalf("Enqueue = %q, %v", name, err)
	}
}

func TestDaemonFailedJob(t *testing.T) {
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error {
		return errors.New("synthesis exploded")
	}, nil)
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	if _, err := d.Enqueue(JobSpec{Name: "f", Circuit: "c", Threshold: 0.1}); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, "f", JobFailed)
	var doc JobTraceSnapshot
	if code := getJSON(t, d.Handler(), "/jobs/f", &doc); code != http.StatusOK {
		t.Fatalf("GET /jobs/f = %d", code)
	}
	if doc.Error != "synthesis exploded" {
		t.Fatalf("trace error = %q", doc.Error)
	}
	run, _ := d.runs.Lookup("f")
	if run.State() != RunFailed {
		t.Fatalf("run state = %s, want failed", run.State())
	}
	if got := d.cfg.Registry.Counter("serve_jobs_failed_total").Value(); got != 1 {
		t.Fatalf("serve_jobs_failed_total = %d, want 1", got)
	}
}

func TestDaemonTimelineServiceLane(t *testing.T) {
	d := testDaemon(t, func(ctx context.Context, spec JobSpec, run *Run) error {
		time.Sleep(time.Millisecond)
		return nil
	}, nil)
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	if _, err := d.Enqueue(JobSpec{Name: "tl", Circuit: "c", Threshold: 0.1, Workers: 1, Timeline: true}); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, "tl", JobDone)
	run, _ := d.runs.Lookup("tl")
	rec := run.Timeline()
	if rec == nil {
		t.Fatalf("timeline recorder not attached")
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"service"`, "service.queued", "service.running"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline export missing %q", want)
		}
	}
}

// TestDaemonGracefulShutdown is the drain contract: SIGTERM (modeled by
// Shutdown) lets the running job finish, marks still-queued jobs canceled
// in their lifecycle traces, and flushes the access log.
func TestDaemonGracefulShutdown(t *testing.T) {
	var logBuf bytes.Buffer
	logger := NewAccessLogger(&logBuf)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	d := testDaemon(t, func(ctx context.Context, spec JobSpec, run *Run) error {
		once.Do(func() { close(started) })
		<-release
		return nil
	}, func(cfg *DaemonConfig) {
		cfg.AccessLog = logger
	})
	d.Start()
	h := d.Handler()

	requests := 0
	for _, name := range []string{"first", "second", "third"} {
		if rw := postJob(t, h, map[string]any{"name": name, "circuit": "c", "threshold": 0.1}); rw.Code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", name, rw.Code)
		}
		requests++
	}
	<-started // the first job is inside the runner

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- d.Shutdown(context.Background()) }()

	// Draining: new submissions are refused with 503 (not logged as
	// accepted work), then the running job is released and must complete.
	deadline := time.Now().Add(5 * time.Second)
	for !d.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if rw := postJob(t, h, map[string]any{"name": "late", "circuit": "c", "threshold": 0.1}); rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", rw.Code)
	}
	requests++
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The running job finished; the queued jobs were canceled.
	first, _ := d.runs.Lookup("first")
	if first.JobTrace().State() != JobDone || first.State() != RunDone {
		t.Fatalf("running job: trace %s run %s, want done/done",
			first.JobTrace().State(), first.State())
	}
	for _, name := range []string{"second", "third"} {
		run, ok := d.runs.Lookup(name)
		if !ok {
			t.Fatalf("queued job %s vanished", name)
		}
		if got := run.JobTrace().State(); got != JobCanceled {
			t.Errorf("queued job %s trace = %s, want canceled", name, got)
		}
		if run.State() != RunCanceled {
			t.Errorf("queued job %s run state = %s, want canceled", name, run.State())
		}
	}
	if got := d.cfg.Registry.Counter("serve_jobs_canceled_total").Value(); got != 2 {
		t.Errorf("serve_jobs_canceled_total = %d, want 2", got)
	}

	// Shutdown flushed the access log: every request is on disk as JSONL.
	lines := bytes.Count(logBuf.Bytes(), []byte("\n"))
	if lines != requests {
		t.Errorf("flushed access-log lines = %d, want %d", lines, requests)
	}

	// After drain, further submissions fail fast.
	if _, err := d.Enqueue(JobSpec{Circuit: "c", Threshold: 0.1}); !errors.Is(err, ErrDraining) {
		t.Errorf("Enqueue after shutdown = %v, want ErrDraining", err)
	}
}

// TestDaemonShutdownDeadlineCancelsRunner: when the drain context expires
// the running job's context is canceled and the drain still completes.
func TestDaemonShutdownDeadlineCancelsRunner(t *testing.T) {
	d := testDaemon(t, func(ctx context.Context, spec JobSpec, run *Run) error {
		<-ctx.Done() // runs until the drain deadline cancels it
		return ctx.Err()
	}, nil)
	d.Start()
	if _, err := d.Enqueue(JobSpec{Name: "stuck", Circuit: "c", Threshold: 0.1}); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, "stuck", JobRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	waitState(t, d, "stuck", JobFailed)
}

func TestDaemonTrimsTerminalRuns(t *testing.T) {
	d := testDaemon(t, func(context.Context, JobSpec, *Run) error { return nil }, func(cfg *DaemonConfig) {
		cfg.RunsMax = 3
	})
	d.Start()
	defer func() { _ = d.Shutdown(context.Background()) }()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("t-%d", i)
		if _, err := d.Enqueue(JobSpec{Name: name, Circuit: "c", Threshold: 0.1}); err != nil {
			t.Fatal(err)
		}
		waitState(t, d, name, JobDone)
	}
	if got := len(d.runs.Names()); got > 3 {
		t.Fatalf("retained runs = %d, want <= 3", got)
	}
	// The newest run survives.
	if _, ok := d.runs.Lookup("t-7"); !ok {
		t.Fatalf("newest run was evicted")
	}
}
