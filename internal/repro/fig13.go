package repro

import (
	"fmt"
	"strings"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

// Fig1Point is one iteration of one flow variant on the Fig. 1 motivating
// experiment: the measured error rate against the achieved area reduction.
type Fig1Point struct {
	Iter          int
	AreaReduction float64 // 1 - area/original
	ErrorRate     float64 // measured ER after the iteration
}

// Fig1Data carries both curves of the motivating example: the flow with
// accurate (batch) estimation versus without (local estimation), on c7552
// under a 1% ER budget.
type Fig1Data struct {
	Circuit   string
	Threshold float64
	Accurate  []Fig1Point // batch estimation (paper's red curve)
	Baseline  []Fig1Point // local estimation (paper's blue curve)
}

// Fig1 regenerates the motivating example of the paper's introduction.
func Fig1(opt Options) (*Fig1Data, error) {
	opt = opt.fill()
	name := "c7552"
	if opt.Fast {
		name = "c880"
	}
	golden := benchOrDie(name, bench.ByName)
	data := &Fig1Data{Circuit: name, Threshold: 0.01}

	for _, variant := range []struct {
		est  sasimi.EstimatorKind
		dest *[]Fig1Point
	}{
		{sasimi.EstimatorBatch, &data.Accurate},
		{sasimi.EstimatorLocal, &data.Baseline},
	} {
		res, err := sasimi.Run(golden, sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   data.Threshold,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			Estimator: variant.est,
			KeepTrace: true,
		})
		if err != nil {
			return nil, fmt.Errorf("fig1 %v: %w", variant.est, err)
		}
		for _, it := range res.Iterations {
			*variant.dest = append(*variant.dest, Fig1Point{
				Iter:          it.Iter,
				AreaReduction: 1 - it.Area/res.OriginalArea,
				ErrorRate:     it.ActualErr,
			})
		}
	}
	return data, nil
}

// RenderFig1 prints both curves as aligned series.
func RenderFig1(d *Fig1Data) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 1: ER vs area reduction on %s (ER <= %.1f%%)\n",
		d.Circuit, d.Threshold*100)
	fmt.Fprintf(&sb, "%-28s | %-28s\n", "with accurate estimation", "without accurate estimation")
	fmt.Fprintf(&sb, "%4s %10s %10s | %4s %10s %10s\n",
		"iter", "areared%", "ER%", "iter", "areared%", "ER%")
	n := len(d.Accurate)
	if len(d.Baseline) > n {
		n = len(d.Baseline)
	}
	for i := 0; i < n; i++ {
		left, right := "", ""
		if i < len(d.Accurate) {
			p := d.Accurate[i]
			left = fmt.Sprintf("%4d %9.2f%% %9.3f%%", p.Iter, p.AreaReduction*100, p.ErrorRate*100)
		}
		if i < len(d.Baseline) {
			p := d.Baseline[i]
			right = fmt.Sprintf("%4d %9.2f%% %9.3f%%", p.Iter, p.AreaReduction*100, p.ErrorRate*100)
		}
		fmt.Fprintf(&sb, "%-28s | %-28s\n", left, right)
	}
	accRed, basRed := 0.0, 0.0
	if len(d.Accurate) > 0 {
		accRed = d.Accurate[len(d.Accurate)-1].AreaReduction
	}
	if len(d.Baseline) > 0 {
		basRed = d.Baseline[len(d.Baseline)-1].AreaReduction
	}
	fmt.Fprintf(&sb, "final reduction: accurate %.2f%% vs baseline %.2f%% (delta %.2f%%)\n",
		accRed*100, basRed*100, (accRed-basRed)*100)
	return sb.String()
}

// Fig3Point is one iteration of the estimator-tracking experiment: the
// accumulated estimated ER (EER) against the simulated ER (SER).
type Fig3Point struct {
	Iter int
	EER  float64 // accumulated batch estimate
	SER  float64 // measured on the flow's pattern set
}

// Fig3Series is the EER/SER trajectory for one benchmark.
type Fig3Series struct {
	Circuit string
	Points  []Fig3Point
}

// fig3Jobs maps each Fig. 3 benchmark to its ER budget. The paper's RCA32
// (a SIS-mapped netlist) admits fine-grained substitutions; our clean
// XOR-structured RCA32 has no sub-4%-ER candidates under uniform inputs,
// so its budget is raised to observe a trajectory at all, and CLA32 is
// added as the arithmetic circuit with a rich low-error candidate set on
// this substrate (see EXPERIMENTS.md).
var fig3Jobs = []struct {
	name      string
	threshold float64
}{
	{"c880", 0.05},
	{"c2670", 0.05},
	{"rca32", 0.25},
	{"cla32", 0.05},
}

// Fig3 regenerates the estimation-accuracy trajectories (§5.3).
func Fig3(opt Options) ([]Fig3Series, error) {
	opt = opt.fill()
	jobs := fig3Jobs
	if opt.Fast {
		jobs = jobs[:1] // c880 only
	}
	var out []Fig3Series
	for _, j := range jobs {
		name := j.name
		golden := benchOrDie(name, bench.ByName)
		res, err := sasimi.Run(golden, sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   j.threshold,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			Estimator: sasimi.EstimatorBatch,
			KeepTrace: true,
		})
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", name, err)
		}
		s := Fig3Series{Circuit: name}
		for _, it := range res.Iterations {
			s.Points = append(s.Points, Fig3Point{Iter: it.Iter, EER: it.EstAccum, SER: it.ActualErr})
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderFig3 prints one block per benchmark.
func RenderFig3(series []Fig3Series) string {
	var sb strings.Builder
	sb.WriteString("Fig 3: estimated ER (EER) vs simulated ER (SER) per iteration\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "-- %s --\n%4s %10s %10s %10s\n", s.Circuit, "iter", "EER%", "SER%", "gap")
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%4d %9.3f%% %9.3f%% %9.4f\n", p.Iter, p.EER*100, p.SER*100, p.EER-p.SER)
		}
	}
	return sb.String()
}
