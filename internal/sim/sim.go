package sim

import (
	"fmt"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/obs"
)

// Always-on substrate counters on the default metrics registry. Each is
// resolved once here, so the per-call cost is a handful of atomic adds —
// nothing allocates and nothing branches on configuration.
var (
	statSimulations = obs.Default().Counter("sim_simulations_total")
	statSimNS       = obs.Default().Counter("sim_wall_ns_total")
	statGateEvals   = obs.Default().Counter("sim_gate_evals_total")
	statConeResims  = obs.Default().Counter("sim_cone_resims_total")
)

// Values holds the simulated M-bit value vector of every node of a network
// for one pattern set, indexed by NodeID.
type Values struct {
	M    int
	vecs []*bitvec.Vec // indexed by NodeID; nil for dead slots
}

// Node returns the value vector of node id. Shared, not copied.
func (v *Values) Node(id circuit.NodeID) *bitvec.Vec { return v.vecs[id] }

// Bit reports the simulated value of node id under pattern i.
func (v *Values) Bit(id circuit.NodeID, i int) bool { return v.vecs[id].Get(i) }

// Clone returns a deep copy of the value table.
func (v *Values) Clone() *Values {
	c := &Values{M: v.M, vecs: make([]*bitvec.Vec, len(v.vecs))}
	for i, x := range v.vecs {
		if x != nil {
			c.vecs[i] = x.Clone()
		}
	}
	return c
}

// Simulate evaluates the whole network on the pattern set and returns the
// per-node value vectors. The pattern set must match the network's input
// count.
func Simulate(n *circuit.Network, p *Patterns) *Values {
	if p.NumInputs() != n.NumInputs() {
		panic(fmt.Sprintf("sim: pattern set has %d inputs, network has %d",
			p.NumInputs(), n.NumInputs()))
	}
	start := time.Now()
	v := &Values{M: p.NumPatterns(), vecs: make([]*bitvec.Vec, n.NumSlots())}
	for k, in := range n.Inputs() {
		v.vecs[in] = p.InputRow(k).Clone()
	}
	words := bitvec.Words(p.NumPatterns())
	gates := 0
	var operands [][]uint64
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		gates++
		out := bitvec.New(p.NumPatterns())
		fanins := n.Fanins(id)
		operands = operands[:0]
		for _, f := range fanins {
			operands = append(operands, v.vecs[f].WordsSlice())
		}
		ow := out.WordsSlice()
		buf := make([]uint64, len(fanins))
		for w := 0; w < words; w++ {
			for j := range operands {
				buf[j] = operands[j][w]
			}
			ow[w] = kind.EvalWord(buf)
		}
		out.MaskTail()
		v.vecs[id] = out
	}
	statSimulations.Inc()
	statGateEvals.Add(int64(gates))
	statSimNS.Add(int64(time.Since(start)))
	return v
}

// OutputMatrix extracts the primary output values from a value table as an
// O x M bit matrix (one row per output, in output order).
func OutputMatrix(n *circuit.Network, v *Values) *bitvec.Matrix {
	m := bitvec.NewMatrix(n.NumOutputs(), v.M)
	for o, out := range n.Outputs() {
		m.Row(o).CopyFrom(v.Node(out.Node))
	}
	return m
}

// EvalOne evaluates the network on a single input assignment using the
// scalar reference semantics, returning the output values in output order.
// It is the slow path the word simulator is validated against.
func EvalOne(n *circuit.Network, inputs []bool) []bool {
	if len(inputs) != n.NumInputs() {
		panic("sim: EvalOne input width mismatch")
	}
	val := make([]bool, n.NumSlots())
	for k, in := range n.Inputs() {
		val[in] = inputs[k]
	}
	var buf []bool
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		buf = buf[:0]
		for _, f := range n.Fanins(id) {
			buf = append(buf, val[f])
		}
		val[id] = kind.Eval(buf)
	}
	outs := make([]bool, n.NumOutputs())
	for o, out := range n.Outputs() {
		outs[o] = val[out.Node]
	}
	return outs
}

// ResimulateCone recomputes values for the transitive fanout cone of root,
// assuming root's value vector in v has been overwritten with a new vector,
// and writes the updated vectors into v. It returns the list of node ids
// whose vectors were recomputed (excluding root). This is the workhorse of
// the full-simulation baseline estimator: its cost is proportional to the
// cone, not the whole network.
func ResimulateCone(n *circuit.Network, v *Values, root circuit.NodeID) []circuit.NodeID {
	inCone := n.TransitiveFanoutCone(root)
	var updated []circuit.NodeID
	words := bitvec.Words(v.M)
	buf := make([]uint64, 8)
	for _, id := range n.TopoOrder() {
		if !inCone[id] || id == root {
			continue
		}
		kind := n.Kind(id)
		fanins := n.Fanins(id)
		if cap(buf) < len(fanins) {
			buf = make([]uint64, len(fanins))
		}
		b := buf[:len(fanins)]
		out := v.vecs[id].WordsSlice()
		for w := 0; w < words; w++ {
			for j, f := range fanins {
				b[j] = v.vecs[f].WordsSlice()[w]
			}
			out[w] = kind.EvalWord(b)
		}
		v.vecs[id].MaskTail()
		updated = append(updated, id)
	}
	statConeResims.Inc()
	statGateEvals.Add(int64(len(updated)))
	return updated
}

// ConeSnapshot saves the value vectors of root and its transitive fanout
// cone so a speculative resimulation can be rolled back cheaply.
type ConeSnapshot struct {
	ids  []circuit.NodeID
	vals []*bitvec.Vec
}

// SnapshotCone copies the current value vectors of root's fanout cone
// (including root).
func SnapshotCone(n *circuit.Network, v *Values, root circuit.NodeID) *ConeSnapshot {
	inCone := n.TransitiveFanoutCone(root)
	s := &ConeSnapshot{}
	for _, id := range n.TopoOrder() {
		if inCone[id] {
			s.ids = append(s.ids, id)
			s.vals = append(s.vals, v.vecs[id].Clone())
		}
	}
	return s
}

// Restore writes the snapshot back into v.
func (s *ConeSnapshot) Restore(v *Values) {
	for i, id := range s.ids {
		v.vecs[id].CopyFrom(s.vals[i])
	}
}
