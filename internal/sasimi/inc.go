package sasimi

import (
	"context"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/obs"
	"batchals/internal/par"
)

// gatherCache carries candidate-enumeration state across iterations of the
// incremental engine. Candidate gathering is the flow's single most
// expensive phase, yet an accepted substitution invalidates only a small
// region of it: a cached target bucket stays bit-identical unless the
// target's value vector, arrival time or MFFC reads changed, and within a
// clean bucket only the pairs whose substitute lies in the edit's dirty
// region need re-evaluation. The cache exploits exactly that:
//
//   - per target it keeps the canonical-order bucket plus the dependency
//     set deps (MFFC cone nodes and their fanins — the records the MFFC
//     walk reads, see targetData);
//   - after an edit it derives targetDirty = value-changed ∪ added ∪
//     arrival-changed ∪ {t : deps(t) ∩ probe ≠ ∅}, where probe is the set
//     of nodes whose structural records the edit touched (Repl, Rewired,
//     Removed, Boundary, fanins of Added);
//   - subDirty is the structural fanout cone of the rewired/added seeds
//     plus every arrival-changed node: any pair whose admissibility
//     (cycle screen, delay screen) or difference probability could have
//     moved has its substitute in this set, because new target→substitute
//     paths run through a rewired edge, lost paths ran through the swept
//     region, and changed values lie in the seeds' fanout cones;
//   - dirty targets recompute in full, clean targets drop the candidates
//     whose substitute is dirty or removed and merge in freshly evaluated
//     pairs for the dirty substitutes, preserving canonical bucket order.
//
// The final candidate list is itself maintained incrementally: candLess
// is a strict total order, so the sorted permutation of the candidate
// multiset is unique, and the cache keeps the previous iteration's fully
// sorted list. After an edit it filters out the entries owned by dirty or
// removed targets and dropped substitutes (a linear pass over a list that
// is already sorted), sorts only the replacement entries (the dirty
// targets' new buckets plus the clean targets' fresh pairs — a small
// fraction of the total), and merges the two sorted runs. The result is
// the unique sorted permutation of the new multiset — bit-identical to
// re-sorting the flattened buckets from scratch, at a fraction of the
// comparator cost — pinned by the differential suite and the
// Config.verifyIncremental cross-check.
type gatherCache struct {
	data        []targetData // indexed by node slot
	prevArrival []float64
	// sorted is the full sorted candidate list of the previous gather,
	// before the MaxCandidates cap, with pristine gather-time fields
	// (callers get a copy, so scoring's in-place Delta/Score writes never
	// leak back into the cache).
	sorted []Candidate

	// Dispatch scratch: the LPT bin-packer and its inputs (work items as
	// target indices plus their estimated resim costs), and one reusable
	// Xor-scratch vector per pool worker — computeTarget and evalPair use
	// diff purely as scratch, so a worker-owned vector replaces the
	// per-target bitvec.New of the unplanned fan-out.
	planner par.Planner
	items   []int
	costs   []float64
	diffs   []*bitvec.Vec
}

// workerDiffs returns one m-bit scratch vector per pool worker, growing
// the pool-owned set on first use (m is fixed for the life of a flow).
func (gc *gatherCache) workerDiffs(workers, m int) []*bitvec.Vec {
	for len(gc.diffs) < workers {
		gc.diffs = append(gc.diffs, bitvec.New(m))
	}
	return gc.diffs
}

// full performs the initial complete gather, populating every target's
// cached bucket and dependency set. Targets are bin-packed (uniform cost —
// nothing is known about the cones yet) and each bin's buckets land in
// per-target slots owned by the target index, so the fan-out is
// deterministic at any worker count and bin shape. A cancelled context
// aborts the fan-out and returns the context's error; the cache is then
// partially populated and must be discarded.
func (gc *gatherCache) full(goCtx context.Context, env *gatherEnv, pool *par.Pool) ([]Candidate, error) {
	gc.data = make([]targetData, env.net.NumSlots())
	targets := liveGateTargets(env.net)
	gc.costs = gc.costs[:0]
	for range targets {
		gc.costs = append(gc.costs, 1)
	}
	bins := gc.planner.Plan(gc.costs, par.PlanBins(len(targets), pool.Workers()))
	diffs := gc.workerDiffs(pool.Workers(), env.m)
	pool.Label("sasimi.gather", obs.PhaseEstimate)
	if err := pool.DoCtx(goCtx, len(bins), func(w, bi int) {
		diff := diffs[w]
		for _, ti := range bins[bi] {
			t := targets[ti]
			gc.data[t] = env.computeTarget(t, diff, true)
		}
	}); err != nil {
		return nil, err
	}
	gc.prevArrival = append([]float64(nil), env.arrival...)
	total := 0
	for _, t := range targets {
		total += len(gc.data[t].bucket)
	}
	gc.sorted = make([]Candidate, 0, total)
	for _, t := range targets {
		gc.sorted = append(gc.sorted, gc.data[t].bucket...)
	}
	sortCandidates(gc.sorted)
	return gc.capped(env.cfg), nil
}

// update refreshes the cache after one accepted edit and returns the new
// candidate list. ed is the structural record of the edit and changed the
// nodes whose value vectors differ (from core.Engine.Apply). A cancelled
// context aborts the fan-out and returns the context's error; the cache is
// then partially updated and must be discarded.
func (gc *gatherCache) update(goCtx context.Context, env *gatherEnv, ed *core.Edit, changed []circuit.NodeID, pool *par.Pool) ([]Candidate, error) {
	n := env.net
	slots := n.NumSlots()
	for len(gc.data) < slots {
		gc.data = append(gc.data, targetData{})
	}
	for len(gc.prevArrival) < slots {
		gc.prevArrival = append(gc.prevArrival, 0)
	}
	for _, id := range ed.Removed {
		gc.data[id] = targetData{}
	}

	// probe: nodes whose structural records (fanin list, fanout count,
	// output-driver status) the edit touched. A clean target's MFFC walk
	// read none of them, so its gain figures are unchanged.
	probe := make([]bool, slots)
	probe[ed.Repl] = true
	for _, id := range ed.Rewired {
		probe[id] = true
	}
	for _, id := range ed.Removed {
		probe[id] = true
	}
	for _, id := range ed.Boundary {
		probe[id] = true
	}
	for _, id := range ed.Added {
		probe[id] = true
		for _, f := range n.Fanins(id) {
			probe[f] = true
		}
	}

	changedVal := make([]bool, slots)
	for _, id := range changed {
		changedVal[id] = true
	}

	arrivalChanged := make([]bool, slots)
	for _, id := range n.LiveNodes() {
		if env.arrival[id] != gc.prevArrival[id] {
			arrivalChanged[id] = true
		}
	}

	// subDirty: structural fanout cone of the edit's seeds, plus every
	// arrival-changed node.
	subDirty := make([]bool, slots)
	var stack []circuit.NodeID
	push := func(id circuit.NodeID) {
		if n.IsLive(id) && !subDirty[id] {
			subDirty[id] = true
			stack = append(stack, id)
		}
	}
	for _, id := range ed.Rewired {
		push(id)
	}
	for _, id := range ed.Added {
		push(id)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range n.Fanouts(x) {
			push(fo)
		}
	}
	for _, id := range n.LiveNodes() {
		if arrivalChanged[id] {
			subDirty[id] = true
		}
	}

	// drop marks substitutes whose cached pairs must leave clean buckets:
	// the dirty ones (re-evaluated below) and the removed ones (gone).
	drop := make([]bool, slots)
	copy(drop, subDirty)
	for _, id := range ed.Removed {
		drop[id] = true
	}

	// The dirty substitutes that are admissible, ascending, with one
	// transitive fanin cone each: t ∈ tfi(s) ⟺ s ∈ TFO(t), which is the
	// enumeration's cycle screen evaluated from the substitute's side.
	var dirtySubs []circuit.NodeID
	for _, id := range n.LiveNodes() {
		if subDirty[id] {
			if k := n.Kind(id); k.IsGate() || k == circuit.KindInput {
				dirtySubs = append(dirtySubs, id)
			}
		}
	}
	tfis := make([][]bool, len(dirtySubs))
	for i, s := range dirtySubs {
		tfis[i] = n.TransitiveFaninCone(s)
	}

	// Classify targets driver-side so the bin-packer can see each one's
	// estimated resim cost: a dirty target re-enumerates every substitute
	// (≈|subs| pair evaluations plus the MFFC walk), a clean one touches
	// only the dirty substitutes. The old per-target fan-out fed both
	// through identical tasks, and the few dirty cones straggled behind a
	// long tail of near-free clean tasks — the measured 12% worker idle.
	// LPT bins bound the load spread by one item's cost, and Overcommit
	// bins per worker leave queued bins for any worker that finishes early
	// to steal.
	targets := liveGateTargets(n)
	dirtyT := make([]bool, slots)
	freshBy := make([][]Candidate, len(targets))
	gc.items = gc.items[:0]
	gc.costs = gc.costs[:0]
	dirtyCost := float64(len(env.subs)) + 8
	cleanCost := float64(len(dirtySubs)) + 1
	for ti, t := range targets {
		td := &gc.data[t]
		if !td.live || changedVal[t] || arrivalChanged[t] || depsTouched(td.deps, probe) {
			dirtyT[t] = true
			gc.items = append(gc.items, ti)
			gc.costs = append(gc.costs, dirtyCost)
		} else if td.baseGain > 0 {
			// Always enqueued, even with no dirty substitutes: drop marks
			// removed substitutes whose pairs must leave the bucket.
			gc.items = append(gc.items, ti)
			gc.costs = append(gc.costs, cleanCost)
		}
		// Clean targets without a bucket: no work, provably unchanged.
	}
	bins := gc.planner.Plan(gc.costs, par.PlanBins(len(gc.items), pool.Workers()))
	diffs := gc.workerDiffs(pool.Workers(), env.m)
	pool.Label("sasimi.gather_inc", obs.PhaseEstimate)
	err := pool.DoCtx(goCtx, len(bins), func(w, bi int) {
		diff := diffs[w]
		for _, ii := range bins[bi] {
			ti := gc.items[ii]
			t := targets[ti]
			if dirtyT[t] {
				gc.data[t] = env.computeTarget(t, diff, true)
				continue
			}
			td := &gc.data[t]
			tv := env.vals.Node(t)
			tArr := env.arrival[t]
			var fresh []Candidate
			for i, s := range dirtySubs {
				if s == t || tfis[i][t] {
					continue
				}
				fresh = env.evalPair(fresh, td, t, s, tv, tArr, diff)
			}
			freshBy[ti] = fresh
			td.bucket = mergeBucket(td.bucket, fresh, drop)
		}
	})
	if err != nil {
		return nil, err
	}

	// Maintain the sorted list by filter-and-merge: the previous list
	// minus the entries of dirty/removed targets and dropped substitutes
	// is still sorted; the replacements (dirty targets' new buckets plus
	// the clean targets' fresh pairs) form exactly the complement of the
	// new multiset. candLess is a strict total order, so the merge is
	// bit-identical to re-sorting the flattened buckets.
	var added []Candidate
	for ti, t := range targets {
		if dirtyT[t] {
			added = append(added, gc.data[t].bucket...)
		} else {
			added = append(added, freshBy[ti]...)
		}
	}
	sortCandidates(added)

	kept := make([]Candidate, 0, len(gc.sorted))
	for i := range gc.sorted {
		c := &gc.sorted[i]
		if !n.IsLive(c.Target) || dirtyT[c.Target] {
			continue
		}
		if !c.Const && drop[c.Sub] {
			continue
		}
		kept = append(kept, *c)
	}
	gc.sorted = mergeSorted(kept, added)

	gc.prevArrival = append(gc.prevArrival[:0], env.arrival...)
	return gc.capped(env.cfg), nil
}

// mergeSorted merges two candLess-sorted runs. Ties cannot occur (the
// order is total over distinct candidates), so tie placement is moot.
func mergeSorted(a, b []Candidate) []Candidate {
	if len(b) == 0 {
		return a
	}
	out := make([]Candidate, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if candLess(&a[i], &b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// capped hands the caller its own copy of the MaxCandidates prefix of
// the cached sorted list. Copying keeps the cache pristine: scoring
// writes Delta/Score/Exact into the returned slice in place.
func (gc *gatherCache) capped(cfg *Config) []Candidate {
	view := gc.sorted
	if cfg.MaxCandidates > 0 && len(view) > cfg.MaxCandidates {
		view = view[:cfg.MaxCandidates]
	}
	return append([]Candidate(nil), view...)
}

func depsTouched(deps []circuit.NodeID, probe []bool) bool {
	for _, d := range deps {
		if probe[d] {
			return true
		}
	}
	return false
}

// mergeBucket rebuilds a clean target's bucket: retained constants first
// (they depend only on the target's value and base gain, both unchanged),
// then the ordered merge of the retained pairs — minus dropped substitutes
// — with the freshly evaluated ones. Both inputs are ordered by ascending
// substitute with plain before inverted, and their substitute sets are
// disjoint, so the merge reproduces the canonical enumeration order.
func mergeBucket(old, fresh []Candidate, drop []bool) []Candidate {
	out := make([]Candidate, 0, len(old)+len(fresh))
	i := 0
	for i < len(old) && old[i].Const {
		out = append(out, old[i])
		i++
	}
	j := 0
	for i < len(old) || j < len(fresh) {
		if i < len(old) && drop[old[i].Sub] {
			i++
			continue
		}
		switch {
		case i >= len(old):
			out = append(out, fresh[j])
			j++
		case j >= len(fresh):
			out = append(out, old[i])
			i++
		case pairBefore(&old[i], &fresh[j]):
			out = append(out, old[i])
			i++
		default:
			out = append(out, fresh[j])
			j++
		}
	}
	return out
}

// pairBefore orders pair candidates by the enumeration's inner-loop order.
func pairBefore(a, b *Candidate) bool {
	if a.Sub != b.Sub {
		return a.Sub < b.Sub
	}
	return !a.Inverted && b.Inverted
}
