package circuit

import "fmt"

// TopoOrder returns the live nodes in topological order (fanins before
// fanouts). The result is cached until the network is edited. It panics if
// the network contains a cycle; use Validate to get the error instead.
func (n *Network) TopoOrder() []NodeID {
	order, err := n.topoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

func (n *Network) topoOrder() ([]NodeID, error) {
	if !n.topoDirty && n.topo != nil {
		return n.topo, nil
	}
	// Kahn's algorithm over live nodes.
	indeg := make([]int32, len(n.nodes))
	live := 0
	for i := range n.nodes {
		if n.nodes[i].Kind == KindFree {
			continue
		}
		live++
		indeg[i] = int32(len(n.nodes[i].Fanins))
	}
	order := make([]NodeID, 0, live)
	queue := make([]NodeID, 0, live)
	for i := range n.nodes {
		if n.nodes[i].Kind != KindFree && indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, fo := range n.nodes[id].fanouts {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != live {
		return nil, fmt.Errorf("circuit: network %q contains a combinational cycle", n.Name)
	}
	n.topo = order
	n.computeLevels(order)
	n.topoDirty = false
	return order, nil
}

func (n *Network) computeLevels(order []NodeID) {
	if cap(n.levels) < len(n.nodes) {
		n.levels = make([]int32, len(n.nodes))
	} else {
		n.levels = n.levels[:len(n.nodes)]
		for i := range n.levels {
			n.levels[i] = 0
		}
	}
	for _, id := range order {
		nd := &n.nodes[id]
		if !nd.Kind.IsGate() {
			n.levels[id] = 0
			continue
		}
		max := int32(0)
		for _, f := range nd.Fanins {
			if l := n.levels[f]; l > max {
				max = l
			}
		}
		n.levels[id] = max + 1
	}
}

// Level returns the unit-delay level of node id: 0 for inputs and
// constants, 1 + max fanin level for gates.
func (n *Network) Level(id NodeID) int {
	n.TopoOrder()
	return int(n.levels[id])
}

// Depth returns the maximum output level (levelised critical path in unit
// delays). An empty network has depth 0.
func (n *Network) Depth() int {
	d := 0
	for _, o := range n.outputs {
		if l := n.Level(o.Node); l > d {
			d = l
		}
	}
	return d
}

// markDirty invalidates cached derived structures after an edit.
func (n *Network) markDirty() { n.topoDirty = true }

// TransitiveFanoutCone returns the set of nodes reachable from id through
// fanout edges, including id itself. The result is a bitset indexed by
// NodeID.
func (n *Network) TransitiveFanoutCone(id NodeID) []bool {
	seen := make([]bool, len(n.nodes))
	stack := []NodeID{id}
	seen[id] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range n.nodes[x].fanouts {
			if !seen[fo] {
				seen[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return seen
}

// TransitiveFaninCone returns the set of nodes feeding id (through fanin
// edges), including id itself, as a bitset indexed by NodeID.
func (n *Network) TransitiveFaninCone(id NodeID) []bool {
	seen := make([]bool, len(n.nodes))
	stack := []NodeID{id}
	seen[id] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range n.nodes[x].Fanins {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return seen
}
