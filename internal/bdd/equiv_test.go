package bdd

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/sim"
)

func TestEquivalenceOfClones(t *testing.T) {
	for _, name := range []string{"rca8", "mul4", "cmp8", "alu4"} {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CheckEquivalence(g, g.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%s: clone not equivalent (output %d)", name, res.FailingOutput)
		}
	}
}

func TestEquivalenceOfDedupedNetwork(t *testing.T) {
	g, _ := bench.ByName("mul4")
	d := g.Clone()
	d.Dedup()
	res, err := CheckEquivalence(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("Dedup changed behaviour (formally)")
	}
}

func TestEquivalenceOfDifferentAdderArchitectures(t *testing.T) {
	// RCA, CLA and KSA implement the same function: formal equivalence
	// across architectures is the strongest cross-check of the generators.
	rca := bench.RCA(8)
	cla := bench.CLA(8)
	ksa := bench.KSA(8)
	for _, pair := range [][2]*circuit.Network{{rca, cla}, {rca, ksa}, {cla, ksa}} {
		res, err := CheckEquivalence(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%s vs %s: not equivalent at output %d, cex=%v",
				pair[0].Name, pair[1].Name, res.FailingOutput, res.Counterexample)
		}
	}
}

func TestCounterexampleIsReal(t *testing.T) {
	golden := bench.RCA(4)
	approx := golden.Clone()
	// Corrupt one gate.
	var target circuit.NodeID = circuit.InvalidNode
	for _, id := range approx.LiveNodes() {
		if approx.Kind(id) == circuit.KindXor {
			target = id
			break
		}
	}
	c := approx.AddConst(false)
	approx.ReplaceNode(target, c)
	approx.SweepFrom(target)

	res, err := CheckEquivalence(golden, approx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("corrupted circuit reported equivalent")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	// Replay the counterexample: the failing output must actually differ.
	og := sim.EvalOne(golden, res.Counterexample)
	oa := sim.EvalOne(approx, res.Counterexample)
	if og[res.FailingOutput] == oa[res.FailingOutput] {
		t.Fatal("counterexample does not expose the difference")
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(m.And(a, m.Not(b)), c)
	asg := m.AnySat(f)
	if asg == nil || !m.Eval(f, asg) {
		t.Fatalf("AnySat returned non-satisfying %v", asg)
	}
	if m.AnySat(Zero) != nil {
		t.Fatal("AnySat(Zero) should be nil")
	}
	one := m.AnySat(One)
	if one == nil || !m.Eval(One, one) {
		t.Fatal("AnySat(One) broken")
	}
}
