package bench

import (
	"fmt"

	"batchals/internal/circuit"
)

// MAC returns a multiply-accumulate unit: p = a*b + c with width-bit
// operands a and b and a 2*width-bit addend c, producing 2*width+1 output
// bits. A common DSP datapath and a natural AEM-constrained ALS target.
func MAC(width int) *circuit.Network {
	mustPositive("MAC", width)
	n := circuit.New(fmt.Sprintf("MAC%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	c := addInputVector(n, "c", 2*width)

	// Product via carry-save columns (same structure as MUL).
	cols := partialProducts(n, a, b)
	prod := make([]circuit.NodeID, 2*width)
	for col := 0; col < 2*width; col++ {
		for len(cols[col]) > 1 {
			if len(cols[col]) >= 3 {
				s, co := fullAdder(n, cols[col][0], cols[col][1], cols[col][2])
				cols[col] = append(cols[col][3:], s)
				cols[col+1] = append(cols[col+1], co)
			} else {
				s, co := halfAdder(n, cols[col][0], cols[col][1])
				cols[col] = append(cols[col][2:], s)
				cols[col+1] = append(cols[col+1], co)
			}
		}
		if len(cols[col]) == 1 {
			prod[col] = cols[col][0]
		} else {
			prod[col] = n.AddConst(false)
		}
	}

	// Final addition prod + c, ripple style.
	outs := make([]circuit.NodeID, 0, 2*width+1)
	var carry circuit.NodeID = circuit.InvalidNode
	for i := 0; i < 2*width; i++ {
		if carry == circuit.InvalidNode {
			s, co := halfAdder(n, prod[i], c[i])
			outs = append(outs, s)
			carry = co
		} else {
			s, co := fullAdder(n, prod[i], c[i], carry)
			outs = append(outs, s)
			carry = co
		}
	}
	outs = append(outs, carry)
	addOutputVector(n, "p", outs)
	return n
}

// Decoder returns an n-to-2^n one-hot decoder with an enable input.
func Decoder(selBits int) *circuit.Network {
	mustPositive("Decoder", selBits)
	if selBits > 6 {
		panic("bench: Decoder wider than 6 select bits is unreasonable here")
	}
	n := circuit.New(fmt.Sprintf("DEC%d", selBits))
	sel := addInputVector(n, "s", selBits)
	en := n.AddInput("en")
	inv := make([]circuit.NodeID, selBits)
	for i, s := range sel {
		inv[i] = n.AddGate(circuit.KindNot, s)
	}
	for line := 0; line < 1<<uint(selBits); line++ {
		terms := make([]circuit.NodeID, 0, selBits+1)
		for i := 0; i < selBits; i++ {
			if line>>uint(i)&1 == 1 {
				terms = append(terms, sel[i])
			} else {
				terms = append(terms, inv[i])
			}
		}
		terms = append(terms, en)
		n.AddOutput(fmt.Sprintf("y%d", line), n.AddGate(circuit.KindAnd, terms...))
	}
	return n
}

// AbsDiff returns |a - b| for width-bit unsigned operands: a subtractor,
// a sign mux and a conditional negation — an error-tolerant image-
// processing kernel (used by SAD motion estimation).
func AbsDiff(width int) *circuit.Network {
	mustPositive("AbsDiff", width)
	n := circuit.New(fmt.Sprintf("ABSDIFF%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	// d = a + ~b + 1; borrow-free iff a >= b (carry out = 1).
	diff := make([]circuit.NodeID, width)
	carry := n.AddConst(true)
	for i := 0; i < width; i++ {
		nb := n.AddGate(circuit.KindNot, b[i])
		s, co := fullAdder(n, a[i], nb, carry)
		diff[i] = s
		carry = co
	}
	// If carry==0 the result is negative: negate (two's complement).
	neg := make([]circuit.NodeID, width)
	c2 := n.AddConst(true)
	for i := 0; i < width; i++ {
		nd := n.AddGate(circuit.KindNot, diff[i])
		s, co := halfAdder(n, nd, c2)
		neg[i] = s
		c2 = co
	}
	for i := 0; i < width; i++ {
		n.AddOutput(fmt.Sprintf("d%d", i), n.AddGate(circuit.KindMux, carry, neg[i], diff[i]))
	}
	// The negation chain's final carry is unused; drop its dead gates
	// (found by the analyze dangling-node pass).
	n.Sweep()
	return n
}
