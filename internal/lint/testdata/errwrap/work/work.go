package work

import (
	"errors"
	"fmt"
)

// ErrBudget is a sentinel in the flow-package style.
var ErrBudget = errors.New("budget exhausted")

// BadEq compares the sentinel by identity.
func BadEq(err error) bool {
	return err == ErrBudget // want "use errors.Is"
}

// BadNeq is the negated form.
func BadNeq(err error) bool {
	return err != ErrBudget // want "use errors.Is"
}

// GoodIs matches through wrapping layers.
func GoodIs(err error) bool {
	return errors.Is(err, ErrBudget)
}

// BadWrap stringifies the cause; errors.Is stops matching downstream.
func BadWrap(err error) error {
	return fmt.Errorf("run failed: %v", err) // want "without %w"
}

// GoodWrap keeps the chain intact.
func GoodWrap(err error) error {
	return fmt.Errorf("run failed: %w", err)
}

// NilCheck is a plain presence test, not a sentinel comparison.
func NilCheck(err error) bool {
	return err == nil
}

// Acknowledged is an accepted identity comparison.
func Acknowledged(err error) bool {
	return err == ErrBudget //als:errcmp-ok pointer identity intended here
}
