package sasimi

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"batchals/internal/analyze"
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// IncrementalMode selects whether the flow carries simulation, error-state
// and CPM results across iterations (cone-scoped resimulation plus
// dirty-region CPM refresh) or rebuilds everything from scratch each
// iteration. Both paths are bit-identical — the incremental engine is
// purely a throughput knob, pinned by the differential suite — so the
// default is on; IncrementalOff exists as an escape hatch and as the
// reference side of the differential tests.
type IncrementalMode int

const (
	// IncrementalAuto (the zero value) enables the incremental engine.
	IncrementalAuto IncrementalMode = iota
	// IncrementalOn explicitly enables the incremental engine.
	IncrementalOn
	// IncrementalOff forces the per-iteration full rebuild.
	IncrementalOff
)

// String names the mode.
func (m IncrementalMode) String() string {
	switch m {
	case IncrementalAuto:
		return "auto"
	case IncrementalOn:
		return "on"
	case IncrementalOff:
		return "off"
	}
	return "unknown"
}

func (m IncrementalMode) enabled() bool { return m != IncrementalOff }

// Config parameterises one flow run. Zero values are filled with sensible
// defaults by Run; only Threshold must be set by the caller. The error
// budget, sample size and run-length fields are the embedded flow.Budget
// shared with the other iterative flows.
type Config struct {
	flow.Budget

	// Estimator chooses the per-candidate error estimation method.
	Estimator EstimatorKind
	// Workers sets the size of the pattern-sharded worker pool that runs
	// simulation, CPM construction, candidate gathering and batch scoring
	// concurrently. 0 (the default) selects runtime.NumCPU(); 1 forces the
	// legacy sequential path. Results are bit-identical at any worker
	// count — see DESIGN.md §10 for the determinism argument — so Workers
	// is purely a throughput knob.
	Workers int
	// Incremental selects the cross-iteration incremental engine (default
	// on; see IncrementalMode).
	Incremental IncrementalMode
	// Patterns, when non-nil, overrides NumPatterns/Seed with a
	// caller-provided (possibly non-uniform) pattern set.
	Patterns *sim.Patterns
	// SimilarityCap is the maximum local difference probability for a pair
	// to be considered almost-identical (default 0.3).
	SimilarityCap float64
	// MaxCandidates caps candidates evaluated per iteration (0 = all).
	MaxCandidates int
	// VerifyTopK, when positive, re-evaluates the K best-scoring feasible
	// candidates of each iteration with exact fanout-cone resimulation
	// before committing to one. This implements the mitigation the paper
	// lists as future work for the reconvergent-path inaccuracy: the batch
	// estimate ranks all T candidates cheaply, exact simulation then
	// settles the winner among K ≪ T. Costs K cone resimulations per
	// iteration; ignored by EstimatorFull (already exact).
	VerifyTopK int
	// KeepTrace records a per-iteration IterationRecord in the result.
	KeepTrace bool
	// Tracer, when non-nil, receives flow events: per-phase spans,
	// per-iteration summaries, per-candidate scores and accepted
	// substitutions. A nil Tracer costs nothing — the hot loops never
	// materialise event arguments.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives flow metrics: iteration / candidate
	// / accept counters, the five per-phase timers and the
	// estimator-drift histograms (split by the exactness certificate).
	Metrics *obs.Registry
	// CheckInvariants re-validates structural invariants after every
	// accepted substitution: a combinational cycle introduced by the
	// netlist surgery is reported as a named-cycle error immediately,
	// instead of a TopoOrder panic on the next simulation. The flow tests
	// keep it on; production callers pay one DFS per accepted
	// substitution if they opt in.
	CheckInvariants bool
	// Timeline, when non-nil, records the run's causal span timeline: one
	// dispatch span plus per-worker spans for every pool fan-out
	// (simulation, CPM build/refresh, gather, scoring), flow-phase and
	// iteration spans, and verify/apply/measure spans — exportable as
	// Chrome trace-event JSON (Recorder.WriteTrace) for Perfetto. Worker
	// goroutines additionally carry als_dispatch/als_phase pprof labels
	// while a timeline is attached. A nil Timeline costs nothing (one
	// predictable branch per dispatch) and the recorded computation is
	// bit-identical either way.
	Timeline *timeline.Recorder

	// verifyIncremental cross-checks the incremental engine against the
	// full-rebuild computation every iteration: the incremental candidate
	// list and (for the batch estimator) the refreshed CPM are compared
	// against freshly rebuilt ones, and any divergence aborts the run with
	// an error. Test-only paranoia hook — quadratically expensive.
	verifyIncremental bool
}

func (cfg *Config) fillDefaults() {
	cfg.Budget.FillDefaults()
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.SimilarityCap == 0 {
		cfg.SimilarityCap = 0.3
	}
}

// IterationRecord captures one accepted substitution, for the paper's
// per-iteration figures (Fig. 1, Fig. 3).
type IterationRecord struct {
	Iter       int
	Target     string  // name of the substituted signal
	Sub        string  // name of the substitute ("const0"/"const1")
	Inverted   bool    // complemented substitution
	EstGain    float64 // predicted area gain of the chosen AT
	EstDelta   float64 // estimated increased error of the chosen AT
	EstAccum   float64 // accumulated estimate (the EER curve of Fig. 3)
	ActualErr  float64 // measured error after applying, same pattern set
	Area       float64 // circuit area after applying
	Candidates int     // candidates evaluated this iteration
	Feasible   int     // candidates within the remaining budget
	Exact      bool    // chosen estimate carried the exactness certificate
	// Drift is ActualErr − (error before this iteration + EstDelta): the
	// estimator error realised by this substitution. Zero (up to float
	// noise) whenever Exact is set or the estimate was verified exactly.
	Drift    float64
	CPMTime  time.Duration
	IterTime time.Duration
}

// Result is the outcome of a flow run.
type Result struct {
	Approx       *circuit.Network
	OriginalArea float64
	FinalArea    float64
	// FinalError is measured on the flow's pattern set against the golden
	// circuit after the last accepted substitution.
	FinalError float64
	Iterations []IterationRecord
	// NumIterations counts accepted substitutions even when KeepTrace is
	// off.
	NumIterations int
	TotalTime     time.Duration
	CPMTime       time.Duration // total time spent building CPMs
	EstimateTime  time.Duration // total time spent estimating candidates
	// Phases is the per-phase wall-time (and, when a Tracer or Metrics
	// registry was configured, allocation) breakdown of the whole run
	// across the five flow phases.
	Phases obs.PhaseReport
}

// AreaRatio returns FinalArea / OriginalArea.
func (r *Result) AreaRatio() float64 {
	if r.OriginalArea == 0 {
		return 1
	}
	return r.FinalArea / r.OriginalArea
}

// ReplayTrace re-emits the run's recorded trace through tr: the aggregate
// phase spans, then one iteration + accept event per KeepTrace record.
// This lets a run that was executed without a tracer (or whose Result was
// loaded elsewhere) feed the same JSONL exporter as a live run.
func (r *Result) ReplayTrace(tr obs.Tracer) {
	if tr == nil {
		return
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		st := r.Phases.Stats[p]
		if st.Count == 0 {
			continue
		}
		tr.OnPhase(obs.PhaseInfo{Phase: p, Duration: st.Time, Mem: st.Mem})
	}
	prevErr := 0.0
	for _, it := range r.Iterations {
		tr.OnIteration(obs.IterationInfo{
			Iter:       it.Iter,
			CurErr:     prevErr,
			Candidates: it.Candidates,
			Feasible:   it.Feasible,
			Accepted:   true,
			Duration:   it.IterTime,
		})
		tr.OnAccept(obs.AcceptInfo{
			Iter:      it.Iter,
			Target:    it.Target,
			Sub:       it.Sub,
			Inverted:  it.Inverted,
			Predicted: it.ActualErr - it.Drift,
			Actual:    it.ActualErr,
			Drift:     it.Drift,
			Exact:     it.Exact,
			Area:      it.Area,
		})
		prevErr = it.ActualErr
	}
}

// runObs bundles the optional observability sinks of one run. A nil
// *runObs means "not observed": every method nil-checks the receiver
// first, so the flow body calls them unconditionally and the unobserved
// path costs one predictable branch — and, critically, zero allocations,
// because event structs are only built after the nil checks pass.
type runObs struct {
	tracer      obs.Tracer
	reg         *obs.Registry
	net         *circuit.Network
	iters       *obs.Counter
	cands       *obs.Counter
	accepts     *obs.Counter
	rollbacks   *obs.Counter
	acceptDrift *obs.DriftRecorder
	verifyDrift *obs.DriftRecorder

	// Confidence accounting for the M-sample MC estimate. conf is non-nil
	// only for metered ER runs; erMetric/threshold let a tracer-only run
	// still compute per-accept intervals.
	conf      *obs.RunStats
	erMetric  bool
	threshold float64

	// Incremental-engine accounting: nodes resimulated by cone-scoped
	// resimulation, CPM rows recomputed by dirty-region refresh, and the
	// per-refresh dirty fraction distribution.
	resimNodes  *obs.Counter
	refreshRows *obs.Counter
	dirtyFrac   *obs.Histogram

	// emitCands caches obs.WantsCandidates(tracer): when the attached
	// tracer declines the candidate firehose (a StreamTracer or JSONLTracer
	// with EmitCandidates off, a FlightRecorder), the scoring loop skips
	// building CandidateInfo — including the name lookups — entirely, which
	// keeps the per-candidate path allocation-identical to the nil-tracer
	// path even with live subscribers attached.
	emitCands bool
}

func newRunObs(cfg *Config, net *circuit.Network) *runObs {
	if cfg.Tracer == nil && cfg.Metrics == nil {
		return nil
	}
	o := &runObs{
		tracer:    cfg.Tracer,
		reg:       cfg.Metrics,
		net:       net,
		erMetric:  cfg.Metric == core.MetricER,
		threshold: cfg.Threshold,
		emitCands: obs.WantsCandidates(cfg.Tracer),
	}
	if reg := cfg.Metrics; reg != nil {
		o.iters = reg.Counter("sasimi_iterations_total")
		o.cands = reg.Counter("sasimi_candidates_scored_total")
		o.accepts = reg.Counter("sasimi_accepts_total")
		o.rollbacks = reg.Counter("sasimi_rollbacks_total")
		o.acceptDrift = obs.NewDriftRecorder(reg, "sasimi_accept_drift")
		o.verifyDrift = obs.NewDriftRecorder(reg, "sasimi_verify_drift")
		o.resimNodes = reg.Counter("sasimi_resim_nodes_total")
		o.refreshRows = reg.Counter("sasimi_cpm_refresh_rows_total")
		o.dirtyFrac = reg.Histogram("sasimi_cpm_dirty_fraction",
			[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1})
		if o.erMetric {
			o.conf = obs.NewRunStats(reg, "sasimi", cfg.Threshold)
		}
	}
	return o
}

func (o *runObs) candidateScored(iter int, c *Candidate) {
	if o == nil {
		return
	}
	if o.cands != nil {
		o.cands.Inc()
	}
	if o.emitCands {
		o.tracer.OnCandidate(obs.CandidateInfo{
			Iter:     iter,
			Target:   o.net.NameOf(c.Target),
			Sub:      subName(o.net, c),
			Inverted: c.Inverted,
			Delta:    c.Delta,
			Gain:     c.AreaGain,
			Score:    c.Score,
			Exact:    c.Exact,
		})
	}
}

func (o *runObs) verified(iter int, c *Candidate, batchDelta, exactDelta float64, wasExact bool) {
	if o == nil {
		return
	}
	if o.verifyDrift != nil {
		o.verifyDrift.Record(batchDelta, exactDelta, wasExact)
	}
}

// resimmed records one cone-scoped resimulation of n nodes.
func (o *runObs) resimmed(n int) {
	if o == nil || o.resimNodes == nil {
		return
	}
	o.resimNodes.Add(int64(n))
}

// cpmRefreshed records one dirty-region CPM refresh.
func (o *runObs) cpmRefreshed(stats core.RefreshStats) {
	if o == nil {
		return
	}
	if o.refreshRows != nil {
		o.refreshRows.Add(int64(stats.DirtyRows))
	}
	if o.dirtyFrac != nil && stats.TotalRows > 0 {
		o.dirtyFrac.Observe(float64(stats.DirtyRows) / float64(stats.TotalRows))
	}
}

func (o *runObs) iteration(iter int, curErr float64, cands, feasible int, accepted bool, d time.Duration) {
	if o == nil {
		return
	}
	if o.iters != nil {
		o.iters.Inc()
	}
	if o.tracer != nil {
		o.tracer.OnIteration(obs.IterationInfo{
			Iter:       iter,
			CurErr:     curErr,
			Candidates: cands,
			Feasible:   feasible,
			Accepted:   accepted,
			Duration:   d,
		})
	}
}

func (o *runObs) accepted(iter int, target, sub string, inverted bool, predicted, actual float64, exact bool, area float64, deltaEst float64, errCount, m int64) {
	if o == nil {
		return
	}
	if o.accepts != nil {
		o.accepts.Inc()
	}
	if o.acceptDrift != nil {
		o.acceptDrift.Record(predicted, actual, exact)
	}
	// Confidence intervals exist only when the metric is a Binomial
	// proportion over the M samples (ER); for AEM the fields stay zero and
	// ErrCI.Valid() is false.
	var (
		errCI    obs.Interval
		deltaHW  float64
		adequate bool
		mInfo    int
	)
	if o.erMetric && m > 0 && (o.conf != nil || o.tracer != nil) {
		errCI, deltaHW, adequate = o.conf.RecordAccept(errCount, m, deltaEst)
		if o.conf == nil {
			// Nil RunStats computes the interval but cannot know the
			// threshold; settle adequacy here for the tracer event.
			adequate = !errCI.Straddles(o.threshold)
		}
		mInfo = int(m)
	}
	if o.tracer != nil {
		o.tracer.OnAccept(obs.AcceptInfo{
			Iter:       iter,
			Target:     target,
			Sub:        sub,
			Inverted:   inverted,
			Predicted:  predicted,
			Actual:     actual,
			Drift:      actual - predicted,
			Exact:      exact,
			Area:       area,
			M:          mInfo,
			ErrCI:      errCI,
			DeltaHW:    deltaHW,
			CIAdequate: adequate,
		})
	}
}

func (o *runObs) rolledBack() {
	if o == nil || o.rollbacks == nil {
		return
	}
	o.rollbacks.Inc()
}

// Run executes the SASIMI flow on a copy of golden and returns the
// approximate circuit with the measured error within cfg.Threshold.
func Run(golden *circuit.Network, cfg Config) (*Result, error) {
	return RunContext(context.Background(), golden, cfg)
}

// RunContext is Run with cooperative cancellation: ctx is checked at every
// iteration boundary and inside the pattern-sharded scoring dispatch. On
// cancellation the flow returns the partial Result accumulated so far —
// every accepted substitution up to the abort is intact and measured —
// together with ctx.Err().
func RunContext(goCtx context.Context, golden *circuit.Network, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.fillDefaults()
	if err := cfg.Budget.Validate("sasimi"); err != nil {
		return nil, err
	}
	if cfg.Patterns != nil && cfg.Patterns.NumPatterns() == 0 {
		return nil, fmt.Errorf("sasimi: %w: empty Patterns override", flow.ErrNoPatterns)
	}
	if cfg.Metric == core.MetricAEM && golden.NumOutputs() > 63 {
		return nil, fmt.Errorf("sasimi: AEM flow needs <= 63 outputs, have %d", golden.NumOutputs())
	}
	if err := golden.Validate(); err != nil {
		return nil, fmt.Errorf("sasimi: invalid input network: %w", err)
	}

	// TrackMem (ReadMemStats per phase span) keys off the caller's sinks,
	// computed before the timeline tracer is merged in: attaching only a
	// Timeline must not add stop-the-world sampling to the run.
	observed := cfg.Tracer != nil || cfg.Metrics != nil
	if cfg.Timeline != nil {
		cfg.Tracer = obs.Multi(cfg.Tracer, timeline.NewFlowTracer(cfg.Timeline))
	}
	prof := &obs.Profile{Tracer: cfg.Tracer, TrackMem: observed}

	pool := par.NewPool(cfg.Workers)
	defer pool.Close()
	if cfg.Timeline != nil {
		pool.AttachTimeline(cfg.Timeline, true)
	}
	if cfg.Metrics != nil {
		// Live worker-utilization / inflight gauges plus Go runtime health
		// (sched latency, GC pauses, goroutines), refreshed while the run
		// is in flight and finalised when the flow returns.
		stopSampler := pool.SampleInto(cfg.Metrics, 0)
		defer stopSampler()
		stopRuntime := obs.StartRuntimeSampler(cfg.Metrics, 0)
		defer stopRuntime()
	}

	sp := prof.Begin(obs.PhasePatternGen)
	patterns := cfg.Patterns
	if patterns == nil {
		patterns = sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	}
	prof.End(sp)

	sp = prof.Begin(obs.PhaseSimulate)
	goldenVals := sim.SimulateParallel(golden, patterns, pool)
	goldenOut := sim.OutputMatrix(golden, goldenVals)
	prof.End(sp)

	approx := golden.Clone()
	est := newEstimator(cfg.Estimator)
	o := newRunObs(&cfg, approx)

	res := &Result{
		Approx:       approx,
		OriginalArea: cfg.Library.NetworkArea(golden),
	}
	res.FinalArea = res.OriginalArea

	estAccum := 0.0
	scratch := bitvec.New(patterns.NumPatterns())
	change := bitvec.New(patterns.NumPatterns())
	var vscratch verifyScratch

	// The incremental engine carries net+vals+error-state+CPM across
	// iterations; the gather cache carries candidate enumeration state.
	// After an accept, pendingEdit/pendingChanged describe the surgery for
	// the next iteration's cache update. With the engine off, a fresh
	// Engine per iteration reproduces the legacy rebuild-from-scratch
	// sequence operation for operation.
	incremental := cfg.Incremental.enabled()
	var (
		eng            *core.Engine
		cache          *gatherCache
		pendingEdit    *core.Edit
		pendingChanged []circuit.NodeID
		runErr         error
	)

loop:
	for iter := 1; ; iter++ {
		if err := goCtx.Err(); err != nil {
			runErr = err
			break loop
		}
		if cfg.MaxIterations > 0 && iter > cfg.MaxIterations {
			break
		}
		iterStart := time.Now()
		prof.Iter = iter
		cfg.Timeline.SetIter(iter)

		sp = prof.Begin(obs.PhaseSimulate)
		if eng == nil || !incremental {
			eng = core.NewEngine(approx, goldenOut, patterns, pool)
		}
		vals, st := eng.Vals, eng.St
		prof.End(sp)
		curErr := cfg.Metric.Value(st)
		res.FinalError = curErr

		ictx := &iterContext{net: approx, vals: vals, st: st, metric: cfg.Metric,
			pool: pool, engine: eng, goCtx: goCtx}
		sp = prof.Begin(obs.PhaseCPMBuild)
		est.prepare(ictx)
		prof.End(sp)
		var cpmTime time.Duration
		if ictx.cpm != nil {
			cpmTime = ictx.cpm.BuildTime()
			res.CPMTime += cpmTime
			if stats, full := eng.LastRefresh(); !full {
				o.cpmRefreshed(stats)
			}
		}

		sp = prof.Begin(obs.PhaseEstimate)
		arrival := cfg.Library.NodeArrival(approx)
		invDelay := cfg.Library.GateDelay(circuit.KindNot)
		var cands []Candidate
		if incremental {
			env := newGatherEnv(approx, vals, &cfg, arrival, invDelay)
			var gerr error
			if cache == nil {
				cache = &gatherCache{}
				cands, gerr = cache.full(goCtx, env, pool)
			} else {
				cands, gerr = cache.update(goCtx, env, pendingEdit, pendingChanged, pool)
			}
			if gerr != nil {
				// A cancelled gather leaves the cache partially written;
				// drop it so a hypothetical resume cannot read torn state.
				cache = nil
			}
		} else {
			cands = gatherCandidatesParallel(goCtx, approx, vals, &cfg, arrival, invDelay, pool)
		}
		if err := goCtx.Err(); err != nil {
			prof.End(sp)
			runErr = err
			break loop
		}
		if cfg.verifyIncremental && incremental {
			if err := crossCheckIncremental(approx, vals, &cfg, arrival, invDelay, pool, cands, ictx.cpm); err != nil {
				prof.End(sp)
				return nil, err
			}
		}
		if len(cands) == 0 {
			prof.End(sp)
			o.iteration(iter, curErr, 0, 0, false, time.Since(iterStart))
			break
		}

		// Estimate the increased error of every candidate (the batch step)
		// and pick the best feasible one by ΔArea/ΔError score.
		estStart := time.Now()
		best, feasible := scoreCandidatesMaybeSharded(ictx, est, cands, curErr, cfg.Threshold,
			scratch, change, pool, o, iter)
		prof.End(sp)
		if err := goCtx.Err(); err != nil {
			runErr = err
			break loop
		}

		sp = prof.Begin(obs.PhaseVerifyApply)
		if cfg.VerifyTopK > 0 && cfg.Estimator != EstimatorFull && len(feasible) > 0 {
			tlv := cfg.Timeline.Start("sasimi.verify_topk", obs.PhaseVerifyApply)
			var verr error
			best, verr = verifyTopK(goCtx, approx, vals, st, &cfg, cands, feasible, curErr, scratch, &vscratch, pool, o, iter)
			cfg.Timeline.End(tlv)
			if verr != nil {
				prof.End(sp)
				runErr = verr
				break loop
			}
		}
		res.EstimateTime += time.Since(estStart)
		if best == -1 {
			prof.End(sp)
			o.iteration(iter, curErr, len(cands), len(feasible), false, time.Since(iterStart))
			break // nothing fits in the remaining budget
		}
		chosen := cands[best]

		// Apply the substitution on a backup so an over-budget result can
		// be rolled back, then measure the actual error (paper §3.2).
		tla := cfg.Timeline.Start("sasimi.apply", obs.PhaseVerifyApply)
		backup := approx.Clone()
		ed := applyCandidate(approx, &chosen)
		if cfg.CheckInvariants {
			if err := checkAcyclic(approx, backup, &chosen); err != nil {
				prof.End(sp)
				return nil, err
			}
		}
		cfg.Timeline.End(tla)

		// Measure the actual error on the same pattern set. Incrementally:
		// resimulate only the edit's fanout cones in place and refresh the
		// error state — bit-identical to the full resimulation by
		// construction. The full path rebuilds everything next iteration.
		tlm := cfg.Timeline.Start("sasimi.measure", obs.PhaseVerifyApply)
		var actual float64
		var wrongCount int64
		if incremental {
			resimmed, valsChanged := eng.Apply(ed)
			o.resimmed(len(resimmed))
			pendingEdit, pendingChanged = &ed, valsChanged
			actual = cfg.Metric.Value(eng.St)
			wrongCount = int64(eng.St.WrongAny.Count())
		} else {
			newVals := sim.SimulateParallel(approx, patterns, pool)
			newSt := emetric.NewState(goldenOut, sim.OutputMatrix(approx, newVals))
			actual = cfg.Metric.Value(newSt)
			wrongCount = int64(newSt.WrongAny.Count())
		}
		cfg.Timeline.End(tlm)
		predicted := curErr + chosen.Delta
		if actual > cfg.Threshold+1e-12 {
			// The estimate was wrong and the budget is blown: restore the
			// previous circuit and stop, as the paper's flow does. The
			// engine's derived state is stale for the restored circuit, but
			// the flow ends here so nothing reads it again.
			*approx = *backup
			prof.End(sp)
			o.rolledBack()
			o.iteration(iter, curErr, len(cands), len(feasible), false, time.Since(iterStart))
			break
		}
		prof.End(sp)

		estAccum += chosen.Delta
		res.NumIterations++
		res.FinalArea = cfg.Library.NetworkArea(approx)
		res.FinalError = actual
		targetName := backup.NameOf(chosen.Target)
		subN := subName(backup, &chosen)
		o.accepted(iter, targetName, subN, chosen.Inverted, predicted, actual, chosen.Exact, res.FinalArea,
			chosen.Delta, wrongCount, int64(patterns.NumPatterns()))
		o.iteration(iter, curErr, len(cands), len(feasible), true, time.Since(iterStart))
		if cfg.KeepTrace {
			res.Iterations = append(res.Iterations, IterationRecord{
				Iter:       iter,
				Target:     targetName,
				Sub:        subN,
				Inverted:   chosen.Inverted,
				EstGain:    chosen.AreaGain,
				EstDelta:   chosen.Delta,
				EstAccum:   estAccum,
				ActualErr:  actual,
				Area:       res.FinalArea,
				Candidates: len(cands),
				Feasible:   len(feasible),
				Exact:      chosen.Exact,
				Drift:      actual - predicted,
				CPMTime:    cpmTime,
				IterTime:   time.Since(iterStart),
			})
		}
	}

	res.TotalTime = time.Since(start)
	res.Phases = prof.Report()
	prof.Export(cfg.Metrics, "sasimi")
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("sasimi_parallel_speedup").Set(pool.Speedup())
	}
	if runErr != nil {
		// Cancelled: the partial result is consistent (accepted
		// substitutions only), returned alongside the context error.
		return res, runErr
	}
	if err := approx.Validate(); err != nil {
		return nil, fmt.Errorf("sasimi: flow corrupted the network: %w", err)
	}
	return res, nil
}

// crossCheckIncremental is the verifyIncremental paranoia pass: it rebuilds
// the candidate list (and, when present, the CPM) from scratch and compares
// against the incremental results field for field.
func crossCheckIncremental(net *circuit.Network, vals *sim.Values, cfg *Config,
	arrival []float64, invDelay float64, pool *par.Pool, cands []Candidate, cpm *core.CPM) error {

	full := gatherCandidatesParallel(context.Background(), net, vals, cfg, arrival, invDelay, pool)
	if len(full) != len(cands) {
		return fmt.Errorf("sasimi: incremental gather diverged: %d candidates vs %d full", len(cands), len(full))
	}
	for i := range full {
		a, b := &cands[i], &full[i]
		if a.Target != b.Target || a.Sub != b.Sub || a.Inverted != b.Inverted ||
			a.Const != b.Const || a.ConstVal != b.ConstVal ||
			a.DiffProb != b.DiffProb || a.AreaGain != b.AreaGain {
			return fmt.Errorf("sasimi: incremental gather diverged at candidate %d: %+v vs full %+v", i, *a, *b)
		}
	}
	if cpm != nil {
		fresh := core.BuildParallel(net, vals, pool)
		for _, id := range net.LiveNodes() {
			for o := 0; o < fresh.NumOutputs(); o++ {
				if !cpm.Prop(id, o).Equal(fresh.Prop(id, o)) {
					return fmt.Errorf("sasimi: incremental CPM diverged at node %d output %d", id, o)
				}
			}
		}
	}
	return nil
}

// checkAcyclic closes the documented ReplaceFanin gap: circuit editing
// does not itself forbid a substitution that closes a combinational loop
// (gatherCandidates screens for it, but the screen and the surgery are
// separate code paths). Under Config.CheckInvariants every accepted
// substitution is re-checked here, turning what would be a TopoOrder
// panic inside the next simulation into an error that names the cycle.
func checkAcyclic(approx, backup *circuit.Network, c *Candidate) error {
	cyc := analyze.FindCycle(approx)
	if cyc == nil {
		return nil
	}
	return fmt.Errorf("sasimi: substituting %s <- %s created combinational cycle %s",
		backup.NameOf(c.Target), subName(backup, c), cycleNames(approx, cyc))
}

// cycleNames renders a cycle as "a -> b -> c -> a" for error messages.
func cycleNames(net *circuit.Network, cyc []circuit.NodeID) string {
	names := make([]string, 0, len(cyc)+1)
	for _, id := range cyc {
		names = append(names, net.NameOf(id))
	}
	if len(cyc) > 0 {
		names = append(names, net.NameOf(cyc[0]))
	}
	return strings.Join(names, " -> ")
}

// scoreCandidates runs the batch estimation inner loop: it fills
// Delta/Exact/Score for every candidate and returns the index of the best
// feasible candidate (-1 if none fits the remaining budget) plus the list
// of feasible indices. With o == nil this is exactly the pre-observability
// hot loop — TestNilTracerScoringAllocs pins that it allocates nothing
// beyond the estimator's own scratch work.
//
//als:allocfree
func scoreCandidates(est estimator, cands []Candidate, vals *sim.Values,
	curErr, threshold float64, scratch, change *bitvec.Vec, o *runObs, iter int) (int, []int) {

	best := -1
	var feasible []int
	for i := range cands {
		c := &cands[i]
		sub := c.substituteValue(vals, scratch)
		change.Xor(vals.Node(c.Target), sub)
		c.Delta = est.delta(c.Target, sub, change)
		c.Exact = est.exactFor(c.Target)
		c.Score = score(c.AreaGain, c.Delta, vals.M)
		o.candidateScored(iter, c)
		if curErr+c.Delta > threshold+1e-12 {
			continue // estimated to bust the budget
		}
		feasible = append(feasible, i) //als:alloc-ok amortised grow of the returned index list; the pin's baseline absorbs it
		if best == -1 || c.Score > cands[best].Score {
			best = i
		}
	}
	return best, feasible
}

// score ranks candidates: area gain per unit of increased error. ATs whose
// estimated error is non-positive are strictly better than any
// error-increasing AT; among them a larger gain and a more negative delta
// win. The floor of one tenth of a pattern keeps the ratio finite.
func score(gain, delta float64, m int) float64 {
	floor := 0.1 / float64(m)
	if delta <= 0 {
		// Map into a band above every positive-delta score.
		return 1e12 * (gain + 1) * (1 - delta)
	}
	if delta < floor {
		delta = floor
	}
	return gain / delta
}

func subName(n *circuit.Network, c *Candidate) string {
	if c.Const {
		if c.ConstVal {
			return "const1"
		}
		return "const0"
	}
	return n.NameOf(c.Sub)
}

// applyCandidate performs the netlist surgery for an accepted candidate and
// returns the structural edit record the incremental engine consumes: the
// replacement signal, the nodes rewired onto it (the target's former
// fanouts, captured before the rewiring), any added node, and the swept
// region with its live boundary.
func applyCandidate(net *circuit.Network, c *Candidate) core.Edit {
	var ed core.Edit
	var repl circuit.NodeID
	switch {
	case c.Const:
		repl = net.AddConst(c.ConstVal)
		ed.Added = []circuit.NodeID{repl}
	case c.Inverted:
		repl = net.AddGate(circuit.KindNot, c.Sub)
		ed.Added = []circuit.NodeID{repl}
	default:
		repl = c.Sub
	}
	ed.Repl = repl
	ed.Rewired = append([]circuit.NodeID(nil), net.Fanouts(c.Target)...)
	net.ReplaceNode(c.Target, repl)
	ed.Removed, ed.Boundary = net.SweepFromCollect(c.Target)
	return ed
}

// EstimateAll exposes the batch estimation step in isolation: it returns
// every admissible candidate of the network with Delta filled in by the
// selected estimator, without applying anything. The facade and the
// examples use it to demonstrate pure batch estimation.
func EstimateAll(golden, approx *circuit.Network, cfg Config) ([]Candidate, error) {
	cfg.fillDefaults()
	if err := approx.Validate(); err != nil {
		return nil, err
	}
	pool := par.NewPool(cfg.Workers)
	defer pool.Close()
	if cfg.Timeline != nil {
		pool.AttachTimeline(cfg.Timeline, true)
	}
	patterns := cfg.Patterns
	if patterns == nil {
		patterns = sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	}
	goldenVals := sim.SimulateParallel(golden, patterns, pool)
	vals := sim.SimulateParallel(approx, patterns, pool)
	st := emetric.NewState(sim.OutputMatrix(golden, goldenVals), sim.OutputMatrix(approx, vals))

	est := newEstimator(cfg.Estimator)
	ctx := &iterContext{net: approx, vals: vals, st: st, metric: cfg.Metric, pool: pool}
	est.prepare(ctx)

	arrival := cfg.Library.NodeArrival(approx)
	cands := gatherCandidatesParallel(context.Background(), approx, vals, &cfg, arrival, cfg.Library.GateDelay(circuit.KindNot), pool)
	scratch := bitvec.New(patterns.NumPatterns())
	change := bitvec.New(patterns.NumPatterns())
	o := newRunObs(&cfg, approx)
	scoreCandidatesMaybeSharded(ctx, est, cands, 0, cfg.Threshold, scratch, change, pool, o, 1)
	return cands, nil
}
