package sasimi

import (
	"context"
	"runtime"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// verifyWorkers is the sweep of the parallel-verify differential suite:
// 1 (the serial ExactDelta reference), the powers-of-two the pool shards
// cleanly over, a prime that forces ragged pattern shards, and the host's
// CPU count.
func verifyWorkers() []int {
	ws := []int{1, 2, 4, 7}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 7 {
		ws = append(ws, n)
	}
	return ws
}

func runVerifyCase(t *testing.T, tc differentialCase, workers int, mode IncrementalMode) *Result {
	t.Helper()
	golden, err := bench.ByName(tc.bench)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      tc.metric,
			Threshold:   tc.threshold,
			NumPatterns: 1000,
			Seed:        11,
		},
		Estimator:       EstimatorBatch,
		Workers:         workers,
		Incremental:     mode,
		VerifyTopK:      4,
		KeepTrace:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelVerifyTopKBitIdentical is the bit-identity contract of the
// parallel verifier: with VerifyTopK engaged, every (circuit, metric,
// worker count, incremental mode) cell must reproduce the serial
// single-worker baseline exactly — same accept sequence with the same
// exact deltas, same iteration trace, same final error/area, structurally
// identical final netlist.
func TestParallelVerifyTopKBitIdentical(t *testing.T) {
	accepted := false
	for _, tc := range differentialGrid {
		baseline := runVerifyCase(t, tc, 1, IncrementalOff)
		// par16 is a parity tree: no pair of internal signals is similar,
		// so it legitimately accepts nothing — the differential then pins
		// that no worker count invents an accept. The other circuits must
		// make progress or the suite is vacuous.
		if baseline.NumIterations > 0 {
			accepted = true
		} else if tc.bench != "par16" {
			t.Fatalf("%s/%s: baseline accepted nothing; differential check is vacuous",
				tc.bench, tc.metric)
		}
		for _, mode := range []IncrementalMode{IncrementalOff, IncrementalOn} {
			modeName := "full"
			if mode == IncrementalOn {
				modeName = "inc"
			}
			for _, w := range verifyWorkers() {
				got := runVerifyCase(t, tc, w, mode)
				label := tc.bench + "/" + tc.metric.String() + "/" + modeName + "/w" + itoa(w)
				compareResults(t, label, got, baseline)
			}
		}
	}
	if !accepted {
		t.Fatal("no grid cell accepted anything; the whole suite is vacuous")
	}
}

// verifyFixture builds the inputs verifyTopKParallel needs outside a flow:
// a simulated network, an error state against itself as golden, and a
// gathered candidate list.
func verifyFixture(t testing.TB, name string, metric core.Metric, k int) (*circuit.Network,
	*sim.Values, *emetric.State, *Config, []Candidate, []int) {
	t.Helper()
	net, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Budget: flow.Budget{
		Metric:      metric,
		Threshold:   0.5,
		NumPatterns: 1000,
		Seed:        3,
	}}
	cfg.fillDefaults()
	patterns := sim.RandomPatterns(net.NumInputs(), cfg.NumPatterns, cfg.Seed)
	vals := sim.Simulate(net, patterns)
	st := emetric.NewState(sim.OutputMatrix(net, vals), sim.OutputMatrix(net, vals))
	arrival := cfg.Library.NodeArrival(net)
	cands := gatherCandidates(net, vals, cfg, arrival, cfg.Library.GateDelay(circuit.KindNot))
	if len(cands) < k {
		t.Fatalf("fixture %s gathered only %d candidates, need %d", name, len(cands), k)
	}
	top := make([]int, k)
	for i := range top {
		top[i] = i
	}
	return net, vals, st, cfg, cands, top
}

// TestParallelVerifyMatchesExactDelta cross-checks the overlay kernel
// against core.ExactDelta candidate by candidate, for both metrics, at a
// worker count that produces multiple pattern shards.
func TestParallelVerifyMatchesExactDelta(t *testing.T) {
	for _, metric := range []core.Metric{core.MetricER, core.MetricAEM} {
		net, vals, st, cfg, cands, top := verifyFixture(t, "rca8", metric, 8)
		want := make([]float64, len(top))
		scratch := bitvec.New(vals.M)
		for i, idx := range top {
			c := &cands[idx]
			want[i] = core.ExactDelta(net, vals, c.Target, c.substituteValue(vals, scratch), st, metric)
		}
		pool := par.NewPool(4)
		var vs verifyScratch
		if _, err := verifyTopKParallel(context.Background(), net, vals, st, cfg,
			cands, top, 0, &vs, pool, nil, 1); err != nil {
			t.Fatal(err)
		}
		pool.Close()
		for i, idx := range top {
			if got := cands[idx].Delta; got != want[i] {
				t.Errorf("%s cand %d: parallel delta %v != ExactDelta %v", metric, idx, got, want[i])
			}
			if !cands[idx].Exact {
				t.Errorf("%s cand %d: Exact not set", metric, idx)
			}
		}
	}
}

// TestParallelVerifySteadyStateAllocs pins the pooled-scratch contract of
// the verifier: after a warm-up call, re-verifying the same top-K set on a
// single-worker pool (the inline dispatch path, where the pool machinery
// itself adds nothing) costs at most the two dispatch closures — the
// overlay rows, cone scratch, shard plan and partial arrays are all
// reused.
func TestParallelVerifySteadyStateAllocs(t *testing.T) {
	net, vals, st, cfg, cands, top := verifyFixture(t, "rca8", core.MetricER, 8)
	pool := par.NewPool(1)
	defer pool.Close()
	var vs verifyScratch
	ctx := context.Background()
	if _, err := verifyTopKParallel(ctx, net, vals, st, cfg, cands, top, 0, &vs, pool, nil, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := verifyTopKParallel(ctx, net, vals, st, cfg, cands, top, 0, &vs, pool, nil, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state verifyTopKParallel allocates %.1f times per run, want <= 2 (dispatch closures)", allocs)
	}
}

// TestVerifyEvalShardZeroAlloc pins the hot kernel itself at exactly zero:
// prepare and evalShard over warmed scratch must not touch the heap, per
// their //als:allocfree annotations.
func TestVerifyEvalShardZeroAlloc(t *testing.T) {
	net, vals, _, cfg, cands, top := verifyFixture(t, "rca8", core.MetricAEM, 4)
	words := bitvec.Words(vals.M)
	order := net.TopoOrder()
	outputs := net.Outputs()
	slots := net.NumSlots()
	shards := par.Shards(vals.M, 2)
	var vs verifyScratch
	vs.cands = make([]verifyCandScratch, 1)
	vs.workers = make([]verifyWorkerScratch, 1)
	vs.erWrong = make([]int64, len(shards))
	vs.aemSum = make([]float64, len(shards))
	vs.uRows = make([][]uint64, len(outputs))
	vs.valRows = make([][]uint64, len(outputs))
	for oi, out := range outputs {
		vs.uRows[oi] = vals.Node(out.Node).WordsSlice()
		vs.valRows[oi] = vals.Node(out.Node).WordsSlice()
	}
	c := &cands[top[0]]
	cs := &vs.cands[0]
	ws := &vs.workers[0]
	lastWord := words - 1
	tail := bitvec.TailMask(vals.M)
	// Warm all amortised scratch.
	cs.prepare(net, order, outputs, c.Target, slots, words)
	vs.evalShard(net, vals, c, cs, shards[0], ws, cfg.Metric, lastWord, tail, 0)
	allocs := testing.AllocsPerRun(20, func() {
		cs.prepare(net, order, outputs, c.Target, slots, words)
		for si := range shards {
			vs.evalShard(net, vals, c, cs, shards[si], ws, cfg.Metric, lastWord, tail, si)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed prepare+evalShard allocates %.1f times per run, want 0", allocs)
	}
}
