// Package benchfmt reads and writes the ISCAS89/85-style ".bench" netlist
// format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	n1 = AND(a, b)
//	f  = NOT(n1)
//
// Supported gate operators: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF,
// MUX (3 operands: sel, d0, d1), and the constants CONST0/CONST1 (also
// accepted as GND/VDD with no operands). An OUTPUT may name any signal.
// This is the loader for real ISCAS85 circuits if the user has them; the
// rest of the library only needs the in-memory generators.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"batchals/internal/circuit"
)

// Parse reads a .bench netlist into a Network.
func Parse(r io.Reader, name string) (*circuit.Network, error) {
	type rawGate struct {
		out  string
		op   string
		args []string
		line int
	}
	var (
		inputs  []string
		outputs []string
		gates   []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			arg, err := directiveArg(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, arg)
		case matchDirective(line, "OUTPUT"):
			arg, err := directiveArg(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("benchfmt: line %d: expected assignment: %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("benchfmt: line %d: malformed gate: %q", lineNo, line)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			argStr := strings.TrimSpace(rhs[open+1 : close])
			var args []string
			if argStr != "" {
				for _, a := range strings.Split(argStr, ",") {
					args = append(args, strings.TrimSpace(a))
				}
			}
			gates = append(gates, rawGate{out: out, op: op, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}

	n := circuit.New(name)
	ids := make(map[string]circuit.NodeID, len(inputs)+len(gates))
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("benchfmt: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}

	// Gates may be declared in any order; resolve iteratively.
	pending := gates
	for len(pending) > 0 {
		progress := false
		var next []rawGate
		for _, g := range pending {
			ready := true
			for _, a := range g.args {
				if _, ok := ids[a]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			id, err := buildGate(n, g.op, g.args, ids, g.line)
			if err != nil {
				return nil, err
			}
			if _, dup := ids[g.out]; dup {
				return nil, fmt.Errorf("benchfmt: line %d: signal %q defined twice", g.line, g.out)
			}
			n.SetName(id, g.out)
			ids[g.out] = id
			progress = true
		}
		if !progress {
			var missing []string
			for _, g := range next {
				for _, a := range g.args {
					if _, ok := ids[a]; !ok {
						missing = append(missing, a)
					}
				}
			}
			sort.Strings(missing)
			return nil, fmt.Errorf("benchfmt: unresolved signals (cycle or undeclared): %v", dedup(missing))
		}
		pending = next
	}

	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("benchfmt: OUTPUT(%s) names an undefined signal", out)
		}
		n.AddOutput(out, id)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("benchfmt: parsed netlist invalid: %w", err)
	}
	return n, nil
}

func buildGate(n *circuit.Network, op string, args []string, ids map[string]circuit.NodeID, line int) (circuit.NodeID, error) {
	fanins := make([]circuit.NodeID, len(args))
	for i, a := range args {
		fanins[i] = ids[a]
	}
	var kind circuit.Kind
	switch op {
	case "AND":
		kind = circuit.KindAnd
	case "OR":
		kind = circuit.KindOr
	case "NAND":
		kind = circuit.KindNand
	case "NOR":
		kind = circuit.KindNor
	case "XOR":
		kind = circuit.KindXor
	case "XNOR":
		kind = circuit.KindXnor
	case "NOT", "INV":
		kind = circuit.KindNot
	case "BUF", "BUFF":
		kind = circuit.KindBuf
	case "MUX":
		kind = circuit.KindMux
	case "CONST0", "GND":
		if len(args) != 0 {
			return 0, fmt.Errorf("benchfmt: line %d: %s takes no operands", line, op)
		}
		return n.AddConst(false), nil
	case "CONST1", "VDD":
		if len(args) != 0 {
			return 0, fmt.Errorf("benchfmt: line %d: %s takes no operands", line, op)
		}
		return n.AddConst(true), nil
	default:
		return 0, fmt.Errorf("benchfmt: line %d: unknown operator %q", line, op)
	}
	// Tolerate 1-input AND/OR etc. as buffers, which some dumps contain.
	if len(fanins) == 1 && (kind == circuit.KindAnd || kind == circuit.KindOr) {
		kind = circuit.KindBuf
	}
	if len(fanins) == 1 && (kind == circuit.KindNand || kind == circuit.KindNor) {
		kind = circuit.KindNot
	}
	if !kind.ArityOK(len(fanins)) {
		return 0, fmt.Errorf("benchfmt: line %d: %s cannot take %d operands", line, op, len(fanins))
	}
	return n.AddGate(kind, fanins...), nil
}

func matchDirective(line, dir string) bool {
	u := strings.ToUpper(line)
	return strings.HasPrefix(u, dir+"(") || strings.HasPrefix(u, dir+" ")
}

func directiveArg(line, dir string, lineNo int) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("benchfmt: line %d: malformed %s", lineNo, dir)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("benchfmt: line %d: empty %s", lineNo, dir)
	}
	return arg, nil
}

func dedup(s []string) []string {
	var out []string
	for i, x := range s {
		if i == 0 || s[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// Write renders the network in .bench format. Node names are made unique
// and file-safe automatically; outputs keep their port names.
func Write(w io.Writer, n *circuit.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s  (%d inputs, %d outputs, %d gates)\n",
		n.Name, n.NumInputs(), n.NumOutputs(), n.NumGates())

	names, used := exportNames(n)
	for _, in := range n.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", names[in])
	}
	// A primary output port is a named alias of its driver signal; emit a
	// BUF when the port name differs from the driver's. Alias ports share
	// the signal namespace, so register them in used.
	type alias struct{ port, sig string }
	var aliases []alias
	for _, o := range n.Outputs() {
		port := names[o.Node]
		if sanitizeName(o.Name) == port {
			// Driver already carries the port name: direct reference.
			fmt.Fprintf(bw, "OUTPUT(%s)\n", port)
			continue
		}
		want := sanitizeName(o.Name)
		if want == "" || used[want] {
			base := "po_" + port
			want = base
			for i := 2; used[want]; i++ {
				want = fmt.Sprintf("%s_%d", base, i)
			}
		}
		used[want] = true
		fmt.Fprintf(bw, "OUTPUT(%s)\n", want)
		aliases = append(aliases, alias{port: want, sig: port})
	}
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		op, ok := opName(kind)
		if !ok {
			return fmt.Errorf("benchfmt: cannot export kind %v", kind)
		}
		args := make([]string, len(n.Fanins(id)))
		for i, f := range n.Fanins(id) {
			args[i] = names[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", names[id], op, strings.Join(args, ", "))
	}
	for _, a := range aliases {
		fmt.Fprintf(bw, "%s = BUF(%s)\n", a.port, a.sig)
	}
	return bw.Flush()
}

func opName(k circuit.Kind) (string, bool) {
	switch k {
	case circuit.KindAnd:
		return "AND", true
	case circuit.KindOr:
		return "OR", true
	case circuit.KindNand:
		return "NAND", true
	case circuit.KindNor:
		return "NOR", true
	case circuit.KindXor:
		return "XOR", true
	case circuit.KindXnor:
		return "XNOR", true
	case circuit.KindNot:
		return "NOT", true
	case circuit.KindBuf:
		return "BUF", true
	case circuit.KindMux:
		return "MUX", true
	case circuit.KindConst0:
		return "CONST0", true
	case circuit.KindConst1:
		return "CONST1", true
	}
	return "", false
}

// sanitizeName maps a node name to the .bench-safe character set.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

// exportNames assigns a unique, non-empty file-safe name to every live
// node. Output drivers get first claim on their port names so OUTPUT
// directives can reference them directly. The used-name set is returned so
// the caller can allocate further names in the same namespace.
func exportNames(n *circuit.Network) (map[circuit.NodeID]string, map[string]bool) {
	names := make(map[circuit.NodeID]string, n.NumNodes())
	used := map[string]bool{}
	assign := func(id circuit.NodeID, want string) {
		if want == "" || used[want] {
			base := want
			if base == "" {
				base = fmt.Sprintf("n%d", id)
			}
			want = base
			for i := 2; used[want]; i++ {
				want = fmt.Sprintf("%s_%d", base, i)
			}
		}
		used[want] = true
		names[id] = want
	}
	for _, o := range n.Outputs() {
		if _, done := names[o.Node]; done {
			continue
		}
		port := sanitizeName(o.Name)
		if port != "" && !used[port] {
			assign(o.Node, port)
		}
	}
	for _, id := range n.LiveNodes() {
		if _, done := names[id]; done {
			continue
		}
		assign(id, sanitizeName(n.NameOf(id)))
	}
	return names, used
}
