package sasimi

import (
	"context"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// gatherCandidatesParallel is gatherCandidates with the per-target
// enumeration fanned out across the pool's workers. Each target's
// candidates are collected into a per-target bucket (the task index owns
// the bucket slot); concatenating the buckets in target order reproduces
// the sequential enumeration order exactly, so the final deterministic
// sort — a total order on (DiffProb, AreaGain, Target, Sub) applied to an
// identical input permutation — yields the identical candidate list at any
// worker count. The network traversals used per target (MFFC,
// MFFCExcluding, TransitiveFanoutCone) are read-only and allocate locally,
// so workers share the network safely.
func gatherCandidatesParallel(goCtx context.Context, net *circuit.Network, vals *sim.Values, cfg *Config,
	arrival []float64, invDelay float64, pool *par.Pool) []Candidate {

	if pool.Workers() <= 1 {
		return gatherCandidates(net, vals, cfg, arrival, invDelay)
	}
	env := newGatherEnv(net, vals, cfg, arrival, invDelay)
	targets := liveGateTargets(net)
	buckets := make([][]Candidate, len(targets))
	if goCtx == nil {
		goCtx = context.Background()
	}
	// Bin-pack targets (uniform cost) so each worker reuses one scratch
	// vector across its whole bin instead of allocating one per target.
	var planner par.Planner
	costs := make([]float64, len(targets))
	for i := range costs {
		costs[i] = 1
	}
	bins := planner.Plan(costs, par.PlanBins(len(targets), pool.Workers()))
	diffs := make([]*bitvec.Vec, pool.Workers())
	for i := range diffs {
		diffs[i] = bitvec.New(env.m)
	}
	pool.Label("sasimi.gather", obs.PhaseEstimate)
	if err := pool.DoCtx(goCtx, len(bins), func(w, bi int) {
		for _, ti := range bins[bi] {
			td := env.computeTarget(targets[ti], diffs[w], false)
			buckets[ti] = td.bucket
		}
	}); err != nil {
		return nil // cancelled mid-gather; the caller abandons the iteration
	}

	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	cands := make([]Candidate, 0, total)
	for _, b := range buckets {
		cands = append(cands, b...)
	}
	return sortAndCap(cands, cfg)
}

// scoreCandidatesMaybeSharded dispatches candidate scoring: the batch
// estimator on a multi-worker pool takes the pattern-sharded path, every
// other combination (full estimator mutates the value table during cone
// resimulation; local estimator is a trivial popcount; single worker is
// the legacy path whose allocation profile is pinned by
// TestNilTracerScoringAllocs) runs the sequential loop.
func scoreCandidatesMaybeSharded(ctx *iterContext, est estimator, cands []Candidate,
	curErr, threshold float64, scratch, change *bitvec.Vec, pool *par.Pool,
	o *runObs, iter int) (int, []int) {

	if _, ok := est.(*batchEstimator); ok && pool.Workers() > 1 && len(cands) > 0 {
		return scoreCandidatesSharded(ctx, cands, curErr, threshold, pool, o, iter)
	}
	return scoreCandidates(est, cands, ctx.vals, curErr, threshold, scratch, change, o, iter)
}

// scoreCandidatesSharded evaluates every candidate's batch estimate with
// the pattern space sharded across the pool's workers, then runs the
// selection loop sequentially in candidate order so feasibility and
// tie-breaking match scoreCandidates decision for decision.
//
// Each worker owns one shard: for every candidate it materialises the
// change mask for its word range only (target XOR substitute, with the
// constant and inverted cases tail-masked exactly as substituteValue's
// Fill/Not produce them) and computes the shard's partial — exact integer
// inc/dec counts for ER, the unnormalised magnitude sum for AEM. Partials
// land in per-shard slots owned by the task index and are combined in
// fixed shard order, which reproduces the sequential DeltaER/DeltaAEM
// values bit for bit (see core.DeltaERPartial / core.DeltaAEMPartial for
// the word-locality argument).
func scoreCandidatesSharded(ctx *iterContext, cands []Candidate,
	curErr, threshold float64, pool *par.Pool, o *runObs, iter int) (int, []int) {

	cpm, st, vals := ctx.cpm, ctx.st, ctx.vals
	m := vals.M
	words := bitvec.Words(m)
	shards := par.Shards(m, pool.Workers())
	aem := ctx.metric == core.MetricAEM

	// Warm the CPM's shared lazy caches from this goroutine before the
	// fan-out: AnyProp fills are atomic (racing fills would merely waste
	// work), the AEM column memo is plain and must be sequenced here.
	targets := make([]circuit.NodeID, 0, len(cands))
	seen := make(map[circuit.NodeID]bool, len(cands))
	for i := range cands {
		if !seen[cands[i].Target] {
			seen[cands[i].Target] = true
			targets = append(targets, cands[i].Target)
		}
	}
	if aem {
		cpm.EnsureAEMColumns(st)
	} else {
		cpm.EnsureAnyProp(targets)
	}

	erInc := make([][]int64, len(shards))
	erDec := make([][]int64, len(shards))
	aemMag := make([][]float64, len(shards))
	for si := range shards {
		if aem {
			aemMag[si] = make([]float64, len(cands))
		} else {
			erInc[si] = make([]int64, len(cands))
			erDec[si] = make([]int64, len(cands))
		}
	}

	goCtx := ctx.goCtx
	if goCtx == nil {
		goCtx = context.Background()
	}
	last := words - 1
	tail := bitvec.TailMask(m)
	pool.Label("sasimi.score", obs.PhaseEstimate)
	err := pool.DoCtx(goCtx, len(shards), func(_, si int) {
		sh := shards[si]
		chg := make([]uint64, words)
		for ci := range cands {
			c := &cands[ci]
			tw := vals.Node(c.Target).WordsSlice()
			var sw []uint64
			if !c.Const {
				sw = vals.Node(c.Sub).WordsSlice()
			}
			for w := sh.W0; w < sh.W1; w++ {
				var sub uint64
				switch {
				case c.Const:
					if c.ConstVal {
						sub = ^uint64(0)
						if w == last {
							sub = tail
						}
					}
				case c.Inverted:
					sub = ^sw[w]
					if w == last {
						sub &= tail
					}
				default:
					sub = sw[w]
				}
				chg[w] = tw[w] ^ sub
			}
			if aem {
				aemMag[si][ci] = cpm.DeltaAEMPartial(c.Target, chg, st, sh.W0, sh.W1)
			} else {
				inc, dec := cpm.DeltaERPartial(c.Target, chg, st, sh.W0, sh.W1)
				erInc[si][ci] = inc
				erDec[si][ci] = dec
			}
		}
	})
	if err != nil {
		// Cancelled mid-scoring: the partial results are abandoned and the
		// flow returns at its next iteration-boundary check.
		return -1, nil
	}

	best := -1
	var feasible []int
	for i := range cands {
		c := &cands[i]
		if aem {
			var total float64
			for si := range shards {
				total += aemMag[si][i]
			}
			c.Delta = total / float64(m)
		} else {
			var inc, dec int64
			for si := range shards {
				inc += erInc[si][i]
				dec += erDec[si][i]
			}
			c.Delta = (float64(inc) - float64(dec)) / float64(m)
		}
		c.Exact = cpm.ExactFor(c.Target)
		c.Score = score(c.AreaGain, c.Delta, m)
		o.candidateScored(iter, c)
		if curErr+c.Delta > threshold+1e-12 {
			continue
		}
		feasible = append(feasible, i)
		if best == -1 || c.Score > cands[best].Score {
			best = i
		}
	}
	return best, feasible
}
