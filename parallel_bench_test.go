package batchals

// BenchmarkParallelEstimate measures the pattern-sharded parallel
// estimation engine end to end on c880: one full batch-estimation pass
// (simulation, CPM construction, candidate gathering and sharded scoring)
// at 1, 2, 4 and NumCPU workers. Results are bit-identical at every
// worker count (pinned by internal/sasimi's differential suite), so the
// only thing that may vary between sub-benchmarks is time. Each
// sub-benchmark reports speedup_x against a single-worker baseline
// measured in the same process; on a single-CPU host the speedup is ~1.0
// by construction — the scaling table in the README records multi-core
// numbers.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"batchals/internal/bench"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

// parEstBaseline memoises the single-worker wall time of the benchmark's
// workload so every sub-benchmark's speedup_x shares one denominator.
var parEstBaseline struct {
	once sync.Once
	ns   float64
}

const parEstPatterns = 4096

func parEstimateOnce(b *testing.B, golden *Network, workers int) {
	cands, err := sasimi.EstimateAll(golden, golden.Clone(), sasimi.Config{
		Budget: flow.Budget{
			Metric:      ErrorRate,
			Threshold:   0.05,
			NumPatterns: parEstPatterns,
			Seed:        1,
		},
		Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(cands) == 0 {
		b.Fatal("no candidates on c880")
	}
}

func BenchmarkParallelEstimate(b *testing.B) {
	golden, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	parEstBaseline.once.Do(func() {
		parEstimateOnce(b, golden, 1) // warm caches so the baseline is not a cold start
		start := time.Now()
		parEstimateOnce(b, golden, 1)
		parEstBaseline.ns = float64(time.Since(start).Nanoseconds())
	})
	workerCounts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(benchName("w", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				parEstimateOnce(b, golden, w)
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(parEstBaseline.ns/perOp, "speedup_x")
			}
			b.ReportMetric(float64(w), "workers")
		})
	}
}
