package sim

import (
	"math/rand"
	"testing"

	"batchals/internal/circuit"
)

func adder2(t testing.TB) *circuit.Network {
	t.Helper()
	// 2-bit adder: s = a + b, 3 output bits.
	n := circuit.New("add2")
	a0 := n.AddInput("a0")
	a1 := n.AddInput("a1")
	b0 := n.AddInput("b0")
	b1 := n.AddInput("b1")
	s0 := n.AddGate(circuit.KindXor, a0, b0)
	c0 := n.AddGate(circuit.KindAnd, a0, b0)
	x1 := n.AddGate(circuit.KindXor, a1, b1)
	s1 := n.AddGate(circuit.KindXor, x1, c0)
	c1a := n.AddGate(circuit.KindAnd, a1, b1)
	c1b := n.AddGate(circuit.KindAnd, x1, c0)
	c1 := n.AddGate(circuit.KindOr, c1a, c1b)
	n.AddOutput("s0", s0)
	n.AddOutput("s1", s1)
	n.AddOutput("s2", c1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExhaustivePatternsCoverAllAssignments(t *testing.T) {
	for _, nin := range []int{1, 3, 6, 7, 8} {
		p := ExhaustivePatterns(nin)
		if p.NumPatterns() != 1<<uint(nin) {
			t.Fatalf("nin=%d: %d patterns", nin, p.NumPatterns())
		}
		seen := make(map[uint32]bool)
		for i := 0; i < p.NumPatterns(); i++ {
			var key uint32
			for k := 0; k < nin; k++ {
				if p.Bit(i, k) {
					key |= 1 << uint(k)
				}
			}
			if seen[key] {
				t.Fatalf("nin=%d: duplicate assignment %b", nin, key)
			}
			seen[key] = true
		}
	}
}

func TestAdderExhaustive(t *testing.T) {
	n := adder2(t)
	p := ExhaustivePatterns(4)
	v := Simulate(n, p)
	for i := 0; i < p.NumPatterns(); i++ {
		a := b2i(p.Bit(i, 0)) + 2*b2i(p.Bit(i, 1))
		b := b2i(p.Bit(i, 2)) + 2*b2i(p.Bit(i, 3))
		sum := 0
		for o, out := range n.Outputs() {
			if v.Bit(out.Node, i) {
				sum += 1 << uint(o)
			}
		}
		if sum != a+b {
			t.Fatalf("pattern %d: %d+%d=%d got %d", i, a, b, a+b, sum)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSimulateMatchesEvalOne(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := randomNetwork(t, r, 9, 80)
	p := RandomPatterns(n.NumInputs(), 500, 99)
	v := Simulate(n, p)
	in := make([]bool, n.NumInputs())
	for i := 0; i < 100; i++ {
		pi := r.Intn(p.NumPatterns())
		for k := range in {
			in[k] = p.Bit(pi, k)
		}
		want := EvalOne(n, in)
		for o, out := range n.Outputs() {
			if v.Bit(out.Node, pi) != want[o] {
				t.Fatalf("pattern %d output %d mismatch", pi, o)
			}
		}
	}
}

func randomNetwork(t testing.TB, r *rand.Rand, nin, ngates int) *circuit.Network {
	t.Helper()
	n := circuit.New("rand")
	pool := make([]circuit.NodeID, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(""))
	}
	kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
		circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot}
	for i := 0; i < ngates; i++ {
		k := kinds[r.Intn(len(kinds))]
		var id circuit.NodeID
		if k == circuit.KindNot {
			id = n.AddGate(k, pool[r.Intn(len(pool))])
		} else {
			id = n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])
		}
		pool = append(pool, id)
	}
	for _, id := range pool {
		if len(n.Fanouts(id)) == 0 {
			n.AddOutput("", id)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRandomPatternsDeterministic(t *testing.T) {
	a := RandomPatterns(7, 333, 42)
	b := RandomPatterns(7, 333, 42)
	for k := 0; k < 7; k++ {
		if !a.InputRow(k).Equal(b.InputRow(k)) {
			t.Fatal("same seed differs")
		}
	}
	c := RandomPatterns(7, 333, 43)
	same := true
	for k := 0; k < 7; k++ {
		if !a.InputRow(k).Equal(c.InputRow(k)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestBiasedPatternsFrequency(t *testing.T) {
	p := BiasedPatterns([]float64{0.1, 0.9, 0.5}, 20000, 7)
	counts := []int{p.InputRow(0).Count(), p.InputRow(1).Count(), p.InputRow(2).Count()}
	wants := []float64{0.1, 0.9, 0.5}
	for k, c := range counts {
		got := float64(c) / 20000
		if got < wants[k]-0.02 || got > wants[k]+0.02 {
			t.Fatalf("input %d frequency %.3f want %.1f", k, got, wants[k])
		}
	}
}

func TestSampledPatterns(t *testing.T) {
	i := 0
	p := SampledPatterns(2, 4, func() []bool {
		i++
		return []bool{i%2 == 0, i > 2}
	})
	want := [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}}
	for i, w := range want {
		if p.Bit(i, 0) != w[0] || p.Bit(i, 1) != w[1] {
			t.Fatalf("pattern %d wrong", i)
		}
	}
}

func TestResimulateConeMatchesFullSim(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(t, r, 6, 50)
		p := RandomPatterns(6, 200, int64(trial))
		v := Simulate(n, p)
		// Force a random gate to the value of another random node, then
		// resimulate the cone and compare to simulating a modified network.
		var gates []circuit.NodeID
		for _, id := range n.LiveNodes() {
			if n.Kind(id).IsGate() {
				gates = append(gates, id)
			}
		}
		root := gates[r.Intn(len(gates))]
		// New value: complement of current.
		nv := v.Node(root).Clone()
		nv.Not(nv)
		v.Node(root).CopyFrom(nv)
		ResimulateCone(n, v, root)

		// Reference: rebuild network with root complemented via EvalOne.
		in := make([]bool, 6)
		for i := 0; i < 50; i++ {
			pi := r.Intn(p.NumPatterns())
			for k := range in {
				in[k] = p.Bit(pi, k)
			}
			want := evalOneForced(n, in, root)
			for o, out := range n.Outputs() {
				if v.Bit(out.Node, pi) != want[o] {
					t.Fatalf("trial %d pattern %d output %d mismatch", trial, pi, o)
				}
			}
		}
	}
}

// evalOneForced evaluates with node `forced` complemented.
func evalOneForced(n *circuit.Network, inputs []bool, forced circuit.NodeID) []bool {
	val := make([]bool, n.NumSlots())
	for k, in := range n.Inputs() {
		val[in] = inputs[k]
	}
	var buf []bool
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind != circuit.KindInput {
			buf = buf[:0]
			for _, f := range n.Fanins(id) {
				buf = append(buf, val[f])
			}
			val[id] = kind.Eval(buf)
		}
		if id == forced {
			val[id] = !val[id]
		}
	}
	outs := make([]bool, n.NumOutputs())
	for o, out := range n.Outputs() {
		outs[o] = val[out.Node]
	}
	return outs
}

func TestSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := randomNetwork(t, r, 5, 30)
	p := RandomPatterns(5, 100, 1)
	v := Simulate(n, p)
	ref := v.Clone()
	var gates []circuit.NodeID
	for _, id := range n.LiveNodes() {
		if n.Kind(id).IsGate() {
			gates = append(gates, id)
		}
	}
	root := gates[r.Intn(len(gates))]
	snap := SnapshotCone(n, v, root)
	v.Node(root).Not(v.Node(root))
	ResimulateCone(n, v, root)
	snap.Restore(v)
	for _, id := range n.LiveNodes() {
		if !v.Node(id).Equal(ref.Node(id)) {
			t.Fatalf("node %d not restored", id)
		}
	}
}

func TestOutputMatrix(t *testing.T) {
	n := adder2(t)
	p := ExhaustivePatterns(4)
	v := Simulate(n, p)
	m := OutputMatrix(n, v)
	if m.Rows() != 3 || m.Bits() != 16 {
		t.Fatalf("matrix dims %dx%d", m.Rows(), m.Bits())
	}
	for o, out := range n.Outputs() {
		if !m.Row(o).Equal(v.Node(out.Node)) {
			t.Fatal("row mismatch")
		}
	}
}

func TestMarkovPatternsCorrelation(t *testing.T) {
	const m = 20000
	p := MarkovPatterns(4, m, 0.1, 7)
	// Adjacent patterns should agree on ~90% of bits; i.i.d. would be 50%.
	agree := 0
	for i := 1; i < m; i++ {
		for k := 0; k < 4; k++ {
			if p.Bit(i, k) == p.Bit(i-1, k) {
				agree++
			}
		}
	}
	frac := float64(agree) / float64(4*(m-1))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("adjacent agreement %.3f want ~0.90", frac)
	}
	// Long-run marginal stays near 0.5.
	for k := 0; k < 4; k++ {
		f := float64(p.InputRow(k).Count()) / m
		if f < 0.4 || f > 0.6 {
			t.Fatalf("input %d marginal %.3f drifted", k, f)
		}
	}
}

func TestMarkovPatternsDeterministic(t *testing.T) {
	a := MarkovPatterns(3, 500, 0.2, 11)
	b := MarkovPatterns(3, 500, 0.2, 11)
	for k := 0; k < 3; k++ {
		if !a.InputRow(k).Equal(b.InputRow(k)) {
			t.Fatal("same seed differs")
		}
	}
}

func TestMarkovPatternsBadProb(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MarkovPatterns(2, 10, 1.5, 1)
}
