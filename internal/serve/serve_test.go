package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"batchals/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(NewRunRegistry())
	s.Heartbeat = 20 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t)
	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	s.SetReady(true)
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("/readyz after SetReady = %d, want 200", code)
	}
}

func TestMetricsMergesRunsWithLabels(t *testing.T) {
	s, ts := newTestServer(t)
	a := s.Runs.Get("alpha")
	b := s.Runs.Get("beta")
	a.Registry.Counter("sasimi_accepts_total").Add(3)
	a.Registry.Counter(`sasimi_phase_ns{phase="simulate"}`).Add(42)
	b.Registry.Counter("sasimi_accepts_total").Add(5)
	b.Registry.Gauge("sasimi_er_ci_hi").Set(0.04)

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`sasimi_accepts_total{run="alpha"} 3`,
		`sasimi_accepts_total{run="beta"} 5`,
		`sasimi_phase_ns{run="alpha",phase="simulate"} 42`,
		`sasimi_er_ci_hi{run="beta"} 0.04`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Process-wide substrate counters are exposed unlabelled.
	if !strings.Contains(body, "par_pool_runs_total") {
		t.Fatal("/metrics missing process-wide registry")
	}
}

func TestMetricsJSONDocument(t *testing.T) {
	s, ts := newTestServer(t)
	s.Runs.Get("r1").Registry.Counter("sasimi_iterations_total").Add(7)
	code, body := get(t, ts.URL+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var doc struct {
		Process obs.Snapshot            `json:"process"`
		Runs    map[string]obs.Snapshot `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Runs["r1"].Counters["sasimi_iterations_total"] != 7 {
		t.Fatalf("run counter lost in /metrics.json: %+v", doc.Runs["r1"])
	}
	if len(doc.Process.Counters) == 0 {
		t.Fatal("process snapshot empty")
	}
}

func TestRunsListingAndLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	r1 := s.Runs.Get("job-1")
	r1.SetState(RunActive, "")
	r2 := s.Runs.Get("job-2")
	r2.SetState(RunFailed, "boom")

	code, body := get(t, ts.URL+"/runs")
	if code != 200 {
		t.Fatalf("/runs = %d", code)
	}
	var list []RunSummary
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "job-1" || list[1].Name != "job-2" {
		t.Fatalf("listing order wrong: %+v", list)
	}
	if list[0].State != "active" || list[1].State != "failed" || list[1].Error != "boom" {
		t.Fatalf("lifecycle state lost: %+v", list)
	}
}

func TestFlightEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	run := s.Runs.Get("solo")
	tr := run.Tracer()
	for i := 1; i <= 3; i++ {
		tr.OnIteration(obs.IterationInfo{Iter: i, Candidates: 10 * i})
	}
	tr.OnAccept(obs.AcceptInfo{Iter: 3, Target: "g7", M: 2000,
		ErrCI: obs.Interval{Lo: 0.01, Hi: 0.03, Level: 0.95}, CIAdequate: true})

	// Single run: ?run may be omitted.
	code, body := get(t, ts.URL+"/flight")
	if code != 200 {
		t.Fatalf("/flight = %d", code)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.TotalIterations != 3 || len(dump.Iterations) != 3 {
		t.Fatalf("flight dump iterations wrong: %+v", dump)
	}
	if len(dump.Accepts) != 1 || dump.Accepts[0].M != 2000 || dump.Accepts[0].ErrCI.Hi != 0.03 {
		t.Fatalf("accept confidence fields lost in flight dump: %+v", dump.Accepts)
	}

	if code, _ := get(t, ts.URL+"/flight?run=nope"); code != http.StatusNotFound {
		t.Fatalf("/flight?run=nope = %d, want 404", code)
	}
	s.Runs.Get("second")
	if code, _ := get(t, ts.URL+"/flight"); code != http.StatusBadRequest {
		t.Fatalf("/flight with two runs and no ?run = %d, want 400", code)
	}
}

// TestEventsStreamDeliversSSE subscribes over real HTTP, publishes through
// the tracer, and checks framed events arrive with sequence numbers and
// the limit parameter closes the stream.
func TestEventsStreamDeliversSSE(t *testing.T) {
	s, ts := newTestServer(t)
	run := s.Runs.Get("live")

	resp, err := http.Get(ts.URL + "/events?run=live&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish from another goroutine until the subscriber is attached and
	// five events have gone out.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			run.Stream.OnIteration(obs.IterationInfo{Iter: i})
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	sc := bufio.NewScanner(resp.Body)
	var events, dataLines int
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: iter") {
			events++
		}
		if strings.HasPrefix(line, "data: ") {
			dataLines++
			var ev struct {
				Ev   string `json:"ev"`
				Seq  uint64 `json:"seq"`
				Run  string `json:"run"`
				Data struct {
					Iter int `json:"iter"`
				} `json:"data"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if ev.Ev != "iter" || ev.Seq == 0 || ev.Run != "live" || ev.Data.Iter == 0 {
				t.Fatalf("malformed event %+v", ev)
			}
		}
	}
	// limit=5 must close the body after exactly 5 events.
	if events != 5 || dataLines != 5 {
		t.Fatalf("got %d events / %d data lines, want 5/5", events, dataLines)
	}
}

// TestEventsHeartbeat checks an idle stream still sends keep-alive
// comments.
func TestEventsHeartbeat(t *testing.T) {
	s, ts := newTestServer(t)
	s.Runs.Get("idle")
	ctxURL := ts.URL + "/events?run=idle"
	req, _ := http.NewRequest("GET", ctxURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	deadline := time.Now().Add(2 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		got += string(buf[:n])
		if strings.Contains(got, ": heartbeat") {
			return
		}
		if err != nil {
			break
		}
	}
	t.Fatalf("no heartbeat on idle stream, got %q", got)
}

func TestPprofSurface(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, ts.URL+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestInjectRunLabel(t *testing.T) {
	cases := []struct{ name, run, want string }{
		{"m_total", "x", `m_total{run="x"}`},
		{`m{a="b"}`, "x", `m{run="x",a="b"}`},
		{"m", "", "m"},
	}
	for _, c := range cases {
		if got := injectRunLabel(c.name, c.run); got != c.want {
			t.Fatalf("injectRunLabel(%q,%q) = %q, want %q", c.name, c.run, got, c.want)
		}
	}
}

func TestStartOnEphemeralPort(t *testing.T) {
	s := New(nil)
	addr, shutdown, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	if code, _ := get(t, "http://"+addr.String()+"/healthz"); code != 200 {
		t.Fatalf("healthz over real listener = %d", code)
	}
}
