// Package bench generates the benchmark circuits of the paper's evaluation:
// parametric adders (ripple-carry, carry-lookahead, Kogge-Stone),
// multipliers (array and Wallace-tree), a 14-input/8-output ALU, and seeded
// synthetic stand-ins for the ISCAS85 circuits (see DESIGN.md for the
// substitution rationale), plus a few extra generators useful in examples.
//
// All generators are deterministic: the same call always returns a
// structurally identical network.
package bench

import (
	"fmt"

	"batchals/internal/circuit"
)

// fullAdder adds one bit column; returns (sum, carryOut).
func fullAdder(n *circuit.Network, a, b, cin circuit.NodeID) (circuit.NodeID, circuit.NodeID) {
	x := n.AddGate(circuit.KindXor, a, b)
	s := n.AddGate(circuit.KindXor, x, cin)
	g := n.AddGate(circuit.KindAnd, a, b)
	p := n.AddGate(circuit.KindAnd, x, cin)
	co := n.AddGate(circuit.KindOr, g, p)
	return s, co
}

// halfAdder returns (sum, carryOut) of two bits.
func halfAdder(n *circuit.Network, a, b circuit.NodeID) (circuit.NodeID, circuit.NodeID) {
	return n.AddGate(circuit.KindXor, a, b), n.AddGate(circuit.KindAnd, a, b)
}

// addInputVector declares width named input bits (LSB first).
func addInputVector(n *circuit.Network, prefix string, width int) []circuit.NodeID {
	ids := make([]circuit.NodeID, width)
	for i := range ids {
		ids[i] = n.AddInput(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// addOutputVector binds the given drivers as named outputs (LSB first).
func addOutputVector(n *circuit.Network, prefix string, drivers []circuit.NodeID) {
	for i, d := range drivers {
		n.AddOutput(fmt.Sprintf("%s%d", prefix, i), d)
	}
}

// RCA returns a width-bit ripple-carry adder: inputs a0..a(w-1), b0..b(w-1);
// outputs s0..s(w) where s(w) is the carry out. The paper's RCA32 is
// RCA(32).
func RCA(width int) *circuit.Network {
	mustPositive("RCA", width)
	n := circuit.New(fmt.Sprintf("RCA%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	sums := make([]circuit.NodeID, 0, width+1)
	var s, c circuit.NodeID
	s, c = halfAdder(n, a[0], b[0])
	sums = append(sums, s)
	for i := 1; i < width; i++ {
		s, c = fullAdder(n, a[i], b[i], c)
		sums = append(sums, s)
	}
	sums = append(sums, c)
	addOutputVector(n, "s", sums)
	return n
}

// CLA returns a width-bit carry-lookahead adder built from 4-bit lookahead
// groups with ripple between groups. The paper's CLA32 is CLA(32).
func CLA(width int) *circuit.Network {
	mustPositive("CLA", width)
	n := circuit.New(fmt.Sprintf("CLA%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	p := make([]circuit.NodeID, width) // propagate a^b
	g := make([]circuit.NodeID, width) // generate  a&b
	for i := 0; i < width; i++ {
		p[i] = n.AddGate(circuit.KindXor, a[i], b[i])
		g[i] = n.AddGate(circuit.KindAnd, a[i], b[i])
	}
	sums := make([]circuit.NodeID, 0, width+1)
	carry := n.AddConst(false)
	for base := 0; base < width; base += 4 {
		end := base + 4
		if end > width {
			end = width
		}
		// Carries within the group expanded in sum-of-products form:
		// c_{i+1} = g_i + p_i g_{i-1} + ... + p_i...p_base * carryIn.
		cin := carry
		for i := base; i < end; i++ {
			sums = append(sums, n.AddGate(circuit.KindXor, p[i], cin))
			// ci+1 terms
			acc := g[i]
			run := p[i]
			for j := i - 1; j >= base; j-- {
				t := n.AddGate(circuit.KindAnd, run, g[j])
				acc = n.AddGate(circuit.KindOr, acc, t)
				run = n.AddGate(circuit.KindAnd, run, p[j])
			}
			t := n.AddGate(circuit.KindAnd, run, carry)
			cin = n.AddGate(circuit.KindOr, acc, t)
		}
		carry = cin
	}
	sums = append(sums, carry)
	addOutputVector(n, "s", sums)
	return n
}

// KSA returns a width-bit Kogge-Stone parallel-prefix adder. The paper's
// KSA32 is KSA(32).
func KSA(width int) *circuit.Network {
	mustPositive("KSA", width)
	n := circuit.New(fmt.Sprintf("KSA%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	p := make([]circuit.NodeID, width)
	g := make([]circuit.NodeID, width)
	for i := 0; i < width; i++ {
		p[i] = n.AddGate(circuit.KindXor, a[i], b[i])
		g[i] = n.AddGate(circuit.KindAnd, a[i], b[i])
	}
	// Prefix tree: after the passes, g[i] is the carry out of bit i.
	gp := append([]circuit.NodeID(nil), g...)
	pp := append([]circuit.NodeID(nil), p...)
	for d := 1; d < width; d *= 2 {
		ng := append([]circuit.NodeID(nil), gp...)
		np := append([]circuit.NodeID(nil), pp...)
		for i := d; i < width; i++ {
			t := n.AddGate(circuit.KindAnd, pp[i], gp[i-d])
			ng[i] = n.AddGate(circuit.KindOr, gp[i], t)
			np[i] = n.AddGate(circuit.KindAnd, pp[i], pp[i-d])
		}
		gp, pp = ng, np
	}
	sums := make([]circuit.NodeID, 0, width+1)
	sums = append(sums, n.AddGate(circuit.KindBuf, p[0]))
	for i := 1; i < width; i++ {
		sums = append(sums, n.AddGate(circuit.KindXor, p[i], gp[i-1]))
	}
	sums = append(sums, n.AddGate(circuit.KindBuf, gp[width-1]))
	addOutputVector(n, "s", sums)
	// The last prefix round's group-propagate terms have no consumer;
	// drop them (found by the analyze dangling-node pass).
	n.Sweep()
	return n
}

// Comparator returns a width-bit unsigned comparator with outputs lt, eq,
// gt for inputs a, b.
func Comparator(width int) *circuit.Network {
	mustPositive("Comparator", width)
	n := circuit.New(fmt.Sprintf("CMP%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	// eq_i = a_i xnor b_i ; gt from MSB down.
	var eqAll, gt, lt circuit.NodeID
	for i := width - 1; i >= 0; i-- {
		eq := n.AddGate(circuit.KindXnor, a[i], b[i])
		na := n.AddGate(circuit.KindNot, a[i])
		nb := n.AddGate(circuit.KindNot, b[i])
		gti := n.AddGate(circuit.KindAnd, a[i], nb) // a>b at bit i
		lti := n.AddGate(circuit.KindAnd, na, b[i])
		if i == width-1 {
			eqAll, gt, lt = eq, gti, lti
			continue
		}
		gtHere := n.AddGate(circuit.KindAnd, eqAll, gti)
		ltHere := n.AddGate(circuit.KindAnd, eqAll, lti)
		gt = n.AddGate(circuit.KindOr, gt, gtHere)
		lt = n.AddGate(circuit.KindOr, lt, ltHere)
		eqAll = n.AddGate(circuit.KindAnd, eqAll, eq)
	}
	n.AddOutput("lt", lt)
	n.AddOutput("eq", eqAll)
	n.AddOutput("gt", gt)
	return n
}

// Parity returns a width-input odd-parity tree.
func Parity(width int) *circuit.Network {
	mustPositive("Parity", width)
	n := circuit.New(fmt.Sprintf("PAR%d", width))
	in := addInputVector(n, "x", width)
	level := in
	for len(level) > 1 {
		var next []circuit.NodeID
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, n.AddGate(circuit.KindXor, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	n.AddOutput("p", level[0])
	return n
}

func mustPositive(gen string, width int) {
	if width < 1 {
		panic(fmt.Sprintf("bench: %s width must be >= 1, got %d", gen, width))
	}
}
