package bench

import (
	"errors"
	"fmt"
	"sort"

	"batchals/internal/circuit"
)

// registry maps canonical benchmark names to their generators.
var registry = map[string]func() *circuit.Network{
	"rca8":  func() *circuit.Network { return RCA(8) },
	"rca16": func() *circuit.Network { return RCA(16) },
	"rca32": func() *circuit.Network { return RCA(32) },
	"cla32": func() *circuit.Network { return CLA(32) },
	"ksa32": func() *circuit.Network { return KSA(32) },
	"mul4":  func() *circuit.Network { return MUL(4) },
	"mul8":  func() *circuit.Network { return MUL(8) },
	"wtm4":  func() *circuit.Network { return WTM(4) },
	"wtm8":  func() *circuit.Network { return WTM(8) },
	"alu4":  ALU4,
	"cmp8":  func() *circuit.Network { return Comparator(8) },
	"par16": func() *circuit.Network { return Parity(16) },
	"mac4":  func() *circuit.Network { return MAC(4) },
	"mac8":  func() *circuit.Network { return MAC(8) },
	"dec4":  func() *circuit.Network { return Decoder(4) },
	"absd8": func() *circuit.Network { return AbsDiff(8) },
	// synth10k is the smallest Tiled circuit, sized so whole-registry
	// sweeps (alslint -all, analyzer tests) stay fast; the partition
	// benchmarks build larger Tiled circuits directly.
	"synth10k": func() *circuit.Network { return Tiled("synth10k", 64, 64, 10000, 10) },
	"c880":     mustISCAS("c880"),
	"c1908":    mustISCAS("c1908"),
	"c2670":    mustISCAS("c2670"),
	"c3540":    mustISCAS("c3540"),
	"c5315":    mustISCAS("c5315"),
	"c7552":    mustISCAS("c7552"),
}

func mustISCAS(name string) func() *circuit.Network {
	return func() *circuit.Network {
		n, err := ISCASLike(name)
		if err != nil {
			panic(err)
		}
		return n
	}
}

// ErrUnknownBenchmark marks a ByName lookup that matched no registered
// circuit; test with errors.Is.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// ByName builds the named benchmark circuit. Names returns the full list.
func ByName(name string) (*circuit.Network, error) {
	gen, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: %w %q (known: %v)", ErrUnknownBenchmark, name, Names())
	}
	return gen(), nil
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
