// Command repro regenerates the tables and figures of the paper's
// evaluation section on this library's substrates.
//
// Usage:
//
//	repro                       # every experiment at default scale
//	repro -exp table3 -m 10000  # one experiment at a chosen sample size
//	repro -fast                 # smoke-test scale
//
// Experiments: fig1, table1, fig3, table2, fig4, table3, fig5, table4,
// complexity, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"batchals/internal/repro"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment to run (fig1, table1, fig3, table2, fig4, table3, fig5, table4, complexity, all)")
		m    = flag.Int("m", 2000, "Monte Carlo pattern count per flow run")
		seed = flag.Int64("seed", 1, "random seed")
		fast = flag.Bool("fast", false, "smoke-test scale (smaller circuits, fewer points)")
	)
	flag.Parse()

	opt := repro.Options{M: *m, Seed: *seed, Fast: *fast}
	which := strings.ToLower(*exp)
	run := func(name string, fn func() (string, error)) {
		if which != "all" && which != name {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig1", func() (string, error) {
		d, err := repro.Fig1(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderFig1(d), nil
	})
	run("table1", func() (string, error) {
		rows, err := repro.Table1(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderTable1(rows), nil
	})
	run("fig3", func() (string, error) {
		s, err := repro.Fig3(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderFig3(s), nil
	})
	run("table2", func() (string, error) {
		rows, err := repro.Table2(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderTable2(rows), nil
	})
	// Fig. 4 and Table 3 share their flow runs (as do Fig. 5 and Table 4):
	// when both are requested, compute the sweep once.
	if which == "all" || which == "fig4" || which == "table3" {
		start := time.Now()
		q, err := repro.RunERQuality(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: er-quality: %v\n", err)
			os.Exit(1)
		}
		// Both products come from the same flow runs; print both whenever
		// either is requested.
		fmt.Println(repro.RenderSweep("Fig 4: area ratio vs ER threshold (modified SASIMI)", "ER thresh", q.Series))
		fmt.Println(repro.RenderTable3(q.Rows))
		fmt.Printf("[fig4+table3 took %s]\n\n", time.Since(start).Round(time.Millisecond))
	}
	if which == "all" || which == "fig5" || which == "table4" {
		start := time.Now()
		q, err := repro.RunAEMQuality(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: aem-quality: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(repro.RenderSweep("Fig 5: area ratio vs AEM-rate threshold (modified SASIMI)", "AEM rate", q.Series))
		fmt.Println(repro.RenderTable4(q.Rows))
		fmt.Printf("[fig5+table4 took %s]\n\n", time.Since(start).Round(time.Millisecond))
	}
	run("complexity", func() (string, error) {
		rows, err := repro.Complexity(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderComplexity(rows), nil
	})
	run("flows", func() (string, error) {
		rows, err := repro.Flows(opt)
		if err != nil {
			return "", err
		}
		return repro.RenderFlows(rows), nil
	})
}
