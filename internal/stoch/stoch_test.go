package stoch

import (
	"math"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/emetric"
)

func TestStochRespectsBudget(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Metric: core.MetricER, Threshold: 0.05, NumPatterns: 1500, Seed: 1, Moves: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 0.05+1e-9 {
		t.Fatalf("error %v above threshold", res.FinalError)
	}
	exact := emetric.MeasureExact(golden, res.Approx)
	if exact.ErrorRate > 0.12 {
		t.Fatalf("exact ER %v way above budget", exact.ErrorRate)
	}
	if err := res.Approx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStochMakesProgress(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Metric: core.MetricER, Threshold: 0.05, NumPatterns: 1500, Seed: 2, Moves: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 || res.FinalArea >= res.OriginalArea {
		t.Fatalf("no progress: accepted=%d area %v -> %v",
			res.Accepted, res.OriginalArea, res.FinalArea)
	}
}

func TestStochSwitchesToBatchMode(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Metric: core.MetricER, Threshold: 0.04, NumPatterns: 1500, Seed: 3,
		Moves: 200, SwitchFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchMoves == 0 {
		t.Fatal("flow never entered batch mode despite low switch fraction")
	}
	if math.IsNaN(res.SwitchedAtErr) {
		t.Fatal("switch error not recorded")
	}
	if res.SwitchedAtErr < 0.25*0.04-1e-9 {
		t.Fatalf("switched too early, at err %v", res.SwitchedAtErr)
	}
}

func TestStochBatchModeDisabled(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Metric: core.MetricER, Threshold: 0.04, NumPatterns: 1000, Seed: 4,
		Moves: 80, SwitchFrac: 10, // never switch
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchMoves != 0 {
		t.Fatal("batch mode ran despite SwitchFrac > 1")
	}
}

func TestStochDeterministic(t *testing.T) {
	golden := bench.MUL(4)
	cfg := Config{Metric: core.MetricER, Threshold: 0.03, NumPatterns: 1000, Seed: 5, Moves: 60}
	a, err := Run(golden, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(golden, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalArea != b.FinalArea || a.Accepted != b.Accepted {
		t.Fatalf("same seed differs: %v/%d vs %v/%d",
			a.FinalArea, a.Accepted, b.FinalArea, b.Accepted)
	}
}

func TestStochAEM(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Metric: core.MetricAEM, Threshold: 2, NumPatterns: 1500, Seed: 6, Moves: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 2+1e-9 {
		t.Fatalf("AEM %v above threshold", res.FinalError)
	}
}

func TestStochErrors(t *testing.T) {
	if _, err := Run(bench.RCA(4), Config{Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
