package par

import (
	"math/rand"
	"testing"
)

// checkPlan asserts the structural invariants every plan must satisfy:
// the bins partition 0..n-1 (disjoint, full cover), bin loads are in
// descending order, and maxLoad - minLoad is bounded by the largest item
// cost (the LPT guarantee).
func checkPlan(t *testing.T, costs []float64, bins [][]int, wantBins int) {
	t.Helper()
	n := len(costs)
	if len(bins) != wantBins {
		t.Fatalf("got %d bins, want %d", len(bins), wantBins)
	}
	seen := make([]bool, n)
	total := 0
	for _, bin := range bins {
		for _, it := range bin {
			if it < 0 || it >= n {
				t.Fatalf("item %d out of range [0,%d)", it, n)
			}
			if seen[it] {
				t.Fatalf("item %d assigned twice", it)
			}
			seen[it] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("bins cover %d items, want %d", total, n)
	}

	load := func(bin []int) float64 {
		s := 0.0
		for _, it := range bin {
			c := costs[it]
			if c < 0 {
				c = 0
			}
			s += c
		}
		return s
	}
	maxCost := 0.0
	for _, c := range costs {
		if c > maxCost {
			maxCost = c
		}
	}
	prev := -1.0
	minLoad, maxLoad := load(bins[0]), load(bins[0])
	for i, bin := range bins {
		l := load(bin)
		if i > 0 && l > prev+1e-9 {
			t.Fatalf("bin %d load %.3f exceeds previous bin load %.3f (want descending)", i, l, prev)
		}
		prev = l
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad-minLoad > maxCost+1e-9 {
		t.Fatalf("balance bound violated: spread %.3f > max item cost %.3f", maxLoad-minLoad, maxCost)
	}
}

func TestPlannerPartitionAndBalance(t *testing.T) {
	var p Planner
	cases := []struct {
		name  string
		costs []float64
		bins  int
	}{
		{"uniform", []float64{1, 1, 1, 1, 1, 1, 1, 1}, 3},
		{"skewed", []float64{100, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 4},
		{"single", []float64{5}, 4},
		{"more-bins-than-items", []float64{3, 2}, 8},
		{"zeros", []float64{0, 0, 0, 5, 0}, 2},
		{"negative-clamped", []float64{-3, 2, 4, -1, 7}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.bins
			if want > len(tc.costs) {
				want = len(tc.costs)
			}
			bins := p.Plan(tc.costs, tc.bins)
			checkPlan(t, tc.costs, bins, want)
		})
	}
}

func TestPlannerPropertyRandom(t *testing.T) {
	var p Planner
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		bins := 1 + rng.Intn(20)
		costs := make([]float64, n)
		for i := range costs {
			// Mix heavy-tailed and uniform costs so some trials have one
			// dominating item (the regime the bound matters in).
			if rng.Intn(10) == 0 {
				costs[i] = float64(rng.Intn(1000))
			} else {
				costs[i] = rng.Float64() * 10
			}
		}
		want := bins
		if want > n {
			want = n
		}
		got := p.Plan(costs, bins)
		checkPlan(t, costs, got, want)
	}
}

// TestPlannerDeterministic pins that Plan is a pure function of its
// inputs: same costs and bin count give the identical partition across
// calls and across fresh Planner values, including under cost ties where
// only the index tiebreak disambiguates.
func TestPlannerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	costs := make([]float64, 60)
	for i := range costs {
		costs[i] = float64(rng.Intn(5)) // heavy ties on purpose
	}
	var p1, p2 Planner
	ref := clonePlan(p1.Plan(costs, 7))
	for trial := 0; trial < 5; trial++ {
		for _, got := range [][][]int{p1.Plan(costs, 7), p2.Plan(costs, 7)} {
			if len(got) != len(ref) {
				t.Fatalf("bin count varies: %d vs %d", len(got), len(ref))
			}
			for b := range got {
				if len(got[b]) != len(ref[b]) {
					t.Fatalf("bin %d size varies: %d vs %d", b, len(got[b]), len(ref[b]))
				}
				for i := range got[b] {
					if got[b][i] != ref[b][i] {
						t.Fatalf("bin %d item %d varies: %d vs %d", b, i, got[b][i], ref[b][i])
					}
				}
			}
		}
	}
}

func clonePlan(bins [][]int) [][]int {
	out := make([][]int, len(bins))
	for i, b := range bins {
		out[i] = append([]int(nil), b...)
	}
	return out
}

func TestPlanBins(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{100, 4, 16},
		{10, 4, 10},
		{0, 4, 1},
		{5, 0, 4},
		{3, 1, 3},
		{100, 1, 4},
	}
	for _, tc := range cases {
		if got := PlanBins(tc.n, tc.workers); got != tc.want {
			t.Errorf("PlanBins(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

// TestPlannerSteadyStateAllocs pins the zero-alloc contract: after the
// first (warm-up) call, re-planning the same-sized input allocates
// nothing, so per-iteration dispatch planning adds no GC pressure.
func TestPlannerSteadyStateAllocs(t *testing.T) {
	var p Planner
	costs := make([]float64, 128)
	rng := rand.New(rand.NewSource(3))
	for i := range costs {
		costs[i] = rng.Float64() * 100
	}
	p.Plan(costs, 16) // warm scratch
	allocs := testing.AllocsPerRun(20, func() {
		p.Plan(costs, 16)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Plan allocates %.1f times per run, want 0", allocs)
	}
}
