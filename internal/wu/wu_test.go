package wu

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
)

func TestWuRespectsThreshold(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        1,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 0.05+1e-9 {
		t.Fatalf("error %v above threshold", res.FinalError)
	}
	exact := emetric.MeasureExact(golden, res.Approx)
	if exact.ErrorRate > 0.12 {
		t.Fatalf("exact ER %v far above budget", exact.ErrorRate)
	}
	if err := res.Approx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWuReducesArea(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        2,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumIterations == 0 || res.FinalArea >= res.OriginalArea {
		t.Fatalf("no progress: %d iterations, %v -> %v",
			res.NumIterations, res.OriginalArea, res.FinalArea)
	}
}

func TestWuBatchAtLeastAsGoodAsLocal(t *testing.T) {
	golden := bench.MUL(4)
	batch, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.03,
			NumPatterns: 3000,
			Seed:        3,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.03,
			NumPatterns: 3000,
			Seed:        3,
		},
		UseBatch: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.FinalArea > local.FinalArea+1e-9 {
		t.Fatalf("batch %v worse than local %v", batch.FinalArea, local.FinalArea)
	}
}

func TestWuZeroThreshold(t *testing.T) {
	golden := bench.RCA(6)
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0,
			NumPatterns: 1000,
			Seed:        4,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError != 0 {
		t.Fatalf("zero-threshold run has error %v", res.FinalError)
	}
}

func TestWuAEM(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricAEM,
			Threshold:   2,
			NumPatterns: 2000,
			Seed:        5,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 2+1e-9 {
		t.Fatalf("AEM %v above threshold", res.FinalError)
	}
}

func TestWuMaxIterations(t *testing.T) {
	res, err := Run(bench.MUL(4), Config{
		Budget: flow.Budget{
			Metric:        core.MetricER,
			Threshold:     0.1,
			NumPatterns:   1000,
			Seed:          6,
			MaxIterations: 2,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumIterations > 2 {
		t.Fatalf("iterations %d exceed cap", res.NumIterations)
	}
}

func TestWuErrors(t *testing.T) {
	if _, err := Run(bench.RCA(4), Config{Budget: flow.Budget{Threshold: -1}}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestWuOnSynthetic(t *testing.T) {
	// The ISCAS-like synthetics contain 3-input gates, exercising the
	// arity-shrink path (not just the 2-input collapse).
	golden, err := bench.ISCASLike("c880")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.02,
			NumPatterns: 1000,
			Seed:        7,
		},
		UseBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 0.02+1e-9 {
		t.Fatalf("error %v above threshold", res.FinalError)
	}
	if res.NumIterations == 0 {
		t.Fatal("no deletions accepted on c880")
	}
}
