// Command vetals runs the repo's custom Go-level analyzers
// (internal/lint: bitveclen, randseed, apipanic). It speaks two dialects:
//
// As a vet tool, implementing the cmd/go unitchecker protocol — the -V=full
// and -flags probes plus the JSON .cfg package description — so the whole
// module is checked with the standard driver and its caching:
//
//	go build -o bin/vetals ./cmd/vetals
//	go vet -vettool=bin/vetals ./...
//
// Standalone, walking the module without the go command:
//
//	vetals ./...
//
// The protocol is implemented by hand because the container build vendors
// no third-party modules (golang.org/x/tools is unavailable); the analyzers
// are purely syntactic, so no export data or facts are needed — the .vetx
// facts file the driver expects is written empty.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"batchals/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			// Probe from cmd/go's tool-ID computation: the reply must be
			// "<name> version <id>".
			fmt.Println("vetals version v1")
			return
		case arg == "-flags":
			// Probe from cmd/go's flag parser: JSON list of tool flags.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMode(args[0]))
	}
	os.Exit(standaloneMode(args))
}

// vetConfig mirrors the fields of the unitchecker JSON package description
// this tool needs; unknown fields are ignored.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// unitcheckerMode analyses one package described by a cmd/go .cfg file.
// Exit status: 0 clean, 2 diagnostics, 1 operational failure.
func unitcheckerMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetals:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vetals: %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver caches analysis facts in a .vetx file and requires it to
	// exist; the analyzers are fact-free, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vetals:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency package: facts only, nothing to report
	}

	// Test variants carry an " [pkg.test]" suffix on the import path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	fset := token.NewFileSet()
	var files []*ast.File
	pkgName := ""
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetals:", err)
			return 1
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	diags := lint.Run(fset, pkgPath, pkgName, files, lint.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// standaloneMode walks the module rooted at the working directory (or the
// nearest parent with a go.mod) and analyses every package. Patterns are
// accepted for familiarity but only "./..." semantics are implemented.
func standaloneMode(args []string) int {
	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetals:", err)
		return 1
	}
	_ = args // everything under the module is checked

	fset := token.NewFileSet()
	var all []lint.Diagnostic
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		switch d.Name() {
		case ".git", ".github", "testdata", "vendor":
			return filepath.SkipDir
		}
		diags, derr := analyzeDir(fset, root, module, path)
		if derr != nil {
			return derr
		}
		all = append(all, diags...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetals:", err)
		return 1
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range all {
		fmt.Println(d)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// analyzeDir parses the .go files of one directory, groups them by package
// clause (a directory may hold both pkg and pkg_test) and runs the
// analyzers on each group.
func analyzeDir(fset *token.FileSet, root, module, dir string) ([]lint.Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	groups := map[string][]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		groups[f.Name.Name] = append(groups[f.Name.Name], f)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := module
	if rel != "." {
		pkgPath = module + "/" + filepath.ToSlash(rel)
	}
	var diags []lint.Diagnostic
	for _, names := range sortedKeys(groups) {
		diags = append(diags, lint.Run(fset, pkgPath, names, groups[names], lint.All())...)
	}
	return diags, nil
}

func sortedKeys(m map[string][]*ast.File) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
