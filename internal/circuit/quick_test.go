package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickEvalWordConsistency: for every gate kind and random operand
// words, each bit of EvalWord equals the scalar Eval on the corresponding
// bit slice.
func TestQuickEvalWordConsistency(t *testing.T) {
	kinds := []Kind{KindBuf, KindNot, KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor, KindMux}
	f := func(seed int64, kindIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := kinds[int(kindIdx)%len(kinds)]
		arity := 2
		switch k {
		case KindBuf, KindNot:
			arity = 1
		case KindMux:
			arity = 3
		default:
			arity = 2 + r.Intn(3)
		}
		words := make([]uint64, arity)
		for i := range words {
			words[i] = r.Uint64()
		}
		got := k.EvalWord(words)
		in := make([]bool, arity)
		for bit := 0; bit < 64; bit++ {
			for i := range in {
				in[i] = words[i]>>uint(bit)&1 == 1
			}
			if (got>>uint(bit)&1 == 1) != k.Eval(in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSweepNeverBreaksValidity: random edits (ReplaceNode to an
// earlier node + sweep) keep the network structurally valid and only ever
// shrink it.
func TestQuickSweepNeverBreaksValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(t, r, 4+r.Intn(4), 20+r.Intn(30))
		for edit := 0; edit < 5; edit++ {
			var gates []NodeID
			for _, id := range n.LiveNodes() {
				if n.Kind(id).IsGate() {
					gates = append(gates, id)
				}
			}
			if len(gates) == 0 {
				break
			}
			old := gates[r.Intn(len(gates))]
			// Pick a replacement outside old's fanout cone.
			cone := n.TransitiveFanoutCone(old)
			var cands []NodeID
			for _, id := range n.LiveNodes() {
				if !cone[id] {
					cands = append(cands, id)
				}
			}
			if len(cands) == 0 {
				continue
			}
			sub := cands[r.Intn(len(cands))]
			before := n.NumNodes()
			n.ReplaceNode(old, sub)
			n.SweepFrom(old)
			if n.NumNodes() > before {
				return false
			}
			if err := n.Validate(); err != nil {
				t.Logf("seed %d edit %d: %v", seed, edit, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMFFCContainsRoot: the MFFC of any gate contains the gate itself
// and only nodes from its transitive fanin cone.
func TestQuickMFFCContainsRoot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(t, r, 5, 30)
		for _, id := range n.LiveNodes() {
			if !n.Kind(id).IsGate() {
				continue
			}
			mffc := n.MFFC(id)
			if len(mffc) == 0 || mffc[0] != id {
				return false
			}
			fic := n.TransitiveFaninCone(id)
			for _, m := range mffc {
				if !fic[m] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
