#!/usr/bin/env bash
# Smoke test for the partition-and-conquer flow: run alsrun with
# -partition-cells on c880, check the partition summary reports multiple
# parts and a merged error within the budget, and validate the exported
# timeline shows the per-part flows on distinct worker lanes (the
# partition-level parallelism the PR claims, visible, not inferred).
# CI runs this after the unit suites; it is also a quick local check:
# ./scripts/smoke_partition.sh
set -euo pipefail

TRACE="${TRACE:-/tmp/smoke_partition.json}"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

go build -o /tmp/alsrun ./cmd/alsrun
/tmp/alsrun -circuit c880 -threshold 0.02 -m 2048 -workers 4 \
    -partition-cells 100 -partition-maxcut 16 \
    -timeline "$TRACE" | tee "$LOG"

grep -q "wrote $TRACE" "$LOG" || { echo "alsrun never wrote the trace"; exit 1; }
grep -Eq "partition: [0-9]+ parts" "$LOG" || { echo "missing partition summary"; exit 1; }

# The summary must report >1 part and a merged error within the budget.
python3 - "$LOG" <<'EOF'
import re, sys

log = open(sys.argv[1]).read()
m = re.search(r"partition: (\d+) parts .* merged error ([0-9.]+)", log)
assert m, "partition summary line not found"
parts, err = int(m.group(1)), float(m.group(2))
assert parts > 1, f"expected multiple parts, got {parts}"
assert err <= 0.02 + 1e-9, f"merged error {err} over the 0.02 budget"
per_part = re.findall(r"^  part +\d+:", log, re.M)
assert len(per_part) == parts, f"{len(per_part)} part rows for {parts} parts"
print(f"smoke_partition: {parts} parts, merged error {err}")
EOF

# Validate the timeline: partition.flow spans (the per-part engines) must
# appear on at least two distinct worker lanes, and the driver lane must
# carry the plan/extract/merge/measure phases.
python3 - "$TRACE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

threads, flow_lanes, driver_spans = {}, set(), set()
for ev in doc["traceEvents"]:
    if ev["ph"] == "M":
        threads[ev["tid"]] = ev["args"]["name"]
for ev in doc["traceEvents"]:
    if ev["ph"] != "X":
        continue
    if ev["name"] == "partition.flow" and threads.get(ev["tid"], "").startswith("worker"):
        flow_lanes.add(ev["tid"])
    if ev["name"] in ("partition.plan", "partition.extract", "partition.merge", "partition.measure"):
        driver_spans.add(ev["name"])

assert len(flow_lanes) >= 2, f"partition.flow on {len(flow_lanes)} lanes, want >=2"
missing = {"partition.plan", "partition.extract", "partition.merge", "partition.measure"} - driver_spans
assert not missing, f"driver spans missing: {missing}"
print(f"smoke_partition: per-part flows on {len(flow_lanes)} worker lanes")
EOF

echo "smoke_partition: OK"
