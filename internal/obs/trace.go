package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLTracer writes flow events as JSON Lines: one self-describing JSON
// object per line, keyed by "ev" ("phase", "iter", "cand", "accept").
// Events stream as they happen, so a trace of a crashed or interrupted run
// is still valid up to its last complete line.
//
// Per-candidate events are the bulk of a trace (thousands per iteration on
// ISCAS-scale circuits) and are dropped unless EmitCandidates is set.
type JSONLTracer struct {
	mu             sync.Mutex
	w              *bufio.Writer
	enc            *json.Encoder
	EmitCandidates bool
}

// NewJSONLTracer wraps w in a buffered JSONL event writer. Call Flush (or
// Close on the underlying writer after Flush) when the run ends.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	bw := bufio.NewWriter(w)
	return &JSONLTracer{w: bw, enc: json.NewEncoder(bw)}
}

// Flush writes any buffered events through to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// jsonlPhase mirrors PhaseInfo with stable JSON field names.
type jsonlPhase struct {
	Ev      string `json:"ev"`
	Iter    int    `json:"iter"`
	Phase   string `json:"phase"`
	NS      int64  `json:"ns"`
	Bytes   int64  `json:"alloc_bytes,omitempty"`
	Mallocs int64  `json:"mallocs,omitempty"`
}

// OnPhase emits a "phase" event.
func (t *JSONLTracer) OnPhase(i PhaseInfo) {
	t.emit(jsonlPhase{
		Ev:      "phase",
		Iter:    i.Iter,
		Phase:   i.Phase.String(),
		NS:      int64(i.Duration),
		Bytes:   i.Mem.Bytes,
		Mallocs: i.Mem.Mallocs,
	})
}

type jsonlIter struct {
	Ev         string  `json:"ev"`
	Iter       int     `json:"iter"`
	CurErr     float64 `json:"cur_err"`
	Candidates int     `json:"cands"`
	Feasible   int     `json:"feasible"`
	Accepted   bool    `json:"accepted"`
	NS         int64   `json:"ns"`
}

// OnIteration emits an "iter" event.
func (t *JSONLTracer) OnIteration(i IterationInfo) {
	t.emit(jsonlIter{
		Ev:         "iter",
		Iter:       i.Iter,
		CurErr:     i.CurErr,
		Candidates: i.Candidates,
		Feasible:   i.Feasible,
		Accepted:   i.Accepted,
		NS:         int64(i.Duration),
	})
}

type jsonlCand struct {
	Ev       string  `json:"ev"`
	Iter     int     `json:"iter"`
	Target   string  `json:"target"`
	Sub      string  `json:"sub"`
	Inverted bool    `json:"inv,omitempty"`
	Delta    float64 `json:"delta"`
	Gain     float64 `json:"gain"`
	Score    float64 `json:"score"`
	Exact    bool    `json:"exact"`
}

// OnCandidate emits a "cand" event when EmitCandidates is set.
func (t *JSONLTracer) OnCandidate(i CandidateInfo) {
	if !t.EmitCandidates {
		return
	}
	t.emit(jsonlCand{
		Ev:       "cand",
		Iter:     i.Iter,
		Target:   i.Target,
		Sub:      i.Sub,
		Inverted: i.Inverted,
		Delta:    i.Delta,
		Gain:     i.Gain,
		Score:    i.Score,
		Exact:    i.Exact,
	})
}

type jsonlAccept struct {
	Ev        string  `json:"ev"`
	Iter      int     `json:"iter"`
	Target    string  `json:"target"`
	Sub       string  `json:"sub"`
	Inverted  bool    `json:"inv,omitempty"`
	Predicted float64 `json:"pred_err"`
	Actual    float64 `json:"actual_err"`
	Drift     float64 `json:"drift"`
	Exact     bool    `json:"exact"`
	Area      float64 `json:"area"`
}

// OnAccept emits an "accept" event.
func (t *JSONLTracer) OnAccept(i AcceptInfo) {
	t.emit(jsonlAccept{
		Ev:        "accept",
		Iter:      i.Iter,
		Target:    i.Target,
		Sub:       i.Sub,
		Inverted:  i.Inverted,
		Predicted: i.Predicted,
		Actual:    i.Actual,
		Drift:     i.Drift,
		Exact:     i.Exact,
		Area:      i.Area,
	})
}

func (t *JSONLTracer) emit(v any) {
	t.mu.Lock()
	// Encode errors (a full disk, a closed pipe) must not abort a synthesis
	// run over its telemetry; the trace just ends early.
	_ = t.enc.Encode(v)
	t.mu.Unlock()
}

var _ Tracer = (*JSONLTracer)(nil)
