// Package benchmeta defines the committed BENCH_*.json baseline schema
// shared by cmd/benchjson (which writes baselines) and cmd/benchdiff
// (which compares two of them with noise-aware thresholds).
//
// Schema history:
//
//	v1 (unversioned, PR 2–5): {generated_with, benchmarks, phases?}
//	v2 (PR 7): adds schema_version and env (go version, GOOS/GOARCH,
//	    GOMAXPROCS, CPU model, commit) so a diff can tell whether two
//	    baselines are comparable at all, and warn when a timing delta is
//	    really a hardware delta.
//
// Loaders accept both: a missing schema_version is read as v1.
package benchmeta

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// SchemaVersion is the current baseline schema version.
const SchemaVersion = 2

// Bench is one parsed benchmark result line. Metrics maps unit -> value
// for the standard pairs (ns/op, B/op, allocs/op) and any custom
// b.ReportMetric units (area_ratio, speedup_x, ...).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// PhaseBreakdown embeds the obs layer's five-phase accounting of one
// instrumented smoke flow into the baseline.
type PhaseBreakdown struct {
	Circuit   string           `json:"circuit"`
	M         int              `json:"m"`
	Threshold float64          `json:"threshold"`
	TotalNS   int64            `json:"total_ns"`
	PhaseNS   map[string]int64 `json:"phase_ns"`
	Spans     map[string]int64 `json:"spans"`
}

// Env records where a baseline was measured. Two baselines with differing
// Env fields are still diffable, but timing deltas across differing CPU
// models or GOMAXPROCS are hardware artefacts, not regressions —
// benchdiff surfaces the mismatch instead of gating on it.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Commit     string `json:"commit,omitempty"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	SchemaVersion int             `json:"schema_version,omitempty"` // 0 = legacy v1
	GeneratedWith string          `json:"generated_with"`
	Env           *Env            `json:"env,omitempty"`
	Benchmarks    []Bench         `json:"benchmarks"`
	Phases        *PhaseBreakdown `json:"phases,omitempty"`
}

// Version normalises the schema version: documents written before the
// field existed are v1.
func (b *Baseline) Version() int {
	if b.SchemaVersion == 0 {
		return 1
	}
	return b.SchemaVersion
}

// Validate rejects documents that cannot be a baseline of any version.
func (b *Baseline) Validate() error {
	if v := b.Version(); v < 1 || v > SchemaVersion {
		return fmt.Errorf("benchmeta: unsupported schema_version %d (max %d)", v, SchemaVersion)
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("benchmeta: baseline has no benchmarks")
	}
	seen := make(map[string]bool, len(b.Benchmarks))
	for _, bm := range b.Benchmarks {
		if bm.Name == "" {
			return fmt.Errorf("benchmeta: benchmark with empty name")
		}
		if seen[bm.Name] {
			return fmt.Errorf("benchmeta: duplicate benchmark %q", bm.Name)
		}
		seen[bm.Name] = true
		if len(bm.Metrics) == 0 {
			return fmt.Errorf("benchmeta: benchmark %q has no metrics", bm.Name)
		}
	}
	return nil
}

// MinIterations returns the smallest iteration count across the
// baseline's benchmarks — 1 means the run was benchtime=1x, whose
// single-iteration timings are the noisiest a comparison can consume.
func (b *Baseline) MinIterations() int64 {
	min := int64(0)
	for _, bm := range b.Benchmarks {
		if min == 0 || bm.Iterations < min {
			min = bm.Iterations
		}
	}
	return min
}

// Load reads and validates a baseline file (v1 or v2).
func Load(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchmeta: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("benchmeta: %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// CaptureEnv records the current process environment. The CPU model is
// best-effort from /proc/cpuinfo (empty elsewhere); commit is the
// caller's to fill (flag, GITHUB_SHA, git rev-parse).
func CaptureEnv(commit string) *Env {
	return &Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Commit:     commit,
	}
}

// cpuModel extracts the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output. A result line is "BenchmarkName-P <iters> <value> <unit>
// [<value> <unit>]...". The trailing "-P" GOMAXPROCS suffix is stripped;
// sub-benchmark names (Benchmark/case-P) keep their slash path.
func ParseBenchOutput(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{
			Name:       trimProcSuffix(f[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmeta: line %q: bad value %q", sc.Text(), f[i])
			}
			b.Metrics[f[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchmeta: scan bench output: %w", err)
	}
	return out, nil
}

// trimProcSuffix strips the "-P" GOMAXPROCS suffix from a benchmark name
// without touching dashes inside the name or its sub-benchmark path.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
