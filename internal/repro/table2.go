package repro

import (
	"fmt"
	"strings"
	"time"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

// Table2Row compares the full-simulation estimator against the batch
// estimator on one benchmark (§5.4): same flow, same budget, final area and
// wall-clock for each, plus the speed-up ratio.
type Table2Row struct {
	Circuit      string
	OriginalArea float64
	FullArea     float64
	FullTime     time.Duration
	BatchArea    float64
	BatchTime    time.Duration
	SpeedUp      float64
	// Paper-reported values for side-by-side reference.
	PaperSpeedUp float64
}

var table2Paper = map[string]float64{"c880": 74.4, "c1908": 211, "rca32": 32.4}

// Table2 regenerates the runtime comparison on c880, c1908 and RCA32 under
// a 1% ER constraint.
func Table2(opt Options) ([]Table2Row, error) {
	opt = opt.fill()
	names := []string{"c880", "c1908", "rca32"}
	if opt.Fast {
		names = []string{"rca32"}
	}
	var rows []Table2Row
	for _, name := range names {
		golden := benchOrDie(name, bench.ByName)
		base := sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.01,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
		}
		cfgFull := base
		cfgFull.Estimator = sasimi.EstimatorFull
		full, err := sasimi.Run(golden, cfgFull)
		if err != nil {
			return nil, fmt.Errorf("table2 %s full: %w", name, err)
		}
		cfgBatch := base
		cfgBatch.Estimator = sasimi.EstimatorBatch
		batch, err := sasimi.Run(golden, cfgBatch)
		if err != nil {
			return nil, fmt.Errorf("table2 %s batch: %w", name, err)
		}
		row := Table2Row{
			Circuit:      name,
			OriginalArea: full.OriginalArea,
			FullArea:     full.FinalArea,
			FullTime:     full.TotalTime,
			BatchArea:    batch.FinalArea,
			BatchTime:    batch.TotalTime,
			PaperSpeedUp: table2Paper[name],
		}
		if batch.TotalTime > 0 {
			row.SpeedUp = float64(full.TotalTime) / float64(batch.TotalTime)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats the comparison in the paper's column layout.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: full simulation vs batch estimation (ER <= 1%)\n")
	fmt.Fprintf(&sb, "%-8s %9s | %9s %12s | %9s %12s | %8s %10s\n",
		"circuit", "orig", "full.area", "full.time", "batch.area", "batch.time", "speedup", "paper.spd")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %9.0f | %9.0f %12s | %9.0f %12s | %7.1fx %9.1fx\n",
			r.Circuit, r.OriginalArea, r.FullArea, r.FullTime.Round(time.Millisecond),
			r.BatchArea, r.BatchTime.Round(time.Millisecond), r.SpeedUp, r.PaperSpeedUp)
	}
	return sb.String()
}
