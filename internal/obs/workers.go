package obs

import "strconv"

// PerWorkerCounters pre-resolves one labelled counter per worker index,
// e.g. name{worker="0"} … name{worker="n-1"}, so a worker pool can tick
// its shard counters with a single atomic add per event instead of a
// registry lookup. Looking the same series up twice returns the same
// counters (the registry is get-or-create), so pools sharing a registry
// accumulate into one cumulative per-worker series.
func PerWorkerCounters(reg *Registry, name string, n int) []*Counter {
	if n < 0 {
		n = 0
	}
	out := make([]*Counter, n)
	for i := range out {
		out[i] = reg.Counter(name + `{worker="` + strconv.Itoa(i) + `"}`)
	}
	return out
}
