// Package cell provides a small technology library: per-gate area and delay
// figures used to cost a circuit.Network. It stands in for the SIS
// technology-mapping step of the paper; the paper's flow only needs a
// consistent area metric (gate downsizing is explicitly not modelled there
// either) and a delay metric to guarantee that substitutions never slow the
// circuit down.
package cell

import "batchals/internal/circuit"

// Library maps gate kinds to area and delay. The zero value is unusable;
// use Default or construct all fields.
type Library struct {
	// Area2 is the area of a 2-input gate of each kind (or of the single
	// gate for 1-input kinds). N-ary gates are costed as a balanced tree of
	// 2-input gates: (arity-1) * Area2.
	Area2 map[circuit.Kind]float64
	// Delay is the unit propagation delay per gate instance of each kind.
	Delay map[circuit.Kind]float64
}

// Default returns a library with MCNC-genlib-flavoured relative areas
// (inverter = 1) and unit delays per logic level.
func Default() *Library {
	return &Library{
		Area2: map[circuit.Kind]float64{
			circuit.KindBuf:  1,
			circuit.KindNot:  1,
			circuit.KindNand: 2,
			circuit.KindNor:  2,
			circuit.KindAnd:  3,
			circuit.KindOr:   3,
			circuit.KindXor:  5,
			circuit.KindXnor: 5,
			circuit.KindMux:  5,
		},
		Delay: map[circuit.Kind]float64{
			circuit.KindBuf:  1,
			circuit.KindNot:  1,
			circuit.KindNand: 1,
			circuit.KindNor:  1,
			circuit.KindAnd:  1,
			circuit.KindOr:   1,
			circuit.KindXor:  2,
			circuit.KindXnor: 2,
			circuit.KindMux:  2,
		},
	}
}

// GateArea returns the area of a single gate of the given kind and arity.
// Inputs and constants are free.
func (l *Library) GateArea(k circuit.Kind, arity int) float64 {
	a, ok := l.Area2[k]
	if !ok {
		return 0
	}
	if arity <= 2 {
		return a
	}
	return a * float64(arity-1)
}

// GateDelay returns the propagation delay of a single gate of the kind.
func (l *Library) GateDelay(k circuit.Kind) float64 { return l.Delay[k] }

// NetworkArea returns the total area of all live gates in the network.
func (l *Library) NetworkArea(n *circuit.Network) float64 {
	total := 0.0
	for _, id := range n.LiveNodes() {
		total += l.GateArea(n.Kind(id), len(n.Fanins(id)))
	}
	return total
}

// NetworkDelay returns the critical-path delay of the network under the
// library's per-gate delays (arrival-time propagation in topological
// order).
func (l *Library) NetworkDelay(n *circuit.Network) float64 {
	arrival := make([]float64, n.NumSlots())
	for _, id := range n.TopoOrder() {
		k := n.Kind(id)
		if !k.IsGate() {
			arrival[id] = 0
			continue
		}
		worst := 0.0
		for _, f := range n.Fanins(id) {
			if arrival[f] > worst {
				worst = arrival[f]
			}
		}
		arrival[id] = worst + l.GateDelay(k)
	}
	d := 0.0
	for _, o := range n.Outputs() {
		if arrival[o.Node] > d {
			d = arrival[o.Node]
		}
	}
	return d
}

// NodeArrival returns per-node arrival times under the library delays,
// indexed by NodeID. Flows use this for the no-slowdown substitution guard.
func (l *Library) NodeArrival(n *circuit.Network) []float64 {
	arrival := make([]float64, n.NumSlots())
	for _, id := range n.TopoOrder() {
		k := n.Kind(id)
		if !k.IsGate() {
			continue
		}
		worst := 0.0
		for _, f := range n.Fanins(id) {
			if arrival[f] > worst {
				worst = arrival[f]
			}
		}
		arrival[id] = worst + l.GateDelay(k)
	}
	return arrival
}
