//go:build race

package batchals

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
