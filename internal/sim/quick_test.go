package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchals/internal/circuit"
)

// TestQuickWordScalarAgreement: for random small circuits and random
// patterns, word-parallel simulation agrees with scalar evaluation on
// every output and pattern.
func TestQuickWordScalarAgreement(t *testing.T) {
	f := func(seed int64, nGates uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(t, r, 4+r.Intn(4), 5+int(nGates%40))
		p := RandomPatterns(n.NumInputs(), 64+r.Intn(100), seed+1)
		v := Simulate(n, p)
		in := make([]bool, n.NumInputs())
		for trial := 0; trial < 10; trial++ {
			i := r.Intn(p.NumPatterns())
			for k := range in {
				in[k] = p.Bit(i, k)
			}
			want := EvalOne(n, in)
			for o, out := range n.Outputs() {
				if v.Bit(out.Node, i) != want[o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExhaustiveBitOrder: the exhaustive pattern set assigns input k
// the value bit k of the pattern index.
func TestQuickExhaustiveBitOrder(t *testing.T) {
	f := func(raw uint16) bool {
		nin := 1 + int(raw%10)
		p := ExhaustivePatterns(nin)
		i := int(raw) % p.NumPatterns()
		for k := 0; k < nin; k++ {
			if p.Bit(i, k) != (i>>uint(k)&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConeResimSubsetOnly: resimulating a cone never changes values
// outside the transitive fanout cone of the root.
func TestQuickConeResimSubsetOnly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNetwork(t, r, 5, 30)
		p := RandomPatterns(5, 128, seed)
		v := Simulate(n, p)
		ref := v.Clone()
		var gates []circuit.NodeID
		for _, id := range n.LiveNodes() {
			if n.Kind(id).IsGate() {
				gates = append(gates, id)
			}
		}
		root := gates[r.Intn(len(gates))]
		v.Node(root).Not(v.Node(root))
		ResimulateCone(n, v, root)
		cone := n.TransitiveFanoutCone(root)
		for _, id := range n.LiveNodes() {
			if !cone[id] && !v.Node(id).Equal(ref.Node(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
