// Package blif reads and writes a practical subset of the Berkeley Logic
// Interchange Format: .model / .inputs / .outputs / .names (single-output
// SOP covers) / .end, the subset SIS and ABC emit for combinational
// circuits. Each .names cover is converted to AND/OR/NOT structure.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"batchals/internal/circuit"
)

// cover is one .names block: an SOP over the listed input signals.
type cover struct {
	inputs []string
	output string
	// rows are cube/value pairs: cube like "1-0", value '1' or '0'.
	cubes  []string
	values []byte
	line   int
}

// Parse reads a BLIF model into a Network. Only the first .model in the
// stream is read; .latch, .subckt and .gate are rejected (the library is
// purely combinational and unmapped).
func Parse(r io.Reader) (*circuit.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		modelName string
		inputs    []string
		outputs   []string
		covers    []*cover
		current   *cover
		lineNo    int
	)
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if i := strings.Index(line, "#"); i >= 0 {
				line = strings.TrimSpace(line[:i])
			}
			if line == "" {
				continue
			}
			// Continuation lines.
			for strings.HasSuffix(line, "\\") && sc.Scan() {
				lineNo++
				line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(sc.Text())
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, ".model"):
			if modelName != "" {
				// Second model: stop at the first.
				goto done
			}
			if len(fields) > 1 {
				modelName = fields[1]
			} else {
				modelName = "blif"
			}
		case strings.HasPrefix(line, ".inputs"):
			inputs = append(inputs, fields[1:]...)
			current = nil
		case strings.HasPrefix(line, ".outputs"):
			outputs = append(outputs, fields[1:]...)
			current = nil
		case strings.HasPrefix(line, ".names"):
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: line %d: .names needs at least an output", lineNo)
			}
			current = &cover{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				line:   lineNo,
			}
			covers = append(covers, current)
		case strings.HasPrefix(line, ".end"):
			goto done
		case strings.HasPrefix(line, ".latch"), strings.HasPrefix(line, ".subckt"),
			strings.HasPrefix(line, ".gate"), strings.HasPrefix(line, ".mlatch"):
			return nil, fmt.Errorf("blif: line %d: unsupported construct %s", lineNo, fields[0])
		case strings.HasPrefix(line, "."):
			// Ignore other dot-directives (.default_input_arrival etc.).
			current = nil
		default:
			if current == nil {
				return nil, fmt.Errorf("blif: line %d: cover row outside .names", lineNo)
			}
			if len(current.inputs) == 0 {
				// Constant: single column "1" or "0".
				if len(fields) != 1 || (fields[0] != "1" && fields[0] != "0") {
					return nil, fmt.Errorf("blif: line %d: bad constant row %q", lineNo, line)
				}
				current.cubes = append(current.cubes, "")
				current.values = append(current.values, fields[0][0])
				continue
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("blif: line %d: bad cover row %q", lineNo, line)
			}
			if len(fields[0]) != len(current.inputs) {
				return nil, fmt.Errorf("blif: line %d: cube width %d != %d inputs",
					lineNo, len(fields[0]), len(current.inputs))
			}
			current.cubes = append(current.cubes, fields[0])
			current.values = append(current.values, fields[1][0])
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if modelName == "" {
		return nil, fmt.Errorf("blif: no .model found")
	}
	return build(modelName, inputs, outputs, covers)
}

func build(modelName string, inputs, outputs []string, covers []*cover) (*circuit.Network, error) {
	n := circuit.New(modelName)
	ids := make(map[string]circuit.NodeID)
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		ids[in] = n.AddInput(in)
	}
	// Iteratively resolve covers (BLIF allows any order).
	pending := covers
	for len(pending) > 0 {
		progress := false
		var next []*cover
		for _, c := range pending {
			ready := true
			for _, in := range c.inputs {
				if _, ok := ids[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, c)
				continue
			}
			id, err := buildCover(n, c, ids)
			if err != nil {
				return nil, err
			}
			if _, dup := ids[c.output]; dup {
				return nil, fmt.Errorf("blif: line %d: signal %q defined twice", c.line, c.output)
			}
			n.SetName(id, c.output)
			ids[c.output] = id
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("blif: unresolved covers (cycle or undeclared signal)")
		}
		pending = next
	}
	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q undefined", out)
		}
		n.AddOutput(out, id)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("blif: parsed netlist invalid: %w", err)
	}
	return n, nil
}

// buildCover converts one SOP cover to gates. The on-set (value '1') rows
// become an OR of cube-ANDs; a cover of only '0' rows is the complement of
// the corresponding on-set; an empty cover is constant 0.
func buildCover(n *circuit.Network, c *cover, ids map[string]circuit.NodeID) (circuit.NodeID, error) {
	if len(c.cubes) == 0 {
		return n.AddConst(false), nil
	}
	onVal := byte('1')
	allZero := true
	for _, v := range c.values {
		if v == '1' {
			allZero = false
		} else if v != '0' {
			return 0, fmt.Errorf("blif: line %d: bad cover value %q", c.line, string(v))
		}
	}
	complement := false
	if allZero {
		// Cover lists the off-set: build it, then invert.
		onVal = '0'
		complement = true
	}
	if len(c.inputs) == 0 {
		// Constant cover.
		v := c.values[0] == '1'
		return n.AddConst(v), nil
	}

	inverted := make(map[circuit.NodeID]circuit.NodeID)
	litFor := func(sig circuit.NodeID, neg bool) circuit.NodeID {
		if !neg {
			return sig
		}
		if inv, ok := inverted[sig]; ok {
			return inv
		}
		inv := n.AddGate(circuit.KindNot, sig)
		inverted[sig] = inv
		return inv
	}
	var terms []circuit.NodeID
	for i, cube := range c.cubes {
		if c.values[i] != onVal {
			continue
		}
		var lits []circuit.NodeID
		for j, ch := range cube {
			switch ch {
			case '1':
				lits = append(lits, litFor(ids[c.inputs[j]], false))
			case '0':
				lits = append(lits, litFor(ids[c.inputs[j]], true))
			case '-':
			default:
				return 0, fmt.Errorf("blif: line %d: bad cube char %q", c.line, string(ch))
			}
		}
		var term circuit.NodeID
		switch len(lits) {
		case 0:
			term = n.AddConst(true) // tautology cube
		case 1:
			term = lits[0]
		default:
			term = n.AddGate(circuit.KindAnd, lits...)
		}
		terms = append(terms, term)
	}
	var out circuit.NodeID
	switch len(terms) {
	case 0:
		out = n.AddConst(false)
	case 1:
		out = terms[0]
	default:
		out = n.AddGate(circuit.KindOr, terms...)
	}
	if complement {
		out = n.AddGate(circuit.KindNot, out)
	}
	// The cover output must be a distinct node so it can carry its own
	// name; wrap bare signals in a BUF.
	if !n.Kind(out).IsGate() || nameTaken(n, out) {
		out = n.AddGate(circuit.KindBuf, out)
	}
	return out, nil
}

// nameTaken reports whether node id already carries a signal name (it was
// produced for another cover or is an input), so reusing it would clobber.
func nameTaken(n *circuit.Network, id circuit.NodeID) bool {
	return n.Node(id).Name != ""
}

// Write renders the network as a BLIF model, one .names block per gate.
func Write(w io.Writer, n *circuit.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", safeModelName(n.Name))
	names := uniqueNames(n)

	fmt.Fprintf(bw, ".inputs")
	for _, in := range n.Inputs() {
		fmt.Fprintf(bw, " %s", names[in])
	}
	fmt.Fprintln(bw)

	// Output ports: reuse driver names; alias via a BUF cover if a port
	// name collides or differs.
	type alias struct{ port, sig string }
	var aliases []alias
	usedPorts := map[string]bool{}
	fmt.Fprintf(bw, ".outputs")
	for _, o := range n.Outputs() {
		port := o.Name
		if port == "" || usedPorts[port] {
			port = "po_" + names[o.Node]
			for i := 2; usedPorts[port]; i++ {
				port = fmt.Sprintf("po_%s_%d", names[o.Node], i)
			}
		}
		usedPorts[port] = true
		fmt.Fprintf(bw, " %s", port)
		if port != names[o.Node] {
			aliases = append(aliases, alias{port, names[o.Node]})
		}
	}
	fmt.Fprintln(bw)

	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		if err := writeCover(bw, n, id, names); err != nil {
			return err
		}
	}
	for _, a := range aliases {
		fmt.Fprintf(bw, ".names %s %s\n1 1\n", a.sig, a.port)
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeCover(w io.Writer, n *circuit.Network, id circuit.NodeID, names map[circuit.NodeID]string) error {
	kind := n.Kind(id)
	fanins := n.Fanins(id)
	fmt.Fprintf(w, ".names")
	for _, f := range fanins {
		fmt.Fprintf(w, " %s", names[f])
	}
	fmt.Fprintf(w, " %s\n", names[id])
	k := len(fanins)
	ones := strings.Repeat("1", k)
	zeros := strings.Repeat("0", k)
	switch kind {
	case circuit.KindConst0:
		// Empty cover = constant 0: emit nothing.
	case circuit.KindConst1:
		fmt.Fprintln(w, "1")
	case circuit.KindBuf:
		fmt.Fprintln(w, "1 1")
	case circuit.KindNot:
		fmt.Fprintln(w, "0 1")
	case circuit.KindAnd:
		fmt.Fprintf(w, "%s 1\n", ones)
	case circuit.KindNand:
		fmt.Fprintf(w, "%s 0\n", ones)
	case circuit.KindOr:
		for i := 0; i < k; i++ {
			fmt.Fprintf(w, "%s 1\n", cubeWithOne(k, i, '1'))
		}
	case circuit.KindNor:
		fmt.Fprintf(w, "%s 1\n", zeros)
	case circuit.KindXor, circuit.KindXnor:
		// Enumerate parity minterms; gate arity is small in practice.
		if k > 16 {
			return fmt.Errorf("blif: refusing to expand %d-input %v", k, kind)
		}
		wantOdd := kind == circuit.KindXor
		for m := 0; m < 1<<uint(k); m++ {
			if oddParity(m) != wantOdd {
				continue
			}
			var sb strings.Builder
			for b := 0; b < k; b++ {
				if m>>uint(b)&1 == 1 {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			fmt.Fprintf(w, "%s 1\n", sb.String())
		}
	case circuit.KindMux:
		fmt.Fprintln(w, "01- 1")
		fmt.Fprintln(w, "1-1 1")
	default:
		return fmt.Errorf("blif: cannot export kind %v", kind)
	}
	return nil
}

func cubeWithOne(k, pos int, ch byte) string {
	b := []byte(strings.Repeat("-", k))
	b[pos] = ch
	return string(b)
}

func oddParity(m int) bool {
	p := false
	for m != 0 {
		p = !p
		m &= m - 1
	}
	return p
}

func safeModelName(s string) string {
	if s == "" {
		return "model"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// uniqueNames mirrors benchfmt's exporter: every live node gets a unique
// non-empty name, with output drivers keeping their port names if free.
func uniqueNames(n *circuit.Network) map[circuit.NodeID]string {
	names := make(map[circuit.NodeID]string, n.NumNodes())
	used := map[string]bool{}
	assign := func(id circuit.NodeID, want string) {
		if want == "" || used[want] {
			base := want
			if base == "" {
				base = fmt.Sprintf("n%d", id)
			}
			want = base
			for i := 2; used[want]; i++ {
				want = fmt.Sprintf("%s_%d", base, i)
			}
		}
		used[want] = true
		names[id] = want
	}
	for _, o := range n.Outputs() {
		if _, done := names[o.Node]; !done && o.Name != "" && !used[o.Name] {
			assign(o.Node, o.Name)
		}
	}
	for _, id := range n.LiveNodes() {
		if _, done := names[id]; !done {
			assign(id, n.Node(id).Name)
		}
	}
	return names
}
