// Package lint implements the repo's custom Go-level static analyzers on a
// minimal, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer / Pass / Reportf). The container build
// vendors no third-party modules, so the framework is stdlib-only
// (go/ast + go/parser + go/token); cmd/vetals drives it both standalone
// and through the `go vet -vettool` unitchecker protocol.
//
// Three analyzers enforce repo invariants:
//
//   - bitveclen: every bitvec.Vec method that takes another *Vec must
//     guard against length mismatch (call checkSameLen or compare .n)
//     before touching word slices.
//   - randseed:  library packages must not draw from the global math/rand
//     source — flows are reproducible only through rand.New(rand.NewSource).
//   - apipanic:  the public (non-internal, non-main) API must not panic;
//     errors are returned, panics are reserved for internal invariants.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax through an analyzer, mirroring
// go/analysis.Pass (syntax only: the repo's analyzers are all syntactic).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	PkgPath  string // import path ("batchals/internal/bitvec")
	PkgName  string // package identifier ("bitvec")
	Files    []*ast.File

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message [analyzer]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns the repo's analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{BitvecLen, RandSeed, APIPanic}
}

// Run applies the analyzers to one parsed package and returns the combined
// diagnostics in source order.
func Run(fset *token.FileSet, pkgPath, pkgName string, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			PkgPath:  pkgPath,
			PkgName:  pkgName,
			Files:    files,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

// isTestFile reports whether the file position sits in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// importedAs returns the local identifier under which file f imports path,
// or "" when the path is not imported (or imported blank/dot).
func importedAs(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_", ".":
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
