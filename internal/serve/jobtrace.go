package serve

import (
	"sync"
	"time"

	"batchals/internal/obs/timeline"
)

// JobState is one station of a job's lifecycle through the daemon:
//
//	received → queued → admitted → running → {done, failed, canceled}
//	received → shed                (bounded queue was full)
//	queued   → canceled            (daemon drained while the job waited)
//
// Received is stamped when the spec passes validation, queued when it
// lands in the bounded queue, admitted when the worker dequeues it, and
// running when the synthesis flow actually starts — so queue wait
// (queued→admitted) and scheduling overhead (admitted→running) are
// separately attributable.
type JobState int32

// Job lifecycle states.
const (
	JobReceived JobState = iota
	JobQueued
	JobAdmitted
	JobRunning
	JobDone
	JobFailed
	JobShed
	JobCanceled
	numJobStates // sentinel, not a state
)

var jobStateNames = [numJobStates]string{
	"received", "queued", "admitted", "running",
	"done", "failed", "shed", "canceled",
}

// String returns the wire name of the state.
func (s JobState) String() string {
	if s >= 0 && s < numJobStates {
		return jobStateNames[s]
	}
	return "unknown"
}

// Terminal reports whether the state ends a job's lifecycle.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobShed, JobCanceled:
		return true
	}
	return false
}

// jobStateNext is the legal-transition relation of the state machine.
// Queued→shed covers the bounded queue's tentative-enqueue path (the
// queued stamp lands just before the non-blocking send that may shed);
// received→canceled covers a submission racing the daemon's drain.
var jobStateNext = map[JobState][]JobState{
	JobReceived: {JobQueued, JobShed, JobFailed, JobCanceled},
	JobQueued:   {JobAdmitted, JobShed, JobCanceled},
	JobAdmitted: {JobRunning, JobCanceled, JobFailed},
	JobRunning:  {JobDone, JobFailed, JobCanceled},
}

// JobTrace records one job's walk through the lifecycle state machine,
// stamping a monotonic timestamp at every transition (time.Time carries
// Go's monotonic clock, so intervals are immune to wall-clock jumps).
// It is safe for concurrent use: the daemon writes transitions, the
// /jobs/{name} handler snapshots concurrently.
type JobTrace struct {
	mu       sync.Mutex
	name     string
	received time.Time
	states   []JobState
	times    []time.Time
	err      string
}

// NewJobTrace starts a trace in the received state.
func NewJobTrace(name string) *JobTrace {
	t := &JobTrace{name: name, received: time.Now()}
	t.states = append(t.states, JobReceived)
	t.times = append(t.times, t.received)
	return t
}

// To advances the trace to state s, stamping the transition time. Illegal
// transitions (per the state machine) are rejected and return false,
// leaving the trace unchanged — a terminal trace stays terminal.
func (t *JobTrace) To(s JobState) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.states[len(t.states)-1]
	legal := false
	for _, n := range jobStateNext[cur] {
		if n == s {
			legal = true
			break
		}
	}
	if !legal {
		return false
	}
	t.states = append(t.states, s)
	t.times = append(t.times, time.Now())
	return true
}

// Fail moves the trace to failed with the given message.
func (t *JobTrace) Fail(msg string) bool {
	if !t.To(JobFailed) {
		return false
	}
	t.mu.Lock()
	t.err = msg
	t.mu.Unlock()
	return true
}

// State returns the trace's current state.
func (t *JobTrace) State() JobState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.states[len(t.states)-1]
}

// at returns the stamp of the first transition into s; t.mu must be held.
func (t *JobTrace) at(s JobState) (time.Time, bool) {
	for i, st := range t.states {
		if st == s {
			return t.times[i], true
		}
	}
	return time.Time{}, false
}

// interval returns to-from when both states were visited in order.
func (t *JobTrace) interval(from, to JobState) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, okA := t.at(from)
	b, okB := t.at(to)
	if !okA || !okB {
		return 0, false
	}
	return b.Sub(a), true
}

// QueueWait returns the queued→admitted interval, once admitted.
func (t *JobTrace) QueueWait() (time.Duration, bool) {
	return t.interval(JobQueued, JobAdmitted)
}

// RunWall returns the running→terminal interval, once terminal.
func (t *JobTrace) RunWall() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.at(JobRunning)
	last := len(t.states) - 1
	if !ok || !t.states[last].Terminal() {
		return 0, false
	}
	return t.times[last].Sub(a), true
}

// E2E returns the received→terminal interval, once terminal.
func (t *JobTrace) E2E() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	last := len(t.states) - 1
	if !t.states[last].Terminal() {
		return 0, false
	}
	return t.times[last].Sub(t.received), true
}

// JobTransition is one lifecycle transition in the /jobs/{name} document.
type JobTransition struct {
	State string `json:"state"`
	AtNS  int64  `json:"at_ns"` // nanoseconds since the job was received
}

// JobTraceSnapshot is the JSON shape of one job's lifecycle at
// /jobs/{name}. The duration fields appear once the defining transitions
// exist (queue wait after admission, run wall and end-to-end once
// terminal).
type JobTraceSnapshot struct {
	Name        string          `json:"name"`
	State       string          `json:"state"`
	Error       string          `json:"error,omitempty"`
	ReceivedAt  time.Time       `json:"received_at"`
	Transitions []JobTransition `json:"transitions"`
	QueueWaitNS int64           `json:"queue_wait_ns,omitempty"`
	RunNS       int64           `json:"run_ns,omitempty"`
	E2ENS       int64           `json:"e2e_ns,omitempty"`
}

// Snapshot freezes the trace for export.
func (t *JobTrace) Snapshot() JobTraceSnapshot {
	t.mu.Lock()
	s := JobTraceSnapshot{
		Name:        t.name,
		State:       t.states[len(t.states)-1].String(),
		Error:       t.err,
		ReceivedAt:  t.received,
		Transitions: make([]JobTransition, len(t.states)),
	}
	for i, st := range t.states {
		s.Transitions[i] = JobTransition{
			State: st.String(),
			AtNS:  t.times[i].Sub(t.received).Nanoseconds(),
		}
	}
	t.mu.Unlock()
	if d, ok := t.QueueWait(); ok {
		s.QueueWaitNS = d.Nanoseconds()
	}
	if d, ok := t.RunWall(); ok {
		s.RunNS = d.Nanoseconds()
	}
	if d, ok := t.E2E(); ok {
		s.E2ENS = d.Nanoseconds()
	}
	return s
}

// EmitService bridges the trace onto a timeline recorder as spans on the
// service lane: one span per lifecycle segment ("service.queued" covers
// queued→admitted, "service.running" covers running→terminal, ...), so a
// Perfetto export of a served job shows queue wait adjacent to the
// synthesis phases the flow recorded on the driver/worker lanes. Call it
// after the trace is terminal and the flow has finished writing (the
// driver lane is single-writer).
func (t *JobTrace) EmitService(rec *timeline.Recorder) {
	if rec == nil {
		return
	}
	t.mu.Lock()
	states := append([]JobState(nil), t.states...)
	times := append([]time.Time(nil), t.times...)
	t.mu.Unlock()
	var parent int64
	for i := 0; i+1 < len(states); i++ {
		t0, t1 := rec.Rel(times[i]), rec.Rel(times[i+1])
		if t0 < 0 {
			t0 = 0 // trace began before the recorder's epoch
		}
		if t1 < t0 {
			t1 = t0
		}
		id := rec.Emit(0, timeline.Span{
			Parent: parent,
			Name:   "service." + states[i].String(),
			Worker: timeline.ServiceWorker,
			Shard:  -1,
			T0:     t0,
			T1:     t1,
		})
		if parent == 0 {
			parent = id
		}
	}
}
