package par

import "batchals/internal/bitvec"

// Shard is one contiguous, word-aligned slice of the M-pattern space:
// patterns [Lo, Hi) stored in value-vector words [W0, W1). Shards never
// split a 64-pattern word, so concurrent workers writing different shards
// of the same bit vector touch disjoint uint64 words — no atomics, no
// false sharing on the bit level, and no read-modify-write hazards.
type Shard struct {
	Index  int // position in the fixed combine order
	Lo, Hi int // pattern index range [Lo, Hi)
	W0, W1 int // word index range [W0, W1)
}

// Patterns returns the number of patterns the shard covers.
func (s Shard) Patterns() int { return s.Hi - s.Lo }

// Shards splits m patterns into at most n word-aligned shards. Every word
// belongs to exactly one shard, shards are contiguous and ordered by
// pattern index, and the split is a pure function of (m, n) — the same
// inputs always produce the same partition. Fewer than n shards are
// returned when m spans fewer than n words. m must be positive.
func Shards(m, n int) []Shard {
	if m <= 0 {
		panic("par: Shards needs a positive pattern count")
	}
	if n < 1 {
		n = 1
	}
	words := bitvec.Words(m)
	if n > words {
		n = words
	}
	base := words / n
	rem := words % n
	shards := make([]Shard, n)
	w := 0
	for i := range shards {
		span := base
		if i < rem {
			span++
		}
		lo := w * bitvec.WordBits
		w += span
		hi := w * bitvec.WordBits
		if hi > m {
			hi = m
		}
		shards[i] = Shard{Index: i, Lo: lo, Hi: hi, W0: w - span, W1: w}
	}
	return shards
}
