package obs

import (
	"errors"
	"testing"
)

// failAfterWriter fails every Write after the first n bytes have passed.
type failAfterWriter struct {
	budget int
	err    error
	wrote  int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.budget {
		return 0, w.err
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestJSONLTracerSurfacesWriteErrors pins the failing-sink contract: the
// tracer never panics or blocks the flow, but the failure is visible via
// Err/ErrCount and the optional registry counter instead of being
// silently swallowed.
func TestJSONLTracerSurfacesWriteErrors(t *testing.T) {
	sinkErr := errors.New("disk full")
	w := &failAfterWriter{budget: 0, err: sinkErr}
	reg := NewRegistry()
	tr := NewJSONLTracer(w)
	tr.CountErrorsIn(reg, "trace_write_errors_total")

	// Events buffer in the bufio layer; the write error surfaces at Flush
	// (or earlier, once the buffer spills).
	tr.OnIteration(IterationInfo{Iter: 1})
	if err := tr.Flush(); !errors.Is(err, sinkErr) {
		t.Fatalf("Flush = %v, want %v", err, sinkErr)
	}
	if err := tr.Err(); !errors.Is(err, sinkErr) {
		t.Fatalf("Err = %v, want %v", err, sinkErr)
	}
	first := tr.ErrCount()
	if first == 0 {
		t.Fatal("ErrCount zero after a failed flush")
	}

	// Later events keep failing (bufio's error is sticky) and keep
	// counting — but never panic and never abort the caller.
	tr.OnAccept(AcceptInfo{Iter: 2, Target: "g"})
	tr.OnPhase(PhaseInfo{Phase: PhaseSimulate})
	_ = tr.Flush()
	if tr.ErrCount() <= first {
		t.Fatalf("ErrCount stuck at %d after more failing writes", tr.ErrCount())
	}
	if errors.Is(tr.Err(), nil) || !errors.Is(tr.Err(), sinkErr) {
		t.Fatalf("first error not sticky: %v", tr.Err())
	}
	if got := reg.Counter("trace_write_errors_total").Value(); got != tr.ErrCount() {
		t.Fatalf("registry counter %d != ErrCount %d", got, tr.ErrCount())
	}
}

// TestJSONLTracerHealthySinkReportsNoError is the control: a working
// writer leaves Err nil and the counter untouched.
func TestJSONLTracerHealthySinkReportsNoError(t *testing.T) {
	var sink nopWriter
	tr := NewJSONLTracer(&sink)
	tr.OnIteration(IterationInfo{Iter: 1})
	tr.OnAccept(AcceptInfo{Iter: 1})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil || tr.ErrCount() != 0 {
		t.Fatalf("healthy sink reported err=%v count=%d", tr.Err(), tr.ErrCount())
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
