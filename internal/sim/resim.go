package sim

import (
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/obs"
	"batchals/internal/par"
)

// Grow extends the value table to cover n node slots, so vectors for nodes
// created by a network edit can be installed. Existing vectors are kept.
func (v *Values) Grow(n int) {
	for len(v.vecs) < n {
		v.vecs = append(v.vecs, nil)
	}
}

// Drop releases the value vector of a deleted node slot.
func (v *Values) Drop(id circuit.NodeID) {
	if int(id) < len(v.vecs) {
		v.vecs[id] = nil
	}
}

// ResimulateConeParallel is ResimulateCone with the pattern axis sharded
// across the pool's workers. Each worker re-evaluates the whole cone in
// topological order restricted to its word range; a node's word w depends
// only on its fanins' word w (finalised earlier in the same shard's pass),
// so every word receives exactly the value the sequential resimulation
// would compute — bit-identical at any worker count. A nil or
// single-worker pool falls through to ResimulateCone.
func ResimulateConeParallel(n *circuit.Network, v *Values, root circuit.NodeID, pool *par.Pool) []circuit.NodeID {
	if pool.Workers() <= 1 {
		return ResimulateCone(n, v, root)
	}
	inCone := n.TransitiveFanoutCone(root)
	var list []circuit.NodeID
	for _, id := range n.TopoOrder() {
		if inCone[id] && id != root {
			list = append(list, id)
		}
	}
	pool.Label("sim.resim_cone", obs.PhaseSimulate)
	resimSharded(n, v, list, pool, nil)
	statConeResims.Inc()
	statGateEvals.Add(int64(len(list)))
	return list
}

// ResimulateFrom re-evaluates, in place, the union of the structural
// fanout cones of the seed nodes (seeds included) and reports which nodes'
// value vectors actually changed. It is the incremental iteration engine's
// workhorse: after netlist surgery, the seeds are the rewired gates (whose
// fanin lists now read different nodes) plus any newly created nodes
// (whose vectors do not exist yet — the table is grown and fresh vectors
// allocated).
//
// The changed set is a pure function of the network and the value table —
// a node is reported iff its recomputed vector differs from its previous
// one in any of the M bits — so it is identical at any worker count:
// workers compute disjoint word ranges and their per-word difference flags
// are OR-combined after the join. Primary inputs are never re-evaluated.
func ResimulateFrom(n *circuit.Network, v *Values, seeds []circuit.NodeID, pool *par.Pool) (resimmed, changed []circuit.NodeID) {
	v.Grow(n.NumSlots())
	inCone := make([]bool, n.NumSlots())
	stack := make([]circuit.NodeID, 0, len(seeds))
	for _, s := range seeds {
		if n.IsLive(s) && !inCone[s] {
			inCone[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range n.Fanouts(x) {
			if !inCone[fo] {
				inCone[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	var list []circuit.NodeID
	for _, id := range n.TopoOrder() {
		if !inCone[id] || n.Kind(id) == circuit.KindInput {
			continue
		}
		if v.vecs[id] == nil { // newly created node
			v.vecs[id] = bitvec.New(v.M)
		}
		list = append(list, id)
	}
	if len(list) == 0 {
		return nil, nil
	}
	diff := make([]bool, len(list))
	pool.Label("sim.resim_from", obs.PhaseSimulate)
	resimSharded(n, v, list, pool, diff)
	for i, id := range list {
		if diff[i] {
			changed = append(changed, id)
		}
	}
	statConeResims.Inc()
	statGateEvals.Add(int64(len(list)))
	return list, changed
}

// resimSharded re-evaluates the topologically ordered node list in place,
// pattern-sharded over the pool. When diff is non-nil (len(list)), entry i
// is set if node list[i]'s vector changed in any word. Every worker writes
// only its shard's words and its shard-local difference flags; flags are
// OR-combined in fixed shard order after the join.
func resimSharded(n *circuit.Network, v *Values, list []circuit.NodeID, pool *par.Pool, diff []bool) {
	if len(list) == 0 {
		return
	}
	words := bitvec.Words(v.M)
	last := words - 1
	tail := bitvec.TailMask(v.M)
	shards := par.Shards(v.M, pool.Workers())
	var shardDiff [][]bool
	if diff != nil {
		shardDiff = make([][]bool, len(shards))
		for i := range shardDiff {
			shardDiff[i] = make([]bool, len(list))
		}
	}
	pool.Do(len(shards), func(_, si int) {
		sh := shards[si]
		buf := make([]uint64, 8)
		for li, id := range list {
			kind := n.Kind(id)
			fanins := n.Fanins(id)
			if cap(buf) < len(fanins) {
				buf = make([]uint64, len(fanins))
			}
			b := buf[:len(fanins)]
			out := v.vecs[id].WordsSlice()
			changed := false
			for w := sh.W0; w < sh.W1; w++ {
				for j, f := range fanins {
					b[j] = v.vecs[f].WordsSlice()[w]
				}
				nw := kind.EvalWord(b)
				if w == last {
					nw &= tail
				}
				if out[w] != nw {
					changed = true
					out[w] = nw
				}
			}
			if changed && shardDiff != nil {
				shardDiff[si][li] = true
			}
		}
	})
	for si := range shardDiff {
		for li, d := range shardDiff[si] {
			if d {
				diff[li] = true
			}
		}
	}
}
