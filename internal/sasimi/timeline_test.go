package sasimi

import (
	"reflect"
	"testing"

	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

// TestTimelineFlowParallelBitIdentical is the differential guarantee of
// the span recorder: attaching a timeline must not change a single bit of
// the flow's output at any worker count. The recorder only ever observes
// from the dispatching goroutine, so this pins that contract.
func TestTimelineFlowParallelBitIdentical(t *testing.T) {
	base := Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.10,
			NumPatterns: 2000,
			Seed:        11,
		},
		KeepTrace:  true,
		VerifyTopK: 3,
	}
	for _, workers := range workerSweep() {
		plain := base
		plain.Workers = workers
		plain.Metrics = obs.NewRegistry()
		want := fingerprint(runOn(t, "rca8", plain), plain.Metrics)

		traced := base
		traced.Workers = workers
		traced.Metrics = obs.NewRegistry()
		traced.Timeline = timeline.NewRecorder(workers+1, 0)
		got := fingerprint(runOn(t, "rca8", traced), traced.Metrics)

		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: recorder attached diverges from recorder nil:\n got  %+v\n want %+v",
				workers, got, want)
		}
		if want.Iterations == 0 {
			t.Fatal("flow accepted nothing; differential check is vacuous")
		}
		if traced.Timeline.SpanCount() == 0 {
			t.Errorf("workers=%d: recorder attached but no spans recorded", workers)
		}
	}
}

// TestTimelineFlowSpanTaxonomy runs one traced flow and checks the span
// names the profiler's analysis relies on actually appear, tagged with
// the right phases, and that dispatch spans carry busy accounting.
func TestTimelineFlowSpanTaxonomy(t *testing.T) {
	rec := timeline.NewRecorder(5, 0)
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Workers:    4,
		VerifyTopK: 3,
		Timeline:   rec,
	})
	if res.NumIterations == 0 {
		t.Fatal("flow made no progress; nothing to profile")
	}

	spans := rec.Snapshot()
	byName := map[string][]timeline.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for name, wantPhase := range map[string]obs.Phase{
		"sim.simulate":       obs.PhaseSimulate,
		"cpm.build":          obs.PhaseCPMBuild,
		"sasimi.gather":      obs.PhaseEstimate,
		"sasimi.score":       obs.PhaseEstimate,
		"sasimi.verify_topk": obs.PhaseVerifyApply,
		"sasimi.apply":       obs.PhaseVerifyApply,
		"iteration":          obs.PhaseEstimate,
	} {
		group := byName[name]
		if len(group) == 0 {
			t.Errorf("no %q spans recorded", name)
			continue
		}
		for _, s := range group {
			if s.Phase != wantPhase {
				t.Errorf("%q span phase = %v, want %v", name, s.Phase, wantPhase)
				break
			}
		}
	}
	// The verify step is parallel at Workers=4: its dispatches must fan
	// out as per-worker child spans (Worker >= 0, causally parented on a
	// dispatch) instead of the serial path's per-candidate verify_cand
	// spans.
	var verifyWorkerSpans, verifyDispatches int
	for _, s := range byName["sasimi.verify_topk"] {
		if s.Worker >= 0 {
			verifyWorkerSpans++
			if s.Parent == 0 {
				t.Error("per-worker verify_topk span has no parent dispatch")
			}
		} else if s.Tasks > 0 {
			verifyDispatches++
		}
	}
	if verifyDispatches == 0 {
		t.Error("no verify_topk dispatch spans recorded at workers=4")
	}
	if verifyWorkerSpans == 0 {
		t.Error("no per-worker verify_topk child spans recorded at workers=4")
	}
	if len(byName["sasimi.verify_cand"]) != 0 {
		t.Error("serial per-candidate verify_cand spans recorded on the parallel path")
	}

	// Dispatch spans (driver lane, task-counted) must carry busy time, and
	// some worker span must exist to attribute it to.
	var dispatches, workerSpans int
	for _, s := range spans {
		if s.Worker < 0 && s.Tasks > 0 {
			dispatches++
			if s.Busy <= 0 {
				t.Errorf("dispatch span %q has no busy accounting", s.Name)
			}
		}
		if s.Worker >= 0 {
			workerSpans++
		}
	}
	if dispatches == 0 {
		t.Error("no dispatch spans recorded")
	}
	if workerSpans == 0 {
		t.Error("no per-worker spans recorded")
	}
	// The flow must label spans with their iteration: iteration 1 spans
	// exist once a substitution was accepted.
	maxIter := int32(0)
	for _, s := range spans {
		if s.Iter > maxIter {
			maxIter = s.Iter
		}
	}
	if maxIter == 0 && res.NumIterations > 0 {
		t.Error("no span carries a nonzero iteration label")
	}
}

// TestTimelineSerialVerifyCandSpans pins the single-worker taxonomy: with
// no pool parallelism the verifier takes the ExactDelta path and still
// emits the per-candidate "sasimi.verify_cand" spans the CPU-profile
// labelling relies on.
func TestTimelineSerialVerifyCandSpans(t *testing.T) {
	rec := timeline.NewRecorder(2, 0)
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Workers:    1,
		VerifyTopK: 3,
		Timeline:   rec,
	})
	if res.NumIterations == 0 {
		t.Fatal("flow made no progress; nothing to profile")
	}
	var cands int
	for _, s := range rec.Snapshot() {
		if s.Name == "sasimi.verify_cand" {
			cands++
			if s.Phase != obs.PhaseVerifyApply {
				t.Errorf("verify_cand span phase = %v, want %v", s.Phase, obs.PhaseVerifyApply)
			}
		}
	}
	if cands == 0 {
		t.Error("no per-candidate verify_cand spans at workers=1")
	}
}

// TestFlowRuntimeAndSpeedupGauges pins the observability gauges the bench
// observatory consumes: the pool's sasimi_parallel_speedup and the
// runtime sampler's gauges all land in the flow's registry.
func TestFlowRuntimeAndSpeedupGauges(t *testing.T) {
	reg := obs.NewRegistry()
	res := runOn(t, "rca8", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.10,
			NumPatterns: 2000,
			Seed:        11,
		},
		Workers: 2,
		Metrics: reg,
	})
	if res.NumIterations == 0 {
		t.Fatal("flow made no progress")
	}
	snap := reg.Snapshot()
	speedup, ok := snap.Gauges["sasimi_parallel_speedup"]
	if !ok {
		t.Fatal("sasimi_parallel_speedup gauge missing")
	}
	if speedup <= 0 {
		t.Errorf("sasimi_parallel_speedup = %f, want > 0", speedup)
	}
	for _, name := range []string{
		"runtime_goroutines",
		"runtime_gomaxprocs",
		"runtime_sched_latency_p50_s",
		"runtime_sched_latency_p99_s",
		"runtime_gc_pause_p99_s",
		"runtime_gc_cycles_total",
		"runtime_heap_alloc_bytes_total",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("runtime gauge %q missing from the flow registry", name)
		}
	}
}
