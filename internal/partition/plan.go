// Package partition implements the partition-and-conquer flow for
// netlists far beyond what one monolithic batch-estimation run can hold:
// a reconvergence-aware partitioner cuts the network into ~TargetCells
// parts along fanout-free-region boundaries, each part is materialised as
// a standalone circuit driven by recorded simulation patterns from the
// parent run, an independent SASIMI flow approximates every part under a
// slice of the global error budget (parallel across parts via par.Pool,
// layered on the existing pattern-shard parallelism), and a merge step
// stitches the approximated parts back together with the existing
// estimator re-measuring global error as the acceptance gate.
//
// The partitioner never cuts inside a fanout-free region: FFR roots are
// exactly the multi-consumer signals, so region boundaries are where the
// interface is narrow and where the batch estimator's per-part exactness
// certificates stay meaningful. See DESIGN.md §17.
package partition

import (
	"fmt"
	"sort"

	"batchals/internal/analyze"
	"batchals/internal/circuit"
)

// Options configures the partitioner and the global budget allocator.
// The zero value selects the defaults below.
type Options struct {
	// TargetCells is the soft lower bound on gates per part (default
	// 2000, the part size both exemplar partition-and-conquer ALS repos
	// converged on). A part closes at the first FFR boundary at or past
	// TargetCells whose cut is narrow enough, and never grows beyond
	// 1.5x TargetCells without closing at the narrowest boundary seen.
	TargetCells int
	// MaxCut is the cut width (signals crossing a part boundary) below
	// which a boundary is accepted immediately (default 64). It is
	// advisory, not a hard limit: when no boundary in the size window is
	// that narrow, the narrowest one wins.
	MaxCut int
	// BudgetPolicy selects how the global error budget is split across
	// parts: "observability" (default) weighs each part by how many
	// primary outputs its exported signals reach, "uniform" splits
	// evenly.
	BudgetPolicy string
	// MaxRounds bounds the allocate -> run -> reclaim loop (default 2):
	// after each round, budget left unused by converged parts is pooled
	// and re-granted to parts that exhausted theirs.
	MaxRounds int
}

// Budget policies accepted by Options.BudgetPolicy.
const (
	PolicyObservability = "observability"
	PolicyUniform       = "uniform"
)

// FillDefaults replaces zero values with the package defaults.
func (o *Options) FillDefaults() {
	if o.TargetCells <= 0 {
		o.TargetCells = 2000
	}
	if o.MaxCut <= 0 {
		o.MaxCut = 64
	}
	if o.BudgetPolicy == "" {
		o.BudgetPolicy = PolicyObservability
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 2
	}
}

// Validate rejects unknown policy names. Call after FillDefaults.
func (o *Options) Validate() error {
	switch o.BudgetPolicy {
	case PolicyObservability, PolicyUniform:
		return nil
	}
	return fmt.Errorf("partition: unknown budget policy %q (want %q or %q)",
		o.BudgetPolicy, PolicyObservability, PolicyUniform)
}

// Part is one slice of the parent network: a topologically contiguous run
// of fanout-free regions. All node ids are parent ids; Extract maps them
// into a standalone network.
type Part struct {
	// Index is the part's position in topological part order: every
	// boundary signal a part consumes is produced by a part with a
	// strictly smaller index (or is a primary input).
	Index int
	// Members are the part's gates in parent topological order.
	Members []circuit.NodeID
	// Inputs are the part's boundary signals — parent primary inputs plus
	// cut signals from earlier parts — in ascending parent id order.
	Inputs []circuit.NodeID
	// Outputs are the part's exported signals — gates consumed by later
	// parts or bound to parent primary outputs — in ascending parent id
	// order.
	Outputs []circuit.NodeID
	// CutIns counts the Inputs that are cut gate signals (not primary
	// inputs): the width of the part's upstream interface.
	CutIns int
}

// Cells returns the part's gate count.
func (p *Part) Cells() int { return len(p.Members) }

// Plan is a partitioning of one network: every live gate belongs to
// exactly one part, parts are convex (no edge from a later part back into
// an earlier one), and primary inputs and constants belong to no part
// (inputs become boundary signals, constants are replicated per part).
type Plan struct {
	Net   *circuit.Network
	Parts []Part

	partOf []int // indexed by parent NodeID; -1 for inputs/constants/dead slots
}

// NumParts returns the number of parts.
func (p *Plan) NumParts() int { return len(p.Parts) }

// PartOf returns the part index owning gate id, or -1 for inputs,
// constants and dead slots.
func (p *Plan) PartOf(id circuit.NodeID) int { return p.partOf[id] }

// MaxCutIns returns the widest upstream interface across parts.
func (p *Plan) MaxCutIns() int {
	w := 0
	for i := range p.Parts {
		if c := p.Parts[i].CutIns; c > w {
			w = c
		}
	}
	return w
}

// ffrUnit is one fanout-free region restricted to its gates, the atomic
// grain of partitioning.
type ffrUnit struct {
	root    circuit.NodeID
	members []circuit.NodeID // gates, parent topo order
}

// BuildPlan partitions the network along FFR boundaries. The construction
// guarantees convexity: units are ordered by the topological position of
// their region root, and every cross-region edge originates at a region
// root (a single-consumer node always joins its consumer's region), so an
// edge from unit A into unit B implies topo(root A) < topo(root B) and
// contiguous chunks of the unit order can only be fed from earlier chunks.
// Cut width is minimised per boundary: the number of signals crossing a
// prefix/suffix split depends only on the split point, so the chunker
// closes each part at the narrowest boundary inside its size window.
func BuildPlan(net *circuit.Network, opt Options) (*Plan, error) {
	opt.FillDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}

	order := net.TopoOrder()
	topoIdx := make([]int, net.NumSlots())
	for i, id := range order {
		topoIdx[id] = i
	}
	ffrs := analyze.ComputeFFRs(net)

	// Group gates into units by FFR root, units ordered by root topo
	// position, members in parent topo order.
	unitOf := make(map[circuit.NodeID]int)
	var units []ffrUnit
	var roots []circuit.NodeID
	for _, id := range order {
		if !net.Kind(id).IsGate() {
			continue
		}
		r := ffrs.Root(id)
		if _, ok := unitOf[r]; !ok {
			unitOf[r] = 0 // placeholder until roots are ordered
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return topoIdx[roots[i]] < topoIdx[roots[j]] })
	units = make([]ffrUnit, len(roots))
	for i, r := range roots {
		units[i].root = r
		unitOf[r] = i
	}
	unitOfGate := make([]int, net.NumSlots())
	for i := range unitOfGate {
		unitOfGate[i] = -1
	}
	for _, id := range order {
		if !net.Kind(id).IsGate() {
			continue
		}
		u := unitOf[ffrs.Root(id)]
		units[u].members = append(units[u].members, id)
		unitOfGate[id] = u
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("partition: network %q has no gates", net.Name)
	}

	// frontier[i] = number of gate signals crossing the boundary between
	// units[0..i] and units[i+1..]: gates in the prefix with at least one
	// gate consumer in the suffix. A gate g produced in unit u(g) and last
	// consumed in unit maxCU(g) crosses boundaries u(g) .. maxCU(g)-1;
	// accumulate with a difference array.
	diff := make([]int, len(units)+1)
	for _, id := range order {
		u := unitOfGate[id]
		if u < 0 {
			continue
		}
		maxCU := -1
		for _, fo := range net.Fanouts(id) {
			if cu := unitOfGate[fo]; cu > maxCU {
				maxCU = cu
			}
		}
		if maxCU > u {
			diff[u]++
			diff[maxCU]--
		}
	}
	frontier := make([]int, len(units))
	run := 0
	for i := range units {
		run += diff[i]
		frontier[i] = run
	}

	// Chunk units into parts: grow to TargetCells, then close at the
	// first boundary with cut <= MaxCut, or — once past 1.5x TargetCells —
	// at the narrowest boundary seen since TargetCells.
	plan := &Plan{Net: net, partOf: make([]int, net.NumSlots())}
	for i := range plan.partOf {
		plan.partOf[i] = -1
	}
	hi := opt.TargetCells + opt.TargetCells/2
	start := 0
	for start < len(units) {
		cells := 0
		closeAt := -1
		best, bestCut := -1, int(^uint(0)>>1)
		for i := start; i < len(units); i++ {
			cells += len(units[i].members)
			if cells < opt.TargetCells {
				continue
			}
			if frontier[i] <= opt.MaxCut {
				closeAt = i
				break
			}
			if frontier[i] < bestCut {
				best, bestCut = i, frontier[i]
			}
			if cells >= hi {
				closeAt = best
				break
			}
		}
		if closeAt == -1 {
			if best >= 0 {
				closeAt = best // ran out of units past TargetCells
			} else {
				closeAt = len(units) - 1 // undersized tail part
			}
		}
		k := len(plan.Parts)
		part := Part{Index: k}
		for i := start; i <= closeAt; i++ {
			part.Members = append(part.Members, units[i].members...)
		}
		for _, id := range part.Members {
			plan.partOf[id] = k
		}
		plan.Parts = append(plan.Parts, part)
		start = closeAt + 1
	}

	if err := plan.computeBoundaries(); err != nil {
		return nil, err
	}
	return plan, nil
}

// computeBoundaries fills each part's Inputs/Outputs/CutIns from the
// part assignment and verifies convexity.
func (p *Plan) computeBoundaries() error {
	net := p.Net
	isPO := make([]bool, net.NumSlots())
	for _, o := range net.Outputs() {
		isPO[o.Node] = true
	}
	for k := range p.Parts {
		part := &p.Parts[k]
		inSet := make(map[circuit.NodeID]bool)
		outSet := make(map[circuit.NodeID]bool)
		for _, g := range part.Members {
			for _, f := range net.Fanins(g) {
				fk := net.Kind(f)
				if fk == circuit.KindConst0 || fk == circuit.KindConst1 {
					continue // constants are replicated, never cut
				}
				src := p.partOf[f]
				if src == k {
					continue
				}
				if src > k {
					return fmt.Errorf("partition: convexity violated: part %d consumes %s from part %d",
						k, net.NameOf(f), src)
				}
				inSet[f] = true
			}
			if isPO[g] {
				outSet[g] = true
			}
			for _, fo := range net.Fanouts(g) {
				if dst := p.partOf[fo]; dst != k && dst >= 0 {
					if dst < k {
						return fmt.Errorf("partition: convexity violated: part %d feeds %s back to part %d",
							k, net.NameOf(g), dst)
					}
					outSet[g] = true
				}
			}
		}
		part.Inputs = sortedIDs(inSet)
		part.Outputs = sortedIDs(outSet)
		part.CutIns = 0
		for _, id := range part.Inputs {
			if net.Kind(id) != circuit.KindInput {
				part.CutIns++
			}
		}
	}
	return nil
}

func sortedIDs(set map[circuit.NodeID]bool) []circuit.NodeID {
	ids := make([]circuit.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
