package core

import (
	"sync/atomic"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sim"
)

var (
	statCPMRefreshes = obs.Default().Counter("cpm_refreshes_total")
	statCPMRefreshNS = obs.Default().Counter("cpm_refresh_ns_total")
	statCPMDirtyRows = obs.Default().Counter("cpm_refresh_dirty_rows_total")
	statCPMCleanRows = obs.Default().Counter("cpm_refresh_clean_rows_total")
)

// Edit records one netlist surgery (a substitution plus its dead-logic
// sweep) in exactly the terms the incremental engine needs to bound its
// dirty regions. All sets refer to the post-edit network; Removed ids are
// no longer live.
type Edit struct {
	// Repl is the surviving node that took over the replaced node's fanouts
	// and output bindings (the substitute, or the fresh inverter/constant).
	Repl circuit.NodeID
	// Rewired are the live nodes whose fanin lists were redirected — the
	// former fanouts of the replaced node.
	Rewired []circuit.NodeID
	// Added are nodes created by the edit (e.g. the inverter of an
	// inverted substitution), in creation order.
	Added []circuit.NodeID
	// Removed are the nodes deleted by the edit's dead-logic sweep.
	Removed []circuit.NodeID
	// Boundary are the surviving nodes that lost at least one fanout edge
	// into Removed.
	Boundary []circuit.NodeID
}

// Seeds returns the resimulation seed set of the edit: the nodes whose
// value vectors can differ from their pre-edit contents — rewired gates
// (new fanin lists) and added nodes (no vector yet). Everything else that
// can change lies in their structural fanout cones.
func (ed *Edit) Seeds() []circuit.NodeID {
	seeds := make([]circuit.NodeID, 0, len(ed.Rewired)+len(ed.Added))
	seeds = append(seeds, ed.Rewired...)
	seeds = append(seeds, ed.Added...)
	return seeds
}

// RefreshStats reports the work a CPM.Refresh actually did, for the flow's
// dirty-fraction instrumentation.
type RefreshStats struct {
	// DirtyRows is the number of propagation rows recomputed.
	DirtyRows int
	// TotalRows is the number of live rows after the refresh; the dirty
	// fraction is DirtyRows/TotalRows.
	TotalRows int
	// Duration is the wall time of the refresh.
	Duration time.Duration
}

// Refresh incrementally updates the CPM in place after the network and its
// value table (which the CPM shares by pointer) have been mutated by one
// edit: ed describes the structural surgery and changed lists the nodes
// whose simulated value vectors differ from before (as reported by
// sim.ResimulateFrom). Only the dirty region is recomputed; the result is
// bit-identical to a from-scratch Build at any worker count.
//
// Dirty-set derivation. A row P[n] is a function of (a) n's output-driver
// base case, (b) n's fanout list, (c) the Boolean difference D[n→nf] of
// every fanout edge — itself a function of nf's kind, nf's fanin list and
// the simulated values of nf's *other* fanins — and (d) the rows P[nf].
// The head-dirty set H collects every node for which (a)–(c) may have
// changed:
//
//   - Repl: gained the replaced node's fanouts and output bindings (a, b);
//   - Added: rows do not exist yet (all);
//   - Boundary: lost fanout edges into the swept region (b);
//   - fanins(Rewired ∪ Added): a fanout of theirs has a new fanin list, so
//     the D of the edge into it changed (c) — for the fanins of Added this
//     also covers their grown fanout lists (b);
//   - fanins(fanouts(changed)): the "sibling rule" — when a node v's value
//     vector changed, D[x→g] of every edge into every fanout g of v is
//     evaluated at new cofactor values, for every fanin x of g (c).
//
// Dependency (d) is closed over by one reverse-topological backward pass:
// a row is dirty iff it is in H or any of its fanouts' rows is dirty. Rows
// outside the closure are untouched — by induction over reverse
// topological order, their base case, fanout list, every incident D and
// every fanout row are unchanged, so recomputation would reproduce them
// bit for bit.
//
// The recompute zeroes the dirty rows, refills their base cases and re-runs
// Build's reverse-topological fold restricted to dirty rows, reading clean
// fanout rows as-is. The pattern axis is sharded over the pool exactly as
// in BuildParallel; the fold is word-local, so every word receives the
// sequential builder's operation sequence regardless of worker count.
//
// Lazy caches are invalidated conservatively: AnyProp per dirty or removed
// row, the exactness certificate entirely (the structure changed), and the
// AEM column cache entirely (the error state changes every accept anyway).
// BuildTime is reset to the refresh duration, so flows that report
// per-iteration CPM cost see the incremental cost.
func (c *CPM) Refresh(ed Edit, changed []circuit.NodeID, pool *par.Pool) RefreshStats {
	start := time.Now()
	n := c.net
	// The edit may have allocated node slots past the tables' length.
	for len(c.p) < n.NumSlots() {
		c.p = append(c.p, nil)
	}
	if len(c.anyProp) < n.NumSlots() {
		grown := make([]atomic.Pointer[bitvec.Vec], n.NumSlots())
		for i := range c.anyProp {
			grown[i].Store(c.anyProp[i].Load())
		}
		c.anyProp = grown
	}
	for _, id := range ed.Removed {
		c.p[id] = nil
		c.anyProp[id].Store(nil)
	}

	// Head-dirty set H.
	head := make([]bool, n.NumSlots())
	mark := func(id circuit.NodeID) {
		if n.IsLive(id) {
			head[id] = true
		}
	}
	markFanins := func(id circuit.NodeID) {
		for _, f := range n.Fanins(id) {
			mark(f)
		}
	}
	mark(ed.Repl)
	for _, id := range ed.Rewired {
		mark(id)
		markFanins(id)
	}
	for _, id := range ed.Added {
		mark(id)
		markFanins(id)
	}
	for _, id := range ed.Boundary {
		mark(id)
	}
	for _, v := range changed {
		if !n.IsLive(v) {
			continue
		}
		for _, g := range n.Fanouts(v) {
			markFanins(g)
		}
	}

	// Backward closure over rows: P[n] depends on P[nf] for every fanout
	// nf, which sits later in topological order, so one reverse pass with
	// finalised fanout flags closes the set.
	order := n.TopoOrder()
	dirty := make([]bool, n.NumSlots())
	var dirtyList []circuit.NodeID // reverse topological order
	for idx := len(order) - 1; idx >= 0; idx-- {
		id := order[idx]
		d := head[id]
		if !d {
			for _, nf := range n.Fanouts(id) {
				if dirty[nf] {
					d = true
					break
				}
			}
		}
		if d {
			dirty[id] = true
			dirtyList = append(dirtyList, id)
		}
	}

	// Reset dirty rows: allocate missing ones (added nodes), zero the rest,
	// refill base cases.
	for _, id := range dirtyList {
		row := c.p[id]
		if row == nil {
			row = make([]*bitvec.Vec, c.o)
			for o := 0; o < c.o; o++ {
				row[o] = bitvec.New(c.m)
			}
			c.p[id] = row
		} else {
			for o := 0; o < c.o; o++ {
				row[o].Zero()
			}
		}
	}
	for o, out := range n.Outputs() {
		if dirty[out.Node] {
			c.p[out.Node][o].Fill()
		}
	}

	// Restricted fold: Build's reverse-topological recursion over the dirty
	// rows only, pattern-sharded as in BuildParallel. dirtyList is already
	// in reverse topological order, so a dirty fanout row is final before
	// any dirty fanin row reads it; clean fanout rows are correct as-is.
	fanouts := make([][]circuit.NodeID, len(dirtyList))
	for i, id := range dirtyList {
		fanouts[i] = uniqueFanouts(n, id)
	}
	vals := c.vals
	lastWord := bitvec.Words(c.m) - 1
	tail := bitvec.TailMask(c.m)
	shards := par.Shards(c.m, pool.Workers())
	pool.Label("cpm.refresh", obs.PhaseCPMBuild)
	pool.Do(len(shards), func(_, si int) {
		sh := shards[si]
		d := make([]uint64, bitvec.Words(c.m))
		var one, zero []uint64
		for i, id := range dirtyList {
			prow := c.p[id]
			for _, nf := range fanouts[i] {
				kind := n.Kind(nf)
				fanins := n.Fanins(nf)
				if cap(one) < len(fanins) {
					one = make([]uint64, len(fanins))
					zero = make([]uint64, len(fanins))
				}
				ob, zb := one[:len(fanins)], zero[:len(fanins)]
				dAny := false
				for w := sh.W0; w < sh.W1; w++ {
					for j, f := range fanins {
						if f == id {
							ob[j], zb[j] = ^uint64(0), 0
						} else {
							fv := vals.Node(f).WordsSlice()[w]
							ob[j], zb[j] = fv, fv
						}
					}
					dw := kind.EvalWord(ob) ^ kind.EvalWord(zb)
					if w == lastWord {
						dw &= tail
					}
					d[w] = dw
					dAny = dAny || dw != 0
				}
				if !dAny {
					continue
				}
				frow := c.p[nf]
				for o := 0; o < c.o; o++ {
					if !frow[o].AnyWords(sh.W0, sh.W1) {
						continue
					}
					fo := frow[o].WordsSlice()
					po := prow[o].WordsSlice()
					for w := sh.W0; w < sh.W1; w++ {
						po[w] |= fo[w] & d[w]
					}
				}
			}
		}
	})

	// Cache invalidation: only dirty rows can have stale AnyProp entries
	// (removed rows were cleared above); the certificate and AEM columns
	// are whole-CPM artifacts, dropped entirely.
	for _, id := range dirtyList {
		c.anyProp[id].Store(nil)
	}
	c.cert.Store(nil)
	c.aemFor = nil

	live := 0
	for _, row := range c.p {
		if row != nil {
			live++
		}
	}
	c.buildTime = time.Since(start)
	statCPMRefreshes.Inc()
	statCPMRefreshNS.Add(int64(c.buildTime))
	statCPMDirtyRows.Add(int64(len(dirtyList)))
	statCPMCleanRows.Add(int64(live - len(dirtyList)))
	return RefreshStats{DirtyRows: len(dirtyList), TotalRows: live, Duration: c.buildTime}
}

// Values returns the simulation value table the CPM was built against —
// the incremental engine mutates it in place between Refreshes.
func (c *CPM) Values() *sim.Values { return c.vals }
