// Package aig provides an AND-inverter graph: the two-input-AND +
// complemented-edge circuit representation used by modern logic synthesis
// tools, with structural hashing and constant/trivial-rule folding.
//
// The paper notes its estimation technique "can be applied to any
// graph-based representation of circuits, such as AND-inverter graph
// (AIG)". This package makes that concrete for this library: any network
// converts to an AIG (FromNetwork) and back to a plain gate netlist
// (ToNetwork) whose nodes are 2-input ANDs and inverters — on which the
// CPM estimator and the ALS flows run unchanged. The package tests include
// exactly that end-to-end demonstration.
package aig

import (
	"fmt"

	"batchals/internal/circuit"
)

// Lit is a literal: a node index shifted left once, with the low bit set
// for complementation. The constant-false node is index 0, so Const0 = 0
// and Const1 = 1.
type Lit uint32

// Literals of the constant node.
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// Var returns the node index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// node is one AND node; inputs have both fanins set to the sentinel.
type node struct {
	f0, f1 Lit
}

const inputSentinel = ^Lit(0)

// Graph is an AND-inverter graph. The zero value is not usable; call New.
type Graph struct {
	Name    string
	nodes   []node // index 0 is the constant-false node
	inputs  []int  // node indices of primary inputs
	outputs []Lit
	outName []string
	inName  []string
	strash  map[[2]Lit]int
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	g := &Graph{Name: name, strash: make(map[[2]Lit]int)}
	g.nodes = append(g.nodes, node{}) // constant node
	return g
}

// NumNodes returns the total node count including the constant and inputs.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - len(g.inputs) }

// NumInputs returns the number of primary inputs.
func (g *Graph) NumInputs() int { return len(g.inputs) }

// NumOutputs returns the number of primary outputs.
func (g *Graph) NumOutputs() int { return len(g.outputs) }

// AddInput appends a primary input and returns its positive literal.
func (g *Graph) AddInput(name string) Lit {
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{f0: inputSentinel, f1: inputSentinel})
	g.inputs = append(g.inputs, idx)
	g.inName = append(g.inName, name)
	return Lit(idx << 1)
}

// AddOutput binds literal l as a primary output.
func (g *Graph) AddOutput(name string, l Lit) {
	g.outputs = append(g.outputs, l)
	g.outName = append(g.outName, name)
}

// Output returns output literal o.
func (g *Graph) Output(o int) Lit { return g.outputs[o] }

// isInput reports whether node index i is a primary input.
func (g *Graph) isInput(i int) bool {
	return i > 0 && g.nodes[i].f0 == inputSentinel
}

// And returns a literal for f0 AND f1, applying the standard trivial
// rules and structural hashing.
func (g *Graph) And(a, b Lit) Lit {
	// Normalise operand order for hashing.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == Const0:
		return Const0
	case a == Const1:
		return b
	case a == b:
		return a
	case a == b.Not():
		return Const0
	}
	key := [2]Lit{a, b}
	if idx, ok := g.strash[key]; ok {
		return Lit(idx << 1)
	}
	idx := len(g.nodes)
	g.nodes = append(g.nodes, node{f0: a, f1: b})
	g.strash[key] = idx
	return Lit(idx << 1)
}

// Or returns a literal for a OR b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal for a XOR b (3 AND nodes).
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns a literal for sel ? d1 : d0.
func (g *Graph) Mux(sel, d0, d1 Lit) Lit {
	return g.Or(g.And(sel, d1), g.And(sel.Not(), d0))
}

// Eval evaluates every output under a complete input assignment, in input
// declaration order.
func (g *Graph) Eval(assignment []bool) []bool {
	if len(assignment) != len(g.inputs) {
		panic(fmt.Sprintf("aig: %d assignment bits for %d inputs", len(assignment), len(g.inputs)))
	}
	val := make([]bool, len(g.nodes))
	val[0] = false
	for k, idx := range g.inputs {
		val[idx] = assignment[k]
	}
	for i := 1; i < len(g.nodes); i++ {
		n := g.nodes[i]
		if n.f0 == inputSentinel {
			continue
		}
		a := val[n.f0.Var()] != n.f0.IsCompl()
		b := val[n.f1.Var()] != n.f1.IsCompl()
		val[i] = a && b
	}
	outs := make([]bool, len(g.outputs))
	for o, l := range g.outputs {
		outs[o] = val[l.Var()] != l.IsCompl()
	}
	return outs
}

// Levels returns the AND-level of every node (inputs and the constant are
// level 0).
func (g *Graph) Levels() []int {
	lv := make([]int, len(g.nodes))
	for i := 1; i < len(g.nodes); i++ {
		n := g.nodes[i]
		if n.f0 == inputSentinel {
			continue
		}
		l0, l1 := lv[n.f0.Var()], lv[n.f1.Var()]
		if l1 > l0 {
			l0 = l1
		}
		lv[i] = l0 + 1
	}
	return lv
}

// Depth returns the maximum output level.
func (g *Graph) Depth() int {
	lv := g.Levels()
	d := 0
	for _, l := range g.outputs {
		if lv[l.Var()] > d {
			d = lv[l.Var()]
		}
	}
	return d
}

// FromNetwork converts a gate-level network into an AIG. N-ary gates are
// decomposed into balanced 2-input trees; structural hashing merges
// duplicate logic on the way in.
func FromNetwork(n *circuit.Network) (*Graph, error) {
	g := New(n.Name)
	lits := make([]Lit, n.NumSlots())
	for i, in := range n.Inputs() {
		_ = i
		lits[in] = g.AddInput(n.NameOf(in))
	}
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		fanins := n.Fanins(id)
		ops := make([]Lit, len(fanins))
		for j, f := range fanins {
			ops[j] = lits[f]
		}
		var l Lit
		switch kind {
		case circuit.KindConst0:
			l = Const0
		case circuit.KindConst1:
			l = Const1
		case circuit.KindBuf:
			l = ops[0]
		case circuit.KindNot:
			l = ops[0].Not()
		case circuit.KindAnd, circuit.KindNand:
			l = g.balanced(ops, g.And)
			if kind == circuit.KindNand {
				l = l.Not()
			}
		case circuit.KindOr, circuit.KindNor:
			l = g.balanced(ops, g.Or)
			if kind == circuit.KindNor {
				l = l.Not()
			}
		case circuit.KindXor, circuit.KindXnor:
			l = g.balanced(ops, g.Xor)
			if kind == circuit.KindXnor {
				l = l.Not()
			}
		case circuit.KindMux:
			l = g.Mux(ops[0], ops[1], ops[2])
		default:
			return nil, fmt.Errorf("aig: unsupported kind %v", kind)
		}
		lits[id] = l
	}
	for _, out := range n.Outputs() {
		g.AddOutput(out.Name, lits[out.Node])
	}
	return g, nil
}

// balanced folds the operands with op as a balanced tree (keeps AIG depth
// logarithmic in the gate arity).
func (g *Graph) balanced(ops []Lit, op func(Lit, Lit) Lit) Lit {
	switch len(ops) {
	case 0:
		panic("aig: empty operand list")
	case 1:
		return ops[0]
	}
	mid := len(ops) / 2
	return op(g.balanced(ops[:mid], op), g.balanced(ops[mid:], op))
}

// ToNetwork converts the AIG back to a gate-level network of 2-input AND
// gates and inverters (one shared inverter per complemented node), the
// representation on which the flows and the CPM estimator run.
func (g *Graph) ToNetwork() *circuit.Network {
	n := circuit.New(g.Name)
	pos := make([]circuit.NodeID, len(g.nodes)) // positive-phase node
	neg := make([]circuit.NodeID, len(g.nodes)) // lazily created inverter
	for i := range neg {
		neg[i] = circuit.InvalidNode
		pos[i] = circuit.InvalidNode
	}
	var c0 circuit.NodeID = circuit.InvalidNode
	constant := func() circuit.NodeID {
		if c0 == circuit.InvalidNode {
			c0 = n.AddConst(false)
		}
		return c0
	}
	for k, idx := range g.inputs {
		pos[idx] = n.AddInput(g.inName[k])
	}
	litOf := func(l Lit) circuit.NodeID {
		v := l.Var()
		var base circuit.NodeID
		if v == 0 {
			base = constant()
		} else {
			base = pos[v]
		}
		if !l.IsCompl() {
			return base
		}
		if neg[v] == circuit.InvalidNode {
			neg[v] = n.AddGate(circuit.KindNot, base)
		}
		return neg[v]
	}
	for i := 1; i < len(g.nodes); i++ {
		nd := g.nodes[i]
		if nd.f0 == inputSentinel {
			continue
		}
		pos[i] = n.AddGate(circuit.KindAnd, litOf(nd.f0), litOf(nd.f1))
	}
	for o, l := range g.outputs {
		n.AddOutput(g.outName[o], litOf(l))
	}
	n.Sweep()
	return n
}
