package timeline

import (
	"batchals/internal/obs"
)

// FlowTracer adapts a Recorder to the obs.Tracer interface so the SASIMI
// flow's existing phase/iteration events land on the driver lane without
// any new hook points. It declines OnCandidate via the CandidateFilter
// capability, keeping the zero-alloc scoring fast path intact when the
// timeline is the only attached tracer.
type FlowTracer struct {
	rec *Recorder
	// phaseNames are the "phase:<name>" span names, precomputed so
	// OnPhase allocates nothing.
	phaseNames [obs.NumPhases + 1]string
}

// NewFlowTracer returns a tracer feeding rec, or nil when rec is nil so
// obs.Multi drops it.
func NewFlowTracer(rec *Recorder) *FlowTracer {
	if rec == nil {
		return nil
	}
	ft := &FlowTracer{rec: rec}
	for p := obs.Phase(0); p <= obs.NumPhases; p++ {
		ft.phaseNames[p] = "phase:" + p.String()
	}
	return ft
}

// WantsCandidates declines per-candidate events: the timeline records
// candidate work as verify spans, not as the high-volume scoring stream.
func (ft *FlowTracer) WantsCandidates() bool { return false }

// OnPhase records the completed phase span on the driver lane. The event
// carries a duration, not a start time, so the span is reconstructed
// backwards from the current instant; the skew versus the true start is
// the tracer fan-out latency, well under a microsecond.
func (ft *FlowTracer) OnPhase(i obs.PhaseInfo) {
	now := ft.rec.Now()
	name := ft.phaseNames[obs.NumPhases]
	if i.Phase < obs.NumPhases {
		name = ft.phaseNames[i.Phase]
	}
	ft.rec.Emit(0, Span{
		Name:   name,
		Phase:  i.Phase,
		Worker: -1,
		Shard:  -1,
		Iter:   int32(i.Iter),
		T0:     now - int64(i.Duration),
		T1:     now,
	})
}

// OnIteration records the whole iteration as a span. (The iteration
// label for in-flight spans is advanced by the flow via SetIter, not
// here — this event fires at iteration end.)
func (ft *FlowTracer) OnIteration(i obs.IterationInfo) {
	now := ft.rec.Now()
	ft.rec.Emit(0, Span{
		Name:   "iteration",
		Phase:  obs.PhaseEstimate,
		Worker: -1,
		Shard:  -1,
		Iter:   int32(i.Iter),
		T0:     now - int64(i.Duration),
		T1:     now,
	})
}

// OnCandidate is declared to satisfy obs.Tracer but never called: the
// flow honours WantsCandidates.
func (ft *FlowTracer) OnCandidate(obs.CandidateInfo) {}

// OnAccept records an instantaneous accept marker on the driver lane.
func (ft *FlowTracer) OnAccept(i obs.AcceptInfo) {
	now := ft.rec.Now()
	ft.rec.Emit(0, Span{
		Name:   "accept",
		Phase:  obs.PhaseVerifyApply,
		Worker: -1,
		Shard:  -1,
		Iter:   int32(i.Iter),
		T0:     now,
		T1:     now,
	})
}
