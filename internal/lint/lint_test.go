package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func analyze(t *testing.T, pkgPath, filename, src string, as []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Run(fset, pkgPath, f.Name.Name, []*ast.File{f}, as)
}

func TestBitvecLenFlagsUnguardedBinaryOp(t *testing.T) {
	src := `package bitvec
type Vec struct{ n int; words []uint64 }
func (v *Vec) checkSameLen(o *Vec) {}
func (v *Vec) Bad(a, b *Vec) {
	for i := range v.words { v.words[i] = a.words[i] & b.words[i] }
}
func (v *Vec) Good(a *Vec) {
	v.checkSameLen(a)
	copy(v.words, a.words)
}
func (v *Vec) AlsoGood(o *Vec) bool {
	if v.n != o.n { return false }
	return true
}
func (v *Vec) Unary() int { return v.n }
`
	diags := analyze(t, "batchals/internal/bitvec", "bitvec.go", src, []*Analyzer{BitvecLen})
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (Bad), got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "Bad") {
		t.Errorf("diagnostic should name the method: %v", diags[0])
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("diagnostic at line %d, want 4", diags[0].Pos.Line)
	}
}

func TestBitvecLenIgnoresOtherPackages(t *testing.T) {
	src := `package other
type Vec struct{ n int }
func (v *Vec) Bad(a *Vec) {}
`
	if diags := analyze(t, "batchals/internal/other", "o.go", src, []*Analyzer{BitvecLen}); len(diags) != 0 {
		t.Fatalf("bitveclen must only apply to package bitvec, got %v", diags)
	}
}

func TestRandSeedFlagsGlobalSource(t *testing.T) {
	src := `package sim
import "math/rand"
func Patterns(m int) []int {
	out := make([]int, m)
	for i := range out { out[i] = rand.Intn(2) }
	return out
}
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`
	diags := analyze(t, "batchals/internal/sim", "sim.go", src, []*Analyzer{RandSeed})
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic (rand.Intn), got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "rand.Intn") {
		t.Errorf("diagnostic should name the call: %v", diags[0])
	}
}

func TestRandSeedAllowsRenamedImportDetection(t *testing.T) {
	src := `package sim
import mrand "math/rand"
func Draw() int { return mrand.Int63n(7) }
`
	diags := analyze(t, "batchals/internal/sim", "sim.go", src, []*Analyzer{RandSeed})
	if len(diags) != 1 {
		t.Fatalf("renamed import must still be caught, got %v", diags)
	}
}

func TestRandSeedExemptsMainAndTests(t *testing.T) {
	src := `package main
import "math/rand"
func main() { _ = rand.Intn(2) }
`
	if diags := analyze(t, "batchals/cmd/x", "main.go", src, []*Analyzer{RandSeed}); len(diags) != 0 {
		t.Fatalf("package main is exempt, got %v", diags)
	}
	testSrc := `package sim
import "math/rand"
func helper() int { return rand.Intn(2) }
`
	if diags := analyze(t, "batchals/internal/sim", "sim_test.go", testSrc, []*Analyzer{RandSeed}); len(diags) != 0 {
		t.Fatalf("_test.go files are exempt, got %v", diags)
	}
}

func TestAPIPanicFlagsPublicPackage(t *testing.T) {
	src := `package batchals
func Approximate(x int) int {
	if x < 0 { panic("negative") }
	return x
}
`
	diags := analyze(t, "batchals", "als.go", src, []*Analyzer{APIPanic})
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestAPIPanicExemptsInternalAndMain(t *testing.T) {
	internalSrc := `package circuit
func mustLive(ok bool) { if !ok { panic("dead node") } }
`
	if diags := analyze(t, "batchals/internal/circuit", "c.go", internalSrc, []*Analyzer{APIPanic}); len(diags) != 0 {
		t.Fatalf("internal packages are exempt, got %v", diags)
	}
	mainSrc := `package main
func main() { panic("boom") }
`
	if diags := analyze(t, "batchals/cmd/x", "main.go", mainSrc, []*Analyzer{APIPanic}); len(diags) != 0 {
		t.Fatalf("package main is exempt, got %v", diags)
	}
}

func TestAllAnalyzersHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
