package bitvec

import "testing"

func TestArenaVectorsBehaveLikeNew(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		a := NewArena(n, 3) // tiny chunk to force slab turnover
		vs := make([]*Vec, 10)
		for i := range vs {
			vs[i] = a.New()
			if vs[i].Len() != n {
				t.Fatalf("n=%d: Len=%d", n, vs[i].Len())
			}
			if vs[i].Count() != 0 {
				t.Fatalf("n=%d: fresh vector not zeroed", n)
			}
		}
		// Writing one vector must not disturb any other, including across
		// slab boundaries and after the slab the early vectors came from
		// was abandoned.
		for i, v := range vs {
			if n > 0 {
				v.Set(i%n, true)
			}
		}
		for i, v := range vs {
			want := 0
			if n > 0 {
				want = 1
			}
			if got := v.Count(); got != want {
				t.Fatalf("n=%d: vec %d count=%d want %d (cross-vector bleed)", n, i, got, want)
			}
			if n > 0 && !v.Get(i%n) {
				t.Fatalf("n=%d: vec %d lost its bit", n, i)
			}
		}
	}
}

func TestArenaMatchesNewSemantics(t *testing.T) {
	a := NewArena(130, 0)
	u, v := a.New(), a.New()
	ref := New(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		u.Set(i, true)
		ref.Set(i, true)
	}
	if !u.Equal(ref) {
		t.Fatal("arena vector diverges from New vector under Set")
	}
	v.Not(u)
	refNot := New(130)
	refNot.Not(ref)
	if !v.Equal(refNot) {
		t.Fatal("arena vector diverges under Not (tail masking)")
	}
}

func TestArenaAllocationCount(t *testing.T) {
	// One exactly-sized slab: the whole build should cost ~3 allocations
	// (arena struct + vec slab + word slab) regardless of vector count.
	const vectors = 500
	allocs := testing.AllocsPerRun(5, func() {
		a := NewArena(256, vectors)
		for i := 0; i < vectors; i++ {
			_ = a.New()
		}
	})
	if allocs > 4 {
		t.Fatalf("arena build allocates %.0f times for %d vectors, want <= 4", allocs, vectors)
	}
}
