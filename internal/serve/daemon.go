package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"batchals/internal/bench"
	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

// JobSpec is the wire format of one queued synthesis job (POST /jobs).
type JobSpec struct {
	Name          string  `json:"name,omitempty"` // run name (default job-N)
	Circuit       string  `json:"circuit"`        // benchmark name or file path
	Metric        string  `json:"metric,omitempty"`
	Threshold     float64 `json:"threshold"`
	Estimator     string  `json:"estimator,omitempty"`
	Patterns      int     `json:"m,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	VerifyTopK    int     `json:"verify,omitempty"`
	MaxIterations int     `json:"max_iters,omitempty"`
	// Timeline attaches a causal span recorder to the job, so
	// /timeline?run=NAME exports the service lane (queue wait) next to the
	// flow's synthesis phases. Off by default: a recorder costs memory per
	// job, which a load test multiplies by thousands.
	Timeline bool `json:"timeline,omitempty"`
	// Partition, when non-nil, routes the job through the partitioned
	// flow (ER metric only).
	Partition *PartitionSpec `json:"partition,omitempty"`
}

// PartitionSpec is the wire form of the partitioned-flow knobs; zero
// fields select the library defaults.
type PartitionSpec struct {
	Cells  int    `json:"cells"`             // target gates per part (required, positive)
	MaxCut int    `json:"max_cut,omitempty"` // advisory cut-width bound
	Policy string `json:"policy,omitempty"`  // "observability" (default) or "uniform"
	Rounds int    `json:"rounds,omitempty"`  // budget reclaim rounds
}

// SpecError is the typed 4xx error body of a rejected job submission:
// which field was wrong, what value it carried, and why. It reaches the
// client as {"error": ..., "field": ..., "value": ...}.
type SpecError struct {
	Field string `json:"field"`
	Value string `json:"value,omitempty"`
	Msg   string `json:"error"`
}

// Error implements error.
func (e *SpecError) Error() string {
	if e.Value != "" {
		return fmt.Sprintf("job spec: %s %q: %s", e.Field, e.Value, e.Msg)
	}
	return fmt.Sprintf("job spec: %s: %s", e.Field, e.Msg)
}

// Submission failure sentinels, mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull means the bounded queue shed the job (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the daemon is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: daemon draining")
	// ErrDuplicateName means a run by that name already exists (HTTP 409).
	ErrDuplicateName = errors.New("serve: duplicate job name")
)

// knownMetrics and knownEstimators are the spec vocabulary the wire
// protocol accepts; the empty string selects the default.
var (
	knownMetrics           = map[string]bool{"": true, "er": true, "aem": true}
	knownEstimators        = map[string]bool{"": true, "batch": true, "full": true, "local": true}
	knownPartitionPolicies = map[string]bool{"": true, "observability": true, "uniform": true}
)

// CheckCircuitExists is the default circuit validator: benchmark names
// must be registered, file paths (anything with a '/' or '.') must exist.
func CheckCircuitExists(circuit string) error {
	if strings.ContainsAny(circuit, "/.") {
		if _, err := os.Stat(circuit); err != nil {
			return err
		}
		return nil
	}
	_, err := bench.ByName(circuit)
	return err
}

// ValidateSpec rejects specs that would fail inside the run: unknown
// circuit, metric or estimator, and non-positive or non-finite
// thresholds. Validation happens at enqueue time so the client gets a
// 400 with a typed body instead of a queued job that dies later.
func (d *Daemon) ValidateSpec(spec JobSpec) *SpecError {
	if spec.Circuit == "" {
		return &SpecError{Field: "circuit", Msg: "required"}
	}
	if err := d.cfg.CheckCircuit(spec.Circuit); err != nil {
		return &SpecError{Field: "circuit", Value: spec.Circuit, Msg: "unknown circuit: " + err.Error()}
	}
	if m := strings.ToLower(spec.Metric); !knownMetrics[m] {
		return &SpecError{Field: "metric", Value: spec.Metric, Msg: `unknown metric (want "er" or "aem")`}
	}
	if e := strings.ToLower(spec.Estimator); !knownEstimators[e] {
		return &SpecError{Field: "estimator", Value: spec.Estimator, Msg: `unknown estimator (want "batch", "full" or "local")`}
	}
	if !(spec.Threshold > 0) { // catches 0, negatives and NaN in one test
		return &SpecError{Field: "threshold", Value: fmt.Sprint(spec.Threshold), Msg: "must be positive"}
	}
	if spec.Patterns < 0 {
		return &SpecError{Field: "m", Value: strconv.Itoa(spec.Patterns), Msg: "must be non-negative"}
	}
	if spec.Workers < 0 {
		return &SpecError{Field: "workers", Value: strconv.Itoa(spec.Workers), Msg: "must be non-negative"}
	}
	if p := spec.Partition; p != nil {
		if strings.ToLower(spec.Metric) == "aem" {
			return &SpecError{Field: "partition", Value: "aem", Msg: "partitioned runs support the er metric only"}
		}
		if p.Cells <= 0 {
			return &SpecError{Field: "partition.cells", Value: strconv.Itoa(p.Cells), Msg: "must be positive"}
		}
		if p.MaxCut < 0 {
			return &SpecError{Field: "partition.max_cut", Value: strconv.Itoa(p.MaxCut), Msg: "must be non-negative"}
		}
		if p.Rounds < 0 {
			return &SpecError{Field: "partition.rounds", Value: strconv.Itoa(p.Rounds), Msg: "must be non-negative"}
		}
		if pol := strings.ToLower(p.Policy); !knownPartitionPolicies[pol] {
			return &SpecError{Field: "partition.policy", Value: p.Policy, Msg: `unknown policy (want "observability" or "uniform")`}
		}
	}
	return nil
}

// Runner executes one admitted job against its run's sinks (registry,
// tracer, timeline). cmd/alsd supplies the batchals synthesis runner;
// tests stub it. The ctx is canceled only when a drain deadline forces
// the running job to abort.
type Runner func(ctx context.Context, spec JobSpec, run *Run) error

// DaemonConfig configures a Daemon. The zero value is usable with a
// Runner set.
type DaemonConfig struct {
	// QueueMax bounds the job queue; a submission beyond it is shed with
	// HTTP 429 + Retry-After. Default 64.
	QueueMax int
	// RunsMax bounds the run registry: oldest terminal runs are evicted
	// beyond it. Default 512; 0 keeps the default, negative disables.
	RunsMax int
	// Registry collects the daemon's service metrics (queue depth,
	// in-flight, shed, latency histograms). Default obs.Default().
	Registry *obs.Registry
	// AccessLog, when non-nil, logs every HTTP request as JSONL.
	AccessLog *AccessLogger
	// Runner executes admitted jobs. Required.
	Runner Runner
	// CheckCircuit validates a spec's circuit at enqueue time.
	// Default CheckCircuitExists.
	CheckCircuit func(string) error
	// TimelineLaneCap sizes per-job timeline recorders (spans per lane).
	// Default 4096.
	TimelineLaneCap int
}

// Daemon is the job-queue service behind cmd/alsd: a bounded queue of
// synthesis jobs executed sequentially, each with a JobTrace lifecycle
// record, latency histograms (queue-wait, run-wall, end-to-end), queue
// gauges, structured access logs, and the full Server observability
// surface mounted under the same handler.
type Daemon struct {
	cfg  DaemonConfig
	runs *RunRegistry
	srv  *Server
	mux  *http.ServeMux

	mu       sync.Mutex // guards queue sends vs draining flip
	queue    chan *queuedJob
	draining atomic.Bool
	drainCh  chan struct{}
	wg       sync.WaitGroup
	seq      atomic.Int64
	runCtx   context.Context
	runStop  context.CancelFunc

	received *obs.Counter
	done     *obs.Counter
	failed   *obs.Counter
	canceled *obs.Counter
	shed     *obs.Counter
	depth    *obs.Gauge
	inflight *obs.Gauge
	hQueue   *obs.Histogram
	hRun     *obs.Histogram
	hE2E     *obs.Histogram
}

// queuedJob is one queue entry: the spec plus the run and trace that were
// registered at submission time (so observers can attach before the job
// starts).
type queuedJob struct {
	spec  JobSpec
	run   *Run
	trace *JobTrace
}

// NewDaemon builds a daemon over a fresh run registry and Server. Call
// Start to begin executing jobs and Shutdown to drain.
func NewDaemon(cfg DaemonConfig) *Daemon {
	if cfg.QueueMax <= 0 {
		cfg.QueueMax = 64
	}
	if cfg.RunsMax == 0 {
		cfg.RunsMax = 512
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.CheckCircuit == nil {
		cfg.CheckCircuit = CheckCircuitExists
	}
	if cfg.TimelineLaneCap <= 0 {
		cfg.TimelineLaneCap = 4096
	}
	d := &Daemon{
		cfg:     cfg,
		runs:    NewRunRegistry(),
		queue:   make(chan *queuedJob, cfg.QueueMax),
		drainCh: make(chan struct{}),
	}
	d.runCtx, d.runStop = context.WithCancel(context.Background())
	d.srv = New(d.runs)
	d.srv.Process = cfg.Registry
	reg := cfg.Registry
	d.received = reg.Counter("serve_jobs_received_total")
	d.done = reg.Counter("serve_jobs_done_total")
	d.failed = reg.Counter("serve_jobs_failed_total")
	d.canceled = reg.Counter("serve_jobs_canceled_total")
	d.shed = reg.Counter("serve_jobs_shed_total")
	d.depth = reg.Gauge("serve_queue_depth")
	d.inflight = reg.Gauge("serve_jobs_inflight")
	d.hQueue = reg.Histogram("serve_job_queue_wait_ns", obs.LatencyBounds)
	d.hRun = reg.Histogram("serve_job_run_ns", obs.LatencyBounds)
	d.hE2E = reg.Histogram("serve_job_e2e_ns", obs.LatencyBounds)
	cfg.AccessLog.CountIn(reg, "serve_access_log_entries_total")

	mux := http.NewServeMux()
	mux.Handle("/", d.srv.Handler())
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", d.handleJobList)
	mux.HandleFunc("GET /jobs/{name}", d.handleJobTrace)
	d.mux = mux
	return d
}

// Server exposes the underlying observability server (readiness probe,
// SSE heartbeat tuning).
func (d *Daemon) Server() *Server { return d.srv }

// Runs exposes the daemon's run registry.
func (d *Daemon) Runs() *RunRegistry { return d.runs }

// Handler returns the daemon's full HTTP surface — the Server endpoints
// plus the job API — wrapped in the access-log middleware (a no-op
// pass-through when no logger is configured).
func (d *Daemon) Handler() http.Handler { return d.cfg.AccessLog.Wrap(d.mux) }

// Start launches the job worker. The daemon executes jobs sequentially,
// like the single synthesis lane it fronts; the queue provides the
// elasticity.
func (d *Daemon) Start() {
	d.wg.Add(1)
	go d.worker()
}

// Enqueue validates and queues a job, returning its run name. The run
// (and its lifecycle trace) is registered before Enqueue returns, so a
// client can subscribe to /events?run=NAME or poll /jobs/NAME
// immediately. Returns *SpecError for invalid specs, ErrDuplicateName,
// ErrQueueFull (the job is registered in the shed state) or ErrDraining.
func (d *Daemon) Enqueue(spec JobSpec) (string, error) {
	if d.draining.Load() {
		return "", ErrDraining
	}
	if specErr := d.ValidateSpec(spec); specErr != nil {
		return "", specErr
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("job-%d", d.seq.Add(1))
	}
	if existing, exists := d.runs.Lookup(spec.Name); exists {
		// A shed job never ran; the client was told to retry, so a
		// resubmission under the same name replaces the shed record.
		if existing.State() != RunShed || !d.runs.Evict(spec.Name) {
			return spec.Name, ErrDuplicateName
		}
	}
	d.received.Inc()
	run := d.runs.Get(spec.Name)
	trace := NewJobTrace(spec.Name)
	run.SetJobTrace(trace)
	if spec.Timeline {
		lanes := spec.Workers + 2 // driver lane + one per worker (0 => NumCPU-sized default)
		if spec.Workers <= 0 {
			lanes = 0
		}
		run.SetTimeline(timeline.NewRecorder(lanes, d.cfg.TimelineLaneCap))
	}

	d.mu.Lock()
	if d.draining.Load() {
		d.mu.Unlock()
		trace.To(JobCanceled)
		run.SetState(RunCanceled, "daemon draining")
		return spec.Name, ErrDraining
	}
	// The queued stamp lands before the channel send: the worker may
	// dequeue (and stamp admitted) the instant the send completes.
	trace.To(JobQueued)
	select {
	case d.queue <- &queuedJob{spec: spec, run: run, trace: trace}:
		d.mu.Unlock()
		d.depth.Set(float64(len(d.queue)))
		return spec.Name, nil
	default:
		d.mu.Unlock()
		trace.To(JobShed)
		run.SetState(RunShed, "queue full")
		d.shed.Inc()
		d.runs.Trim(d.cfg.RunsMax)
		return spec.Name, ErrQueueFull
	}
}

// RetryAfter estimates how long a shed client should back off: the
// median run wall time times the queue depth, clamped to [1s, 60s]. With
// no completed jobs yet it answers 1s.
func (d *Daemon) RetryAfter() time.Duration {
	p50 := d.hRun.Snapshot().P50
	est := time.Duration(p50 * float64(len(d.queue)+1))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est.Round(time.Second)
}

// worker executes queued jobs until Shutdown drains the queue. The
// running job always completes (unless the drain deadline cancels its
// context); jobs still queued at drain time are marked canceled.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		if d.draining.Load() {
			d.cancelQueued()
			return
		}
		select {
		case j := <-d.queue:
			// Re-check: when the drain raced the dequeue, this job was
			// still queued at shutdown time and must not start.
			if d.draining.Load() {
				j.trace.To(JobCanceled)
				j.run.SetState(RunCanceled, "daemon shutdown")
				d.canceled.Inc()
				continue
			}
			d.process(j)
		case <-d.drainCh:
		}
	}
}

// cancelQueued marks every remaining queued job canceled.
func (d *Daemon) cancelQueued() {
	for {
		select {
		case j := <-d.queue:
			j.trace.To(JobCanceled)
			j.run.SetState(RunCanceled, "daemon shutdown")
			d.canceled.Inc()
		default:
			d.depth.Set(0)
			return
		}
	}
}

// process runs one job end to end: lifecycle transitions, the runner,
// latency observations, and the service-lane timeline bridge.
func (d *Daemon) process(j *queuedJob) {
	d.depth.Set(float64(len(d.queue)))
	j.trace.To(JobAdmitted)
	d.inflight.Set(1)
	j.run.SetState(RunActive, "")
	defer j.run.Flight.DumpOnPanic(os.Stderr)
	j.trace.To(JobRunning)
	err := d.cfg.Runner(d.runCtx, j.spec, j.run)
	if err != nil {
		j.trace.Fail(err.Error())
		j.run.SetState(RunFailed, err.Error())
		d.failed.Inc()
	} else {
		j.trace.To(JobDone)
		j.run.SetState(RunDone, "")
		d.done.Inc()
	}
	if w, ok := j.trace.QueueWait(); ok {
		d.hQueue.Observe(float64(w.Nanoseconds()))
	}
	if w, ok := j.trace.RunWall(); ok {
		d.hRun.Observe(float64(w.Nanoseconds()))
	}
	if w, ok := j.trace.E2E(); ok {
		d.hE2E.Observe(float64(w.Nanoseconds()))
	}
	j.trace.EmitService(j.run.Timeline())
	d.inflight.Set(0)
	d.runs.Trim(d.cfg.RunsMax)
}

// Shutdown drains the daemon: new submissions are refused, the running
// job finishes, queued jobs are marked canceled, and the access log is
// flushed. If ctx expires before the running job completes, its context
// is canceled and the drain waits for it to unwind.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	already := d.draining.Swap(true)
	d.mu.Unlock()
	if !already {
		close(d.drainCh)
	}
	d.srv.SetReady(false)

	waited := make(chan struct{})
	go func() { d.wg.Wait(); close(waited) }()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		err = ctx.Err()
		d.runStop() // cancel the running job's flow and wait for unwind
		<-waited
	}
	if flushErr := d.cfg.AccessLog.Flush(); err == nil {
		err = flushErr
	}
	return err
}

// writeJSONStatus writes v as JSON with the given status code.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit is POST /jobs: decode, validate, enqueue, and answer 202
// with the run name — or a typed error body with the precise status: 400
// invalid spec, 409 duplicate name, 429 shed (with Retry-After), 503
// draining.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSONStatus(w, http.StatusBadRequest,
			&SpecError{Field: "body", Msg: "bad job spec: " + err.Error()})
		return
	}
	name, err := d.Enqueue(spec)
	var specErr *SpecError
	switch {
	case err == nil:
		writeJSONStatus(w, http.StatusAccepted, map[string]string{"run": name, "state": "queued"})
	case errors.As(err, &specErr):
		writeJSONStatus(w, http.StatusBadRequest, specErr)
	case errors.Is(err, ErrDuplicateName):
		writeJSONStatus(w, http.StatusConflict,
			&SpecError{Field: "name", Value: name, Msg: "a run by this name already exists"})
	case errors.Is(err, ErrQueueFull):
		retry := d.RetryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		writeJSONStatus(w, http.StatusTooManyRequests, map[string]any{
			"error":         "job queue full",
			"run":           name,
			"retry_after_s": int(retry.Seconds()),
		})
	case errors.Is(err, ErrDraining):
		writeJSONStatus(w, http.StatusServiceUnavailable,
			map[string]string{"error": "daemon is shutting down"})
	default:
		writeJSONStatus(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// handleJobTrace is GET /jobs/{name}: the job's lifecycle trace.
func (d *Daemon) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	run, ok := d.runs.Lookup(name)
	if !ok || run.JobTrace() == nil {
		writeJSONStatus(w, http.StatusNotFound,
			map[string]string{"error": "unknown job " + name})
		return
	}
	writeJSON(w, run.JobTrace().Snapshot())
}

// handleJobList is GET /jobs: every retained job's lifecycle trace, in
// submission order.
func (d *Daemon) handleJobList(w http.ResponseWriter, r *http.Request) {
	names := d.runs.Names()
	out := make([]JobTraceSnapshot, 0, len(names))
	for _, name := range names {
		if run, ok := d.runs.Lookup(name); ok {
			if t := run.JobTrace(); t != nil {
				out = append(out, t.Snapshot())
			}
		}
	}
	writeJSON(w, out)
}
