package batchals

// Ablation benchmarks for the design choices behind the batch estimator
// and the flow, beyond the paper's own tables: CPM construction cost as M
// grows (word-parallelism), per-candidate ΔER/ΔAEM query cost, the
// similarity cap of the candidate filter, and the top-K exact-verification
// extension.

import (
	"strconv"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
)

// BenchmarkAblationCPMBuild measures CPM construction alone on c880 for
// growing pattern counts; time should scale near-linearly in M/64.
func BenchmarkAblationCPMBuild(b *testing.B) {
	golden, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{512, 2048, 8192} {
		b.Run(benchName("M", m), func(b *testing.B) {
			p := sim.RandomPatterns(golden.NumInputs(), m, 1)
			vals := sim.Simulate(golden, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Build(golden, vals)
			}
		})
	}
}

// BenchmarkAblationDeltaER measures the per-candidate ΔER query: the
// Θ(M·O/64) inner loop of the batch method.
func BenchmarkAblationDeltaER(b *testing.B) {
	golden, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	const m = 4096
	p := sim.RandomPatterns(golden.NumInputs(), m, 1)
	vals := sim.Simulate(golden, p)
	out := sim.OutputMatrix(golden, vals)
	st := emetric.NewState(out, out.Clone())
	cpm := core.Build(golden, vals)
	var gates []circuit.NodeID
	for _, id := range golden.LiveNodes() {
		if golden.Kind(id).IsGate() {
			gates = append(gates, id)
		}
	}
	change := bitvec.New(m)
	for i := 0; i < m; i += 3 {
		change.Set(i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cpm.DeltaER(gates[i%len(gates)], change, st)
	}
}

// BenchmarkAblationDeltaAEM measures the per-candidate ΔAEM query on an
// arithmetic circuit.
func BenchmarkAblationDeltaAEM(b *testing.B) {
	golden, err := bench.ByName("mul8")
	if err != nil {
		b.Fatal(err)
	}
	const m = 4096
	p := sim.RandomPatterns(golden.NumInputs(), m, 1)
	vals := sim.Simulate(golden, p)
	out := sim.OutputMatrix(golden, vals)
	st := emetric.NewState(out, out.Clone())
	cpm := core.Build(golden, vals)
	var gates []circuit.NodeID
	for _, id := range golden.LiveNodes() {
		if golden.Kind(id).IsGate() {
			gates = append(gates, id)
		}
	}
	change := bitvec.New(m)
	for i := 0; i < m; i += 5 {
		change.Set(i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cpm.DeltaAEM(gates[i%len(gates)], change, st)
	}
}

// BenchmarkAblationSimilarityCap sweeps the candidate filter's similarity
// cap: a looser cap admits more candidates (larger T, more estimation
// work) for diminishing quality returns.
func BenchmarkAblationSimilarityCap(b *testing.B) {
	golden, err := bench.ByName("mul4")
	if err != nil {
		b.Fatal(err)
	}
	for _, capv := range []float64{0.1, 0.3, 0.5} {
		b.Run(benchName("cap", int(capv*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sasimi.Run(golden, sasimi.Config{
					Budget: flow.Budget{
						Metric:      core.MetricER,
						Threshold:   0.03,
						NumPatterns: 1000,
						Seed:        1,
					},
					Estimator:     sasimi.EstimatorBatch,
					SimilarityCap: capv,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AreaRatio(), "area_ratio")
			}
		})
	}
}

// BenchmarkAblationVerifyTopK sweeps the exact-verification width of the
// reconvergence mitigation: K=0 is the plain paper method.
func BenchmarkAblationVerifyTopK(b *testing.B) {
	golden, err := bench.ByName("mul4")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{0, 8, 32} {
		b.Run(benchName("K", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sasimi.Run(golden, sasimi.Config{
					Budget: flow.Budget{
						Metric:      core.MetricER,
						Threshold:   0.03,
						NumPatterns: 1000,
						Seed:        1,
					},
					Estimator:  sasimi.EstimatorBatch,
					VerifyTopK: k,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AreaRatio(), "area_ratio")
			}
		})
	}
}

// BenchmarkSimulationThroughput measures raw bit-parallel simulation:
// patterns times gates per second on the largest synthetic circuit.
func BenchmarkSimulationThroughput(b *testing.B) {
	golden, err := bench.ByName("c7552")
	if err != nil {
		b.Fatal(err)
	}
	const m = 8192
	p := sim.RandomPatterns(golden.NumInputs(), m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(golden, p)
	}
	b.ReportMetric(float64(m)*float64(golden.NumGates())*float64(b.N)/b.Elapsed().Seconds()/1e9,
		"Geval/s")
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}
