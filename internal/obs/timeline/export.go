package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the JSON Object Format of the Trace Event
// spec, loadable by Perfetto and chrome://tracing. Each span becomes a
// complete event ("ph":"X") with microsecond ts/dur; lanes map to
// threads of one process, named via "M" thread_name metadata events so
// the UI shows "driver", "worker 0", "worker 1", ... rows.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	TraceEvents     []traceEvent   `json:"traceEvents"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tracePID is the single synthetic process all lanes live under.
const tracePID = 1

// ServiceWorker is the synthetic worker id of service-layer spans: job
// lifecycle segments (queue wait, run wall) the daemon emits around a
// flow, exported as their own "service" thread row so queue wait shows
// adjacent to the synthesis phases in Perfetto.
const ServiceWorker int32 = -2

// serviceTID is the trace thread id of the service lane; a high tid so
// the row sorts after the driver and worker rows without renumbering
// them.
const serviceTID = 1000

// laneTID maps a span's worker to a trace thread id: the driver lane
// (worker -1) is tid 1, worker w is tid w+2 (tid 0 is avoided — some
// viewers treat it specially), and the service lane gets its own high
// tid.
func laneTID(worker int32) int {
	if worker == ServiceWorker {
		return serviceTID
	}
	return int(worker) + 2
}

// laneThreadName names a lane's thread row in the trace viewer.
func laneThreadName(worker int32) string {
	if worker == ServiceWorker {
		return "service"
	}
	if worker < 0 {
		return "driver"
	}
	return fmt.Sprintf("worker %d", worker)
}

// BuildTrace converts a span snapshot into the trace-event object. Kept
// separate from WriteTrace so tests can assert on structure without
// round-tripping JSON.
func BuildTrace(spans []Span, dropped int64) *traceFile {
	tf := &traceFile{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]traceEvent, 0, len(spans)+8),
	}
	if dropped > 0 {
		tf.OtherData = map[string]any{"dropped_spans": dropped}
	}
	// Thread-name metadata for every lane that actually has spans.
	seen := map[int32]bool{}
	for i := range spans {
		w := spans[i].Worker
		if seen[w] {
			continue
		}
		seen[w] = true
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  tracePID,
			TID:  laneTID(w),
			Args: map[string]any{"name": laneThreadName(w)},
		})
	}
	for i := range spans {
		s := &spans[i]
		cat := s.Phase.String()
		if s.Worker == ServiceWorker {
			cat = "service"
		}
		ev := traceEvent{
			Name: s.Name,
			Cat:  cat,
			Ph:   "X",
			TS:   float64(s.T0) / 1e3, // trace-event ts/dur are microseconds
			Dur:  float64(s.Dur()) / 1e3,
			PID:  tracePID,
			TID:  laneTID(s.Worker),
			Args: map[string]any{
				"span_id": s.ID,
				"iter":    s.Iter,
			},
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		if s.Shard >= 0 {
			ev.Args["shard"] = s.Shard
		}
		if s.Tasks > 0 {
			ev.Args["tasks"] = s.Tasks
		}
		if s.Busy > 0 {
			ev.Args["busy_ns"] = s.Busy
			ev.Args["idle_ns"] = s.Idle()
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	return tf
}

// WriteTrace writes the recorder's current snapshot as Chrome
// trace-event JSON (Perfetto-loadable). Safe while the flow is still
// recording: it exports the published prefix of every lane.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tf := BuildTrace(r.Snapshot(), r.Dropped())
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("timeline: encode trace: %w", err)
	}
	return bw.Flush()
}
