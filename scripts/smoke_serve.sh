#!/usr/bin/env bash
# Smoke test for the live observability service: start alsd on an
# ephemeral port with demo jobs queued, then exercise every endpoint the
# README documents — health/readiness probes, the Prometheus and JSON
# metrics surfaces, a bounded SSE event stream, and pprof — and shut the
# daemon down cleanly. CI runs this after the unit suites; it is also a
# quick local check: ./scripts/smoke_serve.sh
set -euo pipefail

REPEAT="${REPEAT:-2}"
DEMO="${DEMO:-mul4}"
LOG="$(mktemp)"
trap 'kill "$ALSD_PID" 2>/dev/null || true; wait "$ALSD_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

go build -o /tmp/alsd ./cmd/alsd
/tmp/alsd -addr 127.0.0.1:0 -repeat "$REPEAT" -demo "$DEMO" >"$LOG" 2>&1 &
ALSD_PID=$!

# The daemon prints "alsd: listening on ADDR" once the listener is bound.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^alsd: listening on //p' "$LOG" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$ALSD_PID" 2>/dev/null || { echo "alsd exited early:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "alsd never reported its address:"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "smoke_serve: alsd at $BASE"

curl -fsS "$BASE/healthz" >/dev/null
curl -fsS "$BASE/readyz" >/dev/null

# Queue two c880 jobs: "warm" keeps the sequential runner busy for a
# while, so subscribing to the still-pending "smoke" run right after the
# 202 is guaranteed to land before its flow starts — alsd registers a run
# at enqueue time exactly so subscribers can attach early. Then stream 10
# SSE events from it. curl exits non-zero when the server closes the
# stream after ?limit, so only the count is checked.
for NAME in warm smoke; do
    curl -fsS -X POST "$BASE/jobs" \
        -d "{\"name\":\"$NAME\",\"circuit\":\"c880\",\"threshold\":0.05,\"m\":1024}" >/dev/null
done
EVENTS="$(curl -sS --max-time 60 "$BASE/events?run=smoke&limit=10" | grep -c '^event: ' || true)"
[ "$EVENTS" -eq 10 ] || { echo "expected 10 SSE events, got $EVENTS"; cat "$LOG"; exit 1; }
echo "smoke_serve: streamed $EVENTS SSE events"

# Wait for every job (demos + warm + smoke) to finish, then check the
# merged Prometheus scrape carries run-labelled flow metrics.
WANT=$((REPEAT + 2))
for _ in $(seq 1 300); do
    DONE="$(grep -c '^alsd: run .* done' "$LOG" || true)"
    [ "$DONE" -ge "$WANT" ] && break
    kill -0 "$ALSD_PID" 2>/dev/null || { echo "alsd died mid-run:"; cat "$LOG"; exit 1; }
    sleep 0.2
done
[ "$DONE" -ge "$WANT" ] || { echo "queued jobs never finished:"; cat "$LOG"; exit 1; }

METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -q 'sasimi_accepts_total{run="demo-1"}' \
    || { echo "merged scrape is missing run-labelled metrics:"; echo "$METRICS" | head -40; exit 1; }
JSONDOC="$(curl -fsS "$BASE/metrics.json")"
echo "$JSONDOC" | grep -q '"runs"' \
    || { echo "/metrics.json is missing the runs document"; exit 1; }
FLIGHT="$(curl -fsS "$BASE/flight?run=demo-1")"
echo "$FLIGHT" | grep -q '"total_accepts"' \
    || { echo "/flight dump is missing accept totals"; exit 1; }
curl -fsS "$BASE/debug/pprof/cmdline" >/dev/null
PPROF="$(curl -fsS "$BASE/debug/pprof/goroutine?debug=1")"
echo "$PPROF" | grep -q goroutine \
    || { echo "pprof goroutine profile unavailable"; exit 1; }

kill -TERM "$ALSD_PID"
wait "$ALSD_PID" 2>/dev/null || true
grep -q '^alsd: shutting down' "$LOG" || { echo "no clean shutdown message:"; cat "$LOG"; exit 1; }
echo "smoke_serve: OK"
