// Package lint implements the repo's custom Go-level static analyzers on a
// minimal, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer / Pass / Reportf). The container build
// vendors no third-party modules, so the framework is stdlib-only
// (go/ast + go/parser + go/token + go/types + go/importer); cmd/vetals
// drives it both standalone and through the `go vet -vettool` unitchecker
// protocol.
//
// Since PR 6 the framework is type-aware: packages are loaded with full
// go/types information (see Loader), and Pass carries TypesInfo/Pkg so
// analyzers can resolve methods, named types and package-level objects
// instead of pattern-matching identifiers.
//
// Eight analyzers enforce repo invariants:
//
//   - bitveclen:     every bitvec.Vec method that takes another *Vec must
//     guard against length mismatch before touching word slices.
//   - randseed:      library packages must not draw from the global
//     math/rand source.
//   - apipanic:      the public (non-internal, non-main) API must not
//     panic.
//   - ctxflow:       a function that receives a context.Context and
//     dispatches pool work must use DoCtx and pass the context on, never
//     drop it.
//   - sharddisjoint: code iterating a par.Shards shard must index word
//     slices only through that shard's [W0,W1) range.
//   - invalidation:  writers of core.CPM rows must invalidate the lazy
//     caches; core.Engine state must be mutated through Apply.
//   - allocfree:     functions annotated //als:allocfree must not contain
//     heap-allocating constructs (unless acknowledged by //als:alloc-ok).
//   - errwrap:       sentinel errors must be wrapped with %w and compared
//     with errors.Is, never ==.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring go/analysis.Pass. TypesInfo and Pkg are nil when the
// unit was loaded without type information (syntax-only mode); analyzers
// that need types must no-op in that case.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	PkgPath  string // import path ("batchals/internal/bitvec")
	PkgName  string // package identifier ("bitvec")
	Files    []*ast.File

	// Pkg and TypesInfo are the go/types results for the unit the files
	// belong to. For test units the type-check covers more files than
	// Files (the whole augmented package), but diagnostics are only
	// reported against Files.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic

	commentIndex map[string]map[int]string // filename -> line -> comment text
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message [analyzer]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns the repo's analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BitvecLen, RandSeed, APIPanic,
		CtxFlow, ShardDisjoint, Invalidation, AllocFree, ErrWrap,
	}
}

// Unit is one analyzable package variant: the base package of a directory,
// its in-package test files (typed against the augmented package), or its
// external _test package. Files lists the files diagnostics are reported
// on; Pkg/Info may cover more files (the augmented type-check).
type Unit struct {
	Fset    *token.FileSet
	PkgPath string
	PkgName string
	Files   []*ast.File

	Pkg  *types.Package
	Info *types.Info

	// TypeErrors collects the go/types errors of the unit's type-check;
	// a non-empty list means Pkg/Info are incomplete.
	TypeErrors []error
}

// RunUnit applies the analyzers to one loaded unit and returns the
// combined diagnostics.
func RunUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			PkgPath:   u.PkgPath,
			PkgName:   u.PkgName,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			diags:     &diags,
		}
		a.Run(pass)
	}
	return diags
}

// Run applies the analyzers to one parsed package without type information
// and returns the combined diagnostics in source order. Type-aware
// analyzers no-op; this is the legacy syntax-only entry point kept for the
// unitchecker fallback and the package's own unit tests.
func Run(fset *token.FileSet, pkgPath, pkgName string, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	return RunUnit(&Unit{
		Fset:    fset,
		PkgPath: pkgPath,
		PkgName: pkgName,
		Files:   files,
	}, analyzers)
}

// isTestFile reports whether the file position sits in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// importedAs returns the local identifier under which file f imports path,
// or "" when the path is not imported (or imported blank/dot).
func importedAs(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_", ".":
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}
