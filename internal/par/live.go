package par

import (
	"strconv"
	"sync"
	"time"

	"batchals/internal/obs"
)

// DefaultSampleInterval is the gauge refresh period SampleInto uses when
// given a non-positive interval.
const DefaultSampleInterval = 250 * time.Millisecond

// SampleInto starts a background sampler that periodically publishes the
// pool's live state as gauges on reg:
//
//	par_pool_workers              worker count (set once)
//	par_pool_inflight             tasks executing right now
//	par_pool_live_speedup         busy/wall realised speedup so far
//	par_worker_utilization{worker="i"}   fraction of the last interval worker i spent in task bodies
//	par_worker_last_task_ns{worker="i"}  duration of worker i's most recent task
//
// The per-worker series are capped at maxWorkerCounters, matching the
// registry counters. The returned stop function halts the sampler after
// writing one final sample; it is idempotent and safe to defer. A nil pool
// or nil registry returns a no-op stop.
func (p *Pool) SampleInto(reg *obs.Registry, every time.Duration) (stop func()) {
	if p == nil || reg == nil {
		return func() {}
	}
	if every <= 0 {
		every = DefaultSampleInterval
	}
	nw := len(p.perBusyNS)
	inflightG := reg.Gauge("par_pool_inflight")
	speedupG := reg.Gauge("par_pool_live_speedup")
	utilG := make([]*obs.Gauge, nw)
	lastG := make([]*obs.Gauge, nw)
	for w := 0; w < nw; w++ {
		id := strconv.Itoa(w)
		utilG[w] = reg.Gauge(`par_worker_utilization{worker="` + id + `"}`)
		lastG[w] = reg.Gauge(`par_worker_last_task_ns{worker="` + id + `"}`)
	}
	reg.Gauge("par_pool_workers").Set(float64(p.workers))

	prevBusy := make([]int64, nw)
	prevT := time.Now()
	sample := func(now time.Time) {
		inflightG.Set(float64(p.inflight.Load()))
		speedupG.Set(p.Speedup())
		elapsed := now.Sub(prevT)
		for w := 0; w < nw; w++ {
			b := p.perBusyNS[w].Load()
			if elapsed > 0 {
				utilG[w].Set(float64(b-prevBusy[w]) / float64(elapsed))
			}
			prevBusy[w] = b
			lastG[w].Set(float64(p.lastTaskNS[w].Load()))
		}
		prevT = now
	}

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample(time.Now())
				return
			case now := <-tick.C:
				sample(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// Inflight reports the number of tasks executing at this instant. It is a
// monitoring observable, not a synchronisation primitive.
func (p *Pool) Inflight() int64 {
	if p == nil {
		return 0
	}
	return p.inflight.Load()
}
