package core

import (
	"fmt"
	"sort"
	"strings"

	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// NodeTestability summarises one node's statistical testability measures
// under the simulated input distribution: its signal probability
// (controllability) and the probability that a flip at it reaches any
// primary output (observability, straight out of the CPM).
type NodeTestability struct {
	Node          circuit.NodeID
	Name          string
	Kind          circuit.Kind
	Prob1         float64 // fraction of patterns where the node is 1
	Observability float64 // fraction of patterns where a flip is visible
	// Impact is Prob-weighted observability of the rarer phase: an upper
	// bound on the ER a stuck-at fault at this node could cause; nodes
	// with near-zero impact are the natural first targets of approximate
	// transformations.
	Impact float64
}

// TestabilityReport computes per-node testability for all live gates from
// one simulation and one CPM — a by-product the batch estimation
// infrastructure provides for free, useful for test-point insertion and
// for understanding where an ALS flow will find its savings.
func TestabilityReport(n *circuit.Network, vals *sim.Values, cpm *CPM) []NodeTestability {
	var out []NodeTestability
	m := float64(vals.M)
	for _, id := range n.TopoOrder() {
		if !n.Kind(id).IsGate() {
			continue
		}
		ones := float64(vals.Node(id).Count())
		p1 := ones / m
		ob := cpm.Observability(id)
		rarer := p1
		if rarer > 0.5 {
			rarer = 1 - rarer
		}
		out = append(out, NodeTestability{
			Node:          id,
			Name:          n.NameOf(id),
			Kind:          n.Kind(id),
			Prob1:         p1,
			Observability: ob,
			Impact:        rarer * ob,
		})
	}
	return out
}

// RenderTestability formats a report, least-impactful nodes first, capped
// at limit rows (0 = all).
func RenderTestability(rows []NodeTestability, limit int) string {
	sorted := append([]NodeTestability(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Impact != sorted[j].Impact {
			return sorted[i].Impact < sorted[j].Impact
		}
		return sorted[i].Node < sorted[j].Node
	})
	if limit > 0 && len(sorted) > limit {
		sorted = sorted[:limit]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-6s %8s %8s %10s\n", "node", "kind", "P(1)", "observ", "impact")
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%-14s %-6s %8.4f %8.4f %10.6f\n",
			r.Name, r.Kind, r.Prob1, r.Observability, r.Impact)
	}
	return sb.String()
}
