package work

import (
	"context"
	"testing"
)

// TestCancelled shows the analyzer runs on test files too — the tree's
// actual findings were cancellation assertions exactly like this one.
func TestCancelled(t *testing.T) {
	err := context.Canceled
	if err == context.Canceled { // want "use errors.Is"
		t.Log("identity comparison flagged")
	}
}
