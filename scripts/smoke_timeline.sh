#!/usr/bin/env bash
# Smoke test for the causal timeline profiler: run a small sasimi flow
# with -timeline, validate the exported file is well-formed Chrome
# trace-event JSON (the format Perfetto and chrome://tracing load), and
# check the end-of-run span summary includes the serial-fraction line the
# EXPERIMENTS.md analysis is built on. CI runs this after the unit suites
# and uploads the trace as an artifact; it is also a quick local check:
# ./scripts/smoke_timeline.sh
set -euo pipefail

TRACE="${TRACE:-/tmp/smoke_timeline.json}"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

go build -o /tmp/alsrun ./cmd/alsrun
/tmp/alsrun -circuit c880 -threshold 0.03 -m 2048 -verify 2 -workers 4 \
    -timeline "$TRACE" | tee "$LOG"

grep -q "wrote $TRACE" "$LOG" || { echo "alsrun never wrote the trace"; exit 1; }
grep -q "parallel fraction" "$LOG" || { echo "summary is missing the parallel-fraction line"; exit 1; }

# Validate the trace-event JSON: top-level shape, complete events with
# non-negative microsecond timestamps, thread_name metadata for the
# driver lane and at least one worker lane, dispatch causality (worker
# events referencing a parent span), and — at -workers 4 — the verify
# step actually fanned out: sasimi.verify_topk must appear on worker
# lanes as causally-parented child spans, not only as a driver span.
python3 - "$TRACE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["displayTimeUnit"] == "ns", doc.get("displayTimeUnit")
events = doc["traceEvents"]
assert events, "empty traceEvents"

threads, complete, parented = {}, 0, 0
spans = []
for ev in events:
    assert ev["ph"] in ("X", "M"), f"unexpected event phase {ev['ph']!r}"
    assert ev["pid"] == 1
    if ev["ph"] == "M":
        assert ev["name"] == "thread_name"
        threads[ev["tid"]] = ev["args"]["name"]
    else:
        complete += 1
        assert ev["ts"] >= 0 and ev.get("dur", 0) >= 0, ev
        assert "span_id" in ev["args"], ev
        if "parent" in ev["args"]:
            parented += 1
        spans.append(ev)

assert "driver" in threads.values(), threads
assert any(n.startswith("worker") for n in threads.values()), threads
assert complete > 0, "no complete (X) events"
assert parented > 0, "no span carries a parent (causality lost)"

verify_children = [
    ev for ev in spans
    if ev["name"] == "sasimi.verify_topk"
    and threads.get(ev["tid"], "").startswith("worker")
    and "parent" in ev["args"]
]
assert verify_children, "verify_topk never fanned out to worker lanes"
print(f"smoke_timeline: {complete} spans across {len(threads)} lanes, "
      f"{parented} causally parented, {len(verify_children)} parallel verify spans")
EOF

echo "smoke_timeline: OK"
