// Package sim provides bit-parallel logic simulation over circuit networks:
// pattern-set generation (seeded uniform random, exhaustive enumeration, or
// a caller-supplied distribution), full-network simulation producing
// per-node value vectors, and incremental fanout-cone resimulation used by
// the full-simulation baseline estimator.
//
// All simulation is 64-way word-parallel: pattern i lives in bit i%64 of
// word i/64 of each node's value vector.
package sim

import (
	"fmt"
	"math/rand"

	"batchals/internal/bitvec"
)

// Patterns is a set of M input assignments for a fixed input count. Row k
// is the M-bit value vector of input k across all patterns.
type Patterns struct {
	numInputs int
	m         int
	rows      []*bitvec.Vec
}

// NumPatterns returns M, the number of patterns in the set.
func (p *Patterns) NumPatterns() int { return p.m }

// NumInputs returns the number of inputs each pattern assigns.
func (p *Patterns) NumInputs() int { return p.numInputs }

// InputRow returns the M-bit value vector of input k. Shared, not copied.
func (p *Patterns) InputRow(k int) *bitvec.Vec { return p.rows[k] }

// Bit reports the value of input k under pattern i.
func (p *Patterns) Bit(i, k int) bool { return p.rows[k].Get(i) }

// SetBit sets the value of input k under pattern i.
func (p *Patterns) SetBit(i, k int, v bool) { p.rows[k].Set(i, v) }

// NewPatterns returns an all-zero pattern set of m patterns over numInputs
// inputs.
func NewPatterns(numInputs, m int) *Patterns {
	p := &Patterns{numInputs: numInputs, m: m, rows: make([]*bitvec.Vec, numInputs)}
	for k := range p.rows {
		p.rows[k] = bitvec.New(m)
	}
	return p
}

// RandomPatterns draws m patterns with every input bit i.i.d. uniform,
// using the given seed. The same seed always yields the same set, which is
// what lets the ALS flow reuse one pattern set across all its iterations
// (Section 4.3 of the paper).
func RandomPatterns(numInputs, m int, seed int64) *Patterns {
	r := rand.New(rand.NewSource(seed))
	p := NewPatterns(numInputs, m)
	for k := 0; k < numInputs; k++ {
		words := p.rows[k].WordsSlice()
		for w := range words {
			words[w] = r.Uint64()
		}
		p.rows[k].MaskTail()
	}
	return p
}

// BiasedPatterns draws m patterns where input k is 1 with probability
// prob[k], modelling a non-uniform independent input distribution.
func BiasedPatterns(prob []float64, m int, seed int64) *Patterns {
	r := rand.New(rand.NewSource(seed))
	p := NewPatterns(len(prob), m)
	for k := range prob {
		for i := 0; i < m; i++ {
			if r.Float64() < prob[k] {
				p.rows[k].Set(i, true)
			}
		}
	}
	return p
}

// SampledPatterns draws m patterns by calling next() m times; next must
// return a slice of numInputs bools (it may reuse the slice). This is the
// hook for arbitrary, possibly correlated, input distributions.
func SampledPatterns(numInputs, m int, next func() []bool) *Patterns {
	p := NewPatterns(numInputs, m)
	for i := 0; i < m; i++ {
		row := next()
		if len(row) != numInputs {
			panic(fmt.Sprintf("sim: sampler returned %d bits, want %d", len(row), numInputs))
		}
		for k, b := range row {
			if b {
				p.rows[k].Set(i, true)
			}
		}
	}
	return p
}

// ExhaustivePatterns enumerates all 2^numInputs assignments. It panics for
// numInputs > 26 (67M patterns) to avoid accidental memory blow-ups.
func ExhaustivePatterns(numInputs int) *Patterns {
	if numInputs > 26 {
		panic(fmt.Sprintf("sim: exhaustive enumeration of %d inputs is infeasible", numInputs))
	}
	m := 1 << uint(numInputs)
	p := NewPatterns(numInputs, m)
	for k := 0; k < numInputs; k++ {
		words := p.rows[k].WordsSlice()
		if k < 6 {
			// Within a word: input k alternates in blocks of 2^k bits.
			var w uint64
			block := uint(1) << uint(k)
			for bit := uint(0); bit < 64; bit++ {
				if bit/block%2 == 1 {
					w |= 1 << bit
				}
			}
			for i := range words {
				words[i] = w
			}
		} else {
			// Across words: word j has input k = bit (k-6) of j.
			for j := range words {
				if j>>(uint(k)-6)&1 == 1 {
					words[j] = ^uint64(0)
				}
			}
		}
		p.rows[k].MaskTail()
	}
	return p
}

// MarkovPatterns draws m patterns from a first-order Markov chain over
// whole input vectors: each pattern equals the previous one except that
// every bit independently toggles with probability toggleProb. This
// produces temporally correlated, non-i.i.d. stimuli — the kind of
// distribution for which the paper argues Monte Carlo simulation is
// required (analytical signal-probability methods assume independence).
func MarkovPatterns(numInputs, m int, toggleProb float64, seed int64) *Patterns {
	if toggleProb < 0 || toggleProb > 1 {
		panic(fmt.Sprintf("sim: toggle probability %v out of [0,1]", toggleProb))
	}
	r := rand.New(rand.NewSource(seed))
	p := NewPatterns(numInputs, m)
	cur := make([]bool, numInputs)
	for k := range cur {
		cur[k] = r.Intn(2) == 1
	}
	for i := 0; i < m; i++ {
		for k := 0; k < numInputs; k++ {
			if i > 0 && r.Float64() < toggleProb {
				cur[k] = !cur[k]
			}
			if cur[k] {
				p.rows[k].Set(i, true)
			}
		}
	}
	return p
}
