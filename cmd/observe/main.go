// Command observe inspects ALS observability data. It has two modes:
//
// Circuit mode prints a statistical testability report for a circuit:
// per-gate signal probability, observability (from the change propagation
// matrix) and stuck-at impact, under a uniform Monte Carlo input
// distribution. Low-impact nodes are where an ALS flow finds its savings;
// high-impact, low-observability nodes are where a test engineer inserts
// observation points.
//
// Metrics mode renders a metrics snapshot — from a JSON file written by
// alsrun -metrics, or fetched live from a serving process (alsd, alsrun
// -serve) via its /metrics.json endpoint:
//
//	observe -circuit c880 -m 10000 -top 20
//	observe -circuit my.bench
//	observe -metrics run_metrics.json
//	observe -url http://localhost:8415/metrics.json
//
// Malformed metrics input (unreadable file, failed fetch, invalid JSON)
// exits with status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"batchals"
	"batchals/internal/core"
	"batchals/internal/sim"
)

func main() {
	var (
		circuitFlag = flag.String("circuit", "", "benchmark name or .bench/.blif file")
		m           = flag.Int("m", 10000, "Monte Carlo pattern count")
		seed        = flag.Int64("seed", 0, "random seed")
		top         = flag.Int("top", 25, "rows to print (0 = all), least testable first")
		metricsFile = flag.String("metrics", "", "render a metrics snapshot JSON file (from alsrun -metrics or /metrics.json)")
		urlFlag     = flag.String("url", "", "fetch and render live /metrics.json from a serving process")
	)
	flag.Parse()
	if *metricsFile != "" || *urlFlag != "" {
		if err := metricsMode(*metricsFile, *urlFlag); err != nil {
			fmt.Fprintln(os.Stderr, "observe:", err)
			os.Exit(1)
		}
		return
	}
	if *circuitFlag == "" {
		fmt.Fprintln(os.Stderr, "observe: -circuit is required (or -metrics/-url)")
		flag.Usage()
		os.Exit(2)
	}
	var (
		n   *batchals.Network
		err error
	)
	if strings.ContainsAny(*circuitFlag, "/.") {
		n, err = batchals.Load(*circuitFlag)
	} else {
		n, err = batchals.Benchmark(*circuitFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "observe:", err)
		os.Exit(1)
	}
	p := sim.RandomPatterns(n.NumInputs(), *m, *seed)
	vals := sim.Simulate(n, p)
	cpm := core.Build(n, vals)
	rows := core.TestabilityReport(n, vals, cpm)
	bt := cpm.BuildTime()
	unit := time.Millisecond
	if bt < 10*time.Millisecond {
		unit = time.Microsecond
	}
	fmt.Printf("%s: %d gates, M=%d patterns, CPM built in %v\n",
		n.Name, n.NumGates(), *m, bt.Round(unit))
	fmt.Print(core.RenderTestability(rows, *top))
}
