package flow_test

import (
	"errors"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
	"batchals/internal/snap"
	"batchals/internal/wu"
)

// TestBudgetValidate pins the Budget validation rules and the typed
// sentinels they wrap.
func TestBudgetValidate(t *testing.T) {
	b := flow.Budget{Threshold: -0.5, NumPatterns: 100}
	if err := b.Validate("test"); !errors.Is(err, flow.ErrBadThreshold) {
		t.Fatalf("negative threshold: got %v, want ErrBadThreshold", err)
	}
	b = flow.Budget{Threshold: 0.1, NumPatterns: -3}
	if err := b.Validate("test"); !errors.Is(err, flow.ErrNoPatterns) {
		t.Fatalf("negative patterns: got %v, want ErrNoPatterns", err)
	}
	b = flow.Budget{Threshold: 0.1, NumPatterns: 100}
	if err := b.Validate("test"); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
}

// TestFlowsWrapSentinels checks that every flow surfaces the shared typed
// sentinels through errors.Is, with the flow's name in the message.
func TestFlowsWrapSentinels(t *testing.T) {
	golden := bench.RCA(4)

	if _, err := sasimi.Run(golden, sasimi.Config{Budget: flow.Budget{Threshold: -1}}); !errors.Is(err, flow.ErrBadThreshold) {
		t.Fatalf("sasimi: got %v, want ErrBadThreshold", err)
	}
	if _, err := snap.Run(golden, snap.Config{Budget: flow.Budget{Threshold: -1}}); !errors.Is(err, flow.ErrBadThreshold) {
		t.Fatalf("snap: got %v, want ErrBadThreshold", err)
	}
	if _, err := wu.Run(golden, wu.Config{Budget: flow.Budget{Threshold: -1}}); !errors.Is(err, flow.ErrBadThreshold) {
		t.Fatalf("wu: got %v, want ErrBadThreshold", err)
	}

	// An explicit empty pattern override is ErrNoPatterns in sasimi.
	empty := sim.NewPatterns(golden.NumInputs(), 0)
	cfg := sasimi.Config{
		Budget:   flow.Budget{Metric: core.MetricER, Threshold: 0.1, NumPatterns: 100},
		Patterns: empty,
	}
	if _, err := sasimi.Run(golden, cfg); !errors.Is(err, flow.ErrNoPatterns) {
		t.Fatalf("sasimi empty patterns: got %v, want ErrNoPatterns", err)
	}
}

// TestUnknownBenchmarkSentinel pins bench.ByName's typed error.
func TestUnknownBenchmarkSentinel(t *testing.T) {
	if _, err := bench.ByName("no-such-circuit"); !errors.Is(err, bench.ErrUnknownBenchmark) {
		t.Fatalf("got %v, want ErrUnknownBenchmark", err)
	}
	if _, err := bench.ByName("rca8"); err != nil {
		t.Fatalf("known benchmark rejected: %v", err)
	}
}
