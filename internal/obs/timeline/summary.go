package timeline

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// NameStat aggregates all spans sharing a name.
type NameStat struct {
	Name  string
	Count int
	// Wall is the summed span duration; for driver-lane spans this is
	// flow wall-clock, for worker spans it is summed across workers (so it
	// can exceed the run's wall time on multi-worker runs).
	Wall time.Duration
	// Busy and Idle split Wall for spans carrying busy accounting.
	Busy, Idle time.Duration
	Max        time.Duration
}

// Summary is the per-name rollup of a span snapshot, plus the coverage
// numbers the serial-fraction analysis needs.
type Summary struct {
	Stats []NameStat // sorted by Wall descending
	// Span covers [T0,T1] of the whole recording.
	T0, T1 int64
	// DispatchWall is the total wall time inside pool dispatches (driver
	// lane "par:" dispatch spans) — the parallelised fraction's numerator.
	DispatchWall time.Duration
	Dropped      int64
}

// Wall returns the recording's total wall duration.
func (s *Summary) Wall() time.Duration { return time.Duration(s.T1 - s.T0) }

// ParallelFraction returns the fraction of recorded wall time spent
// inside pool dispatches — the P of Amdahl's law for the recorded run.
func (s *Summary) ParallelFraction() float64 {
	w := s.T1 - s.T0
	if w <= 0 {
		return 0
	}
	return float64(s.DispatchWall) / float64(w)
}

// Summarize rolls a snapshot up by span name.
func Summarize(spans []Span, dropped int64) *Summary {
	sum := &Summary{Dropped: dropped}
	byName := map[string]*NameStat{}
	for i := range spans {
		s := &spans[i]
		if i == 0 || s.T0 < sum.T0 {
			sum.T0 = s.T0
		}
		if s.T1 > sum.T1 {
			sum.T1 = s.T1
		}
		st := byName[s.Name]
		if st == nil {
			st = &NameStat{Name: s.Name}
			byName[s.Name] = st
		}
		d := time.Duration(s.Dur())
		st.Count++
		st.Wall += d
		if d > st.Max {
			st.Max = d
		}
		if s.Busy > 0 {
			st.Busy += time.Duration(s.Busy)
			st.Idle += time.Duration(s.Idle())
		}
		// Dispatch spans live on the driver lane with worker -1 and a
		// task count; their union approximates the parallelised wall time.
		if s.Worker < 0 && s.Tasks > 0 {
			sum.DispatchWall += d
		}
	}
	sum.Stats = make([]NameStat, 0, len(byName))
	for _, st := range byName {
		sum.Stats = append(sum.Stats, *st)
	}
	sort.Slice(sum.Stats, func(a, b int) bool {
		if sum.Stats[a].Wall != sum.Stats[b].Wall {
			return sum.Stats[a].Wall > sum.Stats[b].Wall
		}
		return sum.Stats[a].Name < sum.Stats[b].Name
	})
	return sum
}

// WriteSummary renders the rollup as an aligned text table (the
// `alsrun -timeline` end-of-run report).
func (s *Summary) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "span\tcount\twall\tbusy\tidle\tmax\n")
	for _, st := range s.Stats {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n",
			st.Name, st.Count,
			st.Wall.Round(time.Microsecond),
			st.Busy.Round(time.Microsecond),
			st.Idle.Round(time.Microsecond),
			st.Max.Round(time.Microsecond))
	}
	fmt.Fprintf(tw, "\ntotal wall\t%v\n", s.Wall().Round(time.Microsecond))
	fmt.Fprintf(tw, "in dispatches\t%v (parallel fraction %.1f%%)\n",
		s.DispatchWall.Round(time.Microsecond), 100*s.ParallelFraction())
	if s.Dropped > 0 {
		fmt.Fprintf(tw, "dropped spans\t%d\n", s.Dropped)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("timeline: write summary: %w", err)
	}
	return nil
}
