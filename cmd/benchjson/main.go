// Command benchjson converts `go test -bench -benchmem` output into a
// committed JSON baseline, optionally enriched with the observability
// layer's per-phase breakdown of a smoke SASIMI flow, and checks a new
// bench run against a committed baseline.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x . | benchjson -phases c880 -o BENCH_pr2.json
//	go test -run='^$' -bench=. -benchmem -benchtime=1x . | benchjson -against BENCH_pr2.json
//
// Without -against, benchjson parses the bench lines on stdin and writes
// the baseline JSON to -o (default stdout) in the benchmeta schema
// (schema_version 2: environment metadata — go version, GOMAXPROCS, CPU
// model, commit — alongside the benchmarks). With -against, it instead
// verifies that every benchmark recorded in the baseline still appears in
// the new run (so CI fails when a paper experiment's benchmark silently
// disappears) and prints an ns/op comparison; it does not gate on timing,
// which is hardware-dependent — that is cmd/benchdiff's job, with
// noise-aware thresholds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"batchals"
	"batchals/internal/benchmeta"
	"batchals/internal/obs"
)

func main() {
	var (
		inFile  = flag.String("in", "", "read bench output from this file instead of stdin")
		outFile = flag.String("o", "", "write the baseline JSON here (default stdout)")
		phases  = flag.String("phases", "", "also run an instrumented smoke flow on this benchmark circuit and embed its phase breakdown")
		m       = flag.Int("m", 2000, "pattern count for the -phases smoke flow")
		thr     = flag.Float64("threshold", 0.01, "ER budget for the -phases smoke flow")
		against = flag.String("against", "", "compare stdin bench output against this committed baseline instead of writing one")
		commit  = flag.String("commit", "", "commit hash to record in env (default: $GITHUB_SHA, then git rev-parse HEAD)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	benches, err := benchmeta.ParseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *against != "" {
		if err := compare(*against, benches); err != nil {
			fatal(err)
		}
		return
	}

	base := benchmeta.Baseline{
		SchemaVersion: benchmeta.SchemaVersion,
		GeneratedWith: "go test -run='^$' -bench=. -benchmem -benchtime=1x .",
		Env:           benchmeta.CaptureEnv(resolveCommit(*commit)),
		Benchmarks:    benches,
	}
	if *phases != "" {
		pb, err := runPhases(*phases, *m, *thr)
		if err != nil {
			fatal(err)
		}
		base.Phases = pb
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fatal(err)
	}
}

// resolveCommit picks the commit hash to record: the explicit flag, then
// the CI-provided GITHUB_SHA, then a best-effort git rev-parse (empty if
// git or the work tree is unavailable — the field is metadata, not a
// requirement).
func resolveCommit(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runPhases runs one observed SASIMI smoke flow and returns its five-phase
// wall-time breakdown.
func runPhases(circuit string, m int, thr float64) (*benchmeta.PhaseBreakdown, error) {
	golden, err := batchals.Benchmark(circuit)
	if err != nil {
		return nil, err
	}
	res, err := batchals.Approximate(golden, batchals.Options{
		Metric:      batchals.ErrorRate,
		Threshold:   thr,
		NumPatterns: m,
		Seed:        1,
		Metrics:     batchals.NewMetrics(),
	})
	if err != nil {
		return nil, err
	}
	pb := &benchmeta.PhaseBreakdown{
		Circuit:   circuit,
		M:         m,
		Threshold: thr,
		TotalNS:   int64(res.Phases.Total()),
		PhaseNS:   map[string]int64{},
		Spans:     map[string]int64{},
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		st := res.Phases.Stats[p]
		pb.PhaseNS[p.String()] = int64(st.Time)
		pb.Spans[p.String()] = st.Count
	}
	return pb, nil
}

// compare checks the new bench results cover every benchmark in the
// committed baseline and prints an informational ns/op comparison.
func compare(baselinePath string, fresh []benchmeta.Bench) error {
	base, err := benchmeta.Load(baselinePath)
	if err != nil {
		return err
	}
	got := map[string]benchmeta.Bench{}
	for _, b := range fresh {
		got[b.Name] = b
	}
	var missing []string
	names := make([]string, 0, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	byName := map[string]benchmeta.Bench{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range names {
		nb, ok := got[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		ob := byName[name]
		if o, n := ob.Metrics["ns/op"], nb.Metrics["ns/op"]; o > 0 && n > 0 {
			fmt.Printf("%-32s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				name, o, n, 100*(n-o)/o)
		} else {
			fmt.Printf("%-32s present\n", name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("baseline benchmarks missing from this run: %s",
			strings.Join(missing, ", "))
	}
	fmt.Printf("all %d baseline benchmarks present\n", len(names))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
