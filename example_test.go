package batchals_test

import (
	"fmt"

	"batchals"
)

// Approximate an 8-bit comparator under a 1% error-rate budget and report
// the saved area.
func ExampleApproximate() {
	golden, _ := batchals.Benchmark("cmp8")
	res, _ := batchals.Approximate(golden, batchals.Options{
		Metric:      batchals.ErrorRate,
		Threshold:   0.01,
		NumPatterns: 4000,
		Seed:        1,
	})
	fmt.Println("error within budget:", res.FinalError <= 0.01)
	fmt.Println("area reduced:", res.FinalArea < res.OriginalArea)
	// Output:
	// error within budget: true
	// area reduced: true
}

// Measure the exact error between a golden multiplier and itself.
func ExampleMeasureErrorExact() {
	golden, _ := batchals.Benchmark("mul4")
	rep := batchals.MeasureErrorExact(golden, golden.Clone())
	fmt.Printf("ER=%.0f AEM=%.0f\n", rep.ErrorRate, rep.AvgErrMag)
	// Output:
	// ER=0 AEM=0
}
