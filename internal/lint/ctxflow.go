package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's cancellation contract: a function that
// receives a context.Context and dispatches pool work must keep the
// context flowing. Two patterns break the chain and are flagged:
//
//   - calling the ctx-less par.Pool.Do — the fan-out becomes
//     uncancellable even though the caller handed us a context;
//   - passing context.Background() or context.TODO() directly as a call
//     argument — the received context is silently dropped.
//
// Assigning Background/TODO to a variable (the `if ctx == nil { ctx =
// context.Background() }` nil-guard in the parallel gather path) is
// deliberate and allowed. State-mutating phases that must run to
// completion once started (Engine.Apply, CPM.Refresh, the builders) take
// no context and are out of scope by construction. Findings on a line
// carrying an //als:ctx-ok comment are acknowledged exceptions. Test
// files are exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx-receiving functions must use DoCtx and pass the context onward",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if p.TypesInfo == nil {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !p.receivesContext(fn.Type) {
				continue
			}
			p.checkCtxBody(fn.Name.Name, fn.Body)
		}
	}
}

// receivesContext reports whether the function type declares a parameter
// that carries a context.Context — either directly, or as a field of a
// parameter struct (the iterContext pattern): in both cases the function
// has a live context available and must not sever the chain.
func (p *Pass) receivesContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := p.typeOf(field.Type)
		if isNamed(t, "context", "Context") || carriesContextField(t) {
			return true
		}
	}
	return false
}

// carriesContextField reports whether t (after stripping pointers) is a
// struct with a field of type context.Context.
func carriesContextField(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNamed(st.Field(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

func (p *Pass) checkCtxBody(name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals get their own contract: if they also
		// receive a context they are checked independently; if not, the
		// enclosing function's context legitimately crosses into them via
		// capture, so keep descending.
		if lit, ok := n.(*ast.FuncLit); ok && p.receivesContext(lit.Type) {
			p.checkCtxBody(name+" (func literal)", lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := p.calleeFunc(call); fn != nil {
			if fn.Name() == "Do" && isMethodOf(fn, "batchals/internal/par", "Pool") &&
				!p.suppressed(call.Pos(), "als:ctx-ok") {
				p.Reportf(call.Pos(), "%s receives a context.Context but calls Pool.Do; use DoCtx so the fan-out stays cancellable", name)
			}
		}
		// A fresh Background/TODO handed directly to a callee drops the
		// received context on the floor.
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := p.calleeFunc(inner)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				continue
			}
			if (fn.Name() == "Background" || fn.Name() == "TODO") &&
				!p.suppressed(inner.Pos(), "als:ctx-ok") {
				p.Reportf(inner.Pos(), "%s receives a context.Context but passes context.%s() onward; thread the received context instead", name, fn.Name())
			}
		}
		return true
	})
}

// isMethodOf reports whether fn is a method whose receiver (after
// stripping pointers) is the named type path.typeName.
func isMethodOf(fn *types.Func, path, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), path, typeName)
}
