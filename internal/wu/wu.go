// Package wu implements a simplified variant of Wu & Qian's multi-level
// ALS flow (DAC 2016), the third method of the paper's Table 3. Its
// approximate transformation shrinks a node by deleting one literal: a
// fanin is removed from an AND/OR-family gate (a 2-input gate collapses
// onto its remaining fanin, with the inversion folded in for NAND/NOR).
//
// The original operates on factored-form expressions of Boolean-network
// nodes; on this library's simple-gate networks every gate *is* a flat
// product or sum, so literal deletion is exactly fanin removal. XOR-family
// gates have no removable literal (deleting a XOR input changes the
// function in a non-monotone way the original's error model does not
// cover) and are left alone, as is MUX.
//
// The flow is the same greedy iteration as SASIMI and reuses the batch CPM
// estimator for the increased error of every candidate deletion — i.e.
// this package is the paper's technique applied to a second published AT
// type.
package wu

import (
	"fmt"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sim"
)

// Config parameterises a run. The shared budget fields (Metric, Threshold,
// NumPatterns, Seed, Library, MaxIterations) come from the embedded
// flow.Budget.
type Config struct {
	flow.Budget

	// UseBatch selects the CPM estimator (true, default behaviour of the
	// modified flow) or the local toggle-probability estimate (false, the
	// original flow's local error model).
	UseBatch bool
}

// Result reports a run.
type Result struct {
	Approx        *circuit.Network
	OriginalArea  float64
	FinalArea     float64
	FinalError    float64
	NumIterations int
	TotalTime     time.Duration
}

// AreaRatio returns FinalArea / OriginalArea.
func (r *Result) AreaRatio() float64 {
	if r.OriginalArea == 0 {
		return 1
	}
	return r.FinalArea / r.OriginalArea
}

// candidate is one literal deletion: remove fanin pin (index) of gate.
type candidate struct {
	gate  circuit.NodeID
	pin   int
	gain  float64
	delta float64
}

// Run executes the literal-removal flow on a copy of golden.
func Run(golden *circuit.Network, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.Budget.FillDefaults()
	if err := cfg.Budget.Validate("wu"); err != nil {
		return nil, err
	}
	if cfg.Metric == core.MetricAEM && golden.NumOutputs() > 63 {
		return nil, fmt.Errorf("wu: AEM flow needs <= 63 outputs, have %d", golden.NumOutputs())
	}
	if err := golden.Validate(); err != nil {
		return nil, fmt.Errorf("wu: invalid input network: %w", err)
	}

	patterns := sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	goldenOut := sim.OutputMatrix(golden, sim.Simulate(golden, patterns))
	approx := golden.Clone()
	res := &Result{Approx: approx, OriginalArea: cfg.Library.NetworkArea(golden)}
	res.FinalArea = res.OriginalArea
	m := patterns.NumPatterns()
	newVal := bitvec.New(m)
	change := bitvec.New(m)

	for iter := 1; ; iter++ {
		if cfg.MaxIterations > 0 && iter > cfg.MaxIterations {
			break
		}
		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(goldenOut, sim.OutputMatrix(approx, vals))
		curErr := cfg.Metric.Value(st)
		res.FinalError = curErr

		var cpm *core.CPM
		if cfg.UseBatch {
			cpm = core.Build(approx, vals)
		}

		var best *candidate
		bestScore := -1.0
		for _, id := range approx.LiveNodes() {
			kind := approx.Kind(id)
			if !removableKind(kind) {
				continue
			}
			fanins := approx.Fanins(id)
			for pin := range fanins {
				gain := deletionGain(approx, cfg.Library, id, pin)
				if gain <= 0 {
					continue
				}
				reducedValue(approx, vals, id, pin, newVal)
				change.Xor(vals.Node(id), newVal)
				var delta float64
				if cfg.UseBatch {
					if cfg.Metric == core.MetricAEM {
						delta = cpm.DeltaAEM(id, change, st)
					} else {
						delta = cpm.DeltaER(id, change, st)
					}
				} else {
					delta = float64(change.Count()) / float64(m)
				}
				if curErr+delta > cfg.Threshold+1e-12 {
					continue
				}
				score := gain / maxf(delta, 0.1/float64(m))
				if delta <= 0 {
					score = 1e12 * (gain + 1) * (1 - delta)
				}
				if score > bestScore {
					bestScore = score
					best = &candidate{gate: id, pin: pin, gain: gain, delta: delta}
				}
			}
		}
		if best == nil {
			break
		}

		backup := approx.Clone()
		applyDeletion(approx, best.gate, best.pin)
		newVals := sim.Simulate(approx, patterns)
		newSt := emetric.NewState(goldenOut, sim.OutputMatrix(approx, newVals))
		actual := cfg.Metric.Value(newSt)
		if actual > cfg.Threshold+1e-12 {
			*approx = *backup
			break
		}
		res.NumIterations++
		res.FinalArea = cfg.Library.NetworkArea(approx)
		res.FinalError = actual
	}

	res.TotalTime = time.Since(start)
	if err := approx.Validate(); err != nil {
		return nil, fmt.Errorf("wu: flow corrupted the network: %w", err)
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// removableKind reports whether literal deletion is defined for the kind.
func removableKind(k circuit.Kind) bool {
	switch k {
	case circuit.KindAnd, circuit.KindOr, circuit.KindNand, circuit.KindNor:
		return true
	}
	return false
}

// deletionGain is the area reclaimed by removing pin from gate: the gate
// shrinks by one input (or collapses entirely at arity 2) and the removed
// fanin's exclusive cone may die.
func deletionGain(n *circuit.Network, lib *cell.Library, gate circuit.NodeID, pin int) float64 {
	fanins := n.Fanins(gate)
	kind := n.Kind(gate)
	old := lib.GateArea(kind, len(fanins))
	var newArea float64
	if len(fanins) > 2 {
		newArea = lib.GateArea(kind, len(fanins)-1)
	} else {
		// Gate collapses to a wire (AND/OR) or an inverter (NAND/NOR).
		if kind == circuit.KindNand || kind == circuit.KindNor {
			newArea = lib.GateArea(circuit.KindNot, 1)
		} else {
			newArea = 0
		}
	}
	gain := old - newArea
	// The removed fanin's exclusively-supported cone dies too, unless the
	// same signal feeds the gate on another pin.
	removed := fanins[pin]
	occurrences := 0
	for _, f := range fanins {
		if f == removed {
			occurrences++
		}
	}
	if occurrences == 1 && len(n.Fanouts(removed)) == 1 && n.Kind(removed).IsGate() && !drivesOutput(n, removed) {
		for _, id := range n.MFFC(removed) {
			gain += lib.GateArea(n.Kind(id), len(n.Fanins(id)))
		}
	}
	return gain
}

func drivesOutput(n *circuit.Network, id circuit.NodeID) bool {
	for _, o := range n.Outputs() {
		if o.Node == id {
			return true
		}
	}
	return false
}

// reducedValue computes the gate's value vector with pin removed, into dst.
func reducedValue(n *circuit.Network, vals *sim.Values, gate circuit.NodeID, pin int, dst *bitvec.Vec) {
	kind := n.Kind(gate)
	fanins := n.Fanins(gate)
	rest := make([]*bitvec.Vec, 0, len(fanins)-1)
	for i, f := range fanins {
		if i == pin {
			continue
		}
		rest = append(rest, vals.Node(f))
	}
	words := bitvec.Words(vals.M)
	dw := dst.WordsSlice()
	buf := make([]uint64, len(rest))
	for w := 0; w < words; w++ {
		for j, v := range rest {
			buf[j] = v.WordsSlice()[w]
		}
		// EvalWord handles the shrunken arity directly, including the
		// single-operand AND/NAND/OR/NOR forms (identity / inversion).
		dw[w] = kind.EvalWord(buf)
	}
	dst.MaskTail()
}

// applyDeletion performs the netlist surgery for an accepted deletion.
func applyDeletion(n *circuit.Network, gate circuit.NodeID, pin int) {
	fanins := n.Fanins(gate)
	kind := n.Kind(gate)
	if len(fanins) > 2 {
		keep := make([]circuit.NodeID, 0, len(fanins)-1)
		for i, f := range fanins {
			if i != pin {
				keep = append(keep, f)
			}
		}
		repl := n.AddGate(kind, keep...)
		n.ReplaceNode(gate, repl)
		n.SweepFrom(gate)
		return
	}
	other := fanins[1-pin]
	var repl circuit.NodeID
	if kind == circuit.KindNand || kind == circuit.KindNor {
		repl = n.AddGate(circuit.KindNot, other)
	} else {
		repl = other
	}
	n.ReplaceNode(gate, repl)
	n.SweepFrom(gate)
}
