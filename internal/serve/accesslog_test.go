package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"batchals/internal/obs"
)

func TestAccessLoggerEntries(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	reg := obs.NewRegistry()
	l.CountIn(reg, "serve_access_log_entries_total")

	h := l.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("hello"))
	}))

	for _, path := range []string{"/metrics", "/missing", "/events?run=alpha"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
	}

	if got := l.Entries(); got != 3 {
		t.Fatalf("Entries() = %d, want 3", got)
	}
	if got := reg.Counter("serve_access_log_entries_total").Value(); got != 3 {
		t.Fatalf("mirrored counter = %d, want 3", got)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	var entries []AccessEntry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e AccessEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(entries))
	}
	if entries[0].Method != "GET" || entries[0].Path != "/metrics" || entries[0].Status != 200 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[0].Bytes != int64(len("hello")) {
		t.Errorf("entry 0 bytes = %d, want %d", entries[0].Bytes, len("hello"))
	}
	if entries[0].DurNS < 0 {
		t.Errorf("entry 0 duration negative: %d", entries[0].DurNS)
	}
	if entries[1].Status != http.StatusNotFound {
		t.Errorf("entry 1 status = %d, want 404", entries[1].Status)
	}
	if entries[2].Run != "alpha" {
		t.Errorf("entry 2 run = %q, want alpha (from ?run=)", entries[2].Run)
	}
}

func TestAccessLoggerRunFromPathValue(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	h := l.Wrap(mux)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/jobs/beta", nil))
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var e AccessEntry
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &e); err != nil {
		t.Fatalf("bad entry: %v", err)
	}
	if e.Run != "beta" {
		t.Fatalf("run = %q, want beta (from path value)", e.Run)
	}
}

// TestAccessLogNilLoggerZeroAlloc pins the disabled middleware's fast
// path: with a nil logger, Wrap adds zero allocations per request.
func TestAccessLogNilLoggerZeroAlloc(t *testing.T) {
	var l *AccessLogger
	var served int
	h := l.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	rw := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	allocs := testing.AllocsPerRun(100, func() {
		h.ServeHTTP(rw, req)
	})
	if allocs != 0 {
		t.Fatalf("nil-logger middleware allocates %.1f per request, want 0", allocs)
	}
	if served == 0 {
		t.Fatalf("handler never ran")
	}
}

func TestAccessLoggerNilSafe(t *testing.T) {
	var l *AccessLogger
	l.Log(AccessEntry{})
	l.CountIn(obs.NewRegistry(), "x")
	if l.Entries() != 0 || l.Err() != nil || l.Flush() != nil {
		t.Fatalf("nil logger should no-op everywhere")
	}
}

// errWriter rejects every write, exercising the sticky-error path.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("stub write failure") }

func TestAccessLoggerStickyError(t *testing.T) {
	// A tiny bufio buffer forces the encoded entries through to the
	// failing writer immediately instead of sitting buffered.
	l := &AccessLogger{}
	bw := bufio.NewWriterSize(errWriter{}, 16)
	l.w = bw
	l.enc = json.NewEncoder(bw)
	for i := 0; i < 4; i++ {
		l.Log(AccessEntry{Method: "GET", Path: strings.Repeat("/x", 20)})
	}
	if l.Flush() == nil {
		t.Fatalf("expected sticky write error")
	}
	if l.Err() == nil {
		t.Fatalf("Err() should report the sticky error")
	}
}

func TestAccessLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Log(AccessEntry{Method: "GET", Path: "/metrics"})
			}
		}()
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := l.Entries(); got != 200 {
		t.Fatalf("Entries() = %d, want 200", got)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 200 {
		t.Fatalf("JSONL lines = %d, want 200", lines)
	}
}
