package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardDisjoint enforces the word-disjointness invariant of the parallel
// kernels: workers share bitvec word slices and stay race-free only
// because each writes words of its own par.Shards shard. Inside any
// function that handles a par.Shard value, every counted word loop
// (`for w := lo; w < hi; w++`) that indexes a []uint64 slice with its
// loop variable must take its bounds from the shard — init `sh.W0`,
// condition `w < sh.W1`. Anything else (literal 0, len(words), an
// off-by-one on the bound) walks words owned by other workers.
//
// Sequential code and the [w0,w1) partial-query kernels hold no Shard
// value, so they are untouched. Range loops over fan-in scratch buffers
// are word-local by construction and also out of scope. A finding on a
// line carrying //als:shard-ok is an acknowledged exception. Test files
// are exempt.
var ShardDisjoint = &Analyzer{
	Name: "sharddisjoint",
	Doc:  "shard workers must index word slices through the shard's [W0,W1) range",
	Run:  runShardDisjoint,
}

func runShardDisjoint(p *Pass) {
	if p.TypesInfo == nil {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !p.handlesShard(fn.Body) {
				continue
			}
			p.checkShardLoops(fn.Body)
		}
	}
}

// handlesShard reports whether the function subtree mentions any value of
// type par.Shard (or a slice of them).
func (p *Pass) handlesShard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.objectOf(id)
		if obj == nil {
			return true
		}
		t := obj.Type()
		if isNamed(t, "batchals/internal/par", "Shard") {
			found = true
		}
		return true
	})
	return found
}

func (p *Pass) checkShardLoops(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Init == nil || loop.Cond == nil {
			return true
		}
		v := loopVar(loop)
		if v == nil {
			return true
		}
		if !p.loopIndexesWords(loop.Body, v) {
			return true
		}
		if p.shardBounded(loop, v) || p.suppressed(loop.Pos(), "als:shard-ok") {
			return true
		}
		p.Reportf(loop.Pos(), "word loop in shard worker must be bounded by the shard's W0/W1, not arbitrary indices; workers own disjoint word ranges")
		return true
	})
}

// loopVar extracts the single variable of a `for v := ...` init clause.
func loopVar(loop *ast.ForStmt) *ast.Ident {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return id
}

// loopIndexesWords reports whether the loop body indexes a []uint64 with
// the loop variable — the signature of touching shared vector words.
func (p *Pass) loopIndexesWords(body *ast.BlockStmt, v *ast.Ident) bool {
	obj := p.objectOf(v)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		if !ok || p.objectOf(id) != obj || obj == nil {
			return true
		}
		if isSliceOf(p.typeOf(ix.X), types.Uint64) {
			found = true
		}
		return true
	})
	return found
}

// shardBounded reports whether the loop runs exactly `for v := sh.W0;
// v < sh.W1; ...` for some par.Shard value sh.
func (p *Pass) shardBounded(loop *ast.ForStmt, v *ast.Ident) bool {
	init := loop.Init.(*ast.AssignStmt)
	if !p.isShardField(init.Rhs[0], "W0") {
		return false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return false
	}
	lhs, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || p.objectOf(lhs) != p.objectOf(v) {
		return false
	}
	return p.isShardField(cond.Y, "W1")
}

// isShardField reports whether e is a selector <shard>.<field> on a
// par.Shard value.
func (p *Pass) isShardField(e ast.Expr, field string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	return isNamed(p.typeOf(sel.X), "batchals/internal/par", "Shard")
}
