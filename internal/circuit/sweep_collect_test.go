package circuit

import (
	"reflect"
	"testing"
)

// TestSweepFromCollectIdentity pins the removed/boundary sets: on a chain
// g3->g2->g1 rewired away, the whole chain is removed and the boundary is
// the surviving fanins that lost edges into it (the primary inputs).
func TestSweepFromCollectIdentity(t *testing.T) {
	n := New("chain")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(KindAnd, a, b)
	g2 := n.AddGate(KindNot, g1)
	g3 := n.AddGate(KindNot, g2)
	n.AddOutput("o", g3)

	n.ReplaceNode(g3, a)
	removed, boundary := n.SweepFromCollect(g3)
	if !reflect.DeepEqual(removed, []NodeID{g3, g2, g1}) {
		t.Fatalf("removed %v, want [%d %d %d]", removed, g3, g2, g1)
	}
	// Boundary: a and b survive and each lost a fanout edge into the
	// removed set (a fed g1; b fed g1; g1, g2 were themselves removed).
	if !reflect.DeepEqual(boundary, []NodeID{a, b}) {
		t.Fatalf("boundary %v, want [%d %d]", boundary, a, b)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepFromCollectPartial checks a sweep that stops at a shared node:
// nodes with surviving fanouts are kept and show up as boundary instead.
func TestSweepFromCollectPartial(t *testing.T) {
	n := New("shared")
	a := n.AddInput("a")
	b := n.AddInput("b")
	shared := n.AddGate(KindAnd, a, b)
	dead := n.AddGate(KindNot, shared)
	keep := n.AddGate(KindNot, shared)
	n.AddOutput("o1", dead)
	n.AddOutput("o2", keep)

	// Rewire o1 onto keep: dead loses its only output binding.
	n.ReplaceNode(dead, keep)
	removed, boundary := n.SweepFromCollect(dead)
	if !reflect.DeepEqual(removed, []NodeID{dead}) {
		t.Fatalf("removed %v, want [%d]", removed, dead)
	}
	// shared survives (keep still reads it) and is the only boundary node.
	if !reflect.DeepEqual(boundary, []NodeID{shared}) {
		t.Fatalf("boundary %v, want [%d]", boundary, shared)
	}
	if !n.IsLive(shared) || !n.IsLive(keep) {
		t.Fatal("surviving nodes were swept")
	}
}

// TestSweepFromCollectNoop: sweeping a live, still-referenced node removes
// nothing and reports empty sets.
func TestSweepFromCollectNoop(t *testing.T) {
	n := New("noop")
	a := n.AddInput("a")
	g := n.AddGate(KindNot, a)
	n.AddOutput("o", g)
	removed, boundary := n.SweepFromCollect(g)
	if len(removed) != 0 || len(boundary) != 0 {
		t.Fatalf("noop sweep removed %v boundary %v", removed, boundary)
	}
}
