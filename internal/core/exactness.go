package core

import (
	"batchals/internal/analyze"
	"batchals/internal/circuit"
)

// Certificate returns the CPM-exactness certificate of the network the CPM
// was built for, computing it lazily on first use and caching it for the
// CPM's lifetime (the CPM is rebuilt whenever the network changes, so the
// cache can never go stale).
//
// A certified node's output cone is reconvergence-free, which makes the
// propagation vectors Prop(id, ·) — and hence DeltaER/DeltaAEM for a
// transformation injected at that node — provably exact on the pattern
// set rather than the paper's reconvergence-limited estimate. See
// analyze.Certificate for the structural argument.
//
// Safe under concurrent first use: the certificate is a pure function of
// the immutable network, so racing fills store interchangeable values
// through the atomic pointer.
func (c *CPM) Certificate() *analyze.Certificate {
	if v := c.cert.Load(); v != nil {
		return v
	}
	v := analyze.ExactnessCertificate(c.net)
	c.cert.Store(v)
	return v
}

// ExactFor reports whether the batch estimate for a change injected at
// node id carries the structural exactness certificate.
func (c *CPM) ExactFor(id circuit.NodeID) bool {
	return c.Certificate().Exact(id)
}
