package obs

// Estimator-drift accounting. The paper's batch estimator evaluates
// Boolean differences at unperturbed side-input values, so its ΔER/ΔAEM
// prediction can be wrong wherever a change reconverges (§4.3); PR 1's
// structural certificate (analyze.Certificate, surfaced as
// Candidate.Exact) proves where it cannot be. A DriftRecorder turns that
// caveat into a measured observable: every predicted-vs-actual pair is
// recorded into one of two histogram series keyed by the certificate, so
// the reconvergence-induced error is directly visible — the "exact"
// series must concentrate at zero (up to metric-measurement coupling),
// all real drift mass sits in the "inexact" series.

// DriftBounds are the signed drift bucket bounds shared by all drift
// histograms: symmetric decades around zero, matching the magnitudes ER
// and per-pattern-normalised AEM drifts take on M=10^3..10^5 pattern sets.
var DriftBounds = []float64{
	-1e-1, -1e-2, -1e-3, -1e-4, -1e-5, 0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
}

// DriftRecorder records signed predicted-vs-actual error deltas into an
// exact and an inexact histogram series of a Registry. A nil recorder is
// inert.
type DriftRecorder struct {
	exact   *Histogram
	inexact *Histogram
}

// NewDriftRecorder creates (or reattaches to) the pair of drift
// histograms named name{cert="exact"} and name{cert="inexact"} in reg.
func NewDriftRecorder(reg *Registry, name string) *DriftRecorder {
	if reg == nil {
		return nil
	}
	return &DriftRecorder{
		exact:   reg.Histogram(name+`{cert="exact"}`, DriftBounds),
		inexact: reg.Histogram(name+`{cert="inexact"}`, DriftBounds),
	}
}

// Record observes the signed drift actual−predicted into the series
// selected by the exactness certificate.
func (d *DriftRecorder) Record(predicted, actual float64, exact bool) {
	if d == nil {
		return
	}
	if exact {
		d.exact.Observe(actual - predicted)
	} else {
		d.inexact.Observe(actual - predicted)
	}
}
