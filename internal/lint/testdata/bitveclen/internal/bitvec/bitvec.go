// Package bitvec stubs the length-checked bit vector; the bitveclen
// analyzer keys on the package name.
package bitvec

// Vec is an M-bit vector over uint64 words.
type Vec struct {
	n int
	w []uint64
}

func (v *Vec) checkSameLen(o *Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
}

// And guards with the helper before the word loop.
func (v *Vec) And(a, b *Vec) {
	v.checkSameLen(a)
	v.checkSameLen(b)
	for i := range v.w {
		v.w[i] = a.w[i] & b.w[i]
	}
}

// Equal guards with an explicit length comparison.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.w {
		if v.w[i] != o.w[i] {
			return false
		}
	}
	return true
}

// Or runs its word loop with no guard at all.
func (v *Vec) Or(o *Vec) { // want "neither calls checkSameLen"
	for i := range v.w {
		v.w[i] |= o.w[i]
	}
}

// Count takes no *Vec operand; nothing to guard.
func (v *Vec) Count() int {
	return v.n
}
