package lint

import "go/ast"

// BitvecLen enforces the bitvec package's core invariant: any Vec method
// that accepts another *Vec operates word-wise on parallel slices, so it
// must establish equal lengths before the first word access — either by
// calling checkSameLen (which panics with a precise message) or by
// explicitly comparing the .n length fields (the Equal style). A missing
// guard turns a caller bug into a silent truncation or an index panic deep
// in a word loop.
var BitvecLen = &Analyzer{
	Name: "bitveclen",
	Doc:  "bitvec.Vec binary operations must check operand lengths",
	Run:  runBitvecLen,
}

func runBitvecLen(p *Pass) {
	if p.PkgName != "bitvec" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !receiverIsVec(fn) || !takesVecParam(fn) {
				continue
			}
			if fn.Name.Name == "checkSameLen" {
				continue // the guard itself
			}
			if hasLengthGuard(fn.Body) {
				continue
			}
			p.Reportf(fn.Name.Pos(),
				"method (%s).%s takes a *Vec but neither calls checkSameLen nor compares .n lengths",
				receiverType(fn), fn.Name.Name)
		}
	}
}

func receiverIsVec(fn *ast.FuncDecl) bool {
	return receiverType(fn) == "*Vec" || receiverType(fn) == "Vec"
}

func receiverType(fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	switch t := fn.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	case *ast.Ident:
		return t.Name
	}
	return ""
}

func takesVecParam(fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		if star, ok := field.Type.(*ast.StarExpr); ok {
			if id, ok := star.X.(*ast.Ident); ok && id.Name == "Vec" {
				return true
			}
		}
	}
	return false
}

// hasLengthGuard reports whether the body contains a checkSameLen call or
// a comparison between two .n selector expressions.
func hasLengthGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch n := node.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "checkSameLen" {
				found = true
			}
		case *ast.BinaryExpr:
			if isLenField(n.X) && isLenField(n.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isLenField(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "n"
}
