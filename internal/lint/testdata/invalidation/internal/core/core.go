// Package core stubs the CPM/Engine cache anatomy at its true import
// path: propagation rows p plus the three lazy caches (anyProp,
// certificate, AEM columns) whose coherence the invalidation analyzer
// enforces.
package core

import "sync/atomic"

type Vec struct{ n int }

type State struct{ epoch int }

type Certificate struct{ ok bool }

type CPM struct {
	p       [][]*Vec
	anyProp []atomic.Pointer[Vec]
	cert    atomic.Pointer[Certificate]
	aemFor  *State
}

// Build writes rows of a locally constructed receiver; a fresh CPM has
// empty caches, so no invalidation is required.
func Build(slots int) *CPM {
	c := &CPM{p: make([][]*Vec, slots), anyProp: make([]atomic.Pointer[Vec], slots)}
	c.p[0] = []*Vec{{n: 1}}
	return c
}

// Refresh recomputes rows and drops every cache — the paired-call shape.
func (c *CPM) Refresh(id int) {
	c.p[id] = nil
	c.anyProp[id].Store(nil)
	c.cert.Store(nil)
	c.aemFor = nil
}

// GoodWrite pairs the row write with a certificate drop.
func (c *CPM) GoodWrite(id int) {
	c.p[id] = nil
	c.cert.Store(nil)
}

// BadWrite mutates rows and leaves every cache stale.
func (c *CPM) BadWrite(id int) {
	c.p[id] = nil // want "without invalidating the lazy caches"
}

// BadGrow extends the row table without touching the caches.
func (c *CPM) BadGrow() {
	c.p = append(c.p, nil) // want "without invalidating the lazy caches"
}

// Acknowledged is an accepted exception.
func (c *CPM) Acknowledged(id int) {
	c.p[id] = nil //als:invalidate-ok caller drops the caches in the same transaction
}

// Engine mirrors the real engine's exported-read, Apply-mutate contract.
type Engine struct {
	Net  *Vec
	Vals *Vec
	St   *State
}

// Apply is the sanctioned mutation path; inside package core the Engine
// rule does not apply.
func (e *Engine) Apply(next *Vec) { e.Net = next }
