package circuit

import (
	"math/rand"
	"testing"
)

// buildSmall constructs: o1 = AND(a,b), o2 = OR(o1, NOT(c)).
func buildSmall() (*Network, NodeID, NodeID, NodeID, NodeID, NodeID) {
	n := New("small")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	g1 := n.AddGate(KindAnd, a, b)
	inv := n.AddGate(KindNot, c)
	g2 := n.AddGate(KindOr, g1, inv)
	n.AddOutput("o1", g1)
	n.AddOutput("o2", g2)
	return n, a, b, c, g1, g2
}

func TestBuildAndValidate(t *testing.T) {
	n, _, _, _, g1, g2 := buildSmall()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 3 || n.NumOutputs() != 2 || n.NumGates() != 3 {
		t.Fatalf("stats wrong: %s", n.Stats())
	}
	if n.Level(g1) != 1 || n.Level(g2) != 2 || n.Depth() != 2 {
		t.Fatalf("levels wrong: %d %d depth %d", n.Level(g1), n.Level(g2), n.Depth())
	}
	if len(n.Fanouts(g1)) != 1 || n.Fanouts(g1)[0] != g2 {
		t.Fatal("fanout list wrong")
	}
}

func TestKindEvalTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		in   []bool
		want bool
	}{
		{KindAnd, []bool{true, true}, true},
		{KindAnd, []bool{true, false}, false},
		{KindNand, []bool{true, true}, false},
		{KindNand, []bool{false, true}, true},
		{KindOr, []bool{false, false}, false},
		{KindOr, []bool{false, true}, true},
		{KindNor, []bool{false, false}, true},
		{KindNor, []bool{true, false}, false},
		{KindXor, []bool{true, true}, false},
		{KindXor, []bool{true, false}, true},
		{KindXor, []bool{true, true, true}, true},
		{KindXnor, []bool{true, false}, false},
		{KindXnor, []bool{true, true}, true},
		{KindNot, []bool{true}, false},
		{KindBuf, []bool{true}, true},
		{KindMux, []bool{false, true, false}, true},
		{KindMux, []bool{true, true, false}, false},
		{KindAnd, []bool{true, true, true, false}, false},
		{KindOr, []bool{false, false, false, true}, true},
	}
	for _, c := range cases {
		if got := c.kind.Eval(c.in); got != c.want {
			t.Errorf("%v%v = %v want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestEvalWordMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	kinds := []Kind{KindBuf, KindNot, KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor, KindMux}
	for _, k := range kinds {
		arity := 2
		switch k {
		case KindBuf, KindNot:
			arity = 1
		case KindMux:
			arity = 3
		}
		for extra := 0; extra < 2; extra++ {
			a := arity
			if k != KindBuf && k != KindNot && k != KindMux {
				a += extra
			}
			words := make([]uint64, a)
			for i := range words {
				words[i] = r.Uint64()
			}
			got := k.EvalWord(words)
			for bit := 0; bit < 64; bit++ {
				in := make([]bool, a)
				for i := range in {
					in[i] = words[i]>>uint(bit)&1 == 1
				}
				want := k.Eval(in)
				if (got>>uint(bit)&1 == 1) != want {
					t.Fatalf("%v arity %d bit %d mismatch", k, a, bit)
				}
			}
		}
	}
}

func TestArityChecks(t *testing.T) {
	n := New("t")
	a := n.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NOT with 2 fanins")
		}
	}()
	n.AddGate(KindNot, a, a)
}

func TestTopoOrderProperty(t *testing.T) {
	n := randomNetwork(t, rand.New(rand.NewSource(11)), 8, 60)
	order := n.TopoOrder()
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != n.NumNodes() {
		t.Fatalf("topo covers %d of %d nodes", len(order), n.NumNodes())
	}
	for _, id := range order {
		for _, f := range n.Fanins(id) {
			if pos[f] >= pos[id] {
				t.Fatalf("fanin %d after node %d in topo order", f, id)
			}
		}
	}
}

// randomNetwork builds a random DAG with the given number of inputs and
// gates; every gate's fanins come from earlier nodes.
func randomNetwork(t testing.TB, r *rand.Rand, nin, ngates int) *Network {
	t.Helper()
	n := New("rand")
	pool := make([]NodeID, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(""))
	}
	kinds := []Kind{KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor, KindNot}
	for i := 0; i < ngates; i++ {
		k := kinds[r.Intn(len(kinds))]
		var id NodeID
		if k == KindNot {
			id = n.AddGate(k, pool[r.Intn(len(pool))])
		} else {
			f1 := pool[r.Intn(len(pool))]
			f2 := pool[r.Intn(len(pool))]
			for f2 == f1 {
				f2 = pool[r.Intn(len(pool))]
			}
			id = n.AddGate(k, f1, f2)
		}
		pool = append(pool, id)
	}
	// Expose all fanout-free nodes as outputs so nothing is trivially dead.
	for _, id := range pool {
		if len(n.Fanouts(id)) == 0 {
			n.AddOutput("", id)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestReplaceFanin(t *testing.T) {
	n, a, b, c, g1, _ := buildSmall()
	_ = b
	n.ReplaceFanin(g1, a, c)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Fanins(g1)[0] != c {
		t.Fatal("fanin not replaced")
	}
	if containsID(n.Fanouts(a), g1) {
		t.Fatal("old fanout edge remains")
	}
	if !containsID(n.Fanouts(c), g1) {
		t.Fatal("new fanout edge missing")
	}
}

func TestReplaceNodeAndSweep(t *testing.T) {
	n, a, b, _, g1, g2 := buildSmall()
	// Substitute g1 by input a everywhere.
	n.ReplaceNode(g1, a)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Outputs()[0].Node != a {
		t.Fatal("output binding not redirected")
	}
	if n.Fanins(g2)[0] != a {
		t.Fatal("gate fanin not redirected")
	}
	removed := n.SweepFrom(g1)
	if removed != 1 {
		t.Fatalf("SweepFrom removed %d want 1", removed)
	}
	if n.IsLive(g1) {
		t.Fatal("g1 still live")
	}
	if !n.IsLive(b) {
		t.Fatal("primary input b must never be swept")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceNodeCycleGuard(t *testing.T) {
	n, _, _, _, g1, g2 := buildSmall()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when replacement would create a cycle")
		}
	}()
	n.ReplaceNode(g1, g2) // g2 is in g1's fanout cone
}

func TestSweepCascade(t *testing.T) {
	n := New("chain")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(KindAnd, a, b)
	g2 := n.AddGate(KindNot, g1)
	g3 := n.AddGate(KindNot, g2)
	n.AddOutput("o", g3)
	// Redirect output to a: entire chain g3->g2->g1 becomes dead.
	n.ReplaceNode(g3, a)
	if got := n.SweepFrom(g3); got != 3 {
		t.Fatalf("swept %d want 3", got)
	}
	if n.NumGates() != 0 {
		t.Fatalf("gates remain: %s", n.Dump())
	}
}

func TestMFFCAgainstActualSweep(t *testing.T) {
	// MFFC(root) must equal the set of nodes removed by redirecting root's
	// fanouts to a fresh input and sweeping.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := randomNetwork(t, r, 5, 40)
		var gates []NodeID
		for _, id := range n.LiveNodes() {
			if n.Kind(id).IsGate() {
				gates = append(gates, id)
			}
		}
		root := gates[r.Intn(len(gates))]
		mffc := n.MFFC(root)

		work := n.Clone()
		spare := work.AddInput("spare")
		work.ReplaceNode(root, spare)
		removed := work.SweepFrom(root)
		if removed != len(mffc) {
			t.Fatalf("trial %d: MFFC size %d but sweep removed %d", trial, len(mffc), removed)
		}
		for _, id := range mffc {
			if work.IsLive(id) {
				t.Fatalf("trial %d: MFFC node %d still live after sweep", trial, id)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	n, a, _, _, g1, _ := buildSmall()
	c := n.Clone()
	c.ReplaceFanin(g1, a, c.AddInput("x"))
	if err := n.Validate(); err != nil {
		t.Fatalf("original corrupted by clone edit: %v", err)
	}
	if n.NumInputs() != 3 || c.NumInputs() != 4 {
		t.Fatal("clone not independent")
	}
	if n.Dump() == c.Dump() {
		t.Fatal("edit did not change clone")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate(KindAnd, a, a)
	g2 := n.AddGate(KindOr, g1, a)
	n.AddOutput("o", g2)
	// Manually create a cycle g1 <- g2.
	n.Node(g1).Fanins[1] = g2
	n.Node(g2).fanouts = append(n.Node(g2).fanouts, g1)
	n.removeFanoutEdge(a, g1)
	n.markDirty()
	if err := n.Validate(); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestFindByName(t *testing.T) {
	n, a, _, _, _, _ := buildSmall()
	if n.FindByName("a") != a {
		t.Fatal("FindByName failed")
	}
	if n.FindByName("zzz") != InvalidNode {
		t.Fatal("FindByName ghost hit")
	}
}

func TestTransitiveCones(t *testing.T) {
	n, a, b, c, g1, g2 := buildSmall()
	foc := n.TransitiveFanoutCone(a)
	if !foc[g1] || !foc[g2] || foc[b] || foc[c] {
		t.Fatal("fanout cone wrong")
	}
	fic := n.TransitiveFaninCone(g2)
	if !fic[a] || !fic[b] || !fic[c] || !fic[g1] {
		t.Fatal("fanin cone wrong")
	}
}

func TestLevelsAfterEdit(t *testing.T) {
	n, a, _, _, g1, g2 := buildSmall()
	if n.Depth() != 2 {
		t.Fatal("precondition")
	}
	n.ReplaceNode(g1, a)
	n.SweepFrom(g1)
	if n.Depth() != 2 {
		t.Fatalf("depth after edit = %d want 2 (OR of a, NOT c)", n.Depth())
	}
	if n.Level(g2) != 2 {
		t.Fatalf("level(g2)=%d", n.Level(g2))
	}
}
