package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"batchals/internal/obs"
)

// Server is the observability HTTP surface of one ALS process. Zero
// dependencies beyond the standard library; embed it into a daemon with
// Start or mount Handler() wherever an http.ServeMux fits.
//
// Endpoints:
//
//	/metrics        Prometheus text: process-wide registry unlabelled,
//	                every named run's registry with run="name" injected
//	/metrics.json   the same data as structured JSON
//	/healthz        liveness: 200 as long as the process serves
//	/readyz         readiness: 503 until SetReady(true)
//	/runs           JSON listing of named runs and their lifecycle state
//	/flight         flight-recorder dump of one run (?run=NAME)
//	/events         live SSE stream of one run's flow events (?run=NAME,
//	                ?limit=N to close after N events)
//	/debug/pprof/   the standard profiling surface
type Server struct {
	Runs *RunRegistry
	// Process, when non-nil, is exposed unlabelled alongside the run
	// registries (defaults to obs.Default() in New).
	Process *obs.Registry
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration

	ready atomic.Bool
	mux   *http.ServeMux
}

// New returns a server over the given run registry (a nil rr gets a fresh
// one), exposing obs.Default() as the process-wide registry.
func New(rr *RunRegistry) *Server {
	if rr == nil {
		rr = NewRunRegistry()
	}
	s := &Server{Runs: rr, Process: obs.Default(), Heartbeat: 15 * time.Second}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler for mounting elsewhere.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the /readyz probe; start serving before the job queue is
// accepting and call SetReady(true) once it is.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Start listens on addr (host:port; ":0" picks an ephemeral port) and
// serves in a background goroutine. It returns the bound address and a
// shutdown function. The caller prints the address — tests and the CI
// smoke script parse it to find an ephemeral port.
func (s *Server) Start(addr string) (net.Addr, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: s.mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Shutdown, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Process != nil {
		_ = s.Process.Snapshot().WritePrometheus(w)
	}
	_ = s.Runs.MergedSnapshot().WritePrometheus(w)
}

// metricsJSON is the /metrics.json document shape, shared with
// cmd/observe's -url reader.
type metricsJSON struct {
	Process obs.Snapshot            `json:"process"`
	Runs    map[string]obs.Snapshot `json:"runs,omitempty"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	doc := metricsJSON{Runs: map[string]obs.Snapshot{}}
	if s.Process != nil {
		doc.Process = s.Process.Snapshot()
	}
	for _, name := range s.Runs.Names() {
		if run, ok := s.Runs.Lookup(name); ok {
			doc.Runs[name] = run.Registry.Snapshot()
		}
	}
	writeJSON(w, doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Runs.Summaries())
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRunParam(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = run.Flight.WriteJSON(w)
}

// handleTimeline exports a run's causal span timeline as Chrome
// trace-event JSON (load the body in Perfetto / chrome://tracing). Safe
// mid-run: the recorder snapshot covers every span published so far.
// 404 when the run has no recorder attached.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRunParam(w, r)
	if !ok {
		return
	}
	rec := run.Timeline()
	if rec == nil {
		http.Error(w, "run "+run.Name+" has no timeline recorder attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = rec.WriteTrace(w)
}

// lookupRunParam resolves the ?run= query parameter; with exactly one run
// registered the parameter may be omitted.
func (s *Server) lookupRunParam(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	name := r.URL.Query().Get("run")
	if name == "" {
		names := s.Runs.Names()
		if len(names) != 1 {
			http.Error(w, "run parameter required (have "+strconv.Itoa(len(names))+" runs)",
				http.StatusBadRequest)
			return nil, false
		}
		name = names[0]
	}
	run, ok := s.Runs.Lookup(name)
	if !ok {
		http.Error(w, "unknown run "+name, http.StatusNotFound)
		return nil, false
	}
	return run, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
