// Package bdd implements a reduced ordered binary decision diagram (ROBDD)
// engine with an ITE-based apply, unique and computed tables, satisfying
// assignment counting and exact signal-probability evaluation.
//
// In this library it serves as the "analytical method" the paper contrasts
// with Monte Carlo estimation (Section 4.1): it computes exact error rates
// of approximate circuits via an XOR miter, independent of sampling, which
// the tests use to cross-check the MC machinery on mid-size circuits.
package bdd

import (
	"fmt"
	"math"

	"batchals/internal/circuit"
)

// Ref references a BDD node within a Manager. The constants Zero and One
// are the terminal nodes of every manager.
type Ref int32

// Terminal nodes, shared by all managers.
const (
	Zero Ref = 0
	One  Ref = 1
)

type node struct {
	level   int32 // variable index; terminals use a sentinel level
	low, hi Ref
}

type triple struct{ f, g, h Ref }

// Manager owns the node store for a fixed number of ordered variables. The
// zero value is unusable; call New.
type Manager struct {
	numVars  int
	nodes    []node
	unique   map[node]Ref
	computed map[triple]Ref
	vars     []Ref // projection function per variable
}

const terminalLevel = int32(1) << 30

// New returns a manager over numVars variables with the identity order.
func New(numVars int) *Manager {
	m := &Manager{
		numVars:  numVars,
		unique:   make(map[node]Ref),
		computed: make(map[triple]Ref),
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // Zero
		node{level: terminalLevel}, // One
	)
	m.vars = make([]Ref, numVars)
	for i := 0; i < numVars; i++ {
		m.vars[i] = m.mk(int32(i), Zero, One)
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.numVars }

// NumNodes returns the number of allocated nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the projection function of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: Var(%d) out of range", i))
	}
	return m.vars[i]
}

// mk returns the canonical node (level, low, hi), applying the reduction
// rule low==hi.
func (m *Manager) mk(level int32, low, hi Ref) Ref {
	if low == hi {
		return low
	}
	key := node{level: level, low: low, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h), the universal ternary operator.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == One:
		return g
	case f == Zero:
		return h
	case g == One && h == Zero:
		return f
	case g == h:
		return g
	}
	key := triple{f, g, h}
	if r, ok := m.computed[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	low := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, low, hi)
	m.computed[key] = r
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.low, n.hi
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, Zero) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, One, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Not returns the complement of f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, Zero, One) }

// Implies returns NOT f OR g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, One) }

// Eval evaluates f under a complete variable assignment.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	for f != Zero && f != One {
		n := m.nodes[f]
		if assignment[n.level] {
			f = n.hi
		} else {
			f = n.low
		}
	}
	return f == One
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for < 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(r Ref) float64 // fraction of assignments below r's level
	count = func(r Ref) float64 {
		if r == Zero {
			return 0
		}
		if r == One {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		v := 0.5*count(n.low) + 0.5*count(n.hi)
		memo[r] = v
		return v
	}
	return count(f) * math.Pow(2, float64(m.numVars))
}

// Probability returns the probability that f is 1 when variable i is 1
// independently with probability prob[i].
func (m *Manager) Probability(f Ref, prob []float64) float64 {
	if len(prob) != m.numVars {
		panic("bdd: probability vector length mismatch")
	}
	memo := make(map[Ref]float64)
	var walk func(r Ref) float64
	walk = func(r Ref) float64 {
		if r == Zero {
			return 0
		}
		if r == One {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		p := prob[n.level]
		v := (1-p)*walk(n.low) + p*walk(n.hi)
		memo[r] = v
		return v
	}
	return walk(f)
}

// FromNetwork builds the BDD of every primary output of the network, using
// input declaration order as variable order. It returns one Ref per output.
// Intended for small and mid-size circuits; node growth is unbounded.
func (m *Manager) FromNetwork(n *circuit.Network) ([]Ref, error) {
	refs, err := m.allNodeRefs(n)
	if err != nil {
		return nil, err
	}
	outs := make([]Ref, n.NumOutputs())
	for o, out := range n.Outputs() {
		outs[o] = refs[out.Node]
	}
	return outs, nil
}

// ExactErrorRate computes the exact error rate between two networks with
// identical input counts and output counts under uniform inputs, by
// building the XOR miter of each output pair and counting the assignments
// where any miter is 1.
func ExactErrorRate(golden, approx *circuit.Network) (float64, error) {
	if golden.NumInputs() != approx.NumInputs() {
		return 0, fmt.Errorf("bdd: input counts differ: %d vs %d",
			golden.NumInputs(), approx.NumInputs())
	}
	if golden.NumOutputs() != approx.NumOutputs() {
		return 0, fmt.Errorf("bdd: output counts differ: %d vs %d",
			golden.NumOutputs(), approx.NumOutputs())
	}
	m := New(golden.NumInputs())
	g, err := m.FromNetwork(golden)
	if err != nil {
		return 0, err
	}
	a, err := m.FromNetwork(approx)
	if err != nil {
		return 0, err
	}
	any := Zero
	for o := range g {
		any = m.Or(any, m.Xor(g[o], a[o]))
	}
	return m.SatCount(any) / math.Pow(2, float64(m.numVars)), nil
}

// ExactSignalProbabilities returns, for every live node of the network,
// its exact probability of being 1 under independent input probabilities
// prob (indexed by input position). The result is indexed by NodeID.
func ExactSignalProbabilities(n *circuit.Network, prob []float64) ([]float64, error) {
	m := New(n.NumInputs())
	full, err := m.allNodeRefs(n)
	if err != nil {
		return nil, err
	}
	outs := make([]float64, n.NumSlots())
	for _, id := range n.LiveNodes() {
		outs[id] = m.Probability(full[id], prob)
	}
	return outs, nil
}

// allNodeRefs builds the BDD of every live node (not just outputs).
func (m *Manager) allNodeRefs(n *circuit.Network) ([]Ref, error) {
	if n.NumInputs() != m.numVars {
		return nil, fmt.Errorf("bdd: network has %d inputs, manager has %d vars",
			n.NumInputs(), m.numVars)
	}
	refs := make([]Ref, n.NumSlots())
	for i, in := range n.Inputs() {
		refs[in] = m.Var(i)
	}
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		fanins := n.Fanins(id)
		var r Ref
		switch kind {
		case circuit.KindConst0:
			r = Zero
		case circuit.KindConst1:
			r = One
		case circuit.KindBuf:
			r = refs[fanins[0]]
		case circuit.KindNot:
			r = m.Not(refs[fanins[0]])
		case circuit.KindAnd, circuit.KindNand:
			r = One
			for _, f := range fanins {
				r = m.And(r, refs[f])
			}
			if kind == circuit.KindNand {
				r = m.Not(r)
			}
		case circuit.KindOr, circuit.KindNor:
			r = Zero
			for _, f := range fanins {
				r = m.Or(r, refs[f])
			}
			if kind == circuit.KindNor {
				r = m.Not(r)
			}
		case circuit.KindXor, circuit.KindXnor:
			r = Zero
			for _, f := range fanins {
				r = m.Xor(r, refs[f])
			}
			if kind == circuit.KindXnor {
				r = m.Not(r)
			}
		case circuit.KindMux:
			r = m.ITE(refs[fanins[0]], refs[fanins[2]], refs[fanins[1]])
		default:
			return nil, fmt.Errorf("bdd: unsupported kind %v", kind)
		}
		refs[id] = r
	}
	return refs, nil
}
