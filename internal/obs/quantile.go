package obs

import "math"

// Log-spaced histogram buckets and quantile estimation for the service
// observability layer. The flow-side histograms (drift, dirty fraction)
// use hand-picked linear bounds; latency distributions span five-plus
// orders of magnitude, so the service layer uses HDR-style log-spaced
// bounds instead: a fixed allocation of buckets whose width grows
// geometrically, giving a bounded *relative* quantile error everywhere in
// the range instead of a bounded absolute one near a single scale.

// ExpBuckets returns decades*perDecade+1 strictly ascending upper bounds
// starting at lo and growing by a factor of 10^(1/perDecade) per bucket,
// spanning the given number of decades. Suitable for Registry.Histogram.
func ExpBuckets(lo float64, decades, perDecade int) []float64 {
	if lo <= 0 || decades <= 0 || perDecade <= 0 {
		panic("obs: ExpBuckets needs positive lo, decades and perDecade")
	}
	bounds := make([]float64, decades*perDecade+1)
	for i := range bounds {
		bounds[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	// Float rounding can flatten neighbours at extreme parameter choices;
	// nudge them apart so Registry.Histogram's ascending check holds.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			bounds[i] = math.Nextafter(bounds[i-1], math.Inf(1))
		}
	}
	return bounds
}

// LatencyBounds is the shared bucket layout for nanosecond latency
// histograms: 100µs to ~17min across 12 buckets per decade, a 1.21x
// bucket ratio bounding the relative quantile error at ~10%.
var LatencyBounds = ExpBuckets(1e5, 7, 12)

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution from the bucket counts, interpolating linearly inside the
// bucket holding the target rank and clamping to the observed [Min, Max].
// The estimate's error is bounded by the width of that bucket, so
// log-spaced bounds (ExpBuckets) give a bounded relative error. Returns 0
// for an empty histogram (never NaN, so snapshots stay JSON-safe).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if cum+c < target {
			cum += c
			continue
		}
		lower := h.Min
		if i > 0 {
			lower = h.Bounds[i-1]
		}
		upper := h.Max
		if i < len(h.Bounds) && h.Bounds[i] < upper {
			upper = h.Bounds[i]
		}
		if lower < h.Min {
			lower = h.Min
		}
		if upper < lower {
			upper = lower
		}
		frac := float64(target-cum) / float64(c)
		v := lower + frac*(upper-lower)
		if v < h.Min {
			v = h.Min
		}
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}

// summaryQuantiles are the quantiles every histogram snapshot carries
// (JSON fields and Prometheus {quantile="..."} series).
var summaryQuantiles = [...]struct {
	q     float64
	label string
}{
	{0.50, "0.5"},
	{0.95, "0.95"},
	{0.99, "0.99"},
}

// fillQuantiles populates the snapshot's P50/P95/P99 convenience fields
// from the bucket counts.
func (h *HistogramSnapshot) fillQuantiles() {
	if h.Count <= 0 {
		return
	}
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}
