package obs

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Phase identifies one of the five phases of an iterative ALS flow, per
// the paper's flow decomposition: pattern generation, Monte Carlo
// simulation, CPM construction, batch candidate estimation, and
// verification/application of the chosen transformation.
type Phase uint8

// The five flow phases.
const (
	PhasePatternGen Phase = iota
	PhaseSimulate
	PhaseCPMBuild
	PhaseEstimate
	PhaseVerifyApply
	NumPhases // sentinel, not a phase
)

var phaseNames = [NumPhases]string{
	"pattern_gen",
	"simulate",
	"cpm_build",
	"estimate",
	"verify_apply",
}

// String returns the snake_case phase name used in metrics and traces.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// MarshalJSON renders the phase as its snake_case name, so flight-recorder
// dumps and stream events are self-describing.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses a phase name (the String form) or a bare index.
func (p *Phase) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i, name := range phaseNames {
		if name == s {
			*p = Phase(i)
			return nil
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || Phase(n) >= NumPhases {
		return fmt.Errorf("obs: unknown phase %q", s)
	}
	*p = Phase(n)
	return nil
}

// MemDelta is the allocation activity across a span, from
// runtime.MemStats deltas. Bytes and Mallocs are cumulative (they only
// grow), so deltas are exact regardless of garbage collection.
type MemDelta struct {
	Bytes   int64 `json:"bytes"`   // TotalAlloc delta
	Mallocs int64 `json:"mallocs"` // Mallocs delta
}

// PhaseStat aggregates all spans of one phase.
type PhaseStat struct {
	Time  time.Duration `json:"ns"`
	Count int64         `json:"count"`
	Mem   MemDelta      `json:"mem,omitempty"`
}

// PhaseReport is the frozen per-phase aggregate of a Profile, attached to
// a flow Result so phase accounting survives the run without keeping the
// Profile alive.
type PhaseReport struct {
	Stats [NumPhases]PhaseStat
}

// Total returns the summed wall time across all phases.
func (r PhaseReport) Total() time.Duration {
	var t time.Duration
	for _, s := range r.Stats {
		t += s.Time
	}
	return t
}

// Profile accumulates per-phase wall time, span counts and (optionally)
// allocation deltas. It is single-goroutine, like the flow loop that
// drives it. The zero Profile is ready to use; a nil *Profile is inert
// (Begin/End become no-ops), so callers can thread one pointer through
// without nil checks at every site.
type Profile struct {
	// TrackMem enables runtime.MemStats deltas per span. ReadMemStats
	// stops the world briefly, so this is off unless the run is being
	// observed.
	TrackMem bool
	// Tracer, when non-nil, receives an OnPhase event per completed span.
	Tracer Tracer
	// Iter labels spans with the current flow iteration.
	Iter int

	stats [NumPhases]PhaseStat
}

// Span is an open phase measurement; close it with Profile.End. The zero
// Span (from a nil Profile) is inert.
type Span struct {
	phase   Phase
	start   time.Time
	bytes   uint64
	mallocs uint64
}

// Begin opens a span for phase p.
func (pr *Profile) Begin(p Phase) Span {
	if pr == nil {
		return Span{}
	}
	s := Span{phase: p, start: time.Now()}
	if pr.TrackMem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.bytes = ms.TotalAlloc
		s.mallocs = ms.Mallocs
	}
	return s
}

// End closes a span, folding it into the aggregate and emitting an
// OnPhase event when a Tracer is attached.
func (pr *Profile) End(s Span) {
	if pr == nil || s.start.IsZero() {
		return
	}
	d := time.Since(s.start)
	st := &pr.stats[s.phase]
	st.Time += d
	st.Count++
	var mem MemDelta
	if pr.TrackMem {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mem = MemDelta{
			Bytes:   int64(ms.TotalAlloc - s.bytes),
			Mallocs: int64(ms.Mallocs - s.mallocs),
		}
		st.Mem.Bytes += mem.Bytes
		st.Mem.Mallocs += mem.Mallocs
	}
	if pr.Tracer != nil {
		pr.Tracer.OnPhase(PhaseInfo{Phase: s.phase, Iter: pr.Iter, Duration: d, Mem: mem})
	}
}

// Report returns the per-phase aggregates accumulated so far.
func (pr *Profile) Report() PhaseReport {
	if pr == nil {
		return PhaseReport{}
	}
	return PhaseReport{Stats: pr.stats}
}

// Export writes the aggregates into reg as labelled counters
// (prefix_phase_ns{phase="..."} etc.), so a metrics snapshot carries the
// phase breakdown alongside the substrate counters.
func (pr *Profile) Export(reg *Registry, prefix string) {
	if pr == nil || reg == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		st := pr.stats[p]
		reg.Counter(prefix + `_phase_ns{phase="` + p.String() + `"}`).Add(int64(st.Time))
		reg.Counter(prefix + `_phase_spans{phase="` + p.String() + `"}`).Add(st.Count)
		if pr.TrackMem {
			reg.Counter(prefix + `_phase_alloc_bytes{phase="` + p.String() + `"}`).Add(st.Mem.Bytes)
			reg.Counter(prefix + `_phase_mallocs{phase="` + p.String() + `"}`).Add(st.Mem.Mallocs)
		}
	}
}
