#!/usr/bin/env bash
# Load-test smoke for the alsd service observatory: boot the daemon on an
# ephemeral port with a deliberately tiny queue and JSONL access logging,
# drive it with a closed-loop alsload burst, then assert the whole
# observability story — non-zero shed counter, latency histograms with
# quantile summaries on /metrics, parseable access logs, per-job lifecycle
# traces at /jobs/{name}, a service lane in the timeline export, a
# benchdiff-gatable artifact — and a clean SIGTERM drain. CI runs this
# after the unit suites; locally: ./scripts/smoke_load.sh
set -euo pipefail

DURATION="${DURATION:-30s}"      # burst length (alsload -duration)
SUBMITTERS="${SUBMITTERS:-6}"    # closed-loop submitters (alsload -n)
QUEUE_MAX="${QUEUE_MAX:-2}"      # small bound so the burst must shed
CIRCUIT="${CIRCUIT:-mul4}"
PATTERNS="${PATTERNS:-512}"
ARTIFACT="${ARTIFACT:-/tmp/load_now.json}"
LOG="$(mktemp)"
ACCESS_LOG="$(mktemp)"
trap 'kill "$ALSD_PID" 2>/dev/null || true; wait "$ALSD_PID" 2>/dev/null || true; rm -f "$LOG" "$ACCESS_LOG"' EXIT

go build -o /tmp/alsd ./cmd/alsd
go build -o /tmp/alsload ./cmd/alsload
/tmp/alsd -addr 127.0.0.1:0 -queue-max "$QUEUE_MAX" -access-log "$ACCESS_LOG" >"$LOG" 2>&1 &
ALSD_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^alsd: listening on //p' "$LOG" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$ALSD_PID" 2>/dev/null || { echo "alsd exited early:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "alsd never reported its address:"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "smoke_load: alsd at $BASE (queue-max $QUEUE_MAX)"

/tmp/alsload -addr "$ADDR" -n "$SUBMITTERS" -duration "$DURATION" \
    -circuit "$CIRCUIT" -m "$PATTERNS" -o "$ARTIFACT"

# The artifact must parse and carry the latency + throughput benchmarks;
# benchdiff gates it against the committed baseline (timing deltas are
# advisory across differing hardware, but a benchmark that disappears
# fails unconditionally).
for NAME in Load/e2e Load/queue_wait Load/run_wall Load/throughput; do
    grep -q "\"$NAME\"" "$ARTIFACT" \
        || { echo "artifact is missing benchmark $NAME:"; cat "$ARTIFACT"; exit 1; }
done
go run ./cmd/benchdiff BENCH_pr9.json "$ARTIFACT"

# The burst ran $SUBMITTERS closed loops against a queue of $QUEUE_MAX, so
# the daemon must have shed, and every latency histogram must have samples
# and quantile summary lines on the Prometheus surface. (Scrapes land in
# files: `echo big | grep -q` dies of SIGPIPE under pipefail.)
METRICS="$(mktemp)"
curl -fsS "$BASE/metrics" >"$METRICS"
SHED="$(sed -n 's/^serve_jobs_shed_total //p' "$METRICS")"
[ -n "$SHED" ] && [ "$SHED" -gt 0 ] \
    || { echo "expected non-zero serve_jobs_shed_total, got '$SHED'"; exit 1; }
for WANT in \
    'serve_job_e2e_ns_count' \
    'serve_job_queue_wait_ns_bucket' \
    'serve_job_run_ns_sum' \
    'serve_job_e2e_ns{quantile="0.99"}' \
    'serve_job_queue_wait_ns{quantile="0.5"}' \
    'serve_queue_depth' \
    'serve_jobs_inflight' \
    'serve_access_log_entries_total'; do
    grep -qF "$WANT" "$METRICS" \
        || { echo "/metrics missing $WANT"; grep '^serve_' "$METRICS" | head -30; exit 1; }
done
rm -f "$METRICS"
echo "smoke_load: shed $SHED submissions, histograms + quantiles present"

# One traced job end to end: its /jobs/{name} lifecycle document must walk
# received→queued→admitted→running→done, and the timeline export must show
# the service lane next to the flow lanes.
curl -fsS -X POST "$BASE/jobs" \
    -d "{\"name\":\"tl\",\"circuit\":\"$CIRCUIT\",\"threshold\":0.05,\"m\":$PATTERNS,\"workers\":2,\"timeline\":true}" >/dev/null
for _ in $(seq 1 300); do
    STATE="$(curl -fsS "$BASE/jobs/tl" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)"
    [ "$STATE" = done ] && break
    sleep 0.2
done
[ "$STATE" = done ] || { echo "traced job never finished (state '$STATE')"; cat "$LOG"; exit 1; }
TRACEDOC="$(mktemp)"
curl -fsS "$BASE/jobs/tl" >"$TRACEDOC"
for WANT in '"queued"' '"admitted"' '"running"' '"queue_wait_ns"' '"e2e_ns"'; do
    grep -qF "$WANT" "$TRACEDOC" \
        || { echo "/jobs/tl missing $WANT:"; cat "$TRACEDOC"; exit 1; }
done
TIMELINE="$(mktemp)"
curl -fsS "$BASE/timeline?run=tl" >"$TIMELINE"
for WANT in '"service"' 'service.queued' 'service.running' 'phase:'; do
    grep -qF "$WANT" "$TIMELINE" \
        || { echo "/timeline?run=tl missing $WANT"; exit 1; }
done
rm -f "$TRACEDOC" "$TIMELINE"
echo "smoke_load: lifecycle trace + service timeline lane verified"

# Clean drain: SIGTERM finishes the running job, cancels queued ones and
# flushes the access log, which must be non-empty parseable JSONL covering
# the job API.
kill -TERM "$ALSD_PID"
wait "$ALSD_PID" 2>/dev/null || true
grep -q '^alsd: shutting down' "$LOG" || { echo "no clean shutdown message:"; cat "$LOG"; exit 1; }
LINES="$(wc -l <"$ACCESS_LOG")"
[ "$LINES" -gt 0 ] || { echo "access log is empty"; exit 1; }
head -1 "$ACCESS_LOG" | grep -q '"method":' || { echo "access log is not JSONL:"; head -3 "$ACCESS_LOG"; exit 1; }
grep -q '"path":"/jobs"' "$ACCESS_LOG" || { echo "access log never saw POST /jobs"; exit 1; }
echo "smoke_load: $LINES access-log lines flushed"
echo "smoke_load: OK"
