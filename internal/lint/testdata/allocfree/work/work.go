package work

type point struct{ x, y int }

// Bad is annotated allocation-free but allocates in five different ways.
//
//als:allocfree
func Bad(xs []int) []int {
	buf := make([]int, 4) // want "make"
	_ = buf
	xs = append(xs, 1)            // want "append"
	cb := func() int { return 0 } // want "function literal"
	_ = cb()
	pt := &point{x: 1} // want "composite literal"
	_ = pt.y
	lit := []int{1, 2}        // want "slice/map literal"
	return append(lit, xs...) // want "append"
}

// Acknowledged hits a flagged construct but acknowledges it on the line.
//
//als:allocfree
func Acknowledged(xs []int) []int {
	return append(xs, 1) //als:alloc-ok amortised grow absorbed by the pin's baseline
}

// StackOnly stays clean: value struct literals and arrays do not allocate.
//
//als:allocfree
func StackOnly() int {
	pt := point{x: 1, y: 2}
	var arr [4]int
	arr[0] = pt.x
	return arr[0] + pt.y
}

// Unannotated functions may allocate freely.
func Unannotated() []int {
	return make([]int, 3)
}
