package sasimi

import (
	"math"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sim"
)

func runOn(t *testing.T, netName string, cfg Config) *Result {
	t.Helper()
	// Structural invariant checking is on by default in tests: any
	// substitution that closes a combinational loop fails the run with a
	// named cycle instead of panicking downstream.
	cfg.CheckInvariants = true
	n, err := bench.ByName(netName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZeroThresholdKeepsExactCircuit(t *testing.T) {
	n := bench.RCA(8)
	res, err := Run(n, Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 0, NumPatterns: 2000, Seed: 1}, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	// Any accepted substitution must keep measured error at 0; the final
	// circuit must be exactly equivalent on the pattern set.
	if res.FinalError != 0 {
		t.Fatalf("final error %v under zero threshold", res.FinalError)
	}
	if res.FinalArea > res.OriginalArea {
		t.Fatalf("area grew: %v -> %v", res.OriginalArea, res.FinalArea)
	}
}

func TestFlowRespectsERThreshold(t *testing.T) {
	for _, kind := range []EstimatorKind{EstimatorBatch, EstimatorFull, EstimatorLocal} {
		res := runOn(t, "mul4", Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.05,
				NumPatterns: 2000,
				Seed:        7,
			},
			Estimator: kind,
			KeepTrace: true,
		})
		if res.FinalError > 0.05+1e-9 {
			t.Fatalf("%v: measured error %v exceeds threshold", kind, res.FinalError)
		}
		// Exact check against the golden circuit over the full input space.
		golden := bench.MUL(4)
		exact := emetric.MeasureExact(golden, res.Approx)
		if exact.ErrorRate > 0.12 {
			t.Fatalf("%v: exact ER %v wildly above threshold (MC gap too large)", kind, exact.ErrorRate)
		}
		if err := res.Approx.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestFlowReducesArea(t *testing.T) {
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        3,
		},
		Estimator: EstimatorBatch,
	})
	if res.NumIterations == 0 {
		t.Fatal("flow accepted no substitution at a 5% budget")
	}
	if res.FinalArea >= res.OriginalArea {
		t.Fatalf("no area reduction: %v -> %v", res.OriginalArea, res.FinalArea)
	}
}

func TestBatchAtLeastAsGoodAsLocal(t *testing.T) {
	// The paper's headline claim: the flow with batch estimation reaches
	// equal or better area than the local-estimation flow.
	for _, name := range []string{"cmp8", "mul4"} {
		batch := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.03,
				NumPatterns: 3000,
				Seed:        5,
			},
			Estimator: EstimatorBatch,
		})
		local := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.03,
				NumPatterns: 3000,
				Seed:        5,
			},
			Estimator: EstimatorLocal,
		})
		if batch.NumIterations == 0 {
			t.Fatalf("%s: batch flow made no progress (vacuous comparison)", name)
		}
		if batch.FinalArea > local.FinalArea+1e-9 {
			t.Fatalf("%s: batch area %v worse than local %v", name, batch.FinalArea, local.FinalArea)
		}
	}
}

func TestBatchMatchesFullQuality(t *testing.T) {
	// Table 2 property: same final quality, batch much cheaper. On small
	// circuits the areas should match closely (estimation differences can
	// change tie-breaks, so allow a small slack).
	for _, name := range []string{"cmp8"} {
		batch := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.01,
				NumPatterns: 2000,
				Seed:        11,
			},
			Estimator: EstimatorBatch,
		})
		full := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.01,
				NumPatterns: 2000,
				Seed:        11,
			},
			Estimator: EstimatorFull,
		})
		ratioB := batch.AreaRatio()
		ratioF := full.AreaRatio()
		if math.Abs(ratioB-ratioF) > 0.08 {
			t.Fatalf("%s: batch ratio %.3f vs full ratio %.3f", name, ratioB, ratioF)
		}
	}
}

func TestAEMFlow(t *testing.T) {
	golden := bench.MUL(4)
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:      core.MetricAEM,
			Threshold:   2.0,
			NumPatterns: 4000,
			Seed:        9,
		},
		Estimator:       EstimatorBatch,
		KeepTrace:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 2.0+1e-9 {
		t.Fatalf("AEM %v exceeds threshold", res.FinalError)
	}
	if res.NumIterations == 0 {
		t.Fatal("AEM flow made no progress")
	}
	// Exact AEM must also be near the budget (8 inputs: enumerable).
	exact := emetric.MeasureExact(golden, res.Approx)
	if exact.AvgErrMag > 4.0 {
		t.Fatalf("exact AEM %v far beyond threshold 2.0", exact.AvgErrMag)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.02,
			NumPatterns: 1500,
			Seed:        21,
		},
		Estimator: EstimatorBatch,
	})
	b := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.02,
			NumPatterns: 1500,
			Seed:        21,
		},
		Estimator: EstimatorBatch,
	})
	if a.FinalArea != b.FinalArea || a.NumIterations != b.NumIterations {
		t.Fatalf("same seed, different outcome: %v/%v vs %v/%v",
			a.FinalArea, a.NumIterations, b.FinalArea, b.NumIterations)
	}
	if a.Approx.Dump() != b.Approx.Dump() {
		t.Fatal("same seed produced structurally different circuits")
	}
}

func TestDelayNeverIncreases(t *testing.T) {
	lib := cell.Default()
	for _, name := range []string{"rca8", "mul4", "cmp8"} {
		golden, _ := bench.ByName(name)
		res, err := Run(golden, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.05,
				NumPatterns: 2000,
				Seed:        13,
				Library:     lib,
			},
			Estimator:       EstimatorBatch,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if lib.NetworkDelay(res.Approx) > lib.NetworkDelay(golden)+1e-9 {
			t.Fatalf("%s: delay increased %v -> %v", name,
				lib.NetworkDelay(golden), lib.NetworkDelay(res.Approx))
		}
	}
}

func TestTraceMonotonicity(t *testing.T) {
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        17,
		},
		Estimator: EstimatorBatch,
		KeepTrace: true,
	})
	if len(res.Iterations) != res.NumIterations {
		t.Fatalf("trace length %d != iterations %d", len(res.Iterations), res.NumIterations)
	}
	prevArea := res.OriginalArea
	for _, rec := range res.Iterations {
		if rec.Area >= prevArea {
			t.Fatalf("iteration %d: area %v did not decrease from %v", rec.Iter, rec.Area, prevArea)
		}
		// The realised area drop must equal the candidate's predicted gain
		// (this pins the MFFC-with-pinned-substitute computation).
		if got := prevArea - rec.Area; math.Abs(got-rec.EstGain) > 1e-9 {
			t.Fatalf("iteration %d: realised gain %v != predicted %v", rec.Iter, got, rec.EstGain)
		}
		prevArea = rec.Area
		if rec.ActualErr > 0.05+1e-9 {
			t.Fatalf("iteration %d: actual error %v above threshold", rec.Iter, rec.ActualErr)
		}
		if rec.Target == "" || rec.Sub == "" {
			t.Fatalf("iteration %d: missing names", rec.Iter)
		}
	}
}

func TestMaxIterations(t *testing.T) {
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:        core.MetricER,
			Threshold:     0.05,
			NumPatterns:   1500,
			Seed:          19,
			MaxIterations: 2,
		},
		Estimator: EstimatorBatch,
	})
	if res.NumIterations > 2 {
		t.Fatalf("iterations %d exceed cap", res.NumIterations)
	}
}

func TestEstimateAll(t *testing.T) {
	golden := bench.RCA(8)
	cands, err := EstimateAll(golden, golden.Clone(), Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			NumPatterns: 1500,
			Seed:        23,
			Threshold:   1,
		},
		Estimator: EstimatorBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates found on RCA8")
	}
	for _, c := range cands {
		if c.DiffProb < 0 || c.DiffProb > 1 {
			t.Fatalf("bad diff prob %v", c.DiffProb)
		}
		if c.AreaGain <= 0 {
			t.Fatalf("non-positive gain candidate survived: %+v", c)
		}
		if c.Delta < -1 || c.Delta > 1 {
			t.Fatalf("ΔER out of range: %v", c.Delta)
		}
	}
}

func TestEstimateAllBatchVsFullAgree(t *testing.T) {
	// With an identical approximate circuit (no accumulated error) and a
	// small network, batch estimates should track full simulation well.
	golden := bench.RCA(6)
	base := Config{Budget: flow.Budget{Metric: core.MetricER, NumPatterns: 2000, Seed: 29, Threshold: 1}}
	cfgB := base
	cfgB.Estimator = EstimatorBatch
	cfgF := base
	cfgF.Estimator = EstimatorFull
	cb, err := EstimateAll(golden, golden.Clone(), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := EstimateAll(golden, golden.Clone(), cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if len(cb) != len(cf) {
		t.Fatalf("candidate counts differ: %d vs %d", len(cb), len(cf))
	}
	var sumAbs float64
	for i := range cb {
		if cb[i].Target != cf[i].Target || cb[i].Sub != cf[i].Sub || cb[i].Inverted != cf[i].Inverted {
			t.Fatal("candidate enumeration order differs")
		}
		sumAbs += math.Abs(cb[i].Delta - cf[i].Delta)
	}
	if avg := sumAbs / float64(len(cb)); avg > 0.01 {
		t.Fatalf("mean |batch-full| ΔER = %v too large", avg)
	}
}

func TestInvalidInputs(t *testing.T) {
	n := bench.RCA(4)
	if _, err := Run(n, Config{Budget: flow.Budget{Threshold: -1}}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	wide := circuit.New("wide")
	in := wide.AddInput("a")
	g := wide.AddGate(circuit.KindNot, in)
	for i := 0; i < 70; i++ {
		wide.AddOutput("", g)
	}
	if _, err := Run(wide, Config{Budget: flow.Budget{Metric: core.MetricAEM, Threshold: 1}}); err == nil {
		t.Fatal("AEM flow with 70 outputs accepted")
	}
}

func TestCustomPatterns(t *testing.T) {
	golden := bench.RCA(6)
	p := sim.BiasedPatterns(make([]float64, 12), 500, 3) // all-zero inputs
	for k := 0; k < 12; k++ {
		if p.InputRow(k).Any() {
			t.Fatal("expected all-zero patterns")
		}
	}
	res, err := Run(golden, Config{
		Budget: flow.Budget{
			Metric:    core.MetricER,
			Threshold: 0,
		},
		Patterns:        p,
		Estimator:       EstimatorBatch,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under a constant-zero distribution nearly everything is
	// substitutable by constants at zero observed error.
	if res.FinalArea >= res.OriginalArea/2 {
		t.Fatalf("expected massive reduction under degenerate distribution, got %v -> %v",
			res.OriginalArea, res.FinalArea)
	}
}

func TestEstimatorKindString(t *testing.T) {
	if EstimatorBatch.String() != "batch" || EstimatorFull.String() != "full" ||
		EstimatorLocal.String() != "local" || EstimatorKind(99).String() != "unknown" {
		t.Fatal("estimator names wrong")
	}
}

func TestFlowTerminatesAndGainsExactOnSynthetic(t *testing.T) {
	// Regression: substitutions whose substitute lies inside the target's
	// MFFC used to over-report their gain, letting the flow accept
	// zero-progress swaps forever on reconvergent synthetic circuits.
	res := runOn(t, "c880", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.01,
			NumPatterns: 600,
			Seed:        1,
		},
		Estimator: EstimatorBatch,
		KeepTrace: true,
	})
	prev := res.OriginalArea
	for _, rec := range res.Iterations {
		got := prev - rec.Area
		if math.Abs(got-rec.EstGain) > 1e-9 {
			t.Fatalf("iteration %d: realised gain %v != predicted %v", rec.Iter, got, rec.EstGain)
		}
		if rec.EstGain <= 0 {
			t.Fatalf("iteration %d: non-positive gain accepted", rec.Iter)
		}
		prev = rec.Area
	}
	if res.NumIterations == 0 {
		t.Fatal("no progress on c880")
	}
}

func TestVerifyTopKExactChosenDelta(t *testing.T) {
	// With top-K verification the chosen candidate's Delta is computed by
	// exact cone resimulation on the flow's own pattern set, so the
	// measured error after applying must equal the running error plus the
	// recorded EstDelta, every iteration.
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.04,
			NumPatterns: 2000,
			Seed:        31,
		},
		Estimator:  EstimatorBatch,
		VerifyTopK: 16,
		KeepTrace:  true,
	})
	if res.NumIterations == 0 {
		t.Fatal("no progress")
	}
	prevErr := 0.0
	for _, rec := range res.Iterations {
		if math.Abs(rec.ActualErr-(prevErr+rec.EstDelta)) > 1e-9 {
			t.Fatalf("iteration %d: measured %v != prev %v + exact delta %v",
				rec.Iter, rec.ActualErr, prevErr, rec.EstDelta)
		}
		prevErr = rec.ActualErr
	}
}

func TestVerifyTopKNeverWorseBudget(t *testing.T) {
	for _, name := range []string{"mul4", "cmp8"} {
		plain := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.02,
				NumPatterns: 2000,
				Seed:        33,
			},
			Estimator: EstimatorBatch,
		})
		verified := runOn(t, name, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.02,
				NumPatterns: 2000,
				Seed:        33,
			},
			Estimator:  EstimatorBatch,
			VerifyTopK: 8,
		})
		if verified.FinalError > 0.02+1e-9 || plain.FinalError > 0.02+1e-9 {
			t.Fatalf("%s: budget violated", name)
		}
		// Verification guards against reconvergence surprises; it should
		// not be dramatically worse than the plain batch flow.
		if verified.AreaRatio() > plain.AreaRatio()+0.05 {
			t.Fatalf("%s: verified ratio %.3f much worse than plain %.3f",
				name, verified.AreaRatio(), plain.AreaRatio())
		}
	}
}

func TestVerifyTopKAEM(t *testing.T) {
	res := runOn(t, "mul4", Config{
		Budget: flow.Budget{
			Metric:      core.MetricAEM,
			Threshold:   2.0,
			NumPatterns: 2000,
			Seed:        35,
		},
		Estimator:  EstimatorBatch,
		VerifyTopK: 8,
		KeepTrace:  true,
	})
	if res.FinalError > 2.0+1e-9 {
		t.Fatalf("AEM %v over budget", res.FinalError)
	}
	prevErr := 0.0
	for _, rec := range res.Iterations {
		if math.Abs(rec.ActualErr-(prevErr+rec.EstDelta)) > 1e-9 {
			t.Fatalf("iteration %d: AEM mismatch", rec.Iter)
		}
		prevErr = rec.ActualErr
	}
}
