// Package core implements the paper's primary contribution: batch
// statistical error estimation for approximate logic synthesis via a single
// Monte Carlo run plus a change propagation matrix (CPM).
//
// The CPM entry P[i,n,o] is 1 iff a value flip at node n under input
// pattern i propagates to primary output o. It is built from per-edge
// Boolean differences D[i,n,nf] = (∂nf/∂n)(pattern i) by the reverse
// topological recursion of the paper's Eq. (2):
//
//	P[i,n,o] = OR over fanouts nf of n of ( P[i,nf,o] AND D[i,n,nf] )
//
// with P[i,d,o] = 1 whenever node d drives primary output o. Everything is
// stored as M-bit vectors, so the recursion and the downstream ΔER / ΔAEM
// queries run 64 patterns per machine word.
//
// Like the paper, the construction evaluates each Boolean difference at the
// *unperturbed* simulated values, so reconvergent fanout can make an entry
// wrong; on fanout-free (tree) regions it is exact. See the package tests
// for both properties.
package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"batchals/internal/analyze"
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/obs"
	"batchals/internal/sim"
)

// Always-on substrate counters on the default metrics registry; see the
// matching block in internal/sim. Pre-resolved so the per-event cost is a
// single atomic add.
var (
	statCPMBuilds  = obs.Default().Counter("cpm_builds_total")
	statCPMBuildNS = obs.Default().Counter("cpm_build_ns_total")
	statDeltaER    = obs.Default().Counter("cpm_delta_er_queries_total")
	statDeltaAEM   = obs.Default().Counter("cpm_delta_aem_queries_total")
	statExactDelta = obs.Default().Counter("exact_delta_queries_total")
)

// CPM is the change propagation matrix for one network, one pattern set and
// one simulation of that network.
type CPM struct {
	net  *circuit.Network
	vals *sim.Values
	m    int // number of patterns
	o    int // number of outputs

	// p[node][o] is the M-bit propagation vector of node -> output o.
	// nil rows correspond to dead node slots.
	p [][]*bitvec.Vec

	// anyProp[node] caches the OR over outputs of p[node][...]. Stored
	// through atomic pointers so concurrent queries may fault the cache in
	// lazily: the computed vector is a pure function of the (immutable)
	// p rows, so racing fills store interchangeable values.
	anyProp []atomic.Pointer[bitvec.Vec]

	// Per-pattern golden/approximate output words, cached for the error
	// state currently being estimated against (see aemColumns).
	aemFor *emetric.State
	aemU   []uint64
	aemV   []uint64

	// Scratch buffers of the sequential delta queries (DeltaERCounts,
	// DeltaAEM), reused across calls to keep the scoring loop
	// allocation-free. Like aemColumns they make the sequential query
	// methods single-goroutine only; the concurrent path uses the
	// *Partial kernels with per-worker state instead.
	erInc, erDec, erTmp *bitvec.Vec
	aemReached          []aemReach

	// restricted marks a CPM built by BuildForOutputs: its output axis is
	// a subset, so the whole-circuit error queries are unavailable.
	restricted bool

	// cert caches the lazily-built exactness certificate (see Certificate);
	// atomic for the same reason as anyProp: the certificate depends only
	// on the immutable network structure.
	cert atomic.Pointer[analyze.Certificate]

	buildTime time.Duration
}

// Build constructs the CPM from an already-simulated value table (the
// single MC run). Cost Θ(M·(N+E)·O / 64) word operations, as analysed in
// Section 4.4 of the paper.
func Build(n *circuit.Network, vals *sim.Values) *CPM {
	start := time.Now()
	m := vals.M
	numOut := n.NumOutputs()
	c := &CPM{
		net:     n,
		vals:    vals,
		m:       m,
		o:       numOut,
		p:       make([][]*bitvec.Vec, n.NumSlots()),
		anyProp: make([]atomic.Pointer[bitvec.Vec], n.NumSlots()),
	}
	order := n.TopoOrder()

	// Allocate propagation rows for live nodes out of two slabs — one
	// arena slab for the vectors, one flat slice for the per-node pointer
	// rows — instead of a make per node and a make per (node, output).
	allocRows(c, order)

	// Base case: a node observed directly at an output propagates there.
	for o, out := range n.Outputs() {
		c.p[out.Node][o].Fill()
	}

	// Reverse topological pass applying Eq. (2). For each node n and each
	// fanout nf we need D[n->nf] once; compute it word-parallel and fold it
	// into every output plane.
	d := bitvec.New(m)
	tmp := bitvec.New(m)
	for idx := len(order) - 1; idx >= 0; idx-- {
		id := order[idx]
		for _, nf := range uniqueFanouts(n, id) {
			boolDiff(n, vals, id, nf, d)
			if !d.Any() {
				continue
			}
			prow := c.p[id]
			frow := c.p[nf]
			for o := 0; o < numOut; o++ {
				if !frow[o].Any() {
					continue
				}
				tmp.And(frow[o], d)
				prow[o].Or(prow[o], tmp)
			}
		}
	}
	c.buildTime = time.Since(start)
	statCPMBuilds.Inc()
	statCPMBuildNS.Add(int64(c.buildTime))
	return c
}

// allocRows slab-allocates the propagation rows for every node in order:
// one bitvec.Arena slab for the vectors and one flat pointer slice carved
// per node, so a build performs O(1) heap allocations where it used to
// perform one per node plus one per (node, output).
func allocRows(c *CPM, order []circuit.NodeID) {
	total := len(order) * c.o
	if total == 0 {
		return
	}
	arena := bitvec.NewArena(c.m, total)
	flat := make([]*bitvec.Vec, total)
	for i := range flat {
		flat[i] = arena.New()
	}
	for i, id := range order {
		c.p[id] = flat[i*c.o : (i+1)*c.o : (i+1)*c.o] //als:invalidate-ok constructor helper: the caller's CPM is freshly built, caches empty
	}
}

// uniqueFanouts returns the distinct fanout nodes of id (a node may appear
// several times if it feeds multiple pins of the same gate; the Boolean
// difference already accounts for the multiplicity).
func uniqueFanouts(n *circuit.Network, id circuit.NodeID) []circuit.NodeID {
	fos := n.Fanouts(id)
	if len(fos) <= 1 {
		return fos
	}
	out := make([]circuit.NodeID, 0, len(fos))
	for _, f := range fos {
		dup := false
		for _, g := range out {
			if g == f {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return out
}

// boolDiff computes the Boolean difference ∂nf/∂x as an M-bit vector into
// dst: bit i is 1 iff flipping x changes nf under pattern i, evaluating all
// other fanins at their simulated values. Implemented as the generic
// cofactor XOR of Definition 4.1, word-parallel, which also handles a node
// feeding several pins of nf.
func boolDiff(n *circuit.Network, vals *sim.Values, x, nf circuit.NodeID, dst *bitvec.Vec) {
	kind := n.Kind(nf)
	fanins := n.Fanins(nf)
	words := bitvec.Words(vals.M)
	one := make([]uint64, len(fanins))
	zero := make([]uint64, len(fanins))
	dw := dst.WordsSlice()
	for w := 0; w < words; w++ {
		for j, f := range fanins {
			if f == x {
				one[j] = ^uint64(0)
				zero[j] = 0
			} else {
				fv := vals.Node(f).WordsSlice()[w]
				one[j] = fv
				zero[j] = fv
			}
		}
		dw[w] = kind.EvalWord(one) ^ kind.EvalWord(zero)
	}
	dst.MaskTail()
}

// M returns the number of patterns the CPM was built for.
func (c *CPM) M() int { return c.m }

// NumOutputs returns the number of primary outputs covered.
func (c *CPM) NumOutputs() int { return c.o }

// BuildTime returns how long the CPM construction took; the experiment
// harness uses it to reproduce the "ratio of CPM runtime" column of
// Table 3.
func (c *CPM) BuildTime() time.Duration { return c.buildTime }

// Prop returns the M-bit vector of patterns under which a flip at node id
// reaches output o. Shared, not copied.
func (c *CPM) Prop(id circuit.NodeID, o int) *bitvec.Vec {
	row := c.p[id]
	if row == nil {
		panic(fmt.Sprintf("core: node %d has no CPM row (dead?)", id))
	}
	return row[o]
}

// AnyProp returns the OR over outputs of Prop(id, ·): the patterns under
// which a flip at id is observable at some primary output. Cached; safe to
// call from concurrent query workers once the CPM is built (racing fills
// compute the same bits and the last store wins). Callers must not rely on
// pointer identity across calls.
func (c *CPM) AnyProp(id circuit.NodeID) *bitvec.Vec {
	if v := c.anyProp[id].Load(); v != nil {
		return v
	}
	v := bitvec.New(c.m)
	for _, pv := range c.p[id] {
		v.Or(v, pv)
	}
	c.anyProp[id].Store(v)
	return v
}

// Observability returns the fraction of patterns under which a flip at id
// reaches at least one output — a per-node testability measure that falls
// out of the CPM for free.
func (c *CPM) Observability(id circuit.NodeID) float64 {
	return float64(c.AnyProp(id).Count()) / float64(c.m)
}

// DeltaER implements Algorithm 1 of the paper for one approximate
// transformation, bit-parallel over patterns. nx is the output of the local
// circuit affected by the AT, change is the M-bit mask of patterns under
// which the value of nx flips, and st carries the W matrix of the current
// approximate circuit versus the golden circuit.
//
// Returns the increased error rate, which may be negative (the AT fixes
// previously wrong patterns).
func (c *CPM) DeltaER(nx circuit.NodeID, change *bitvec.Vec, st *emetric.State) float64 {
	inc, dec := c.DeltaERCounts(nx, change, st)
	return (float64(inc) - float64(dec)) / float64(c.m)
}

// DeltaERCounts returns the raw pattern counts behind DeltaER: inc
// patterns predicted to become newly wrong and dec patterns predicted to
// become fully corrected, out of the M-pattern sample. These Binomial
// counts are what the statistical confidence layer (obs.Wilson /
// obs.Hoeffding) consumes — DeltaER's normalised float erases the sample
// size the interval math needs.
//
//als:allocfree
func (c *CPM) DeltaERCounts(nx circuit.NodeID, change *bitvec.Vec, st *emetric.State) (incCount, decCount int64) {
	if c.restricted {
		panic("core: DeltaER on an output-restricted CPM")
	}
	statDeltaER.Inc()
	if !change.Any() {
		return 0, 0
	}
	if c.erInc == nil {
		c.erInc = bitvec.New(c.m)
		c.erDec = bitvec.New(c.m)
		c.erTmp = bitvec.New(c.m)
	}
	// Case 2 (Lines 10-11): previously fully correct pattern, flip reaches
	// some output -> newly wrong.
	inc := c.erInc
	inc.AndNot(change, st.WrongAny)
	inc.And(inc, c.AnyProp(nx))

	// Case 1 (Lines 7-9): previously wrong pattern where the flip reaches
	// exactly the wrong outputs and no correct one -> fully corrected.
	dec := c.erDec
	dec.And(change, st.WrongAny)
	if dec.Any() {
		tmp := c.erTmp
		row := c.p[nx]
		for o := 0; o < c.o && dec.Any(); o++ {
			// Keep patterns where P and W agree on output o.
			tmp.Xor(row[o], st.W.Row(o))
			tmp.Not(tmp)
			dec.And(dec, tmp)
		}
	}
	return int64(inc.Count()), int64(dec.Count())
}

// aemColumns builds (or reuses) the per-pattern output words of the golden
// (U) and approximate (V) matrices for st. Extracting them once per
// iteration turns the per-candidate inner loop from matrix-column gathers
// into two array reads.
func (c *CPM) aemColumns(st *emetric.State) {
	if c.aemFor == st {
		return
	}
	if c.aemU == nil {
		c.aemU = make([]uint64, c.m)
		c.aemV = make([]uint64, c.m)
	} else {
		for i := range c.aemU {
			c.aemU[i] = 0
			c.aemV[i] = 0
		}
	}
	for o := 0; o < c.o; o++ {
		uw := st.U.Row(o).WordsSlice()
		vw := st.V.Row(o).WordsSlice()
		bit := uint64(1) << uint(o)
		for i := 0; i < c.m; i++ {
			if uw[i/64]>>(uint(i)%64)&1 == 1 {
				c.aemU[i] |= bit
			}
			if vw[i/64]>>(uint(i)%64)&1 == 1 {
				c.aemV[i] |= bit
			}
		}
	}
	c.aemFor = st
}

// aemReach is one output the candidate's flip can reach: its bit in the
// packed output word plus the propagation row's word slice. The gather
// buffer lives on the CPM (aemReached) so the scoring loop reuses it.
type aemReach struct {
	bit   uint64
	words []uint64
}

// DeltaAEM estimates the increased average error magnitude of an AT, per
// Section 4.3: for each pattern where nx flips, the predicted new output
// word Y_chg is the previous approximate word with the CPM-propagated bits
// flipped, and the contribution is |Y_chg−Y_org| − |Y_pre−Y_org|. The
// result is normalised by M (it is an average), and may be negative.
// Requires at most 63 outputs.
//
//als:allocfree
func (c *CPM) DeltaAEM(nx circuit.NodeID, change *bitvec.Vec, st *emetric.State) float64 {
	if c.restricted {
		panic("core: DeltaAEM on an output-restricted CPM")
	}
	if c.o > 63 {
		panic("core: DeltaAEM requires <= 63 outputs")
	}
	statDeltaAEM.Inc()
	if !change.Any() {
		return 0
	}
	c.aemColumns(st)
	row := c.p[nx]

	// Only outputs the flip can reach under some changed pattern matter;
	// gather their word slices once into the reusable buffer (the append
	// grows it to at most c.o entries on the first calls, then reuses).
	reached := c.aemReached[:0]
	cw := change.WordsSlice()
	for o := 0; o < c.o; o++ {
		pw := row[o].WordsSlice()
		for w := range cw {
			if cw[w]&pw[w] != 0 {
				reached = append(reached, aemReach{bit: 1 << uint(o), words: pw}) //als:alloc-ok amortised grow, capped at c.o
				break
			}
		}
	}
	c.aemReached = reached
	if len(reached) == 0 {
		return 0
	}

	var total float64
	for w, word := range cw {
		for word != 0 {
			b := word & (-word)
			i := w*bitvec.WordBits + bits.TrailingZeros64(b)
			word ^= b
			var flip uint64
			for _, r := range reached {
				if r.words[w]&b != 0 {
					flip |= r.bit
				}
			}
			if flip == 0 {
				continue
			}
			org := c.aemU[i]
			pre := c.aemV[i]
			total += absDiff(pre^flip, org) - absDiff(pre, org)
		}
	}
	return total / float64(c.m)
}

func absDiff(a, b uint64) float64 {
	if a >= b {
		return float64(a - b)
	}
	return float64(b - a)
}

// ChangedOutputs returns, for pattern i, the set of outputs the CPM
// predicts to flip when nx flips, as a bit mask over output indices
// (output 0 = bit 0). Requires at most 64 outputs.
func (c *CPM) ChangedOutputs(nx circuit.NodeID, i int) uint64 {
	if c.o > 64 {
		panic("core: ChangedOutputs requires <= 64 outputs")
	}
	var mask uint64
	row := c.p[nx]
	for o := 0; o < c.o; o++ {
		if row[o].Get(i) {
			mask |= 1 << uint(o)
		}
	}
	return mask
}

// BuildForOutputs constructs a CPM restricted to the given output indices:
// p-rows only carry those outputs, cutting memory from Θ(M·N·O) bits to
// Θ(M·N·|outputs|). DeltaER/DeltaAEM are not available on a restricted CPM
// (they need every output); use Prop/AnyProp/Observability, or build
// output groups and combine externally. Output indices must be distinct
// and in range.
func BuildForOutputs(n *circuit.Network, vals *sim.Values, outputs []int) *CPM {
	start := time.Now()
	m := vals.M
	all := n.Outputs()
	for _, o := range outputs {
		if o < 0 || o >= len(all) {
			panic(fmt.Sprintf("core: output index %d out of range [0,%d)", o, len(all)))
		}
	}
	c := &CPM{
		net:        n,
		vals:       vals,
		m:          m,
		o:          len(outputs),
		p:          make([][]*bitvec.Vec, n.NumSlots()),
		anyProp:    make([]atomic.Pointer[bitvec.Vec], n.NumSlots()),
		restricted: true,
	}
	order := n.TopoOrder()
	for _, id := range order {
		row := make([]*bitvec.Vec, len(outputs))
		for o := range outputs {
			row[o] = bitvec.New(m)
		}
		c.p[id] = row
	}
	for slot, o := range outputs {
		c.p[all[o].Node][slot].Fill()
	}
	d := bitvec.New(m)
	tmp := bitvec.New(m)
	for idx := len(order) - 1; idx >= 0; idx-- {
		id := order[idx]
		for _, nf := range uniqueFanouts(n, id) {
			boolDiff(n, vals, id, nf, d)
			if !d.Any() {
				continue
			}
			prow := c.p[id]
			frow := c.p[nf]
			for o := range outputs {
				if !frow[o].Any() {
					continue
				}
				tmp.And(frow[o], d)
				prow[o].Or(prow[o], tmp)
			}
		}
	}
	c.buildTime = time.Since(start)
	statCPMBuilds.Inc()
	statCPMBuildNS.Add(int64(c.buildTime))
	return c
}
