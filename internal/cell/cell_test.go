package cell

import (
	"testing"

	"batchals/internal/circuit"
)

func TestGateAreaScalesWithArity(t *testing.T) {
	lib := Default()
	a2 := lib.GateArea(circuit.KindAnd, 2)
	a3 := lib.GateArea(circuit.KindAnd, 3)
	a5 := lib.GateArea(circuit.KindAnd, 5)
	if a2 <= 0 {
		t.Fatal("2-input AND has no area")
	}
	if a3 != 2*a2 || a5 != 4*a2 {
		t.Fatalf("n-ary decomposition costing wrong: %v %v %v", a2, a3, a5)
	}
	if lib.GateArea(circuit.KindNot, 1) <= 0 {
		t.Fatal("inverter free")
	}
	if lib.GateArea(circuit.KindInput, 0) != 0 || lib.GateArea(circuit.KindConst1, 0) != 0 {
		t.Fatal("inputs and constants must be free")
	}
}

func TestNetworkAreaAdditive(t *testing.T) {
	lib := Default()
	n := circuit.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(circuit.KindAnd, a, b)
	g2 := n.AddGate(circuit.KindNot, g1)
	n.AddOutput("o", g2)
	want := lib.GateArea(circuit.KindAnd, 2) + lib.GateArea(circuit.KindNot, 1)
	if got := lib.NetworkArea(n); got != want {
		t.Fatalf("area %v want %v", got, want)
	}
}

func TestNetworkDelayCriticalPath(t *testing.T) {
	lib := Default()
	n := circuit.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	// Path 1: single AND (delay 1). Path 2: XOR then AND (2+1).
	x := n.AddGate(circuit.KindXor, a, b)
	g := n.AddGate(circuit.KindAnd, x, a)
	n.AddOutput("o1", n.AddGate(circuit.KindAnd, a, b))
	n.AddOutput("o2", g)
	want := lib.GateDelay(circuit.KindXor) + lib.GateDelay(circuit.KindAnd)
	if got := lib.NetworkDelay(n); got != want {
		t.Fatalf("delay %v want %v", got, want)
	}
}

func TestNodeArrivalMonotone(t *testing.T) {
	lib := Default()
	n := circuit.New("t")
	a := n.AddInput("a")
	g1 := n.AddGate(circuit.KindNot, a)
	g2 := n.AddGate(circuit.KindNot, g1)
	n.AddOutput("o", g2)
	arr := lib.NodeArrival(n)
	if !(arr[a] < arr[g1] && arr[g1] < arr[g2]) {
		t.Fatalf("arrivals not monotone: %v", arr)
	}
}

func TestDelayGreaterEqualAnyPath(t *testing.T) {
	lib := Default()
	n := circuit.New("t")
	a := n.AddInput("a")
	cur := a
	for i := 0; i < 7; i++ {
		cur = n.AddGate(circuit.KindNot, cur)
	}
	n.AddOutput("o", cur)
	if got := lib.NetworkDelay(n); got != 7*lib.GateDelay(circuit.KindNot) {
		t.Fatalf("chain delay %v", got)
	}
}
