package partition

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

func buildBench(t *testing.T, name string) *circuit.Network {
	t.Helper()
	net, err := bench.ByName(name)
	if err != nil {
		t.Fatalf("bench %s: %v", name, err)
	}
	return net
}

// TestBuildPlanCoverage checks every live gate lands in exactly one part,
// parts stay convex, and the boundary sets are consistent with partOf.
func TestBuildPlanCoverage(t *testing.T) {
	for _, name := range []string{"rca8", "mul8", "c880", "c2670"} {
		t.Run(name, func(t *testing.T) {
			net := buildBench(t, name)
			plan, err := BuildPlan(net, Options{TargetCells: 12, MaxCut: 8})
			if err != nil {
				t.Fatal(err)
			}
			if plan.NumParts() < 2 {
				t.Fatalf("want multiple parts for TargetCells=12, got %d", plan.NumParts())
			}
			seen := make(map[circuit.NodeID]int)
			total := 0
			for k := range plan.Parts {
				part := &plan.Parts[k]
				if part.Index != k {
					t.Fatalf("part %d has Index %d", k, part.Index)
				}
				for _, g := range part.Members {
					if !net.Kind(g).IsGate() {
						t.Fatalf("part %d member %s is not a gate", k, net.NameOf(g))
					}
					if prev, dup := seen[g]; dup {
						t.Fatalf("gate %s in parts %d and %d", net.NameOf(g), prev, k)
					}
					seen[g] = k
					if plan.PartOf(g) != k {
						t.Fatalf("PartOf(%s) = %d, want %d", net.NameOf(g), plan.PartOf(g), k)
					}
					total++
				}
				for _, in := range part.Inputs {
					if src := plan.PartOf(in); src >= k {
						t.Fatalf("part %d input %s from part %d violates convexity", k, net.NameOf(in), src)
					}
				}
			}
			if total != net.NumGates() {
				t.Fatalf("parts cover %d gates, network has %d", total, net.NumGates())
			}
		})
	}
}

// TestBuildPlanDeterministic: same network, same options, same plan.
func TestBuildPlanDeterministic(t *testing.T) {
	opt := Options{TargetCells: 60, MaxCut: 24}
	a, err := BuildPlan(buildBench(t, "c880"), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(buildBench(t, "c880"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParts() != b.NumParts() {
		t.Fatalf("plan sizes differ: %d vs %d", a.NumParts(), b.NumParts())
	}
	for k := range a.Parts {
		pa, pb := &a.Parts[k], &b.Parts[k]
		if len(pa.Members) != len(pb.Members) || pa.CutIns != pb.CutIns {
			t.Fatalf("part %d differs across runs", k)
		}
		for i := range pa.Members {
			if pa.Members[i] != pb.Members[i] {
				t.Fatalf("part %d member %d differs", k, i)
			}
		}
	}
}

// TestExtractMergeIdentity: extracting all parts golden and merging them
// back yields a network that simulates bit-identically to the parent.
func TestExtractMergeIdentity(t *testing.T) {
	for _, name := range []string{"rca8", "dec4", "cmp8", "c880"} {
		t.Run(name, func(t *testing.T) {
			net := buildBench(t, name)
			plan, err := BuildPlan(net, Options{TargetCells: 30, MaxCut: 12})
			if err != nil {
				t.Fatal(err)
			}
			pats := sim.RandomPatterns(net.NumInputs(), 512, 7)
			vals := sim.Simulate(net, pats)
			parts, err := plan.Extract(vals)
			if err != nil {
				t.Fatal(err)
			}
			// Each extracted part, driven by its recorded patterns, must
			// reproduce the parent's values at its outputs.
			for k := range parts {
				pv := sim.Simulate(parts[k].Net, parts[k].Patterns)
				for j, o := range parts[k].Net.Outputs() {
					parentID := parts[k].Part.Outputs[j]
					if !pv.Node(o.Node).Equal(vals.Node(parentID)) {
						t.Fatalf("part %d output %s diverges from parent", k, o.Name)
					}
				}
			}
			nets := make([]*circuit.Network, len(parts))
			for k := range parts {
				nets[k] = parts[k].Net
			}
			merged, err := plan.Merge(nets)
			if err != nil {
				t.Fatal(err)
			}
			res := emetric.Measure(net, merged, pats)
			if res.ErrorRate != 0 {
				t.Fatalf("golden merge has error rate %g, want 0", res.ErrorRate)
			}
		})
	}
}

// TestAllocatorInvariant is the property test from the issue: across
// random reclamation rounds the per-part allocations stay non-negative
// and never sum past the global budget.
func TestAllocatorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(16)
		total := rng.Float64() * 0.2
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 10
			if rng.Intn(5) == 0 {
				weights[i] = 0 // exercise the non-positive-weight guard
			}
		}
		a := NewAllocator(total, weights)
		if s := a.Sum(); s > total*(1+1e-9)+1e-15 {
			t.Fatalf("trial %d: initial sum %g exceeds total %g", trial, s, total)
		}
		for round := 0; round < 5; round++ {
			measured := make([]float64, n)
			for k := range measured {
				// Anywhere from zero to slightly over the allocation.
				measured[k] = a.Alloc(k) * rng.Float64() * 1.2
			}
			a.Reclaim(measured)
			s := 0.0
			for k := 0; k < n; k++ {
				if a.Alloc(k) < 0 {
					t.Fatalf("trial %d round %d: negative allocation %g", trial, round, a.Alloc(k))
				}
				s += a.Alloc(k)
			}
			if s > total*(1+1e-9)+1e-15 {
				t.Fatalf("trial %d round %d: sum %g exceeds total %g", trial, round, s, total)
			}
		}
	}
}

// TestReclaimMovesBudget pins the mechanics: a converged part's slack
// flows to the hungry part and the grown indices are reported.
func TestReclaimMovesBudget(t *testing.T) {
	a := NewAllocator(0.10, []float64{1, 1})
	before := a.Allocations()
	// Part 0 barely used its budget, part 1 exhausted its share.
	grown := a.Reclaim([]float64{0.001, before[1]})
	if len(grown) != 1 || grown[0] != 1 {
		t.Fatalf("grown = %v, want [1]", grown)
	}
	if a.Alloc(0) != 0.001 {
		t.Fatalf("part 0 should shrink to measured 0.001, got %g", a.Alloc(0))
	}
	want := before[1] + (before[0] - 0.001)
	if math.Abs(a.Alloc(1)-want) > 1e-12 {
		t.Fatalf("part 1 alloc %g, want %g", a.Alloc(1), want)
	}
}

// TestWeightsFor sanity-checks both policies.
func TestWeightsFor(t *testing.T) {
	net := buildBench(t, "c880")
	plan, err := BuildPlan(net, Options{TargetCells: 60, MaxCut: 24})
	if err != nil {
		t.Fatal(err)
	}
	uni := WeightsFor(PolicyUniform, net, plan)
	for _, w := range uni {
		if w != 1 {
			t.Fatalf("uniform weight %g, want 1", w)
		}
	}
	obs := WeightsFor(PolicyObservability, net, plan)
	if len(obs) != plan.NumParts() {
		t.Fatalf("got %d weights for %d parts", len(obs), plan.NumParts())
	}
	for k, w := range obs {
		if w < 1 {
			t.Fatalf("part %d observability weight %g < 1", k, w)
		}
	}
	// The last part drives primary outputs, so it must see at least as
	// many reachable outputs as any interior part feeding only it.
	if obs[len(obs)-1] <= 1 {
		t.Fatalf("final part weight %g should exceed 1", obs[len(obs)-1])
	}
}

// TestOptionsValidate covers the policy gate.
func TestOptionsValidate(t *testing.T) {
	o := Options{BudgetPolicy: "greedy"}
	o.FillDefaults()
	if err := o.Validate(); err == nil {
		t.Fatal("want error for unknown policy")
	}
	o = Options{}
	o.FillDefaults()
	if err := o.Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	if o.TargetCells != 2000 || o.MaxCut != 64 || o.BudgetPolicy != PolicyObservability || o.MaxRounds != 2 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}
