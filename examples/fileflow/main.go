// Fileflow: an end-to-end pipeline over circuit files — generate a
// benchmark netlist to disk, read it back, approximate it with two
// different estimators, and write both approximations out, comparing their
// quality. Mirrors how the command-line tools compose, but entirely
// through the library API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"batchals"
)

func main() {
	dir, err := os.MkdirTemp("", "batchals-fileflow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Emit a golden netlist, as cmd/genbench would.
	golden, err := batchals.Benchmark("cla32")
	if err != nil {
		log.Fatal(err)
	}
	goldenPath := filepath.Join(dir, "cla32.bench")
	if err := batchals.Save(goldenPath, golden); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (area %.0f)\n", goldenPath, batchals.Area(golden))

	// 2. Read it back — from here on everything works off the file.
	loaded, err := batchals.Load(goldenPath)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Approximate under a 1% ER budget with both estimators.
	for _, est := range []struct {
		name string
		kind batchals.Estimator
	}{
		{"batch", batchals.Batch},
		{"local", batchals.Local},
	} {
		res, err := batchals.Approximate(loaded, batchals.Options{
			Metric:      batchals.ErrorRate,
			Threshold:   0.01,
			Estimator:   est.kind,
			NumPatterns: 5000,
			Seed:        11,
		})
		if err != nil {
			log.Fatal(err)
		}
		outPath := filepath.Join(dir, "cla32_"+est.name+".blif")
		if err := batchals.Save(outPath, res.Approx); err != nil {
			log.Fatal(err)
		}
		check := batchals.MeasureError(loaded, res.Approx, 50000, 17)
		fmt.Printf("%-6s: %3d substitutions, area ratio %.3f, verified ER %.4f%% -> %s\n",
			est.name, res.NumIterations, res.AreaRatio(), 100*check.ErrorRate,
			filepath.Base(outPath))
	}
	fmt.Println("\nthe batch estimator reaches an equal or lower area ratio at the same budget;")
	fmt.Println("the gap widens on circuits with more logic masking (try mul8 or c880).")
}
