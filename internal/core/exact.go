package core

import (
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

// Metric selects the statistical error measure a flow optimises under.
type Metric int

// Supported statistical error measures.
const (
	MetricER  Metric = iota // error rate
	MetricAEM               // average error magnitude
)

// String returns "ER" or "AEM".
func (m Metric) String() string {
	if m == MetricAEM {
		return "AEM"
	}
	return "ER"
}

// Value extracts the metric's current value from an error state.
func (m Metric) Value(st *emetric.State) float64 {
	if m == MetricAEM {
		return st.AvgErrorMagnitude()
	}
	return st.ErrorRate()
}

// ExactDelta computes the true increased error of forcing node nx to the
// value vector newVal, by speculatively resimulating nx's fanout cone and
// comparing outputs against the golden matrix in st — the "full simulation
// method" the paper benchmarks against in Table 2 and that the CPM
// estimator is validated against in tests. The value table is restored
// before returning.
func ExactDelta(n *circuit.Network, vals *sim.Values, nx circuit.NodeID,
	newVal *bitvec.Vec, st *emetric.State, metric Metric) float64 {

	statExactDelta.Inc()
	snap := sim.SnapshotCone(n, vals, nx)
	defer snap.Restore(vals)

	before := metric.Value(st)
	vals.Node(nx).CopyFrom(newVal)
	sim.ResimulateCone(n, vals, nx)

	after := valueAgainstGolden(n, vals, st, metric)
	return after - before
}

// valueAgainstGolden measures the metric of the current value table's
// outputs against the golden matrix st.U without disturbing st.
func valueAgainstGolden(n *circuit.Network, vals *sim.Values, st *emetric.State, metric Metric) float64 {
	outs := sim.OutputMatrix(n, vals)
	tmp := emetric.NewState(st.U, outs)
	return metric.Value(tmp)
}
