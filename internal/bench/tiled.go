package bench

import (
	"fmt"
	"math/rand"

	"batchals/internal/circuit"
)

// Tiled generates a large synthetic circuit by composing arithmetic tiles
// — ripple adders, array multipliers, comparators, parity trees — wired
// together with recency-biased cross-tile edges, until the network holds
// at least targetGates gates. Unlike Synthetic's random gate soup, the
// tiles give the circuit real arithmetic structure (carry chains,
// reconvergent partial-product fanout) at 10k-1M gate scale, which is the
// regime the partitioned flow targets: the FFR partitioner finds narrow
// boundaries between tiles that a uniform random graph does not have.
//
// Tile inputs are drawn 70% from a recent window of produced signals
// (locality: tiles chain into deep datapaths) and 30% from anywhere
// (long, reconvergence-inducing edges across the datapath). All tile
// outputs that end up fanout-free are folded into numOut collector trees
// so no generated logic is dead.
func Tiled(name string, numIn, numOut, targetGates int, seed int64) *circuit.Network {
	if numIn < 8 || numOut < 1 || targetGates < 64 {
		panic(fmt.Sprintf("bench: Tiled needs >=8 inputs, >=1 output, >=64 gates; got %d/%d/%d",
			numIn, numOut, targetGates))
	}
	r := rand.New(rand.NewSource(seed))
	n := circuit.New(name)
	pool := make([]circuit.NodeID, 0, numIn+targetGates/2)
	for i := 0; i < numIn; i++ {
		pool = append(pool, n.AddInput(fmt.Sprintf("i%d", i)))
	}
	pick := func() circuit.NodeID {
		if len(pool) > 64 && r.Intn(10) < 7 {
			return pool[len(pool)-1-r.Intn(64)]
		}
		return pool[r.Intn(len(pool))]
	}
	pickVec := func(width int) []circuit.NodeID {
		v := make([]circuit.NodeID, width)
		for i := range v {
			v[i] = pick()
		}
		return v
	}

	// Tile builders consume picked signal vectors and return the signals
	// they produce. Gate counts per tile: adder ~5w, multiplier ~6w^2,
	// comparator ~4w, parity w-1.
	adderTile := func() []circuit.NodeID {
		w := 4 + r.Intn(13) // 4..16 bit
		a, b := pickVec(w), pickVec(w)
		carry := pick()
		out := make([]circuit.NodeID, 0, w+1)
		for i := 0; i < w; i++ {
			var s circuit.NodeID
			s, carry = fullAdder(n, a[i], b[i], carry)
			out = append(out, s)
		}
		return append(out, carry)
	}
	mulTile := func() []circuit.NodeID {
		w := 2 + r.Intn(3) // 2..4 bit array multiplier
		a, b := pickVec(w), pickVec(w)
		// Partial products, then ripple rows of half/full adders.
		acc := make([]circuit.NodeID, w) // row 0
		for i := range acc {
			acc[i] = n.AddGate(circuit.KindAnd, a[i], b[0])
		}
		out := make([]circuit.NodeID, 0, 2*w)
		out = append(out, acc[0])
		for j := 1; j < w; j++ {
			pp := make([]circuit.NodeID, w)
			for i := range pp {
				pp[i] = n.AddGate(circuit.KindAnd, a[i], b[j])
			}
			next := make([]circuit.NodeID, w)
			var carry circuit.NodeID
			for i := 0; i < w-1; i++ {
				if i == 0 && j == 1 {
					next[i], carry = halfAdder(n, acc[i+1], pp[i])
				} else {
					next[i], carry = fullAdder(n, acc[i+1], pp[i], carry)
				}
			}
			next[w-1], _ = halfAdder(n, pp[w-1], carry)
			acc = next
			out = append(out, acc[0])
		}
		return append(out, acc[1:]...)
	}
	cmpTile := func() []circuit.NodeID {
		w := 4 + r.Intn(9) // 4..12 bit
		a, b := pickVec(w), pickVec(w)
		eq := n.AddGate(circuit.KindXnor, a[0], b[0])
		lt := n.AddGate(circuit.KindAnd, n.AddGate(circuit.KindNot, a[0]), b[0])
		for i := 1; i < w; i++ {
			bitEq := n.AddGate(circuit.KindXnor, a[i], b[i])
			bitLt := n.AddGate(circuit.KindAnd, n.AddGate(circuit.KindNot, a[i]), b[i])
			lt = n.AddGate(circuit.KindOr, bitLt, n.AddGate(circuit.KindAnd, bitEq, lt))
			eq = n.AddGate(circuit.KindAnd, eq, bitEq)
		}
		return []circuit.NodeID{eq, lt}
	}
	parityTile := func() []circuit.NodeID {
		w := 8 + r.Intn(9) // 8..16 inputs
		level := pickVec(w)
		for len(level) > 1 {
			var next []circuit.NodeID
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, n.AddGate(circuit.KindXor, level[i], level[i+1]))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		return level
	}
	tiles := []func() []circuit.NodeID{
		adderTile, adderTile, adderTile, // adders dominate: long carry chains
		mulTile, mulTile, // dense reconvergent fanout
		cmpTile, parityTile,
	}

	for n.NumGates() < targetGates {
		pool = append(pool, tiles[r.Intn(len(tiles))]()...)
	}
	// Sweep-proof unused inputs, as Synthetic does.
	for _, in := range n.Inputs() {
		if len(n.Fanouts(in)) == 0 {
			pool = append(pool, n.AddGate(circuit.KindAnd, in, pick()))
		}
	}
	// Fold fanout-free tile outputs into numOut collector trees.
	var roots []circuit.NodeID
	for _, id := range pool {
		if n.Kind(id).IsGate() && len(n.Fanouts(id)) == 0 {
			roots = append(roots, id)
		}
	}
	buckets := make([][]circuit.NodeID, numOut)
	for i, root := range roots {
		buckets[i%numOut] = append(buckets[i%numOut], root)
	}
	combine := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindXor, circuit.KindNand, circuit.KindNor}
	for o := 0; o < numOut; o++ {
		level := buckets[o]
		if len(level) == 0 {
			level = []circuit.NodeID{pool[len(pool)-1-r.Intn(len(pool)/2)]}
		}
		for len(level) > 1 {
			var next []circuit.NodeID
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, n.AddGate(combine[r.Intn(len(combine))], level[i], level[i+1]))
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		n.AddOutput(fmt.Sprintf("o%d", o), level[0])
	}
	n.Sweep()
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("bench: tiled %s invalid: %v", name, err))
	}
	return n
}
