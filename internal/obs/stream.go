package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// EventKind discriminates the payload of a stream Event.
type EventKind uint8

// The stream event kinds, matching the Tracer methods.
const (
	EventPhase EventKind = iota + 1
	EventIteration
	EventCandidate
	EventAccept
)

// String returns the wire name of the kind (the "ev" field of the JSON
// encoding, shared with JSONLTracer's vocabulary).
func (k EventKind) String() string {
	switch k {
	case EventPhase:
		return "phase"
	case EventIteration:
		return "iter"
	case EventCandidate:
		return "cand"
	case EventAccept:
		return "accept"
	}
	return "unknown"
}

// Event is one flow event in flight through a StreamTracer: a flat union
// (only the payload selected by Kind is meaningful) so events move through
// channels by value — publishing allocates nothing, which keeps a
// connected-but-idle subscriber off the flow's hot path entirely.
type Event struct {
	Kind EventKind
	// Seq is the tracer-wide publication sequence number (1-based); gaps
	// in a subscriber's view are events dropped on its full buffer.
	Seq uint64
	// Run names the originating run, when the tracer was built with one.
	Run string

	Phase  PhaseInfo
	Iter   IterationInfo
	Cand   CandidateInfo
	Accept AcceptInfo
}

// MarshalJSON renders the event as a self-describing object mirroring the
// JSONL trace schema, with seq/run envelope fields added.
func (e Event) MarshalJSON() ([]byte, error) {
	env := struct {
		Ev  string `json:"ev"`
		Seq uint64 `json:"seq"`
		Run string `json:"run,omitempty"`
		Pay any    `json:"data"`
	}{Ev: e.Kind.String(), Seq: e.Seq, Run: e.Run}
	switch e.Kind {
	case EventPhase:
		env.Pay = e.Phase
	case EventIteration:
		env.Pay = e.Iter
	case EventCandidate:
		env.Pay = e.Cand
	case EventAccept:
		env.Pay = e.Accept
	default:
		return nil, fmt.Errorf("obs: marshal of unknown event kind %d", e.Kind)
	}
	return json.Marshal(env)
}

// StreamTracer fans flow events out to any number of subscribers without
// ever blocking the flow: each subscriber owns a buffered channel, and a
// publish that finds a buffer full drops the event for that subscriber
// (counted, never waited on). The flow goroutine publishes; subscribers
// (SSE handlers, tests) attach and detach concurrently at any time.
//
// With zero subscribers every Tracer method returns after one atomic
// load, and a publish to idle subscribers performs no allocation — the
// serving layer can stay attached to production runs unconditionally.
type StreamTracer struct {
	// EmitCandidates opts into per-candidate events, the same (large)
	// firehose JSONLTracer gates behind its own EmitCandidates.
	EmitCandidates bool

	run     string
	seq     atomic.Uint64
	dropped atomic.Int64
	nsubs   atomic.Int32

	mu     sync.RWMutex
	subs   map[uint64]chan Event
	nextID uint64

	// dropCounter, when set, mirrors drops into a registry counter.
	dropCounter atomic.Pointer[Counter]
}

// NewStreamTracer returns a tracer stamping events with the given run
// name (empty is fine for single-run processes).
func NewStreamTracer(run string) *StreamTracer {
	return &StreamTracer{run: run, subs: make(map[uint64]chan Event)}
}

// CountDropsIn mirrors the drop count into reg's counter named name, so
// scrapes see backpressure without asking the tracer.
func (t *StreamTracer) CountDropsIn(reg *Registry, name string) {
	if reg == nil {
		return
	}
	t.dropCounter.Store(reg.Counter(name))
}

// Run returns the run name events are stamped with.
func (t *StreamTracer) Run() string { return t.run }

// Dropped returns the total number of events dropped across all
// subscribers since the tracer was created.
func (t *StreamTracer) Dropped() int64 { return t.dropped.Load() }

// Subscribers returns the current subscriber count.
func (t *StreamTracer) Subscribers() int { return int(t.nsubs.Load()) }

// DefaultSubscribeBuffer is the per-subscriber channel capacity used when
// Subscribe is given a non-positive buffer size.
const DefaultSubscribeBuffer = 256

// Subscribe attaches a new subscriber and returns its event channel plus
// a cancel function. Cancel is idempotent; it detaches the subscriber and
// closes the channel (after detaching, so a concurrent publish can never
// send on a closed channel). Events overflowing the buffer while the
// subscriber lags are dropped, visible as gaps in Event.Seq.
func (t *StreamTracer) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = DefaultSubscribeBuffer
	}
	ch := make(chan Event, buf)
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.subs[id] = ch
	t.mu.Unlock()
	t.nsubs.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			delete(t.subs, id)
			t.mu.Unlock()
			t.nsubs.Add(-1)
			close(ch)
		})
	}
	return ch, cancel
}

func (t *StreamTracer) publish(e Event) {
	if t.nsubs.Load() == 0 {
		return
	}
	e.Seq = t.seq.Add(1)
	e.Run = t.run
	t.mu.RLock()
	for _, ch := range t.subs {
		select {
		case ch <- e:
		default:
			t.dropped.Add(1)
			if c := t.dropCounter.Load(); c != nil {
				c.Inc()
			}
		}
	}
	t.mu.RUnlock()
}

// OnPhase publishes a phase event.
func (t *StreamTracer) OnPhase(i PhaseInfo) {
	t.publish(Event{Kind: EventPhase, Phase: i})
}

// OnIteration publishes an iteration event.
func (t *StreamTracer) OnIteration(i IterationInfo) {
	t.publish(Event{Kind: EventIteration, Iter: i})
}

// WantsCandidates mirrors EmitCandidates for the CandidateFilter
// capability.
func (t *StreamTracer) WantsCandidates() bool { return t.EmitCandidates }

// OnCandidate publishes a candidate event when EmitCandidates is set.
func (t *StreamTracer) OnCandidate(i CandidateInfo) {
	if !t.EmitCandidates {
		return
	}
	t.publish(Event{Kind: EventCandidate, Cand: i})
}

// OnAccept publishes an accept event.
func (t *StreamTracer) OnAccept(i AcceptInfo) {
	t.publish(Event{Kind: EventAccept, Accept: i})
}

var _ Tracer = (*StreamTracer)(nil)
