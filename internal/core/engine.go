package core

import (
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// Engine owns the per-circuit estimation state of an iterative ALS flow —
// the approximate network, its simulated value table, the error-metric
// state against a fixed golden output matrix, and (lazily) the CPM — and
// keeps all of it consistent *incrementally* across accepted edits. It
// replaces the rebuild-from-scratch sequence the flow used to run every
// iteration (full simulate, new emetric.State, full CPM build) with
// cone-scoped resimulation and dirty-region CPM refresh, while remaining
// bit-identical to that sequence at any worker count: resimulation
// recomputes exactly the gate functions a full simulation would, the error
// state is recopied from the (identical) output driver vectors, and
// Refresh reproduces Build's fold on the dirty region (see Refresh for the
// derivation).
//
// Protocol: construct once per flow run, call Apply after every accepted
// network edit, and read CPM() whenever the estimator needs the matrix —
// the engine decides between a full parallel build (first call, or after
// edits too tangled to refresh) and an incremental refresh. The Net, Vals
// and St fields are the live objects; callers may read them freely but
// must route all mutation through Apply.
type Engine struct {
	Net  *circuit.Network
	Vals *sim.Values
	St   *emetric.State

	golden *bitvec.Matrix
	pool   *par.Pool

	cpm            *CPM
	pendingEdit    Edit
	pendingChanged []circuit.NodeID
	hasPending     bool
	needFull       bool

	lastRefresh RefreshStats
	lastFull    bool
	lastResim   int
	lastChanged int
}

// NewEngine fully simulates the network on the pattern set and builds the
// error state against the golden output matrix. The CPM is not built until
// the first CPM() call, so estimators that never need it pay nothing.
func NewEngine(n *circuit.Network, golden *bitvec.Matrix, p *sim.Patterns, pool *par.Pool) *Engine {
	vals := sim.SimulateParallel(n, p, pool)
	return &Engine{
		Net:    n,
		Vals:   vals,
		St:     emetric.NewState(golden, sim.OutputMatrix(n, vals)),
		golden: golden,
		pool:   pool,
	}
}

// Apply folds one accepted network edit into the engine's state: the
// structural fanout cones of the edit's seeds are resimulated in place,
// removed nodes' value vectors are released, the error state is refreshed
// from the new output driver vectors, and the edit is queued for the next
// CPM() call's dirty-region refresh. It returns the nodes resimulated and
// the subset whose value vectors actually changed (deterministic at any
// worker count).
func (e *Engine) Apply(ed Edit) (resimmed, changed []circuit.NodeID) {
	resimmed, changed = sim.ResimulateFrom(e.Net, e.Vals, ed.Seeds(), e.pool)
	for _, id := range ed.Removed {
		e.Vals.Drop(id)
	}
	for o, out := range e.Net.Outputs() {
		e.St.V.Row(o).CopyFrom(e.Vals.Node(out.Node))
	}
	e.St.Refresh()
	e.lastResim = len(resimmed)
	e.lastChanged = len(changed)
	if e.cpm != nil {
		if e.hasPending {
			// Two edits accumulated without a CPM read between them;
			// Refresh handles one edit, so fall back to a full rebuild.
			e.needFull = true
			e.hasPending = false
			e.pendingChanged = nil
		} else {
			e.pendingEdit = ed
			e.pendingChanged = changed
			e.hasPending = true
		}
	}
	return resimmed, changed
}

// CPM returns the change propagation matrix for the engine's current
// state, building it on first use and refreshing only the dirty region
// after Apply calls. The returned matrix is bit-identical to
// BuildParallel(Net, Vals, pool) at any worker count.
func (e *Engine) CPM() *CPM {
	if e.cpm == nil || e.needFull {
		e.cpm = BuildParallel(e.Net, e.Vals, e.pool)
		e.needFull = false
		e.hasPending = false
		e.pendingChanged = nil
		live := 0
		for _, row := range e.cpm.p {
			if row != nil {
				live++
			}
		}
		e.lastRefresh = RefreshStats{DirtyRows: live, TotalRows: live, Duration: e.cpm.buildTime}
		e.lastFull = true
		return e.cpm
	}
	if e.hasPending {
		e.lastRefresh = e.cpm.Refresh(e.pendingEdit, e.pendingChanged, e.pool)
		e.lastFull = false
		e.hasPending = false
		e.pendingChanged = nil
	}
	return e.cpm
}

// LastRefresh reports the work of the most recent CPM() that touched the
// matrix, and whether it was a full build (true) or a dirty-region refresh
// (false). For a full build DirtyRows == TotalRows.
func (e *Engine) LastRefresh() (RefreshStats, bool) { return e.lastRefresh, e.lastFull }

// LastResim reports the node counts of the most recent Apply: nodes
// re-evaluated and nodes whose value vectors changed.
func (e *Engine) LastResim() (resimmed, changed int) { return e.lastResim, e.lastChanged }
