// Command vetals runs the repo's custom Go-level analyzers (internal/lint:
// bitveclen, randseed, apipanic, ctxflow, sharddisjoint, invalidation,
// allocfree, errwrap). It speaks two dialects:
//
// As a vet tool, implementing the cmd/go unitchecker protocol — the -V=full
// and -flags probes plus the JSON .cfg package description — so the whole
// module is checked with the standard driver and its caching:
//
//	go build -o bin/vetals ./cmd/vetals
//	go vet -vettool=bin/vetals ./...
//
// Standalone, walking the module without invoking go vet:
//
//	vetals ./...
//	vetals -json ./...   # diagnostics as JSONL for cross-commit diffing
//
// The protocol is implemented by hand because the container build vendors
// no third-party modules (golang.org/x/tools is unavailable). Since PR 6
// both dialects are type-aware: the unitchecker path type-checks each unit
// against the export data cmd/go already compiled for its dependencies
// (cfg.PackageFile/ImportMap), and the standalone path loads the whole
// module with lint.Loader (source type-check in dependency order, stdlib
// via `go list -export`). Analyzers are fact-free, so the .vetx facts file
// the driver expects is written empty.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"batchals/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	var rest []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			// Probe from cmd/go's tool-ID computation: the reply must be
			// "<name> version <id>".
			fmt.Fprintln(stdout, "vetals version v2")
			return 0
		case arg == "-flags":
			// Probe from cmd/go's flag parser: JSON list of tool flags.
			fmt.Fprintln(stdout, "[]")
			return 0
		case arg == "-json" || arg == "--json":
			jsonOut = true
		default:
			rest = append(rest, arg)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheckerMode(rest[0], stderr)
	}
	return standaloneMode(rest, jsonOut, stdout, stderr)
}

// vetConfig mirrors the fields of the unitchecker JSON package description
// this tool needs; unknown fields are ignored. ImportMap translates source
// import paths to canonical package paths; PackageFile maps canonical
// paths to the export data cmd/go compiled for the build.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// unitcheckerMode analyses one package described by a cmd/go .cfg file.
// Exit status: 0 clean, 2 diagnostics, 1 operational failure.
func unitcheckerMode(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "vetals:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "vetals: %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver caches analysis facts in a .vetx file and requires it to
	// exist; the analyzers are fact-free, so an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "vetals:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency package: facts only, nothing to report
	}

	// Test variants carry an " [pkg.test]" suffix on the import path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	fset := token.NewFileSet()
	var files []*ast.File
	pkgName := ""
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "vetals:", err)
			return 1
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}

	unit := &lint.Unit{Fset: fset, PkgPath: pkgPath, PkgName: pkgName, Files: files}
	typeCheckUnit(unit, &cfg, fset, files)
	diags := lint.RunUnit(unit, lint.All())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typeCheckUnit types the unit's files against the export data cmd/go
// compiled for its dependencies. cmd/go vets a package only after its
// dependencies built, so the export files exist; a failure here degrades
// the unit to syntax-only (type-aware analyzers no-op) rather than
// breaking the vet run.
func typeCheckUnit(u *lint.Unit, cfg *vetConfig, fset *token.FileSet, files []*ast.File) {
	if len(cfg.PackageFile) == 0 {
		return
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("vetals: no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	pkg, _ := conf.Check(u.PkgPath, fset, files, info)
	u.Pkg, u.Info = pkg, info
}

// standaloneMode loads the module rooted at the working directory (or the
// nearest parent with a go.mod) with full type information and analyses
// every unit. Patterns are accepted for familiarity but only "./..."
// semantics are implemented. Exit status: 0 clean, 2 diagnostics, 1
// operational failure (including units that fail to type-check).
func standaloneMode(args []string, jsonOut bool, stdout, stderr io.Writer) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "vetals:", err)
		return 1
	}
	_ = args // everything under the module is checked

	loader := &lint.Loader{Root: root, GoListDir: root}
	units, err := loader.Load()
	if err != nil {
		fmt.Fprintln(stderr, "vetals:", err)
		return 1
	}
	broken := 0
	var all []lint.Diagnostic
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			broken++
			fmt.Fprintf(stderr, "vetals: %s: %v\n", u.PkgPath, terr)
		}
		all = append(all, lint.RunUnit(u, lint.All())...)
	}
	lint.SortDiagnostics(all)
	if jsonOut {
		enc := json.NewEncoder(stdout)
		for _, d := range all {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintln(stderr, "vetals:", err)
				return 1
			}
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	switch {
	case broken > 0:
		return 1
	case len(all) > 0:
		return 2
	}
	return 0
}

// findModuleRoot locates the enclosing go.mod and returns its directory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
