package analyze_test

import (
	"strings"
	"testing"

	"batchals/internal/analyze"
	"batchals/internal/bench"
	"batchals/internal/benchfmt"
	"batchals/internal/circuit"
)

// ISCAS'85 c17: 5 inputs, 6 NAND gates, 2 outputs. Its reconvergent
// fanouts are textbook material: stems G3 and G11 reconverge (at G22 and
// G23 respectively); stem G16 branches to disjoint outputs.
const c17 = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func parseC17(t *testing.T) *circuit.Network {
	t.Helper()
	n, err := benchfmt.Parse(strings.NewReader(c17), "c17")
	if err != nil {
		t.Fatalf("parse c17: %v", err)
	}
	return n
}

func TestTreeCircuitsCertifyFullyExact(t *testing.T) {
	// A balanced XOR tree: every node has a single fanout, so every cone
	// is a path and the whole circuit must be certified exact.
	trees := map[string]*circuit.Network{
		"par16": bench.Parity(16),
		"dec4":  bench.Decoder(4), // inverter branches never remerge
	}
	// A hand-built AND/OR tree.
	hand := circuit.New("tree")
	var leaves []circuit.NodeID
	for i := 0; i < 8; i++ {
		leaves = append(leaves, hand.AddInput("i"+string(rune('0'+i))))
	}
	l1 := []circuit.NodeID{
		hand.AddGate(circuit.KindAnd, leaves[0], leaves[1]),
		hand.AddGate(circuit.KindOr, leaves[2], leaves[3]),
		hand.AddGate(circuit.KindAnd, leaves[4], leaves[5]),
		hand.AddGate(circuit.KindOr, leaves[6], leaves[7]),
	}
	l2 := []circuit.NodeID{
		hand.AddGate(circuit.KindOr, l1[0], l1[1]),
		hand.AddGate(circuit.KindAnd, l1[2], l1[3]),
	}
	hand.AddOutput("f", hand.AddGate(circuit.KindXor, l2[0], l2[1]))
	trees["hand-tree"] = hand

	for name, n := range trees {
		cert := analyze.ExactnessCertificate(n)
		if cert.Fraction() != 1 {
			t.Errorf("%s: want 100%% exact, got %d/%d", name, cert.NumExact(), cert.NumNodes())
		}
		rep := analyze.Run(n)
		if rep.Errors() != 0 || rep.Warnings() != 0 {
			t.Errorf("%s: unexpected findings: %v", name, rep.Diags)
		}
	}
}

func TestC17ReconvergentStems(t *testing.T) {
	n := parseC17(t)
	stems := analyze.ReconvergentStems(n)

	byName := map[string]analyze.Stem{}
	for _, s := range stems {
		byName[n.NameOf(s.Node)] = s
	}
	if len(stems) != 3 {
		t.Fatalf("want 3 multi-fanout stems (G3, G11, G16), got %d: %v", len(stems), byName)
	}
	for _, want := range []struct {
		name    string
		reconv  bool
		mergeAt string // "" when not reconvergent
	}{
		{"G3", true, "G22"},
		{"G11", true, "G23"},
		{"G16", false, ""},
	} {
		s, ok := byName[want.name]
		if !ok {
			t.Errorf("stem %s not reported", want.name)
			continue
		}
		if s.Reconvergent != want.reconv {
			t.Errorf("stem %s: reconvergent=%v, want %v", want.name, s.Reconvergent, want.reconv)
		}
		if want.reconv && n.NameOf(s.MergePoint) != want.mergeAt {
			t.Errorf("stem %s: merge at %s, want %s", want.name, n.NameOf(s.MergePoint), want.mergeAt)
		}
	}

	// The certificate must agree with the stems: nodes whose cone contains
	// a reconvergence (G3, G11, and G6 which feeds only G11) are not
	// exact; everything else is.
	cert := analyze.ExactnessCertificate(n)
	wantExact := map[string]bool{
		"G1": true, "G2": true, "G3": false, "G6": false, "G7": true,
		"G10": true, "G11": false, "G16": true, "G19": true,
		"G22": true, "G23": true,
	}
	for name, want := range wantExact {
		id := n.FindByName(name)
		if id == circuit.InvalidNode {
			t.Fatalf("node %s missing", name)
		}
		if got := cert.Exact(id); got != want {
			t.Errorf("exact(%s) = %v, want %v", name, got, want)
		}
	}
	if cert.NumExact() != 8 || cert.NumNodes() != 11 {
		t.Errorf("certificate counts: %d/%d, want 8/11", cert.NumExact(), cert.NumNodes())
	}
}

func TestC17PostDominators(t *testing.T) {
	n := parseC17(t)
	ipdom := analyze.PostDominators(n)
	get := func(name string) circuit.NodeID { return ipdom[n.FindByName(name)] }

	if got := get("G10"); n.NameOf(got) != "G22" {
		t.Errorf("ipdom(G10) = %v, want G22", got)
	}
	if got := get("G19"); n.NameOf(got) != "G23" {
		t.Errorf("ipdom(G19) = %v, want G23", got)
	}
	// G3's branches only meet beyond the outputs (virtual sink).
	if got := get("G3"); got != circuit.InvalidNode {
		t.Errorf("ipdom(G3) = %v (%s), want virtual sink", got, n.NameOf(got))
	}
}

func TestCyclicNetworkRejectedWithCycleNamed(t *testing.T) {
	n := circuit.New("cyclic")
	x := n.AddInput("x")
	y := n.AddInput("y")
	a := n.AddGate(circuit.KindAnd, x, y)
	n.SetName(a, "a")
	b := n.AddGate(circuit.KindNot, a)
	n.SetName(b, "b")
	n.AddOutput("f", b)
	// Rewire a's first fanin from x to b: a -> b -> a is now a cycle.
	// (ReplaceFanin performs no cycle check, unlike ReplaceNode.)
	n.ReplaceFanin(a, x, b)

	cyc := analyze.FindCycle(n)
	if cyc == nil {
		t.Fatal("FindCycle missed the a->b->a cycle")
	}
	names := map[string]bool{}
	for _, id := range cyc {
		names[n.NameOf(id)] = true
	}
	if !names["a"] || !names["b"] || len(cyc) != 2 {
		t.Errorf("cycle = %v, want the {a, b} loop", cyc)
	}

	rep := analyze.Run(n)
	if !rep.Cyclic || rep.Errors() != 1 {
		t.Fatalf("Run: Cyclic=%v Errors=%d, want true/1 (%v)", rep.Cyclic, rep.Errors(), rep.Diags)
	}
	msg := rep.Diags[0].Msg
	if !strings.Contains(msg, "a") || !strings.Contains(msg, "b") || !strings.Contains(msg, "->") {
		t.Errorf("cycle diagnostic does not name the cycle: %q", msg)
	}
	if rep.Cert != nil || rep.FFR != nil || rep.Stems != nil {
		t.Error("cyclic report must not carry decompositions")
	}
}

func TestStructuralDefects(t *testing.T) {
	n := circuit.New("defects")
	i0 := n.AddInput("i0")
	i1 := n.AddInput("i1")
	n.AddInput("unused")
	g := n.AddGate(circuit.KindAnd, i0, i1)
	n.AddOutput("f", g)

	// Dangling inverter: no fanouts, no output binding.
	d := n.AddGate(circuit.KindNot, i0)
	n.SetName(d, "dang")
	// Unreachable pair: u1 feeds u2, u2 dangles.
	u1 := n.AddGate(circuit.KindNot, i1)
	n.SetName(u1, "u1")
	u2 := n.AddGate(circuit.KindNot, u1)
	n.SetName(u2, "u2")
	// Floating output: driven by a constant cone.
	c := n.AddConst(true)
	fo := n.AddGate(circuit.KindBuf, c)
	n.AddOutput("k", fo)

	rep := analyze.Run(n)
	if rep.Errors() != 0 {
		t.Fatalf("no errors expected, got %v", rep.Diags)
	}
	found := map[string]int{}
	for _, diag := range rep.Diags {
		found[diag.Pass]++
	}
	if found["dangling"] != 2 { // dang and u2 both dangle
		t.Errorf("dangling findings = %d, want 2 (%v)", found["dangling"], rep.Diags)
	}
	if found["unreachable"] != 1 { // u1 has a fanout but cannot reach an output
		t.Errorf("unreachable findings = %d, want 1 (%v)", found["unreachable"], rep.Diags)
	}
	if found["floating-output"] != 1 {
		t.Errorf("floating-output findings = %d, want 1 (%v)", found["floating-output"], rep.Diags)
	}
	if found["unused-input"] != 1 {
		t.Errorf("unused-input findings = %d, want 1 (%v)", found["unused-input"], rep.Diags)
	}
}

func TestFFRDecomposition(t *testing.T) {
	// Chain i0 -> a -> b -> output: one region rooted at b.
	n := circuit.New("chain")
	i0 := n.AddInput("i0")
	a := n.AddGate(circuit.KindNot, i0)
	b := n.AddGate(circuit.KindNot, a)
	n.AddOutput("f", b)
	f := analyze.ComputeFFRs(n)
	if f.NumRegions() != 1 || f.Root(i0) != b || f.Root(a) != b || f.Root(b) != b {
		t.Errorf("chain: regions=%d roots=(%v,%v,%v), want one region rooted at %v",
			f.NumRegions(), f.Root(i0), f.Root(a), f.Root(b), b)
	}
	if f.Size(b) != 3 || f.LargestSize() != 3 {
		t.Errorf("chain: size(b)=%d largest=%d, want 3/3", f.Size(b), f.LargestSize())
	}

	// A stem splits regions: i0 feeds two inverters, each an output.
	n2 := circuit.New("split")
	j0 := n2.AddInput("j0")
	a1 := n2.AddGate(circuit.KindNot, j0)
	a2 := n2.AddGate(circuit.KindNot, j0)
	n2.AddOutput("p", a1)
	n2.AddOutput("q", a2)
	f2 := analyze.ComputeFFRs(n2)
	if f2.NumRegions() != 3 {
		t.Errorf("split: regions=%d, want 3", f2.NumRegions())
	}
	if f2.Root(j0) != j0 || f2.SameRegion(a1, a2) {
		t.Errorf("split: stem must be its own root and branches separate regions")
	}

	// c17 has 3 stems + 2 output drivers among gates: regions must cover
	// every live node exactly once.
	c := parseC17(t)
	fc := analyze.ComputeFFRs(c)
	total := 0
	for _, r := range fc.Roots() {
		total += fc.Size(r)
	}
	if total != c.NumNodes() {
		t.Errorf("c17: FFR sizes sum to %d, want %d live nodes", total, c.NumNodes())
	}
}

// Registered benchmarks must all be clean: zero errors and zero warnings.
func TestRegisteredBenchmarksLintClean(t *testing.T) {
	for _, name := range bench.Names() {
		n, err := bench.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := analyze.Run(n)
		if rep.Errors() != 0 || rep.Warnings() != 0 {
			var bad []string
			for _, d := range rep.Diags {
				if d.Sev != analyze.SevInfo {
					bad = append(bad, d.String())
				}
			}
			t.Errorf("%s: %v", name, bad)
		}
	}
}
