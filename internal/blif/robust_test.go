package blif

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics: arbitrary dot-directive soup must produce an error
// or a valid network, never a panic.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	pieces := []string{
		".model", ".inputs", ".outputs", ".names", ".end", "m", "a b", "f",
		"1- 1", "0 1", "11 1", "\n", " ", "\\\n", "#c", "1", "-", ".latch",
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		for i := 0; i < r.Intn(50); i++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v\ninput: %q", trial, p, sb.String())
				}
			}()
			n, err := Parse(strings.NewReader(sb.String()))
			if err == nil && n.Validate() != nil {
				t.Fatalf("trial %d: accepted invalid network", trial)
			}
		}()
	}
}
