package analyze

import "batchals/internal/circuit"

// checkStructure runs the defect-detection passes that do not need a
// decomposition: dangling gates, logic unreachable from any output,
// floating (constant-driven) outputs and unused primary inputs. Appends
// diagnostics to r.
func checkStructure(n *circuit.Network, r *Report) {
	reach := reachableFromOutputs(n)

	if n.NumOutputs() == 0 {
		r.add("structure", SevError, circuit.InvalidNode, "network %q has no primary outputs", n.Name)
	}

	var dangling, unreachable, unusedIn []circuit.NodeID
	for _, id := range n.LiveNodes() {
		k := n.Kind(id)
		switch {
		case k == circuit.KindInput:
			if len(n.Fanouts(id)) == 0 && !reach[id] {
				unusedIn = append(unusedIn, id)
			}
		case k.IsGate() || k == circuit.KindConst0 || k == circuit.KindConst1:
			if reach[id] {
				continue
			}
			if len(n.Fanouts(id)) == 0 {
				dangling = append(dangling, id)
			} else {
				unreachable = append(unreachable, id)
			}
		}
	}
	sortIDs(dangling)
	sortIDs(unreachable)
	sortIDs(unusedIn)

	for _, id := range dangling {
		r.add("dangling", SevWarning, id,
			"node %s (%v) has no fanouts and drives no output", n.NameOf(id), n.Kind(id))
	}
	for _, id := range unreachable {
		r.add("unreachable", SevWarning, id,
			"node %s (%v) cannot reach any primary output", n.NameOf(id), n.Kind(id))
	}
	for _, id := range unusedIn {
		r.add("unused-input", SevInfo, id, "primary input %s is never used", n.NameOf(id))
	}

	checkFloatingOutputs(n, r)
}

// reachableFromOutputs marks every node in the fanin cone of some primary
// output. Shared by checkStructure and checkDeadFFRs.
func reachableFromOutputs(n *circuit.Network) []bool {
	reach := make([]bool, n.NumSlots())
	var stack []circuit.NodeID
	for _, o := range n.Outputs() {
		if !reach[o.Node] {
			reach[o.Node] = true
			stack = append(stack, o.Node)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range n.Fanins(id) {
			if !reach[f] {
				reach[f] = true
				stack = append(stack, f)
			}
		}
	}
	return reach
}

func checkFloatingOutputs(n *circuit.Network, r *Report) {
	// Floating outputs: a primary output whose fanin cone contains no
	// primary input computes a constant — almost always a netlist bug.
	for i, o := range n.Outputs() {
		cone := n.TransitiveFaninCone(o.Node)
		hasInput := false
		for _, in := range n.Inputs() {
			if cone[in] {
				hasInput = true
				break
			}
		}
		if !hasInput {
			r.add("floating-output", SevWarning, o.Node,
				"output %d (%s) depends on no primary input (constant-driven)", i, o.Name)
		}
	}
}
