package core

import (
	"math/rand"
	"sync"
	"testing"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/par"
	"batchals/internal/sim"
)

func cpmsEqual(t *testing.T, n *circuit.Network, a, b *CPM) {
	t.Helper()
	if a.M() != b.M() || a.NumOutputs() != b.NumOutputs() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)", a.M(), a.NumOutputs(), b.M(), b.NumOutputs())
	}
	for _, id := range n.TopoOrder() {
		for o := 0; o < a.NumOutputs(); o++ {
			if !a.Prop(id, o).Equal(b.Prop(id, o)) {
				t.Fatalf("P[%d][%d] differs:\n seq %s\n par %s",
					id, o, a.Prop(id, o), b.Prop(id, o))
			}
		}
		if !a.AnyProp(id).Equal(b.AnyProp(id)) {
			t.Fatalf("AnyProp[%d] differs", id)
		}
	}
}

func TestBuildParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for _, m := range []int{64, 65, 200, 1000} {
		for trial := 0; trial < 3; trial++ {
			n := randomDAG(t, r, 8, 60)
			p := sim.RandomPatterns(8, m, int64(m)+int64(trial))
			vals := sim.Simulate(n, p)
			want := Build(n, vals)
			for _, workers := range []int{2, 4, 7} {
				pool := par.NewPool(workers)
				got := BuildParallel(n, vals, pool)
				pool.Close()
				cpmsEqual(t, n, want, got)
			}
		}
	}
}

func TestBuildParallelNilPoolFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	n := randomDAG(t, r, 6, 30)
	vals := sim.Simulate(n, sim.RandomPatterns(6, 256, 5))
	cpmsEqual(t, n, Build(n, vals), BuildParallel(n, vals, nil))
}

// corruptedState returns an error state with a non-trivial WrongAny mask by
// flipping random bits of the approximate output matrix, so the partial-sum
// properties exercise both the newly-wrong and fully-corrected cases of
// Algorithm 1.
func corruptedState(r *rand.Rand, st *emetric.State) *emetric.State {
	v := st.V.Clone()
	for o := 0; o < v.Rows(); o++ {
		row := v.Row(o)
		for i := 0; i < row.Len(); i++ {
			if r.Intn(16) == 0 {
				row.Flip(i)
			}
		}
	}
	return emetric.NewState(st.U.Clone(), v)
}

// randomWordPartition returns sorted word cut points 0 = c[0] < ... <
// c[len-1] = words, a random word-aligned partition of the pattern space.
func randomWordPartition(r *rand.Rand, words, parts int) []int {
	if parts > words {
		parts = words
	}
	cutset := map[int]bool{0: true, words: true}
	for len(cutset) < parts+1 {
		cutset[1+r.Intn(words-1)] = true
	}
	cuts := make([]int, 0, len(cutset))
	for c := range cutset {
		cuts = append(cuts, c)
	}
	for i := range cuts {
		for j := i + 1; j < len(cuts); j++ {
			if cuts[j] < cuts[i] {
				cuts[i], cuts[j] = cuts[j], cuts[i]
			}
		}
	}
	return cuts
}

// TestDeltaERPartialSumsMatchFull is the metamorphic property pinning the
// sharded ER reduction: for any word-aligned partition of the pattern
// space, summing DeltaERPartial's integer counts and normalising must equal
// DeltaER exactly — not approximately.
func TestDeltaERPartialSumsMatchFull(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		m := []int{192, 500, 1000}[trial%3]
		_, approx, _, vals, st0 := buildApproxPair(t, r, 8, 50, m, int64(trial))
		st := corruptedState(r, st0)
		c := Build(approx, vals)
		gates := gatesOf(approx)
		words := bitvec.Words(m)
		for k := 0; k < 10; k++ {
			nx := gates[r.Intn(len(gates))]
			change := bitvec.New(m)
			for i := 0; i < m; i++ {
				if r.Intn(3) == 0 {
					change.Set(i, true)
				}
			}
			want := c.DeltaER(nx, change, st)
			cuts := randomWordPartition(r, words, 1+r.Intn(6))
			var inc, dec int64
			for s := 0; s+1 < len(cuts); s++ {
				i, d := c.DeltaERPartial(nx, change.WordsSlice(), st, cuts[s], cuts[s+1])
				inc += i
				dec += d
			}
			got := (float64(inc) - float64(dec)) / float64(m)
			if got != want {
				t.Fatalf("trial %d node %d cuts %v: partial sum %v != DeltaER %v",
					trial, nx, cuts, got, want)
			}
		}
	}
}

// TestDeltaAEMPartialSumsMatchFull pins the sharded AEM reduction the same
// way: partial magnitude sums combined in partition order and normalised
// must reproduce DeltaAEM bit for bit (the per-pattern contributions are
// integer-valued, so the regrouped sum is exactly associative).
func TestDeltaAEMPartialSumsMatchFull(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		m := []int{192, 500, 1000}[trial%3]
		_, approx, _, vals, st0 := buildApproxPair(t, r, 8, 40, m, int64(trial)+100)
		if approx.NumOutputs() > 63 {
			continue
		}
		st := corruptedState(r, st0)
		c := Build(approx, vals)
		c.EnsureAEMColumns(st)
		gates := gatesOf(approx)
		words := bitvec.Words(m)
		for k := 0; k < 10; k++ {
			nx := gates[r.Intn(len(gates))]
			change := bitvec.New(m)
			for i := 0; i < m; i++ {
				if r.Intn(3) == 0 {
					change.Set(i, true)
				}
			}
			want := c.DeltaAEM(nx, change, st)
			cuts := randomWordPartition(r, words, 1+r.Intn(6))
			var total float64
			for s := 0; s+1 < len(cuts); s++ {
				total += c.DeltaAEMPartial(nx, change.WordsSlice(), st, cuts[s], cuts[s+1])
			}
			if got := total / float64(m); got != want {
				t.Fatalf("trial %d node %d cuts %v: partial sum %v != DeltaAEM %v",
					trial, nx, cuts, got, want)
			}
		}
	}
}

func TestDeltaAEMPartialRequiresEnsure(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	_, approx, _, vals, st := buildApproxPair(t, r, 6, 25, 128, 2)
	c := Build(approx, vals)
	defer func() {
		if recover() == nil {
			t.Fatal("DeltaAEMPartial without EnsureAEMColumns must panic")
		}
	}()
	chg := bitvec.New(128)
	chg.Fill()
	c.DeltaAEMPartial(gatesOf(approx)[0], chg.WordsSlice(), st, 0, 2)
}

// TestRaceConcurrentCPMQueries is the regression test for the latent
// lazy-cache sharing bugs: before AnyProp and Certificate moved to atomic
// pointers, concurrent first queries raced their plain cache writes and
// this test failed under -race. It must keep passing with the race
// detector enabled (CI runs it with -race at GOMAXPROCS=2 too).
func TestRaceConcurrentCPMQueries(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	_, approx, _, vals, st0 := buildApproxPair(t, r, 8, 50, 512, 13)
	st := corruptedState(r, st0)
	c := Build(approx, vals)
	c.EnsureAEMColumns(st)
	gates := gatesOf(approx)
	aem := approx.NumOutputs() <= 63
	words := bitvec.Words(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			chg := bitvec.New(512)
			for i := 0; i < 512; i += 3 {
				chg.Set(i, true)
			}
			for k := 0; k < 200; k++ {
				nx := gates[rr.Intn(len(gates))]
				c.AnyProp(nx)
				c.Observability(nx)
				c.ExactFor(nx)
				w0 := rr.Intn(words)
				c.DeltaERPartial(nx, chg.WordsSlice(), st, w0, words)
				if aem {
					c.DeltaAEMPartial(nx, chg.WordsSlice(), st, w0, words)
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
