package batchals

// BenchmarkIncrementalIterations measures the incremental iteration engine
// end to end on c880: a capped multi-iteration SASIMI run with the engine
// on (cone-scoped resimulation, dirty-region CPM refresh, cached candidate
// gathering) versus the per-iteration full rebuild. Both configurations
// produce bit-identical results (pinned by internal/sasimi's differential
// suite), so the only difference is time; the incremental sub-benchmark
// reports speedup_x against a full-rebuild baseline measured in the same
// process.

import (
	"sync"
	"testing"
	"time"
)

const (
	incBenchPatterns = 2000
	incBenchIters    = 24
)

func incrementalRunOnce(b *testing.B, golden *Network, mode IncrementalMode) {
	b.Helper()
	res, err := Approximate(golden, Options{
		Metric:        ErrorRate,
		Threshold:     0.05,
		NumPatterns:   incBenchPatterns,
		Seed:          1,
		Workers:       1,
		MaxIterations: incBenchIters,
		Incremental:   mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.NumIterations == 0 {
		b.Fatal("no iterations accepted on c880")
	}
}

// incBenchBaseline memoises the full-rebuild wall time so the incremental
// sub-benchmark's speedup_x has a stable denominator.
var incBenchBaseline struct {
	once sync.Once
	ns   float64
}

func BenchmarkIncrementalIterations(b *testing.B) {
	golden, err := Benchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	incBenchBaseline.once.Do(func() {
		incrementalRunOnce(b, golden, IncrementalOff) // warm caches
		start := time.Now()
		incrementalRunOnce(b, golden, IncrementalOff)
		incBenchBaseline.ns = float64(time.Since(start).Nanoseconds())
	})

	for _, cfg := range []struct {
		name string
		mode IncrementalMode
	}{
		{"full-rebuild", IncrementalOff},
		{"incremental", IncrementalOn},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				incrementalRunOnce(b, golden, cfg.mode)
			}
			elapsed := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			if incBenchBaseline.ns > 0 {
				b.ReportMetric(incBenchBaseline.ns/elapsed, "speedup_x")
			}
		})
	}
}
