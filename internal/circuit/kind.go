// Package circuit provides the gate-level logic network used throughout the
// library: a combinational DAG of typed nodes with maintained fanout lists,
// topological ordering, levelisation, MFFC computation and the structural
// editing operations (substitution, constant forcing, dead-cone sweeping)
// that approximate logic synthesis flows perform.
package circuit

import "fmt"

// Kind identifies the function of a node.
type Kind uint8

// Node kinds. Gate kinds other than Not/Buf/Mux accept two or more fanins.
const (
	KindFree   Kind = iota // deleted node slot
	KindInput              // primary input, no fanins
	KindConst0             // constant zero, no fanins
	KindConst1             // constant one, no fanins
	KindBuf                // buffer, one fanin
	KindNot                // inverter, one fanin
	KindAnd                // n-ary AND
	KindOr                 // n-ary OR
	KindNand               // n-ary NAND
	KindNor                // n-ary NOR
	KindXor                // n-ary XOR (odd parity)
	KindXnor               // n-ary XNOR (even parity)
	KindMux                // MUX(sel, d0, d1): sel ? d1 : d0
	numKinds
)

var kindNames = [numKinds]string{
	KindFree:   "FREE",
	KindInput:  "INPUT",
	KindConst0: "CONST0",
	KindConst1: "CONST1",
	KindBuf:    "BUF",
	KindNot:    "NOT",
	KindAnd:    "AND",
	KindOr:     "OR",
	KindNand:   "NAND",
	KindNor:    "NOR",
	KindXor:    "XOR",
	KindXnor:   "XNOR",
	KindMux:    "MUX",
}

// String returns the canonical upper-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsGate reports whether the kind is a logic gate (has fanins).
func (k Kind) IsGate() bool {
	switch k {
	case KindBuf, KindNot, KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor, KindMux:
		return true
	}
	return false
}

// IsConst reports whether the kind is a constant source.
func (k Kind) IsConst() bool { return k == KindConst0 || k == KindConst1 }

// ArityOK reports whether a node of this kind may have n fanins.
func (k Kind) ArityOK(n int) bool {
	switch k {
	case KindInput, KindConst0, KindConst1:
		return n == 0
	case KindBuf, KindNot:
		return n == 1
	case KindMux:
		return n == 3
	case KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor:
		return n >= 2
	}
	return false
}

// Eval computes the single-bit output of a gate of kind k given its fanin
// values. It is the scalar reference semantics against which the word-level
// simulator is tested.
func (k Kind) Eval(in []bool) bool {
	switch k {
	case KindConst0:
		return false
	case KindConst1:
		return true
	case KindBuf:
		return in[0]
	case KindNot:
		return !in[0]
	case KindAnd, KindNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if k == KindNand {
			return !v
		}
		return v
	case KindOr, KindNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if k == KindNor {
			return !v
		}
		return v
	case KindXor, KindXnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if k == KindXnor {
			return !v
		}
		return v
	case KindMux:
		if in[0] {
			return in[2]
		}
		return in[1]
	}
	panic(fmt.Sprintf("circuit: Eval on non-gate kind %v", k))
}

// EvalWord computes 64 parallel evaluations of a gate of kind k, one per
// bit, given one word per fanin.
func (k Kind) EvalWord(in []uint64) uint64 {
	switch k {
	case KindConst0:
		return 0
	case KindConst1:
		return ^uint64(0)
	case KindBuf:
		return in[0]
	case KindNot:
		return ^in[0]
	case KindAnd, KindNand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		if k == KindNand {
			return ^v
		}
		return v
	case KindOr, KindNor:
		v := uint64(0)
		for _, w := range in {
			v |= w
		}
		if k == KindNor {
			return ^v
		}
		return v
	case KindXor, KindXnor:
		v := uint64(0)
		for _, w := range in {
			v ^= w
		}
		if k == KindXnor {
			return ^v
		}
		return v
	case KindMux:
		return (in[0] & in[2]) | (^in[0] & in[1])
	}
	panic(fmt.Sprintf("circuit: EvalWord on non-gate kind %v", k))
}
