package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("counter lookup is not get-or-create")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	h := r.Histogram("h", []float64{0, 1, 10})
	for _, v := range []float64{-3, 0, 0.5, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// SearchFloat64s puts v == bound into the bucket whose upper bound it
	// is: -3 and 0 land in bucket 0 ((-inf,0]), 0.5 in (0,1], 5 in (1,10],
	// 100 in the +Inf bucket.
	want := []int64{2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Min != -3 || s.Max != 100 || s.Sum != 102.5 {
		t.Fatalf("min/max/sum = %v/%v/%v", s.Min, s.Max, s.Sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 0})
}

// TestRegistryConcurrent hammers one registry from 8 goroutines doing
// Inc/Observe/Set/Snapshot concurrently; under -race (the CI test mode)
// this proves the registry is data-race free, and the final counter value
// proves no increment was lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_hist", []float64{0, 0.5, 1}).Observe(float64(i%3) / 2)
				r.Gauge("shared_gauge").Set(float64(g))
				if i%100 == 0 {
					snap := r.Snapshot()
					if snap.Counters["shared_total"] < 0 {
						t.Error("negative counter in snapshot")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["shared_total"]; got != goroutines*perG {
		t.Fatalf("lost increments: %d, want %d", got, goroutines*perG)
	}
	if got := snap.Histograms["shared_hist"].Count; got != goroutines*perG {
		t.Fatalf("lost observations: %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge("b").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Counters["a_total"] != 7 || back.Gauges["b"] != 1.5 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	if h := back.Histograms["h"]; h.Count != 1 || len(h.Counts) != 2 {
		t.Fatalf("histogram round trip: %+v", back.Histograms["h"])
	}
}

func TestSnapshotPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Counter(`phase_ns{phase="simulate"}`).Add(1000)
	h := r.Histogram(`drift{cert="exact"}`, []float64{-0.1, 0, 0.1})
	h.Observe(0)
	h.Observe(0.05)
	plain := r.Histogram("latency", []float64{1, 2})
	plain.Observe(1.5)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"runs_total 3\n",
		`phase_ns{phase="simulate"} 1000` + "\n",
		`drift_bucket{cert="exact",le="-0.1"} 0` + "\n",
		`drift_bucket{cert="exact",le="0"} 1` + "\n",
		`drift_bucket{cert="exact",le="0.1"} 2` + "\n",
		`drift_bucket{cert="exact",le="+Inf"} 2` + "\n",
		`drift_count{cert="exact"} 2` + "\n",
		`latency_bucket{le="1"} 0` + "\n",
		`latency_bucket{le="+Inf"} 1` + "\n",
		"latency_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{}") {
		t.Fatalf("empty label braces in output:\n%s", out)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() not a singleton")
	}
}
