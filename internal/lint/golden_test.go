package lint_test

import (
	"path/filepath"
	"testing"

	"batchals/internal/lint"
	"batchals/internal/lint/linttest"
)

// TestGolden runs every analyzer against its fixture mini-module under
// testdata/. Each fixture declares `module batchals` so its stub packages
// occupy the import paths the type-aware analyzers match on; positive
// cases carry // want comments, negative cases none — linttest fails on
// both missed and surplus diagnostics.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *lint.Analyzer
	}{
		{"bitveclen", lint.BitvecLen},
		{"randseed", lint.RandSeed},
		{"apipanic", lint.APIPanic},
		{"ctxflow", lint.CtxFlow},
		{"sharddisjoint", lint.ShardDisjoint},
		{"invalidation", lint.Invalidation},
		{"allocfree", lint.AllocFree},
		{"errwrap", lint.ErrWrap},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel() // each fixture shells out to `go list` once
			linttest.Run(t, filepath.Join("testdata", tc.dir), tc.analyzer)
		})
	}
}
