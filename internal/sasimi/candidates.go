package sasimi

import (
	"math/bits"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// Candidate is one substitution under consideration: replace every fanout
// of Target by Sub (inverted if Inverted) or by a constant when Sub is
// InvalidNode and Const is set.
type Candidate struct {
	Target   circuit.NodeID
	Sub      circuit.NodeID // InvalidNode for constant substitution
	Inverted bool           // substitute with NOT(Sub)
	Const    bool           // constant substitution; ConstVal gives the value
	ConstVal bool

	DiffProb float64 // local difference probability on the pattern set
	AreaGain float64 // area reclaimed by the substitution (may include inverter cost)
	Delta    float64 // estimated increased error (filled by the flow)
	Score    float64 // AreaGain / max(Delta, floor) ranking value

	// Exact is set (alongside Delta) when the estimate carries a
	// structural exactness certificate: for the batch estimator, the
	// target's output cone is reconvergence-free, so Delta equals the
	// exact resimulated value on this pattern set; for the full estimator
	// it is always true, for the local estimator never.
	Exact bool
}

// substituteValue returns the value vector the target would take, reusing
// scratch for the inverted/constant cases.
func (c *Candidate) substituteValue(vals *sim.Values, scratch *bitvec.Vec) *bitvec.Vec {
	switch {
	case c.Const:
		scratch.Zero()
		if c.ConstVal {
			scratch.Fill()
		}
		return scratch
	case c.Inverted:
		scratch.Not(vals.Node(c.Sub))
		return scratch
	default:
		return vals.Node(c.Sub)
	}
}

// gatherCandidates enumerates all admissible substitutions of the current
// network: for every gate target and every potential substitute signal
// (including complemented signals and the two constants), keep pairs that
//
//   - do not create a cycle (the substitute is not in the target's
//     transitive fanout cone),
//   - do not increase the circuit delay (substitute arrival, plus an
//     inverter for complemented substitution, within the target arrival),
//   - reclaim positive area,
//   - and look almost-identical on the pattern set: difference probability
//     at most cfg.SimilarityCap.
//
// A cheap prefix check on the first few simulation words rejects grossly
// dissimilar pairs before the full popcount.
func gatherCandidates(net *circuit.Network, vals *sim.Values, cfg *Config, arrival []float64, invDelay float64) []Candidate {
	m := vals.M
	targets := make([]circuit.NodeID, 0, net.NumNodes())
	subs := make([]circuit.NodeID, 0, net.NumNodes())
	for _, id := range net.LiveNodes() {
		k := net.Kind(id)
		if k.IsGate() {
			targets = append(targets, id)
			subs = append(subs, id)
		} else if k == circuit.KindInput {
			subs = append(subs, id)
		}
	}

	// MFFC per target, computed once. For the (uncommon) substitute that
	// lies inside the target's MFFC, the realised gain is smaller — the
	// substitute and the cone it exclusively supports stay live — so those
	// pairs recompute a pinned MFFC below.
	gain := make(map[circuit.NodeID]float64, len(targets))
	mffcSet := make(map[circuit.NodeID]map[circuit.NodeID]bool, len(targets))
	for _, t := range targets {
		g := 0.0
		set := make(map[circuit.NodeID]bool)
		for _, id := range net.MFFC(t) {
			g += cfg.Library.GateArea(net.Kind(id), len(net.Fanins(id)))
			set[id] = true
		}
		gain[t] = g
		mffcSet[t] = set
	}
	invArea := cfg.Library.GateArea(circuit.KindNot, 1)
	// pairGain returns the exact area reclaimed when t is replaced by s.
	pairGain := func(t, s circuit.NodeID) float64 {
		if !mffcSet[t][s] {
			return gain[t]
		}
		g := 0.0
		for _, id := range net.MFFCExcluding(t, s) {
			g += cfg.Library.GateArea(net.Kind(id), len(net.Fanins(id)))
		}
		return g
	}

	prefixWords := bitvec.Words(m)
	if prefixWords > 4 {
		prefixWords = 4
	}
	prefixBits := prefixWords * bitvec.WordBits
	if prefixBits > m {
		prefixBits = m
	}
	// Allow generous slack on the prefix estimate before rejecting.
	prefixCap := cfg.SimilarityCap*2 + 0.1

	var cands []Candidate
	diff := bitvec.New(m)
	for _, t := range targets {
		tv := vals.Node(t)
		tfo := net.TransitiveFanoutCone(t)
		baseGain := gain[t]
		if baseGain <= 0 {
			continue
		}
		tArr := arrival[t]

		// Constant substitutions: always delay-safe and cycle-safe.
		ones := tv.Count()
		p1 := float64(ones) / float64(m)
		if p0 := 1 - p1; p0 <= cfg.SimilarityCap {
			cands = append(cands, Candidate{Target: t, Sub: circuit.InvalidNode,
				Const: true, ConstVal: true, DiffProb: p0, AreaGain: baseGain})
		}
		if p1 <= cfg.SimilarityCap {
			cands = append(cands, Candidate{Target: t, Sub: circuit.InvalidNode,
				Const: true, ConstVal: false, DiffProb: p1, AreaGain: baseGain})
		}

		for _, s := range subs {
			if s == t || tfo[s] {
				continue
			}
			sv := vals.Node(s)
			// Prefix screen.
			if prefixWords > 0 {
				d := 0
				tw, sw := tv.WordsSlice(), sv.WordsSlice()
				for w := 0; w < prefixWords; w++ {
					d += bits.OnesCount64(tw[w] ^ sw[w])
				}
				frac := float64(d) / float64(prefixBits)
				if frac > prefixCap && (1-frac) > prefixCap {
					continue
				}
			}
			diff.Xor(tv, sv)
			dp := float64(diff.Count()) / float64(m)

			if dp <= cfg.SimilarityCap && arrival[s] <= tArr {
				if g := pairGain(t, s); g > 0 {
					cands = append(cands, Candidate{Target: t, Sub: s,
						DiffProb: dp, AreaGain: g})
				}
			}
			if idp := 1 - dp; idp <= cfg.SimilarityCap && arrival[s]+invDelay <= tArr {
				if g := pairGain(t, s) - invArea; g > 0 {
					cands = append(cands, Candidate{Target: t, Sub: s,
						Inverted: true, DiffProb: idp, AreaGain: g})
				}
			}
		}
	}

	// Deterministic order: most similar first, ties by larger gain, then ids.
	return sortAndCap(cands, cfg)
}
