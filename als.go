// Package batchals is a Go implementation of "Efficient Batch Statistical
// Error Estimation for Iterative Multi-level Approximate Logic Synthesis"
// (Su, Wu, Qian — DAC 2018).
//
// The library provides:
//
//   - a gate-level logic network with editing operations (internal/circuit),
//     bit-parallel simulation (internal/sim) and statistical error metrics
//     (internal/emetric);
//   - the paper's contribution — batch error estimation for all candidate
//     approximate transformations from a single Monte Carlo run plus a
//     change propagation matrix (internal/core);
//   - the SASIMI signal-substitution ALS flow with three interchangeable
//     estimators (batch / full-simulation / local), and a second
//     constant-setting flow (internal/sasimi, internal/snap);
//   - benchmark generators, .bench and BLIF I/O, a BDD engine for exact
//     analysis, and a harness regenerating every table and figure of the
//     paper (internal/bench, internal/benchfmt, internal/blif,
//     internal/bdd, internal/repro).
//
// This root package is a thin facade over those building blocks: enough to
// load or generate a circuit, run an approximation flow under an ER or AEM
// budget, and measure the result. Anything more specialised is one import
// below.
//
// Quick start:
//
//	golden, _ := batchals.Benchmark("mul8")
//	res, _ := batchals.Approximate(golden, batchals.Options{
//		Metric:    batchals.ErrorRate,
//		Threshold: 0.01,
//	})
//	fmt.Printf("area %.0f -> %.0f at measured ER %.3f%%\n",
//		res.OriginalArea, res.FinalArea, 100*res.FinalError)
package batchals

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"batchals/internal/bench"
	"batchals/internal/benchfmt"
	"batchals/internal/blif"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
)

// Typed validation sentinels: every flow entry point wraps these with
// context, so callers can branch with errors.Is regardless of which flow
// produced the error.
var (
	// ErrBadThreshold marks a threshold outside the metric's valid range.
	ErrBadThreshold = flow.ErrBadThreshold
	// ErrNoPatterns marks an empty Monte Carlo sample.
	ErrNoPatterns = flow.ErrNoPatterns
	// ErrUnknownBenchmark marks a Benchmark name that is not registered.
	ErrUnknownBenchmark = bench.ErrUnknownBenchmark
)

// Network is the gate-level circuit representation used throughout the
// library (re-exported from internal/circuit).
type Network = circuit.Network

// Metric selects the statistical error measure a flow optimises under.
type Metric = core.Metric

// The two statistical error measures of the paper.
const (
	ErrorRate         = core.MetricER
	AvgErrorMagnitude = core.MetricAEM
)

// Estimator selects how a flow estimates per-candidate errors.
type Estimator = sasimi.EstimatorKind

// Estimator choices: Batch is the paper's contribution, Full is the
// accurate per-candidate resimulation baseline, Local ignores logic
// masking (the behaviour of prior flows).
const (
	Batch = sasimi.EstimatorBatch
	Full  = sasimi.EstimatorFull
	Local = sasimi.EstimatorLocal
)

// Options configures Approximate. Threshold is required; everything else
// has sensible defaults (Batch estimator, M=10000 uniform patterns, seed 0).
type Options struct {
	// Metric is ErrorRate (default) or AvgErrorMagnitude.
	Metric Metric
	// Threshold is the error budget: a fraction in [0,1] for ErrorRate, an
	// absolute magnitude for AvgErrorMagnitude.
	Threshold float64
	// Estimator defaults to Batch.
	Estimator Estimator
	// NumPatterns is the Monte Carlo sample size M (default 10000).
	NumPatterns int
	// Seed makes the whole flow reproducible.
	Seed int64
	// Workers sizes the pattern-sharded worker pool running simulation,
	// CPM construction and batch scoring concurrently. 0 (the default)
	// uses all CPUs; 1 forces the sequential path. Results are
	// bit-identical at any worker count, so this is purely a throughput
	// knob.
	Workers int
	// KeepTrace records per-iteration details in Result.Iterations.
	KeepTrace bool
	// MaxIterations caps accepted transformations (0 = unlimited).
	MaxIterations int
	// VerifyTopK, when positive, re-checks the K best candidates of each
	// iteration with exact fanout-cone resimulation before committing —
	// the mitigation for the estimator's reconvergent-path inaccuracy.
	VerifyTopK int
	// Tracer, when non-nil, receives flow events (phase spans, iteration
	// summaries, candidate scores, accepted substitutions); see
	// NewJSONLTracer. nil disables event tracing at zero cost.
	Tracer Tracer
	// Metrics, when non-nil, collects flow metrics: iteration / candidate
	// counters, the five per-phase timers, and the estimator-drift
	// histograms split by the exactness certificate. Use NewMetrics for a
	// private registry or DefaultMetrics for the process-global one.
	Metrics *Metrics
	// Timeline, when non-nil, records a causal span timeline of the run:
	// per-worker busy/idle spans for every parallel dispatch, driver-side
	// phase spans, and the verify/apply/measure sections of each iteration.
	// Export it with WriteTrace (Chrome trace-event JSON, loadable in
	// Perfetto) or summarise it with timeline.Summarize. nil keeps the hot
	// paths span-free; results are bit-identical either way.
	Timeline *TimelineRecorder
	// CheckInvariants validates structural invariants (combinational
	// acyclicity) after every accepted substitution, turning latent
	// netlist-surgery bugs into immediate named-cycle errors.
	CheckInvariants bool
	// Incremental selects the incremental iteration engine (the default):
	// after each accepted substitution the flow resimulates only the
	// edit's fanout cones and refreshes only the dirty region of the CPM,
	// instead of rebuilding everything from scratch. Both settings are
	// bit-identical; IncrementalOff is an escape hatch and the reference
	// side of the differential tests.
	Incremental IncrementalMode
	// Partition, when non-nil, routes the run through the partitioned
	// flow: the netlist is cut along fanout-free-region boundaries, each
	// part is approximated independently under a slice of the error
	// budget, and the merged result is re-measured globally. ErrorRate
	// only; use Flow.PartitionReport for the per-part breakdown.
	Partition *PartitionOptions
}

// IncrementalMode switches the incremental iteration engine (re-exported
// from internal/sasimi).
type IncrementalMode = sasimi.IncrementalMode

// Incremental engine modes: Auto (zero value) and On enable it, Off forces
// the per-iteration full rebuild.
const (
	IncrementalAuto = sasimi.IncrementalAuto
	IncrementalOn   = sasimi.IncrementalOn
	IncrementalOff  = sasimi.IncrementalOff
)

// Tracer receives flow events (re-exported from internal/obs).
type Tracer = obs.Tracer

// Metrics is a concurrency-safe metrics registry, snapshotable as JSON or
// Prometheus text (re-exported from internal/obs).
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DefaultMetrics returns the process-global registry, which also carries
// the always-on simulation and CPM substrate counters.
func DefaultMetrics() *Metrics { return obs.Default() }

// NewJSONLTracer returns a Tracer that streams events to w as JSON Lines
// (one object per line, keyed by "ev"). Call Flush when the run ends.
func NewJSONLTracer(w io.Writer) *obs.JSONLTracer { return obs.NewJSONLTracer(w) }

// TimelineRecorder is a lock-free causal span recorder (re-exported from
// internal/obs/timeline). Attach one via Options.Timeline, then export the
// run's spans with WriteTrace or aggregate them with timeline.Summarize.
type TimelineRecorder = timeline.Recorder

// NewTimeline returns a span recorder sized for a flow run with the given
// worker count (0 = all CPUs): one lane per worker plus a driver lane,
// each with the default span capacity.
func NewTimeline(workers int) *TimelineRecorder {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return timeline.NewRecorder(workers+1, 0)
}

// Result is the outcome of an approximation flow (re-exported from
// internal/sasimi).
type Result = sasimi.Result

// Approximate runs the SASIMI flow with the configured estimator on a copy
// of golden and returns the approximate circuit whose measured error stays
// within opts.Threshold. It is a thin wrapper over NewFlow(...).Run; use
// the Flow API directly when you need the partition report or builder-
// style observability attachment.
func Approximate(golden *Network, opts Options) (*Result, error) {
	return ApproximateContext(context.Background(), golden, opts)
}

// ApproximateContext is Approximate with cancellation: the flow checks ctx
// at iteration boundaries and inside the parallel gather/score fan-outs,
// and returns ctx.Err() alongside the consistent partial result (accepted
// substitutions up to the cancellation point).
func ApproximateContext(ctx context.Context, golden *Network, opts Options) (*Result, error) {
	return NewFlow(golden, opts).Run(ctx)
}

// Benchmark builds one of the registered benchmark circuits by name
// (e.g. "rca32", "mul8", "alu4", "c880"). BenchmarkNames lists them.
func Benchmark(name string) (*Network, error) { return bench.ByName(name) }

// BenchmarkNames returns all registered benchmark names.
func BenchmarkNames() []string { return bench.Names() }

// ErrorReport carries all supported error measures between two circuits
// (re-exported from internal/emetric).
type ErrorReport = emetric.Report

// MeasureError estimates the error of approx against golden by Monte Carlo
// simulation with m patterns.
func MeasureError(golden, approx *Network, m int, seed int64) ErrorReport {
	p := sim.RandomPatterns(golden.NumInputs(), m, seed)
	return emetric.Measure(golden, approx, p)
}

// MeasureErrorExact computes the error of approx against golden by
// exhaustive enumeration. It panics for circuits with more than 26 inputs.
func MeasureErrorExact(golden, approx *Network) ErrorReport {
	return emetric.MeasureExact(golden, approx)
}

// Area returns the circuit's area under the default gate library.
func Area(n *Network) float64 { return cell.Default().NetworkArea(n) }

// Delay returns the circuit's critical-path delay under the default gate
// library.
func Delay(n *Network) float64 { return cell.Default().NetworkDelay(n) }

// Load reads a circuit from a file, selecting the format from the
// extension: ".bench" for ISCAS bench format, ".blif" for BLIF.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return Read(f, filepath.Ext(path), base)
}

// Read parses a circuit from r in the format given by ext (".bench" or
// ".blif"); name is used for .bench, which carries no model name.
func Read(r io.Reader, ext, name string) (*Network, error) {
	switch strings.ToLower(ext) {
	case ".bench":
		return benchfmt.Parse(r, name)
	case ".blif":
		return blif.Parse(r)
	default:
		return nil, fmt.Errorf("batchals: unknown circuit format %q (want .bench or .blif)", ext)
	}
}

// Save writes a circuit to a file, selecting the format from the extension
// (".bench" or ".blif").
func Save(path string, n *Network) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteTo(f, filepath.Ext(path), n)
}

// WriteTo renders the circuit to w in the format given by ext.
func WriteTo(w io.Writer, ext string, n *Network) error {
	switch strings.ToLower(ext) {
	case ".bench":
		return benchfmt.Write(w, n)
	case ".blif":
		return blif.Write(w, n)
	default:
		return fmt.Errorf("batchals: unknown circuit format %q (want .bench or .blif)", ext)
	}
}
