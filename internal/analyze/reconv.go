package analyze

import "batchals/internal/circuit"

// Stem describes one multi-fanout signal (a "stem" in testability
// terminology) and whether its branches reconverge.
type Stem struct {
	Node        circuit.NodeID
	NumBranches int // distinct fanout nodes
	// Reconvergent is set when at least two distinct propagation paths
	// from Node meet again at some node; the batch estimator's Boolean
	// differences are heuristic beyond that point.
	Reconvergent bool
	// MergePoint is the topologically first node where paths meet
	// (InvalidNode when not reconvergent).
	MergePoint circuit.NodeID
	// PostDom is the immediate post-dominator of Node toward the primary
	// outputs: every propagation path from Node passes through it (or the
	// virtual sink, reported as InvalidNode). For a reconvergent stem the
	// reconvergence region is bounded by [Node, PostDom].
	PostDom circuit.NodeID
}

// ReconvergentStems finds every multi-fanout stem of the network and
// classifies it, combining post-dominator analysis (for the region bound)
// with in-cone path merging (for the exact verdict). The network must be
// acyclic. Results are in ascending node-id order.
func ReconvergentStems(n *circuit.Network) []Stem {
	ipdom := PostDominators(n)
	w := newConeWalker(n)
	var stems []Stem
	for _, id := range n.LiveNodes() {
		branches := distinctFanouts(n, id)
		if len(branches) < 2 {
			continue
		}
		merge := w.firstMerge(id)
		stems = append(stems, Stem{
			Node:         id,
			NumBranches:  len(branches),
			Reconvergent: merge != circuit.InvalidNode,
			MergePoint:   merge,
			PostDom:      ipdom[id],
		})
	}
	return stems
}

// Certificate is the per-node CPM-exactness certificate: Exact(id) reports
// that the transitive fanout cone of id is reconvergence-free, i.e. every
// node in the cone is reached from id along exactly one path. For such a
// node the batch estimator's change propagation entries P[i,id,o] — and
// therefore DeltaER/DeltaAEM for a transformation injected at id — are
// provably exact on the given pattern set: every gate on the propagation
// path has at most one perturbed fanin signal, so evaluating its Boolean
// difference at the unperturbed side-input values (the paper's admitted
// approximation in Eq. 1–2) introduces no error.
//
// The certificate is sufficient, not necessary: a reconvergent node's
// estimate may still happen to be numerically correct, but only certified
// nodes carry a structural guarantee.
type Certificate struct {
	exact    []bool // indexed by NodeID slot; false for dead slots
	assessed int
	numExact int
}

// ExactnessCertificate computes the certificate for every live node of an
// acyclic network.
func ExactnessCertificate(n *circuit.Network) *Certificate {
	c := &Certificate{exact: make([]bool, n.NumSlots())}
	w := newConeWalker(n)
	for _, id := range n.LiveNodes() {
		c.assessed++
		if w.firstMerge(id) == circuit.InvalidNode {
			c.exact[id] = true
			c.numExact++
		}
	}
	return c
}

// Exact reports whether node id carries the exactness certificate.
func (c *Certificate) Exact(id circuit.NodeID) bool {
	return int(id) >= 0 && int(id) < len(c.exact) && c.exact[id]
}

// NumExact returns how many live nodes are certified exact.
func (c *Certificate) NumExact() int { return c.numExact }

// NumNodes returns how many live nodes were assessed.
func (c *Certificate) NumNodes() int { return c.assessed }

// Fraction returns NumExact/NumNodes (1 for an empty network).
func (c *Certificate) Fraction() float64 {
	if c.assessed == 0 {
		return 1
	}
	return float64(c.numExact) / float64(c.assessed)
}

// coneWalker amortises the scratch state of repeated transitive-fanout
// walks: epoch-stamped marks instead of a fresh visited set per query.
type coneWalker struct {
	net   *circuit.Network
	pos   []int32 // topological position per node
	mark  []int32 // mark[id] == epoch iff id is in the current cone
	epoch int32
	cone  []circuit.NodeID // scratch: nodes of the current cone
	stack []circuit.NodeID
}

func newConeWalker(n *circuit.Network) *coneWalker {
	order := n.TopoOrder()
	pos := make([]int32, n.NumSlots())
	for i, id := range order {
		pos[id] = int32(i)
	}
	return &coneWalker{
		net:  n,
		pos:  pos,
		mark: make([]int32, n.NumSlots()),
	}
}

// firstMerge returns the topologically first node in the transitive fanout
// cone of root that is reached along two or more distinct paths from root
// — equivalently, that has two or more distinct fanins inside the cone —
// or InvalidNode when propagation from root is tree-shaped. A node feeding
// several pins of one gate counts as a single path: the estimator's
// generic-cofactor Boolean difference flips all those pins together, which
// is exact.
func (w *coneWalker) firstMerge(root circuit.NodeID) circuit.NodeID {
	w.epoch++
	n := w.net
	w.mark[root] = w.epoch
	w.cone = append(w.cone[:0], root)
	w.stack = append(w.stack[:0], root)
	for len(w.stack) > 0 {
		id := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		for _, fo := range n.Fanouts(id) {
			if w.mark[fo] != w.epoch {
				w.mark[fo] = w.epoch
				w.cone = append(w.cone, fo)
				w.stack = append(w.stack, fo)
			}
		}
	}

	merge := circuit.InvalidNode
	for _, v := range w.cone {
		if v == root {
			continue
		}
		inCone := 0
		fanins := n.Fanins(v)
		for i, f := range fanins {
			if w.mark[f] != w.epoch {
				continue
			}
			dup := false
			for _, g := range fanins[:i] {
				if g == f {
					dup = true
					break
				}
			}
			if !dup {
				inCone++
			}
		}
		if inCone >= 2 && (merge == circuit.InvalidNode || w.pos[v] < w.pos[merge]) {
			merge = v
		}
	}
	return merge
}

// PostDominators computes the immediate post-dominator of every live node
// with respect to a virtual sink fed by all primary outputs, using the
// Cooper–Harvey–Kennedy iterative scheme specialised to a DAG (one reverse
// topological sweep suffices: every fanout is finalised before its
// fanins). ipdom[id] is InvalidNode when the virtual sink itself is the
// immediate post-dominator (the node's branches only meet "after" the
// outputs) or when id is dead.
func PostDominators(n *circuit.Network) []circuit.NodeID {
	order := n.TopoOrder()
	slots := n.NumSlots()
	pos := make([]int32, slots)
	for i, id := range order {
		pos[id] = int32(i)
	}
	sinkPos := int32(len(order)) // the virtual sink is after everything

	isOut := make([]bool, slots)
	for _, o := range n.Outputs() {
		isOut[o.Node] = true
	}

	const sink = circuit.NodeID(-2) // distinct from InvalidNode (-1)
	ipdom := make([]circuit.NodeID, slots)
	for i := range ipdom {
		ipdom[i] = circuit.InvalidNode
	}
	position := func(id circuit.NodeID) int32 {
		if id == sink {
			return sinkPos
		}
		return pos[id]
	}
	// intersect walks the two candidates up the post-dominator tree (which
	// only points toward larger topological positions) until they meet.
	intersect := func(a, b circuit.NodeID) circuit.NodeID {
		for a != b {
			for position(a) < position(b) {
				a = ipdom[a]
			}
			for position(b) < position(a) {
				b = ipdom[b]
			}
		}
		return a
	}

	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var dom circuit.NodeID = circuit.InvalidNode
		first := true
		consider := func(s circuit.NodeID) {
			if first {
				dom = s
				first = false
			} else {
				dom = intersect(dom, s)
			}
		}
		for _, fo := range distinctFanouts(n, id) {
			consider(fo)
		}
		if isOut[id] || first {
			// Drives an output directly, or has no successors at all:
			// only the virtual sink post-dominates.
			consider(sink)
		}
		ipdom[id] = dom
	}

	// Map the sentinel back to InvalidNode for callers.
	for i := range ipdom {
		if ipdom[i] == sink {
			ipdom[i] = circuit.InvalidNode
		}
	}
	return ipdom
}
