package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"batchals/internal/obs/timeline"
)

func TestJobStateStrings(t *testing.T) {
	want := map[JobState]string{
		JobReceived: "received", JobQueued: "queued", JobAdmitted: "admitted",
		JobRunning: "running", JobDone: "done", JobFailed: "failed",
		JobShed: "shed", JobCanceled: "canceled",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if JobState(99).String() != "unknown" {
		t.Errorf("out-of-range state should stringify as unknown")
	}
	for _, s := range []JobState{JobDone, JobFailed, JobShed, JobCanceled} {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []JobState{JobReceived, JobQueued, JobAdmitted, JobRunning} {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}

func TestJobTraceLegalPath(t *testing.T) {
	tr := NewJobTrace("j")
	for _, s := range []JobState{JobQueued, JobAdmitted, JobRunning, JobDone} {
		if !tr.To(s) {
			t.Fatalf("legal transition to %s rejected", s)
		}
	}
	if tr.State() != JobDone {
		t.Fatalf("state = %s, want done", tr.State())
	}
	// A terminal trace stays terminal.
	if tr.To(JobRunning) || tr.To(JobFailed) {
		t.Fatalf("transition out of a terminal state was accepted")
	}
	if tr.State() != JobDone {
		t.Fatalf("state changed after rejected transition")
	}
}

func TestJobTraceIllegalTransitions(t *testing.T) {
	cases := []struct {
		walk []JobState // applied in order, all must succeed
		next JobState   // must be rejected
	}{
		{nil, JobAdmitted},                              // received can't skip the queue
		{nil, JobRunning},                               //
		{nil, JobDone},                                  // can't finish without running
		{[]JobState{JobQueued}, JobRunning},             // queued must be admitted first
		{[]JobState{JobQueued}, JobDone},                //
		{[]JobState{JobQueued, JobAdmitted}, JobDone},   // admitted isn't running
		{[]JobState{JobQueued, JobAdmitted}, JobQueued}, // no going back
	}
	for _, c := range cases {
		tr := NewJobTrace("j")
		for _, s := range c.walk {
			if !tr.To(s) {
				t.Fatalf("setup transition to %s rejected", s)
			}
		}
		if tr.To(c.next) {
			t.Errorf("illegal transition %v -> %s was accepted", c.walk, c.next)
		}
	}
}

func TestJobTraceShedAndCancelPaths(t *testing.T) {
	// received → shed (queue full before the queued stamp) …
	tr := NewJobTrace("a")
	if !tr.To(JobShed) {
		t.Fatalf("received → shed rejected")
	}
	// … and queued → shed (tentative-enqueue path).
	tr = NewJobTrace("b")
	tr.To(JobQueued)
	if !tr.To(JobShed) {
		t.Fatalf("queued → shed rejected")
	}
	// queued → canceled (drain) and received → canceled (raced the drain).
	tr = NewJobTrace("c")
	tr.To(JobQueued)
	if !tr.To(JobCanceled) {
		t.Fatalf("queued → canceled rejected")
	}
	tr = NewJobTrace("d")
	if !tr.To(JobCanceled) {
		t.Fatalf("received → canceled rejected")
	}
}

func TestJobTraceIntervalsAndSnapshot(t *testing.T) {
	tr := NewJobTrace("j")
	if _, ok := tr.QueueWait(); ok {
		t.Fatalf("queue wait defined before admission")
	}
	tr.To(JobQueued)
	time.Sleep(2 * time.Millisecond)
	tr.To(JobAdmitted)
	tr.To(JobRunning)
	time.Sleep(2 * time.Millisecond)

	if _, ok := tr.RunWall(); ok {
		t.Fatalf("run wall defined before terminal")
	}
	if _, ok := tr.E2E(); ok {
		t.Fatalf("e2e defined before terminal")
	}
	if !tr.Fail("boom") {
		t.Fatalf("running → failed rejected")
	}

	qw, ok := tr.QueueWait()
	if !ok || qw <= 0 {
		t.Fatalf("queue wait = %v, %v", qw, ok)
	}
	rw, ok := tr.RunWall()
	if !ok || rw <= 0 {
		t.Fatalf("run wall = %v, %v", rw, ok)
	}
	e2e, ok := tr.E2E()
	if !ok || e2e < qw+rw {
		t.Fatalf("e2e %v should cover queue wait %v + run wall %v", e2e, qw, rw)
	}

	s := tr.Snapshot()
	if s.Name != "j" || s.State != "failed" || s.Error != "boom" {
		t.Fatalf("snapshot header: %+v", s)
	}
	if len(s.Transitions) != 5 { // received, queued, admitted, running, failed
		t.Fatalf("transitions = %d, want 5", len(s.Transitions))
	}
	if s.Transitions[0].State != "received" || s.Transitions[0].AtNS != 0 {
		t.Fatalf("first transition %+v, want received at 0", s.Transitions[0])
	}
	for i := 1; i < len(s.Transitions); i++ {
		if s.Transitions[i].AtNS < s.Transitions[i-1].AtNS {
			t.Fatalf("transition stamps not monotone: %+v", s.Transitions)
		}
	}
	if s.QueueWaitNS != qw.Nanoseconds() || s.RunNS != rw.Nanoseconds() || s.E2ENS != e2e.Nanoseconds() {
		t.Fatalf("snapshot durations %+v disagree with accessors", s)
	}
}

func TestJobTraceConcurrentSnapshot(t *testing.T) {
	tr := NewJobTrace("j")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, s := range []JobState{JobQueued, JobAdmitted, JobRunning, JobDone} {
			tr.To(s)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = tr.Snapshot()
		_ = tr.State()
	}
	wg.Wait()
	if tr.State() != JobDone {
		t.Fatalf("state = %s, want done", tr.State())
	}
}

func TestEmitServiceSpans(t *testing.T) {
	rec := timeline.NewRecorder(2, 64)
	tr := NewJobTrace("j")
	tr.To(JobQueued)
	tr.To(JobAdmitted)
	tr.To(JobRunning)
	time.Sleep(time.Millisecond)
	tr.To(JobDone)
	tr.EmitService(rec)

	spans := rec.Snapshot()
	// One span per lifecycle segment: received, queued, admitted, running.
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	wantNames := map[string]bool{
		"service.received": false, "service.queued": false,
		"service.admitted": false, "service.running": false,
	}
	var parent int64
	for _, s := range spans {
		if s.Worker != timeline.ServiceWorker {
			t.Errorf("span %s on worker %d, want ServiceWorker", s.Name, s.Worker)
		}
		if s.T1 < s.T0 || s.T0 < 0 {
			t.Errorf("span %s has bad interval [%d, %d]", s.Name, s.T0, s.T1)
		}
		if _, ok := wantNames[s.Name]; !ok {
			t.Errorf("unexpected span %q", s.Name)
		}
		wantNames[s.Name] = true
		if s.Name == "service.received" {
			parent = s.ID
		}
	}
	for name, seen := range wantNames {
		if !seen {
			t.Errorf("missing span %q", name)
		}
	}
	for _, s := range spans {
		if s.Name != "service.received" && s.Parent != parent {
			t.Errorf("span %s parent = %d, want %d", s.Name, s.Parent, parent)
		}
	}

	// The Perfetto export names the lane "service" and tags the spans.
	var buf strings.Builder
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"service"`, "service.running", "service.queued"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace export missing %q", want)
		}
	}

	// Nil recorder is a no-op, not a panic.
	tr.EmitService(nil)
}
