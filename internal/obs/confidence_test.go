package obs

import (
	"math"
	"testing"
)

func TestWilsonBasicProperties(t *testing.T) {
	// Interval always inside [0,1], contains the point estimate, shrinks
	// with n.
	cases := []struct{ k, n int64 }{
		{0, 100}, {1, 100}, {50, 100}, {100, 100}, {3, 10000}, {9997, 10000},
	}
	for _, c := range cases {
		iv := Wilson(c.k, c.n, 0)
		p := float64(c.k) / float64(c.n)
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			t.Fatalf("Wilson(%d,%d) = %+v not a valid sub-interval of [0,1]", c.k, c.n, iv)
		}
		if p < iv.Lo-1e-12 || p > iv.Hi+1e-12 {
			t.Fatalf("Wilson(%d,%d) = %+v excludes point estimate %v", c.k, c.n, iv, p)
		}
		if !iv.Valid() {
			t.Fatalf("Wilson(%d,%d) not marked valid", c.k, c.n)
		}
		wide := Wilson(c.k/10, c.n/10, 0)
		if c.n >= 100 && wide.HalfWidth() < iv.HalfWidth() {
			t.Fatalf("interval did not shrink with n: n=%d hw=%v, n=%d hw=%v",
				c.n/10, wide.HalfWidth(), c.n, iv.HalfWidth())
		}
	}
	// The 95% level must round-trip through the z quantile.
	if lvl := Wilson(1, 10, 0).Level; math.Abs(lvl-0.95) > 1e-9 {
		t.Fatalf("default level = %v, want 0.95", lvl)
	}
	// Known value: k=10, n=100, z=1.96 → approximately [0.0552, 0.1744].
	iv := Wilson(10, 100, 1.96)
	if math.Abs(iv.Lo-0.05523) > 5e-4 || math.Abs(iv.Hi-0.17437) > 5e-4 {
		t.Fatalf("Wilson(10,100,1.96) = [%v,%v], want ≈[0.0552,0.1744]", iv.Lo, iv.Hi)
	}
	// Degenerate sample.
	if iv := Wilson(0, 0, 0); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("Wilson with n=0 should be vacuous [0,1], got %+v", iv)
	}
}

func TestHoeffdingHalfWidth(t *testing.T) {
	// hw = span·sqrt(ln(2/δ)/(2n)); check the closed form and monotonicity.
	hw := HoeffdingHalfWidth(10000, DeltaERSpan, 0.05)
	want := 2 * math.Sqrt(math.Log(2/0.05)/(2*10000))
	if math.Abs(hw-want) > 1e-12 {
		t.Fatalf("HoeffdingHalfWidth = %v, want %v", hw, want)
	}
	if h4 := HoeffdingHalfWidth(40000, DeltaERSpan, 0.05); math.Abs(h4-hw/2) > 1e-12 {
		t.Fatalf("quadrupling n should halve the width: %v vs %v", h4, hw)
	}
	for _, bad := range []struct {
		n    int64
		span float64
		d    float64
	}{{0, 2, 0.05}, {100, 0, 0.05}, {100, 2, 0}, {100, 2, 1}} {
		if hw := HoeffdingHalfWidth(bad.n, bad.span, bad.d); !math.IsInf(hw, 1) {
			t.Fatalf("HoeffdingHalfWidth(%+v) = %v, want +Inf", bad, hw)
		}
	}
	iv := Hoeffding(0.01, 10000, DeltaERSpan, 0.05)
	if math.Abs(iv.HalfWidth()-hw) > 1e-12 || math.Abs(iv.Level-0.95) > 1e-12 {
		t.Fatalf("Hoeffding interval %+v inconsistent with half width %v", iv, hw)
	}
}

func TestIntervalStraddles(t *testing.T) {
	iv := Interval{Lo: 0.01, Hi: 0.03, Level: 0.95}
	if !iv.Straddles(0.02) {
		t.Fatal("interior point not straddled")
	}
	for _, x := range []float64{0.01, 0.03, 0.005, 0.05} {
		if iv.Straddles(x) {
			t.Fatalf("%v should not be strictly inside %+v", x, iv)
		}
	}
}

func TestRunStatsGaugesAndInadequacy(t *testing.T) {
	reg := NewRegistry()
	rs := NewRunStats(reg, "flow", 0.02)

	// Large M, error well under threshold: adequate, gauges set.
	er, dhw, ok := rs.RecordAccept(10, 100000, 0.0001)
	if !ok {
		t.Fatalf("CI %+v nowhere near 0.02 flagged inadequate", er)
	}
	if dhw <= 0 || math.IsInf(dhw, 1) {
		t.Fatalf("bad delta half width %v", dhw)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["flow_er_ci_hi"]; got != er.Hi {
		t.Fatalf("er_ci_hi gauge %v != interval hi %v", got, er.Hi)
	}
	if got := snap.Gauges["flow_er_ci_margin"]; math.Abs(got-(0.02-er.Hi)) > 1e-15 {
		t.Fatalf("margin gauge %v, want %v", got, 0.02-er.Hi)
	}
	if got := snap.Gauges["flow_mc_samples"]; got != 100000 {
		t.Fatalf("mc_samples gauge %v", got)
	}
	if rs.Inadequate() != 0 {
		t.Fatal("inadequate counter moved on a clear accept")
	}

	// Tiny M with the error right at the threshold: the interval straddles.
	er, _, ok = rs.RecordAccept(2, 100, 0.001)
	if ok || !er.Straddles(0.02) {
		t.Fatalf("CI %+v at threshold 0.02 with M=100 should be inadequate", er)
	}
	if rs.Inadequate() != 1 {
		t.Fatalf("inadequate counter = %d, want 1", rs.Inadequate())
	}

	// Nil RunStats computes but never touches gauges.
	var nilRS *RunStats
	er, dhw, ok = nilRS.RecordAccept(5, 1000, 0.001)
	if !er.Valid() || dhw <= 0 || !ok {
		t.Fatalf("nil RunStats returned %+v %v %v", er, dhw, ok)
	}
	if nilRS.Inadequate() != 0 {
		t.Fatal("nil RunStats reports inadequacy")
	}
}
