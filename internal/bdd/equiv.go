package bdd

import (
	"fmt"

	"batchals/internal/circuit"
)

// EquivResult reports a combinational equivalence check.
type EquivResult struct {
	Equivalent bool
	// FailingOutput is the index of the first differing output when not
	// equivalent.
	FailingOutput int
	// Counterexample is an input assignment (in input declaration order)
	// exposing the difference when not equivalent.
	Counterexample []bool
}

// CheckEquivalence formally compares two networks output by output via BDD
// miters. Unlike the Monte Carlo metrics, a positive answer is a proof
// (for the BDD-representable sizes this library targets). Input and output
// counts must match; inputs are identified positionally.
func CheckEquivalence(golden, approx *circuit.Network) (*EquivResult, error) {
	if golden.NumInputs() != approx.NumInputs() {
		return nil, fmt.Errorf("bdd: input counts differ: %d vs %d",
			golden.NumInputs(), approx.NumInputs())
	}
	if golden.NumOutputs() != approx.NumOutputs() {
		return nil, fmt.Errorf("bdd: output counts differ: %d vs %d",
			golden.NumOutputs(), approx.NumOutputs())
	}
	m := New(golden.NumInputs())
	g, err := m.FromNetwork(golden)
	if err != nil {
		return nil, err
	}
	a, err := m.FromNetwork(approx)
	if err != nil {
		return nil, err
	}
	for o := range g {
		miter := m.Xor(g[o], a[o])
		if miter == Zero {
			continue
		}
		return &EquivResult{
			Equivalent:     false,
			FailingOutput:  o,
			Counterexample: m.AnySat(miter),
		}, nil
	}
	return &EquivResult{Equivalent: true, FailingOutput: -1}, nil
}

// AnySat returns one satisfying assignment of f over all manager
// variables, or nil if f is unsatisfiable. Unconstrained variables are
// reported as false.
func (m *Manager) AnySat(f Ref) []bool {
	if f == Zero {
		return nil
	}
	asg := make([]bool, m.numVars)
	for f != One {
		n := m.nodes[f]
		if n.hi != Zero {
			asg[n.level] = true
			f = n.hi
		} else {
			f = n.low
		}
	}
	return asg
}
