package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderKeepsRecentHistory(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		f.OnIteration(IterationInfo{Iter: i, Candidates: i * 10, Accepted: true})
		f.OnAccept(AcceptInfo{Iter: i, Target: "g", Actual: float64(i) / 100})
	}
	f.OnPhase(PhaseInfo{Phase: PhaseSimulate, Iter: 10, Duration: time.Millisecond})
	f.OnCandidate(CandidateInfo{Iter: 1}) // must be ignored

	d := f.Snapshot()
	if d.Depth != 4 {
		t.Fatalf("depth %d, want 4", d.Depth)
	}
	if d.TotalIterations != 10 || d.TotalAccepts != 10 || d.TotalPhases != 1 {
		t.Fatalf("totals %d/%d/%d, want 10/10/1",
			d.TotalIterations, d.TotalAccepts, d.TotalPhases)
	}
	if len(d.Iterations) != 4 || len(d.Accepts) != 4 || len(d.Phases) != 1 {
		t.Fatalf("retained %d/%d/%d, want 4/4/1",
			len(d.Iterations), len(d.Accepts), len(d.Phases))
	}
	// Oldest-first, ending at the newest event.
	for i, it := range d.Iterations {
		if it.Iter != 7+i {
			t.Fatalf("iterations[%d].Iter = %d, want %d (oldest-first)", i, it.Iter, 7+i)
		}
	}
	if d.Accepts[3].Actual != 0.10 {
		t.Fatalf("newest accept actual %v, want 0.10", d.Accepts[3].Actual)
	}
	if d.UptimeNS < 0 {
		t.Fatalf("negative uptime %d", d.UptimeNS)
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	f := NewFlightRecorder(0) // default depth
	f.OnAccept(AcceptInfo{
		Iter: 3, Target: "n12", Sub: "const0", Actual: 0.01,
		M: 10000, ErrCI: Interval{Lo: 0.008, Hi: 0.012, Level: 0.95},
		DeltaHW: 0.02, CIAdequate: true,
	})
	f.OnPhase(PhaseInfo{Phase: PhaseCPMBuild, Duration: time.Millisecond})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Depth != DefaultFlightDepth {
		t.Fatalf("default depth %d, want %d", d.Depth, DefaultFlightDepth)
	}
	if len(d.Accepts) != 1 || d.Accepts[0].ErrCI.Hi != 0.012 || !d.Accepts[0].CIAdequate {
		t.Fatalf("accept CI fields lost in round trip: %+v", d.Accepts)
	}
	// Phases serialise by name, not index.
	if !strings.Contains(buf.String(), `"cpm_build"`) {
		t.Fatalf("dump should name phases:\n%s", buf.String())
	}
	if d.Phases[0].Phase != PhaseCPMBuild {
		t.Fatalf("phase did not round-trip: %v", d.Phases[0].Phase)
	}
}

func TestFlightRecorderDumpOnPanic(t *testing.T) {
	f := NewFlightRecorder(8)
	f.OnIteration(IterationInfo{Iter: 42})
	var buf bytes.Buffer
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed by DumpOnPanic")
			}
		}()
		func() {
			defer f.DumpOnPanic(&buf)
			panic("boom")
		}()
	}()
	if !strings.Contains(buf.String(), `"iter": 42`) {
		t.Fatalf("panic dump missing recorded iteration:\n%s", buf.String())
	}

	// Normal return: nothing written.
	buf.Reset()
	func() {
		defer f.DumpOnPanic(&buf)
	}()
	if buf.Len() != 0 {
		t.Fatalf("DumpOnPanic wrote %d bytes on a clean return", buf.Len())
	}
}
