// Command alsload is the closed-loop load generator of the alsd service
// observatory: N concurrent submitters each POST a synthesis job to a
// live alsd, poll its /jobs/{name} lifecycle trace until the job is
// terminal, and immediately submit the next one. Shed responses (429)
// are counted and retried after a capped backoff, so a queue bound
// smaller than the submitter count keeps the daemon saturated and the
// shed path exercised.
//
// Usage:
//
//	alsload -addr 127.0.0.1:8415 -n 8 -duration 30s -circuit mul4 -m 512 -o BENCH_pr9.json
//
// When the burst ends, alsload prints client-observed end-to-end latency
// percentiles, the server-reported queue-wait and run-wall percentiles
// (from the lifecycle traces), and throughput — and with -o writes them
// as a benchmeta baseline artifact (BENCH_pr9.json schema) that
// cmd/benchdiff can gate against.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"batchals/internal/benchmeta"
)

func main() {
	var (
		addr       = flag.String("addr", "", "alsd address (host:port), required")
		n          = flag.Int("n", 8, "concurrent closed-loop submitters")
		duration   = flag.Duration("duration", 30*time.Second, "how long to keep submitting")
		circuit    = flag.String("circuit", "mul4", "job circuit")
		threshold  = flag.Float64("threshold", 0.05, "job error threshold")
		patterns   = flag.Int("m", 512, "job Monte Carlo pattern count")
		workers    = flag.Int("workers", 0, "job worker count (0 = flow default)")
		prefix     = flag.String("prefix", "load", "job name prefix")
		poll       = flag.Duration("poll", 20*time.Millisecond, "lifecycle-trace poll interval")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "give up polling a job after this long")
		out        = flag.String("o", "", "write the benchmeta baseline artifact here")
		commit     = flag.String("commit", "", "commit hash recorded in the artifact env")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "alsload: -addr is required")
		os.Exit(2)
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://")

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu        sync.Mutex
		e2e       []float64 // client-observed submit→terminal, ns
		queueWait []float64 // server-reported queued→admitted, ns
		runWall   []float64 // server-reported running→terminal, ns
		completed int
		failed    int
		shed      int
		errs      int
	)
	record := func(clientNS float64, trace *traceDoc, state string) {
		mu.Lock()
		defer mu.Unlock()
		e2e = append(e2e, clientNS)
		if trace != nil {
			if trace.QueueWaitNS > 0 {
				queueWait = append(queueWait, float64(trace.QueueWaitNS))
			}
			if trace.RunNS > 0 {
				runWall = append(runWall, float64(trace.RunNS))
			}
		}
		if state == "done" {
			completed++
		} else {
			failed++
		}
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for g := 0; g < *n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; time.Now().Before(deadline); k++ {
				name := fmt.Sprintf("%s-%d-%d", *prefix, g, k)
				spec := map[string]any{
					"name":      name,
					"circuit":   *circuit,
					"threshold": *threshold,
					"m":         *patterns,
					"workers":   *workers,
					"seed":      int64(g*1_000_003 + k),
				}
				submitted := time.Now()
				status, retryAfter, err := submit(client, base, spec)
				switch {
				case err != nil:
					mu.Lock()
					errs++
					mu.Unlock()
					time.Sleep(200 * time.Millisecond)
					continue
				case status == http.StatusTooManyRequests:
					mu.Lock()
					shed++
					mu.Unlock()
					// Honor Retry-After, capped so the closed loop keeps the
					// queue under pressure for the whole burst.
					if retryAfter > 500*time.Millisecond {
						retryAfter = 500 * time.Millisecond
					}
					if retryAfter <= 0 {
						retryAfter = 100 * time.Millisecond
					}
					time.Sleep(retryAfter)
					continue
				case status != http.StatusAccepted:
					mu.Lock()
					errs++
					mu.Unlock()
					time.Sleep(200 * time.Millisecond)
					continue
				}
				trace, state := awaitTerminal(client, base, name, *poll, *jobTimeout)
				if state == "" {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				record(float64(time.Since(submitted).Nanoseconds()), trace, state)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	total := completed + failed
	if total == 0 {
		fmt.Fprintf(os.Stderr, "alsload: no job completed (%d shed, %d errors)\n", shed, errs)
		os.Exit(1)
	}
	throughput := float64(completed) / elapsed.Seconds()
	fmt.Printf("alsload: %d done, %d failed, %d shed, %d errors in %s (%.1f jobs/s)\n",
		completed, failed, shed, errs, elapsed.Round(time.Millisecond), throughput)
	printDist("e2e (client)", e2e)
	printDist("queue wait  ", queueWait)
	printDist("run wall    ", runWall)

	if *out == "" {
		return
	}
	baseline := &benchmeta.Baseline{
		SchemaVersion: benchmeta.SchemaVersion,
		GeneratedWith: fmt.Sprintf("alsload -n %d -duration %s -circuit %s -m %d -threshold %g",
			*n, *duration, *circuit, *patterns, *threshold),
		Env: benchmeta.CaptureEnv(*commit),
		Benchmarks: []benchmeta.Bench{
			distBench("Load/e2e", e2e),
			distBench("Load/queue_wait", queueWait),
			distBench("Load/run_wall", runWall),
			{
				Name:       "Load/throughput",
				Iterations: int64(completed),
				Metrics: map[string]float64{
					"jobs_per_sec": throughput,
					"shed_total":   float64(shed),
					"failed_total": float64(failed),
				},
			},
		},
	}
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "alsload:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "alsload:", err)
		os.Exit(1)
	}
	fmt.Printf("alsload: wrote %s\n", *out)
}

// submit POSTs one job spec; it returns the HTTP status and any
// Retry-After hint.
func submit(client *http.Client, base string, spec map[string]any) (int, time.Duration, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	var retry time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			retry = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retry, nil
}

// traceDoc is the subset of the /jobs/{name} document alsload consumes.
type traceDoc struct {
	State       string `json:"state"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	RunNS       int64  `json:"run_ns"`
	E2ENS       int64  `json:"e2e_ns"`
}

// terminalStates mirrors the lifecycle trace's terminal set.
var terminalStates = map[string]bool{
	"done": true, "failed": true, "shed": true, "canceled": true,
}

// awaitTerminal polls the job's lifecycle trace until it reaches a
// terminal state, returning the final trace. An empty state means the
// poll errored out or timed out.
func awaitTerminal(client *http.Client, base, name string, poll, timeout time.Duration) (*traceDoc, string) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/jobs/" + name)
		if err != nil {
			return nil, ""
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, ""
		}
		var doc traceDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, ""
		}
		if terminalStates[doc.State] {
			return &doc, doc.State
		}
		time.Sleep(poll)
	}
	return nil, ""
}

// percentile returns the nearest-rank q-quantile of a sample set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// distBench folds a latency sample set into one artifact benchmark:
// ns/op carries the median (robust against a single cold-start outlier),
// with the tail percentiles and mean as extra metrics.
func distBench(name string, samples []float64) benchmeta.Bench {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := 0.0
	if len(sorted) > 0 {
		mean = sum / float64(len(sorted))
	}
	iters := int64(len(sorted))
	if iters == 0 {
		iters = 1
	}
	return benchmeta.Bench{
		Name:       name,
		Iterations: iters,
		Metrics: map[string]float64{
			"ns/op":   percentile(sorted, 0.50),
			"mean_ns": mean,
			"p50_ns":  percentile(sorted, 0.50),
			"p95_ns":  percentile(sorted, 0.95),
			"p99_ns":  percentile(sorted, 0.99),
			"max_ns":  percentile(sorted, 1.0),
		},
	}
}

// printDist prints one latency line of the end-of-burst summary.
func printDist(label string, samples []float64) {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	fmt.Printf("alsload: %s p50 %s  p95 %s  p99 %s  (n=%d)\n", label,
		fmtNS(percentile(sorted, 0.50)), fmtNS(percentile(sorted, 0.95)),
		fmtNS(percentile(sorted, 0.99)), len(sorted))
}

func fmtNS(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
