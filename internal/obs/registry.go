package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; Inc and Add are single atomic operations, so a
// pre-resolved counter costs nothing measurable on a hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not enforced, callers own the contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric (last value wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram over float64 observations. Bounds
// are inclusive upper bucket bounds in ascending order; an implicit +Inf
// bucket catches the rest. Observe is mutex-guarded: histograms sit one
// level above the innermost loops (one observation per accepted
// substitution or verification recheck, not per candidate), so a mutex is
// simpler than striped atomics and still cheap.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64
	counts   []int64 // len(bounds)+1, last is the +Inf bucket
	count    int64
	sum      float64
	min      float64
	max      float64
	rejected int64 // NaN / ±Inf observations dropped
}

// Observe records one value. NaN and ±Inf are rejected (counted in the
// snapshot's Rejected field, never folded into sum/min/max — one NaN
// would poison every derived statistic forever).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.mu.Lock()
		h.rejected++
		h.mu.Unlock()
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is the frozen state of a histogram. P50/P95/P99 are
// bucket-interpolated quantile estimates (see Quantile) filled at
// snapshot time, so every JSON export carries the latency summary
// without the reader re-deriving it from the buckets.
type HistogramSnapshot struct {
	Bounds   []float64 `json:"bounds"` // upper bounds; +Inf bucket implicit
	Counts   []int64   `json:"counts"` // len(Bounds)+1
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	P50      float64   `json:"p50,omitempty"`
	P95      float64   `json:"p95,omitempty"`
	P99      float64   `json:"p99,omitempty"`
	Rejected int64     `json:"rejected,omitempty"` // NaN/±Inf observations dropped
}

// Snapshot freezes the histogram's current state, including the
// interpolated quantile summary.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{
		Bounds:   append([]float64(nil), h.bounds...),
		Counts:   append([]int64(nil), h.counts...),
		Count:    h.count,
		Sum:      h.sum,
		Min:      h.min,
		Max:      h.max,
		Rejected: h.rejected,
	}
	h.mu.Unlock()
	s.fillQuantiles()
	return s
}

// Registry is a concurrency-safe collection of named metrics. Metric
// handles are get-or-create: looking up the same name twice returns the
// same Counter/Gauge/Histogram, so packages can resolve their metrics once
// into package variables and pay only an atomic op per event afterwards.
//
// Names may carry an inline Prometheus-style label set, e.g.
// "sasimi_phase_ns{phase=\"simulate\"}"; the JSON snapshot uses the full
// string as the key and the Prometheus renderer passes it through.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry. Library packages (sim,
// core) register their always-on counters here; cmd/alsrun snapshots it so
// one export covers both flow-level and substrate-level metrics.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. Bounds must be strictly ascending;
// they are ignored (the original buckets win) when the histogram already
// exists.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a consistent-enough copy of a registry: each metric is read
// atomically, the set of metrics under a read lock.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	hists := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		hists = append(hists, name)
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, name := range counters {
		s.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range gauges {
		s.Gauges[name] = r.Gauge(name).Value()
	}
	for _, name := range hists {
		r.mu.RLock()
		h := r.histograms[name]
		r.mu.RUnlock()
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON. Map keys are sorted by
// encoding/json, so the output is deterministic and diffable.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (untyped values; histograms as cumulative _bucket/_sum/_count
// series).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %v\n", name, s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		base, labels := splitLabels(name)
		plain := "" // label block for _sum/_count, empty when unlabelled
		if labels != "" {
			plain = "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, labels, formatBound(bound), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, cum)
		fmt.Fprintf(&b, "%s_sum%s %v\n", base, plain, h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, plain, h.Count)
		// Summary-style quantile series alongside the buckets, so a scrape
		// answers "what is p99" without PromQL bucket arithmetic. The
		// exposition is untyped, so mixing _bucket and {quantile=...} under
		// one base name is legal here.
		if h.Count > 0 {
			for _, sq := range summaryQuantiles {
				fmt.Fprintf(&b, "%s{%squantile=%q} %v\n", base, labels, sq.label, h.Quantile(sq.q))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitLabels separates "name{a="b"}" into ("name", `a="b",`); a plain
// name yields an empty label prefix.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return base, ""
	}
	return base, inner + ","
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
