package sasimi

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// acceptedStep is the determinism-relevant projection of one accepted
// substitution: everything except wall times.
type acceptedStep struct {
	Target, Sub string
	Inverted    bool
	EstDelta    float64
	ActualErr   float64
	Area        float64
	Candidates  int
	Feasible    int
	Exact       bool
}

// flowFingerprint projects a Result onto its deterministic content: the
// accepted-substitution sequence, final error/area, the per-phase span
// counts, and the total candidates scored (wall times and memory are
// excluded by construction).
type flowFingerprint struct {
	Steps       []acceptedStep
	FinalError  float64
	FinalArea   float64
	Iterations  int
	Scored      int64
	PhaseCounts [obs.NumPhases]int64
}

func fingerprint(res *Result, reg *obs.Registry) flowFingerprint {
	fp := flowFingerprint{
		FinalError: res.FinalError,
		FinalArea:  res.FinalArea,
		Iterations: res.NumIterations,
		Scored:     reg.Snapshot().Counters["sasimi_candidates_scored_total"],
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fp.PhaseCounts[p] = res.Phases.Stats[p].Count
	}
	for _, it := range res.Iterations {
		fp.Steps = append(fp.Steps, acceptedStep{
			Target: it.Target, Sub: it.Sub, Inverted: it.Inverted,
			EstDelta: it.EstDelta, ActualErr: it.ActualErr, Area: it.Area,
			Candidates: it.Candidates, Feasible: it.Feasible, Exact: it.Exact,
		})
	}
	return fp
}

func workerSweep() []int {
	sweep := []int{1, 2, 4, 7}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 7 {
		sweep = append(sweep, n)
	}
	return sweep
}

// TestParallelFlowBitIdentical is the differential suite pinning the
// tentpole guarantee: a full synthesis run must produce the identical
// accepted-substitution sequence, error values and phase counts at every
// worker count, for both metrics and with exact verification in the loop.
func TestParallelFlowBitIdentical(t *testing.T) {
	cases := []struct {
		net string
		// par16's parity signals are maximally dissimilar, so nothing is
		// ever accepted: it pins the no-accept path (candidates are still
		// scored — the Scored field keeps the case non-vacuous).
		wantAccepts bool
		cfg         Config
	}{
		{"rca8", true, Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 0.10, NumPatterns: 2000, Seed: 11}}},
		{"dec4", true, Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 0.10, NumPatterns: 1500, Seed: 5}}},
		{"par16", false, Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 0.30, NumPatterns: 1000, Seed: 9}, SimilarityCap: 0.5}},
		{"cmp8", true, Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 0.05, NumPatterns: 2000, Seed: 3}, VerifyTopK: 4}},
		{"rca8", true, Config{Budget: flow.Budget{Metric: core.MetricAEM, Threshold: 2.0, NumPatterns: 1000, Seed: 13}}},
	}
	for _, tc := range cases {
		tc.cfg.KeepTrace = true
		var want flowFingerprint
		for i, workers := range workerSweep() {
			cfg := tc.cfg
			cfg.Workers = workers
			cfg.Metrics = obs.NewRegistry()
			got := fingerprint(runOn(t, tc.net, cfg), cfg.Metrics)
			if i == 0 {
				want = got
				if tc.wantAccepts && got.Iterations == 0 {
					t.Errorf("%s: sequential run accepted nothing; differential check is vacuous", tc.net)
				}
				if got.Scored == 0 {
					t.Errorf("%s: sequential run scored no candidates", tc.net)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s metric=%v: workers=%d diverges from workers=1:\n got  %+v\n want %+v",
					tc.net, tc.cfg.Metric, workers, got, want)
			}
		}
	}
}

// TestParallelEstimateAllBitIdentical pins the isolated batch-estimation
// entry point the same way: every candidate's Delta/Score must be
// bit-identical at any worker count.
func TestParallelEstimateAllBitIdentical(t *testing.T) {
	golden := bench.RCA(8)
	var want []Candidate
	for i, workers := range workerSweep() {
		approx := golden.Clone()
		cands, err := EstimateAll(golden, approx, Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   0.1,
				NumPatterns: 2000,
				Seed:        21,
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = cands
			if len(want) == 0 {
				t.Fatal("no candidates on rca8")
			}
			continue
		}
		if !reflect.DeepEqual(cands, want) {
			t.Fatalf("workers=%d: EstimateAll diverges (%d vs %d candidates)",
				workers, len(cands), len(want))
		}
	}
}

// TestParallelScoringMatchesSequential drives the sharded scoring path
// directly against scoreCandidates on the same candidate list, for both
// metrics, asserting Delta/Score/selection equality field by field.
func TestParallelScoringMatchesSequential(t *testing.T) {
	for _, metric := range []core.Metric{core.MetricER, core.MetricAEM} {
		net := bench.RCA(8)
		patterns := sim.RandomPatterns(net.NumInputs(), 1500, 8)
		golden := sim.Simulate(net, patterns)
		approx := net.Clone()
		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(sim.OutputMatrix(net, golden), sim.OutputMatrix(approx, vals))

		lib := cell.Default()
		cfg := Config{Budget: flow.Budget{Metric: metric, Threshold: 0.5}, Workers: 1}
		cfg.fillDefaults()
		cfg.Workers = 1
		arrival := lib.NodeArrival(approx)
		seqCands := gatherCandidates(approx, vals, &cfg, arrival, lib.GateDelay(circuit.KindNot))
		if len(seqCands) == 0 {
			t.Fatal("no candidates")
		}

		est := newEstimator(EstimatorBatch)
		ctx := &iterContext{net: approx, vals: vals, st: st, metric: metric}
		est.prepare(ctx)
		scratch := bitvec.New(vals.M)
		change := bitvec.New(vals.M)
		wantCands := append([]Candidate(nil), seqCands...)
		wantBest, wantFeasible := scoreCandidates(est, wantCands, vals, 0, cfg.Threshold,
			scratch, change, nil, 1)

		for _, workers := range []int{2, 4, 7} {
			pool := par.NewPool(workers)
			gotCands := gatherCandidatesParallel(context.Background(), approx, vals, &cfg, arrival,
				lib.GateDelay(circuit.KindNot), pool)
			if !reflect.DeepEqual(gotCands, seqCands) {
				pool.Close()
				t.Fatalf("metric=%v workers=%d: gathered candidates diverge", metric, workers)
			}
			pctx := &iterContext{net: approx, vals: vals, st: st, metric: metric, cpm: ctx.cpm, pool: pool}
			gotBest, gotFeasible := scoreCandidatesSharded(pctx, gotCands, 0, cfg.Threshold, pool, nil, 1)
			pool.Close()
			if gotBest != wantBest || !reflect.DeepEqual(gotFeasible, wantFeasible) {
				t.Fatalf("metric=%v workers=%d: selection diverges (best %d vs %d)",
					metric, workers, gotBest, wantBest)
			}
			if !reflect.DeepEqual(gotCands, wantCands) {
				for i := range gotCands {
					if gotCands[i] != wantCands[i] {
						t.Fatalf("metric=%v workers=%d: candidate %d diverges:\n got  %+v\n want %+v",
							metric, workers, i, gotCands[i], wantCands[i])
					}
				}
			}
		}
	}
}

// TestNilTracerShardedScoringAllocs pins that the Workers=1 flow path
// still takes the legacy scoring loop whose allocation profile
// TestNilTracerScoringAllocs baselines: the dispatch wrapper itself must
// add nothing on top.
func TestNilTracerShardedScoringAllocs(t *testing.T) {
	net := bench.RCA(8)
	patterns := sim.RandomPatterns(net.NumInputs(), 1024, 3)
	vals := sim.Simulate(net, patterns)
	out := sim.OutputMatrix(net, vals)
	st := emetric.NewState(out, out)
	est := newEstimator(EstimatorBatch)
	ctx := &iterContext{net: net, vals: vals, st: st, metric: core.MetricER}
	est.prepare(ctx)

	lib := cell.Default()
	cfg := Config{Budget: flow.Budget{Metric: core.MetricER, Threshold: 1}, Workers: 1}
	cfg.fillDefaults()
	arrival := lib.NodeArrival(net)
	cands := gatherCandidates(net, vals, &cfg, arrival, lib.GateDelay(circuit.KindNot))
	if len(cands) == 0 {
		t.Fatal("no candidates on RCA8")
	}
	scratch := bitvec.New(vals.M)
	change := bitvec.New(vals.M)

	direct := testing.AllocsPerRun(20, func() {
		scoreCandidates(est, cands, vals, 0, cfg.Threshold, scratch, change, nil, 1)
	})
	dispatched := testing.AllocsPerRun(20, func() {
		scoreCandidatesMaybeSharded(ctx, est, cands, 0, cfg.Threshold, scratch, change, nil, nil, 1)
	})
	if dispatched > direct {
		t.Fatalf("Workers=1 dispatch allocates %v/run, direct loop %v/run", dispatched, direct)
	}
}

// TestRaceParallelFlow hammers the whole flow with a multi-worker pool
// under the race detector, including two flows running concurrently to
// shake out any shared mutable state between runs (package-level counters
// must be atomic). CI runs this with -race at GOMAXPROCS=2 as well.
func TestRaceParallelFlow(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			n := bench.RCA(8)
			res, err := Run(n, Config{
				Budget: flow.Budget{
					Metric:      core.MetricER,
					Threshold:   0.05,
					NumPatterns: 2000,
					Seed:        seed,
				},
				Workers:         4,
				CheckInvariants: true,
				Metrics:         obs.NewRegistry(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			if res.FinalError > 0.05+1e-9 {
				t.Errorf("seed %d: error %v over threshold", seed, res.FinalError)
			}
		}(int64(g + 1))
	}
	wg.Wait()
}
