package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"batchals/internal/obs"
)

// AccessEntry is one JSONL access-log line: who asked what, what came
// back, and how long it took. The run field carries the ?run= query
// parameter or the {name} path value so per-job request lines correlate
// with job traces without re-parsing URLs downstream.
type AccessEntry struct {
	Time   time.Time `json:"t"`
	Method string    `json:"method"`
	Path   string    `json:"path"`
	Run    string    `json:"run,omitempty"`
	Status int       `json:"status"`
	Bytes  int64     `json:"bytes"`
	DurNS  int64     `json:"dur_ns"`
	Remote string    `json:"remote,omitempty"`
}

// AccessLogger writes structured JSONL access logs, one self-describing
// object per request, buffered like the PR 2 JSONL tracer. Write errors
// are sticky and counted but never fail a request — losing telemetry must
// not lose traffic. All methods are safe on a nil *AccessLogger (they
// no-op), which is the zero-cost disabled path: Wrap on a nil logger adds
// no allocation and no work per request (pinned by AllocsPerRun in
// TestAccessLogNilLoggerZeroAlloc).
type AccessLogger struct {
	mu       sync.Mutex
	w        *bufio.Writer
	enc      *json.Encoder
	err      error
	errCount int64
	entries  int64
	counter  *obs.Counter
}

// NewAccessLogger wraps w in a buffered JSONL access-log writer. Call
// Flush when the daemon shuts down.
func NewAccessLogger(w io.Writer) *AccessLogger {
	bw := bufio.NewWriter(w)
	return &AccessLogger{w: bw, enc: json.NewEncoder(bw)}
}

// CountIn mirrors the logged-entry count into reg's counter named name.
func (l *AccessLogger) CountIn(reg *obs.Registry, name string) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	l.counter = reg.Counter(name)
	l.mu.Unlock()
}

// Log writes one entry.
func (l *AccessLogger) Log(e AccessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if err := l.enc.Encode(e); err != nil {
		if l.err == nil {
			l.err = err
		}
		l.errCount++
	} else {
		l.entries++
		if l.counter != nil {
			l.counter.Inc()
		}
	}
	l.mu.Unlock()
}

// Entries returns how many entries have been logged successfully.
func (l *AccessLogger) Entries() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries
}

// Err returns the first write error, or nil.
func (l *AccessLogger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Flush writes buffered entries through to the underlying writer.
func (l *AccessLogger) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		if l.err == nil {
			l.err = err
		}
		l.errCount++
	}
	return l.err
}

// Wrap returns next instrumented with access logging. A nil receiver is
// the fast path: the returned handler forwards straight to next with zero
// allocations per request, so the middleware can be installed
// unconditionally and enabled by swapping the logger in.
func (l *AccessLogger) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		run := r.URL.Query().Get("run")
		if run == "" {
			run = r.PathValue("name")
		}
		l.Log(AccessEntry{
			Time:   start,
			Method: r.Method,
			Path:   r.URL.Path,
			Run:    run,
			Status: sw.status,
			Bytes:  sw.bytes,
			DurNS:  time.Since(start).Nanoseconds(),
			Remote: r.RemoteAddr,
		})
	})
}

// statusWriter captures the status code and body size on their way out.
// It forwards Flush so the SSE endpoint keeps streaming through the
// middleware, and Unwrap so http.ResponseController finds the original.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
