package sasimi

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

// Config parameterises one flow run. Zero values are filled with sensible
// defaults by Run; only Threshold must be set by the caller.
type Config struct {
	// Metric is the statistical error measure the Threshold constrains.
	Metric core.Metric
	// Threshold is the error budget: a fraction in [0,1] for ER, an
	// absolute magnitude for AEM.
	Threshold float64
	// Estimator chooses the per-candidate error estimation method.
	Estimator EstimatorKind
	// NumPatterns is the Monte Carlo sample size M (default 10000).
	NumPatterns int
	// Seed drives the pattern generator; the same seed reproduces the
	// whole flow bit-for-bit.
	Seed int64
	// Patterns, when non-nil, overrides NumPatterns/Seed with a
	// caller-provided (possibly non-uniform) pattern set.
	Patterns *sim.Patterns
	// SimilarityCap is the maximum local difference probability for a pair
	// to be considered almost-identical (default 0.3).
	SimilarityCap float64
	// MaxCandidates caps candidates evaluated per iteration (0 = all).
	MaxCandidates int
	// VerifyTopK, when positive, re-evaluates the K best-scoring feasible
	// candidates of each iteration with exact fanout-cone resimulation
	// before committing to one. This implements the mitigation the paper
	// lists as future work for the reconvergent-path inaccuracy: the batch
	// estimate ranks all T candidates cheaply, exact simulation then
	// settles the winner among K ≪ T. Costs K cone resimulations per
	// iteration; ignored by EstimatorFull (already exact).
	VerifyTopK int
	// MaxIterations stops the flow after this many accepted substitutions
	// (0 = unlimited).
	MaxIterations int
	// Library provides area and delay figures (default cell.Default()).
	Library *cell.Library
	// KeepTrace records a per-iteration IterationRecord in the result.
	KeepTrace bool
}

func (cfg *Config) fillDefaults() {
	if cfg.NumPatterns == 0 {
		cfg.NumPatterns = 10000
	}
	if cfg.SimilarityCap == 0 {
		cfg.SimilarityCap = 0.3
	}
	if cfg.Library == nil {
		cfg.Library = cell.Default()
	}
}

// IterationRecord captures one accepted substitution, for the paper's
// per-iteration figures (Fig. 1, Fig. 3).
type IterationRecord struct {
	Iter       int
	Target     string  // name of the substituted signal
	Sub        string  // name of the substitute ("const0"/"const1")
	Inverted   bool    // complemented substitution
	EstGain    float64 // predicted area gain of the chosen AT
	EstDelta   float64 // estimated increased error of the chosen AT
	EstAccum   float64 // accumulated estimate (the EER curve of Fig. 3)
	ActualErr  float64 // measured error after applying, same pattern set
	Area       float64 // circuit area after applying
	Candidates int     // candidates evaluated this iteration
	CPMTime    time.Duration
	IterTime   time.Duration
}

// Result is the outcome of a flow run.
type Result struct {
	Approx       *circuit.Network
	OriginalArea float64
	FinalArea    float64
	// FinalError is measured on the flow's pattern set against the golden
	// circuit after the last accepted substitution.
	FinalError float64
	Iterations []IterationRecord
	// NumIterations counts accepted substitutions even when KeepTrace is
	// off.
	NumIterations int
	TotalTime     time.Duration
	CPMTime       time.Duration // total time spent building CPMs
	EstimateTime  time.Duration // total time spent estimating candidates
}

// AreaRatio returns FinalArea / OriginalArea.
func (r *Result) AreaRatio() float64 {
	if r.OriginalArea == 0 {
		return 1
	}
	return r.FinalArea / r.OriginalArea
}

// Run executes the SASIMI flow on a copy of golden and returns the
// approximate circuit with the measured error within cfg.Threshold.
func Run(golden *circuit.Network, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.fillDefaults()
	if cfg.Threshold < 0 {
		return nil, errors.New("sasimi: negative threshold")
	}
	if cfg.Metric == core.MetricAEM && golden.NumOutputs() > 63 {
		return nil, fmt.Errorf("sasimi: AEM flow needs <= 63 outputs, have %d", golden.NumOutputs())
	}
	if err := golden.Validate(); err != nil {
		return nil, fmt.Errorf("sasimi: invalid input network: %w", err)
	}

	patterns := cfg.Patterns
	if patterns == nil {
		patterns = sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	}
	goldenVals := sim.Simulate(golden, patterns)
	goldenOut := sim.OutputMatrix(golden, goldenVals)

	approx := golden.Clone()
	est := newEstimator(cfg.Estimator)

	res := &Result{
		Approx:       approx,
		OriginalArea: cfg.Library.NetworkArea(golden),
	}
	res.FinalArea = res.OriginalArea

	estAccum := 0.0
	scratch := bitvec.New(patterns.NumPatterns())
	change := bitvec.New(patterns.NumPatterns())

	for iter := 1; ; iter++ {
		if cfg.MaxIterations > 0 && iter > cfg.MaxIterations {
			break
		}
		iterStart := time.Now()

		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(goldenOut, sim.OutputMatrix(approx, vals))
		curErr := cfg.Metric.Value(st)
		res.FinalError = curErr

		ctx := &iterContext{net: approx, vals: vals, st: st, metric: cfg.Metric}
		est.prepare(ctx)
		var cpmTime time.Duration
		if ctx.cpm != nil {
			cpmTime = ctx.cpm.BuildTime()
			res.CPMTime += cpmTime
		}

		arrival := cfg.Library.NodeArrival(approx)
		invDelay := cfg.Library.GateDelay(circuit.KindNot)
		cands := gatherCandidates(approx, vals, &cfg, arrival, invDelay)
		if len(cands) == 0 {
			break
		}

		// Estimate the increased error of every candidate (the batch step)
		// and pick the best feasible one by ΔArea/ΔError score.
		estStart := time.Now()
		best := -1
		var feasible []int
		for i := range cands {
			c := &cands[i]
			sub := c.substituteValue(vals, scratch)
			change.Xor(vals.Node(c.Target), sub)
			c.Delta = est.delta(c.Target, sub, change)
			c.Exact = est.exactFor(c.Target)
			c.Score = score(c.AreaGain, c.Delta, patterns.NumPatterns())
			if curErr+c.Delta > cfg.Threshold+1e-12 {
				continue // estimated to bust the budget
			}
			feasible = append(feasible, i)
			if best == -1 || c.Score > cands[best].Score {
				best = i
			}
		}
		if cfg.VerifyTopK > 0 && cfg.Estimator != EstimatorFull && len(feasible) > 0 {
			best = verifyTopK(approx, vals, st, cfg, cands, feasible, curErr, scratch, change)
		}
		res.EstimateTime += time.Since(estStart)
		if best == -1 {
			break // nothing fits in the remaining budget
		}
		chosen := cands[best]

		// Apply the substitution on a backup so an over-budget result can
		// be rolled back, then measure the actual error (paper §3.2).
		backup := approx.Clone()
		applyCandidate(approx, &chosen)

		newVals := sim.Simulate(approx, patterns)
		newSt := emetric.NewState(goldenOut, sim.OutputMatrix(approx, newVals))
		actual := cfg.Metric.Value(newSt)
		if actual > cfg.Threshold+1e-12 {
			// The estimate was wrong and the budget is blown: restore the
			// previous circuit and stop, as the paper's flow does.
			*approx = *backup
			break
		}

		estAccum += chosen.Delta
		res.NumIterations++
		res.FinalArea = cfg.Library.NetworkArea(approx)
		res.FinalError = actual
		if cfg.KeepTrace {
			res.Iterations = append(res.Iterations, IterationRecord{
				Iter:       iter,
				Target:     backup.NameOf(chosen.Target),
				Sub:        subName(backup, &chosen),
				Inverted:   chosen.Inverted,
				EstGain:    chosen.AreaGain,
				EstDelta:   chosen.Delta,
				EstAccum:   estAccum,
				ActualErr:  actual,
				Area:       res.FinalArea,
				Candidates: len(cands),
				CPMTime:    cpmTime,
				IterTime:   time.Since(iterStart),
			})
		}
	}

	res.TotalTime = time.Since(start)
	if err := approx.Validate(); err != nil {
		return nil, fmt.Errorf("sasimi: flow corrupted the network: %w", err)
	}
	return res, nil
}

// verifyTopK re-evaluates the K best-scoring feasible candidates with
// exact cone resimulation and returns the index of the best exactly-scored
// feasible candidate, or -1 if none survives. The verified candidates'
// Delta and Score fields are overwritten with exact values.
func verifyTopK(net *circuit.Network, vals *sim.Values, st *emetric.State,
	cfg Config, cands []Candidate, feasible []int, curErr float64,
	scratch, change *bitvec.Vec) int {

	k := cfg.VerifyTopK
	if k > len(feasible) {
		k = len(feasible)
	}
	// Partial selection of the top-k by score.
	sort.Slice(feasible, func(a, b int) bool {
		return cands[feasible[a]].Score > cands[feasible[b]].Score
	})
	best := -1
	for _, idx := range feasible[:k] {
		c := &cands[idx]
		sub := c.substituteValue(vals, scratch)
		c.Delta = core.ExactDelta(net, vals, c.Target, sub, st, cfg.Metric)
		c.Exact = true
		c.Score = score(c.AreaGain, c.Delta, vals.M)
		if curErr+c.Delta > cfg.Threshold+1e-12 {
			continue
		}
		if best == -1 || c.Score > cands[best].Score {
			best = idx
		}
	}
	return best
}

// score ranks candidates: area gain per unit of increased error. ATs whose
// estimated error is non-positive are strictly better than any
// error-increasing AT; among them a larger gain and a more negative delta
// win. The floor of one tenth of a pattern keeps the ratio finite.
func score(gain, delta float64, m int) float64 {
	floor := 0.1 / float64(m)
	if delta <= 0 {
		// Map into a band above every positive-delta score.
		return 1e12 * (gain + 1) * (1 - delta)
	}
	if delta < floor {
		delta = floor
	}
	return gain / delta
}

func subName(n *circuit.Network, c *Candidate) string {
	if c.Const {
		if c.ConstVal {
			return "const1"
		}
		return "const0"
	}
	return n.NameOf(c.Sub)
}

// applyCandidate performs the netlist surgery for an accepted candidate.
func applyCandidate(net *circuit.Network, c *Candidate) {
	var repl circuit.NodeID
	switch {
	case c.Const:
		repl = net.AddConst(c.ConstVal)
	case c.Inverted:
		repl = net.AddGate(circuit.KindNot, c.Sub)
	default:
		repl = c.Sub
	}
	net.ReplaceNode(c.Target, repl)
	net.SweepFrom(c.Target)
}

// EstimateAll exposes the batch estimation step in isolation: it returns
// every admissible candidate of the network with Delta filled in by the
// selected estimator, without applying anything. The facade and the
// examples use it to demonstrate pure batch estimation.
func EstimateAll(golden, approx *circuit.Network, cfg Config) ([]Candidate, error) {
	cfg.fillDefaults()
	if err := approx.Validate(); err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if patterns == nil {
		patterns = sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	}
	goldenVals := sim.Simulate(golden, patterns)
	vals := sim.Simulate(approx, patterns)
	st := emetric.NewState(sim.OutputMatrix(golden, goldenVals), sim.OutputMatrix(approx, vals))

	est := newEstimator(cfg.Estimator)
	ctx := &iterContext{net: approx, vals: vals, st: st, metric: cfg.Metric}
	est.prepare(ctx)

	arrival := cfg.Library.NodeArrival(approx)
	cands := gatherCandidates(approx, vals, &cfg, arrival, cfg.Library.GateDelay(circuit.KindNot))
	scratch := bitvec.New(patterns.NumPatterns())
	change := bitvec.New(patterns.NumPatterns())
	for i := range cands {
		c := &cands[i]
		sub := c.substituteValue(vals, scratch)
		change.Xor(vals.Node(c.Target), sub)
		c.Delta = est.delta(c.Target, sub, change)
		c.Exact = est.exactFor(c.Target)
		c.Score = score(c.AreaGain, c.Delta, patterns.NumPatterns())
	}
	return cands, nil
}
