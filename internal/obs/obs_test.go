package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// recordTracer captures events for assertions.
type recordTracer struct {
	phases  []PhaseInfo
	iters   []IterationInfo
	cands   []CandidateInfo
	accepts []AcceptInfo
}

func (r *recordTracer) OnPhase(i PhaseInfo)         { r.phases = append(r.phases, i) }
func (r *recordTracer) OnIteration(i IterationInfo) { r.iters = append(r.iters, i) }
func (r *recordTracer) OnCandidate(i CandidateInfo) { r.cands = append(r.cands, i) }
func (r *recordTracer) OnAccept(i AcceptInfo)       { r.accepts = append(r.accepts, i) }

var allocSink []byte

func TestPhaseNames(t *testing.T) {
	want := []string{"pattern_gen", "simulate", "cpm_build", "estimate", "verify_apply"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Fatalf("phase %d = %q, want %q", p, p.String(), want[p])
		}
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase must stringify as unknown")
	}
}

func TestProfileAggregatesAndEmits(t *testing.T) {
	rec := &recordTracer{}
	pr := &Profile{TrackMem: true, Tracer: rec}
	pr.Iter = 3
	sp := pr.Begin(PhaseSimulate)
	// Allocate something measurable; the package-level sink keeps the
	// slice from being stack-allocated or optimised away.
	allocSink = make([]byte, 1<<16)
	time.Sleep(time.Millisecond)
	pr.End(sp)

	rep := pr.Report()
	st := rep.Stats[PhaseSimulate]
	if st.Count != 1 || st.Time <= 0 {
		t.Fatalf("bad span aggregate: %+v", st)
	}
	if st.Mem.Mallocs <= 0 || st.Mem.Bytes < 1<<16 {
		t.Fatalf("mem delta not tracked: %+v", st.Mem)
	}
	if rep.Total() != st.Time {
		t.Fatalf("total %v != simulate %v", rep.Total(), st.Time)
	}
	if len(rec.phases) != 1 || rec.phases[0].Phase != PhaseSimulate || rec.phases[0].Iter != 3 {
		t.Fatalf("OnPhase not emitted correctly: %+v", rec.phases)
	}

	reg := NewRegistry()
	pr.Export(reg, "sasimi")
	snap := reg.Snapshot()
	if snap.Counters[`sasimi_phase_ns{phase="simulate"}`] != int64(st.Time) {
		t.Fatalf("export missing phase ns: %v", snap.Counters)
	}
	if snap.Counters[`sasimi_phase_spans{phase="pattern_gen"}`] != 0 {
		t.Fatal("unused phase should export zero spans")
	}
}

func TestNilProfileIsInert(t *testing.T) {
	var pr *Profile
	sp := pr.Begin(PhaseEstimate) // must not panic
	pr.End(sp)
	if pr.Report().Total() != 0 {
		t.Fatal("nil profile reported time")
	}
	pr.Export(NewRegistry(), "x") // must not panic
}

func TestDriftRecorderSplitsByCertificate(t *testing.T) {
	reg := NewRegistry()
	d := NewDriftRecorder(reg, "sasimi_accept_drift")
	d.Record(0.010, 0.010, true)  // exact: zero drift
	d.Record(0.010, 0.013, false) // inexact: +0.003
	d.Record(0.020, 0.011, false) // inexact: -0.009

	snap := reg.Snapshot()
	ex := snap.Histograms[`sasimi_accept_drift{cert="exact"}`]
	inx := snap.Histograms[`sasimi_accept_drift{cert="inexact"}`]
	if ex.Count != 1 || ex.Sum != 0 {
		t.Fatalf("exact series: %+v", ex)
	}
	if inx.Count != 2 || inx.Max < 0.003-1e-12 || inx.Min > -0.009+1e-12 {
		t.Fatalf("inexact series: %+v", inx)
	}

	var nilRec *DriftRecorder
	nilRec.Record(1, 2, true) // must not panic
	if NewDriftRecorder(nil, "x") != nil {
		t.Fatal("nil registry must yield nil recorder")
	}
}

func TestJSONLTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.OnPhase(PhaseInfo{Phase: PhaseCPMBuild, Iter: 1, Duration: 42,
		Mem: MemDelta{Bytes: 100, Mallocs: 3}})
	tr.OnIteration(IterationInfo{Iter: 1, CurErr: 0.01, Candidates: 10, Feasible: 4,
		Accepted: true, Duration: 1000})
	tr.OnCandidate(CandidateInfo{Iter: 1, Target: "g1", Sub: "g2"}) // dropped by default
	tr.EmitCandidates = true
	tr.OnCandidate(CandidateInfo{Iter: 1, Target: "g1", Sub: "const0", Delta: 0.002, Exact: true})
	tr.OnAccept(AcceptInfo{Iter: 1, Target: "g1", Sub: "g2", Predicted: 0.012,
		Actual: 0.013, Drift: 0.001, Exact: false, Area: 99})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	var evs []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	kinds := make([]string, len(evs))
	for i, ev := range evs {
		kinds[i] = ev["ev"].(string)
	}
	if got, want := strings.Join(kinds, ","), "phase,iter,cand,accept"; got != want {
		t.Fatalf("event kinds %q, want %q", got, want)
	}
	if evs[0]["phase"] != "cpm_build" || evs[0]["ns"] != float64(42) {
		t.Fatalf("phase event wrong: %v", evs[0])
	}
	if evs[3]["drift"] != float64(0.001) || evs[3]["exact"] != false {
		t.Fatalf("accept event wrong: %v", evs[3])
	}
}

func TestMultiTracer(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must stay nil (nil fast path)")
	}
	a, b := &recordTracer{}, &recordTracer{}
	if Multi(a, nil) != Tracer(a) {
		t.Fatal("single live tracer must be returned unwrapped")
	}
	m := Multi(a, b)
	m.OnIteration(IterationInfo{Iter: 1})
	m.OnAccept(AcceptInfo{Iter: 1})
	m.OnPhase(PhaseInfo{})
	m.OnCandidate(CandidateInfo{})
	if len(a.iters) != 1 || len(b.iters) != 1 || len(a.accepts) != 1 ||
		len(b.phases) != 1 || len(b.cands) != 1 {
		t.Fatal("multi tracer did not fan out")
	}
}

func TestWriteSummary(t *testing.T) {
	var rep PhaseReport
	rep.Stats[PhaseSimulate] = PhaseStat{Time: 3 * time.Millisecond, Count: 4,
		Mem: MemDelta{Bytes: 2048, Mallocs: 10}}
	rep.Stats[PhaseCPMBuild] = PhaseStat{Time: time.Millisecond, Count: 4}

	reg := NewRegistry()
	d := NewDriftRecorder(reg, "drift")
	d.Record(0, 0, true)
	d.Record(0, 0.004, false)

	var buf bytes.Buffer
	if err := WriteSummary(&buf, rep, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phase breakdown", "simulate", "cpm_build", "75.0%",
		`drift{cert="exact"}`, `drift{cert="inexact"}`, "n=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pattern_gen") {
		t.Fatalf("summary lists phase with no spans:\n%s", out)
	}
}

func TestBucketLabel(t *testing.T) {
	bounds := []float64{-1, 0, 1}
	cases := []string{"(-inf, -1]", "(-1, 0]", "(0, 1]", "(1, +inf]"}
	for i, want := range cases {
		if got := bucketLabel(bounds, i); got != want {
			t.Fatalf("bucket %d = %q, want %q", i, got, want)
		}
	}
	if bucketLabel(nil, 0) != "(-inf, +inf]" {
		t.Fatal("empty bounds label")
	}
}
