package bench

import (
	"fmt"

	"batchals/internal/circuit"
)

// partialProducts builds the width x width AND matrix of a multiplier:
// column c collects the bits a_i & b_j with i+j == c.
func partialProducts(n *circuit.Network, a, b []circuit.NodeID) [][]circuit.NodeID {
	width := len(a)
	cols := make([][]circuit.NodeID, 2*width)
	for i := 0; i < width; i++ {
		for j := 0; j < width; j++ {
			pp := n.AddGate(circuit.KindAnd, a[i], b[j])
			cols[i+j] = append(cols[i+j], pp)
		}
	}
	return cols
}

// MUL returns a width x width array multiplier: inputs a, b; outputs
// p0..p(2w-1). The partial-product columns are reduced ripple-style, one
// row at a time, mirroring the classic carry-save array structure. The
// paper's MUL8 is MUL(8).
func MUL(width int) *circuit.Network {
	mustPositive("MUL", width)
	n := circuit.New(fmt.Sprintf("MUL%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	cols := partialProducts(n, a, b)
	// Sequentially add each remaining row with full adders, keeping one
	// running sum per column (array reduction).
	out := make([]circuit.NodeID, 2*width)
	for c := 0; c < 2*width; c++ {
		for len(cols[c]) > 1 {
			if len(cols[c]) >= 3 {
				s, co := fullAdder(n, cols[c][0], cols[c][1], cols[c][2])
				cols[c] = append(cols[c][3:], s)
				cols[c+1] = append(cols[c+1], co)
			} else {
				s, co := halfAdder(n, cols[c][0], cols[c][1])
				cols[c] = append(cols[c][2:], s)
				cols[c+1] = append(cols[c+1], co)
			}
		}
		if len(cols[c]) == 1 {
			out[c] = cols[c][0]
		} else {
			out[c] = n.AddConst(false)
		}
	}
	addOutputVector(n, "p", out)
	return n
}

// WTM returns a width x width Wallace-tree multiplier: the partial-product
// columns are compressed in parallel layers of 3:2 and 2:2 counters until
// every column holds at most two bits, and a final ripple-carry adder
// produces the product. The paper's WTM8 is WTM(8).
func WTM(width int) *circuit.Network {
	mustPositive("WTM", width)
	n := circuit.New(fmt.Sprintf("WTM%d", width))
	a := addInputVector(n, "a", width)
	b := addInputVector(n, "b", width)
	cols := partialProducts(n, a, b)

	// Wallace reduction: in each layer, greedily compress every column.
	for maxHeight(cols) > 2 {
		next := make([][]circuit.NodeID, len(cols))
		for c := 0; c < len(cols); c++ {
			col := cols[c]
			for len(col) >= 3 {
				s, co := fullAdder(n, col[0], col[1], col[2])
				col = col[3:]
				next[c] = append(next[c], s)
				next[c+1] = append(next[c+1], co)
			}
			if len(col) == 2 && len(cols[c]) > 2 {
				s, co := halfAdder(n, col[0], col[1])
				col = col[2:]
				next[c] = append(next[c], s)
				next[c+1] = append(next[c+1], co)
			}
			next[c] = append(next[c], col...)
		}
		cols = next
	}

	// Final carry-propagate addition of the two remaining rows.
	out := make([]circuit.NodeID, 2*width)
	var carry circuit.NodeID = circuit.InvalidNode
	for c := 0; c < 2*width; c++ {
		col := cols[c]
		switch {
		case len(col) == 0:
			if carry != circuit.InvalidNode {
				out[c] = carry
				carry = circuit.InvalidNode
			} else {
				out[c] = n.AddConst(false)
			}
		case len(col) == 1:
			if carry != circuit.InvalidNode {
				s, co := halfAdder(n, col[0], carry)
				out[c], carry = s, co
			} else {
				out[c] = col[0]
			}
		default: // 2 bits
			if carry != circuit.InvalidNode {
				s, co := fullAdder(n, col[0], col[1], carry)
				out[c], carry = s, co
			} else {
				s, co := halfAdder(n, col[0], col[1])
				out[c], carry = s, co
			}
		}
	}
	addOutputVector(n, "p", out)
	// The top column's final carry is unused; drop its dead gates (found
	// by the analyze dangling-node pass).
	n.Sweep()
	return n
}

func maxHeight(cols [][]circuit.NodeID) int {
	h := 0
	for _, c := range cols {
		if len(c) > h {
			h = len(c)
		}
	}
	return h
}
