package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"batchals/internal/benchmeta"
)

// writeBaseline marshals a baseline to a temp file and returns its path.
func writeBaseline(t *testing.T, dir, name string, b benchmeta.Baseline) string {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sameEnv() *benchmeta.Env { return benchmeta.CaptureEnv("x") }

func bench(name string, iters int64, ns, allocs float64) benchmeta.Bench {
	return benchmeta.Bench{
		Name:       name,
		Iterations: iters,
		Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocs},
	}
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1100, 10)},
	})
	code, stdout, stderr := runDiff(t, old, niu)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "no regressions") {
		t.Errorf("stdout missing success line:\n%s", stdout)
	}
}

func TestTimingRegressionGates(t *testing.T) {
	dir := t.TempDir()
	// 100 iterations -> pad 0.05; +50% exceeds 0.30+0.05.
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1500, 10)},
	})
	code, stdout, stderr := runDiff(t, old, niu)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "SLOWER") {
		t.Errorf("stdout missing SLOWER verdict:\n%s", stdout)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr missing regression report:\n%s", stderr)
	}

	// -warn-only downgrades the exit code but still reports.
	code, _, stderr = runDiff(t, "-warn-only", old, niu)
	if code != 0 {
		t.Errorf("-warn-only exit %d, want 0", code)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("-warn-only stderr lost the report:\n%s", stderr)
	}
}

func TestNoisePadAbsorbsSingleIterationSwing(t *testing.T) {
	dir := t.TempDir()
	// benchtime=1x: +80% must NOT gate (pad 2.00) but must warn.
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkFlow", 1, 1e9, 100)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkFlow", 1, 1.8e9, 100)},
	})
	code, _, stderr := runDiff(t, old, niu)
	if code != 0 {
		t.Fatalf("benchtime=1x +80%% gated despite the noise pad; stderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "benchtime=1x") {
		t.Errorf("missing single-iteration warning:\n%s", stderr)
	}
}

func TestAllocRegressionGatesEvenAtOneIteration(t *testing.T) {
	dir := t.TempDir()
	// Allocation counts get no noise pad: +50% allocs at 1 iteration gates.
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkFlow", 1, 1e9, 100)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkFlow", 1, 1e9, 150)},
	})
	code, stdout, _ := runDiff(t, old, niu)
	if code != 1 {
		t.Fatalf("alloc regression not gated, exit %d", code)
	}
	if !strings.Contains(stdout, "ALLOCS") {
		t.Errorf("stdout missing ALLOCS verdict:\n%s", stdout)
	}
}

func TestMissingBenchmarkIsRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{
			bench("BenchmarkA", 100, 1000, 10),
			bench("BenchmarkGone", 100, 2000, 20),
		},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	code, stdout, stderr := runDiff(t, old, niu)
	if code != 1 {
		t.Fatalf("missing benchmark not gated, exit %d", code)
	}
	if !strings.Contains(stdout, "MISSING") || !strings.Contains(stderr, "BenchmarkGone") {
		t.Errorf("missing-benchmark report wrong:\nstdout %s\nstderr %s", stdout, stderr)
	}

	// -allow-missing exempts exactly the listed name, nothing else.
	code, stdout, _ = runDiff(t, "-allow-missing", "BenchmarkGone", old, niu)
	if code != 0 {
		t.Fatalf("-allow-missing did not exempt, exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "exempt") {
		t.Errorf("exempt row missing:\n%s", stdout)
	}
	code, _, _ = runDiff(t, "-allow-missing", "BenchmarkOther", old, niu)
	if code != 1 {
		t.Fatalf("-allow-missing with a non-matching name still exempted, exit %d", code)
	}
}

func TestEnvMismatchDowngradesTiming(t *testing.T) {
	dir := t.TempDir()
	// A different CPU model at the same parallelism and toolchain: timing
	// is advisory, allocation counts still gate.
	otherCPU := sameEnv()
	otherCPU.CPUModel = "Imaginary CPU @ 9.9GHz"
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: otherCPU,
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 9000, 10)},
	})
	code, stdout, stderr := runDiff(t, old, niu)
	if code != 0 {
		t.Fatalf("cross-hardware timing delta gated, exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "slower?") {
		t.Errorf("stdout missing advisory slower? verdict:\n%s", stdout)
	}
	if !strings.Contains(stderr, "differs") {
		t.Errorf("stderr missing env mismatch warning:\n%s", stderr)
	}

	// An alloc regression still gates when only the CPU model differs.
	niu2 := writeBaseline(t, dir, "new2.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 20)},
	})
	code, _, _ = runDiff(t, old, niu2)
	if code != 1 {
		t.Errorf("alloc regression not gated across same-parallelism hardware, exit %d", code)
	}
}

func TestParallelismMismatchDowngradesAllocs(t *testing.T) {
	dir := t.TempDir()
	// Worker pools default to NumCPU, so a GOMAXPROCS/NumCPU mismatch makes
	// allocation counts incomparable too: advisory verdict, exit 0.
	otherProcs := sameEnv()
	otherProcs.GOMAXPROCS++
	otherProcs.NumCPU++
	old := writeBaseline(t, dir, "old.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: otherProcs,
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	niu := writeBaseline(t, dir, "new.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: sameEnv(),
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 20)},
	})
	code, stdout, stderr := runDiff(t, old, niu)
	if code != 0 {
		t.Fatalf("cross-parallelism alloc delta gated, exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "allocs?") {
		t.Errorf("stdout missing advisory allocs? verdict:\n%s", stdout)
	}

	// A v1 baseline (no env) downgrades allocation deltas the same way.
	v1 := writeBaseline(t, dir, "v1.json", benchmeta.Baseline{
		Benchmarks: []benchmeta.Bench{bench("BenchmarkA", 100, 1000, 10)},
	})
	code, stdout, stderr = runDiff(t, v1, niu)
	if code != 0 {
		t.Fatalf("v1-baseline alloc delta gated, exit %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "allocs?") {
		t.Errorf("v1 stdout missing advisory allocs? verdict:\n%s", stdout)
	}
	if !strings.Contains(stderr, "schema v1") {
		t.Errorf("v1 stderr missing no-env warning:\n%s", stderr)
	}

	// Missing benchmarks gate regardless of env comparability.
	old2 := writeBaseline(t, dir, "old2.json", benchmeta.Baseline{
		SchemaVersion: 2, Env: otherProcs,
		Benchmarks: []benchmeta.Bench{
			bench("BenchmarkA", 100, 1000, 10),
			bench("BenchmarkGone", 100, 1000, 10),
		},
	})
	if code, _, _ := runDiff(t, old2, niu); code != 1 {
		t.Errorf("missing benchmark not gated across parallelism mismatch, exit %d", code)
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	if code, _, _ := runDiff(t, "only-one.json"); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "/nonexistent/a.json", "/nonexistent/b.json"); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}
}

func TestNoisePadTiers(t *testing.T) {
	for _, tc := range []struct {
		iters int64
		want  float64
	}{{1, 2.00}, {4, 0.50}, {16, 0.20}, {17, 0.05}, {1000, 0.05}} {
		if got := noisePad(tc.iters); got != tc.want {
			t.Errorf("noisePad(%d) = %f, want %f", tc.iters, got, tc.want)
		}
	}
}
