package circuit

// PropagateConstants folds constants through the network: buffers collapse
// onto their drivers, gates with controlling constant inputs become
// constants, non-controlling constant inputs are dropped, constant-fed
// XOR/XNOR absorb the constant into their phase, and constant-selected
// MUXes collapse onto the chosen branch. Dead logic is swept. Returns the
// number of gates removed.
//
// ALS flows that force signals to constants (internal/snap, constant
// substitutions in SASIMI) leave such foldable structure behind; running
// this pass afterwards converts the logical simplification into counted
// area. It is also the cleanup needed after loading machine-generated
// netlist files.
func (n *Network) PropagateConstants() int {
	removed := 0
	for {
		progress := false
		for _, id := range append([]NodeID(nil), n.TopoOrder()...) {
			if !n.IsLive(id) || !n.Kind(id).IsGate() {
				continue
			}
			repl, changed := n.foldOne(id)
			if !changed {
				continue
			}
			if repl != id {
				before := n.NumNodes()
				n.ReplaceNode(id, repl)
				n.SweepFrom(id)
				removed += before - n.NumNodes()
			}
			progress = true
		}
		if !progress {
			return removed
		}
	}
}

// foldOne computes the simplified replacement of gate id, creating helper
// nodes as needed. It returns (replacement, true) when the gate folds;
// the replacement may be a rebuilt smaller gate. (id, false) means no
// change.
func (n *Network) foldOne(id NodeID) (NodeID, bool) {
	kind := n.Kind(id)
	fanins := n.Fanins(id)

	constOf := func(f NodeID) (bool, bool) { // value, isConst
		switch n.Kind(f) {
		case KindConst0:
			return false, true
		case KindConst1:
			return true, true
		}
		return false, false
	}

	switch kind {
	case KindBuf:
		return fanins[0], true
	case KindNot:
		if v, ok := constOf(fanins[0]); ok {
			return n.AddConst(!v), true
		}
		return id, false
	case KindMux:
		if v, ok := constOf(fanins[0]); ok {
			if v {
				return fanins[2], true
			}
			return fanins[1], true
		}
		return id, false
	case KindAnd, KindNand, KindOr, KindNor:
		isAnd := kind == KindAnd || kind == KindNand
		inverted := kind == KindNand || kind == KindNor
		keep := make([]NodeID, 0, len(fanins))
		for _, f := range fanins {
			v, ok := constOf(f)
			if !ok {
				keep = append(keep, f)
				continue
			}
			if v == isAnd {
				// Non-controlling value (1 for AND family, 0 for OR
				// family): the input is an identity element, drop it.
				continue
			}
			// Controlling value: AND family with a 0 evaluates to 0, OR
			// family with a 1 evaluates to 1 — i.e. to v — then the NAND/
			// NOR inversion applies.
			out := v
			if inverted {
				out = !out
			}
			return n.AddConst(out), true
		}
		if len(keep) == len(fanins) {
			return id, false
		}
		switch len(keep) {
		case 0:
			// All fanins were non-controlling constants.
			return n.AddConst(isAnd != inverted), true
		case 1:
			if inverted {
				return n.AddGate(KindNot, keep[0]), true
			}
			return keep[0], true
		default:
			return n.AddGate(kind, keep...), true
		}
	case KindXor, KindXnor:
		phase := kind == KindXnor
		keep := make([]NodeID, 0, len(fanins))
		for _, f := range fanins {
			if v, ok := constOf(f); ok {
				if v {
					phase = !phase
				}
				continue
			}
			keep = append(keep, f)
		}
		if len(keep) == len(fanins) {
			return id, false
		}
		switch len(keep) {
		case 0:
			return n.AddConst(phase), true
		case 1:
			if phase {
				return n.AddGate(KindNot, keep[0]), true
			}
			return n.AddGate(KindBuf, keep[0]), true
		default:
			k := KindXor
			if phase {
				k = KindXnor
			}
			return n.AddGate(k, keep...), true
		}
	}
	return id, false
}
