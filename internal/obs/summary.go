package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteSummary renders the human-readable end-of-run report: a per-phase
// wall-time/allocation table from report, followed by the drift series of
// every histogram in snap whose name carries a cert label (the
// DriftRecorder naming convention). Either part is skipped when empty.
func WriteSummary(w io.Writer, report PhaseReport, snap Snapshot) error {
	var b strings.Builder
	writePhaseTable(&b, report)
	writeDriftTable(&b, snap)
	_, err := io.WriteString(w, b.String())
	return err
}

func writePhaseTable(b *strings.Builder, report PhaseReport) {
	total := report.Total()
	if total == 0 {
		return
	}
	hasMem := false
	for _, st := range report.Stats {
		if st.Mem.Mallocs > 0 {
			hasMem = true
			break
		}
	}
	fmt.Fprintf(b, "phase breakdown (%s total):\n", roundDuration(total))
	for p := Phase(0); p < NumPhases; p++ {
		st := report.Stats[p]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(b, "  %-12s %10s  %5.1f%%  %5d spans", p.String(),
			roundDuration(st.Time), 100*float64(st.Time)/float64(total), st.Count)
		if hasMem {
			fmt.Fprintf(b, "  %10s alloc", byteCount(st.Mem.Bytes))
		}
		b.WriteByte('\n')
	}
}

func writeDriftTable(b *strings.Builder, snap Snapshot) {
	for _, name := range sortedKeys(snap.Histograms) {
		if !strings.Contains(name, `cert="`) {
			continue
		}
		h := snap.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(b, "%s: no samples\n", name)
			continue
		}
		fmt.Fprintf(b, "%s: n=%d mean=%+.3g min=%+.3g max=%+.3g\n",
			name, h.Count, h.Sum/float64(h.Count), h.Min, h.Max)
		// One bar row per populated bucket, scaled to the fullest bucket.
		peak := int64(0)
		for _, c := range h.Counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			fmt.Fprintf(b, "    %-22s %6d %s\n", bucketLabel(h.Bounds, i), c,
				strings.Repeat("#", 1+int(29*c/peak)))
		}
	}
}

func bucketLabel(bounds []float64, i int) string {
	switch {
	case len(bounds) == 0:
		return "(-inf, +inf]"
	case i == 0:
		return fmt.Sprintf("(-inf, %g]", bounds[0])
	case i == len(bounds):
		return fmt.Sprintf("(%g, +inf]", bounds[len(bounds)-1])
	default:
		return fmt.Sprintf("(%g, %g]", bounds[i-1], bounds[i])
	}
}

// roundDuration rounds d to a display precision that keeps three or more
// significant figures for anything from nanosecond-scale microbenchmarks
// to hour-scale flows.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
