package serve

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// TestServedFlowIsBitIdentical is the acceptance gate of the serving
// layer: a flow wired into a Run — metrics registry, stream tracer with a
// live SSE consumer, flight recorder — must synthesise the bit-identical
// circuit a bare flow produces.
func TestServedFlowIsBitIdentical(t *testing.T) {
	net, err := bench.ByName("mul4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sasimi.Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   0.05,
			NumPatterns: 2000,
			Seed:        7,
		},
		Estimator: sasimi.EstimatorBatch,
	}
	plain, err := sasimi.Run(net, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s := New(NewRunRegistry())
	s.Heartbeat = 10 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	run := s.Runs.Get("mul4")

	// Attach a live SSE consumer that reads the whole stream.
	resp, err := http.Get(ts.URL + "/events?run=mul4")
	if err != nil {
		t.Fatal(err)
	}
	var nEvents atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: ") {
				nEvents.Add(1)
			}
		}
	}()

	served := cfg
	served.Metrics = run.Registry
	served.Tracer = run.Tracer()
	run.SetState(RunActive, "")
	res, err := sasimi.Run(net, served)
	if err != nil {
		t.Fatal(err)
	}
	run.SetState(RunDone, "")
	// Let the consumer drain what the flow published before disconnecting.
	deadline := time.Now().Add(2 * time.Second)
	for nEvents.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp.Body.Close() // disconnect the consumer
	<-done

	if plain.FinalArea != res.FinalArea || plain.NumIterations != res.NumIterations {
		t.Fatalf("serving changed the flow: %v/%d vs %v/%d",
			plain.FinalArea, plain.NumIterations, res.FinalArea, res.NumIterations)
	}
	if plain.Approx.Dump() != res.Approx.Dump() {
		t.Fatal("serving changed the synthesised circuit")
	}
	if nEvents.Load() == 0 {
		t.Fatal("live SSE consumer saw no events from the served flow")
	}

	// The run's own registry carries the flow metrics, and the flight
	// recorder retained the accepts.
	snap := run.Registry.Snapshot()
	if snap.Counters["sasimi_accepts_total"] != int64(res.NumIterations) {
		t.Fatalf("run registry accepts %d != %d",
			snap.Counters["sasimi_accepts_total"], res.NumIterations)
	}
	dump := run.Flight.Snapshot()
	if dump.TotalAccepts != int64(res.NumIterations) {
		t.Fatalf("flight recorder accepts %d != %d", dump.TotalAccepts, res.NumIterations)
	}
	// Confidence fields flowed all the way into the recorded accepts.
	for _, a := range dump.Accepts {
		if a.M != 2000 || !a.ErrCI.Valid() {
			t.Fatalf("flight-recorded accept lost confidence fields: %+v", a)
		}
	}
}
