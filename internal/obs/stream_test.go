package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestStreamTracerDeliversInOrder(t *testing.T) {
	tr := NewStreamTracer("r1")
	ch, cancel := tr.Subscribe(16)
	defer cancel()

	tr.OnIteration(IterationInfo{Iter: 1, Accepted: true})
	tr.OnAccept(AcceptInfo{Iter: 1, Target: "g3"})
	tr.OnPhase(PhaseInfo{Phase: PhaseEstimate, Iter: 1})

	want := []EventKind{EventIteration, EventAccept, EventPhase}
	for i, k := range want {
		e := <-ch
		if e.Kind != k {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, k)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Run != "r1" {
			t.Fatalf("event %d run %q", i, e.Run)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d events with a roomy buffer", tr.Dropped())
	}
}

func TestStreamTracerCandidateGate(t *testing.T) {
	tr := NewStreamTracer("")
	ch, cancel := tr.Subscribe(4)
	defer cancel()
	tr.OnCandidate(CandidateInfo{Iter: 1})
	tr.OnIteration(IterationInfo{Iter: 1})
	if e := <-ch; e.Kind != EventIteration {
		t.Fatalf("candidate event leaked without opting in: %v", e.Kind)
	}
	tr.EmitCandidates = true
	tr.OnCandidate(CandidateInfo{Iter: 2, Target: "x"})
	if e := <-ch; e.Kind != EventCandidate || e.Cand.Target != "x" {
		t.Fatalf("opted-in candidate event wrong: %+v", e)
	}
}

func TestStreamTracerDropsOnFullBufferWithoutBlocking(t *testing.T) {
	reg := NewRegistry()
	tr := NewStreamTracer("slow")
	tr.CountDropsIn(reg, "stream_dropped_total")
	ch, cancel := tr.Subscribe(2)
	defer cancel()

	// Publish 10 events into a 2-slot buffer nobody drains: 8 must drop,
	// and every publish must return immediately (the test would hang
	// otherwise).
	for i := 1; i <= 10; i++ {
		tr.OnIteration(IterationInfo{Iter: i})
	}
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("dropped %d, want 8", got)
	}
	if got := reg.Counter("stream_dropped_total").Value(); got != 8 {
		t.Fatalf("registry drop counter %d, want 8", got)
	}
	// The retained events are the earliest two; gaps show in Seq.
	if e := <-ch; e.Seq != 1 || e.Iter.Iter != 1 {
		t.Fatalf("first retained event %+v", e)
	}
	if e := <-ch; e.Seq != 2 {
		t.Fatalf("second retained event seq %d", e.Seq)
	}
}

func TestStreamTracerFanOutAndCancel(t *testing.T) {
	tr := NewStreamTracer("")
	a, cancelA := tr.Subscribe(8)
	b, cancelB := tr.Subscribe(8)
	if tr.Subscribers() != 2 {
		t.Fatalf("subscribers %d, want 2", tr.Subscribers())
	}
	tr.OnAccept(AcceptInfo{Iter: 1})
	if e := <-a; e.Kind != EventAccept {
		t.Fatal("subscriber a missed the event")
	}
	if e := <-b; e.Kind != EventAccept {
		t.Fatal("subscriber b missed the event")
	}
	cancelA()
	cancelA() // idempotent
	if _, ok := <-a; ok {
		t.Fatal("cancelled channel not closed")
	}
	tr.OnAccept(AcceptInfo{Iter: 2})
	if e := <-b; e.Accept.Iter != 2 {
		t.Fatalf("surviving subscriber got %+v", e)
	}
	cancelB()
	// With no subscribers publishing is a cheap no-op (and must not panic).
	tr.OnAccept(AcceptInfo{Iter: 3})
	if tr.Subscribers() != 0 {
		t.Fatalf("subscribers %d after cancels", tr.Subscribers())
	}
}

// TestStreamTracerConcurrentParallel hammers publish against concurrent
// subscribe/cancel cycles under -race: the send path must never race the
// close path.
func TestStreamTracerConcurrentParallel(t *testing.T) {
	tr := NewStreamTracer("race")
	stop := make(chan struct{})
	var publisher sync.WaitGroup
	publisher.Add(1)
	go func() {
		defer publisher.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			tr.OnIteration(IterationInfo{Iter: i})
			tr.OnAccept(AcceptInfo{Iter: i})
			_ = tr.Dropped()
		}
	}()

	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for n := 0; n < 200; n++ {
				ch, cancel := tr.Subscribe(4)
				// Drain a little, then drop the subscription mid-stream —
				// the publisher may be sending into ch right now.
				for k := 0; k < 3; k++ {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
			}
		}()
	}
	churn.Wait()
	close(stop)
	publisher.Wait()
	if tr.Subscribers() != 0 {
		t.Fatalf("subscribers %d after churn", tr.Subscribers())
	}
}

func TestEventMarshalJSON(t *testing.T) {
	e := Event{Kind: EventAccept, Seq: 7, Run: "c880",
		Accept: AcceptInfo{Iter: 2, Target: "n9", Sub: "const1", Actual: 0.01,
			M: 5000, ErrCI: Interval{Lo: 0.007, Hi: 0.013, Level: 0.95}, CIAdequate: true}}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["ev"] != "accept" || m["seq"] != float64(7) || m["run"] != "c880" {
		t.Fatalf("envelope wrong: %v", m)
	}
	data, _ := m["data"].(map[string]any)
	if data["target"] != "n9" || data["m"] != float64(5000) {
		t.Fatalf("payload wrong: %v", data)
	}
	ci, _ := data["err_ci"].(map[string]any)
	if ci["hi"] != 0.013 {
		t.Fatalf("CI lost: %v", data)
	}
	if _, err := json.Marshal(Event{}); err == nil {
		t.Fatal("zero-kind event should fail to marshal")
	}
}
