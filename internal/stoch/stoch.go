// Package stoch implements a stochastic ALS flow in the spirit of Liu &
// Zhang's statistically certified approach (ICCAD 2017), which the paper's
// related-work section discusses: each move randomly proposes one
// substitution and accepts it probabilistically under a cooling
// temperature.
//
// The paper observes that batch estimation cannot help such a flow early
// on (there is only one candidate per move, so direct evaluation is
// affordable) but *can* help "in later iterations when the accumulated
// error is close to the limit: ... it may be advantageous to consider
// multiple candidates and then choose a good one". This package implements
// exactly that hybrid: single-candidate exact evaluation while the error
// budget is comfortable, switching to CPM-ranked batch selection once the
// consumed budget crosses SwitchFrac.
package stoch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/cell"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

// Config parameterises a stochastic flow run.
type Config struct {
	// Metric and Threshold define the error budget.
	Metric    core.Metric
	Threshold float64
	// NumPatterns and Seed control the Monte Carlo run and the proposal
	// randomness (default 10000 / 0).
	NumPatterns int
	Seed        int64
	// Moves is the number of stochastic proposals (default 300).
	Moves int
	// Temp0 is the initial acceptance temperature in area units (default
	// 4); Cooling multiplies it each move (default 0.99).
	Temp0   float64
	Cooling float64
	// SwitchFrac is the consumed-budget fraction after which the flow
	// switches from single-candidate evaluation to batch selection
	// (default 0.5). Set above 1 to disable batch mode.
	SwitchFrac float64
	// BatchWidth is how many random candidates each batch-mode move
	// considers (default 32).
	BatchWidth int
	// Library provides the area model (default cell.Default()).
	Library *cell.Library
}

func (cfg *Config) fillDefaults() {
	if cfg.NumPatterns == 0 {
		cfg.NumPatterns = 10000
	}
	if cfg.Moves == 0 {
		cfg.Moves = 300
	}
	if cfg.Temp0 == 0 {
		cfg.Temp0 = 4
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.99
	}
	if cfg.SwitchFrac == 0 {
		cfg.SwitchFrac = 0.5
	}
	if cfg.BatchWidth == 0 {
		cfg.BatchWidth = 32
	}
	if cfg.Library == nil {
		cfg.Library = cell.Default()
	}
}

// Result reports a stochastic flow run.
type Result struct {
	Approx        *circuit.Network
	OriginalArea  float64
	FinalArea     float64
	FinalError    float64
	Accepted      int // accepted moves
	Proposed      int // proposed moves (== cfg.Moves unless it ran dry)
	BatchMoves    int // moves decided in batch mode
	SwitchedAtErr float64
	TotalTime     time.Duration
}

// AreaRatio returns FinalArea / OriginalArea.
func (r *Result) AreaRatio() float64 {
	if r.OriginalArea == 0 {
		return 1
	}
	return r.FinalArea / r.OriginalArea
}

// proposal is one randomly drawn substitution.
type proposal struct {
	target, sub circuit.NodeID
	inverted    bool
	gain        float64
	delta       float64
}

// Run executes the stochastic flow on a copy of golden.
func Run(golden *circuit.Network, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.fillDefaults()
	if cfg.Threshold < 0 {
		return nil, errors.New("stoch: negative threshold")
	}
	if cfg.Metric == core.MetricAEM && golden.NumOutputs() > 63 {
		return nil, fmt.Errorf("stoch: AEM flow needs <= 63 outputs, have %d", golden.NumOutputs())
	}
	if err := golden.Validate(); err != nil {
		return nil, fmt.Errorf("stoch: invalid input network: %w", err)
	}

	r := rand.New(rand.NewSource(cfg.Seed + 7919))
	patterns := sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	goldenOut := sim.OutputMatrix(golden, sim.Simulate(golden, patterns))
	approx := golden.Clone()
	res := &Result{Approx: approx, OriginalArea: cfg.Library.NetworkArea(golden)}
	res.FinalArea = res.OriginalArea
	res.SwitchedAtErr = math.NaN()

	temp := cfg.Temp0
	scratch := bitvec.New(cfg.NumPatterns)
	change := bitvec.New(cfg.NumPatterns)

	for move := 0; move < cfg.Moves; move++ {
		temp *= cfg.Cooling
		res.Proposed++

		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(goldenOut, sim.OutputMatrix(approx, vals))
		curErr := cfg.Metric.Value(st)
		res.FinalError = curErr

		arrival := cfg.Library.NodeArrival(approx)
		batchMode := cfg.Threshold > 0 && curErr >= cfg.SwitchFrac*cfg.Threshold
		if batchMode && math.IsNaN(res.SwitchedAtErr) {
			res.SwitchedAtErr = curErr
		}

		var best *proposal
		if batchMode {
			// Late phase: draw several candidates, rank them all with the
			// CPM in one pass, take the best feasible.
			cpm := core.Build(approx, vals)
			res.BatchMoves++
			for k := 0; k < cfg.BatchWidth; k++ {
				p := draw(approx, vals, arrival, cfg, r)
				if p == nil {
					continue
				}
				sub := substituteValue(approx, vals, p, scratch)
				change.Xor(vals.Node(p.target), sub)
				if cfg.Metric == core.MetricAEM {
					p.delta = cpm.DeltaAEM(p.target, change, st)
				} else {
					p.delta = cpm.DeltaER(p.target, change, st)
				}
				if curErr+p.delta > cfg.Threshold+1e-12 {
					continue
				}
				if best == nil || p.gain/(p.delta+1e-9) > best.gain/(best.delta+1e-9) {
					best = p
				}
			}
		} else {
			// Early phase: a single proposal, evaluated exactly (cheap
			// because it is just one candidate — the paper's observation).
			p := draw(approx, vals, arrival, cfg, r)
			if p == nil {
				continue
			}
			sub := substituteValue(approx, vals, p, scratch)
			p.delta = core.ExactDelta(approx, vals, p.target, sub, st, cfg.Metric)
			if curErr+p.delta > cfg.Threshold+1e-12 {
				continue
			}
			// Metropolis acceptance on the area gain.
			if p.gain < 0 && r.Float64() >= math.Exp(p.gain/math.Max(temp, 1e-6)) {
				continue
			}
			best = p
		}
		if best == nil {
			continue
		}

		backup := approx.Clone()
		apply(approx, best)
		newVals := sim.Simulate(approx, patterns)
		newSt := emetric.NewState(goldenOut, sim.OutputMatrix(approx, newVals))
		actual := cfg.Metric.Value(newSt)
		if actual > cfg.Threshold+1e-12 {
			*approx = *backup
			continue
		}
		res.Accepted++
		res.FinalArea = cfg.Library.NetworkArea(approx)
		res.FinalError = actual
	}

	res.TotalTime = time.Since(start)
	if err := approx.Validate(); err != nil {
		return nil, fmt.Errorf("stoch: flow corrupted the network: %w", err)
	}
	return res, nil
}

// draw samples one structurally admissible substitution: a random target,
// then the most-similar of a handful of random substitute candidates
// (polarity chosen by whichever phase matches better). A blind uniform
// pair would almost never be error-feasible; biasing by observed
// similarity mirrors the almost-identical-signal ATs the certified flow
// mutates over.
func draw(net *circuit.Network, vals *sim.Values, arrival []float64, cfg Config, r *rand.Rand) *proposal {
	live := net.LiveNodes()
	var gates []circuit.NodeID
	for _, id := range live {
		if net.Kind(id).IsGate() {
			gates = append(gates, id)
		}
	}
	if len(gates) == 0 {
		return nil
	}
	invArea := cfg.Library.GateArea(circuit.KindNot, 1)
	invDelay := cfg.Library.GateDelay(circuit.KindNot)
	words := bitvec.Words(vals.M)
	if words > 4 {
		words = 4
	}
	for tries := 0; tries < 20; tries++ {
		t := gates[r.Intn(len(gates))]
		tfo := net.TransitiveFanoutCone(t)
		tw := vals.Node(t).WordsSlice()

		// Sample a handful of substitutes, keep the most similar phase.
		var bestS circuit.NodeID = circuit.InvalidNode
		bestInv := false
		bestDiff := -1
		for k := 0; k < 12; k++ {
			s := live[r.Intn(len(live))]
			if s == t || net.Kind(s).IsConst() || tfo[s] {
				continue
			}
			sw := vals.Node(s).WordsSlice()
			d := 0
			for w := 0; w < words; w++ {
				d += bits.OnesCount64(tw[w] ^ sw[w])
			}
			inv := false
			if inverse := words*64 - d; inverse < d {
				d, inv = inverse, true
			}
			need := arrival[s]
			if inv {
				need += invDelay
			}
			if need > arrival[t] {
				continue
			}
			if bestDiff == -1 || d < bestDiff {
				bestS, bestInv, bestDiff = s, inv, d
			}
		}
		if bestS == circuit.InvalidNode {
			continue
		}
		gain := 0.0
		for _, id := range net.MFFCExcluding(t, bestS) {
			gain += cfg.Library.GateArea(net.Kind(id), len(net.Fanins(id)))
		}
		if bestInv {
			gain -= invArea
		}
		if gain <= 0 {
			continue
		}
		return &proposal{target: t, sub: bestS, inverted: bestInv, gain: gain}
	}
	return nil
}

func popcount(w uint64) int { // small local helper; hot path uses <=4 words
	c := 0
	for w != 0 {
		w &= w - 1
		c++
	}
	return c
}

func substituteValue(net *circuit.Network, vals *sim.Values, p *proposal, scratch *bitvec.Vec) *bitvec.Vec {
	if p.inverted {
		scratch.Not(vals.Node(p.sub))
		return scratch
	}
	return vals.Node(p.sub)
}

func apply(net *circuit.Network, p *proposal) {
	repl := p.sub
	if p.inverted {
		repl = net.AddGate(circuit.KindNot, p.sub)
	}
	net.ReplaceNode(p.target, repl)
	net.SweepFrom(p.target)
}
