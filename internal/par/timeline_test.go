package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

// TestPoolTimelineAccountingRace pins the dispatch-accounting invariants
// at worker counts 1, 4 and NumCPU (run with -race in CI): every dispatch
// emits exactly one driver-lane span; every worker span nests inside its
// dispatch, carries a non-negative barrier wait, and never reports more
// busy time than its own wall window; and the dispatch span's busy and
// task totals equal the sums over its worker spans.
func TestPoolTimelineAccountingRace(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		t.Run(poolName(workers), func(t *testing.T) {
			pool := NewPool(workers)
			defer pool.Close()
			rec := timeline.NewRecorder(workers+1, 0)
			pool.AttachTimeline(rec, true)
			if pool.Timeline() != rec {
				t.Fatal("Timeline() did not return the attached recorder")
			}

			const dispatches, tasks = 5, 23
			var executed atomic.Int64
			rec.SetIter(3)
			for d := 0; d < dispatches; d++ {
				pool.Label("par.test", obs.PhaseEstimate)
				pool.Do(tasks, func(worker, task int) {
					executed.Add(1)
					time.Sleep(100 * time.Microsecond)
				})
			}
			if got := executed.Load(); got != dispatches*tasks {
				t.Fatalf("executed %d tasks, want %d", got, dispatches*tasks)
			}

			spans := rec.Snapshot()
			byParent := map[int64][]timeline.Span{}
			var dispatchSpans []timeline.Span
			for _, s := range spans {
				if s.Worker < 0 {
					dispatchSpans = append(dispatchSpans, s)
				} else {
					byParent[s.Parent] = append(byParent[s.Parent], s)
				}
			}
			if len(dispatchSpans) != dispatches {
				t.Fatalf("dispatch spans = %d, want %d", len(dispatchSpans), dispatches)
			}

			for _, ds := range dispatchSpans {
				if ds.Name != "par.test" || ds.Phase != obs.PhaseEstimate {
					t.Errorf("dispatch span label = %q/%v, want par.test/estimate", ds.Name, ds.Phase)
				}
				if ds.Iter != 3 {
					t.Errorf("dispatch Iter = %d, want 3 (SetIter)", ds.Iter)
				}
				if ds.Tasks != tasks {
					t.Errorf("dispatch Tasks = %d, want %d", ds.Tasks, tasks)
				}
				if ds.Dur() < 0 {
					t.Errorf("dispatch T1 %d < T0 %d", ds.T1, ds.T0)
				}

				children := byParent[ds.ID]
				if len(children) == 0 || len(children) > workers {
					t.Fatalf("dispatch %d has %d worker spans, want 1..%d", ds.ID, len(children), workers)
				}
				var childBusy int64
				var childTasks int32
				seenWorker := map[int32]bool{}
				for _, ws := range children {
					if seenWorker[ws.Worker] {
						t.Errorf("worker %d emitted two spans for dispatch %d", ws.Worker, ds.ID)
					}
					seenWorker[ws.Worker] = true
					if ws.T0 < ds.T0 || ws.T1 > ds.T1 {
						t.Errorf("worker span [%d,%d] outside dispatch [%d,%d]",
							ws.T0, ws.T1, ds.T0, ds.T1)
					}
					if wait := ds.T1 - ws.T1; wait < 0 {
						t.Errorf("negative barrier wait %d for worker %d", wait, ws.Worker)
					}
					if ws.Busy > ws.Dur() {
						t.Errorf("worker %d busy %d exceeds span wall %d", ws.Worker, ws.Busy, ws.Dur())
					}
					if ws.Busy+ws.Idle() != ws.Dur() {
						t.Errorf("worker %d busy %d + idle %d != wall %d",
							ws.Worker, ws.Busy, ws.Idle(), ws.Dur())
					}
					if ws.Tasks <= 0 {
						t.Errorf("worker span with %d tasks recorded", ws.Tasks)
					}
					childBusy += ws.Busy
					childTasks += ws.Tasks
				}
				if childTasks != ds.Tasks {
					t.Errorf("worker spans cover %d tasks, dispatch says %d", childTasks, ds.Tasks)
				}
				if childBusy != ds.Busy {
					t.Errorf("worker busy sum %d != dispatch busy %d", childBusy, ds.Busy)
				}
			}
		})
	}
}

func poolName(workers int) string {
	switch workers {
	case 1:
		return "workers=1"
	case 4:
		return "workers=4"
	}
	return "workers=NumCPU"
}

// TestPoolTimelineDoCtxCancelRace checks the accounting stays consistent
// when a dispatch is cancelled mid-flight: the dispatch span still closes,
// and no worker span escapes its window.
func TestPoolTimelineDoCtxCancelRace(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	rec := timeline.NewRecorder(5, 0)
	pool.AttachTimeline(rec, false)

	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	pool.Label("par.cancel", obs.PhaseSimulate)
	err := pool.DoCtx(ctx, 64, func(worker, task int) {
		if n.Add(1) == 8 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx err = %v, want context.Canceled", err)
	}

	spans := rec.Snapshot()
	var dispatch *timeline.Span
	for i := range spans {
		if spans[i].Worker < 0 {
			if dispatch != nil {
				t.Fatal("more than one dispatch span")
			}
			dispatch = &spans[i]
		}
	}
	if dispatch == nil {
		t.Fatal("cancelled dispatch emitted no span")
	}
	for _, s := range spans {
		if s.Worker >= 0 && (s.T0 < dispatch.T0 || s.T1 > dispatch.T1) {
			t.Errorf("worker span [%d,%d] outside cancelled dispatch [%d,%d]",
				s.T0, s.T1, dispatch.T0, dispatch.T1)
		}
	}
}

// TestPoolNoTimelineNoSpans confirms a pool without a recorder attached
// emits nothing and Label is a no-op.
func TestPoolNoTimelineNoSpans(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	pool.Label("ignored", obs.PhaseEstimate)
	pool.Do(8, func(worker, task int) {})
	if pool.Timeline() != nil {
		t.Error("Timeline() non-nil without AttachTimeline")
	}
}
