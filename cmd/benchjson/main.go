// Command benchjson converts `go test -bench -benchmem` output into a
// committed JSON baseline, optionally enriched with the observability
// layer's per-phase breakdown of a smoke SASIMI flow, and checks a new
// bench run against a committed baseline.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=1x . | benchjson -phases c880 -o BENCH_pr2.json
//	go test -run='^$' -bench=. -benchmem -benchtime=1x . | benchjson -against BENCH_pr2.json
//
// Without -against, benchjson parses the bench lines on stdin and writes
// the baseline JSON to -o (default stdout). With -against, it instead
// verifies that every benchmark recorded in the baseline still appears in
// the new run (so CI fails when a paper experiment's benchmark silently
// disappears) and prints an ns/op comparison; it does not gate on timing,
// which is hardware-dependent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"batchals"
	"batchals/internal/obs"
)

// Bench is one parsed benchmark result line. Metrics maps unit -> value
// for the standard pairs (ns/op, B/op, allocs/op) and any custom
// b.ReportMetric units (area_ratio, speedup_x, ...).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// PhaseBreakdown embeds the obs layer's five-phase accounting of one
// instrumented smoke flow into the baseline.
type PhaseBreakdown struct {
	Circuit   string           `json:"circuit"`
	M         int              `json:"m"`
	Threshold float64          `json:"threshold"`
	TotalNS   int64            `json:"total_ns"`
	PhaseNS   map[string]int64 `json:"phase_ns"`
	Spans     map[string]int64 `json:"spans"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	GeneratedWith string          `json:"generated_with"`
	Benchmarks    []Bench         `json:"benchmarks"`
	Phases        *PhaseBreakdown `json:"phases,omitempty"`
}

func main() {
	var (
		inFile  = flag.String("in", "", "read bench output from this file instead of stdin")
		outFile = flag.String("o", "", "write the baseline JSON here (default stdout)")
		phases  = flag.String("phases", "", "also run an instrumented smoke flow on this benchmark circuit and embed its phase breakdown")
		m       = flag.Int("m", 2000, "pattern count for the -phases smoke flow")
		thr     = flag.Float64("threshold", 0.01, "ER budget for the -phases smoke flow")
		against = flag.String("against", "", "compare stdin bench output against this committed baseline instead of writing one")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	benches, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *against != "" {
		if err := compare(*against, benches); err != nil {
			fatal(err)
		}
		return
	}

	base := Baseline{
		GeneratedWith: "go test -run='^$' -bench=. -benchmem -benchtime=1x .",
		Benchmarks:    benches,
	}
	if *phases != "" {
		pb, err := runPhases(*phases, *m, *thr)
		if err != nil {
			fatal(err)
		}
		base.Phases = pb
	}

	out := io.Writer(os.Stdout)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fatal(err)
	}
}

// parseBench extracts benchmark result lines from go test output. A result
// line is "BenchmarkName-P <iters> <value> <unit> [<value> <unit>]...".
func parseBench(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{
			Name:       strings.SplitN(f[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), f[i])
			}
			b.Metrics[f[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// runPhases runs one observed SASIMI smoke flow and returns its five-phase
// wall-time breakdown.
func runPhases(circuit string, m int, thr float64) (*PhaseBreakdown, error) {
	golden, err := batchals.Benchmark(circuit)
	if err != nil {
		return nil, err
	}
	res, err := batchals.Approximate(golden, batchals.Options{
		Metric:      batchals.ErrorRate,
		Threshold:   thr,
		NumPatterns: m,
		Seed:        1,
		Metrics:     batchals.NewMetrics(),
	})
	if err != nil {
		return nil, err
	}
	pb := &PhaseBreakdown{
		Circuit:   circuit,
		M:         m,
		Threshold: thr,
		TotalNS:   int64(res.Phases.Total()),
		PhaseNS:   map[string]int64{},
		Spans:     map[string]int64{},
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		st := res.Phases.Stats[p]
		pb.PhaseNS[p.String()] = int64(st.Time)
		pb.Spans[p.String()] = st.Count
	}
	return pb, nil
}

// compare checks the new bench results cover every benchmark in the
// committed baseline and prints an informational ns/op comparison.
func compare(baselinePath string, fresh []Bench) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	got := map[string]Bench{}
	for _, b := range fresh {
		got[b.Name] = b
	}
	var missing []string
	names := make([]string, 0, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	byName := map[string]Bench{}
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range names {
		nb, ok := got[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		ob := byName[name]
		if o, n := ob.Metrics["ns/op"], nb.Metrics["ns/op"]; o > 0 && n > 0 {
			fmt.Printf("%-32s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
				name, o, n, 100*(n-o)/o)
		} else {
			fmt.Printf("%-32s present\n", name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("baseline benchmarks missing from this run: %s",
			strings.Join(missing, ", "))
	}
	fmt.Printf("all %d baseline benchmarks present\n", len(names))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
