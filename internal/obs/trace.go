package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLTracer writes flow events as JSON Lines: one self-describing JSON
// object per line, keyed by "ev" ("phase", "iter", "cand", "accept").
// Events stream as they happen, so a trace of a crashed or interrupted run
// is still valid up to its last complete line.
//
// Per-candidate events are the bulk of a trace (thousands per iteration on
// ISCAS-scale circuits) and are dropped unless EmitCandidates is set.
type JSONLTracer struct {
	mu             sync.Mutex
	w              *bufio.Writer
	enc            *json.Encoder
	err            error // first write/encode error, sticky
	errCount       int64
	errCounter     *Counter // optional registry mirror of errCount
	EmitCandidates bool
}

// NewJSONLTracer wraps w in a buffered JSONL event writer. Call Flush (or
// Close on the underlying writer after Flush) when the run ends.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	bw := bufio.NewWriter(w)
	return &JSONLTracer{w: bw, enc: json.NewEncoder(bw)}
}

// CountErrorsIn mirrors the tracer's write-error count into reg's counter
// named name, so a metrics scrape shows a dying trace sink.
func (t *JSONLTracer) CountErrorsIn(reg *Registry, name string) {
	if reg == nil {
		return
	}
	t.mu.Lock()
	t.errCounter = reg.Counter(name)
	t.mu.Unlock()
}

// Err returns the first write or encode error the tracer has hit, or nil.
// A failing trace sink never aborts the synthesis run (events after the
// first failure are still attempted — the writer may recover — and simply
// add to ErrCount when they fail too); callers that care check Err after
// Flush.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ErrCount returns how many event writes have failed so far.
func (t *JSONLTracer) ErrCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errCount
}

// Flush writes any buffered events through to the underlying writer. The
// returned error is sticky: once a flush or event write has failed, Err
// keeps reporting it.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil {
		t.recordErrLocked(err)
	}
	return t.err
}

// jsonlPhase mirrors PhaseInfo with stable JSON field names.
type jsonlPhase struct {
	Ev      string `json:"ev"`
	Iter    int    `json:"iter"`
	Phase   string `json:"phase"`
	NS      int64  `json:"ns"`
	Bytes   int64  `json:"alloc_bytes,omitempty"`
	Mallocs int64  `json:"mallocs,omitempty"`
}

// OnPhase emits a "phase" event.
func (t *JSONLTracer) OnPhase(i PhaseInfo) {
	t.emit(jsonlPhase{
		Ev:      "phase",
		Iter:    i.Iter,
		Phase:   i.Phase.String(),
		NS:      int64(i.Duration),
		Bytes:   i.Mem.Bytes,
		Mallocs: i.Mem.Mallocs,
	})
}

type jsonlIter struct {
	Ev         string  `json:"ev"`
	Iter       int     `json:"iter"`
	CurErr     float64 `json:"cur_err"`
	Candidates int     `json:"cands"`
	Feasible   int     `json:"feasible"`
	Accepted   bool    `json:"accepted"`
	NS         int64   `json:"ns"`
}

// OnIteration emits an "iter" event.
func (t *JSONLTracer) OnIteration(i IterationInfo) {
	t.emit(jsonlIter{
		Ev:         "iter",
		Iter:       i.Iter,
		CurErr:     i.CurErr,
		Candidates: i.Candidates,
		Feasible:   i.Feasible,
		Accepted:   i.Accepted,
		NS:         int64(i.Duration),
	})
}

type jsonlCand struct {
	Ev       string  `json:"ev"`
	Iter     int     `json:"iter"`
	Target   string  `json:"target"`
	Sub      string  `json:"sub"`
	Inverted bool    `json:"inv,omitempty"`
	Delta    float64 `json:"delta"`
	Gain     float64 `json:"gain"`
	Score    float64 `json:"score"`
	Exact    bool    `json:"exact"`
}

// WantsCandidates mirrors EmitCandidates for the CandidateFilter
// capability, letting flows skip candidate-event construction entirely.
func (t *JSONLTracer) WantsCandidates() bool { return t.EmitCandidates }

// OnCandidate emits a "cand" event when EmitCandidates is set.
func (t *JSONLTracer) OnCandidate(i CandidateInfo) {
	if !t.EmitCandidates {
		return
	}
	t.emit(jsonlCand{
		Ev:       "cand",
		Iter:     i.Iter,
		Target:   i.Target,
		Sub:      i.Sub,
		Inverted: i.Inverted,
		Delta:    i.Delta,
		Gain:     i.Gain,
		Score:    i.Score,
		Exact:    i.Exact,
	})
}

type jsonlAccept struct {
	Ev        string  `json:"ev"`
	Iter      int     `json:"iter"`
	Target    string  `json:"target"`
	Sub       string  `json:"sub"`
	Inverted  bool    `json:"inv,omitempty"`
	Predicted float64 `json:"pred_err"`
	Actual    float64 `json:"actual_err"`
	Drift     float64 `json:"drift"`
	Exact     bool    `json:"exact"`
	Area      float64 `json:"area"`
	// Confidence fields, present when the flow computed them (M > 0).
	M          int     `json:"m,omitempty"`
	ErrLo      float64 `json:"err_ci_lo,omitempty"`
	ErrHi      float64 `json:"err_ci_hi,omitempty"`
	CILevel    float64 `json:"ci_level,omitempty"`
	DeltaHW    float64 `json:"delta_hw,omitempty"`
	Inadequate bool    `json:"ci_inadequate,omitempty"`
}

// OnAccept emits an "accept" event.
func (t *JSONLTracer) OnAccept(i AcceptInfo) {
	t.emit(jsonlAccept{
		Ev:         "accept",
		Iter:       i.Iter,
		Target:     i.Target,
		Sub:        i.Sub,
		Inverted:   i.Inverted,
		Predicted:  i.Predicted,
		Actual:     i.Actual,
		Drift:      i.Drift,
		Exact:      i.Exact,
		Area:       i.Area,
		M:          i.M,
		ErrLo:      i.ErrCI.Lo,
		ErrHi:      i.ErrCI.Hi,
		CILevel:    i.ErrCI.Level,
		DeltaHW:    i.DeltaHW,
		Inadequate: i.M > 0 && !i.CIAdequate,
	})
}

func (t *JSONLTracer) emit(v any) {
	t.mu.Lock()
	// Encode errors (a full disk, a closed pipe) must not abort a synthesis
	// run over its telemetry; the trace just ends early, but the failure is
	// recorded so Err/ErrCount (and the optional registry counter) surface
	// it instead of silently losing the tail of the trace.
	if err := t.enc.Encode(v); err != nil {
		t.recordErrLocked(err)
	}
	t.mu.Unlock()
}

// recordErrLocked notes a failed write; t.mu must be held.
func (t *JSONLTracer) recordErrLocked(err error) {
	if t.err == nil {
		t.err = err
	}
	t.errCount++
	if t.errCounter != nil {
		t.errCounter.Inc()
	}
}

var _ Tracer = (*JSONLTracer)(nil)
