package work

import (
	"context"

	"batchals/internal/par"
)

// env carries the context inside a struct, iterContext-style.
type env struct {
	goCtx context.Context
	m     int
}

// BadDo drops the received context by dispatching through the ctx-less
// variant.
func BadDo(ctx context.Context, pool *par.Pool) {
	pool.Do(4, func(_, _ int) {}) // want `calls Pool\.Do`
}

// GoodDoCtx threads the context.
func GoodDoCtx(ctx context.Context, pool *par.Pool) error {
	return pool.DoCtx(ctx, 4, func(_, _ int) {})
}

// GoodGuard assigns a Background fallback to the context variable — the
// nil-guard pattern is allowed; only passing a fresh context onward is not.
func GoodGuard(ctx context.Context, pool *par.Pool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return pool.DoCtx(ctx, 2, func(_, _ int) {})
}

// BadDrop severs the chain by handing the callee a fresh Background.
func BadDrop(ctx context.Context, pool *par.Pool) error {
	return pool.DoCtx(context.Background(), 2, func(_, _ int) {}) // want `passes context\.Background`
}

// BadEnv receives the context inside a parameter struct; the contract is
// the same.
func BadEnv(e *env, pool *par.Pool) {
	pool.Do(e.m, func(_, _ int) {}) // want `calls Pool\.Do`
}

// NoCtx has no context anywhere; the ctx-less call is the sequential
// contract.
func NoCtx(pool *par.Pool) {
	pool.Do(3, func(_, _ int) {})
}

// Acknowledged is an accepted exception (a fan-out that must run to
// completion once started).
func Acknowledged(ctx context.Context, pool *par.Pool) {
	pool.Do(1, func(_, _ int) {}) //als:ctx-ok state-mutating fan-out must complete
}
