package par

import (
	"sync/atomic"
	"testing"

	"batchals/internal/bitvec"
	"batchals/internal/obs"
)

func TestShardsCoverEveryPatternExactlyOnce(t *testing.T) {
	for _, m := range []int{1, 63, 64, 65, 128, 1000, 4096, 10000} {
		for _, n := range []int{1, 2, 3, 4, 7, 16, 1000} {
			shards := Shards(m, n)
			if len(shards) == 0 {
				t.Fatalf("m=%d n=%d: no shards", m, n)
			}
			if len(shards) > n || len(shards) > bitvec.Words(m) {
				t.Fatalf("m=%d n=%d: %d shards exceeds bounds", m, n, len(shards))
			}
			pat, word := 0, 0
			for i, s := range shards {
				if s.Index != i {
					t.Fatalf("m=%d n=%d: shard %d has Index %d", m, n, i, s.Index)
				}
				if s.Lo != pat || s.W0 != word {
					t.Fatalf("m=%d n=%d: shard %d not contiguous: %+v (want Lo=%d W0=%d)",
						m, n, i, s, pat, word)
				}
				if s.Hi <= s.Lo || s.W1 <= s.W0 {
					t.Fatalf("m=%d n=%d: empty shard %+v", m, n, s)
				}
				if s.Lo%bitvec.WordBits != 0 {
					t.Fatalf("m=%d n=%d: shard %d not word-aligned: %+v", m, n, i, s)
				}
				pat, word = s.Hi, s.W1
			}
			if pat != m || word != bitvec.Words(m) {
				t.Fatalf("m=%d n=%d: shards cover %d patterns / %d words, want %d / %d",
					m, n, pat, word, m, bitvec.Words(m))
			}
		}
	}
}

func TestShardsDeterministic(t *testing.T) {
	a := Shards(10000, 7)
	b := Shards(10000, 7)
	if len(a) != len(b) {
		t.Fatal("shard count varies between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoolRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		const n = 100
		var counts [n]atomic.Int32
		p.Do(n, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		p.Close()
	}
}

func TestPoolReusableAcrossBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 10; round++ {
		p.Do(17, func(_, i int) { total.Add(int64(i)) })
	}
	if got := total.Load(); got != 10*17*16/2 {
		t.Fatalf("total %d, want %d", got, 10*17*16/2)
	}
}

func TestNilAndSingleWorkerPoolRunInline(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatal("nil pool must report one worker")
	}
	order := []int{}
	nilPool.Do(5, func(w, i int) {
		if w != 0 {
			t.Fatalf("nil pool used worker %d", w)
		}
		order = append(order, i) // safe: inline execution, no goroutines
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
	nilPool.Close() // no-op

	p := NewPool(1)
	seen := 0
	p.Do(3, func(_, i int) { seen++ })
	if seen != 3 {
		t.Fatalf("single-worker pool ran %d/3 tasks", seen)
	}
	p.Close()
	if p.Speedup() != 1.0 && p.Speedup() <= 0 {
		t.Fatalf("bad sequential speedup %v", p.Speedup())
	}
}

func TestPoolHappensBefore(t *testing.T) {
	// Writes from task bodies must be visible after Do returns, without
	// any synchronisation in the task itself (plain slice writes).
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 1000)
	p.Do(len(buf), func(_, i int) { buf[i] = i * i })
	for i, v := range buf {
		if v != i*i {
			t.Fatalf("lost write at %d: %d", i, v)
		}
	}
}

func TestPerWorkerCountersTick(t *testing.T) {
	reg := obs.NewRegistry()
	cs := obs.PerWorkerCounters(reg, "x_tasks_total", 3)
	if len(cs) != 3 {
		t.Fatalf("got %d counters", len(cs))
	}
	cs[1].Add(5)
	snap := reg.Snapshot()
	if snap.Counters[`x_tasks_total{worker="1"}`] != 5 {
		t.Fatalf("labelled counter not ticked: %v", snap.Counters)
	}
	// Re-resolving yields the same counters.
	again := obs.PerWorkerCounters(reg, "x_tasks_total", 3)
	if again[1] != cs[1] {
		t.Fatal("PerWorkerCounters not get-or-create")
	}
}

func TestPoolTracksBusyAndSpeedup(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Do(8, func(_, i int) {
		s := 0
		for j := 0; j < 100000; j++ {
			s += j
		}
		_ = s
	})
	if p.BusyNS() <= 0 {
		t.Fatal("no busy time recorded")
	}
	if p.Speedup() <= 0 {
		t.Fatalf("speedup %v not positive", p.Speedup())
	}
}

// TestRacePoolHammer drives many concurrent batches' worth of counter
// ticks through one pool under the race detector (CI runs this file with
// -race and GOMAXPROCS=2).
func TestRacePoolHammer(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var sum atomic.Int64
	for round := 0; round < 50; round++ {
		p.Do(64, func(_, i int) { sum.Add(1) })
	}
	if got := sum.Load(); got != 50*64 {
		t.Fatalf("ran %d tasks, want %d", got, 50*64)
	}
}
