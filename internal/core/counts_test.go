package core

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/bitvec"
	"batchals/internal/obs"
)

// TestDeltaERCountsConsistent pins the CI-plumbing contract: the raw
// inc/dec counts are non-negative, bounded by the change popcount, and
// normalise to exactly the float DeltaER returns.
func TestDeltaERCountsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		_, approx, _, vals, st := buildApproxPair(t, r, 8, 30, 768, int64(trial))
		c := Build(approx, vals)
		for _, nx := range gatesOf(approx) {
			change := bitvec.New(vals.M)
			for i := 0; i < vals.M; i++ {
				if r.Intn(3) == 0 {
					change.Set(i, true)
				}
			}
			inc, dec := c.DeltaERCounts(nx, change, st)
			if inc < 0 || dec < 0 {
				t.Fatalf("negative counts %d/%d", inc, dec)
			}
			flips := int64(change.Count())
			if inc > flips || dec > flips {
				t.Fatalf("counts %d/%d exceed %d changed patterns", inc, dec, flips)
			}
			got := c.DeltaER(nx, change, st)
			want := (float64(inc) - float64(dec)) / float64(vals.M)
			if math.Abs(got-want) > 1e-15 {
				t.Fatalf("DeltaER %v != counts-derived %v (inc=%d dec=%d)", got, want, inc, dec)
			}
		}
	}
}

// TestDeltaERCountsFeedConfidence wires the counts straight into the
// obs confidence layer the way the flow does: Wilson intervals on the
// inc proportion must bracket inc/M.
func TestDeltaERCountsFeedConfidence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	_, approx, _, vals, st := buildApproxPair(t, r, 8, 40, 1024, 5)
	c := Build(approx, vals)
	gates := gatesOf(approx)
	nx := gates[len(gates)/2]
	change := bitvec.New(vals.M)
	for i := 0; i < vals.M; i += 3 {
		change.Set(i, true)
	}
	inc, _ := c.DeltaERCounts(nx, change, st)
	iv := obs.Wilson(inc, int64(vals.M), 0)
	p := float64(inc) / float64(vals.M)
	if p < iv.Lo-1e-12 || p > iv.Hi+1e-12 {
		t.Fatalf("Wilson %+v excludes inc proportion %v", iv, p)
	}
	if hw := obs.HoeffdingHalfWidth(int64(vals.M), obs.DeltaERSpan, 0.05); hw <= 0 || hw > 1 {
		t.Fatalf("implausible Hoeffding half width %v for M=%d", hw, vals.M)
	}
}
