package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecorder keeps the recent history of a run in bounded ring
// buffers — the last N phase spans, iterations and accepts — cheap enough
// to leave attached to every production run and dense enough to
// reconstruct "what was the flow doing just before it wedged / panicked /
// blew its budget". It implements Tracer, so it is attached with
// Multi(recorder, otherTracers...); per-candidate events are deliberately
// not recorded (thousands per iteration would wash the rings out in one
// scoring pass).
//
// All methods are safe for concurrent use: the flow goroutine records
// while HTTP handlers snapshot.
type FlightRecorder struct {
	mu      sync.Mutex
	phases  ring[PhaseInfo]
	iters   ring[IterationInfo]
	accepts ring[AcceptInfo]
	started time.Time
}

// DefaultFlightDepth is the per-ring capacity used when NewFlightRecorder
// is given a non-positive depth.
const DefaultFlightDepth = 64

// NewFlightRecorder returns a recorder keeping the last depth entries of
// each event kind (DefaultFlightDepth if depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{
		phases:  newRing[PhaseInfo](depth),
		iters:   newRing[IterationInfo](depth),
		accepts: newRing[AcceptInfo](depth),
		started: time.Now(),
	}
}

// OnPhase records a phase span.
func (f *FlightRecorder) OnPhase(i PhaseInfo) {
	f.mu.Lock()
	f.phases.push(i)
	f.mu.Unlock()
}

// OnIteration records an iteration summary.
func (f *FlightRecorder) OnIteration(i IterationInfo) {
	f.mu.Lock()
	f.iters.push(i)
	f.mu.Unlock()
}

// WantsCandidates declines the candidate firehose (CandidateFilter).
func (f *FlightRecorder) WantsCandidates() bool { return false }

// OnCandidate is a no-op: candidate volume would evict everything else.
func (f *FlightRecorder) OnCandidate(CandidateInfo) {}

// OnAccept records an accepted substitution (with its confidence fields,
// when the flow filled them).
func (f *FlightRecorder) OnAccept(i AcceptInfo) {
	f.mu.Lock()
	f.accepts.push(i)
	f.mu.Unlock()
}

// FlightDump is the JSON-serialisable snapshot of a recorder: the
// retained ring contents oldest-first, plus total event counts so a
// reader knows how much history was evicted.
type FlightDump struct {
	Depth           int             `json:"depth"`
	UptimeNS        int64           `json:"uptime_ns"`
	TotalPhases     int64           `json:"total_phases"`
	TotalIterations int64           `json:"total_iterations"`
	TotalAccepts    int64           `json:"total_accepts"`
	Phases          []PhaseInfo     `json:"phases"`
	Iterations      []IterationInfo `json:"iterations"`
	Accepts         []AcceptInfo    `json:"accepts"`
}

// Snapshot freezes the recorder's current state.
func (f *FlightRecorder) Snapshot() FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightDump{
		Depth:           len(f.phases.buf),
		UptimeNS:        int64(time.Since(f.started)),
		TotalPhases:     f.phases.total,
		TotalIterations: f.iters.total,
		TotalAccepts:    f.accepts.total,
		Phases:          f.phases.snapshot(),
		Iterations:      f.iters.snapshot(),
		Accepts:         f.accepts.snapshot(),
	}
}

// WriteJSON writes the current snapshot as indented JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}

// DumpOnPanic writes the flight dump to w when the calling goroutine is
// panicking, then re-panics. Use it as a direct defer around a flow:
//
//	defer recorder.DumpOnPanic(os.Stderr)
//
// so the last recorded iterations survive into the crash report. During
// normal returns it does nothing.
func (f *FlightRecorder) DumpOnPanic(w io.Writer) {
	if r := recover(); r != nil {
		_ = f.WriteJSON(w)
		panic(r)
	}
}

var _ Tracer = (*FlightRecorder)(nil)

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf   []T
	total int64 // events ever pushed
}

func newRing[T any](n int) ring[T] {
	return ring[T]{buf: make([]T, n)}
}

func (r *ring[T]) push(v T) {
	r.buf[int(r.total%int64(len(r.buf)))] = v
	r.total++
}

// snapshot returns the retained entries oldest-first.
func (r *ring[T]) snapshot() []T {
	n := r.total
	cap64 := int64(len(r.buf))
	if n > cap64 {
		n = cap64
	}
	out := make([]T, 0, n)
	start := r.total - n
	for i := int64(0); i < n; i++ {
		out = append(out, r.buf[int((start+i)%cap64)])
	}
	return out
}
