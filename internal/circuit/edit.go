package circuit

import "fmt"

// removeFanoutEdge deletes one occurrence of fo from the fanout list of id.
func (n *Network) removeFanoutEdge(id, fo NodeID) {
	s := n.nodes[id].fanouts
	for i, x := range s {
		if x == fo {
			s[i] = s[len(s)-1]
			n.nodes[id].fanouts = s[:len(s)-1]
			return
		}
	}
	panic(fmt.Sprintf("circuit: fanout edge %d->%d not found", id, fo))
}

// ReplaceFanin rewires every occurrence of old in the fanin list of node id
// to new, maintaining fanout lists. It panics if old does not appear.
// Unlike ReplaceNode it performs no cycle check: rewiring to a node in the
// transitive fanout cone of id silently creates a combinational cycle,
// which TopoOrder then panics on. Callers that cannot rule this out
// structurally should check analyze.FindCycle afterwards.
func (n *Network) ReplaceFanin(id, old, new NodeID) {
	if !n.IsLive(new) {
		panic(fmt.Sprintf("circuit: ReplaceFanin target %d not live", new))
	}
	found := false
	for i, f := range n.nodes[id].Fanins {
		if f == old {
			n.nodes[id].Fanins[i] = new
			n.removeFanoutEdge(old, id)
			n.nodes[new].fanouts = append(n.nodes[new].fanouts, id)
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("circuit: node %d has no fanin %d", id, old))
	}
	n.markDirty()
}

// ReplaceNode redirects every fanout of old (including primary output
// bindings) to new. old keeps its fanins but becomes fanout-free; callers
// typically follow with SweepFrom(old). It panics if new lies in the
// transitive fanout cone of old, which would create a cycle.
func (n *Network) ReplaceNode(old, new NodeID) {
	if old == new {
		return
	}
	if !n.IsLive(old) || !n.IsLive(new) {
		panic("circuit: ReplaceNode on dead node")
	}
	if n.TransitiveFanoutCone(old)[new] {
		panic(fmt.Sprintf("circuit: ReplaceNode(%d,%d) would create a cycle", old, new))
	}
	// Copy: the fanout list of old is mutated as we rewire.
	fos := append([]NodeID(nil), n.nodes[old].fanouts...)
	for _, fo := range fos {
		for i, f := range n.nodes[fo].Fanins {
			if f == old {
				n.nodes[fo].Fanins[i] = new
				n.removeFanoutEdge(old, fo)
				n.nodes[new].fanouts = append(n.nodes[new].fanouts, fo)
			}
		}
	}
	for i := range n.outputs {
		if n.outputs[i].Node == old {
			n.outputs[i].Node = new
		}
	}
	n.markDirty()
}

// deleteNode frees node id, detaching it from its fanins. The node must
// have no fanouts and not drive an output.
func (n *Network) deleteNode(id NodeID) {
	nd := &n.nodes[id]
	if len(nd.fanouts) != 0 {
		panic(fmt.Sprintf("circuit: deleteNode(%d) still has fanouts", id))
	}
	if n.isOutputDriver(id) {
		panic(fmt.Sprintf("circuit: deleteNode(%d) drives an output", id))
	}
	for _, f := range nd.Fanins {
		n.removeFanoutEdge(f, id)
	}
	if nd.Kind == KindInput {
		for i, in := range n.inputs {
			if in == id {
				n.inputs = append(n.inputs[:i], n.inputs[i+1:]...)
				break
			}
		}
	}
	*nd = Node{Kind: KindFree}
	n.markDirty()
}

// SweepFrom removes node start if it is dead (no fanouts, not an output)
// and recursively removes any fanins that become dead, except primary
// inputs, which are never swept. It returns the number of nodes removed.
func (n *Network) SweepFrom(start NodeID) int {
	removed, _ := n.SweepFromCollect(start)
	return len(removed)
}

// SweepFromCollect is SweepFrom reporting identity, not just count: it
// returns the ids of the removed nodes and the surviving boundary — the
// live nodes that lost at least one fanout edge into the removed set.
// Incremental consumers (the iteration engine's CPM refresh and candidate
// cache) need exactly these two sets to bound their dirty regions.
func (n *Network) SweepFromCollect(start NodeID) (removed, boundary []NodeID) {
	var faninsSeen []NodeID // fanins of removed nodes, captured pre-delete
	stack := []NodeID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !n.IsLive(id) || n.nodes[id].Kind == KindInput {
			continue
		}
		if len(n.nodes[id].fanouts) != 0 || n.isOutputDriver(id) {
			continue
		}
		fanins := append([]NodeID(nil), n.nodes[id].Fanins...)
		n.deleteNode(id)
		removed = append(removed, id)
		faninsSeen = append(faninsSeen, fanins...)
		stack = append(stack, fanins...)
	}
	// The boundary is every captured fanin that survived the sweep,
	// deduplicated in first-seen order.
	seen := make(map[NodeID]bool, len(faninsSeen))
	for _, f := range faninsSeen {
		if !seen[f] && n.IsLive(f) {
			seen[f] = true
			boundary = append(boundary, f)
		}
	}
	return removed, boundary
}

// Sweep removes all dead gates and constants anywhere in the network
// (nodes with no fanouts that drive no output). Primary inputs are kept.
// It returns the number of nodes removed.
func (n *Network) Sweep() int {
	removed := 0
	for {
		progress := 0
		for i := range n.nodes {
			id := NodeID(i)
			if !n.IsLive(id) || n.nodes[i].Kind == KindInput {
				continue
			}
			if len(n.nodes[i].fanouts) == 0 && !n.isOutputDriver(id) {
				n.deleteNode(id)
				progress++
			}
		}
		removed += progress
		if progress == 0 {
			return removed
		}
	}
}

// MFFC returns the maximum fanout-free cone of root: the set of nodes that
// would become dead if root lost all its fanouts (root included, inputs
// excluded). This is the area that a substitution deleting root reclaims.
func (n *Network) MFFC(root NodeID) []NodeID {
	return n.MFFCExcluding(root, InvalidNode)
}

// MFFCExcluding returns the MFFC of root with node keep pinned alive: keep
// (and everything only it supports) is never included. A substitution that
// replaces root by keep gives keep new fanouts, so the logic it exclusively
// supported stays live — this variant returns exactly the set such a
// substitution deletes. Pass InvalidNode for no pin.
func (n *Network) MFFCExcluding(root, keep NodeID) []NodeID {
	// Simulated reference-count deletion without touching the network.
	refDrop := make(map[NodeID]int)
	var mffc []NodeID
	inCone := make(map[NodeID]bool)
	var visit func(id NodeID)
	visit = func(id NodeID) {
		if inCone[id] {
			return
		}
		inCone[id] = true
		mffc = append(mffc, id)
		for _, f := range n.nodes[id].Fanins {
			if n.nodes[f].Kind == KindInput || f == keep {
				continue
			}
			refDrop[f]++
			if refDrop[f] == len(n.nodes[f].fanouts) && !n.isOutputDriver(f) {
				visit(f)
			}
		}
	}
	if n.nodes[root].Kind == KindInput || root == keep {
		return nil
	}
	visit(root)
	return mffc
}
