package partition

import (
	"math/bits"

	"batchals/internal/circuit"
)

// hungryFrac is the utilisation above which a part is considered budget-
// hungry during reclamation: it spent at least this fraction of its
// allocation, so more budget would likely buy more area.
const hungryFrac = 0.8

// Allocator splits one global error budget across parts and rebalances it
// between rounds. The invariant it maintains — checked by the property
// test — is that the per-part allocations never sum to more than the
// global budget: the initial split distributes exactly the total, and
// Reclaim only moves budget (freed by parts that under-spent theirs) to
// hungry parts, never minting new budget.
type Allocator struct {
	total  float64
	weight []float64
	alloc  []float64
}

// NewAllocator splits total across len(weights) parts proportionally to
// the weights. Non-positive weights are treated as the smallest positive
// one so every part keeps a non-zero share.
func NewAllocator(total float64, weights []float64) *Allocator {
	a := &Allocator{
		total:  total,
		weight: make([]float64, len(weights)),
		alloc:  make([]float64, len(weights)),
	}
	sum := 0.0
	for i, w := range weights {
		if w <= 0 {
			w = 1e-9
		}
		a.weight[i] = w
		sum += w
	}
	for i := range a.alloc {
		a.alloc[i] = total * a.weight[i] / sum
	}
	return a
}

// Alloc returns part k's current allocation.
func (a *Allocator) Alloc(k int) float64 { return a.alloc[k] }

// Allocations returns a copy of the per-part allocations.
func (a *Allocator) Allocations() []float64 {
	return append([]float64(nil), a.alloc...)
}

// Sum returns the total currently allocated; always <= the global budget.
func (a *Allocator) Sum() float64 {
	s := 0.0
	for _, v := range a.alloc {
		s += v
	}
	return s
}

// Total returns the global budget the allocator was built with.
func (a *Allocator) Total() float64 { return a.total }

// Reclaim rebalances after a round: measured[k] is part k's realised
// local error. Parts that used less than hungryFrac of their allocation
// shrink to what they measured; the freed budget is pooled and granted to
// hungry parts (utilisation >= hungryFrac) in proportion to their
// weights. It returns the indices whose allocation grew (the parts worth
// re-running), or nil when nothing moved. Allocation mass is conserved,
// so the sum-<=-total invariant survives any number of rounds.
func (a *Allocator) Reclaim(measured []float64) []int {
	if len(measured) != len(a.alloc) {
		panic("partition: Reclaim measured length mismatch")
	}
	var hungry []int
	wsum := 0.0
	for k, m := range measured {
		if a.alloc[k] > 0 && m >= hungryFrac*a.alloc[k] {
			hungry = append(hungry, k)
			wsum += a.weight[k]
		}
	}
	if len(hungry) == 0 || len(hungry) == len(a.alloc) || wsum <= 0 {
		return nil // nobody to feed, or nothing to free
	}
	freed := 0.0
	for k, m := range measured {
		if a.alloc[k] > 0 && m >= hungryFrac*a.alloc[k] {
			continue
		}
		if m < 0 {
			m = 0
		}
		if m < a.alloc[k] {
			freed += a.alloc[k] - m
			a.alloc[k] = m
		}
	}
	if freed <= 0 {
		return nil
	}
	grown := make([]int, 0, len(hungry))
	for _, k := range hungry {
		add := freed * a.weight[k] / wsum
		if add > 0 {
			a.alloc[k] += add
			grown = append(grown, k)
		}
	}
	return grown
}

// obsSampleCap bounds the primary-output sample the observability DP
// tracks per node: 4 words of reachability bits keep the reverse pass
// cache-friendly on million-gate networks while still separating parts
// that feed many outputs from parts feeding few.
const obsSampleCap = 256

// ObservabilityWeights weighs every part by how many primary outputs its
// exported signals reach (plus one, so no part's budget share collapses
// to zero). Reachability is a reverse-topological bitset DP over at most
// obsSampleCap outputs, sampled evenly when the network has more.
func ObservabilityWeights(net *circuit.Network, plan *Plan) []float64 {
	outs := net.Outputs()
	sample := len(outs)
	stride := 1
	if sample > obsSampleCap {
		stride = (sample + obsSampleCap - 1) / obsSampleCap
		sample = (sample + stride - 1) / stride
	}
	words := (sample + 63) / 64
	reach := make([]uint64, net.NumSlots()*words)
	for j := 0; j < sample; j++ {
		drv := outs[j*stride].Node
		reach[int(drv)*words+j/64] |= 1 << uint(j%64)
	}
	order := net.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		row := reach[int(id)*words : int(id)*words+words]
		for _, fo := range net.Fanouts(id) {
			frow := reach[int(fo)*words : int(fo)*words+words]
			for w := range row {
				row[w] |= frow[w]
			}
		}
	}
	weights := make([]float64, plan.NumParts())
	scratch := make([]uint64, words)
	for k := range plan.Parts {
		for w := range scratch {
			scratch[w] = 0
		}
		for _, id := range plan.Parts[k].Outputs {
			row := reach[int(id)*words : int(id)*words+words]
			for w := range scratch {
				scratch[w] |= row[w]
			}
		}
		pop := 0
		for _, w := range scratch {
			pop += bits.OnesCount64(w)
		}
		weights[k] = float64(pop) + 1
	}
	return weights
}

// UniformWeights gives every part the same budget share.
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// WeightsFor computes the part weights for the configured policy.
func WeightsFor(policy string, net *circuit.Network, plan *Plan) []float64 {
	if policy == PolicyUniform {
		return UniformWeights(plan.NumParts())
	}
	return ObservabilityWeights(net, plan)
}
