// Command genbench emits the library's generated benchmark circuits as
// .bench or BLIF files.
//
// Usage:
//
//	genbench -list
//	genbench -circuit rca32 -o rca32.bench
//	genbench -all -dir ./circuits -format blif
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"batchals"
)

func main() {
	var (
		circuitFlag = flag.String("circuit", "", "benchmark name to emit")
		outFile     = flag.String("o", "", "output file (extension picks format; default <name>.bench)")
		all         = flag.Bool("all", false, "emit every registered benchmark")
		dir         = flag.String("dir", ".", "output directory for -all")
		format      = flag.String("format", "bench", "format for -all: bench or blif")
		list        = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	switch {
	case *list:
		for _, name := range batchals.BenchmarkNames() {
			n, err := batchals.Benchmark(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %4d in %4d out %6.0f area %3.0f delay\n",
				name, n.NumInputs(), n.NumOutputs(), batchals.Area(n), batchals.Delay(n))
		}
	case *all:
		ext := "." + strings.TrimPrefix(*format, ".")
		if ext != ".bench" && ext != ".blif" {
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		for _, name := range batchals.BenchmarkNames() {
			n, err := batchals.Benchmark(name)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dir, name+ext)
			if err := batchals.Save(path, n); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	case *circuitFlag != "":
		n, err := batchals.Benchmark(*circuitFlag)
		if err != nil {
			fatal(err)
		}
		path := *outFile
		if path == "" {
			path = *circuitFlag + ".bench"
		}
		if err := batchals.Save(path, n); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
