package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

func TestTimelineEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	run := s.Runs.Get("flow")

	// No recorder attached yet: 404, not an empty document.
	if code, body := get(t, ts.URL+"/timeline?run=flow"); code != http.StatusNotFound {
		t.Fatalf("/timeline without recorder = %d %q, want 404", code, body)
	}

	rec := timeline.NewRecorder(2, 16)
	rec.Emit(0, timeline.Span{
		Name: "sasimi.verify_topk", Phase: obs.PhaseVerifyApply,
		Worker: -1, Shard: -1, T0: 100, T1: 900,
	})
	run.SetTimeline(rec)

	code, body := get(t, ts.URL+"/timeline?run=flow")
	if code != http.StatusOK {
		t.Fatalf("/timeline = %d %q", code, body)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/timeline body is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "sasimi.verify_topk" {
			found = true
		}
	}
	if !found {
		t.Errorf("span missing from exported trace: %s", body)
	}

	// With exactly one run the ?run parameter may be omitted.
	if code, _ := get(t, ts.URL+"/timeline"); code != http.StatusOK {
		t.Errorf("/timeline without run param = %d, want 200 with a single run", code)
	}
	// Unknown run: 404.
	if code, _ := get(t, ts.URL+"/timeline?run=nope"); code != http.StatusNotFound {
		t.Errorf("/timeline?run=nope = %d, want 404", code)
	}
}
