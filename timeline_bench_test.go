package batchals

// Overhead pin for the causal span recorder: attaching a timeline to the
// parallel estimation engine must cost at most 2% of
// BenchmarkParallelEstimate's workload (design constraint #1 of
// internal/obs/timeline). Two halves:
//
//   - allocations: recording must add zero allocations per estimation
//     pass beyond the recorder's own pre-sized rings (checked exactly
//     with testing.AllocsPerRun — allocation counts are deterministic,
//     so this is the strong cross-machine signal);
//   - time: median-of-pairs wall-clock comparison, interleaved so
//     frequency scaling and cache state hit both sides equally. Skipped
//     under -race (detector instrumentation dwarfs the recorder) and in
//     -short mode.

import (
	"sort"
	"testing"
	"time"

	"batchals/internal/bench"
	"batchals/internal/flow"
	"batchals/internal/obs/timeline"
	"batchals/internal/sasimi"
)

const tlOverheadPatterns = 2048

func tlEstimateOnce(tb testing.TB, golden *Network, rec *timeline.Recorder) {
	cands, err := sasimi.EstimateAll(golden, golden.Clone(), sasimi.Config{
		Budget: flow.Budget{
			Metric:      ErrorRate,
			Threshold:   0.05,
			NumPatterns: tlOverheadPatterns,
			Seed:        1,
		},
		Workers:  2,
		Timeline: rec,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if len(cands) == 0 {
		tb.Fatal("no candidates on c880")
	}
}

// BenchmarkTimelineOverhead reports the recorder's cost side by side:
// compare the recorder=off and recorder=on ns/op in the bench baseline.
func BenchmarkTimelineOverhead(b *testing.B) {
	golden, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("recorder=off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tlEstimateOnce(b, golden, nil)
		}
	})
	b.Run("recorder=on", func(b *testing.B) {
		rec := timeline.NewRecorder(3, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Reset() // a full ring would drop spans and flatter the cost
			tlEstimateOnce(b, golden, rec)
		}
		b.ReportMetric(float64(rec.SpanCount()), "spans")
	})
}

// TestTimelineOverheadAllocations pins the allocation half exactly: one
// estimation pass with a recorder attached may allocate at most a handful
// of objects more than one without (the pool's one-time lane arrays);
// per-span recording itself allocates nothing.
func TestTimelineOverheadAllocations(t *testing.T) {
	golden, err := bench.ByName("c880")
	if err != nil {
		t.Fatal(err)
	}
	rec := timeline.NewRecorder(3, 0)
	// Warm both paths so lazy caches don't skew the counts.
	tlEstimateOnce(t, golden, nil)
	tlEstimateOnce(t, golden, rec)

	without := testing.AllocsPerRun(3, func() {
		tlEstimateOnce(t, golden, nil)
	})
	rec.Reset()
	with := testing.AllocsPerRun(3, func() {
		rec.Reset()
		tlEstimateOnce(t, golden, rec)
	})
	// The traced pass re-uses the recorder; the only extra allocations
	// permitted are the pool's AttachTimeline arrays and label context
	// (one-time, O(workers)). 64 is far below one allocation per span.
	const maxExtra = 64
	if with > without+maxExtra {
		t.Errorf("recorder adds %.0f allocations per estimation pass (%.0f -> %.0f), want <= %d",
			with-without, without, with, maxExtra)
	}
	if rec.SpanCount() == 0 {
		t.Fatal("recorder attached but recorded nothing; allocation pin is vacuous")
	}
}

// TestTimelineOverheadOnParallelEstimate pins the timing half: the median
// traced/untraced ratio over interleaved pairs must stay within the 2%
// budget (plus a small absolute guard for sub-millisecond jitter).
func TestTimelineOverheadOnParallelEstimate(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation dwarfs the recorder's cost")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	golden, err := bench.ByName("c880")
	if err != nil {
		t.Fatal(err)
	}
	rec := timeline.NewRecorder(3, 0)
	// Warm-up: JIT-free, but caches, page faults and the lazy topo order
	// must not land on one side.
	tlEstimateOnce(t, golden, nil)
	tlEstimateOnce(t, golden, rec)

	const pairs = 7
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		start := time.Now()
		tlEstimateOnce(t, golden, nil)
		off := time.Since(start)

		rec.Reset()
		start = time.Now()
		tlEstimateOnce(t, golden, rec)
		on := time.Since(start)

		ratios = append(ratios, float64(on)/float64(off))
	}
	sort.Float64s(ratios)
	median := ratios[pairs/2]
	// 2% budget plus 1% measurement-noise guard: the recorder's real cost
	// is a few dozen Emit calls per pass, orders of magnitude below this.
	if median > 1.03 {
		t.Errorf("timeline recorder overhead: median traced/untraced = %.4f, want <= 1.03 (2%% budget + noise guard); ratios %v",
			median, ratios)
	}
	t.Logf("timeline overhead: median ratio %.4f over %d interleaved pairs", median, pairs)
}
