package circuit

import "sort"

// Dedup merges structurally identical gates: two live gates with the same
// kind and the same fanins (order-insensitive for symmetric kinds) are
// collapsed onto one representative, in topological order so that chains
// of duplicates collapse transitively. Dead gates left behind are swept.
// It returns the number of gates removed.
//
// This is the network-level analogue of AIG structural hashing; generators
// and file loaders can produce duplicated logic, and deduplicating it
// first both shrinks the baseline area and removes trivially-identical
// substitution candidates from ALS flows.
func (n *Network) Dedup() int {
	total := 0
	for {
		removed := n.dedupPass()
		total += removed
		if removed == 0 {
			return total
		}
	}
}

// dedupPass performs one topological merge sweep. Rewrites performed
// mid-pass can expose new duplicates among already-visited nodes (their
// stored keys go stale), so Dedup iterates passes to a fixpoint.
func (n *Network) dedupPass() int {
	type key struct {
		kind Kind
		f0   NodeID
		f1   NodeID
		f2   NodeID
		more string // overflow fanins, canonically encoded
	}
	canon := make(map[key]NodeID)
	removed := 0
	// Iterate a snapshot: ReplaceNode edits fanout lists as we go, but
	// only of already-visited (earlier) nodes' fanouts, never the shape of
	// later nodes' fanin *sets* — those are rewritten in place, which is
	// why recomputing the key from the live fanins below is essential.
	order := append([]NodeID(nil), n.TopoOrder()...)
	for _, id := range order {
		if !n.IsLive(id) || !n.Kind(id).IsGate() {
			continue
		}
		fanins := append([]NodeID(nil), n.Fanins(id)...)
		if symmetricKind(n.Kind(id)) {
			sort.Slice(fanins, func(a, b int) bool { return fanins[a] < fanins[b] })
		}
		k := key{kind: n.Kind(id)}
		switch {
		case len(fanins) > 3:
			k.f0, k.f1, k.f2 = fanins[0], fanins[1], fanins[2]
			var enc []byte
			for _, f := range fanins[3:] {
				enc = append(enc, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
			}
			k.more = string(enc)
		case len(fanins) == 3:
			k.f0, k.f1, k.f2 = fanins[0], fanins[1], fanins[2]
		case len(fanins) == 2:
			k.f0, k.f1, k.f2 = fanins[0], fanins[1], InvalidNode
		default:
			k.f0, k.f1, k.f2 = fanins[0], InvalidNode, InvalidNode
		}
		if rep, ok := canon[k]; ok && rep != id && n.IsLive(rep) {
			n.ReplaceNode(id, rep)
			removed += n.SweepFrom(id)
			continue
		}
		canon[k] = id
	}
	return removed
}

// symmetricKind reports whether fanin order is irrelevant for the kind.
func symmetricKind(k Kind) bool {
	switch k {
	case KindAnd, KindOr, KindNand, KindNor, KindXor, KindXnor:
		return true
	}
	return false
}
