package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Invalidation enforces the cache-coherence contract of the incremental
// engine. Two invariants, one per layer:
//
//   - Engine: the exported Net/Vals/St fields are read-freely,
//     mutate-through-Apply (engine.go's documented contract). Any direct
//     assignment to them outside package core is flagged.
//   - CPM: the propagation rows feed three lazy caches (AnyProp, the
//     exactness certificate, the AEM column memo). A function that writes
//     rows of a CPM it did not just construct must drop those caches in
//     the same body — the paired-call pattern Refresh implements
//     (cert.Store(nil) / aemFor = nil / per-row anyProp stores). A row
//     write without that evidence means queries can read stale cache
//     entries against fresh rows.
//
// Constructors (Build, BuildParallel, BuildForOutputs) define the
// receiver locally — a fresh CPM has empty caches, so they pass without
// special-casing. A finding on a line carrying //als:invalidate-ok is an
// acknowledged exception.
var Invalidation = &Analyzer{
	Name: "invalidation",
	Doc:  "CPM row writers must invalidate lazy caches; Engine state mutates through Apply",
	Run:  runInvalidation,
}

func runInvalidation(p *Pass) {
	if p.TypesInfo == nil {
		return
	}
	const corePath = "batchals/internal/core"
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if p.PkgPath != corePath {
				p.checkEngineWrites(fn.Body)
			}
			p.checkCPMRowWrites(fn)
		}
	}
}

// checkEngineWrites flags direct assignments to Engine.Net/Vals/St from
// outside package core.
func (p *Pass) checkEngineWrites(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			switch sel.Sel.Name {
			case "Net", "Vals", "St":
			default:
				continue
			}
			if !isNamed(p.typeOf(sel.X), "batchals/internal/core", "Engine") {
				continue
			}
			if p.suppressed(as.Pos(), "als:invalidate-ok") {
				continue
			}
			p.Reportf(as.Pos(), "direct write to Engine.%s; route mutation through Engine.Apply so caches and golden state stay coherent", sel.Sel.Name)
		}
		return true
	})
}

// checkCPMRowWrites enforces the paired-call pattern on writes to CPM.p.
func (p *Pass) checkCPMRowWrites(fn *ast.FuncDecl) {
	var writes []*ast.AssignStmt // statements writing some CPM's p field
	var writeBases []types.Object
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if base := p.cpmRowTarget(lhs); base != nil {
				writes = append(writes, as)
				writeBases = append(writeBases, base)
			}
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	for i, as := range writes {
		base := writeBases[i]
		if p.locallyConstructedCPM(fn.Body, base) {
			continue
		}
		if p.invalidatesCaches(fn.Body, base) {
			continue
		}
		if p.suppressed(as.Pos(), "als:invalidate-ok") {
			continue
		}
		p.Reportf(as.Pos(), "write to CPM propagation rows without invalidating the lazy caches in this function; drop cert/aemFor/anyProp or route through Refresh")
	}
}

// cpmRowTarget reports whether lhs writes (directly or through indexing)
// the p field of a core.CPM, returning the base object of the receiver
// chain, or nil.
func (p *Pass) cpmRowTarget(lhs ast.Expr) types.Object {
	e := ast.Unparen(lhs)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "p" {
		return nil
	}
	if !isNamed(p.typeOf(sel.X), "batchals/internal/core", "CPM") {
		return nil
	}
	return p.chainBase(sel.X)
}

// chainBase resolves the root identifier's object of a selector/index
// chain (c.p[id] -> object of c), or nil.
func (p *Pass) chainBase(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.objectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// locallyConstructedCPM reports whether base is defined in this body by a
// short variable declaration whose value is a fresh CPM (composite
// literal or constructor call) — fresh CPMs have empty caches.
func (p *Pass) locallyConstructedCPM(body *ast.BlockStmt, base types.Object) bool {
	if base == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if ok && p.objectOf(id) == base {
				found = true
			}
		}
		return true
	})
	return found
}

// invalidatesCaches reports whether the body contains cache-invalidation
// evidence for the CPM: a cert.Store call, an aemFor reset, or a Refresh
// call.
func (p *Pass) invalidatesCaches(body *ast.BlockStmt, base types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Store":
				// cert.Store(nil) / anyProp[i].Store(nil) on the same CPM.
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if p.chainBase(inner) == base {
						found = true
					}
				} else if ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr); ok {
					if p.chainBase(ix.X) == base {
						found = true
					}
				}
			case "Refresh":
				if isNamed(p.typeOf(sel.X), "batchals/internal/core", "CPM") && p.chainBase(sel.X) == base {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "aemFor" && p.chainBase(sel.X) == base {
					found = true
				}
			}
		}
		return true
	})
	return found
}
