package sasimi

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"sort"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// This file parallelises the exact top-K verification step — the span the
// timeline profiler identified as the flow's dominant serial tail
// (EXPERIMENTS.md "Timeline attribution"). The serial path verifies one
// candidate at a time by mutating the shared value table, resimulating the
// target's fanout cone in place and restoring it (core.ExactDelta); that
// mutation is what forbids concurrency. The parallel path instead gives
// every candidate a private overlay — one word-row per cone node — and
// evaluates (candidate, pattern-shard) pairs as independent pool tasks:
// cone evaluation is word-local (pattern word w of a node depends only on
// word w of its fanins), so a task that touches only its shard's word
// range [W0,W1) never races another shard of the same candidate, and
// candidates never share overlay rows at all.
//
// Bit-identity with the serial path follows the same argument as the
// sharded batch scorer (scoreCandidatesSharded): ER partials are exact
// integer pattern counts, AEM per-pattern contributions are integer-valued
// magnitudes whose float sums are exact below 2^53 (the convention
// documented on core.DeltaAEMPartial, covering all bundled benchmarks),
// and the final "after" value is produced by the same single division the
// serial metric performs. The reduction walks candidates in the same
// sorted order as the serial loop, so Delta/Score overwrites, drift
// records and the final argmax selection are identical at every worker
// count.

// verifyCandScratch is one candidate's reusable overlay: its fanout cone
// in topological order, a word-row per cone node (plus row 0 for the
// target's substitute value), and the node→row index map. mark and rowOf
// are cleared lazily at the start of the next prepare using the recorded
// cone, so the scratch never needs an O(slots) wipe.
type verifyCandScratch struct {
	target circuit.NodeID
	mark   []bool
	stack  []circuit.NodeID
	cone   []circuit.NodeID // topo order, excluding target
	rowOf  []int32          // node -> 1-based index into rows; 0 = not overlaid
	rowBuf []uint64
	rows   [][]uint64 // rows[0] = target substitute, rows[1+i] = cone[i]
	outSrc []int32    // per output: 0-based row index, -1 = unchanged (read vals)
}

// prepare computes the candidate overlay for target: BFS the fanout cone
// over pooled mark/stack scratch (circuit.TransitiveFanoutCone allocates a
// fresh slice per call), order it topologically by filtering the memoized
// order, and carve the overlay rows out of one backing buffer. Rows are
// not zeroed: every eval task writes its full word range for every row,
// and the shard set covers every word.
func (cs *verifyCandScratch) prepare(net *circuit.Network, order []circuit.NodeID,
	outputs []circuit.Output, target circuit.NodeID, slots, words int) {

	if len(cs.mark) < slots {
		cs.mark = make([]bool, slots)   //als:alloc-ok network grew; fresh zeroed scratch
		cs.rowOf = make([]int32, slots) //als:alloc-ok network grew; fresh zeroed scratch
	} else {
		cs.mark[cs.target] = false
		cs.rowOf[cs.target] = 0
		for _, id := range cs.cone {
			cs.mark[id] = false
			cs.rowOf[id] = 0
		}
	}
	cs.target = target

	cs.stack = append(cs.stack[:0], target) //als:alloc-ok amortised scratch grow
	cs.mark[target] = true
	for len(cs.stack) > 0 {
		id := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		for _, f := range net.Fanouts(id) {
			if !cs.mark[f] {
				cs.mark[f] = true
				cs.stack = append(cs.stack, f) //als:alloc-ok amortised scratch grow
			}
		}
	}
	cs.cone = cs.cone[:0]
	for _, id := range order {
		if cs.mark[id] && id != target {
			cs.cone = append(cs.cone, id) //als:alloc-ok amortised scratch grow
		}
	}

	need := (len(cs.cone) + 1) * words
	if cap(cs.rowBuf) < need {
		cs.rowBuf = make([]uint64, need) //als:alloc-ok amortised scratch grow
	}
	cs.rowBuf = cs.rowBuf[:need]
	cs.rows = cs.rows[:0]
	for i := 0; i <= len(cs.cone); i++ {
		cs.rows = append(cs.rows, cs.rowBuf[i*words:(i+1)*words:(i+1)*words]) //als:alloc-ok amortised scratch grow
	}
	cs.rowOf[target] = 1
	for i, id := range cs.cone {
		cs.rowOf[id] = int32(i + 2)
	}

	cs.outSrc = cs.outSrc[:0]
	for _, out := range outputs {
		cs.outSrc = append(cs.outSrc, cs.rowOf[out.Node]-1) //als:alloc-ok amortised scratch grow
	}
}

// verifyWorkerScratch is per-worker evaluation scratch: fanin source
// resolution and the word buffer EvalWord consumes. Each pool worker runs
// one task at a time, so slot w is race-free.
type verifyWorkerScratch struct {
	srcs [][]uint64
	buf  []uint64
}

// verifyScratch is the flow-owned scratch of the parallel verifier. It
// persists across iterations so the steady state allocates nothing (pinned
// by TestParallelVerifySteadyStateAllocs).
type verifyScratch struct {
	lastM       int
	lastWorkers int
	shards      []par.Shard
	cands       []verifyCandScratch
	workers     []verifyWorkerScratch
	erWrong     []int64   // (candidate, shard) wrong-pattern counts
	aemSum      []float64 // (candidate, shard) error-magnitude sums
	uRows       [][]uint64
	valRows     [][]uint64
}

// verifyTopK re-evaluates the K best-scoring feasible candidates with
// exact cone resimulation and returns the index of the best exactly-scored
// feasible candidate, or -1 if none survives. The verified candidates'
// Delta and Score fields are overwritten with exact values; each
// batch-vs-exact pair is recorded as verification drift, split by the
// batch estimate's exactness certificate. With a multi-worker pool the
// (candidate, pattern-shard) grid fans out over the pool — bit-identical
// to the serial path (see the file comment); a nil or single-worker pool
// verifies serially via core.ExactDelta with per-candidate cancellation
// checks.
func verifyTopK(goCtx context.Context, net *circuit.Network, vals *sim.Values,
	st *emetric.State, cfg *Config, cands []Candidate, feasible []int,
	curErr float64, scratch *bitvec.Vec, vs *verifyScratch, pool *par.Pool,
	o *runObs, iter int) (int, error) {

	k := cfg.VerifyTopK
	if k > len(feasible) {
		k = len(feasible)
	}
	// Partial selection of the top-k by score.
	sort.Slice(feasible, func(a, b int) bool {
		return cands[feasible[a]].Score > cands[feasible[b]].Score
	})
	if pool.Workers() > 1 {
		return verifyTopKParallel(goCtx, net, vals, st, cfg, cands, feasible[:k],
			curErr, vs, pool, o, iter)
	}
	best := -1
	for _, idx := range feasible[:k] {
		if err := goCtx.Err(); err != nil {
			return -1, err
		}
		c := &cands[idx]
		sub := c.substituteValue(vals, scratch)
		batchDelta, wasExact := c.Delta, c.Exact
		if tl := cfg.Timeline; tl != nil {
			// Per-candidate span + pprof label set: CPU profile samples of
			// the exact recheck attribute to the candidate being verified.
			tlc := tl.Start("sasimi.verify_cand", obs.PhaseVerifyApply)
			pprof.Do(goCtx, pprof.Labels(
				"als_dispatch", "sasimi.verify_cand",
				"als_candidate", net.NameOf(c.Target),
			), func(context.Context) {
				c.Delta = core.ExactDelta(net, vals, c.Target, sub, st, cfg.Metric)
			})
			tl.End(tlc)
		} else {
			c.Delta = core.ExactDelta(net, vals, c.Target, sub, st, cfg.Metric)
		}
		c.Exact = true
		c.Score = score(c.AreaGain, c.Delta, vals.M)
		o.verified(iter, c, batchDelta, c.Delta, wasExact)
		if curErr+c.Delta > cfg.Threshold+1e-12 {
			continue
		}
		if best == -1 || c.Score > cands[best].Score {
			best = idx
		}
	}
	return best, nil
}

// verifyTopKParallel fans the (candidate, pattern-shard) grid of top out
// over the pool: a setup dispatch builds every candidate's cone overlay,
// an eval dispatch resimulates each overlay shard and computes the metric
// partial, and a driver-side reduction in candidate order reproduces the
// serial loop's decisions exactly.
func verifyTopKParallel(goCtx context.Context, net *circuit.Network, vals *sim.Values,
	st *emetric.State, cfg *Config, cands []Candidate, top []int, curErr float64,
	vs *verifyScratch, pool *par.Pool, o *runObs, iter int) (int, error) {

	k := len(top)
	if k == 0 {
		return -1, goCtx.Err()
	}
	m := vals.M
	words := bitvec.Words(m)
	lastWord := words - 1
	tail := bitvec.TailMask(m)
	// Resolve shared read-only structures driver-side so tasks never touch
	// the network's memoized caches concurrently.
	order := net.TopoOrder()
	outputs := net.Outputs()
	slots := net.NumSlots()
	numOut := len(outputs)

	if vs.lastM != m || vs.lastWorkers != pool.Workers() {
		// Shards is a pure function of (m, workers); cache the plan so the
		// steady state is allocation-free.
		vs.shards = par.Shards(m, pool.Workers())
		vs.lastM, vs.lastWorkers = m, pool.Workers()
	}
	s := len(vs.shards)

	for len(vs.cands) < k {
		vs.cands = append(vs.cands, verifyCandScratch{}) //als:alloc-ok amortised scratch grow
	}
	for len(vs.workers) < pool.Workers() {
		vs.workers = append(vs.workers, verifyWorkerScratch{}) //als:alloc-ok amortised scratch grow
	}
	vs.erWrong = growInt64(vs.erWrong, k*s)
	vs.aemSum = growFloat64(vs.aemSum, k*s)
	vs.uRows = growRows(vs.uRows, numOut)
	vs.valRows = growRows(vs.valRows, numOut)
	for oi, out := range outputs {
		vs.uRows[oi] = st.U.Row(oi).WordsSlice()
		vs.valRows[oi] = vals.Node(out.Node).WordsSlice()
	}

	pool.Label("sasimi.verify_topk", obs.PhaseVerifyApply)
	if err := pool.DoCtx(goCtx, k, func(_, ci int) {
		vs.cands[ci].prepare(net, order, outputs, cands[top[ci]].Target, slots, words)
	}); err != nil {
		return -1, err
	}
	pool.Label("sasimi.verify_topk", obs.PhaseVerifyApply)
	if err := pool.DoCtx(goCtx, k*s, func(w, ti int) {
		ci, si := ti/s, ti%s
		vs.evalShard(net, vals, &cands[top[ci]], &vs.cands[ci], vs.shards[si],
			&vs.workers[w], cfg.Metric, lastWord, tail, ci*s+si)
	}); err != nil {
		return -1, err
	}

	// Reduction: same candidate order, same overwrites, same screening and
	// argmax as the serial loop. before is loop-invariant in the serial
	// path (ExactDelta restores the value table), so hoisting it is exact.
	before := cfg.Metric.Value(st)
	best := -1
	for ci, idx := range top {
		c := &cands[idx]
		batchDelta, wasExact := c.Delta, c.Exact
		var after float64
		if cfg.Metric == core.MetricAEM {
			total := 0.0
			for si := 0; si < s; si++ {
				total += vs.aemSum[ci*s+si]
			}
			after = total / float64(m)
		} else {
			var total int64
			for si := 0; si < s; si++ {
				total += vs.erWrong[ci*s+si]
			}
			after = float64(total) / float64(m)
		}
		c.Delta = after - before
		c.Exact = true
		c.Score = score(c.AreaGain, c.Delta, m)
		o.verified(iter, c, batchDelta, c.Delta, wasExact)
		if curErr+c.Delta > cfg.Threshold+1e-12 {
			continue
		}
		if best == -1 || c.Score > cands[best].Score {
			best = idx
		}
	}
	return best, nil
}

// evalShard is the hot kernel of the parallel verifier: materialise the
// candidate's substitute words for the shard, evaluate the cone overlay in
// topological order over the shard's word range, and fold the shard's
// metric partial into slot. Tail bits of the final word are masked exactly
// where the serial resimulation masks them, so no garbage bit can inflate
// a wrong-pattern count.
//
//als:allocfree
func (vs *verifyScratch) evalShard(net *circuit.Network, vals *sim.Values,
	c *Candidate, cs *verifyCandScratch, sh par.Shard, ws *verifyWorkerScratch,
	metric core.Metric, lastWord int, tail uint64, slot int) {

	hasTail := sh.W1-1 == lastWord

	// Target substitute words — the same bits substituteValue produces.
	dst := cs.rows[0]
	switch {
	case c.Const:
		fill := uint64(0)
		if c.ConstVal {
			fill = ^uint64(0)
		}
		for w := sh.W0; w < sh.W1; w++ {
			dst[w] = fill
		}
	case c.Inverted:
		sw := vals.Node(c.Sub).WordsSlice()
		for w := sh.W0; w < sh.W1; w++ {
			dst[w] = ^sw[w]
		}
	default:
		copy(dst[sh.W0:sh.W1], vals.Node(c.Sub).WordsSlice()[sh.W0:sh.W1])
	}
	if hasTail {
		dst[lastWord] &= tail
	}

	// Cone evaluation, word-local per shard: word w of a node depends only
	// on word w of its fanins, resolved through the overlay first.
	for i, id := range cs.cone {
		fanins := net.Fanins(id)
		if cap(ws.srcs) < len(fanins) {
			ws.srcs = make([][]uint64, len(fanins)) //als:alloc-ok amortised fanin-width grow
			ws.buf = make([]uint64, len(fanins))    //als:alloc-ok amortised fanin-width grow
		}
		srcs, buf := ws.srcs[:len(fanins)], ws.buf[:len(fanins)]
		for j, f := range fanins {
			if r := cs.rowOf[f]; r > 0 {
				srcs[j] = cs.rows[r-1]
			} else {
				srcs[j] = vals.Node(f).WordsSlice()
			}
		}
		row := cs.rows[i+1]
		kind := net.Kind(id)
		for w := sh.W0; w < sh.W1; w++ {
			for j := range srcs {
				buf[j] = srcs[j][w]
			}
			row[w] = kind.EvalWord(buf)
		}
		if hasTail {
			row[lastWord] &= tail
		}
	}

	// Metric partial. ER: popcount of the per-word OR over outputs of
	// U xor V — an exact integer. AEM: per wrong pattern (ascending, as
	// the serial AvgErrorMagnitude iterates), assemble golden/approx
	// output words with row 0 as LSB and sum |a-g| — integer-valued
	// contributions, exact under float addition below 2^53.
	var wrongCount int64
	aem := 0.0
	for w := sh.W0; w < sh.W1; w++ {
		var wrong uint64
		for oi, src := range cs.outSrc {
			var av uint64
			if src >= 0 {
				av = cs.rows[src][w]
			} else {
				av = vs.valRows[oi][w]
			}
			wrong |= vs.uRows[oi][w] ^ av
		}
		if metric != core.MetricAEM {
			wrongCount += int64(bits.OnesCount64(wrong))
			continue
		}
		for wb := wrong; wb != 0; wb &= wb - 1 {
			b := bits.TrailingZeros64(wb)
			var g, a uint64
			for oi, src := range cs.outSrc {
				g |= (vs.uRows[oi][w] >> b & 1) << oi
				if src >= 0 {
					a |= (cs.rows[src][w] >> b & 1) << oi
				} else {
					a |= (vs.valRows[oi][w] >> b & 1) << oi
				}
			}
			if a >= g {
				aem += float64(a - g)
			} else {
				aem += float64(g - a)
			}
		}
	}
	vs.erWrong[slot] = wrongCount
	vs.aemSum[slot] = aem
}

// growInt64 returns s resized to n zeroed elements, reusing capacity.
func growInt64(s []int64, n int) []int64 {
	for cap(s) < n {
		s = append(s[:cap(s)], 0) //als:alloc-ok amortised scratch grow
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growFloat64 returns s resized to n zeroed elements, reusing capacity.
func growFloat64(s []float64, n int) []float64 {
	for cap(s) < n {
		s = append(s[:cap(s)], 0) //als:alloc-ok amortised scratch grow
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growRows returns s resized to n elements, reusing capacity.
func growRows(s [][]uint64, n int) [][]uint64 {
	for cap(s) < n {
		s = append(s[:cap(s)], nil) //als:alloc-ok amortised scratch grow
	}
	return s[:n]
}
