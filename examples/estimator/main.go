// Estimator accuracy: use the internal batch-estimation machinery directly
// (outside the flow) to score every candidate substitution of a circuit,
// then compare the batch estimates against ground-truth full simulation —
// the experiment behind the paper's Fig. 3 and Table 2, in miniature.
//
// This example imports internal packages, which is possible because it
// lives inside the batchals module; it shows the layered API beneath the
// facade.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

func main() {
	golden, err := bench.ByName("c880")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s (%d gates)\n", golden.Name, golden.NumGates())

	cfg := sasimi.Config{
		Budget: flow.Budget{
			Metric:      core.MetricER,
			Threshold:   1, // estimation only
			NumPatterns: 4000,
			Seed:        7,
		},
	}

	// Batch estimation of every candidate: one simulation + one CPM.
	cfgBatch := cfg
	cfgBatch.Estimator = sasimi.EstimatorBatch
	start := time.Now()
	batch, err := sasimi.EstimateAll(golden, golden.Clone(), cfgBatch)
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)

	// Ground truth: resimulate the fanout cone of every candidate.
	cfgFull := cfg
	cfgFull.Estimator = sasimi.EstimatorFull
	start = time.Now()
	full, err := sasimi.EstimateAll(golden, golden.Clone(), cfgFull)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	var sumAbs, worst float64
	exactMatches := 0
	for i := range batch {
		d := math.Abs(batch[i].Delta - full[i].Delta)
		sumAbs += d
		if d > worst {
			worst = d
		}
		if d < 1e-12 {
			exactMatches++
		}
	}
	fmt.Printf("candidates evaluated: %d\n", len(batch))
	fmt.Printf("batch estimation: %8s   full simulation: %8s   speed-up: %.1fx\n",
		batchTime.Round(time.Millisecond), fullTime.Round(time.Millisecond),
		float64(fullTime)/float64(batchTime))
	fmt.Printf("|batch - truth|: mean %.6f, worst %.6f, exact on %d/%d (%.1f%%)\n",
		sumAbs/float64(len(batch)), worst, exactMatches, len(batch),
		100*float64(exactMatches)/float64(len(batch)))

	// Show the ten most attractive candidates by the flow's score.
	sort.Slice(batch, func(i, j int) bool { return batch[i].Score > batch[j].Score })
	fmt.Println("\ntop candidates (area gain per unit of estimated error):")
	for i := 0; i < 10 && i < len(batch); i++ {
		c := batch[i]
		fmt.Printf("  %2d. target=%s sub=%s inv=%v gain=%.0f ΔER=%+.5f\n",
			i+1, golden.NameOf(c.Target), subName(golden, c), c.Inverted, c.AreaGain, c.Delta)
	}
}

// subName renders the substitute of a candidate, including the constant
// cases where no substitute node exists.
func subName(n *circuit.Network, c sasimi.Candidate) string {
	if c.Const {
		if c.ConstVal {
			return "const1"
		}
		return "const0"
	}
	return n.NameOf(c.Sub)
}
