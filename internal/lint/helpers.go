package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// typeOf returns the type of e, or nil when no type information is
// available for the pass or the expression.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// objectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, type conversions, indirect calls through function
// values and missing type information.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	if p.TypesInfo == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isNamed reports whether t (after stripping pointers and aliases) is the
// named type path.name.
func isNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path
}

// isSliceOf reports whether t is a slice whose element is the given basic
// kind (e.g. types.Uint64).
func isSliceOf(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// sentinelErrorVar resolves e to a package-level variable of type error
// (an errors.New-style sentinel such as flow.ErrBadThreshold or
// context.Canceled) and returns it, or nil.
func (p *Pass) sentinelErrorVar(e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := p.objectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || !isErrorType(v.Type()) {
		return nil
	}
	// Package level: the variable's parent scope is its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// hasDirective reports whether the doc comment group contains the given
// //als:* directive (e.g. "als:allocfree") as its own comment line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// suppressed reports whether the source line containing pos carries a
// comment with the given //als:* marker (e.g. "als:alloc-ok"), the
// line-level acknowledgement convention for known findings.
func (p *Pass) suppressed(pos token.Pos, marker string) bool {
	if p.commentIndex == nil {
		p.commentIndex = map[string]map[int]string{}
		for _, f := range p.Files {
			position := p.Fset.Position(f.Pos())
			lines := map[int]string{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					line := p.Fset.Position(c.Pos()).Line
					lines[line] += c.Text
				}
			}
			p.commentIndex[position.Filename] = lines
		}
	}
	where := p.Fset.Position(pos)
	return strings.Contains(p.commentIndex[where.Filename][where.Line], marker)
}

// funcBodies walks the files of the pass and calls visit for every
// function declaration and function literal, with the enclosing
// declaration (nil doc for literals). Test files are included; callers
// filter with isTestFile when the invariant is production-only.
func (p *Pass) funcBodies(visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			visit(fn, fn.Body)
		}
	}
}
